/* remspan — stable C ABI over the remote-spanner library.
 *
 * Pure C99: no C++ types leak through this header; every object is an
 * opaque handle created and destroyed by the library. Build against the
 * remspan_c shared library. All functions are thread-compatible (distinct
 * handles may be used from distinct threads; a single handle must not be
 * shared without external synchronization).
 *
 * Error model: functions that can fail return remspan_status_t.
 * REMSPAN_OK is 0; on any other status the thread-local message behind
 * remspan_last_error() describes the failure. Out-pointers are written
 * only on REMSPAN_OK.
 *
 * Spec strings: constructions and generated graphs are addressed by the
 * canonical spec grammar of docs/API.md, e.g. "th2?k=2", "th1?eps=0.5",
 * "mpr", and "udg?n=500&side=6", "gnp?n=300&deg=12", "file:graph.txt".
 *
 * Versioning: REMSPAN_ABI_VERSION is bumped on every breaking change of
 * this header or the semantics behind it; remspan_abi_version() reports
 * the version the loaded library implements. Additive changes (new
 * functions, new enum values at the end) do not bump it.
 *
 * Minimal round-trip:
 *
 *   remspan_graph_t* g = NULL;
 *   remspan_graph_generate("udg?n=400&side=6", &g);
 *   remspan_spanner_t* h = NULL;
 *   remspan_spanner_build(g, "th2?k=2", &h);
 *   printf("%zu of %zu edges\n", remspan_spanner_num_edges(h),
 *          remspan_graph_num_edges(g));
 *   remspan_spanner_free(h);
 *   remspan_graph_free(g);
 */
#ifndef REMSPAN_REMSPAN_H_
#define REMSPAN_REMSPAN_H_

#include <stddef.h>
#include <stdint.h>

#if defined(_WIN32)
#ifdef REMSPAN_BUILDING /* defined by the remspan_c target itself */
#define REMSPAN_API __declspec(dllexport)
#else
#define REMSPAN_API __declspec(dllimport)
#endif
#else
#define REMSPAN_API __attribute__((visibility("default")))
#endif

#ifdef __cplusplus
extern "C" {
#endif

/* Bumped on breaking ABI changes; see the versioning note above. */
#define REMSPAN_ABI_VERSION 1u

/* ABI version implemented by the loaded library. A driver built against
 * this header should check it equals REMSPAN_ABI_VERSION at startup. */
REMSPAN_API uint32_t remspan_abi_version(void);

typedef enum remspan_status {
  REMSPAN_OK = 0,
  REMSPAN_ERR_INVALID_ARGUMENT = 1, /* null/out-of-range argument */
  REMSPAN_ERR_PARSE = 2,            /* malformed spec string */
  REMSPAN_ERR_IO = 3,               /* unreadable/malformed file */
  REMSPAN_ERR_UNSUPPORTED = 4,      /* construction lacks the capability */
  REMSPAN_ERR_INTERNAL = 5          /* invariant failure inside the library */
} remspan_status_t;

/* Message for the most recent failure on the calling thread ("" if none).
 * The pointer stays valid until the next failing call on this thread. */
REMSPAN_API const char* remspan_last_error(void);

/* --- graphs ------------------------------------------------------------- */

typedef struct remspan_graph remspan_graph_t;

/* Builds a graph from `num_edges` undirected edges given as (u,v) pairs in
 * `endpoints` (length 2*num_edges, node ids < num_nodes, no self-loops;
 * duplicates merge). */
REMSPAN_API remspan_status_t remspan_graph_from_edges(uint32_t num_nodes,
                                                      const uint32_t* endpoints,
                                                      size_t num_edges,
                                                      remspan_graph_t** out_graph);

/* Loads the plain-text edge-list format of docs/CLI.md. */
REMSPAN_API remspan_status_t remspan_graph_load(const char* path,
                                                remspan_graph_t** out_graph);

/* Generates a graph from a graph-spec string ("udg?n=500&side=6", ...).
 * "file:<path>" specs load like remspan_graph_load. */
REMSPAN_API remspan_status_t remspan_graph_generate(const char* graph_spec,
                                                    remspan_graph_t** out_graph);

REMSPAN_API uint32_t remspan_graph_num_nodes(const remspan_graph_t* graph);
REMSPAN_API size_t remspan_graph_num_edges(const remspan_graph_t* graph);

/* Writes up to `max_edges` edges as (u,v) pairs into `endpoints` (length
 * 2*max_edges) in canonical order; returns how many edges were written. */
REMSPAN_API size_t remspan_graph_edges(const remspan_graph_t* graph, uint32_t* endpoints,
                                       size_t max_edges);

REMSPAN_API void remspan_graph_free(remspan_graph_t* graph);

/* --- spanners ----------------------------------------------------------- */

typedef struct remspan_spanner remspan_spanner_t;

/* Builds the construction a spanner-spec string describes ("th2?k=2", ...)
 * on `graph`. The spanner keeps the graph's topology alive internally, so
 * freeing the graph handle first is allowed. */
REMSPAN_API remspan_status_t remspan_spanner_build(const remspan_graph_t* graph,
                                                   const char* spanner_spec,
                                                   remspan_spanner_t** out_spanner);

/* Canonical spec string of the construction that built this spanner. The
 * pointer stays valid until the spanner is freed. */
REMSPAN_API const char* remspan_spanner_spec(const remspan_spanner_t* spanner);

REMSPAN_API size_t remspan_spanner_num_edges(const remspan_spanner_t* spanner);

/* Writes up to `max_edges` selected edges as (u,v) pairs into `endpoints`
 * (length 2*max_edges) in canonical order; returns the count written. */
REMSPAN_API size_t remspan_spanner_edges(const remspan_spanner_t* spanner,
                                         uint32_t* endpoints, size_t max_edges);

/* 1 if edge {u,v} is in the spanner, 0 otherwise (including unknown edges). */
REMSPAN_API int remspan_spanner_contains(const remspan_spanner_t* spanner, uint32_t u,
                                         uint32_t v);

/* The construction's stretch guarantee d <= alpha * d_G + beta. */
REMSPAN_API remspan_status_t remspan_spanner_guarantee(const remspan_spanner_t* spanner,
                                                       double* out_alpha, double* out_beta);

/* Runs the construction-matching exact oracle against `graph`: either the
 * handle the spanner was built on or any handle with the identical
 * topology (e.g. reloaded from disk, or a session snapshot) — a handle
 * whose node/edge set differs is rejected with
 * REMSPAN_ERR_INVALID_ARGUMENT. On REMSPAN_OK, *out_satisfied is 1/0 and
 * *out_max_ratio the worst measured stretch ratio (out-pointers are
 * optional). Returns REMSPAN_ERR_UNSUPPORTED for constructions with
 * nothing to verify ("full"). `seed` seeds the sampled k-connecting
 * oracle; pass 1 for the default. */
REMSPAN_API remspan_status_t remspan_spanner_verify(const remspan_graph_t* graph,
                                                    const remspan_spanner_t* spanner,
                                                    uint64_t seed, int* out_satisfied,
                                                    double* out_max_ratio);

REMSPAN_API void remspan_spanner_free(remspan_spanner_t* spanner);

/* --- incremental sessions ----------------------------------------------- */

/* A session owns an evolving topology seeded from a graph plus the
 * incremental engine maintaining a construction's spanner across batches
 * of updates (src/dynamic) — bit-exact, after every batch, to building the
 * construction from scratch on the current topology. */
typedef struct remspan_session remspan_session_t;

typedef enum remspan_event_kind {
  REMSPAN_EVENT_EDGE_UP = 0,
  REMSPAN_EVENT_EDGE_DOWN = 1,
  REMSPAN_EVENT_NODE_UP = 2,
  REMSPAN_EVENT_NODE_DOWN = 3
} remspan_event_kind_t;

/* One topology update. Edge events use u and v; node events use u only. */
typedef struct remspan_event {
  uint32_t kind; /* remspan_event_kind_t */
  uint32_t u;
  uint32_t v;
} remspan_event_t;

/* Per-batch accounting, mirroring ChurnBatchStats. */
typedef struct remspan_batch_stats {
  uint64_t version;           /* topology version after the batch */
  size_t applied_events;      /* events that changed stored state */
  size_t inserted_edges;      /* live-edge delta vs previous snapshot */
  size_t removed_edges;
  size_t dirty_roots;         /* roots whose trees were rebuilt */
  size_t rebuilt_tree_edges;  /* tree edges re-added by the rebuilds */
  size_t spanner_edges;       /* |H| after the batch */
  double seconds;             /* wall time of the batch */
} remspan_batch_stats_t;

/* Opens a session maintaining `spanner_spec` over a copy of `graph`'s
 * topology. REMSPAN_ERR_UNSUPPORTED when the construction has no
 * incremental engine (supported: th1, th2, th3). */
REMSPAN_API remspan_status_t remspan_session_open(const remspan_graph_t* graph,
                                                  const char* spanner_spec,
                                                  remspan_session_t** out_session);

/* Applies one batch of events and patches the maintained spanner.
 * `out_stats` is optional. Node ids must be < the session's node count;
 * edge events must not be self-loops. */
REMSPAN_API remspan_status_t remspan_session_apply(remspan_session_t* session,
                                                   const remspan_event_t* events,
                                                   size_t num_events,
                                                   remspan_batch_stats_t* out_stats);

REMSPAN_API size_t remspan_session_spanner_num_edges(const remspan_session_t* session);

/* Maintained spanner's edges, like remspan_spanner_edges. */
REMSPAN_API size_t remspan_session_spanner_edges(const remspan_session_t* session,
                                                 uint32_t* endpoints, size_t max_edges);

/* Snapshot of the session's current topology as a fresh graph handle (the
 * caller frees it). Useful to rebuild from scratch and cross-check. */
REMSPAN_API remspan_status_t remspan_session_graph(const remspan_session_t* session,
                                                   remspan_graph_t** out_graph);

REMSPAN_API void remspan_session_free(remspan_session_t* session);

/* --- multi-tenant service (additive, ABI version unchanged) ------------- */

/* A long-lived service hosting many tenants, each an open incremental
 * session (spec string + evolving topology + maintained spanner) fronted
 * by a coalescing ingestion queue and an immutable epoch-tagged snapshot.
 * Thread-safety is stronger than the rest of this header: ONE service
 * handle may be used from many threads concurrently — submits, queries
 * and stats never need external synchronization. Queries answer against
 * the tenant's current published epoch and never block a rebuild. */
typedef struct remspan_service remspan_service_t;

/* Admission-control verdict of a submit (REMSPAN_OK was returned; the
 * verdict says whether the batch was actually enqueued). */
typedef enum remspan_admission {
  REMSPAN_ADMIT_ACCEPTED = 0,
  REMSPAN_ADMIT_RETRY_AFTER = 1, /* tenant queue budget full — back off */
  REMSPAN_ADMIT_OVERLOADED = 2   /* service-wide budget full — shed load */
} remspan_admission_t;

typedef struct remspan_service_config {
  uint32_t worker_threads;    /* 0 = synchronous: drains only happen inside
                               * flush/drain calls and the service is fully
                               * deterministic */
  uint32_t max_tenants;
  size_t tenant_queue_budget; /* pending events per tenant before RETRY_AFTER */
  size_t global_queue_budget; /* pending events service-wide before OVERLOADED */
  size_t max_batch_events;    /* max coalesced events per published epoch */
} remspan_service_config_t;

/* Fills `out_config` with the library defaults (a no-op on NULL). */
REMSPAN_API void remspan_service_config_default(remspan_service_config_t* out_config);

/* Creates a service; NULL `config` means defaults. */
REMSPAN_API remspan_status_t remspan_service_create(const remspan_service_config_t* config,
                                                    remspan_service_t** out_service);

/* Opens a tenant maintaining `spanner_spec` over a copy of `graph`'s
 * topology and publishes its epoch-0 snapshot. REMSPAN_ERR_UNSUPPORTED for
 * constructions without incremental maintenance (supported: th1, th2,
 * th3); REMSPAN_ERR_INVALID_ARGUMENT at the tenant capacity limit. */
REMSPAN_API remspan_status_t remspan_service_open_tenant(remspan_service_t* service,
                                                         const remspan_graph_t* graph,
                                                         const char* spanner_spec,
                                                         uint32_t* out_tenant);

/* Graceful eviction: drains the tenant's accepted events (publishing final
 * epochs), then removes it. */
REMSPAN_API remspan_status_t remspan_service_close_tenant(remspan_service_t* service,
                                                          uint32_t tenant);

/* Admission-controlled ingestion of one event batch (all-or-nothing: a
 * rejected batch changes nothing but the rejection counter). On REMSPAN_OK
 * *out_admission holds the remspan_admission_t verdict (out-pointer
 * optional). Event validation is per remspan_session_apply. */
REMSPAN_API remspan_status_t remspan_service_submit(remspan_service_t* service, uint32_t tenant,
                                                    const remspan_event_t* events,
                                                    size_t num_events,
                                                    uint32_t* out_admission);

/* Drains the tenant's queue to empty on the calling thread, publishing an
 * epoch per coalesced batch. */
REMSPAN_API remspan_status_t remspan_service_flush(remspan_service_t* service, uint32_t tenant);

/* remspan_service_flush over every tenant. */
REMSPAN_API remspan_status_t remspan_service_drain(remspan_service_t* service);

/* Current published epoch of the tenant (0 is the open-time build;
 * monotone non-decreasing). Returns 0 for unknown tenants. */
REMSPAN_API uint64_t remspan_service_epoch(const remspan_service_t* service, uint32_t tenant);

/* 1 if {u,v} is in the tenant's current-epoch spanner, 0 otherwise
 * (unknown tenants/nodes/edges included). */
REMSPAN_API int remspan_service_contains(const remspan_service_t* service, uint32_t tenant,
                                         uint32_t u, uint32_t v);

REMSPAN_API size_t remspan_service_spanner_num_edges(const remspan_service_t* service,
                                                     uint32_t tenant);

/* Current-epoch spanner edges, like remspan_spanner_edges. */
REMSPAN_API size_t remspan_service_spanner_edges(const remspan_service_t* service,
                                                 uint32_t tenant, uint32_t* endpoints,
                                                 size_t max_edges);

/* Sampled remote-stretch probe against the current epoch: worst
 * d_{H_u}(u,v) / d_G(u,v) over `pairs` seeded draws (1.0 when no draw hits
 * a connected nonadjacent pair). Deterministic in (pairs, seed, epoch). */
REMSPAN_API remspan_status_t remspan_service_stretch(const remspan_service_t* service,
                                                     uint32_t tenant, size_t pairs,
                                                     uint64_t seed, double* out_max_ratio);

/* Point-in-time per-tenant accounting (cumulative unless noted). */
typedef struct remspan_tenant_stats {
  uint64_t epoch;
  uint64_t graph_version;
  size_t queue_depth; /* current pending coalesced events */
  uint64_t events_submitted;
  uint64_t events_accepted;
  uint64_t events_coalesced; /* accepted events absorbed before the engine */
  uint64_t events_applied;
  uint64_t batches_applied;
  uint64_t rejected_retry_after;
  uint64_t rejected_overloaded;
  size_t spanner_edges;
} remspan_tenant_stats_t;

REMSPAN_API remspan_status_t remspan_service_tenant_stats(const remspan_service_t* service,
                                                          uint32_t tenant,
                                                          remspan_tenant_stats_t* out_stats);

/* Service-wide aggregates over open tenants plus lifetime totals. */
typedef struct remspan_service_totals {
  size_t tenants_open;
  uint64_t tenants_opened; /* lifetime */
  uint64_t tenants_closed; /* lifetime */
  size_t queue_depth;
  uint64_t epochs_published;
  uint64_t events_submitted;
  uint64_t events_accepted;
  uint64_t events_coalesced;
  uint64_t events_applied;
  uint64_t batches_applied;
  uint64_t rejected_retry_after;
  uint64_t rejected_overloaded;
} remspan_service_totals_t;

REMSPAN_API remspan_status_t remspan_service_stats(const remspan_service_t* service,
                                                   remspan_service_totals_t* out_stats);

/* Stops the workers and frees every tenant. Snapshots already handed out
 * stay valid; call remspan_service_drain first for a graceful wind-down. */
REMSPAN_API void remspan_service_free(remspan_service_t* service);

/* --- observability (additive, ABI version unchanged) -------------------- */

/* Turns the process-wide metrics registry on (non-zero) or off (zero).
 * Disabled is the default and costs one predicted branch per hook site;
 * enabling never changes any computed result. Collected values survive a
 * disable/enable cycle. Do not toggle while another thread is inside a
 * library call. */
REMSPAN_API remspan_status_t remspan_metrics_enable(int enable);

/* JSON snapshot of every collected counter, gauge and histogram (schema:
 * docs/OBSERVABILITY.md). Valid JSON with empty sections when metrics were
 * never enabled. The pointer is owned by the library and valid on the
 * calling thread until the next remspan_metrics_snapshot call; returns ""
 * on internal failure. */
REMSPAN_API const char* remspan_metrics_snapshot(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* REMSPAN_REMSPAN_H_ */
