"""ctypes bindings for the remspan C ABI (include/remspan/remspan.h).

Pure standard library — no dependencies beyond a built libremspan_c. The
library is located through the REMSPAN_LIBRARY environment variable, an
explicit path passed to load(), or the default build tree next to this
file (../build/libremspan_c.so).

Quickstart:

    import remspan

    g = remspan.Graph.generate("udg?n=300&side=5&seed=3")
    h = remspan.Spanner.build(g, "th2?k=2")
    print(len(h.edges()), "of", g.num_edges(), "edges")
    report = h.verify(g)
    assert report.satisfied

    svc = remspan.Service(workers=0)
    t = svc.open_tenant(g, "th2?k=1")
    svc.submit(t, [("edge_up", 0, 7), ("node_down", 3)])
    svc.flush(t)
    assert svc.epoch(t) == 1

Every failing call raises RemspanError carrying the status code and the
thread-local message from remspan_last_error().
"""

from __future__ import annotations

import ctypes
import ctypes.util
import enum
import os
from typing import Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "RemspanError",
    "Status",
    "Admission",
    "Graph",
    "Spanner",
    "Session",
    "Service",
    "VerifyReport",
    "abi_version",
    "load",
]

_EXPECTED_ABI_VERSION = 1


class Status(enum.IntEnum):
    OK = 0
    INVALID_ARGUMENT = 1
    PARSE = 2
    IO = 3
    UNSUPPORTED = 4
    INTERNAL = 5


class Admission(enum.IntEnum):
    ACCEPTED = 0
    RETRY_AFTER = 1
    OVERLOADED = 2


class RemspanError(RuntimeError):
    """A remspan call returned a non-OK status."""

    def __init__(self, status: Status, message: str):
        super().__init__(f"{status.name}: {message}")
        self.status = status
        self.message = message


class _Event(ctypes.Structure):
    _fields_ = [("kind", ctypes.c_uint32), ("u", ctypes.c_uint32), ("v", ctypes.c_uint32)]


class _BatchStats(ctypes.Structure):
    _fields_ = [
        ("version", ctypes.c_uint64),
        ("applied_events", ctypes.c_size_t),
        ("inserted_edges", ctypes.c_size_t),
        ("removed_edges", ctypes.c_size_t),
        ("dirty_roots", ctypes.c_size_t),
        ("rebuilt_tree_edges", ctypes.c_size_t),
        ("spanner_edges", ctypes.c_size_t),
        ("seconds", ctypes.c_double),
    ]


class _ServiceConfig(ctypes.Structure):
    _fields_ = [
        ("worker_threads", ctypes.c_uint32),
        ("max_tenants", ctypes.c_uint32),
        ("tenant_queue_budget", ctypes.c_size_t),
        ("global_queue_budget", ctypes.c_size_t),
        ("max_batch_events", ctypes.c_size_t),
    ]


class _TenantStats(ctypes.Structure):
    _fields_ = [
        ("epoch", ctypes.c_uint64),
        ("graph_version", ctypes.c_uint64),
        ("queue_depth", ctypes.c_size_t),
        ("events_submitted", ctypes.c_uint64),
        ("events_accepted", ctypes.c_uint64),
        ("events_coalesced", ctypes.c_uint64),
        ("events_applied", ctypes.c_uint64),
        ("batches_applied", ctypes.c_uint64),
        ("rejected_retry_after", ctypes.c_uint64),
        ("rejected_overloaded", ctypes.c_uint64),
        ("spanner_edges", ctypes.c_size_t),
    ]


class _ServiceTotals(ctypes.Structure):
    _fields_ = [
        ("tenants_open", ctypes.c_size_t),
        ("tenants_opened", ctypes.c_uint64),
        ("tenants_closed", ctypes.c_uint64),
        ("queue_depth", ctypes.c_size_t),
        ("epochs_published", ctypes.c_uint64),
        ("events_submitted", ctypes.c_uint64),
        ("events_accepted", ctypes.c_uint64),
        ("events_coalesced", ctypes.c_uint64),
        ("events_applied", ctypes.c_uint64),
        ("batches_applied", ctypes.c_uint64),
        ("rejected_retry_after", ctypes.c_uint64),
        ("rejected_overloaded", ctypes.c_uint64),
    ]


_EVENT_KINDS = {"edge_up": 0, "edge_down": 1, "node_up": 2, "node_down": 3}

# An event is ("edge_up", u, v) / ("node_down", u) style tuples.
Event = Union[Tuple[str, int, int], Tuple[str, int]]

_lib: Optional[ctypes.CDLL] = None


def _candidate_paths() -> List[str]:
    paths = []
    env = os.environ.get("REMSPAN_LIBRARY")
    if env:
        paths.append(env)
    here = os.path.dirname(os.path.abspath(__file__))
    for rel in ("../build/libremspan_c.so", "../build/libremspan_c.dylib"):
        paths.append(os.path.normpath(os.path.join(here, rel)))
    found = ctypes.util.find_library("remspan_c")
    if found:
        paths.append(found)
    return paths


def load(path: Optional[str] = None) -> ctypes.CDLL:
    """Loads libremspan_c (idempotent) and checks the ABI version."""
    global _lib
    if _lib is not None and path is None:
        return _lib
    candidates = [path] if path else _candidate_paths()
    errors = []
    lib = None
    for candidate in candidates:
        try:
            lib = ctypes.CDLL(candidate)
            break
        except OSError as e:  # keep looking, remember why
            errors.append(f"{candidate}: {e}")
    if lib is None:
        raise RemspanError(
            Status.IO,
            "cannot load libremspan_c (set REMSPAN_LIBRARY); tried:\n  " + "\n  ".join(errors),
        )
    _declare(lib)
    got = lib.remspan_abi_version()
    if got != _EXPECTED_ABI_VERSION:
        raise RemspanError(
            Status.UNSUPPORTED,
            f"ABI version mismatch: library implements {got}, bindings expect "
            f"{_EXPECTED_ABI_VERSION}",
        )
    _lib = lib
    return lib


def _declare(lib: ctypes.CDLL) -> None:
    p = ctypes.POINTER
    void_p, char_p = ctypes.c_void_p, ctypes.c_char_p
    u32, u64, sz, dbl = ctypes.c_uint32, ctypes.c_uint64, ctypes.c_size_t, ctypes.c_double
    status, cint = ctypes.c_int, ctypes.c_int
    sigs = {
        "remspan_abi_version": (u32, []),
        "remspan_last_error": (char_p, []),
        "remspan_graph_from_edges": (status, [u32, p(u32), sz, p(void_p)]),
        "remspan_graph_load": (status, [char_p, p(void_p)]),
        "remspan_graph_generate": (status, [char_p, p(void_p)]),
        "remspan_graph_num_nodes": (u32, [void_p]),
        "remspan_graph_num_edges": (sz, [void_p]),
        "remspan_graph_edges": (sz, [void_p, p(u32), sz]),
        "remspan_graph_free": (None, [void_p]),
        "remspan_spanner_build": (status, [void_p, char_p, p(void_p)]),
        "remspan_spanner_spec": (char_p, [void_p]),
        "remspan_spanner_num_edges": (sz, [void_p]),
        "remspan_spanner_edges": (sz, [void_p, p(u32), sz]),
        "remspan_spanner_contains": (cint, [void_p, u32, u32]),
        "remspan_spanner_guarantee": (status, [void_p, p(dbl), p(dbl)]),
        "remspan_spanner_verify": (status, [void_p, void_p, u64, p(cint), p(dbl)]),
        "remspan_spanner_free": (None, [void_p]),
        "remspan_session_open": (status, [void_p, char_p, p(void_p)]),
        "remspan_session_apply": (status, [void_p, p(_Event), sz, p(_BatchStats)]),
        "remspan_session_spanner_num_edges": (sz, [void_p]),
        "remspan_session_spanner_edges": (sz, [void_p, p(u32), sz]),
        "remspan_session_graph": (status, [void_p, p(void_p)]),
        "remspan_session_free": (None, [void_p]),
        "remspan_service_config_default": (None, [p(_ServiceConfig)]),
        "remspan_service_create": (status, [p(_ServiceConfig), p(void_p)]),
        "remspan_service_open_tenant": (status, [void_p, void_p, char_p, p(u32)]),
        "remspan_service_close_tenant": (status, [void_p, u32]),
        "remspan_service_submit": (status, [void_p, u32, p(_Event), sz, p(u32)]),
        "remspan_service_flush": (status, [void_p, u32]),
        "remspan_service_drain": (status, [void_p]),
        "remspan_service_epoch": (u64, [void_p, u32]),
        "remspan_service_contains": (cint, [void_p, u32, u32, u32]),
        "remspan_service_spanner_num_edges": (sz, [void_p, u32]),
        "remspan_service_spanner_edges": (sz, [void_p, u32, p(u32), sz]),
        "remspan_service_stretch": (status, [void_p, u32, sz, u64, p(dbl)]),
        "remspan_service_tenant_stats": (status, [void_p, u32, p(_TenantStats)]),
        "remspan_service_stats": (status, [void_p, p(_ServiceTotals)]),
        "remspan_service_free": (None, [void_p]),
    }
    for name, (restype, argtypes) in sigs.items():
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = argtypes


def _check(status: int) -> None:
    if status != Status.OK:
        message = load().remspan_last_error().decode("utf-8", "replace")
        raise RemspanError(Status(status), message)


def abi_version() -> int:
    return load().remspan_abi_version()


def _pack_events(events: Sequence[Event]):
    batch = (_Event * max(1, len(events)))()
    for i, event in enumerate(events):
        kind = _EVENT_KINDS.get(event[0])
        if kind is None:
            raise ValueError(f"unknown event kind {event[0]!r} (expected {set(_EVENT_KINDS)})")
        batch[i].kind = kind
        batch[i].u = event[1]
        batch[i].v = event[2] if len(event) > 2 else 0
    return batch


def _unpack_edges(count: int, fill) -> List[Tuple[int, int]]:
    buf = (ctypes.c_uint32 * (2 * max(1, count)))()
    written = fill(buf, count)
    return [(buf[2 * i], buf[2 * i + 1]) for i in range(written)]


class _Handle:
    """Owns one C handle; subclasses set _free to their destructor name."""

    _free = ""

    def __init__(self, ptr: ctypes.c_void_p):
        self._ptr = ptr

    def close(self) -> None:
        # _lib directly (not load()): __del__ may run during interpreter
        # shutdown when re-resolving the library is no longer possible.
        if getattr(self, "_ptr", None) and _lib is not None:
            getattr(_lib, self._free)(self._ptr)
            self._ptr = None

    __del__ = close

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False

    @property
    def _raw(self):
        if self._ptr is None:
            raise RemspanError(Status.INVALID_ARGUMENT, "handle already closed")
        return self._ptr


class Graph(_Handle):
    _free = "remspan_graph_free"

    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Tuple[int, int]]) -> "Graph":
        flat = [x for uv in edges for x in uv]
        arr = (ctypes.c_uint32 * max(1, len(flat)))(*flat)
        out = ctypes.c_void_p()
        _check(load().remspan_graph_from_edges(num_nodes, arr, len(flat) // 2,
                                               ctypes.byref(out)))
        return cls(out)

    @classmethod
    def generate(cls, graph_spec: str) -> "Graph":
        out = ctypes.c_void_p()
        _check(load().remspan_graph_generate(graph_spec.encode(), ctypes.byref(out)))
        return cls(out)

    @classmethod
    def load_file(cls, path: str) -> "Graph":
        out = ctypes.c_void_p()
        _check(load().remspan_graph_load(path.encode(), ctypes.byref(out)))
        return cls(out)

    def num_nodes(self) -> int:
        return load().remspan_graph_num_nodes(self._raw)

    def num_edges(self) -> int:
        return load().remspan_graph_num_edges(self._raw)

    def edges(self) -> List[Tuple[int, int]]:
        lib = self._raw
        return _unpack_edges(self.num_edges(),
                             lambda buf, n: load().remspan_graph_edges(lib, buf, n))


class VerifyReport:
    def __init__(self, satisfied: bool, max_ratio: float):
        self.satisfied = satisfied
        self.max_ratio = max_ratio

    def __repr__(self):
        return f"VerifyReport(satisfied={self.satisfied}, max_ratio={self.max_ratio})"


class Spanner(_Handle):
    _free = "remspan_spanner_free"

    @classmethod
    def build(cls, graph: Graph, spanner_spec: str) -> "Spanner":
        out = ctypes.c_void_p()
        _check(load().remspan_spanner_build(graph._raw, spanner_spec.encode(),
                                            ctypes.byref(out)))
        return cls(out)

    def spec(self) -> str:
        return load().remspan_spanner_spec(self._raw).decode()

    def num_edges(self) -> int:
        return load().remspan_spanner_num_edges(self._raw)

    def edges(self) -> List[Tuple[int, int]]:
        raw = self._raw
        return _unpack_edges(self.num_edges(),
                             lambda buf, n: load().remspan_spanner_edges(raw, buf, n))

    def contains(self, u: int, v: int) -> bool:
        return bool(load().remspan_spanner_contains(self._raw, u, v))

    def guarantee(self) -> Tuple[float, float]:
        alpha, beta = ctypes.c_double(), ctypes.c_double()
        _check(load().remspan_spanner_guarantee(self._raw, ctypes.byref(alpha),
                                                ctypes.byref(beta)))
        return alpha.value, beta.value

    def verify(self, graph: Graph, seed: int = 1) -> VerifyReport:
        satisfied, ratio = ctypes.c_int(), ctypes.c_double()
        _check(load().remspan_spanner_verify(graph._raw, self._raw, seed,
                                             ctypes.byref(satisfied), ctypes.byref(ratio)))
        return VerifyReport(bool(satisfied.value), ratio.value)


class Session(_Handle):
    _free = "remspan_session_free"

    @classmethod
    def open(cls, graph: Graph, spanner_spec: str) -> "Session":
        out = ctypes.c_void_p()
        _check(load().remspan_session_open(graph._raw, spanner_spec.encode(),
                                           ctypes.byref(out)))
        return cls(out)

    def apply(self, events: Sequence[Event]) -> dict:
        stats = _BatchStats()
        _check(load().remspan_session_apply(self._raw, _pack_events(events), len(events),
                                            ctypes.byref(stats)))
        return {name: getattr(stats, name) for name, _ in _BatchStats._fields_}

    def spanner_num_edges(self) -> int:
        return load().remspan_session_spanner_num_edges(self._raw)

    def spanner_edges(self) -> List[Tuple[int, int]]:
        raw = self._raw
        return _unpack_edges(self.spanner_num_edges(),
                             lambda buf, n: load().remspan_session_spanner_edges(raw, buf, n))

    def graph(self) -> Graph:
        out = ctypes.c_void_p()
        _check(load().remspan_session_graph(self._raw, ctypes.byref(out)))
        return Graph(out)


class Service(_Handle):
    """The multi-tenant serving layer (src/serve behind the C ABI)."""

    _free = "remspan_service_free"

    def __init__(self, workers: Optional[int] = None, max_tenants: Optional[int] = None,
                 tenant_queue_budget: Optional[int] = None,
                 global_queue_budget: Optional[int] = None,
                 max_batch_events: Optional[int] = None):
        cfg = _ServiceConfig()
        load().remspan_service_config_default(ctypes.byref(cfg))
        if workers is not None:
            cfg.worker_threads = workers
        if max_tenants is not None:
            cfg.max_tenants = max_tenants
        if tenant_queue_budget is not None:
            cfg.tenant_queue_budget = tenant_queue_budget
        if global_queue_budget is not None:
            cfg.global_queue_budget = global_queue_budget
        if max_batch_events is not None:
            cfg.max_batch_events = max_batch_events
        out = ctypes.c_void_p()
        _check(load().remspan_service_create(ctypes.byref(cfg), ctypes.byref(out)))
        super().__init__(out)

    def open_tenant(self, graph: Graph, spanner_spec: str) -> int:
        tenant = ctypes.c_uint32()
        _check(load().remspan_service_open_tenant(self._raw, graph._raw,
                                                  spanner_spec.encode(), ctypes.byref(tenant)))
        return tenant.value

    def close_tenant(self, tenant: int) -> None:
        _check(load().remspan_service_close_tenant(self._raw, tenant))

    def submit(self, tenant: int, events: Sequence[Event]) -> Admission:
        verdict = ctypes.c_uint32()
        _check(load().remspan_service_submit(self._raw, tenant, _pack_events(events),
                                             len(events), ctypes.byref(verdict)))
        return Admission(verdict.value)

    def flush(self, tenant: int) -> None:
        _check(load().remspan_service_flush(self._raw, tenant))

    def drain(self) -> None:
        _check(load().remspan_service_drain(self._raw))

    def epoch(self, tenant: int) -> int:
        return load().remspan_service_epoch(self._raw, tenant)

    def contains(self, tenant: int, u: int, v: int) -> bool:
        return bool(load().remspan_service_contains(self._raw, tenant, u, v))

    def spanner_num_edges(self, tenant: int) -> int:
        return load().remspan_service_spanner_num_edges(self._raw, tenant)

    def spanner_edges(self, tenant: int) -> List[Tuple[int, int]]:
        raw = self._raw
        return _unpack_edges(
            self.spanner_num_edges(tenant),
            lambda buf, n: load().remspan_service_spanner_edges(raw, tenant, buf, n))

    def stretch(self, tenant: int, pairs: int = 64, seed: int = 1) -> float:
        ratio = ctypes.c_double()
        _check(load().remspan_service_stretch(self._raw, tenant, pairs, seed,
                                              ctypes.byref(ratio)))
        return ratio.value

    def tenant_stats(self, tenant: int) -> dict:
        stats = _TenantStats()
        _check(load().remspan_service_tenant_stats(self._raw, tenant, ctypes.byref(stats)))
        return {name: getattr(stats, name) for name, _ in _TenantStats._fields_}

    def stats(self) -> dict:
        totals = _ServiceTotals()
        _check(load().remspan_service_stats(self._raw, ctypes.byref(totals)))
        return {name: getattr(totals, name) for name, _ in _ServiceTotals._fields_}
