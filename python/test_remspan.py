"""Smoke test for the ctypes bindings, run by ctest as python.bindings_smoke.

Drives every wrapped call group once against libremspan_c: graph build and
generate, build-by-spec + verify, session batches (cross-checked bit-exact
against a from-scratch rebuild), and the multi-tenant service (epochs,
admission verdicts, stats, eviction). Exits non-zero on the first failure.

Usage: python3 test_remspan.py [path/to/libremspan_c.so]
"""

import sys

import remspan


def main() -> int:
    if len(sys.argv) > 1:
        remspan.load(sys.argv[1])
    assert remspan.abi_version() == 1

    # Graphs: explicit edges and spec generation.
    g = remspan.Graph.from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 5)])
    assert g.num_nodes() == 6 and g.num_edges() == 7
    assert g.edges()[0] == (0, 1)
    udg = remspan.Graph.generate("udg?n=200&side=5&seed=3")
    assert udg.num_nodes() == 200

    # Errors surface as RemspanError with the right status.
    try:
        remspan.Graph.generate("dodecahedron?n=5")
        raise AssertionError("bad spec was accepted")
    except remspan.RemspanError as e:
        assert e.status == remspan.Status.PARSE, e

    # Build-by-spec, queries, exact-oracle verification.
    h = remspan.Spanner.build(udg, "th2?k=2")
    assert h.spec() == "th2?k=2"
    assert 0 < h.num_edges() <= udg.num_edges()
    u, v = h.edges()[0]
    assert h.contains(u, v) and h.contains(v, u)
    assert h.guarantee() == (1.0, 0.0)
    report = h.verify(udg)
    assert report.satisfied and report.max_ratio >= 1.0, report

    # Incremental session: batch stats and bit-exactness vs from-scratch.
    s = remspan.Session.open(udg, "th2?k=1")
    stats = s.apply([("edge_up", 0, 199), ("node_down", 7), ("node_down", 7)])
    assert stats["version"] > 0
    snap = s.graph()
    scratch = remspan.Spanner.build(snap, "th2?k=1")
    assert s.spanner_edges() == scratch.edges()

    # Service: deterministic synchronous mode end to end.
    svc = remspan.Service(workers=0, tenant_queue_budget=8)
    t = svc.open_tenant(udg, "th2?k=1")
    assert svc.epoch(t) == 0
    assert svc.spanner_num_edges(t) > 0
    verdict = svc.submit(t, [("edge_up", 0, 150), ("edge_up", 1, 151)])
    assert verdict == remspan.Admission.ACCEPTED
    svc.flush(t)
    assert svc.epoch(t) == 1
    assert svc.contains(t, 0, 150)
    assert svc.stretch(t, pairs=32, seed=1) >= 1.0

    # Over the 8-cell budget in one batch: rejected, nothing changes.
    big = [("edge_up", 0, 100 + i) for i in range(9)]
    assert svc.submit(t, big) == remspan.Admission.RETRY_AFTER
    ts = svc.tenant_stats(t)
    assert ts["rejected_retry_after"] == 1 and ts["queue_depth"] == 0

    totals = svc.stats()
    assert totals["tenants_open"] == 1 and totals["epochs_published"] >= 2
    svc.close_tenant(t)
    assert svc.stats()["tenants_closed"] == 1

    try:
        svc.flush(t)
        raise AssertionError("flush of an evicted tenant succeeded")
    except remspan.RemspanError as e:
        assert e.status == remspan.Status.INVALID_ARGUMENT, e

    print("python bindings smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
