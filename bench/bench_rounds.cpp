// E8 — Table 1's "Comp. time" column: every construction runs in O(1)
// rounds (O(eps^-1) for Theorem 1), independent of n. Measured on the
// synchronous simulator: exact round counts (paper formula 2r - 1 + 2*beta)
// and communication volume per node.
#include <algorithm>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "sim/remspan_protocol.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const double side = opts.get_double("side", 7.0);
  const auto n_max = static_cast<std::uint64_t>(opts.get_int("n-max", 800));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("rounds");
  report.param("side", side);
  report.param("n_max", n_max);

  banner("Table E8 — distributed round complexity of Algorithm RemSpan",
         "paper: 2r-1+2beta rounds, independent of n (Section 2.3, Theorems 1-3)");

  bool all_rounds_match = true;
  std::size_t max_rounds = 0;
  double max_tx_per_node = 0.0;
  Table table({"n", "construction", "scope", "rounds", "paper", "tx/node", "words/node"});
  for (std::uint64_t n = 200; n <= n_max; n *= 2) {
    const Graph g = paper_udg(side, static_cast<double>(n), 70 + n);
    // Protocol configs come from the registry by spec (eps=.5 -> r=3,
    // eps=.25 -> r=5).
    struct Case {
      const char* name;
      RemSpanConfig cfg;
    };
    const std::vector<Case> cases = {
        {"(1,0)-rem-span [Th.2 k=1]", api::protocol_config(api::parse_spanner_spec("th2?k=1"))},
        {"2-conn (2,-1) [Th.3]", api::protocol_config(api::parse_spanner_spec("th3?k=2"))},
        {"OLSR MPR union [RFC 3626]", api::protocol_config(api::parse_spanner_spec("mpr"))},
        {"(1.5,0)-rem-span [Th.1 eps=.5]",
         api::protocol_config(api::parse_spanner_spec("th1?eps=0.5"))},
        {"(1.25,.5)-rem-span [Th.1 eps=.25]",
         api::protocol_config(api::parse_spanner_spec("th1?eps=0.25"))},
    };
    for (const auto& [name, cfg] : cases) {
      const auto run = run_remspan_distributed(g, cfg);
      all_rounds_match = all_rounds_match && run.rounds == cfg.expected_rounds();
      max_rounds = std::max<std::size_t>(max_rounds, run.rounds);
      max_tx_per_node = std::max(max_tx_per_node,
                                 static_cast<double>(run.stats.transmissions) /
                                     static_cast<double>(g.num_nodes()));
      table.add_row(
          {std::to_string(g.num_nodes()), name, std::to_string(cfg.flood_scope()),
           std::to_string(run.rounds), std::to_string(cfg.expected_rounds()),
           format_double(static_cast<double>(run.stats.transmissions) /
                             static_cast<double>(g.num_nodes()),
                         1),
           format_double(static_cast<double>(run.stats.payload_words) /
                             static_cast<double>(g.num_nodes()),
                         0)});
    }
  }
  table.print(std::cout);
  std::cout << "\n'rounds' must equal 'paper' on every row and stay constant as n\n"
               "quadruples; transmissions per node depend only on the flooding scope\n"
               "(ball size), not on n.\n";
  report.value("all_rounds_match_paper", static_cast<std::int64_t>(all_rounds_match));
  report.value("max_rounds", max_rounds);
  report.value("max_tx_per_node", max_tx_per_node);
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
