// E13 — the paper's universality claim (Section 1.2): "our algorithm works
// properly on any graph, i.e. computes a (1+eps, 1-2eps)-remote-spanner
// whatever the input is" — only the SIZE bounds need the UBG assumption.
// Measured: all three constructions on eight structurally different graph
// families, with the exact oracles verifying every guarantee.
#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "geom/synthetic.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<NodeId>(opts.get_int("n", 300));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 61));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("families");
  report.seed(seed);
  report.param("n", n);

  banner("Table E13 — guarantees hold on ANY graph (universality)",
         "paper §1.2: the constructions never need the UBG assumption for correctness");

  struct Family {
    std::string name;
    Graph g;
  };
  Rng rng(seed);
  std::vector<Family> families;
  families.push_back({"G(n,p) sparse", connected_gnp(n, 6.0 / n, rng)});
  families.push_back({"G(n,p) dense", connected_gnp(n, 40.0 / n, rng)});
  families.push_back({"Barabasi-Albert m=3", largest_component(barabasi_albert(n, 3, rng))});
  families.push_back(
      {"Watts-Strogatz k=6 p=.1", largest_component(watts_strogatz(n, 6, 0.1, rng))});
  families.push_back({"random 6-regular", largest_component(random_regular(n, 6, rng))});
  families.push_back({"grid", grid_graph(17, 18)});
  families.push_back({"hypercube d=8", hypercube_graph(8)});
  families.push_back({"random UDG", paper_udg(6.0, n, seed + 1)});

  Table table({"family", "n", "m", "Th1 e=.5 edges", "Th1 ok", "Th2 k=1 edges",
               "Th2 ok", "Th3 edges", "Th3 ok"});
  bool all_ok = true;
  for (const auto& fam : families) {
    const Graph& g = fam.g;
    const EdgeSet th1 = api::build_spanner(g, "th1?eps=0.5").edges;
    const EdgeSet th2 = api::build_spanner(g, "th2?k=1").edges;
    const EdgeSet th3 = api::build_spanner(g, "th3?k=2").edges;
    const bool ok1 = check_remote_stretch(g, th1, Stretch{1.5, 0.0}).satisfied;
    const bool ok2 = check_remote_stretch(g, th2, Stretch{1.0, 0.0}).satisfied;
    const bool ok3 =
        check_k_connecting_stretch(g, th3, 2, Stretch{2.0, -1.0}, 120, seed).satisfied;
    all_ok = all_ok && ok1 && ok2 && ok3;
    table.add_row({fam.name, std::to_string(g.num_nodes()), std::to_string(g.num_edges()),
                   std::to_string(th1.size()), ok1 ? "yes" : "NO",
                   std::to_string(th2.size()), ok2 ? "yes" : "NO",
                   std::to_string(th3.size()), ok3 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << (all_ok ? "\nall guarantees verified on all families\n"
                       : "\nGUARANTEE VIOLATION — see table\n");
  report.value("families", families.size());
  report.value("all_guarantees_hold", static_cast<std::int64_t>(all_ok));
  report.finish();
  return all_ok ? 0 : 1;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
