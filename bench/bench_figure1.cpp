// E2 — Figure 1 as a regression bench: the canonical 7-node unit disk
// graph analogue; regenerates the caption's facts and fails loudly (exit
// code) if any property stops holding.
#include <cstdlib>

#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "graph/disjoint_paths.hpp"

using namespace remspan;
using namespace remspan::bench;

int main() {
  Report report("figure1");
  banner("Figure 1 — the paper's worked example (analogue coordinates)",
         "paper: (b) sparse (1,0)-rem-span; (c) (2,-1)-rem-span; (d) 2-connecting variant");

  PointSet points(2);
  points.add2(0.00, 0.00);   // 0 = u
  points.add2(0.95, 0.00);   // 1 = m
  points.add2(1.90, 0.00);   // 2 = v
  points.add2(0.50, 0.62);   // 3 = y
  points.add2(1.40, 0.62);   // 4 = x
  points.add2(0.50, -0.62);  // 5 = y'
  points.add2(1.40, -0.62);  // 6 = x'
  const GeometricGraph gg = unit_ball_graph(std::move(points), MetricKind::L2, 1.0);
  const Graph& g = gg.graph;

  const EdgeSet hb = api::build_spanner(g, "th2?k=1").edges;
  const EdgeSet hc = api::build_spanner(g, "th1?eps=1").edges;
  const EdgeSet hd = api::build_spanner(g, "th3?k=2").edges;

  const bool b_ok = check_remote_stretch(g, hb, Stretch{1, 0}).satisfied;
  const bool b_sparse = hb.size() < g.num_edges();
  const bool c_ok = check_remote_stretch(g, hc, Stretch{2, -1}).satisfied;
  const bool d_ok = check_k_connecting_stretch(g, hd, 2, Stretch{2, -1}).satisfied;
  const auto uv = min_disjoint_paths(AugmentedView(hd, 0), 0, 2, 2);
  const bool d_two_paths = uv.connectivity() == 2;

  Table table({"figure", "object", "edges/input", "property", "holds"});
  table.add_row({"1(a)", "unit disk graph G^a", std::to_string(g.num_edges()) + "/-",
                 "n=7 UDG", "yes"});
  table.add_row({"1(b)", "(1,0)-remote-spanner H^b",
                 std::to_string(hb.size()) + "/" + std::to_string(g.num_edges()),
                 "exact remote distances, strictly sparser than G",
                 (b_ok && b_sparse) ? "yes" : "NO"});
  table.add_row({"1(c)", "(2,-1)-remote-spanner H^c",
                 std::to_string(hc.size()) + "/" + std::to_string(g.num_edges()),
                 "d_{H_u}(u,v) <= 2 d_G(u,v) - 1", c_ok ? "yes" : "NO"});
  table.add_row({"1(d)", "2-connecting H^d",
                 std::to_string(hd.size()) + "/" + std::to_string(g.num_edges()),
                 "two disjoint u-v paths in H^d_u, length sum <= 2 d^2 - 2",
                 (d_ok && d_two_paths) ? "yes" : "NO"});
  table.print(std::cout);

  const bool all = b_ok && b_sparse && c_ok && d_ok && d_two_paths;
  std::cout << (all ? "\nall Figure 1 properties reproduced\n"
                    : "\nFIGURE 1 REPRODUCTION FAILED\n");

  report.param("n", g.num_nodes());
  report.value("input_edges", g.num_edges());
  report.value("edges_1b", hb.size());
  report.value("edges_1c", hc.size());
  report.value("edges_1d", hd.size());
  report.value("uv_disjoint_paths", static_cast<std::int64_t>(uv.connectivity()));
  report.value("all_properties_hold", static_cast<std::int64_t>(all));
  report.finish();
  return all ? EXIT_SUCCESS : EXIT_FAILURE;
}
