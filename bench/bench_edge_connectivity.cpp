// E14 — the paper's concluding remark: "it seems possible to extend our
// results to edge-connectivity where we consider paths that are
// edge-disjoint rather than internal-node disjoint."
//
// Empirical exploration of that conjecture: does the union of k-connecting
// (2,0)-dominating trees (Theorem 2's construction, unchanged) already
// preserve k-EDGE-connecting distances exactly? Node-disjoint paths are
// edge-disjoint, so ed^k <= d^k always; the open question is whether
// ed^{k'}_{H_s} = ed^{k'}_G for all k' <= k. We test it exhaustively on
// sampled pairs across families and report violations (none observed at
// these sizes — evidence for the conjecture, not a proof).
#include "analysis/edge_conn_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "core/remote_spanner.hpp"
#include "geom/synthetic.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<NodeId>(opts.get_int("n", 150));
  const auto pairs = static_cast<std::size_t>(opts.get_int("pairs", 250));
  const auto reps = static_cast<int>(opts.get_int("reps", 4));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("edge_connectivity");
  report.param("n", n);
  report.param("pairs", pairs);
  report.param("reps", reps);

  banner("Table E14 — edge-connectivity extension (paper's concluding remark)",
         "conjecture: Th.2's construction is also k-EDGE-connecting (1,0); tested empirically");

  Table table({"family", "k", "coverage", "pairs", "violations", "conn losses",
               "max ed-ratio"});
  std::size_t violations_plain = 0;
  std::size_t violations_boosted = 0;
  for (const Dist k : {2u, 3u}) {
    for (int rep = 0; rep < reps; ++rep) {
      const auto seed = static_cast<std::uint64_t>(1000 * k + rep);
      Rng rng(seed);
      struct Fam {
        std::string name;
        Graph g;
      };
      std::vector<Fam> fams;
      fams.push_back({"G(n,p)", connected_gnp(n, 10.0 / n, rng)});
      fams.push_back({"UDG", paper_udg(4.5, n, seed + 7)});
      for (auto& [name, g] : fams) {
        // Plain Theorem 2 construction (coverage k)...
        const EdgeSet h = api::build_spanner(g, api::SpannerSpec::th2(k)).edges;
        const auto plain =
            check_k_edge_connecting_stretch(g, h, k, Stretch{1.0, 0.0}, pairs, seed);
        violations_plain += plain.violations;
        table.add_row({name + " rep" + std::to_string(rep), std::to_string(k),
                       "k", std::to_string(plain.pairs_checked),
                       std::to_string(plain.violations),
                       std::to_string(plain.connectivity_losses),
                       format_double(plain.max_ratio, 3)});
        // ...vs the boosted variant (coverage k+1): the candidate repair.
        const EdgeSet hb = api::build_spanner(g, api::SpannerSpec::th2(k + 1)).edges;
        const auto boosted =
            check_k_edge_connecting_stretch(g, hb, k, Stretch{1.0, 0.0}, pairs, seed);
        violations_boosted += boosted.violations;
        table.add_row({name + " rep" + std::to_string(rep), std::to_string(k),
                       "k+1", std::to_string(boosted.pairs_checked),
                       std::to_string(boosted.violations),
                       std::to_string(boosted.connectivity_losses),
                       format_double(boosted.max_ratio, 3)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nplain (coverage k) violations: " << violations_plain
            << " | boosted (coverage k+1) violations: " << violations_boosted << "\n";
  report.value("violations_plain", violations_plain);
  report.value("violations_boosted", violations_boosted);
  report.finish();
  if (violations_plain > 0) {
    std::cout << "finding: the node-disjoint construction does NOT transfer to\n"
                 "edge-connectivity unchanged — edge-disjoint paths may share nodes,\n"
                 "which the (2,0)-dominating condition cannot always re-route.\n";
  }
  if (violations_boosted == 0) {
    std::cout << "the coverage-(k+1) variant eliminated every observed violation,\n"
                 "suggesting the extension needs one extra unit of domination.\n";
  }
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
