// E6/E7 — the k dependence of the multi-connectivity constructions:
//   Theorem 2: k-connecting (1,0)-remote-spanner on a random UDG has
//              O(k^{2/3} n^{4/3} log n) expected edges — sublinear in k;
//   Prop. 7:   each k-connecting (2,1)-dominating tree on a doubling UBG
//              has O(k^2) edges, so Theorem 3's spanner stays near-linear.
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "core/dominating_tree.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const double mean_n = opts.get_double("n", 900);
  const double side = opts.get_double("side", 8.0);
  const auto k_max = static_cast<Dist>(opts.get_int("k-max", 6));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 31));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("k_sweep");
  report.seed(seed);
  report.param("n", mean_n);
  report.param("side", side);
  report.param("k_max", k_max);

  banner("Figure E6 — k sweep of the k-connecting constructions",
         "paper: Th.2 edges ~ k^{2/3} n^{4/3} log n on random UDG; Prop.7 trees O(k^2) on UBG");

  const Graph udg = paper_udg(side, mean_n, seed);
  std::cout << "random UDG: n=" << udg.num_nodes() << " m=" << udg.num_edges() << "\n\n";
  report.value("udg_nodes", udg.num_nodes());
  report.value("udg_edges", udg.num_edges());

  Table table({"k", "edges(Th.2)", "norm k^(2/3)", "max tree(Th.2)", "edges(Th.3 UBG)",
               "max tree(Prop.7)", "tree/k^2"});
  const GeometricGraph ubg = paper_ubg(600, 6.0, 2, seed + 1);
  for (Dist k = 1; k <= k_max; ++k) {
    SpannerBuildInfo info2, info3;
    api::BuildContext ctx2, ctx3;
    ctx2.info = &info2;
    ctx3.info = &info3;
    const EdgeSet h2 = api::build_spanner(udg, api::SpannerSpec::th2(k), ctx2).edges;
    const EdgeSet h3 = api::build_spanner(ubg.graph, api::SpannerSpec::th3(k), ctx3).edges;
    const double norm =
        static_cast<double>(h2.size()) / std::pow(static_cast<double>(k), 2.0 / 3.0);
    table.add_row({std::to_string(k), std::to_string(h2.size()), format_double(norm, 0),
                   std::to_string(info2.max_tree_edges), std::to_string(h3.size()),
                   std::to_string(info3.max_tree_edges),
                   format_double(static_cast<double>(info3.max_tree_edges) /
                                     static_cast<double>(k) / static_cast<double>(k),
                                 2)});
    const std::string key = "k" + std::to_string(k);
    report.value("th2_edges_" + key, h2.size());
    report.value("th3_edges_" + key, h3.size());
    report.value("th3_max_tree_" + key, info3.max_tree_edges);
  }
  table.print(std::cout);
  std::cout << "\n'norm k^(2/3)' (edges / k^{2/3}) should flatten as k grows if the\n"
               "k^{2/3} law holds; 'tree/k^2' bounded confirms Prop. 7's O(k^2).\n";
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
