// E1 — reproduces the paper's Table 1: "Remote spanners versus regular
// spanners depending on assumptions on the input graph". One measured row
// per paper row, on the graph family the row assumes:
//
//   row 1: any graph,     (k,k-1)-spanner,        O(k n^{1+1/k})  [2]
//   row 2: any graph,     (k,0)-remote-spanner,   O(k n^{1+1/k})  via [2]
//   row 3: any graph,     (1,0)-spanner,          m (all edges)
//   row 4: any graph,     k-conn (1,0)-rem-span,  O(log n) from opt (Th.2)
//   row 5: random UDG,    (1,0)-rem-span,         O(n^{4/3} log n) (Th.2+[14])
//   row 6: UBG known d,   (1+eps,0)-spanner,      O(n) [9]
//   row 7: UBG unknown d, (1+eps,1-2eps)-rem-sp,  O(n) (Th.1)
//   row 8: points in R^d, k-fault-tol (1+eps,0),  O(kn) [8]
//   row 9: UBG unknown d, 2-conn (2,-1)-rem-span, O(n) (Th.3)
//
// Stretch guarantees are verified with the exact oracles on every row.
#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "baseline/greedy_spanner.hpp"
#include "bench_common.hpp"
#include "geom/synthetic.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n_any = static_cast<NodeId>(opts.get_int("n-any", 400));
  const double mean_udg = opts.get_double("n-udg", 600);
  const auto n_ubg = static_cast<std::size_t>(opts.get_int("n-ubg", 600));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 11));
  const Dist k = static_cast<Dist>(opts.get_int("k", 2));
  const double eps = opts.get_double("eps", 0.5);
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report json("table1");
  json.seed(seed);
  json.param("n_any", n_any);
  json.param("n_udg", mean_udg);
  json.param("n_ubg", n_ubg);
  json.param("k", k);
  json.param("eps", eps);

  banner("Table 1 — remote spanners vs regular spanners",
         "paper: per-row size bounds; measured: edges + verified stretch");

  Rng rng(seed);
  const Graph any_graph = [&] {
    Rng r2(seed);
    return connected_gnp(n_any, 60.0 / n_any, r2);
  }();
  const Graph udg = paper_udg(8.0, mean_udg, seed + 1);
  const GeometricGraph ubg = paper_ubg(n_ubg, 8.0, 2, seed + 2);
  const Graph& ubg_g = ubg.graph;

  std::cout << "inputs: any-graph n=" << any_graph.num_nodes() << " m="
            << any_graph.num_edges() << " | rand-UDG n=" << udg.num_nodes()
            << " m=" << udg.num_edges() << " | UBG n=" << ubg_g.num_nodes()
            << " m=" << ubg_g.num_edges() << "\n\n";

  Table table({"input", "type of spanner", "paper bound", "edges", "time(s)",
               "stretch verified"});
  obs::PhaseSpan timer("bench.table1", "bench");

  auto verified_remote = [](const Graph& g, const EdgeSet& h, Stretch s) {
    return check_remote_stretch(g, h, s).satisfied ? "yes" : "NO";
  };
  auto verified_classic = [](const Graph& g, const EdgeSet& h, Stretch s) {
    return check_spanner_stretch(g, h, s).satisfied ? "yes" : "NO";
  };

  // Row 1: (2k-1, 0)-spanner (Baswana-Sen) standing in for the (k,k-1) row.
  timer.reset();
  api::BuildContext ctx;
  ctx.rng = &rng;
  const EdgeSet bs = api::build_spanner(any_graph, api::SpannerSpec::baswana(k), ctx).edges;
  const double t_bs = timer.seconds();
  table.add_row({"any graph", "(2k-1,0)-span. [Baswana-Sen]", "O(k n^{1+1/k})",
                 std::to_string(bs.size()), format_double(t_bs, 3),
                 verified_classic(any_graph, bs, Stretch{2.0 * k - 1.0, 0.0})});

  // Row 2: the same object checked as a remote-spanner with the Section 1.2
  // shift: (alpha,beta)-spanner => (alpha, beta-alpha+1)-remote-spanner.
  table.add_row({"any graph", "(2k-1,2-2k)-rem.-span. [ibid]", "O(k n^{1+1/k})",
                 std::to_string(bs.size()), format_double(t_bs, 3),
                 verified_remote(any_graph, bs, Stretch{2.0 * k - 1.0, 2.0 - 2.0 * k})});

  // Row 3: a classical (1,0)-spanner keeps all edges — nothing to compute.
  table.add_row({"any graph", "(1,0)-span. (trivial)", "m (all edges)",
                 std::to_string(any_graph.num_edges()), "0.000", "yes"});

  // Row 4: k-connecting (1,0)-remote-spanner (Theorem 2).
  timer.reset();
  const EdgeSet kconn = api::build_spanner(any_graph, api::SpannerSpec::th2(k)).edges;
  const double t_kconn = timer.seconds();
  const auto kconn_ok =
      check_k_connecting_stretch(any_graph, kconn, k, Stretch{1, 0}, 150, seed);
  table.add_row({"any graph", "k-conn. (1,0)-rem.-span. [Th.2]",
                 "opt * O(log Delta)", std::to_string(kconn.size()),
                 format_double(t_kconn, 3), kconn_ok.satisfied ? "yes" : "NO"});

  // Row 5: (1,0)-remote-spanner on the paper's random UDG.
  timer.reset();
  const EdgeSet udg_h = api::build_spanner(udg, "th2?k=1").edges;
  const double t_udg = timer.seconds();
  table.add_row({"rand. UDG", "(1,0)-rem.-span. [Th.2, k=1]", "O(n^{4/3} log n)",
                 std::to_string(udg_h.size()), format_double(t_udg, 3),
                 verified_remote(udg, udg_h, Stretch{1, 0})});

  // Row 6: known-distance (1+eps,0)-spanner on the UBG (greedy, weighted).
  timer.reset();
  const EdgeSet known = greedy_spanner_weighted(ubg, 1.0 + eps);
  const double t_known = timer.seconds();
  table.add_row({"UBG known dist", "(1+eps,0)-span. [greedy, as [9]]", "O(n)",
                 std::to_string(known.size()), format_double(t_known, 3), "yes (metric)"});

  // Row 7: Theorem 1 on the same UBG, distances unknown.
  timer.reset();
  const EdgeSet th1 = api::build_spanner(ubg_g, api::SpannerSpec::th1(eps)).edges;
  const double t_th1 = timer.seconds();
  table.add_row({"UBG unknown dist", "(1+eps,1-2eps)-rem.-span. [Th.1]", "O(n)",
                 std::to_string(th1.size()), format_double(t_th1, 3),
                 verified_remote(ubg_g, th1, Stretch{1.0 + eps, 1.0 - 2.0 * eps})});

  // Row 8: k-fault-tolerant geometric spanner (layered greedy stand-in).
  timer.reset();
  const EdgeSet ft = layered_fault_tolerant_spanner(ubg, 1.0 + eps, k);
  const double t_ft = timer.seconds();
  table.add_row({"points in R^d", "k-fault-tol. (1+eps,0)-span. [layered]", "O(k n)",
                 std::to_string(ft.size()), format_double(t_ft, 3), "yes (metric)"});

  // Row 9: Theorem 3 on the UBG.
  timer.reset();
  const EdgeSet th3 = api::build_spanner(ubg_g, "th3?k=2").edges;
  const double t_th3 = timer.seconds();
  const auto th3_ok =
      check_k_connecting_stretch(ubg_g, th3, 2, Stretch{2, -1}, 150, seed);
  table.add_row({"UBG unknown dist", "2-conn. (2,-1)-rem.-span. [Th.3]", "O(n)",
                 std::to_string(th3.size()), format_double(t_th3, 3),
                 th3_ok.satisfied ? "yes" : "NO"});

  table.print(std::cout);
  std::cout << "\nNote: 'Comp. time' of the paper is round complexity; see bench_rounds\n"
               "for the O(1) / O(eps^-1) round measurements on the simulator.\n";

  json.value("edges_baswana_sen", bs.size());
  json.value("edges_kconn", kconn.size());
  json.value("edges_udg_th2", udg_h.size());
  json.value("edges_known_dist", known.size());
  json.value("edges_th1", th1.size());
  json.value("edges_fault_tolerant", ft.size());
  json.value("edges_th3", th3.size());
  json.value("seconds_kconn", t_kconn);
  json.value("seconds_udg_th2", t_udg);
  json.value("seconds_th1", t_th1);
  json.value("seconds_th3", t_th3);
  json.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
