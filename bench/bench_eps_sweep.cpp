// E5 — Theorem 1's eps dependence: the (1+eps, 1-2eps)-remote-spanner costs
// O(eps^-(p+1) n) edges on a doubling UBG, and its *measured* worst-case
// stretch must respect the guarantee for every pair (checked exactly).
// Also an ablation of the two tree algorithms backing the construction:
// greedy (Alg. 1, log-Delta-approximate trees) vs MIS (Alg. 2, constant
// trees on doubling metrics — the variant Theorem 1 actually uses).
#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "core/remote_spanner.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 800));
  const double side = opts.get_double("side", 6.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 21));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report json("eps_sweep");
  json.seed(seed);
  json.param("n", n);
  json.param("side", side);

  banner("Figure E5 — eps sweep of Theorem 1 on a doubling UBG",
         "paper: edges = O(eps^-(p+1) n); stretch (1+eps, 1-2eps) guaranteed for all pairs");

  const GeometricGraph gg = paper_ubg(n, side, 2, seed);
  const Graph& g = gg.graph;
  std::cout << "input: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " avg_deg=" << format_double(g.average_degree(), 1) << "\n\n";
  json.value("component_nodes", g.num_nodes());
  json.value("input_edges", g.num_edges());

  Table table({"eps", "r", "edges(MIS)", "edges(greedy)", "edges/n", "max ratio",
               "max excess", "verified"});
  bool all_verified = true;
  for (const double eps : {1.0, 0.5, 1.0 / 3.0, 0.25}) {
    const Dist r = domination_radius_for_eps(eps);
    SpannerBuildInfo info;
    api::BuildContext ctx;
    ctx.info = &info;
    const EdgeSet h = api::build_spanner(g, api::SpannerSpec::th1(eps), ctx).edges;
    const EdgeSet hg =
        api::build_spanner(g, api::SpannerSpec::th1(eps, TreeAlgorithm::kGreedy)).edges;
    const auto report = check_remote_stretch(g, h, Stretch{1.0 + eps, 1.0 - 2.0 * eps});
    table.add_row({format_double(eps, 3), std::to_string(r), std::to_string(h.size()),
                   std::to_string(hg.size()),
                   format_double(static_cast<double>(h.size()) /
                                     static_cast<double>(g.num_nodes()),
                                 2),
                   format_double(report.max_ratio, 3),
                   format_double(report.max_excess, 3),
                   report.satisfied ? "yes" : "NO"});
    const std::string key = "r" + std::to_string(r);
    json.value("edges_mis_" + key, h.size());
    json.value("edges_greedy_" + key, hg.size());
    json.value("max_ratio_" + key, report.max_ratio);
    all_verified = all_verified && report.satisfied;
  }
  json.value("all_verified", static_cast<std::int64_t>(all_verified));
  table.print(std::cout);
  std::cout << "\nedges/n should grow as eps shrinks (the eps^-(p+1) prefactor) while\n"
               "every row stays verified ('max excess' = worst d_{H_u}(u,v) minus the\n"
               "bound (1+eps)d+1-2eps, <= 0 everywhere). 'max ratio' pins at 1.5\n"
               "because the binding pairs sit at distance 2, where the bound is 3\n"
               "hops for every eps <= 1.\n";
  json.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
