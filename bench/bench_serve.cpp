// Multi-tenant serving — throughput and backpressure of the SpannerService
// (src/serve): T tenants, each an incremental-maintenance session behind a
// coalescing ingestion queue and an epoch-tagged immutable snapshot.
// Measured: (1) deterministic ingest — every tenant replays its own churn
// stream through admission control in synchronous mode, so epochs,
// coalescing ratios and rejection counts are a pure function of the
// workload and gate hard against the committed baseline; (2) backpressure —
// tiny budgets, deterministic kRetryAfter/kOverloaded counts; (3) concurrent
// throughput — the same streams with a worker pool draining in the
// background, reported as events/s (runner-dependent, ignored by the gate)
// with every tenant's final snapshot checked bit-exact against a
// from-scratch build on its final topology (gates hard).
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "bench_common.hpp"
#include "dynamic/churn_trace.hpp"
#include "serve/service.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

/// The tenant spec mix: real deployments serve heterogeneous constructions,
/// and cycling the supported kinds keeps every engine path on the hot loop.
const char* tenant_spec(std::size_t t) {
  static const char* kSpecs[] = {"th2?k=1", "th2?k=2", "th1?eps=0.5"};
  return kSpecs[t % 3];
}

struct IngestResult {
  serve::ServiceStats totals;
  double seconds = 0.0;
  bool bit_exact = true;
};

/// Replays `traces[t]` into tenant t, all batches through admission control
/// with a flush-and-retry on rejection, then drains and cross-checks every
/// tenant against a from-scratch rebuild.
IngestResult run_streams(serve::SpannerService& service,
                         const std::vector<serve::TenantId>& ids,
                         const std::vector<ChurnTrace>& traces) {
  IngestResult result;
  obs::PhaseSpan timer("bench.serve_ingest", "bench");
  const std::size_t rounds = traces.front().batches.size();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t t = 0; t < ids.size(); ++t) {
      serve::Admission verdict = service.submit(ids[t], traces[t].batches[r]);
      if (verdict == serve::Admission::kRetryAfter) {
        service.flush(ids[t]);
        verdict = service.submit(ids[t], traces[t].batches[r]);
      }
      if (verdict == serve::Admission::kOverloaded) {
        service.drain();
        verdict = service.submit(ids[t], traces[t].batches[r]);
      }
      REMSPAN_CHECK(verdict == serve::Admission::kAccepted);
    }
  }
  service.drain();
  result.seconds = timer.seconds();
  result.totals = service.stats();
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const auto snap = service.snapshot(ids[t]);
    const api::SpannerSpec spec = api::parse_spanner_spec(tenant_spec(t));
    const EdgeSet scratch = api::build_spanner(snap->graph(), spec).edges;
    result.bit_exact = result.bit_exact && scratch == snap->spanner();
  }
  return result;
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto tenants = static_cast<std::size_t>(opts.get_int("tenants", 32));
  const auto n = static_cast<std::size_t>(opts.get_int("n", 600));
  const double side = opts.get_double("side", 14.0);
  const auto batches = static_cast<std::size_t>(opts.get_int("batches", 24));
  const auto events = static_cast<std::size_t>(opts.get_int("events", 24));
  const auto workers = static_cast<std::size_t>(opts.get_int("workers", 4));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("serve");
  report.seed(seed);
  report.param("tenants", tenants);
  report.param("n", n);
  report.param("side", side);
  report.param("batches", batches);
  report.param("events", events);
  report.param("workers", workers);

  banner("Multi-tenant serving — epoch snapshots, coalescing queues, admission control",
         "readers never block rebuilds; the drained state is bit-exact per tenant");

  Rng rng(seed);
  const Graph g = largest_component(uniform_unit_ball_graph(n, side, 2, rng).graph);
  std::cout << "workload: " << tenants << " tenants on n=" << g.num_nodes()
            << " m=" << g.num_edges() << ", " << batches << " batches x " << events
            << " events each\n\n";
  report.value("nodes", g.num_nodes());
  report.value("initial_edges", g.num_edges());

  std::vector<ChurnTrace> traces;
  traces.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    traces.push_back(random_edge_churn_trace(g, batches, events, 0.1, 1000 * seed + t));
  }

  // Phase 1: deterministic ingest (synchronous mode, generous budgets).
  serve::ServiceConfig sync_cfg;
  sync_cfg.worker_threads = 0;
  sync_cfg.max_tenants = tenants;
  sync_cfg.max_batch_events = 256;
  IngestResult sync_result;
  {
    serve::SpannerService service(sync_cfg);
    std::vector<serve::TenantId> ids;
    ids.reserve(tenants);
    for (std::size_t t = 0; t < tenants; ++t) {
      ids.push_back(service.open_tenant(g, tenant_spec(t)));
    }
    sync_result = run_streams(service, ids, traces);
  }

  // Phase 2: backpressure — budgets far below the offered load, so the
  // rejection counters are exercised deterministically.
  serve::ServiceConfig tight_cfg = sync_cfg;
  tight_cfg.tenant_queue_budget = events * 3 / 2;
  tight_cfg.global_queue_budget = events * tenants / 2;
  serve::ServiceStats tight_totals;
  {
    serve::SpannerService service(tight_cfg);
    std::vector<serve::TenantId> ids;
    ids.reserve(tenants);
    for (std::size_t t = 0; t < tenants; ++t) {
      ids.push_back(service.open_tenant(g, tenant_spec(t)));
    }
    // No retries here: rejections are the measurement. Drain between
    // rounds so accepted work still completes.
    for (std::size_t r = 0; r < traces.front().batches.size(); ++r) {
      for (std::size_t t = 0; t < tenants; ++t) {
        (void)service.submit(ids[t], traces[t].batches[r]);
      }
      if (r % 4 == 3) service.drain();
    }
    service.drain();
    tight_totals = service.stats();
  }

  // Phase 3: concurrent throughput — same streams, a worker pool drains in
  // the background while the submitter keeps feeding.
  serve::ServiceConfig conc_cfg = sync_cfg;
  conc_cfg.worker_threads = workers;
  IngestResult conc_result;
  {
    serve::SpannerService service(conc_cfg);
    std::vector<serve::TenantId> ids;
    ids.reserve(tenants);
    for (std::size_t t = 0; t < tenants; ++t) {
      ids.push_back(service.open_tenant(g, tenant_spec(t)));
    }
    conc_result = run_streams(service, ids, traces);
  }

  const auto events_per_second = [](const IngestResult& r) {
    return r.seconds > 0.0 ? static_cast<double>(r.totals.events_submitted) / r.seconds : 0.0;
  };
  Table table({"phase", "workers", "epochs", "submitted", "coalesced", "applied", "retry",
               "overload", "events/s", "bit-exact"});
  table.add_row({"sync ingest", "0", std::to_string(sync_result.totals.epochs_published),
                 std::to_string(sync_result.totals.events_submitted),
                 std::to_string(sync_result.totals.events_coalesced),
                 std::to_string(sync_result.totals.events_applied),
                 std::to_string(sync_result.totals.rejected_retry_after),
                 std::to_string(sync_result.totals.rejected_overloaded),
                 format_double(events_per_second(sync_result), 0),
                 sync_result.bit_exact ? "yes" : "NO"});
  table.add_row({"backpressure", "0", std::to_string(tight_totals.epochs_published),
                 std::to_string(tight_totals.events_submitted),
                 std::to_string(tight_totals.events_coalesced),
                 std::to_string(tight_totals.events_applied),
                 std::to_string(tight_totals.rejected_retry_after),
                 std::to_string(tight_totals.rejected_overloaded), "-", "-"});
  table.add_row({"concurrent", std::to_string(workers),
                 std::to_string(conc_result.totals.epochs_published),
                 std::to_string(conc_result.totals.events_submitted),
                 std::to_string(conc_result.totals.events_coalesced),
                 std::to_string(conc_result.totals.events_applied),
                 std::to_string(conc_result.totals.rejected_retry_after),
                 std::to_string(conc_result.totals.rejected_overloaded),
                 format_double(events_per_second(conc_result), 0),
                 conc_result.bit_exact ? "yes" : "NO"});
  table.print(std::cout);

  // Synchronous-mode numbers are a pure function of the workload and gate
  // hard; anything timing-derived (and every phase-3 counter that depends
  // on drain/submit interleaving) is runner-dependent and excluded.
  report.value("ingest_epochs", sync_result.totals.epochs_published);
  report.value("ingest_events_submitted", sync_result.totals.events_submitted);
  report.value("ingest_events_accepted", sync_result.totals.events_accepted);
  report.value("ingest_events_coalesced", sync_result.totals.events_coalesced);
  report.value("ingest_events_applied", sync_result.totals.events_applied);
  report.value("ingest_batches", sync_result.totals.batches_applied);
  report.value("ingest_bit_exact", sync_result.bit_exact ? 1 : 0);
  report.value("ingest_seconds", sync_result.seconds);
  report.value("ingest_events_per_second", events_per_second(sync_result));
  report.value("bp_events_submitted", tight_totals.events_submitted);
  report.value("bp_events_accepted", tight_totals.events_accepted);
  report.value("bp_rejected_retry_after", tight_totals.rejected_retry_after);
  report.value("bp_rejected_overloaded", tight_totals.rejected_overloaded);
  report.value("concurrent_bit_exact", conc_result.bit_exact ? 1 : 0);
  report.value("concurrent_seconds", conc_result.seconds);
  report.value("concurrent_events_per_second", events_per_second(conc_result));

  std::cout << "\ncoalescing: " << sync_result.totals.events_coalesced << " of "
            << sync_result.totals.events_accepted
            << " accepted events annihilated or absorbed before reaching an engine;\n"
               "backpressure: "
            << tight_totals.rejected_retry_after << " kRetryAfter + "
            << tight_totals.rejected_overloaded
            << " kOverloaded rejections at 1/" << (events * tenants)
            << "-scale budgets — every count above is deterministic at fixed seed.\n";

  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
