// Shared workload preparation for the bench binaries. Every bench prints
// the paper artifact it reproduces, the workload parameters, and a table of
// measured values next to the paper's asymptotic claim (EXPERIMENTS.md is
// compiled from these outputs).
#pragma once

#include <iostream>
#include <string>

#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace remspan::bench {

/// Largest connected component of g (random geometric graphs are usually
/// connected at the densities used, but stragglers would distort per-node
/// averages).
inline Graph largest_component(const Graph& g) {
  const auto comps = connected_components(g);
  if (comps.count <= 1) return g;
  return induced_subgraph(g, comps.largest()).graph;
}

/// The paper's random UDG model: Poisson(mean_nodes) points in a fixed
/// [0, side]^2 square, unit disks; largest component.
inline Graph paper_udg(double side, double mean_nodes, std::uint64_t seed) {
  Rng rng(seed);
  const auto gg = random_unit_disk_graph(side, mean_nodes, rng);
  return largest_component(gg.graph);
}

/// Uniform unit ball graph of a doubling metric (R^dim, L2); largest
/// component, with geometry retained for the weighted baselines.
inline GeometricGraph paper_ubg(std::size_t n, double side, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  auto gg = uniform_unit_ball_graph(n, side, dim, rng);
  const auto comps = connected_components(gg.graph);
  if (comps.count > 1) {
    auto sub = induced_subgraph(gg.graph, comps.largest());
    PointSet pts(gg.points.dim());
    for (const NodeId old : sub.original_id) pts.add(gg.points.point(old));
    gg.graph = std::move(sub.graph);
    gg.points = std::move(pts);
  }
  return gg;
}

inline void banner(const std::string& title, const std::string& claim) {
  std::cout << "==================================================================\n"
            << title << "\n" << claim << "\n"
            << "==================================================================\n";
}

}  // namespace remspan::bench
