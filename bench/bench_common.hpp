// Shared workload preparation for the bench binaries. Every bench prints
// the paper artifact it reproduces, the workload parameters, and a table of
// measured values next to the paper's asymptotic claim (EXPERIMENTS.md is
// compiled from these outputs) — and, through Report below, writes the same
// numbers machine-readably to BENCH_<name>.json for trajectory tracking.
#pragma once

#include <iostream>
#include <string>

#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "obs/obs.hpp"
#include "util/json_report.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace remspan::bench {

/// The paper's random UDG model: Poisson(mean_nodes) points in a fixed
/// [0, side]^2 square, unit disks; largest component.
inline Graph paper_udg(double side, double mean_nodes, std::uint64_t seed) {
  Rng rng(seed);
  const auto gg = random_unit_disk_graph(side, mean_nodes, rng);
  return largest_component(gg.graph);
}

/// Uniform unit ball graph of a doubling metric (R^dim, L2); largest
/// component, with geometry retained for the weighted baselines.
inline GeometricGraph paper_ubg(std::size_t n, double side, std::size_t dim,
                                std::uint64_t seed) {
  Rng rng(seed);
  return largest_component(uniform_unit_ball_graph(n, side, dim, rng));
}

inline void banner(const std::string& title, const std::string& claim) {
  std::cout << "==================================================================\n"
            << title << "\n" << claim << "\n"
            << "==================================================================\n";
}

/// Per-binary JSON report: construct it first thing in main(), record the
/// workload params and headline measured values alongside the human table,
/// and call finish() last — it stamps the total wall time and writes
/// BENCH_<name>.json into the working directory.
class Report {
 public:
  explicit Report(std::string name) : report_(std::move(name)) {}

  void seed(std::uint64_t s) { report_.set_seed(s); }
  void param(const std::string& key, JsonScalar v) { report_.param(key, std::move(v)); }
  void value(const std::string& key, JsonScalar v) { report_.value(key, std::move(v)); }
  template <typename T>
    requires std::is_integral_v<T>
  void param(const std::string& key, T v) { report_.param(key, v); }
  template <typename T>
    requires std::is_integral_v<T>
  void value(const std::string& key, T v) { report_.value(key, v); }

  void finish() {
    // When a metrics sink is on (REMSPAN_METRICS or a driver), the whole
    // run's counters land in the report under obs.* — flat keys so
    // bench_diff can track them like any other value.
    if (obs::Registry* m = obs::metrics()) m->snapshot().append_to(report_, "obs.");
    report_.set_wall_seconds(span_.seconds());
    const std::string file = report_.default_filename();
    report_.write_file(file);
    std::cout << "\nreport: " << file << "\n";
  }

 private:
  BenchReport report_;
  obs::PhaseSpan span_{"bench.run", "bench"};
};

}  // namespace remspan::bench
