// Dynamic workload — incremental maintenance under churn: on a random
// geometric network, the per-root locality of the remote-spanner
// construction means a batch of link/mobility events only dirties the
// roots within the dependency radius max(1, r+beta-1) of the touched
// endpoints (IncrementalConfig::dirty_radius). Measured: per
// churn scenario, the amortized incremental update cost per batch against
// a from-scratch rebuild on the same snapshot, the dirty-root footprint,
// and spanner quality over time — with the incremental result asserted
// bit-exact against the rebuild at every sampled batch.
//
// Scenarios (all at the same per-batch churn rate, default 1% of edges):
//   mobility — a few nodes re-sample their position (geometric locality),
//   outage   — correlated regional link failures + recovery (locality),
//   random   — uniform link flapping (no locality; the adversarial case
//              where most of the graph goes dirty and the incremental
//              engine degenerates to a rebuild plus bookkeeping).
#include <cmath>

#include "analysis/kconn_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "dynamic/churn_trace.hpp"
#include "dynamic/incremental_spanner.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

struct ScenarioResult {
  std::string name;
  std::size_t batches = 0;
  std::size_t churned_edges = 0;     // inserted + removed over the run
  double mean_dirty_roots = 0.0;
  double mean_spanner_edges = 0.0;
  std::size_t final_spanner_edges = 0;
  bool equivalent = true;            // bit-exact vs rebuild at every sample
  bool stretch_ok = true;            // sampled oracle on the final snapshot
  double incremental_seconds = 0.0;  // sum over batches
  double rebuild_seconds = 0.0;      // mean over sampled rebuilds
};

ScenarioResult run_scenario(const std::string& name, const ChurnTrace& trace,
                            const IncrementalConfig& cfg, std::size_t rebuild_every,
                            std::uint64_t seed) {
  ScenarioResult result;
  result.name = name;
  DynamicGraph dg(trace.initial_graph());
  IncrementalSpanner inc(dg, cfg);

  double sum_dirty = 0.0;
  double sum_spanner = 0.0;
  double rebuild_total = 0.0;
  std::size_t rebuilds = 0;
  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    const ChurnBatchStats stats = inc.apply_batch(trace.batches[b]);
    result.incremental_seconds += stats.seconds;
    result.churned_edges += stats.inserted_edges + stats.removed_edges;
    sum_dirty += static_cast<double>(stats.dirty_roots);
    sum_spanner += static_cast<double>(stats.spanner_edges);
    if ((b + 1) % rebuild_every == 0 || b + 1 == trace.batches.size()) {
      obs::PhaseSpan timer("bench.rebuild_check", "bench");
      const EdgeSet scratch = cfg.build_full(inc.graph());
      rebuild_total += timer.seconds();
      ++rebuilds;
      result.equivalent = result.equivalent && scratch == inc.spanner();
    }
  }
  result.batches = trace.batches.size();
  result.mean_dirty_roots = sum_dirty / static_cast<double>(result.batches);
  result.mean_spanner_edges = sum_spanner / static_cast<double>(result.batches);
  result.final_spanner_edges = inc.spanner().size();
  result.rebuild_seconds = rebuild_total / static_cast<double>(rebuilds);
  // Quality over time: the maintained spanner must still satisfy the
  // k-connecting stretch guarantee on the final (churned) snapshot.
  const auto report = check_k_connecting_stretch(inc.graph(), inc.spanner(), cfg.k,
                                                 Stretch{1.0, 0.0}, 150, seed);
  result.stretch_ok = report.satisfied;
  return result;
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 3200));
  const double side = opts.get_double("side", 35.0);
  const auto batches = static_cast<std::size_t>(opts.get_int("batches", 40));
  const double churn = opts.get_double("churn", 0.01);
  const auto k = static_cast<Dist>(opts.get_int("k", 1));
  const auto rebuild_every = static_cast<std::size_t>(opts.get_int("rebuild-every", 8));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("churn");
  report.seed(seed);
  report.param("n", n);
  report.param("side", side);
  report.param("batches", batches);
  report.param("churn", churn);
  report.param("k", k);
  report.param("rebuild_every", rebuild_every);

  banner("Dynamic maintenance — incremental remote-spanner under churn",
         "dirty-radius locality: a batch only rebuilds roots near its touched endpoints");

  Rng rng(seed);
  const GeometricGraph gg = largest_component(uniform_unit_ball_graph(n, side, 2, rng));
  const Graph& g = gg.graph;
  const auto m = g.num_edges();
  const double target_edges = churn * static_cast<double>(m);
  std::cout << "workload: n=" << g.num_nodes() << " m=" << m
            << " avg deg=" << format_double(g.average_degree(), 2) << ", churn target "
            << format_double(target_edges, 0) << " edges/batch\n\n";
  report.value("nodes", g.num_nodes());
  report.value("initial_edges", m);

  const IncrementalConfig cfg = api::incremental_config(api::SpannerSpec::th2(k));
  const auto movers = static_cast<std::size_t>(
      std::max(1.0, std::round(target_edges / (2.0 * g.average_degree()))));
  // Both endpoints must fall inside the outage disk, which shaves roughly
  // half an edge length off the effective radius; compensate so the outage
  // batches land near the same churn target as the other scenarios.
  const double region_radius =
      side * std::sqrt(churn / 3.14159265358979323846) + 0.5 * gg.radius;
  const auto random_events = static_cast<std::size_t>(std::max(1.0, std::round(target_edges)));

  const ScenarioResult results[] = {
      run_scenario("mobility", mobility_churn_trace(gg, batches, movers, 100 * seed + 1), cfg,
                   rebuild_every, seed),
      run_scenario("outage", region_outage_trace(gg, batches / 2, region_radius, 100 * seed + 2),
                   cfg, rebuild_every, seed),
      run_scenario("random", random_edge_churn_trace(g, batches, random_events, 0.0,
                                                     100 * seed + 3),
                   cfg, rebuild_every, seed),
  };

  Table table({"scenario", "batches", "churn/batch", "dirty roots", "dirty %", "amortized ms",
               "rebuild ms", "speedup", "|H| final", "bit-exact", "stretch ok"});
  for (const ScenarioResult& r : results) {
    const double churn_per_batch =
        static_cast<double>(r.churned_edges) / static_cast<double>(r.batches);
    const double amortized = r.incremental_seconds / static_cast<double>(r.batches);
    const double speedup = r.rebuild_seconds / amortized;
    const double dirty_pct =
        100.0 * r.mean_dirty_roots / static_cast<double>(g.num_nodes());
    table.add_row({r.name, std::to_string(r.batches), format_double(churn_per_batch, 1),
                   format_double(r.mean_dirty_roots, 1), format_double(dirty_pct, 1),
                   format_double(1e3 * amortized, 3), format_double(1e3 * r.rebuild_seconds, 3),
                   format_double(speedup, 2), std::to_string(r.final_spanner_edges),
                   r.equivalent ? "yes" : "NO", r.stretch_ok ? "yes" : "NO"});

    report.value("churned_edges_" + r.name, r.churned_edges);
    report.value("mean_dirty_roots_" + r.name, r.mean_dirty_roots);
    report.value("final_spanner_edges_" + r.name, r.final_spanner_edges);
    report.value("equivalent_" + r.name, r.equivalent ? 1 : 0);
    report.value("stretch_ok_" + r.name, r.stretch_ok ? 1 : 0);
    report.value("amortized_update_seconds_" + r.name, amortized);
    report.value("rebuild_seconds_" + r.name, r.rebuild_seconds);
    report.value("speedup_" + r.name, speedup);
  }
  table.print(std::cout);

  std::cout << "\nlocality argument: a changed edge {a,b} only affects roots within the\n"
               "dependency radius max(1, r+beta-1) = "
            << cfg.dirty_radius()
            << " hops of a or b (old snapshot for\n"
               "removals, new for insertions); mobility/outage churn is spatially\n"
               "concentrated, so the dirty set stays small — uniform random churn is\n"
               "the worst case by design.\n";

  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
