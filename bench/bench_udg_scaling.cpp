// E3 — Theorem 2 / Section 3.2: on the random unit disk graph (Poisson in
// a fixed square) the (1,0)-remote-spanner has O(n^{4/3} log n) expected
// edges, against Omega(n^2) for the full topology. Measured: edges vs n
// with a log-log power-law fit of the growth exponent.
//
// Expected shape: full-topology exponent ~2, remote-spanner exponent well
// below it, compatible with 4/3 (+ log factor); the k = 2 variant scales
// the same way with a k^{2/3} size factor.
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "util/fit.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#include <cmath>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#endif

using namespace remspan;
using namespace remspan::bench;

namespace {

/// Peak resident set size in bytes (0 where getrusage is unavailable).
double peak_rss_bytes() {
#if __has_include(<sys/resource.h>)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#ifdef __APPLE__
    return static_cast<double>(usage.ru_maxrss);  // macOS reports bytes
#else
    return static_cast<double>(usage.ru_maxrss) * 1024.0;  // Linux/BSD: KiB
#endif
  }
#endif
  return 0.0;
}

/// Shard-engine scaling sweep (opt-in via --shard-n): one constant-density
/// UDG (average degree ~10, side grows with sqrt(n) so density is fixed and
/// the per-ball work is n-independent), build th2?k=1 with the flat pooled
/// engine (S = 1, the pre-shard code path) and with the sharded
/// frontier-batched engine at S in {2, 4, 8}. Every sharded build is
/// checked bit-identical to the flat spanner before its time is reported —
/// a speedup over a wrong answer is worthless. Written as a SEPARATE
/// report (BENCH_udg_shard_scaling.json) so the long-standing udg_scaling
/// baseline keys stay untouched; CI's scale job diffs it against
/// bench/baselines/BENCH_udg_shard_scaling.json with timing keys one-sided
/// and speedups ignored (machine-dependent).
int run_shard_scaling(std::uint64_t n, std::uint64_t batch, std::uint64_t seed) {
  Report report("udg_shard_scaling");
  report.seed(seed);
  report.param("shard_n", n);
  report.param("shard_batch", batch);

  banner("Shard-engine scaling — flat pooled vs sharded frontier-batched union",
         "identical spanner bits, per-shard locality pays at n where the CSR "
         "outgrows cache");

  // density 10/pi nodes per unit area => expected average degree ~10.
  const double side = std::sqrt(static_cast<double>(n) * 3.14159265358979323846 / 10.0);
  Timer gen_timer;
  const Graph g = paper_udg(side, static_cast<double>(n), seed);
  std::cout << "workload: mean n = " << n << ", side = " << format_double(side, 1)
            << " -> largest component n = " << g.num_nodes() << ", m = " << g.num_edges()
            << " (" << format_double(gen_timer.seconds(), 1) << " s to generate)\n\n";
  report.value("nodes", g.num_nodes());
  report.value("edges", g.num_edges());

  const api::SpannerSpec spec = api::parse_spanner_spec("th2?k=1");
  Table table({"engine", "shards", "seconds", "speedup vs flat", "spanner edges"});

  api::BuildContext flat_ctx;
  Timer flat_timer;
  const api::SpannerResult flat = api::build_spanner(g, spec, flat_ctx);
  const double flat_seconds = flat_timer.seconds();
  table.add_row({"flat pooled", "1", format_double(flat_seconds, 2), "1.00",
                 std::to_string(flat.edges.size())});
  report.value("spanner_edges", flat.edges.size());
  report.value("flat_seconds", flat_seconds);

  double speedup_s8 = 0.0;
  for (const std::uint32_t shards : {std::uint32_t{2}, std::uint32_t{4}, std::uint32_t{8}}) {
    api::BuildContext ctx;
    ctx.shards.num_shards = shards;
    ctx.shards.batch_roots = static_cast<std::uint32_t>(batch);
    Timer timer;
    const api::SpannerResult sharded = api::build_spanner(g, spec, ctx);
    const double seconds = timer.seconds();
    // The shard-invariance contract, enforced at full scale, not just in
    // the tier-1 corpus: bit-identical spanner or the bench aborts.
    REMSPAN_CHECK(sharded.edges == flat.edges);
    const double speedup = flat_seconds / seconds;
    if (shards == 8) speedup_s8 = speedup;
    table.add_row({"sharded", std::to_string(shards), format_double(seconds, 2),
                   format_double(speedup, 2), std::to_string(sharded.edges.size())});
    report.value("s" + std::to_string(shards) + "_seconds", seconds);
    report.value("speedup_s" + std::to_string(shards), speedup);
  }
  table.print(std::cout);
  std::cout << "\nall sharded spanners verified bit-identical to the flat engine\n";

  // Raw speedups are machine-dependent (CI ignores them); the acceptance
  // criterion itself — >= 3x at 8 shards — is binary and gates hard via
  // bench_diff's default threshold (1 -> 0 is a 100% regression).
  report.value("speedup_s8_ge_3", speedup_s8 >= 3.0 ? 1 : 0);
  report.finish();
  // The acceptance gate (>= 3x at 8 shards) lives in the committed baseline
  // + bench_diff, not an assert here: a laptop run should print, not die.
  if (speedup_s8 < 3.0) {
    std::cout << "note: speedup at 8 shards is " << format_double(speedup_s8, 2)
              << "x (< 3x target)\n";
  }
  return 0;
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const double side = opts.get_double("side", 8.0);
  const auto seeds = static_cast<std::uint64_t>(opts.get_int("seeds", 3));
  // The shared-atomic-bitset union keeps the partial-union footprint at
  // m/8 bytes total regardless of worker count (the per-worker EdgeSet
  // scheme cost workers * m/8 and was the first thing to blow memory when
  // scaling n); the larger default top size is affordable because of it.
  const auto n_max = static_cast<std::uint64_t>(opts.get_int("n-max", 6400));
  // Shard-engine scaling sweep (off by default: it targets n >= 10^7 and
  // runs only in the dedicated CI scale job / local opt-in).
  const auto shard_n = static_cast<std::uint64_t>(opts.get_int("shard-n", 0));
  const auto shard_batch = static_cast<std::uint64_t>(opts.get_int("shard-batch", 128));
  const auto shard_seed = static_cast<std::uint64_t>(opts.get_int("shard-seed", 1));
  const bool shard_only = opts.get_flag("shard-only");
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  if (shard_only) {
    return shard_n > 0 ? run_shard_scaling(shard_n, shard_batch, shard_seed) : 0;
  }

  Report report("udg_scaling");
  report.param("side", side);
  report.param("seeds", seeds);
  report.param("n_max", n_max);

  banner("Figure E3 — edge scaling on random UDG (fixed square, Poisson nodes)",
         "paper: (1,0)-remote-spanner O(n^{4/3} log n) vs full graph Omega(n^2)  [Th.2, §3.2]");

  std::vector<double> ns, full_edges, h1_edges, h2_edges;
  double union_bytes_at_max = 0;
  Table table({"mean n", "n (comp)", "edges(G)", "edges(H,k=1)", "edges(H,k=2)",
               "H1/n^(4/3)", "union KiB"});
  for (std::uint64_t n = 200; n <= n_max; n *= 2) {
    double sum_full = 0, sum_h1 = 0, sum_h2 = 0, sum_nodes = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const Graph g = paper_udg(side, static_cast<double>(n), 100 * n + s);
      sum_nodes += g.num_nodes();
      sum_full += static_cast<double>(g.num_edges());
      sum_h1 += static_cast<double>(api::build_spanner(g, "th2?k=1").edges.size());
      sum_h2 += static_cast<double>(api::build_spanner(g, "th2?k=2").edges.size());
    }
    const double nodes = sum_nodes / static_cast<double>(seeds);
    const double fe = sum_full / static_cast<double>(seeds);
    const double h1 = sum_h1 / static_cast<double>(seeds);
    const double h2 = sum_h2 / static_cast<double>(seeds);
    ns.push_back(nodes);
    full_edges.push_back(fe);
    h1_edges.push_back(h1);
    h2_edges.push_back(h2);
    // Mean over seeds, word-rounded, like the sibling columns.
    const double union_bytes = std::ceil(fe / 64.0) * 8.0;
    union_bytes_at_max = union_bytes;
    table.add_row({std::to_string(n), format_double(nodes, 0), format_double(fe, 0),
                   format_double(h1, 0), format_double(h2, 0),
                   format_double(h1 / std::pow(nodes, 4.0 / 3.0), 3),
                   format_double(union_bytes / 1024.0, 1)});
  }
  table.print(std::cout);

  // Human-readable only: worker count and RSS depend on the machine, so
  // they stay out of the JSON values (bench_diff treats values as
  // deterministic at fixed seed).
  const double workers = static_cast<double>(ThreadPool::global().concurrency());
  std::cout << "\npartial-union memory at n-max: "
            << format_double(union_bytes_at_max / 1024.0, 1)
            << " KiB shared (one atomic bitset, O(m) total); per-worker EdgeSet "
               "accumulators would need "
            << format_double(workers * union_bytes_at_max / 1024.0, 1) << " KiB ("
            << format_double(workers, 0) << " workers x m/8 bytes); peak RSS "
            << format_double(peak_rss_bytes() / (1024.0 * 1024.0), 1) << " MiB\n";

  const auto fit_full = fit_power_law(ns, full_edges);
  const auto fit_h1 = fit_power_law(ns, h1_edges);
  const auto fit_h2 = fit_power_law(ns, h2_edges);
  std::cout << "\nfitted growth exponents (log-log OLS):\n"
            << "  full topology   : n^" << format_double(fit_full.slope, 3)
            << "  (paper: 2)\n"
            << "  (1,0)-rem-span  : n^" << format_double(fit_h1.slope, 3)
            << "  (paper: 4/3 ~ 1.333, + log factor)\n"
            << "  2-conn variant  : n^" << format_double(fit_h2.slope, 3)
            << "  (paper: same exponent, k^{2/3} prefactor)\n"
            << "  k=2 / k=1 size ratio at n-max: "
            << format_double(h2_edges.back() / h1_edges.back(), 3)
            << "  (paper: ~2^{2/3} = 1.587)\n";

  report.value("exponent_full", fit_full.slope);
  report.value("exponent_h1", fit_h1.slope);
  report.value("exponent_h2", fit_h2.slope);
  report.value("nodes_at_n_max", ns.back());
  report.value("full_edges_at_n_max", full_edges.back());
  report.value("h1_edges_at_n_max", h1_edges.back());
  report.value("h2_edges_at_n_max", h2_edges.back());
  report.value("k2_over_k1_ratio", h2_edges.back() / h1_edges.back());
  report.finish();

  if (shard_n > 0) return run_shard_scaling(shard_n, shard_batch, shard_seed);
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
