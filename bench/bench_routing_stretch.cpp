// E9 — the routing property that motivates remote-spanners (Section 1):
// greedy forwarding over H_u delivers with route length <= d_{H_u}(u,v),
// hence within the spanner's stretch of the true shortest path. Measured:
// delivery rate and hop-stretch of greedy routes over each construction,
// against the shortest paths of the full topology.
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "sim/routing.hpp"
#include "util/fit.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const double mean_n = opts.get_double("n", 700);
  const double side = opts.get_double("side", 7.0);
  const auto num_pairs = static_cast<std::size_t>(opts.get_int("pairs", 400));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 41));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("routing_stretch");
  report.seed(seed);
  report.param("n", mean_n);
  report.param("side", side);
  report.param("pairs", num_pairs);

  banner("Table E9 — greedy routing stretch over remote-spanners",
         "paper: route length <= d_{H_u}(u,v) <= alpha d_G(u,v) + beta (Section 1)");

  const Graph g = paper_udg(side, mean_n, seed);
  std::cout << "random UDG: n=" << g.num_nodes() << " m=" << g.num_edges() << ", "
            << num_pairs << " random pairs\n\n";

  Rng rng(seed + 1);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  while (pairs.size() < num_pairs) {
    const auto s = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    if (s != t) pairs.emplace_back(s, t);
  }

  // Every construction goes through the registry by spec; the stretch bound
  // each route is checked against is the registry's guarantee.
  struct Case {
    std::string name;
    EdgeSet h;
    double alpha;
    double beta;
  };
  std::vector<Case> cases;
  for (const auto& [name, spec] : std::initializer_list<std::pair<const char*, const char*>>{
           {"full topology", "full"},
           {"(1,0)-rem-span [Th.2 k=1]", "th2?k=1"},
           {"OLSR MPR union", "mpr"},
           {"(1.5,0)-rem-span [Th.1]", "th1?eps=0.5"},
           {"(2,-1)-rem-span [Th.1 eps=1]", "th1?eps=1"}}) {
    api::SpannerResult res = api::build_spanner(g, spec);
    cases.push_back({name, std::move(res.edges), res.guarantee.alpha, res.guarantee.beta});
  }

  Table table({"advertised H", "edges", "delivered", "max hop-stretch", "avg hop-stretch",
               "bound respected"});
  bool all_bounds_ok = true;
  bool all_delivered = true;
  for (const auto& c : cases) {
    const auto samples = route_sample_pairs(c.h, pairs);
    std::size_t delivered = 0;
    double max_ratio = 1.0, sum_ratio = 0.0;
    std::size_t ratio_n = 0;
    bool ok = true;
    for (const auto& s : samples) {
      if (s.route_hops == kUnreachable) continue;
      ++delivered;
      if (s.shortest >= 1) {
        const double ratio =
            static_cast<double>(s.route_hops) / static_cast<double>(s.shortest);
        max_ratio = std::max(max_ratio, ratio);
        sum_ratio += ratio;
        ++ratio_n;
        if (static_cast<double>(s.route_hops) >
            c.alpha * static_cast<double>(s.shortest) + std::max(0.0, c.beta) + 1e-9) {
          ok = false;
        }
      }
    }
    table.add_row({c.name, std::to_string(c.h.size()),
                   std::to_string(delivered) + "/" + std::to_string(samples.size()),
                   format_double(max_ratio, 3),
                   format_double(ratio_n ? sum_ratio / static_cast<double>(ratio_n) : 1.0, 3),
                   ok ? "yes" : "NO"});
    all_bounds_ok = all_bounds_ok && ok;
    all_delivered = all_delivered && delivered == samples.size();
  }
  table.print(std::cout);
  std::cout << "\nEvery remote-spanner row must deliver all pairs with the bound\n"
               "respected; the (1,0) rows route on exact shortest paths.\n";
  report.value("component_nodes", g.num_nodes());
  report.value("edges_full", cases[0].h.size());
  report.value("edges_th2_k1", cases[1].h.size());
  report.value("edges_mpr", cases[2].h.size());
  report.value("all_delivered", static_cast<std::int64_t>(all_delivered));
  report.value("all_bounds_respected", static_cast<std::int64_t>(all_bounds_ok));
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
