// E12 — microbenchmarks (google-benchmark): throughput of the primitives
// behind every experiment, for performance-regression tracking. A custom
// main mirrors every measurement into BENCH_micro.json (seconds per
// iteration, keyed by benchmark name) so the regression trajectory is
// machine-readable like the table benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "obs/obs.hpp"
#include "util/json_report.hpp"

#include "baseline/mpr.hpp"
#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace remspan {
namespace {

const Graph& shared_udg() {
  static const Graph g = [] {
    Rng rng(77);
    const auto gg = random_unit_disk_graph(7.0, 500, rng);
    return largest_component(gg.graph);
  }();
  return g;
}

void BM_BfsFull(benchmark::State& state) {
  const Graph& g = shared_udg();
  BoundedBfs bfs(g.num_nodes());
  NodeId src = 0;
  for (auto _ : state) {
    bfs.run(GraphView(g), src);
    src = (src + 1) % g.num_nodes();
    benchmark::DoNotOptimize(bfs.order().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsFull);

void BM_BfsTwoHop(benchmark::State& state) {
  const Graph& g = shared_udg();
  BoundedBfs bfs(g.num_nodes());
  NodeId src = 0;
  for (auto _ : state) {
    bfs.run(GraphView(g), src, 2);
    src = (src + 1) % g.num_nodes();
    benchmark::DoNotOptimize(bfs.order().size());
  }
}
BENCHMARK(BM_BfsTwoHop);

void BM_DomTreeGreedy(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto r = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.greedy(root, r, 1).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeGreedy)->Arg(2)->Arg(3)->Arg(5);

void BM_DomTreeGreedyK(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto k = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.greedy_k(root, k).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeGreedyK)->Arg(1)->Arg(2)->Arg(4);

void BM_DomTreeMis(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto r = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.mis(root, r).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeMis)->Arg(2)->Arg(3)->Arg(5);

void BM_DomTreeMisK(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto k = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.mis_k(root, k).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeMisK)->Arg(1)->Arg(2)->Arg(4);

void BM_SpannerBuildTh2(benchmark::State& state) {
  const Graph& g = shared_udg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_k_connecting_spanner(g, 1).size());
  }
}
BENCHMARK(BM_SpannerBuildTh2)->Unit(benchmark::kMillisecond);

void BM_SpannerBuildTh1(benchmark::State& state) {
  const Graph& g = shared_udg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_low_stretch_remote_spanner(g, 0.5).size());
  }
}
BENCHMARK(BM_SpannerBuildTh1)->Unit(benchmark::kMillisecond);

void BM_SpannerUnion(benchmark::State& state) {
  // Isolates the union step of the spanner builds: all per-root tree edge
  // lists are precomputed once, the loop measures only merging them into
  // one shared atomic bitset from every pool worker (word-batched relaxed
  // fetch_or) plus the final snapshot into a DynamicBitset.
  const Graph& g = shared_udg();
  static const std::vector<std::vector<EdgeId>> tree_edges = [] {
    const Graph& gg = shared_udg();
    DomTreeBuilder builder(gg);
    std::vector<std::vector<EdgeId>> all(gg.num_nodes());
    for (NodeId u = 0; u < gg.num_nodes(); ++u) {
      const RootedTree tree = builder.greedy(u, 3, 1);
      for (const NodeId v : tree.nodes()) {
        if (v != tree.root()) all[u].push_back(tree.parent_edge(v));
      }
    }
    return all;
  }();

  auto& pool = ThreadPool::global();
  std::vector<std::vector<EdgeId>> batches(pool.concurrency());
  for (auto _ : state) {
    AtomicBitset shared(g.num_edges());
    pool.parallel_for_workers(
        0, tree_edges.size(), [&](std::size_t root, std::size_t worker) {
          auto& ids = batches[worker];
          ids.assign(tree_edges[root].begin(), tree_edges[root].end());
          shared.or_batch(ids);
        });
    benchmark::DoNotOptimize(shared.snapshot().count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree_edges.size()));
}
BENCHMARK(BM_SpannerUnion);

void BM_OlsrMprNode(benchmark::State& state) {
  const Graph& g = shared_udg();
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(olsr_mpr_set(g, u).size());
    u = (u + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_OlsrMprNode);

void BM_DisjointPathsOracle(benchmark::State& state) {
  const Graph& g = shared_udg();
  NodeId s = 0;
  for (auto _ : state) {
    const NodeId t = (s + g.num_nodes() / 2) % g.num_nodes();
    benchmark::DoNotOptimize(min_disjoint_paths(GraphView(g), s, t, 2).connectivity());
    s = (s + 1) % g.num_nodes();
  }
  state.SetLabel("d^2 via min-cost flow, n=" + std::to_string(g.num_nodes()));
}
BENCHMARK(BM_DisjointPathsOracle)->Unit(benchmark::kMillisecond);

void BM_ObsCounterHot(benchmark::State& state) {
  // Price of one counter bump with a registry installed — what the drained
  // per-call tallies pay per publish when a sink is live.
  obs::Registry registry;
  const obs::ScopedSinks sinks(&registry, nullptr);
  obs::Counter& counter = registry.counter("bench.hot");
  for (auto _ : state) {
    counter.add(1);
    benchmark::DoNotOptimize(&counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterHot);

void BM_ObsSpanDisabled(benchmark::State& state) {
  // The disabled path the determinism contract pins: with no sinks
  // installed a PhaseSpan must cost the stopwatch read plus one predicted
  // branch per endpoint, nothing more. Gated by the committed baseline like
  // every other micro value.
  for (auto _ : state) {
    const obs::PhaseSpan span("bench.disabled", "bench");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsSpanDisabled);

/// Console output as usual, plus seconds-per-iteration collected for the
/// JSON report. Benchmark names like "BM_DomTreeMis/3" become keys with the
/// '/' flattened to '_' and a "_seconds" suffix — the suffix is what makes
/// bench_diff apply its one-sided timing rule to every micro value, so the
/// committed BENCH_micro.json baseline gates the key SET hard (a benchmark
/// silently disappearing is a regression) while time drift only fails past
/// the generous --time-threshold CI passes.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.iterations == 0) continue;
      std::string key = run.benchmark_name();
      std::replace(key.begin(), key.end(), '/', '_');
      seconds_per_iteration.emplace_back(
          key + "_seconds", run.real_accumulated_time / static_cast<double>(run.iterations));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<std::pair<std::string, double>> seconds_per_iteration;
};

}  // namespace
}  // namespace remspan

int main(int argc, char** argv) {
  remspan::obs::PhaseSpan timer("bench.run", "bench");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  remspan::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  remspan::BenchReport report("micro");
  report.param("workload", std::string("shared UDG side=7 mean_n=500 seed=77"));
  for (const auto& [key, seconds] : reporter.seconds_per_iteration) {
    report.value(key, seconds);
  }
  report.set_wall_seconds(timer.seconds());
  report.write_file(report.default_filename());
  std::cout << "\nreport: " << report.default_filename() << "\n";
  return 0;
}
