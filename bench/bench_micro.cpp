// E12 — microbenchmarks (google-benchmark): throughput of the primitives
// behind every experiment, for performance-regression tracking.
#include <benchmark/benchmark.h>

#include "baseline/mpr.hpp"
#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

const Graph& shared_udg() {
  static const Graph g = [] {
    Rng rng(77);
    const auto gg = random_unit_disk_graph(7.0, 500, rng);
    const auto comps = connected_components(gg.graph);
    return induced_subgraph(gg.graph, comps.largest()).graph;
  }();
  return g;
}

void BM_BfsFull(benchmark::State& state) {
  const Graph& g = shared_udg();
  BoundedBfs bfs(g.num_nodes());
  NodeId src = 0;
  for (auto _ : state) {
    bfs.run(GraphView(g), src);
    src = (src + 1) % g.num_nodes();
    benchmark::DoNotOptimize(bfs.order().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsFull);

void BM_BfsTwoHop(benchmark::State& state) {
  const Graph& g = shared_udg();
  BoundedBfs bfs(g.num_nodes());
  NodeId src = 0;
  for (auto _ : state) {
    bfs.run(GraphView(g), src, 2);
    src = (src + 1) % g.num_nodes();
    benchmark::DoNotOptimize(bfs.order().size());
  }
}
BENCHMARK(BM_BfsTwoHop);

void BM_DomTreeGreedyK(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto k = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.greedy_k(root, k).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeGreedyK)->Arg(1)->Arg(2)->Arg(4);

void BM_DomTreeMis(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto r = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.mis(root, r).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeMis)->Arg(2)->Arg(3)->Arg(5);

void BM_DomTreeMisK(benchmark::State& state) {
  const Graph& g = shared_udg();
  DomTreeBuilder builder(g);
  const auto k = static_cast<Dist>(state.range(0));
  NodeId root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.mis_k(root, k).num_edges());
    root = (root + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DomTreeMisK)->Arg(1)->Arg(2)->Arg(4);

void BM_SpannerBuildTh2(benchmark::State& state) {
  const Graph& g = shared_udg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_k_connecting_spanner(g, 1).size());
  }
}
BENCHMARK(BM_SpannerBuildTh2)->Unit(benchmark::kMillisecond);

void BM_SpannerBuildTh1(benchmark::State& state) {
  const Graph& g = shared_udg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_low_stretch_remote_spanner(g, 0.5).size());
  }
}
BENCHMARK(BM_SpannerBuildTh1)->Unit(benchmark::kMillisecond);

void BM_OlsrMprNode(benchmark::State& state) {
  const Graph& g = shared_udg();
  NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(olsr_mpr_set(g, u).size());
    u = (u + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_OlsrMprNode);

void BM_DisjointPathsOracle(benchmark::State& state) {
  const Graph& g = shared_udg();
  NodeId s = 0;
  for (auto _ : state) {
    const NodeId t = (s + g.num_nodes() / 2) % g.num_nodes();
    benchmark::DoNotOptimize(min_disjoint_paths(GraphView(g), s, t, 2).connectivity());
    s = (s + 1) % g.num_nodes();
  }
  state.SetLabel("d^2 via min-cost flow, n=" + std::to_string(g.num_nodes()));
}
BENCHMARK(BM_DisjointPathsOracle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace remspan

BENCHMARK_MAIN();
