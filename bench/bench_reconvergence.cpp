// Dynamic workload — protocol-level reconvergence under churn: what the
// remote-spanner's locality buys a *running* link-state protocol. Per churn
// batch the round simulator measures the cost of re-converging the
// distributed state (rounds, messages, bytes on the wire) for
//
//   remspan_inc     — scoped incremental re-advertisement: only the nodes
//                     within the flood scope of a touched endpoint (the
//                     dirty ball of src/dynamic) re-flood lists and trees,
//   remspan_reflood — the strawman: every node cold-starts Algorithm
//                     RemSpan on the new snapshot each batch,
//   mpr_inc         — the OLSR multipoint-relay baseline riding the same
//                     scoped pipeline (scope 1, RFC 3626 selection).
//
// Every count is deterministic at fixed seed (single-threaded simulator),
// so the committed baseline gates all values hard; only wall time is
// ignored. The incremental strategies are checked to converge to exactly
// the centralized construction on the final snapshot.
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "dynamic/churn_trace.hpp"
#include "sim/reconvergence.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

struct StrategyCase {
  std::string name;  // JSON key fragment
  api::SpannerSpec spec;  ///< protocol + centralized oracle both come from it
  ReconvergeStrategy strategy = ReconvergeStrategy::kIncremental;
};

struct StrategyResult {
  std::vector<ReconvergeBatchStats> batches;
  ReconvergeBatchStats initial;
  std::size_t final_spanner_edges = 0;
  bool equivalent = false;  // final spanner == centralized construction
};

StrategyResult replay(const ChurnTrace& trace, const StrategyCase& c) {
  StrategyResult result;
  const auto sim = api::open_reconvergence_session(trace.initial_graph(), c.spec, c.strategy);
  result.initial = sim->initial_stats();
  for (const auto& batch : trace.batches) {
    result.batches.push_back(sim->apply_batch(batch));
  }
  result.final_spanner_edges = sim->spanner().size();
  result.equivalent = sim->spanner().edge_list() ==
                      api::build_spanner(sim->graph(), c.spec).edges.edge_list();
  return result;
}

/// One full replay over a degraded channel: cumulative cost counters plus
/// the converged end state (per-node trees + spanner) for the bit-exactness
/// check against the lossless replay.
struct LossResult {
  std::uint64_t rounds = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t delayed = 0;
  std::vector<std::vector<Edge>> trees;  // per node
  std::vector<Edge> spanner;
};

LossResult replay_under_faults(const ChurnTrace& trace, const api::SpannerSpec& spec,
                               ReconvergeStrategy strategy, const FaultConfig& faults) {
  const auto sim = api::open_reconvergence_session(trace.initial_graph(), spec, strategy, faults);
  LossResult r;
  auto account = [&r](const ReconvergeBatchStats& s) {
    r.rounds += s.rounds;
    r.msgs += s.transmissions;
    r.bytes += s.wire_bytes;
    r.drops += s.drops;
    r.delayed += s.delayed;
  };
  account(sim->initial_stats());
  for (const auto& batch : trace.batches) account(sim->apply_batch(batch));
  for (NodeId v = 0; v < sim->graph().num_nodes(); ++v) r.trees.push_back(sim->node_tree(v));
  r.spanner = sim->spanner().edge_list();
  return r;
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 400));
  const double side = opts.get_double("side", 12.5);
  // At least one mobility batch and one outage/recovery pair: zero-batch
  // scenarios would divide by zero in the per-batch means below.
  const auto batches =
      std::max<std::size_t>(1, static_cast<std::size_t>(opts.get_int("batches", 6)));
  const double churn = opts.get_double("churn", 0.01);
  const auto k = static_cast<Dist>(opts.get_int("k", 1));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("reconvergence");
  report.seed(seed);
  report.param("n", n);
  report.param("side", side);
  report.param("batches", batches);
  report.param("churn", churn);
  report.param("k", k);

  banner("Protocol reconvergence under churn — scoped re-advertisement vs full re-flood",
         "dirty-ball locality: a batch only makes the nodes near its touched endpoints re-advertise");

  Rng rng(seed);
  const GeometricGraph gg = largest_component(uniform_unit_ball_graph(n, side, 2, rng));
  const Graph& g = gg.graph;
  const auto m = g.num_edges();
  const double target_edges = churn * static_cast<double>(m);
  std::cout << "workload: n=" << g.num_nodes() << " m=" << m
            << " avg deg=" << format_double(g.average_degree(), 2) << ", churn target "
            << format_double(target_edges, 0) << " edges/batch\n\n";
  report.value("nodes", g.num_nodes());
  report.value("initial_edges", m);

  const auto movers = static_cast<std::size_t>(
      std::max(1.0, std::round(target_edges / (2.0 * g.average_degree()))));
  const double region_radius =
      side * std::sqrt(churn / 3.14159265358979323846) + 0.5 * gg.radius;

  const api::SpannerSpec remspan_spec = api::SpannerSpec::th2(k);
  const api::SpannerSpec mpr_spec = api::SpannerSpec::mpr();

  const StrategyCase cases[] = {
      {"remspan_inc", remspan_spec, ReconvergeStrategy::kIncremental},
      {"remspan_reflood", remspan_spec, ReconvergeStrategy::kFullReflood},
      {"mpr_inc", mpr_spec, ReconvergeStrategy::kIncremental},
      {"mpr_reflood", mpr_spec, ReconvergeStrategy::kFullReflood},
  };
  const std::pair<std::string, ChurnTrace> scenarios[] = {
      {"mobility", mobility_churn_trace(gg, batches, movers, 100 * seed + 1)},
      {"outage", region_outage_trace(gg, std::max<std::size_t>(1, batches / 2), region_radius,
                                     100 * seed + 2)},
  };

  bool all_equivalent = true;
  Table per_batch({"scenario", "strategy", "batch", "+e", "-e", "adv", "rounds", "msgs",
                   "words", "bytes"});
  Table summary({"scenario", "strategy", "batches", "rounds", "msgs total", "KB total",
                 "msgs/batch", "vs reflood", "|H| final", "exact"});

  for (const auto& [scenario, trace] : scenarios) {
    // Replay every strategy first: the summary's ratio column compares each
    // incremental run against its own protocol's re-flood strawman.
    std::vector<StrategyResult> results;
    std::map<std::string, std::uint64_t> reflood_msgs;
    for (const StrategyCase& c : cases) {
      results.push_back(replay(trace, c));
      if (c.strategy == ReconvergeStrategy::kFullReflood) {
        std::uint64_t msgs = 0;
        for (const auto& b : results.back().batches) msgs += b.transmissions;
        reflood_msgs[c.spec.kind_name()] = msgs;
      }
    }
    for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
      const StrategyCase& c = cases[ci];
      const StrategyResult& r = results[ci];
      all_equivalent = all_equivalent && r.equivalent;

      std::uint64_t total_msgs = 0;
      std::uint64_t total_bytes = 0;
      std::uint64_t total_rounds = 0;
      double sum_adv = 0.0;
      for (const auto& b : r.batches) {
        total_msgs += b.transmissions;
        total_bytes += b.wire_bytes;
        total_rounds += b.rounds;
        sum_adv += static_cast<double>(b.advertising_nodes);
        const std::string prefix =
            scenario + "_" + c.name + "_b" + std::to_string(b.batch);
        report.value(prefix + "_rounds", b.rounds);
        report.value(prefix + "_msgs", b.transmissions);
        report.value(prefix + "_bytes", b.wire_bytes);
        per_batch.add_row({scenario, c.name, std::to_string(b.batch),
                           std::to_string(b.inserted_edges), std::to_string(b.removed_edges),
                           std::to_string(b.advertising_nodes), std::to_string(b.rounds),
                           std::to_string(b.transmissions), std::to_string(b.payload_words),
                           std::to_string(b.wire_bytes)});
      }
      const double msgs_per_batch =
          static_cast<double>(total_msgs) / static_cast<double>(r.batches.size());
      const std::uint64_t strawman = reflood_msgs[c.spec.kind_name()];
      const std::string ratio =
          strawman == 0 ? "1.00"
                        : format_double(static_cast<double>(total_msgs) /
                                            static_cast<double>(strawman),
                                        2);
      summary.add_row({scenario, c.name, std::to_string(r.batches.size()),
                       std::to_string(total_rounds), std::to_string(total_msgs),
                       format_double(static_cast<double>(total_bytes) / 1024.0, 1),
                       format_double(msgs_per_batch, 1), ratio,
                       std::to_string(r.final_spanner_edges), r.equivalent ? "yes" : "NO"});

      const std::string prefix = scenario + "_" + c.name;
      report.value(prefix + "_total_rounds", total_rounds);
      report.value(prefix + "_total_msgs", total_msgs);
      report.value(prefix + "_total_bytes", total_bytes);
      report.value(prefix + "_mean_advertisers",
                   sum_adv / static_cast<double>(r.batches.size()));
      report.value(prefix + "_final_spanner_edges", r.final_spanner_edges);
      report.value(prefix + "_equivalent", r.equivalent ? 1 : 0);
      report.value(prefix + "_initial_msgs", r.initial.transmissions);
    }
  }

  std::cout << "per-batch reconvergence cost:\n";
  per_batch.print(std::cout);
  std::cout << "\nsummary ('vs reflood' = message volume relative to the same protocol's\n"
               "cold-start strawman in the same scenario):\n";
  summary.print(std::cout);
  std::cout << "\nreading: the incremental strategies pay only for the dirty ball around\n"
               "each batch's touched endpoints, while the re-flood strawman pays the\n"
               "full n-node advertisement cost every batch — yet all strategies end on\n"
               "the identical converged spanner ('exact' column, checked against the\n"
               "centralized construction).\n";

  report.value("all_equivalent", all_equivalent ? 1 : 0);
  report.finish();

  // --- Convergence under loss: the same protocol over degraded channels ---
  //
  // The contract (sim/reconvergence.hpp): loss and delay cost rounds and
  // messages, never correctness — every channel row must end bit-exactly on
  // the lossless replay's per-node state. Counters are deterministic at
  // fixed seeds (hash-derived channel, single-threaded simulator), so the
  // committed baseline gates every value; only wall time is ignored.
  Report loss_report("reconvergence_loss");
  loss_report.seed(seed);
  loss_report.param("n", n);
  loss_report.param("side", side);
  loss_report.param("churn", churn);
  loss_report.param("k", k);

  banner("Reconvergence under loss — retransmit/backoff vs the degraded channel",
         "same converged state as the lossless run, paid for in rounds and retransmissions");

  const ChurnTrace loss_trace = mobility_churn_trace(gg, 2, movers, 100 * seed + 3);
  struct ChannelCase {
    std::string name;
    FaultConfig faults;
  };
  std::vector<ChannelCase> channels;
  for (const double p : {0.0, 0.05, 0.2, 0.5}) {
    FaultConfig f;
    f.link.drop = p;
    f.link.seed = seed + 11;
    channels.push_back({"p" + std::to_string(static_cast<int>(p * 100)), f});
  }
  {
    FaultConfig f;
    f.link.burst = GilbertElliott::from_loss_and_burst(0.2, 4.0);
    f.link.seed = seed + 11;
    channels.push_back({"burst20", f});
  }
  {
    FaultConfig f;
    f.link.drop = 0.1;
    f.link.delay = 1;
    f.link.jitter = 2;
    f.link.seed = seed + 11;
    channels.push_back({"delay_jitter", f});
  }

  const std::pair<std::string, ReconvergeStrategy> loss_strategies[] = {
      {"inc", ReconvergeStrategy::kIncremental},
      {"reflood", ReconvergeStrategy::kFullReflood},
  };

  bool all_loss_exact = true;
  Table loss_table({"channel", "strategy", "rounds", "msgs", "KB", "drops", "delayed", "exact"});
  for (const auto& [sname, strategy] : loss_strategies) {
    const LossResult lossless =
        replay_under_faults(loss_trace, remspan_spec, strategy, FaultConfig{});
    for (const ChannelCase& c : channels) {
      const LossResult r = c.faults.faulty()
                               ? replay_under_faults(loss_trace, remspan_spec, strategy, c.faults)
                               : lossless;
      const bool exact = r.trees == lossless.trees && r.spanner == lossless.spanner;
      all_loss_exact = all_loss_exact && exact;
      loss_table.add_row({c.name, sname, std::to_string(r.rounds), std::to_string(r.msgs),
                          format_double(static_cast<double>(r.bytes) / 1024.0, 1),
                          std::to_string(r.drops), std::to_string(r.delayed),
                          exact ? "yes" : "NO"});
      const std::string prefix = sname + "_" + c.name;
      loss_report.value(prefix + "_rounds", r.rounds);
      loss_report.value(prefix + "_msgs", r.msgs);
      loss_report.value(prefix + "_bytes", r.bytes);
      loss_report.value(prefix + "_drops", r.drops);
      loss_report.value(prefix + "_delayed", r.delayed);
      loss_report.value(prefix + "_state_exact", exact ? 1 : 0);
    }
  }

  std::cout << "cost of convergence per channel (initial build + 2 mobility batches;\n"
               "'exact' = per-node converged state bit-identical to the lossless replay):\n";
  loss_table.print(std::cout);
  std::cout << "\nreading: the degraded channels change what convergence *costs* —\n"
               "retransmissions, extra rounds, dropped and delayed copies — but never\n"
               "what it converges *to*.\n";

  loss_report.value("all_state_exact", all_loss_exact ? 1 : 0);
  loss_report.finish();
  return all_equivalent && all_loss_exact ? 0 : 1;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
