// E4/E7 — Theorems 1 and 3: on the unit ball graph of a doubling metric the
// (1+eps,1-2eps)-remote-spanner and the 2-connecting (2,-1)-remote-spanner
// have O(n) edges with a constant depending only on eps and the doubling
// dimension p — NOT on the graph's density.
//
// Two views:
//  (a) n sweep in a fixed square: the input densifies ~n^2 while the
//      constructions grow with a visibly smaller exponent (they approach
//      linear as the per-tree packing constant saturates);
//  (b) density sweep at fixed n (shrinking square): input edges/n grows
//      linearly with average degree while the constructions' edges/n
//      saturates — the density-independent constant of the theorems,
//      which no classical density-oblivious bound provides.
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "util/fit.hpp"

using namespace remspan;
using namespace remspan::bench;

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const double side = opts.get_double("side", 8.0);
  const double eps = opts.get_double("eps", 0.5);
  const auto n_max = static_cast<std::size_t>(opts.get_int("n-max", 2000));
  const auto n_fixed = static_cast<std::size_t>(opts.get_int("n-fixed", 1200));
  const auto dim = static_cast<std::size_t>(opts.get_int("dim", 2));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("ubg_linear");
  report.param("side", side);
  report.param("eps", eps);
  report.param("n_max", n_max);
  report.param("n_fixed", n_fixed);
  report.param("dim", dim);

  banner("Figure E4/E7 — linear-size constructions on doubling UBGs",
         "paper: Th.1 edges O(eps^-(p+1) n), Th.3 edges O(n); constants independent of density");

  std::cout << "(a) n sweep, fixed square side=" << side << "\n";
  std::vector<double> ns, ge, t1e, t3e;
  Table table({"n", "edges(G)", "G/n", "Th1 edges", "Th1/n", "Th3 edges", "Th3/n"});
  for (std::size_t n = 250; n <= n_max; n *= 2) {
    const GeometricGraph gg = paper_ubg(n, side, dim, 40 + n);
    const Graph& g = gg.graph;
    const EdgeSet th1 = api::build_spanner(g, api::SpannerSpec::th1(eps)).edges;
    const EdgeSet th3 = api::build_spanner(g, api::SpannerSpec::th3(2)).edges;
    const auto nn = static_cast<double>(g.num_nodes());
    ns.push_back(nn);
    ge.push_back(static_cast<double>(g.num_edges()));
    t1e.push_back(static_cast<double>(th1.size()));
    t3e.push_back(static_cast<double>(th3.size()));
    table.add_row({std::to_string(g.num_nodes()), std::to_string(g.num_edges()),
                   format_double(ge.back() / nn, 2), std::to_string(th1.size()),
                   format_double(t1e.back() / nn, 2), std::to_string(th3.size()),
                   format_double(t3e.back() / nn, 2)});
  }
  table.print(std::cout);
  const double exp_input = fit_power_law(ns, ge).slope;
  const double exp_th1 = fit_power_law(ns, t1e).slope;
  const double exp_th3 = fit_power_law(ns, t3e).slope;
  std::cout << "fitted exponents: input n^" << format_double(exp_input, 3) << " | Th.1 n^"
            << format_double(exp_th1, 3) << " | Th.3 n^" << format_double(exp_th3, 3)
            << "  (input ~2; constructions clearly sub-quadratic, approaching 1)\n";
  report.value("exponent_input", exp_input);
  report.value("exponent_th1", exp_th1);
  report.value("exponent_th3", exp_th3);

  std::cout << "\n(b) density sweep, fixed n=" << n_fixed
            << " (shrinking square => growing average degree)\n";
  Table dens({"side", "avg deg", "edges(G)/n", "Th1/n", "Th3/n"});
  std::vector<double> degs, t1n, gn;
  for (const double s : {11.0, 9.0, 7.5, 6.0, 5.0, 4.2}) {
    const GeometricGraph gg = paper_ubg(n_fixed, s, dim, 90 + static_cast<std::uint64_t>(s * 10));
    const Graph& g = gg.graph;
    const EdgeSet th1 = api::build_spanner(g, api::SpannerSpec::th1(eps)).edges;
    const EdgeSet th3 = api::build_spanner(g, api::SpannerSpec::th3(2)).edges;
    const auto nn = static_cast<double>(g.num_nodes());
    degs.push_back(g.average_degree());
    gn.push_back(static_cast<double>(g.num_edges()) / nn);
    t1n.push_back(static_cast<double>(th1.size()) / nn);
    dens.add_row({format_double(s, 1), format_double(g.average_degree(), 1),
                  format_double(static_cast<double>(g.num_edges()) / nn, 2),
                  format_double(static_cast<double>(th1.size()) / nn, 2),
                  format_double(static_cast<double>(th3.size()) / nn, 2)});
  }
  dens.print(std::cout);
  const double input_growth = gn.back() / gn.front();
  const double th1_growth = t1n.back() / t1n.front();
  std::cout << "degree grew " << format_double(degs.back() / degs.front(), 1)
            << "x: input edges/n grew " << format_double(input_growth, 1)
            << "x, Th.1 edges/n only " << format_double(th1_growth, 2)
            << "x  (paper: bounded by the eps/p packing constant)\n";
  report.value("density_degree_growth", degs.back() / degs.front());
  report.value("density_input_growth", input_growth);
  report.value("density_th1_growth", th1_growth);
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
