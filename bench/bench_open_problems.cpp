// E15 — the paper's stated open problems (Section 4), explored empirically:
//
// (A) Proposition 4 is proven only for k = 2. Does the same construction
//     (union of k-connecting (2,1)-dominating trees, Algorithm 5) give a
//     k-connecting (2,-1)-remote-spanner for k = 3, 4 as well? We measure
//     the k-connecting stretch of the k = 3, 4 unions on sampled pairs.
//
// (B) "An interesting followup resides in constructing sparse k-connecting
//     (1+eps, O(1))-remote-spanners for any eps > 0 and k > 1." Candidate:
//     the union of Theorem 1's low-stretch trees and Algorithm 5's
//     k-connecting (2,1) trees. We measure the smallest additive constant c
//     such that d^{k'}_{H_s} <= (1+eps) d^{k'}_G + k' c holds over the
//     sample, and compare the candidate's size against the exact
//     k-connecting (1,0) construction it would replace.
//
// These are explorations, not theorems: results are recorded as empirical
// status in EXPERIMENTS.md.
#include <algorithm>

#include "analysis/kconn_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "core/remote_spanner.hpp"
#include "geom/synthetic.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

/// Smallest integer c >= -1 such that the (alpha, c) k-connecting bound
/// holds on the sampled pairs; 99 when even c = 8 fails.
int smallest_additive(const Graph& g, const EdgeSet& h, Dist k, double alpha,
                      std::size_t pairs, std::uint64_t seed) {
  for (int c = -1; c <= 8; ++c) {
    const auto report = check_k_connecting_stretch(
        g, h, k, Stretch{alpha, static_cast<double>(c)}, pairs, seed);
    if (report.satisfied) return c;
  }
  return 99;
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<NodeId>(opts.get_int("n", 120));
  const auto pairs = static_cast<std::size_t>(opts.get_int("pairs", 200));
  const auto reps = static_cast<int>(opts.get_int("reps", 3));
  const double eps = opts.get_double("eps", 0.5);
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("open_problems");
  report.param("n", n);
  report.param("pairs", pairs);
  report.param("reps", reps);
  report.param("eps", eps);

  banner("Table E15 — the paper's open problems, explored empirically",
         "(A) does Prop. 4 generalize to k > 2?  (B) sparse k-connecting (1+eps, O(1))?");

  std::cout << "(A) union of k-connecting (2,1)-dominating trees, checked as a\n"
               "    k-connecting (2,-1)-remote-spanner beyond the proven k = 2:\n";
  Table a({"family", "k", "pairs", "violations", "max excess over (2,-1)"});
  std::size_t a_violations = 0;
  for (const Dist k : {2u, 3u, 4u}) {
    for (int rep = 0; rep < reps; ++rep) {
      const auto seed = static_cast<std::uint64_t>(3000 + 100 * k + rep);
      Rng rng(seed);
      struct Fam {
        std::string name;
        Graph g;
      };
      std::vector<Fam> fams;
      fams.push_back({"G(n,p)", connected_gnp(n, 12.0 / n, rng)});
      fams.push_back({"UDG", paper_udg(4.0, n, seed + 7)});
      for (const auto& [name, g] : fams) {
        const EdgeSet h = api::build_spanner(g, api::SpannerSpec::th3(k)).edges;
        const auto checked =
            check_k_connecting_stretch(g, h, k, Stretch{2.0, -1.0}, pairs, seed);
        a_violations += checked.violations;
        a.add_row({name + " rep" + std::to_string(rep), std::to_string(k),
                   std::to_string(checked.pairs_checked), std::to_string(checked.violations),
                   format_double(checked.max_excess, 2)});
      }
    }
  }
  a.print(std::cout);
  std::cout << (a_violations == 0
                    ? "no violations at k = 3, 4: evidence that Prop. 4 generalizes.\n"
                    : "violations found beyond k = 2: the generalization FAILS as is.\n");

  std::cout << "\n(B) candidate sparse k-connecting (1+eps, O(1))-remote-spanner:\n"
               "    H = Th.1 trees (eps) UNION Alg. 5 trees (k). Smallest additive c\n"
               "    with d^{k'}_{H_s} <= (1+eps) d^{k'}_G + k'c on the sample, and size\n"
               "    vs the exact k-connecting (1,0) spanner of Th.2:\n";
  Table b_table({"family", "k", "candidate edges", "Th.2 edges", "size ratio",
                 "smallest c", "input m"});
  int worst_c = -1;
  double worst_size_ratio = 0.0;
  for (const Dist k : {2u, 3u}) {
    for (int rep = 0; rep < reps; ++rep) {
      const auto seed = static_cast<std::uint64_t>(5000 + 100 * k + rep);
      Rng rng(seed);
      const Graph g = paper_udg(4.0, 2 * n, seed + 3);
      EdgeSet candidate = api::build_spanner(g, api::SpannerSpec::th1(eps)).edges;
      candidate |= api::build_spanner(g, api::SpannerSpec::th3(k)).edges;
      const EdgeSet exact = api::build_spanner(g, api::SpannerSpec::th2(k)).edges;
      const int c = smallest_additive(g, candidate, k, 1.0 + eps, pairs, seed);
      worst_c = std::max(worst_c, c);
      worst_size_ratio = std::max(worst_size_ratio, static_cast<double>(candidate.size()) /
                                                        static_cast<double>(exact.size()));
      b_table.add_row(
          {"UDG rep" + std::to_string(rep), std::to_string(k),
           std::to_string(candidate.size()), std::to_string(exact.size()),
           format_double(static_cast<double>(candidate.size()) /
                             static_cast<double>(exact.size()),
                         3),
           c == 99 ? "none<=8" : std::to_string(c), std::to_string(g.num_edges())});
    }
  }
  b_table.print(std::cout);
  std::cout << "\nA small constant c with size ratio < 1 would answer the followup\n"
               "affirmatively on these instances; ratio >= 1 means the candidate is\n"
               "not yet sparser than exactness — the problem stays open.\n";
  report.value("a_violations", a_violations);
  report.value("b_worst_additive_c", static_cast<std::int64_t>(worst_c));
  report.value("b_worst_size_ratio", worst_size_ratio);
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
