// E11 — remote-spanners against the classical alternatives on the same
// inputs: edge budget vs measured worst-case stretch (remote and classical
// where applicable), plus — for every construction with a distributed
// protocol — the measured cost of *computing* it on the round simulator:
// rounds until quiescence, transmissions per node, wire bytes per node.
// This is the "who wins" reading of Table 1, now including the
// communication axis the CONGEST baselines compete on.
#include <optional>

#include "analysis/stretch_oracle.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "geom/synthetic.hpp"
#include "sim/remspan_protocol.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

void compare_on(const std::string& label, const Graph& g, std::uint64_t seed,
                Report& report, const std::string& prefix) {
  std::cout << "\ninput: " << label << " (n=" << g.num_nodes() << " m=" << g.num_edges()
            << ")\n";
  // One shared RNG across the seeded constructions (the two Baswana-Sen
  // rows draw from it in sequence), threaded through the registry builds.
  Rng rng(seed);
  api::BuildContext ctx;
  ctx.rng = &rng;
  struct Case {
    std::string name;
    EdgeSet h;
    // Protocol behind the construction, when one exists: the distributed
    // rounds/communication columns are measured by actually running it.
    std::optional<RemSpanConfig> protocol;
  };
  std::vector<Case> cases;
  for (const auto& [name, spec_text] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"full topology", "full"},
           {"(1,0)-rem-span [Th.2 k=1]", "th2?k=1"},
           {"2-conn (1,0)-rem-span [Th.2 k=2]", "th2?k=2"},
           {"OLSR MPR union", "mpr"},
           {"(1.5,0)-rem-span [Th.1 eps=.5]", "th1?eps=0.5"},
           {"2-conn (2,-1)-rem-span [Th.3]", "th3?k=2"},
           {"greedy (3,0)-spanner", "greedy?t=3"},
           {"Baswana-Sen k=2 (3,0)-spanner", "baswana?k=2"},
           {"Baswana-Sen k=3 (5,0)-spanner", "baswana?k=3"}}) {
    const api::SpannerSpec spec = api::parse_spanner_spec(spec_text);
    api::SpannerResult res = api::build_spanner(g, spec, ctx);
    cases.push_back({name, std::move(res.edges),
                     api::supports_protocol(spec)
                         ? std::optional<RemSpanConfig>(api::protocol_config(spec))
                         : std::nullopt});
  }

  report.value(prefix + "_input_edges", g.num_edges());
  report.value(prefix + "_edges_th2_k1", cases[1].h.size());
  report.value(prefix + "_edges_mpr", cases[3].h.size());
  report.value(prefix + "_edges_th1", cases[4].h.size());
  report.value(prefix + "_edges_greedy3", cases[6].h.size());

  Table table({"construction", "edges", "% input", "remote max-ratio", "classic max-ratio",
               "rounds", "tx/node", "wire B/node"});
  for (const auto& c : cases) {
    const auto remote = check_remote_stretch(g, c.h, Stretch{1000.0, 1000.0});
    const auto classic = check_spanner_stretch(g, c.h, Stretch{1000.0, 1000.0});
    std::string rounds = "-";
    std::string tx_per_node = "-";
    std::string bytes_per_node = "-";
    if (c.protocol.has_value()) {
      const auto run = run_remspan_distributed(g, *c.protocol);
      const auto n = static_cast<double>(g.num_nodes());
      rounds = std::to_string(run.rounds);
      tx_per_node = format_double(static_cast<double>(run.stats.transmissions) / n, 1);
      bytes_per_node = format_double(static_cast<double>(run.stats.wire_bytes()) / n, 0);
    }
    table.add_row(
        {c.name, std::to_string(c.h.size()),
         format_double(100.0 * static_cast<double>(c.h.size()) /
                           static_cast<double>(g.num_edges()),
                       1),
         remote.violations == 0 ? format_double(remote.max_ratio, 3) : "disconnects",
         classic.violations == 0 ? format_double(classic.max_ratio, 3) : "disconnects",
         rounds, tx_per_node, bytes_per_node});
  }
  table.print(std::cout);
  std::cout << "('-' in the distributed columns: centralized constructions with no\n"
               "constant-round protocol — greedy/Baswana-Sen run on the full topology.)\n";
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const double mean_n = opts.get_double("n-udg", 600);
  const auto n_gnp = static_cast<NodeId>(opts.get_int("n-gnp", 450));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 51));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("baseline_compare");
  report.seed(seed);
  report.param("n_udg", mean_n);
  report.param("n_gnp", n_gnp);

  banner("Table E11 — remote-spanners vs classical spanners (same inputs)",
         "paper: remote relaxation buys exactness ((1,0) possible & sparse) or size (O(n) on UBG)");

  compare_on("random UDG", paper_udg(7.0, mean_n, seed), seed, report, "udg");
  Rng rng(seed + 1);
  compare_on("G(n,p) p=12/n", connected_gnp(n_gnp, 12.0 / n_gnp, rng), seed + 2, report, "gnp");

  std::cout << "\nReading: the (1,0)-remote-spanner rows keep remote max-ratio at 1.000\n"
               "with a fraction of the edges — impossible for any classical (1,0)\n"
               "spanner (100% of edges by definition). The classical spanners pay\n"
               "stretch ~3-5 for comparable sparsity.\n";
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
