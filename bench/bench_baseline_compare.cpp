// E11 — remote-spanners against the classical alternatives on the same
// inputs: edge budget vs measured worst-case stretch (remote and classical
// where applicable). This is the "who wins" reading of Table 1.
#include "analysis/stretch_oracle.hpp"
#include "baseline/baswana_sen.hpp"
#include "baseline/greedy_spanner.hpp"
#include "baseline/mpr.hpp"
#include "bench_common.hpp"
#include "core/remote_spanner.hpp"
#include "geom/synthetic.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

void compare_on(const std::string& label, const Graph& g, std::uint64_t seed,
                Report& report, const std::string& prefix) {
  std::cout << "\ninput: " << label << " (n=" << g.num_nodes() << " m=" << g.num_edges()
            << ")\n";
  Rng rng(seed);
  struct Case {
    std::string name;
    EdgeSet h;
  };
  std::vector<Case> cases;
  cases.push_back({"full topology", EdgeSet(g, true)});
  cases.push_back({"(1,0)-rem-span [Th.2 k=1]", build_k_connecting_spanner(g, 1)});
  cases.push_back({"2-conn (1,0)-rem-span [Th.2 k=2]", build_k_connecting_spanner(g, 2)});
  cases.push_back({"OLSR MPR union", olsr_mpr_spanner(g)});
  cases.push_back({"(1.5,0)-rem-span [Th.1 eps=.5]", build_low_stretch_remote_spanner(g, 0.5)});
  cases.push_back({"2-conn (2,-1)-rem-span [Th.3]", build_2connecting_spanner(g, 2)});
  cases.push_back({"greedy (3,0)-spanner", greedy_spanner(g, 3.0)});
  cases.push_back({"Baswana-Sen k=2 (3,0)-spanner", baswana_sen_spanner(g, 2, rng)});
  cases.push_back({"Baswana-Sen k=3 (5,0)-spanner", baswana_sen_spanner(g, 3, rng)});

  report.value(prefix + "_input_edges", g.num_edges());
  report.value(prefix + "_edges_th2_k1", cases[1].h.size());
  report.value(prefix + "_edges_mpr", cases[3].h.size());
  report.value(prefix + "_edges_th1", cases[4].h.size());
  report.value(prefix + "_edges_greedy3", cases[6].h.size());

  Table table({"construction", "edges", "% input", "remote max-ratio", "classic max-ratio"});
  for (const auto& c : cases) {
    const auto remote = check_remote_stretch(g, c.h, Stretch{1000.0, 1000.0});
    const auto classic = check_spanner_stretch(g, c.h, Stretch{1000.0, 1000.0});
    table.add_row(
        {c.name, std::to_string(c.h.size()),
         format_double(100.0 * static_cast<double>(c.h.size()) /
                           static_cast<double>(g.num_edges()),
                       1),
         remote.violations == 0 ? format_double(remote.max_ratio, 3) : "disconnects",
         classic.violations == 0 ? format_double(classic.max_ratio, 3) : "disconnects"});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const double mean_n = opts.get_double("n-udg", 600);
  const auto n_gnp = static_cast<NodeId>(opts.get_int("n-gnp", 450));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 51));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }

  Report report("baseline_compare");
  report.seed(seed);
  report.param("n_udg", mean_n);
  report.param("n_gnp", n_gnp);

  banner("Table E11 — remote-spanners vs classical spanners (same inputs)",
         "paper: remote relaxation buys exactness ((1,0) possible & sparse) or size (O(n) on UBG)");

  compare_on("random UDG", paper_udg(7.0, mean_n, seed), seed, report, "udg");
  Rng rng(seed + 1);
  compare_on("G(n,p) p=12/n", connected_gnp(n_gnp, 12.0 / n_gnp, rng), seed + 2, report, "gnp");

  std::cout << "\nReading: the (1,0)-remote-spanner rows keep remote max-ratio at 1.000\n"
               "with a fraction of the edges — impossible for any classical (1,0)\n"
               "spanner (100% of edges by definition). The classical spanners pay\n"
               "stretch ~3-5 for comparable sparsity.\n";
  report.finish();
  return 0;
}
