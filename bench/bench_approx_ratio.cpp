// E10 — Propositions 2 and 6: the greedy dominating trees are within
// (1 + log Delta) of the optimal tree (per shell; factor (1+beta)(r+beta-1)
// (1+log Delta) overall). Measured: exact optima by exhaustive set cover on
// small neighborhoods vs the greedy's tree sizes, reported as a worst-case
// and average ratio against the theoretical ceiling.
#include <cmath>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "geom/synthetic.hpp"

using namespace remspan;
using namespace remspan::bench;

namespace {

/// Exact minimum k-cover of the distance-2 shell of u by neighbors of u
/// (the optimal k-connecting (2,0)-dominating tree size; Prop. 6's
/// comparison point). Exponential in deg(u): callers keep degrees <= 20.
std::size_t optimal_k_cover(const Graph& g, NodeId u, Dist k) {
  const auto nbrs = g.neighbors(u);
  const std::size_t d = nbrs.size();
  REMSPAN_CHECK(d <= 22);
  // Shell and per-shell-node candidate masks.
  BoundedBfs bfs(g.num_nodes());
  bfs.run(GraphView(g), u, 2);
  std::vector<std::uint32_t> masks;      // for each shell node: covering neighbors
  std::vector<std::uint32_t> needed;     // min(k, popcount(mask))
  for (const NodeId v : bfs.order()) {
    if (bfs.dist(v) != 2) continue;
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < d; ++i) {
      if (g.has_edge(nbrs[i], v)) mask |= (1u << i);
    }
    masks.push_back(mask);
    needed.push_back(std::min<std::uint32_t>(k, static_cast<std::uint32_t>(
                                                    __builtin_popcount(mask))));
  }
  if (masks.empty()) return 0;
  std::size_t best = d;
  for (std::uint32_t subset = 0; subset < (1u << d); ++subset) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(subset));
    if (size >= best) continue;
    bool ok = true;
    for (std::size_t j = 0; j < masks.size(); ++j) {
      if (static_cast<std::uint32_t>(__builtin_popcount(subset & masks[j])) < needed[j]) {
        ok = false;
        break;
      }
    }
    if (ok) best = size;
  }
  return best;
}

}  // namespace

int bench_main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto n = static_cast<NodeId>(opts.get_int("n", 70));
  const auto reps = static_cast<int>(opts.get_int("reps", 10));
  if (opts.help_requested()) {
    std::cout << opts.usage();
    return 0;
  }
  if (!opts.reject_unknown(std::cerr)) return 2;

  Report report("approx_ratio");
  report.param("n", n);
  report.param("reps", reps);

  banner("Table E10 — greedy dominating trees vs exact optimum",
         "paper: DomTreeGdy within 1+log Delta of optimal (Prop. 6; Prop. 2 for r>2)");

  Table table({"k", "roots", "greedy=opt", "max ratio", "avg ratio", "ceiling 1+ln D"});
  for (const Dist k : {1u, 2u, 3u}) {
    std::size_t roots = 0, exact_matches = 0;
    double max_ratio = 1.0, sum_ratio = 0.0;
    double ceiling = 1.0;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(900 + static_cast<std::uint64_t>(rep));
      const Graph g = connected_gnp(n, 6.0 / n, rng);
      DomTreeBuilder builder(g);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.degree(u) > 18) continue;  // keep brute force tractable
        const std::size_t greedy = builder.greedy_k(u, k).num_edges();
        const std::size_t opt = optimal_k_cover(g, u, k);
        if (opt == 0) continue;
        ++roots;
        exact_matches += (greedy == opt);
        const double ratio = static_cast<double>(greedy) / static_cast<double>(opt);
        max_ratio = std::max(max_ratio, ratio);
        sum_ratio += ratio;
        ceiling = std::max(ceiling, 1.0 + std::log(static_cast<double>(g.max_degree())));
      }
    }
    table.add_row({std::to_string(k), std::to_string(roots),
                   std::to_string(exact_matches), format_double(max_ratio, 3),
                   format_double(roots ? sum_ratio / static_cast<double>(roots) : 1.0, 3),
                   format_double(ceiling, 3)});
    const std::string key = "k" + std::to_string(k);
    report.value("roots_" + key, roots);
    report.value("max_ratio_" + key, max_ratio);
    report.value("ceiling_" + key, ceiling);
  }
  table.print(std::cout);
  std::cout << "\nEvery 'max ratio' must sit below the 1+ln(Delta) ceiling; in practice\n"
               "the greedy matches the optimum on most roots.\n";

  // Theorem 2's spanner-level claim: |E(H)| <= 2(1+log Delta) |E(H*)|,
  // proven through the lower bound 2|E(H*)| >= sum_u |T*_u|. We measure the
  // computed spanner against that same lower bound (sum of EXACT per-root
  // optima over 2), which is the tightest certificate available without
  // solving the NP-hard global problem.
  std::cout << "\nspanner-level optimality (Th.2 claim: within 2(1+log Delta) of optimal):\n";
  Table spanner_table({"k", "spanner edges", "lower bound sum(opt)/2", "ratio",
                       "ceiling 2(1+ln D)"});
  for (const Dist k : {1u, 2u}) {
    Rng rng(950 + k);
    const Graph g = connected_gnp(n, 6.0 / n, rng);
    std::uint64_t opt_sum = 0;
    bool exact = true;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (g.degree(u) > 18) {
        exact = false;
        break;
      }
      opt_sum += optimal_k_cover(g, u, k);
    }
    if (!exact) continue;
    const std::size_t spanner_edges = api::build_spanner(g, api::SpannerSpec::th2(k)).edges.size();
    const double lb = static_cast<double>(opt_sum) / 2.0;
    spanner_table.add_row(
        {std::to_string(k), std::to_string(spanner_edges), format_double(lb, 1),
         format_double(static_cast<double>(spanner_edges) / lb, 3),
         format_double(2.0 * (1.0 + std::log(static_cast<double>(g.max_degree()))), 3)});
    report.value("spanner_ratio_k" + std::to_string(k),
                 static_cast<double>(spanner_edges) / lb);
  }
  spanner_table.print(std::cout);
  report.finish();
  return 0;
}

int main(int argc, char** argv) { return cli_main(bench_main, argc, argv); }
