// Components, induced subgraphs and pairwise vertex connectivity.
#include <gtest/gtest.h>

#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/edge_set.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(Connectivity, SingleNodeIsConnected) {
  GraphBuilder b(1);
  EXPECT_TRUE(is_connected(b.build()));
}

TEST(Connectivity, EmptyGraphIsConnected) {
  GraphBuilder b(0);
  EXPECT_TRUE(is_connected(b.build()));
}

TEST(Connectivity, TwoIsolatedNodesAreNot) {
  GraphBuilder b(2);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(Connectivity, EdgeSetComponents) {
  const Graph g = cycle_graph(6);
  EdgeSet h(g);
  h.insert(0, 1);
  h.insert(3, 4);
  const Components comps = connected_components(h);
  // {0,1}, {3,4}, {2}, {5} -> 4 components.
  EXPECT_EQ(comps.count, 4u);
}

TEST(Connectivity, CompleteGraphConnectivity) {
  const Graph g = complete_graph(7);
  // Menger: between adjacent nodes of K_n, n-1 disjoint paths (1 direct +
  // n-2 through the others).
  EXPECT_EQ(vertex_connectivity(g, 0, 6), 6u);
}

TEST(Connectivity, CycleIsTwoConnected) {
  const Graph g = cycle_graph(9);
  EXPECT_EQ(vertex_connectivity(g, 0, 4), 2u);
  EXPECT_EQ(vertex_connectivity(g, 0, 1), 2u);
}

TEST(Connectivity, TreeIsOneConnected) {
  Rng rng(41);
  const Graph g = random_tree(30, rng);
  EXPECT_EQ(vertex_connectivity(g, 0, 29 % 30), 1u);
}

TEST(Connectivity, GridInteriorConnectivity) {
  const Graph g = grid_graph(5, 5);
  // Opposite corners of a grid: 2 disjoint paths (along the two sides).
  EXPECT_EQ(vertex_connectivity(g, 0, 24), 2u);
}

TEST(Connectivity, MatchesDisjointPathOracleOnRandomGraphs) {
  Rng rng(43);
  for (int rep = 0; rep < 4; ++rep) {
    const Graph g = connected_gnp(25, 0.2, rng);
    for (NodeId s = 0; s < 5; ++s) {
      for (NodeId t = 10; t < 13; ++t) {
        const Dist conn = vertex_connectivity(g, s, t);
        const auto result = min_disjoint_paths(GraphView(g), s, t, conn + 2);
        EXPECT_EQ(result.connectivity(), conn);
      }
    }
  }
}

TEST(Connectivity, LargestComponentExtraction) {
  Rng rng(45);
  // Sparse G(n,p) below the connectivity threshold usually splits.
  const Graph g = gnp(100, 0.015, rng);
  const Components comps = connected_components(g);
  const auto keep = comps.largest();
  const auto sub = induced_subgraph(g, keep);
  EXPECT_TRUE(is_connected(sub.graph));
  EXPECT_EQ(sub.graph.num_nodes(), keep.size());
}

}  // namespace
}  // namespace remspan
