// The versioned C ABI, driven exclusively through the public C header —
// no C++ library headers are included here, so everything these tests see
// is what an external C driver sees: build-by-spec-string, edge
// extraction, session event replay, and the error paths.
#include <remspan/remspan.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// A two-triangle bridge graph as a raw endpoint array.
const uint32_t kBridgeEdges[] = {0, 1, 0, 2, 1, 2, 2, 3, 3, 4, 3, 5, 4, 5};
constexpr size_t kBridgeEdgeCount = 7;
constexpr uint32_t kBridgeNodes = 6;

TEST(CApi, VersionAndInitialErrorState) {
  EXPECT_EQ(remspan_abi_version(), REMSPAN_ABI_VERSION);
  EXPECT_STREQ(remspan_last_error(), "");
}

TEST(CApi, GraphFromEdgesAndQueries) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_from_edges(kBridgeNodes, kBridgeEdges, kBridgeEdgeCount, &g),
            REMSPAN_OK);
  EXPECT_EQ(remspan_graph_num_nodes(g), kBridgeNodes);
  EXPECT_EQ(remspan_graph_num_edges(g), kBridgeEdgeCount);
  std::vector<uint32_t> out(2 * kBridgeEdgeCount, 0);
  EXPECT_EQ(remspan_graph_edges(g, out.data(), kBridgeEdgeCount), kBridgeEdgeCount);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 1u);
  remspan_graph_free(g);
}

TEST(CApi, GraphFromEdgesRejectsBadInput) {
  remspan_graph_t* g = nullptr;
  const uint32_t self_loop[] = {1, 1};
  EXPECT_EQ(remspan_graph_from_edges(4, self_loop, 1, &g), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(remspan_last_error()).find("self-loop"), std::string::npos);
  const uint32_t out_of_range[] = {0, 9};
  EXPECT_EQ(remspan_graph_from_edges(4, out_of_range, 1, &g), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(remspan_graph_from_edges(4, nullptr, 1, &g), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(g, nullptr);  // out-pointer untouched on failure
}

TEST(CApi, GenerateLoadAndIoErrors) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_generate("gnp?n=60&deg=6&seed=3", &g), REMSPAN_OK);
  EXPECT_EQ(remspan_graph_num_nodes(g), 60u);
  remspan_graph_free(g);

  EXPECT_EQ(remspan_graph_generate("dodecahedron?n=5", &g), REMSPAN_ERR_PARSE);
  EXPECT_NE(std::string(remspan_last_error()).find("dodecahedron"), std::string::npos);
  EXPECT_EQ(remspan_graph_generate(nullptr, &g), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(remspan_graph_load("this_file_does_not_exist.txt", &g), REMSPAN_ERR_IO);

  const char* path = "test_c_abi_graph.txt";
  {
    std::ofstream out(path);
    out << "n 3\n0 1\n1 2\n";
  }
  ASSERT_EQ(remspan_graph_load(path, &g), REMSPAN_OK);
  EXPECT_EQ(remspan_graph_num_nodes(g), 3u);
  EXPECT_EQ(remspan_graph_num_edges(g), 2u);
  remspan_graph_free(g);
  std::remove(path);
}

TEST(CApi, BuildBySpecStringQueryAndVerify) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_generate("udg?n=150&side=4&seed=5", &g), REMSPAN_OK);

  remspan_spanner_t* h = nullptr;
  ASSERT_EQ(remspan_spanner_build(g, "th2?k=2", &h), REMSPAN_OK);
  EXPECT_STREQ(remspan_spanner_spec(h), "th2?k=2");
  const size_t edges = remspan_spanner_num_edges(h);
  EXPECT_GT(edges, 0u);
  EXPECT_LE(edges, remspan_graph_num_edges(g));

  double alpha = -1, beta = -1;
  ASSERT_EQ(remspan_spanner_guarantee(h, &alpha, &beta), REMSPAN_OK);
  EXPECT_DOUBLE_EQ(alpha, 1.0);
  EXPECT_DOUBLE_EQ(beta, 0.0);

  // Every extracted edge is contained, in canonical order.
  std::vector<uint32_t> out(2 * edges, 0);
  ASSERT_EQ(remspan_spanner_edges(h, out.data(), edges), edges);
  for (size_t i = 0; i < edges; ++i) {
    EXPECT_LT(out[2 * i], out[2 * i + 1]);
    EXPECT_EQ(remspan_spanner_contains(h, out[2 * i], out[2 * i + 1]), 1);
    EXPECT_EQ(remspan_spanner_contains(h, out[2 * i + 1], out[2 * i]), 1);
  }
  EXPECT_EQ(remspan_spanner_contains(h, 0, 0), 0);

  int satisfied = 0;
  double max_ratio = 0.0;
  ASSERT_EQ(remspan_spanner_verify(g, h, 1, &satisfied, &max_ratio), REMSPAN_OK);
  EXPECT_EQ(satisfied, 1);
  EXPECT_GE(max_ratio, 1.0);

  // Freeing the graph first is allowed: the spanner keeps it alive.
  remspan_graph_free(g);
  EXPECT_GT(remspan_spanner_num_edges(h), 0u);
  remspan_spanner_free(h);
}

TEST(CApi, BuildAndVerifyErrorPaths) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_from_edges(kBridgeNodes, kBridgeEdges, kBridgeEdgeCount, &g),
            REMSPAN_OK);
  remspan_spanner_t* h = nullptr;
  EXPECT_EQ(remspan_spanner_build(g, "th2?k=banana", &h), REMSPAN_ERR_PARSE);
  EXPECT_NE(std::string(remspan_last_error()).find("banana"), std::string::npos);
  EXPECT_EQ(remspan_spanner_build(g, "th9", &h), REMSPAN_ERR_PARSE);
  EXPECT_EQ(remspan_spanner_build(nullptr, "th2", &h), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(h, nullptr);

  // "full" has nothing to verify.
  ASSERT_EQ(remspan_spanner_build(g, "full", &h), REMSPAN_OK);
  int satisfied = 0;
  EXPECT_EQ(remspan_spanner_verify(g, h, 1, &satisfied, nullptr), REMSPAN_ERR_UNSUPPORTED);

  // Verifying against a different topology is rejected...
  remspan_graph_t* other = nullptr;
  ASSERT_EQ(remspan_graph_generate("gnp?n=30&deg=4", &other), REMSPAN_OK);
  EXPECT_EQ(remspan_spanner_verify(other, h, 1, &satisfied, nullptr),
            REMSPAN_ERR_INVALID_ARGUMENT);
  remspan_graph_free(other);
  remspan_spanner_free(h);

  // ...but a distinct handle with the identical topology works, even after
  // the original graph handle is gone.
  ASSERT_EQ(remspan_spanner_build(g, "th2?k=1", &h), REMSPAN_OK);
  remspan_graph_free(g);
  remspan_graph_t* twin = nullptr;
  ASSERT_EQ(remspan_graph_from_edges(kBridgeNodes, kBridgeEdges, kBridgeEdgeCount, &twin),
            REMSPAN_OK);
  double ratio = 0.0;
  EXPECT_EQ(remspan_spanner_verify(twin, h, 1, &satisfied, &ratio), REMSPAN_OK);
  EXPECT_EQ(satisfied, 1);
  remspan_graph_free(twin);
  remspan_spanner_free(h);
}

TEST(CApi, SessionEventReplayStaysBitExact) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_generate("udg?n=120&side=4&seed=8", &g), REMSPAN_OK);
  remspan_session_t* session = nullptr;
  ASSERT_EQ(remspan_session_open(g, "th2?k=1", &session), REMSPAN_OK);

  // Initial state equals a from-scratch build.
  remspan_spanner_t* initial = nullptr;
  ASSERT_EQ(remspan_spanner_build(g, "th2?k=1", &initial), REMSPAN_OK);
  EXPECT_EQ(remspan_session_spanner_num_edges(session), remspan_spanner_num_edges(initial));
  remspan_spanner_free(initial);

  // Replay a few batches; after each, the maintained spanner must equal a
  // from-scratch rebuild on the session's snapshot, edge for edge.
  const uint32_t n = remspan_graph_num_nodes(g);
  for (uint32_t round = 0; round < 3; ++round) {
    std::vector<remspan_event_t> batch;
    std::vector<uint32_t> first(2, 0);
    (void)remspan_graph_edges(g, first.data(), 1);
    batch.push_back({REMSPAN_EVENT_EDGE_DOWN, first[0], first[1]});
    batch.push_back({REMSPAN_EVENT_EDGE_UP, round, n - 1 - round});
    batch.push_back({REMSPAN_EVENT_NODE_DOWN, (round * 7 + 3) % n, 0});
    remspan_batch_stats_t stats;
    ASSERT_EQ(remspan_session_apply(session, batch.data(), batch.size(), &stats), REMSPAN_OK);
    EXPECT_EQ(stats.spanner_edges, remspan_session_spanner_num_edges(session));

    remspan_graph_t* snapshot = nullptr;
    ASSERT_EQ(remspan_session_graph(session, &snapshot), REMSPAN_OK);
    remspan_spanner_t* scratch = nullptr;
    ASSERT_EQ(remspan_spanner_build(snapshot, "th2?k=1", &scratch), REMSPAN_OK);
    const size_t count = remspan_session_spanner_num_edges(session);
    ASSERT_EQ(count, remspan_spanner_num_edges(scratch));
    std::vector<uint32_t> a(2 * count, 0), b(2 * count, 1);
    EXPECT_EQ(remspan_session_spanner_edges(session, a.data(), count), count);
    EXPECT_EQ(remspan_spanner_edges(scratch, b.data(), count), count);
    EXPECT_EQ(a, b) << "round " << round;
    remspan_spanner_free(scratch);
    remspan_graph_free(snapshot);
  }
  remspan_session_free(session);
  remspan_graph_free(g);
}

TEST(CApi, SessionErrorPaths) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_from_edges(kBridgeNodes, kBridgeEdges, kBridgeEdgeCount, &g),
            REMSPAN_OK);
  remspan_session_t* session = nullptr;
  EXPECT_EQ(remspan_session_open(g, "mpr", &session), REMSPAN_ERR_UNSUPPORTED);
  EXPECT_NE(std::string(remspan_last_error()).find("mpr"), std::string::npos);
  EXPECT_EQ(remspan_session_open(g, "th2?bogus=1", &session), REMSPAN_ERR_PARSE);
  // "th9" parses as a custom spec but is not registered: the registry lookup
  // must surface as a parse error, not escape the ABI as a C++ exception.
  EXPECT_EQ(remspan_session_open(g, "th9", &session), REMSPAN_ERR_PARSE);
  EXPECT_NE(std::string(remspan_last_error()).find("th9"), std::string::npos);
  EXPECT_EQ(session, nullptr);

  ASSERT_EQ(remspan_session_open(g, "th3?k=2", &session), REMSPAN_OK);
  // Malformed events are rejected atomically: nothing is applied.
  const size_t before = remspan_session_spanner_num_edges(session);
  const remspan_event_t bad_batch[] = {
      {REMSPAN_EVENT_EDGE_DOWN, 0, 1, },
      {REMSPAN_EVENT_EDGE_UP, 2, 99, },  // out of range
  };
  EXPECT_EQ(remspan_session_apply(session, bad_batch, 2, nullptr),
            REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(remspan_session_spanner_num_edges(session), before);
  const remspan_event_t self_loop[] = {{REMSPAN_EVENT_EDGE_UP, 2, 2}};
  EXPECT_EQ(remspan_session_apply(session, self_loop, 1, nullptr),
            REMSPAN_ERR_INVALID_ARGUMENT);
  const remspan_event_t bad_kind[] = {{99, 0, 1}};
  EXPECT_EQ(remspan_session_apply(session, bad_kind, 1, nullptr),
            REMSPAN_ERR_INVALID_ARGUMENT);
  // An empty batch is fine.
  EXPECT_EQ(remspan_session_apply(session, nullptr, 0, nullptr), REMSPAN_OK);
  remspan_session_free(session);
  remspan_graph_free(g);
}

TEST(CApiService, LifecycleSubmitFlushAndQueries) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_generate("udg?n=120&side=4&seed=8", &g), REMSPAN_OK);

  remspan_service_config_t cfg;
  remspan_service_config_default(&cfg);
  EXPECT_GT(cfg.max_tenants, 0u);
  cfg.worker_threads = 0;  // deterministic mode
  remspan_service_t* service = nullptr;
  ASSERT_EQ(remspan_service_create(&cfg, &service), REMSPAN_OK);

  uint32_t tenant = 99;
  ASSERT_EQ(remspan_service_open_tenant(service, g, "th2?k=1", &tenant), REMSPAN_OK);
  EXPECT_EQ(remspan_service_epoch(service, tenant), 0u);

  // The epoch-0 snapshot is the from-scratch build.
  remspan_spanner_t* scratch = nullptr;
  ASSERT_EQ(remspan_spanner_build(g, "th2?k=1", &scratch), REMSPAN_OK);
  const size_t count = remspan_service_spanner_num_edges(service, tenant);
  ASSERT_EQ(count, remspan_spanner_num_edges(scratch));
  std::vector<uint32_t> a(2 * count, 0), b(2 * count, 1);
  EXPECT_EQ(remspan_service_spanner_edges(service, tenant, a.data(), count), count);
  EXPECT_EQ(remspan_spanner_edges(scratch, b.data(), count), count);
  EXPECT_EQ(a, b);
  EXPECT_EQ(remspan_service_contains(service, tenant, a[0], a[1]), 1);
  remspan_spanner_free(scratch);

  // Submit a batch; nothing is applied until flush, then the epoch advances.
  const uint32_t n = remspan_graph_num_nodes(g);
  const remspan_event_t batch[] = {{REMSPAN_EVENT_EDGE_UP, 0, n - 1, },
                                   {REMSPAN_EVENT_NODE_DOWN, 3, 0, }};
  uint32_t admission = 99;
  ASSERT_EQ(remspan_service_submit(service, tenant, batch, 2, &admission), REMSPAN_OK);
  EXPECT_EQ(admission, REMSPAN_ADMIT_ACCEPTED);
  EXPECT_EQ(remspan_service_epoch(service, tenant), 0u);
  ASSERT_EQ(remspan_service_flush(service, tenant), REMSPAN_OK);
  EXPECT_EQ(remspan_service_epoch(service, tenant), 1u);

  double ratio = 0.0;
  ASSERT_EQ(remspan_service_stretch(service, tenant, 64, 1, &ratio), REMSPAN_OK);
  EXPECT_GE(ratio, 1.0);

  remspan_tenant_stats_t ts;
  ASSERT_EQ(remspan_service_tenant_stats(service, tenant, &ts), REMSPAN_OK);
  EXPECT_EQ(ts.epoch, 1u);
  EXPECT_EQ(ts.events_submitted, 2u);
  EXPECT_EQ(ts.batches_applied, 1u);
  EXPECT_EQ(ts.queue_depth, 0u);

  remspan_service_totals_t totals;
  ASSERT_EQ(remspan_service_stats(service, &totals), REMSPAN_OK);
  EXPECT_EQ(totals.tenants_open, 1u);
  EXPECT_EQ(totals.events_submitted, 2u);

  ASSERT_EQ(remspan_service_close_tenant(service, tenant), REMSPAN_OK);
  ASSERT_EQ(remspan_service_stats(service, &totals), REMSPAN_OK);
  EXPECT_EQ(totals.tenants_open, 0u);
  EXPECT_EQ(totals.tenants_closed, 1u);
  remspan_service_free(service);
  remspan_graph_free(g);
}

TEST(CApiService, ErrorPathsAndAdmission) {
  remspan_graph_t* g = nullptr;
  ASSERT_EQ(remspan_graph_from_edges(kBridgeNodes, kBridgeEdges, kBridgeEdgeCount, &g),
            REMSPAN_OK);

  remspan_service_t* service = nullptr;
  remspan_service_config_t cfg;
  remspan_service_config_default(&cfg);
  cfg.max_tenants = 0;
  EXPECT_EQ(remspan_service_create(&cfg, &service), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(service, nullptr);

  remspan_service_config_default(&cfg);
  cfg.worker_threads = 0;
  cfg.tenant_queue_budget = 3;
  ASSERT_EQ(remspan_service_create(&cfg, &service), REMSPAN_OK);

  uint32_t tenant = 0;
  EXPECT_EQ(remspan_service_open_tenant(service, g, "mpr", &tenant), REMSPAN_ERR_UNSUPPORTED);
  EXPECT_EQ(remspan_service_open_tenant(service, g, "th2?k=banana", &tenant),
            REMSPAN_ERR_PARSE);
  EXPECT_EQ(remspan_service_open_tenant(nullptr, g, "th2", &tenant),
            REMSPAN_ERR_INVALID_ARGUMENT);

  ASSERT_EQ(remspan_service_open_tenant(service, g, "th2?k=1", &tenant), REMSPAN_OK);

  // Malformed events are rejected atomically, before admission control.
  const remspan_event_t bad[] = {{REMSPAN_EVENT_EDGE_UP, 2, 99, }};
  uint32_t admission = 77;
  EXPECT_EQ(remspan_service_submit(service, tenant, bad, 1, &admission),
            REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(admission, 77u);  // out-pointer untouched on failure

  // Over the 3-event tenant budget in one go: REMSPAN_OK, verdict says back off.
  const remspan_event_t big[] = {{REMSPAN_EVENT_EDGE_UP, 0, 3, },
                                 {REMSPAN_EVENT_EDGE_UP, 0, 4, },
                                 {REMSPAN_EVENT_EDGE_UP, 0, 5, },
                                 {REMSPAN_EVENT_EDGE_UP, 1, 3, }};
  ASSERT_EQ(remspan_service_submit(service, tenant, big, 4, &admission), REMSPAN_OK);
  EXPECT_EQ(admission, REMSPAN_ADMIT_RETRY_AFTER);
  remspan_tenant_stats_t ts;
  ASSERT_EQ(remspan_service_tenant_stats(service, tenant, &ts), REMSPAN_OK);
  EXPECT_EQ(ts.queue_depth, 0u);
  EXPECT_EQ(ts.rejected_retry_after, 1u);

  // Unknown tenant ids: statuses fail, accessors return neutral values.
  EXPECT_EQ(remspan_service_flush(service, 12345), REMSPAN_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(remspan_service_epoch(service, 12345), 0u);
  EXPECT_EQ(remspan_service_contains(service, 12345, 0, 1), 0);
  EXPECT_EQ(remspan_service_spanner_num_edges(service, 12345), 0u);
  EXPECT_EQ(remspan_service_tenant_stats(service, 12345, &ts),
            REMSPAN_ERR_INVALID_ARGUMENT);

  remspan_service_free(service);
  remspan_graph_free(g);
}

}  // namespace
