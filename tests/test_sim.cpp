// The synchronous network simulator and flooding primitive.
#include <gtest/gtest.h>

#include "geom/synthetic.hpp"
#include "sim/flooding.hpp"
#include "sim/network.hpp"

namespace remspan {
namespace {

/// Broadcasts one HELLO in round 1 and records received HELLOs.
class HelloProtocol : public Protocol {
 public:
  void on_round(NodeContext& ctx) override {
    if (!sent_) {
      Message msg;
      msg.type = 1;
      msg.origin = ctx.id();
      ctx.broadcast(std::move(msg));
      sent_ = true;
    }
  }
  void on_message(NodeContext&, const Message& msg) override {
    heard.push_back(msg.origin);
  }
  [[nodiscard]] bool done() const override { return sent_; }

  std::vector<NodeId> heard;

 private:
  bool sent_ = false;
};

TEST(Network, HelloReachesExactlyNeighbors) {
  const Graph g = cycle_graph(6);
  Network net(g, [](NodeId) { return std::make_unique<HelloProtocol>(); });
  const auto rounds = net.run(10);
  EXPECT_EQ(rounds, 1u);  // send and receive in the same LOCAL round
  for (NodeId v = 0; v < 6; ++v) {
    auto& p = dynamic_cast<HelloProtocol&>(net.node(v));
    std::sort(p.heard.begin(), p.heard.end());
    const std::vector<NodeId> expected{(v + 5) % 6, (v + 1) % 6};
    auto sorted = expected;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(p.heard, sorted) << "v=" << v;
  }
  EXPECT_EQ(net.stats().transmissions, 6u);
  EXPECT_EQ(net.stats().receptions, 12u);  // each of 6 messages heard twice
}

/// Floods one payload from node 0 with a given TTL.
class FloodOnce : public Protocol {
 public:
  explicit FloodOnce(std::uint32_t ttl) : ttl_(ttl) {}
  void on_round(NodeContext& ctx) override {
    if (ctx.id() == 0 && !sent_) {
      flood_.originate(ctx, 7, ttl_, {42});
      sent_ = true;
    }
    started_ = true;
  }
  void on_message(NodeContext& ctx, const Message& msg) override {
    if (msg.type != 7) return;
    ++deliveries_attempted;
    if (flood_.accept(ctx, msg)) received = true;
  }
  [[nodiscard]] bool done() const override { return started_; }

  bool received = false;
  int deliveries_attempted = 0;

 private:
  std::uint32_t ttl_;
  FloodManager flood_;
  bool sent_ = false;
  bool started_ = false;
};

TEST(Flooding, TtlLimitsReach) {
  const Graph g = path_graph(8);
  for (const std::uint32_t ttl : {1u, 2u, 4u, 7u}) {
    Network net(g, [ttl](NodeId) { return std::make_unique<FloodOnce>(ttl); });
    net.run(20);
    for (NodeId v = 1; v < 8; ++v) {
      const auto& p = dynamic_cast<const FloodOnce&>(net.node(v));
      EXPECT_EQ(p.received, v <= ttl) << "ttl=" << ttl << " v=" << v;
    }
  }
}

TEST(Flooding, TtlFloodTakesTtlRounds) {
  const Graph g = path_graph(8);
  Network net(g, [](NodeId) { return std::make_unique<FloodOnce>(5); });
  const auto rounds = net.run(30);
  EXPECT_EQ(rounds, 5u);
}

TEST(Flooding, DuplicatesSuppressed) {
  // In a cycle the flood arrives from both sides: the far node must accept
  // the payload exactly once (one side wins, the other is a duplicate).
  const Graph g = cycle_graph(6);
  Network net(g, [](NodeId) { return std::make_unique<FloodOnce>(5); });
  net.run(20);
  const auto& far = dynamic_cast<const FloodOnce&>(net.node(3));
  EXPECT_TRUE(far.received);
  EXPECT_GE(far.deliveries_attempted, 2);  // heard from both directions
}

TEST(Flooding, EveryNodeForwardsAtMostOncePerFlood) {
  // Transmission count of a full flood (large ttl) is at most n.
  const Graph g = grid_graph(4, 4);
  Network net(g, [](NodeId) { return std::make_unique<FloodOnce>(10); });
  net.run(30);
  // 16 nodes: 1 origination + <= 15 forwards.
  EXPECT_LE(net.stats().transmissions, 16u);
  EXPECT_GE(net.stats().transmissions, 8u);
}

TEST(Flooding, TtlZeroIsNeverForwarded) {
  // A ttl = 0 origination still goes on the air once (it is a broadcast)
  // and reaches the direct neighbors, but no receiver ever forwards it.
  const Graph g = path_graph(4);
  Network net(g, [](NodeId) { return std::make_unique<FloodOnce>(0); });
  net.run(10);
  EXPECT_EQ(net.stats().transmissions, 1u);  // the origination only
  EXPECT_TRUE(dynamic_cast<const FloodOnce&>(net.node(1)).received);
  EXPECT_FALSE(dynamic_cast<const FloodOnce&>(net.node(2)).received);
  EXPECT_FALSE(dynamic_cast<const FloodOnce&>(net.node(3)).received);
}

TEST(Flooding, ResetSeenReacceptsDuplicateExactlyOnce) {
  // After reset_seen() a previously seen (origin, seq) key is accepted
  // exactly once more — the suppression state restarts, the dedup logic
  // does not.
  const Graph g = path_graph(2);
  Network net(g, [](NodeId) { return std::make_unique<FloodOnce>(1); });
  NodeContext ctx(net, 1);
  FloodManager fm;
  Message msg;
  msg.origin = 0;
  msg.seq = 7;
  msg.type = 9;
  msg.ttl = 1;
  EXPECT_TRUE(fm.accept(ctx, msg));
  EXPECT_FALSE(fm.accept(ctx, msg));
  EXPECT_FALSE(fm.accept(ctx, msg));
  fm.reset_seen();
  EXPECT_TRUE(fm.accept(ctx, msg));   // re-accepted exactly once...
  EXPECT_FALSE(fm.accept(ctx, msg));  // ...then suppressed again
}

TEST(Flooding, SeenStateStaysBoundedAcrossEpochs) {
  // Long replays must hold O(live keys), not O(floods ever seen): each
  // epoch's keys vanish at reset_seen() while the seq counter keeps
  // growing (so old keys can never collide with future floods).
  const Graph g = path_graph(2);
  Network net(g, [](NodeId) { return std::make_unique<FloodOnce>(1); });
  NodeContext ctx(net, 0);
  FloodManager fm;
  std::uint32_t expected_seq = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 3; ++i) fm.originate(ctx, 9, 1, {});
    expected_seq += 3;
    // Plus one remote flood accepted this epoch.
    Message msg;
    msg.origin = 1;
    msg.seq = expected_seq;
    msg.type = 9;
    msg.ttl = 1;
    EXPECT_TRUE(fm.accept(ctx, msg));
    EXPECT_EQ(fm.seen_size(), 4u) << "epoch " << epoch;  // 3 own + 1 remote
    fm.reset_seen();
    EXPECT_EQ(fm.seen_size(), 0u) << "epoch " << epoch;
    EXPECT_EQ(fm.next_seq(), expected_seq);  // the counter survives the reset
  }
}

TEST(Network, TopologyChangeDropsInflight) {
  const Graph g1 = path_graph(4);
  const Graph g2 = cycle_graph(4);
  Network net(g1, [](NodeId) { return std::make_unique<FloodOnce>(3); });
  net.run(1);  // origination queued/delivered partially
  net.change_topology(g2);
  // Remaining forwards were dropped; run to quiescence.
  net.run(10);
  SUCCEED();  // no crash, accounting consistent
  EXPECT_GE(net.stats().rounds, 1u);
}

}  // namespace
}  // namespace remspan
