// The serve subsystem's correctness battery. Three suites, all named
// Serve* so the CI TSan job's regex picks them up:
//
//   ServeCoalesce    — the coalescing algebra: last-write-wins reduction,
//                      up/down annihilation, duplicate suppression, and
//                      bit-exact replay of queue-extracted batches vs the
//                      uncoalesced stream (edge and node interleavings).
//   ServeService     — epoch monotonicity, journal-replay bit-exactness,
//                      old-epoch snapshot keep-alive across N batches,
//                      deterministic admission control, graceful eviction.
//   ServeConcurrency — >= 4 reader threads hammering queries against live
//                      tenants while workers drain churn; every reader
//                      observes monotone epochs and internally consistent
//                      snapshots, and the final state is bit-exact vs a
//                      single-threaded IncrementalSession replay (the TSan
//                      coverage the acceptance criteria require).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "dynamic/churn_trace.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "serve/coalesce.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "support/corpus.hpp"
#include "util/rng.hpp"

namespace remspan::serve {
namespace {

using testsupport::churn_family;
using testsupport::equivalence_family;

/// A random event stream mixing edge toggles (within the node universe,
/// not restricted to initial edges — inserts exercised too) and node
/// liveness toggles, with deliberate repetition so coalescing has work.
std::vector<GraphEvent> random_stream(const Graph& g, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  const NodeId n = g.num_nodes();
  std::vector<GraphEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform_real();
    if (roll < 0.2) {
      const NodeId u = static_cast<NodeId>(rng.uniform(n));
      events.push_back(rng.bernoulli(0.5) ? GraphEvent::node_down(u) : GraphEvent::node_up(u));
    } else {
      NodeId u = static_cast<NodeId>(rng.uniform(n));
      // Small id range => frequent repeats of the same edge cell.
      NodeId v = static_cast<NodeId>(rng.uniform(std::min<std::uint64_t>(n, 12)));
      if (u == v) v = (v + 1) % n;
      events.push_back(rng.bernoulli(0.5) ? GraphEvent::edge_up(u, v)
                                          : GraphEvent::edge_down(u, v));
    }
  }
  return events;
}

/// Canonical edge-list copy (comparable across distinct Graph objects).
std::vector<Edge> edge_list_of(const Graph& g) { return {g.edges().begin(), g.edges().end()}; }

/// Canonical live-topology fingerprint for final-state comparisons.
std::vector<Edge> snapshot_edges(DynamicGraph& dg) { return edge_list_of(*dg.snapshot()); }

// --- ServeCoalesce ---------------------------------------------------------

TEST(ServeCoalesce, LastWriteWinsReductionIsExact) {
  for (int family = 0; family < testsupport::kNumEquivalenceFamilies; ++family) {
    for (std::uint64_t seed : {1ull, 7ull}) {
      const Graph g = equivalence_family(family, seed);
      const std::vector<GraphEvent> stream = random_stream(g, 300, seed * 31 + family);
      const std::vector<GraphEvent> reduced = coalesce_events(stream);
      ASSERT_LE(reduced.size(), stream.size());

      DynamicGraph full(g);
      full.apply_all(stream);
      DynamicGraph coalesced(g);
      coalesced.apply_all(reduced);
      EXPECT_EQ(snapshot_edges(full), snapshot_edges(coalesced))
          << "family " << family << " seed " << seed;
    }
  }
}

TEST(ServeCoalesce, UpDownAnnihilation) {
  const Graph g = equivalence_family(0, 3);
  CoalescingQueue q(std::make_shared<const Graph>(g));

  // An absent edge: up then down cancels to nothing.
  NodeId a = 0;
  NodeId b = 1;
  while (g.has_edge(a, b)) ++b;  // find an absent pair
  const std::vector<GraphEvent> updown = {GraphEvent::edge_up(a, b), GraphEvent::edge_down(a, b)};
  const auto d1 = q.submit(updown);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(d1.coalesced, 2u);

  // A present edge: down then up cancels too.
  const Edge present = g.edge(0);
  const std::vector<GraphEvent> downup = {GraphEvent::edge_down(present.u, present.v),
                                          GraphEvent::edge_up(present.u, present.v)};
  q.submit(downup);
  EXPECT_EQ(q.pending(), 0u);

  // Node liveness annihilates the same way (all nodes start up).
  const std::vector<GraphEvent> node_cycle = {GraphEvent::node_down(2), GraphEvent::node_up(2)};
  q.submit(node_cycle);
  EXPECT_EQ(q.pending(), 0u);

  // A pure no-op (re-upping a present edge) never enters the queue.
  const std::vector<GraphEvent> noop = {GraphEvent::edge_up(present.u, present.v)};
  const auto d2 = q.submit(noop);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(d2.coalesced, 1u);
}

TEST(ServeCoalesce, DuplicateSuppression) {
  const Graph g = equivalence_family(0, 3);
  CoalescingQueue q(std::make_shared<const Graph>(g));
  const Edge present = g.edge(0);
  const std::vector<GraphEvent> dupes = {GraphEvent::edge_down(present.u, present.v),
                                         GraphEvent::edge_down(present.u, present.v),
                                         GraphEvent::edge_down(present.u, present.v)};
  const auto delta = q.submit(dupes);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(delta.coalesced, 2u);
  EXPECT_EQ(delta.net_growth, 1);

  const auto batch = q.take_batch(100);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], GraphEvent::edge_down(present.u, present.v));
  EXPECT_TRUE(q.empty());

  // After committing the down, another down is a no-op; an up is pending.
  q.submit(std::vector<GraphEvent>{GraphEvent::edge_down(present.u, present.v)});
  EXPECT_EQ(q.pending(), 0u);
  q.submit(std::vector<GraphEvent>{GraphEvent::edge_up(present.u, present.v)});
  EXPECT_EQ(q.pending(), 1u);
}

TEST(ServeCoalesce, QueueReplayBitExactVsUncoalescedStream) {
  for (int family = 0; family < 3; ++family) {
    for (std::uint64_t seed : {5ull, 11ull}) {
      const Graph g = equivalence_family(family, seed);
      const auto initial = std::make_shared<const Graph>(g);

      DynamicGraph via_queue(g);
      DynamicGraph uncoalesced(g);
      CoalescingQueue q(initial);

      Rng rng(seed * 97 + family);
      std::size_t total_extracted = 0;
      for (int round = 0; round < 20; ++round) {
        const auto stream = random_stream(g, 40, seed * 1000 + round);
        q.submit(stream);
        uncoalesced.apply_all(stream);
        // Drain with varying batch ceilings, including partial drains that
        // leave work pending across rounds.
        const std::size_t take = 1 + rng.uniform(30);
        const auto batch = q.take_batch(take);
        total_extracted += batch.size();
        via_queue.apply_all(batch);
      }
      // Final full drain, then the two topologies must coincide exactly.
      while (!q.empty()) {
        via_queue.apply_all(q.take_batch(16));
      }
      EXPECT_EQ(snapshot_edges(via_queue), snapshot_edges(uncoalesced))
          << "family " << family << " seed " << seed;
      EXPECT_LT(total_extracted, 20u * 40u) << "coalescing never absorbed anything";
    }
  }
}

// --- ServeService ----------------------------------------------------------

ServiceConfig sync_config() {
  ServiceConfig cfg;
  cfg.worker_threads = 0;
  cfg.record_journal = true;
  return cfg;
}

TEST(ServeService, EpochsAreMonotoneAndJournalReplayIsBitExact) {
  const Graph g = churn_family(0, 2);
  SpannerService service(sync_config());
  const TenantId id = service.open_tenant(g, "th2?k=2");

  const ChurnTrace trace = random_edge_churn_trace(g, 12, 25, 0.15, 42);
  std::uint64_t last_epoch = service.snapshot(id)->epoch();
  EXPECT_EQ(last_epoch, 0u);
  for (const auto& batch : trace.batches) {
    ASSERT_EQ(service.submit(id, batch), Admission::kAccepted);
    service.flush(id);
    const auto snap = service.snapshot(id);
    EXPECT_GE(snap->epoch(), last_epoch);
    last_epoch = snap->epoch();
  }

  // Replay the journal through a fresh single-threaded session: the final
  // spanner must be bit-exact and the final topology identical.
  const auto journal = service.journal(id);
  EXPECT_EQ(journal.size(), last_epoch);
  auto replay = api::open_incremental_session(g, api::parse_spanner_spec("th2?k=2"));
  for (const auto& batch : journal) replay->apply_batch(batch);

  const auto snap = service.snapshot(id);
  EXPECT_EQ(edge_list_of(snap->graph()), edge_list_of(replay->graph()));
  EXPECT_EQ(snap->spanner().bits(), replay->spanner().bits());
  EXPECT_EQ(snap->num_spanner_edges(), replay->spanner().size());

  const TenantStats stats = service.tenant_stats(id);
  EXPECT_EQ(stats.epoch, last_epoch);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.events_coalesced, 0u);
  EXPECT_EQ(stats.events_accepted, stats.events_coalesced + stats.events_applied);
}

TEST(ServeService, OldEpochSnapshotsSurviveLaterBatchesAndEviction) {
  const Graph g = churn_family(1, 3);
  SpannerService service(sync_config());
  const TenantId id = service.open_tenant(g, "th1?eps=0.5");

  const auto epoch0 = service.snapshot(id);
  const std::vector<Edge> edges0 = edge_list_of(epoch0->graph());
  const std::size_t spanner0 = epoch0->num_spanner_edges();

  // Advance many epochs; the old snapshot's CSR must stay alive and
  // queryable (the DynamicGraph re-materializes a fresh Graph per version,
  // so this pins the shared-ownership chain end to end).
  const ChurnTrace trace = random_edge_churn_trace(g, 10, 30, 0.1, 7);
  for (const auto& batch : trace.batches) {
    ASSERT_EQ(service.submit(id, batch), Admission::kAccepted);
    service.flush(id);
  }
  ASSERT_GT(service.snapshot(id)->epoch(), 0u);

  EXPECT_EQ(epoch0->epoch(), 0u);
  EXPECT_EQ(edge_list_of(epoch0->graph()), edges0);
  EXPECT_EQ(epoch0->num_spanner_edges(), spanner0);
  EXPECT_GE(epoch0->sampled_stretch(10, 1), 1.0);
  const SpannerStats stats0 = epoch0->stats();
  EXPECT_EQ(stats0.spanner_edges, spanner0);

  // Eviction frees the tenant but not snapshots readers still hold.
  const auto last = service.snapshot(id);
  service.close_tenant(id);
  EXPECT_FALSE(service.has_tenant(id));
  EXPECT_THROW((void)service.snapshot(id), ServiceError);
  EXPECT_EQ(edge_list_of(epoch0->graph()), edges0);
  EXPECT_GT(last->graph().num_nodes(), 0u);
}

TEST(ServeService, AdmissionControlIsDeterministic) {
  const Graph g = churn_family(2, 5);
  ServiceConfig cfg = sync_config();
  cfg.tenant_queue_budget = 50;
  cfg.global_queue_budget = 80;

  // Two identical runs must agree on every verdict and every counter.
  std::vector<Admission> verdicts[2];
  TenantStats final_stats[2];
  for (int run = 0; run < 2; ++run) {
    SpannerService service(cfg);
    const TenantId a = service.open_tenant(g, "th2?k=1");
    const TenantId b = service.open_tenant(g, "th2?k=1");
    Rng rng(99);
    for (int i = 0; i < 30; ++i) {
      const auto stream = random_stream(g, 20, 1000 + i);
      verdicts[run].push_back(service.submit(a, stream));
      verdicts[run].push_back(service.submit(b, stream));
      if (i % 7 == 6) service.flush(a);  // b's queue keeps growing
    }
    final_stats[run] = service.tenant_stats(b);
    service.drain();
  }
  EXPECT_EQ(verdicts[0], verdicts[1]);
  EXPECT_EQ(final_stats[0].rejected_retry_after, final_stats[1].rejected_retry_after);
  EXPECT_EQ(final_stats[0].rejected_overloaded, final_stats[1].rejected_overloaded);
  EXPECT_EQ(final_stats[0].events_accepted, final_stats[1].events_accepted);

  // The workload was sized to actually exercise both rejection paths.
  const std::uint64_t retries = final_stats[0].rejected_retry_after;
  const std::uint64_t overloads = final_stats[0].rejected_overloaded;
  EXPECT_GT(retries + overloads, 0u);
  const bool any_rejected =
      std::count(verdicts[0].begin(), verdicts[0].end(), Admission::kAccepted) <
      static_cast<long>(verdicts[0].size());
  EXPECT_TRUE(any_rejected);
}

TEST(ServeService, RejectedBatchesChangeNothing) {
  const Graph g = equivalence_family(0, 1);
  ServiceConfig cfg = sync_config();
  cfg.tenant_queue_budget = 5;
  SpannerService service(cfg);
  const TenantId id = service.open_tenant(g, "th2?k=2");

  // Over budget in one go: rejected, queue untouched.
  const auto big = random_stream(g, 200, 8);
  EXPECT_EQ(service.submit(id, big), Admission::kRetryAfter);
  EXPECT_EQ(service.tenant_stats(id).queue_depth, 0u);
  EXPECT_EQ(service.tenant_stats(id).rejected_retry_after, 1u);
  service.flush(id);
  EXPECT_EQ(service.snapshot(id)->epoch(), 0u);  // nothing was accepted
}

TEST(ServeService, TenantCapacityAndUnknownIds) {
  const Graph g = equivalence_family(1, 2);
  ServiceConfig cfg = sync_config();
  cfg.max_tenants = 2;
  SpannerService service(cfg);
  const TenantId a = service.open_tenant(g, "th2?k=1");
  (void)service.open_tenant(g, "th2?k=2");
  EXPECT_THROW((void)service.open_tenant(g, "th2?k=1"), ServiceError);
  EXPECT_THROW((void)service.submit(kInvalidTenant, {}), ServiceError);
  EXPECT_THROW(service.close_tenant(kInvalidTenant), ServiceError);
  EXPECT_THROW((void)service.open_tenant(g, "mpr"), api::SpecError);  // no incremental support

  service.close_tenant(a);
  const TenantId c = service.open_tenant(g, "th2?k=1");  // slot freed
  EXPECT_NE(c, a);
  EXPECT_EQ(service.stats().tenants_open, 2u);
  EXPECT_EQ(service.stats().tenants_closed, 1u);
}

// --- ServeConcurrency ------------------------------------------------------

TEST(ServeConcurrency, ReadersObserveMonotoneEpochsDuringRebuilds) {
  ServiceConfig cfg;
  cfg.worker_threads = 3;
  cfg.record_journal = true;
  cfg.max_batch_events = 64;
  SpannerService service(cfg);

  const int kTenants = 3;
  std::vector<Graph> graphs;
  std::vector<TenantId> ids;
  std::vector<std::string> specs = {"th2?k=2", "th1?eps=0.5", "th2?k=1"};
  for (int t = 0; t < kTenants; ++t) {
    graphs.push_back(churn_family(t, 17 + t));
    ids.push_back(service.open_tenant(graphs.back(), specs[t]));
  }

  // >= 4 readers hammer queries against all tenants while the writer below
  // pushes churn through the worker pool.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::uint64_t> last_epoch(kTenants, 0);
      Rng rng(1000 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const int t = static_cast<int>(rng.uniform(kTenants));
        const auto snap = service.snapshot(ids[t]);
        // Monotone epochs per reader per tenant.
        ASSERT_GE(snap->epoch(), last_epoch[t]);
        last_epoch[t] = snap->epoch();
        // Internally consistent: the spanner bitset is sized to this
        // epoch's graph, and every query answers without synchronization.
        const NodeId n = snap->graph().num_nodes();
        const NodeId u = static_cast<NodeId>(rng.uniform(n));
        const NodeId v = static_cast<NodeId>(rng.uniform(n));
        (void)snap->contains(u, v);
        ASSERT_EQ(snap->spanner().bits().size(), snap->graph().num_edges());
        ASSERT_LE(snap->num_spanner_edges(), snap->graph().num_edges());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: interleaved multi-tenant churn through the admission path.
  std::vector<ChurnTrace> traces;
  for (int t = 0; t < kTenants; ++t) {
    traces.push_back(random_edge_churn_trace(graphs[t], 10, 40, 0.1, 500 + t));
  }
  for (std::size_t b = 0; b < 10; ++b) {
    for (int t = 0; t < kTenants; ++t) {
      // Retry until admitted: budgets are generous, so this terminates as
      // soon as the workers drain the backlog.
      while (service.submit(ids[t], traces[t].batches[b]) != Admission::kAccepted) {
        std::this_thread::yield();
      }
    }
  }
  service.drain();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_GT(queries.load(), 0u);

  // Final state bit-exact vs single-threaded replay of each journal.
  for (int t = 0; t < kTenants; ++t) {
    const auto journal = service.journal(ids[t]);
    auto replay = api::open_incremental_session(graphs[t], api::parse_spanner_spec(specs[t]));
    for (const auto& batch : journal) replay->apply_batch(batch);
    const auto snap = service.snapshot(ids[t]);
    EXPECT_EQ(snap->epoch(), journal.size());
    EXPECT_EQ(edge_list_of(snap->graph()), edge_list_of(replay->graph())) << "tenant " << t;
    EXPECT_EQ(snap->spanner().bits(), replay->spanner().bits()) << "tenant " << t;
  }
}

TEST(ServeConcurrency, ConcurrentSubmittersAndCloseAreSafe) {
  ServiceConfig cfg;
  cfg.worker_threads = 2;
  SpannerService service(cfg);
  const Graph g = churn_family(0, 23);
  const TenantId keep = service.open_tenant(g, "th2?k=1");
  const TenantId evict = service.open_tenant(g, "th2?k=1");

  std::vector<std::thread> writers;
  std::atomic<std::uint64_t> closed_errors{0};
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(3000 + w);
      for (int i = 0; i < 40; ++i) {
        const auto stream = random_stream(g, 10, 4000 + w * 100 + i);
        (void)service.submit(keep, stream);
        try {
          (void)service.submit(evict, stream);
        } catch (const ServiceError&) {
          closed_errors.fetch_add(1, std::memory_order_relaxed);  // evicted mid-run
        }
      }
    });
  }
  service.close_tenant(evict);
  for (auto& w : writers) w.join();
  service.drain();
  EXPECT_TRUE(service.has_tenant(keep));
  EXPECT_FALSE(service.has_tenant(evict));
  EXPECT_GT(service.snapshot(keep)->graph().num_nodes(), 0u);
}

}  // namespace
}  // namespace remspan::serve
