// The observability subsystem (src/obs): instrument semantics, snapshot
// algebra (diff/merge), serialization, the trace ring buffer, the sink hub,
// and — the part TSan is pointed at — one registry hammered from every
// thread-pool worker with exact conservation: counters sum exactly,
// histogram totals (count, sum, per-bucket) are conserved.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/json_report.hpp"
#include "util/prelude.hpp"
#include "util/thread_pool.hpp"

namespace remspan {
namespace {

// --- instruments ---------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  EXPECT_EQ(&c, &reg.counter("c"));  // find-or-create: stable address
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Gauge& g = reg.gauge("g");
  g.set(-7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(ObsMetrics, HistogramBucketGeometry) {
  // bucket_index is bit_width: bucket 0 holds exactly 0, bucket i >= 1
  // holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), 64u);
  EXPECT_EQ(obs::Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_floor(3), 4u);

  obs::Registry reg;
  obs::Histogram& h = reg.histogram("h");
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(1000)), 1u);
}

TEST(ObsMetrics, RegistryResetZeroesButKeepsAddresses) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h");
  c.add(5);
  h.record(9);
  reg.reset();
  EXPECT_EQ(&c, &reg.counter("c"));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// --- snapshot algebra ----------------------------------------------------

TEST(ObsMetrics, SnapshotDiffIsComponentwise) {
  obs::Registry reg;
  reg.counter("a").add(10);
  reg.gauge("q").set(4);
  reg.histogram("h").record(3);
  const obs::Snapshot before = reg.snapshot();
  reg.counter("a").add(5);
  reg.counter("b").add(1);  // key absent from `before` counts as zero
  reg.gauge("q").set(-2);
  reg.histogram("h").record(3);
  reg.histogram("h").record(100);
  const obs::Snapshot d = reg.snapshot().diff(before);
  EXPECT_EQ(d.counters.at("a"), 5u);
  EXPECT_EQ(d.counters.at("b"), 1u);
  EXPECT_EQ(d.gauges.at("q"), -6);
  EXPECT_EQ(d.histograms.at("h").count, 2u);
  EXPECT_EQ(d.histograms.at("h").sum, 103u);
  EXPECT_EQ(d.histograms.at("h").buckets[obs::Histogram::bucket_index(3)], 1u);
  EXPECT_EQ(d.histograms.at("h").buckets[obs::Histogram::bucket_index(100)], 1u);
}

TEST(ObsMetrics, DiffRejectsNonMonotoneCounters) {
  obs::Snapshot earlier;
  earlier.counters["a"] = 10;
  obs::Snapshot later;
  later.counters["a"] = 3;  // went backwards: not the same run
  EXPECT_THROW((void)later.diff(earlier), CheckError);
}

TEST(ObsMetrics, MergeSumsUnionOfKeys) {
  obs::Registry r1;
  r1.counter("a").add(2);
  r1.histogram("h").record(1);
  obs::Registry r2;
  r2.counter("a").add(3);
  r2.counter("b").add(7);
  r2.histogram("h").record(1);
  obs::Snapshot s = r1.snapshot();
  s.merge(r2.snapshot());
  EXPECT_EQ(s.counters.at("a"), 5u);
  EXPECT_EQ(s.counters.at("b"), 7u);
  EXPECT_EQ(s.histograms.at("h").count, 2u);
  EXPECT_EQ(s.histograms.at("h").sum, 2u);
  EXPECT_EQ(s.histograms.at("h").buckets[1], 2u);
}

TEST(ObsMetrics, ToJsonIsDeterministicAndLabelsBucketsByFloor) {
  obs::Registry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.histogram("h").record(5);  // bucket 3, floor 4
  const std::string json = reg.snapshot().to_json();
  // Sorted keys: byte-identical JSON for bit-identical runs.
  EXPECT_LT(json.find("\"a.first\""), json.find("\"z.last\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"4\": 1"), std::string::npos) << json;
  EXPECT_EQ(json, reg.snapshot().to_json());
}

TEST(ObsMetrics, AppendToFlattensIntoBenchReport) {
  obs::Registry reg;
  reg.counter("c").add(9);
  reg.gauge("g").set(-1);
  reg.histogram("h").record(4);
  reg.histogram("h").record(4);
  BenchReport report("obs");
  reg.snapshot().append_to(report, "obs.");
  const auto& values = report.values();
  auto find = [&](const std::string& key) -> const JsonScalar* {
    for (const auto& [k, v] : values) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("obs.c"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*find("obs.c")), 9);
  ASSERT_NE(find("obs.g"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*find("obs.g")), -1);
  ASSERT_NE(find("obs.h_count"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*find("obs.h_count")), 2);
  ASSERT_NE(find("obs.h_sum"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*find("obs.h_sum")), 8);
}

// --- trace ring buffer ---------------------------------------------------

obs::TraceEvent instant_event(std::string name) {
  obs::TraceEvent e;
  e.name = std::move(name);
  e.cat = "test";
  e.ph = obs::kPhaseInstant;
  return e;
}

TEST(ObsTrace, RingKeepsPrefixDropsNewestAndCounts) {
  obs::TraceBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.emit(instant_event("e" + std::to_string(i)));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 2u);
  const std::vector<obs::TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 3u);
  // Drop-newest: the deterministic prefix e0..e2 survives, not the tail.
  EXPECT_EQ(events[0].name, "e0");
  EXPECT_EQ(events[2].name, "e2");
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(ObsTrace, ToJsonIsChromeTraceShapedAndEscaped) {
  obs::TraceBuffer buf;
  obs::TraceEvent e = instant_event("weird \"name\"\n");
  e.args = {{"k", JsonScalar(std::int64_t{7})}, {"s", JsonScalar(std::string("v\\"))}};
  buf.emit(std::move(e));
  const std::string json = buf.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("weird \\\"name\\\"\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\"k\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"remspan_dropped_events\": 0"), std::string::npos) << json;
}

// --- sink hub and spans --------------------------------------------------

TEST(ObsSinks, DisabledByDefaultAndSpansStillTime) {
  ASSERT_EQ(obs::metrics(), nullptr);
  ASSERT_EQ(obs::trace(), nullptr);
  obs::PhaseSpan span("obs.test.disabled", "test");
  EXPECT_GE(span.seconds(), 0.0);  // plain stopwatch without sinks
}

TEST(ObsSinks, ScopedInstallExposesAndRestores) {
  obs::Registry reg;
  obs::TraceBuffer buf;
  {
    const obs::ScopedSinks sinks(&reg, &buf);
    ASSERT_EQ(obs::metrics(), &reg);
    ASSERT_EQ(obs::trace(), &buf);
    obs::metrics()->counter("seen").add(1);
  }
  EXPECT_EQ(obs::metrics(), nullptr);
  EXPECT_EQ(obs::trace(), nullptr);
  EXPECT_EQ(reg.snapshot().counters.at("seen"), 1u);
}

TEST(ObsSinks, PhaseSpansEmitBalancedBeginEnd) {
  obs::Registry reg;
  obs::TraceBuffer buf;
  {
    const obs::ScopedSinks sinks(&reg, &buf);
    obs::PhaseSpan outer("obs.test.outer", "test");
    { obs::PhaseSpan inner("obs.test.inner", "test"); }
    obs::instant("obs.test.marker", "test");
  }
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t instants = 0;
  for (const obs::TraceEvent& e : buf.events()) {
    if (e.ph == obs::kPhaseBegin) ++begins;
    if (e.ph == obs::kPhaseEnd) ++ends;
    if (e.ph == obs::kPhaseInstant) ++instants;
    EXPECT_EQ(e.pid, obs::kEnginePid);
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(instants, 1u);
}

// --- concurrency: exact conservation under the thread pool (TSan) --------

TEST(ObsThreads, CountersSumExactlyAcrossWorkers) {
  obs::Registry reg;
  const obs::ScopedSinks sinks(&reg, nullptr);
  constexpr std::size_t kItems = 200000;
  ThreadPool::global().parallel_for_workers(0, kItems, [&](std::size_t i, std::size_t) {
    // Registration (mutex) and cell update (relaxed atomic) both hammered
    // from every worker on the SAME names — the contended path TSan vets.
    obs::metrics()->counter("hammer.count").add(1);
    obs::metrics()->counter("hammer.weighted").add(i % 7);
  });
  const obs::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("hammer.count"), kItems);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected += i % 7;
  EXPECT_EQ(s.counters.at("hammer.weighted"), expected);
}

TEST(ObsThreads, HistogramTotalsConserved) {
  obs::Registry reg;
  const obs::ScopedSinks sinks(&reg, nullptr);
  constexpr std::size_t kItems = 100000;
  ThreadPool::global().parallel_for_workers(0, kItems, [&](std::size_t i, std::size_t) {
    obs::metrics()->histogram("hammer.h").record(i % 1000);
  });
  const obs::HistogramSnapshot h = reg.snapshot().histograms.at("hammer.h");
  EXPECT_EQ(h.count, kItems);
  std::uint64_t expected_sum = 0;
  std::array<std::uint64_t, obs::Histogram::kBuckets> expected_buckets{};
  for (std::size_t i = 0; i < kItems; ++i) {
    expected_sum += i % 1000;
    ++expected_buckets[obs::Histogram::bucket_index(i % 1000)];
  }
  EXPECT_EQ(h.sum, expected_sum);
  EXPECT_EQ(h.buckets, expected_buckets);
  // Cross-check conservation: bucket counts sum to the total count.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

}  // namespace
}  // namespace remspan
