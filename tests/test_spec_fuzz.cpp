// Fuzz-style property test of the spec grammar (api/spec.hpp): for ANY
// input string, parsing has exactly two allowed outcomes —
//
//   1. it succeeds, and then the canonical form round-trips losslessly:
//      parse(spec.to_string()) == spec, and to_string is idempotent;
//   2. it throws SpecError whose message names the offending token (the
//      first single-quoted fragment occurs in the input), or is the
//      structural "empty spec" complaint for inputs with no kind.
//
// No third outcome: no other exception type, no crash, no silently
// misparsed spec. The generator is seeded (determinism conventions,
// docs/TESTING.md): every failure reproduces from the printed iteration.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

using api::SpecError;

/// First 'single-quoted' fragment of a SpecError message; nullopt when the
/// message quotes nothing. The token itself may be empty ('' names an
/// empty parameter item, e.g. a trailing '&') — distinct from nullopt.
std::optional<std::string> first_quoted_token(const std::string& message) {
  const auto open = message.find('\'');
  if (open == std::string::npos) return std::nullopt;
  const auto close = message.find('\'', open + 1);
  if (close == std::string::npos) return std::nullopt;
  return message.substr(open + 1, close - open - 1);
}

/// The two-outcome property for one input under one parser.
template <typename Spec, typename ParseFn>
void expect_parse_or_named_error(const std::string& input, const ParseFn& parse,
                                 const std::string& label) {
  Spec spec;
  try {
    spec = parse(input);
  } catch (const SpecError& e) {
    const std::string message = e.what();
    ASSERT_FALSE(message.empty()) << label << " input='" << input << "'";
    const std::optional<std::string> token = first_quoted_token(message);
    // Every rejection names a token from the input, except the structural
    // empty-kind complaint. (An empty quoted token '' is a degenerate
    // name for an empty parameter item and matches any input.)
    if (!token) {
      EXPECT_EQ(message, "empty spec") << label << " input='" << input << "'";
    } else {
      EXPECT_NE(input.find(*token), std::string::npos)
          << label << " input='" << input << "': message \"" << message
          << "\" names a token absent from the input";
    }
    return;
  }
  // Parse succeeded: the canonical form must round-trip bit-exact. A
  // SpecError here (canonical form rejected) is a property violation, so
  // let it escape as a test failure.
  const std::string canonical = spec.to_string();
  const Spec again = parse(canonical);
  EXPECT_TRUE(again == spec) << label << " input='" << input << "' canonical='" << canonical
                             << "' re-parse changed the spec";
  EXPECT_EQ(again.to_string(), canonical)
      << label << " input='" << input << "': to_string not idempotent";
}

/// Grammar-aware generator: mostly well-shaped kind?key=value&... strings
/// over a pool of valid and invalid fragments, plus occasional structural
/// mutations (missing '=', stray separators, empty items).
class SpecStringGenerator {
 public:
  explicit SpecStringGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string next() {
    static const std::vector<std::string> kinds = {
        "th1", "th2",  "th3",    "mpr",  "greedy", "baswana", "full",   "udg",
        "gnp", "ba",   "ws",     "grid", "file:g", "file:",   "custom", "my-algo2",
        "",    "TH1",  "th1 x",  "a!b",  "th2?",   "0",       "th4"};
    static const std::vector<std::string> keys = {
        "eps", "k", "t", "seed", "tree", "n", "side", "deg",
        "m",   "ring", "rewire", "bogus", "K", "", "k k"};
    static const std::vector<std::string> values = {
        "0.5", "2",  "1",   "0",    "-1",  "abc", "",    "1e3",
        "1.5", "mis", "greedy", "7",  "0.0", "999999999999999999999", "3.14", "=",
        "nan"};

    std::string out = pick(kinds);
    const std::size_t params = rng_.uniform(4);
    for (std::size_t i = 0; i < params; ++i) {
      out += i == 0 ? "?" : "&";
      const double mutation = rng_.uniform_real();
      if (mutation < 0.08) continue;  // empty item: "th2?&k=1" shapes
      out += pick(keys);
      if (mutation < 0.16) continue;  // missing '=value'
      out += "=";
      out += pick(values);
    }
    // Occasionally append raw separator noise.
    const double tail = rng_.uniform_real();
    if (tail < 0.05) out += "?";
    if (tail > 0.95) out += "&";
    return out;
  }

 private:
  const std::string& pick(const std::vector<std::string>& pool) {
    return pool[rng_.uniform(pool.size())];
  }

  Rng rng_;
};

TEST(SpecFuzz, SpannerSpecsParseOrNameTheOffendingToken) {
  SpecStringGenerator gen(0xC0FFEE);
  for (int i = 0; i < 4000; ++i) {
    const std::string input = gen.next();
    expect_parse_or_named_error<api::SpannerSpec>(
        input, [](const std::string& s) { return api::parse_spanner_spec(s); },
        "spanner iter=" + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SpecFuzz, GraphSpecsParseOrNameTheOffendingToken) {
  SpecStringGenerator gen(0xBEEF);
  for (int i = 0; i < 4000; ++i) {
    const std::string input = gen.next();
    expect_parse_or_named_error<api::GraphSpec>(
        input, [](const std::string& s) { return api::parse_graph_spec(s); },
        "graph iter=" + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// The documented valid corners stay valid and canonical (anchors the fuzz
/// pools: if one of these starts throwing, the generator's "valid" pool is
/// stale, not the grammar).
TEST(SpecFuzz, CanonicalExamplesRoundTrip) {
  for (const char* text : {"th1?eps=0.5", "th2?k=2", "th3?k=2", "mpr", "greedy?t=3",
                           "baswana?k=3&seed=7", "full", "custom?alpha=raw"}) {
    const api::SpannerSpec spec = api::parse_spanner_spec(text);
    EXPECT_EQ(api::parse_spanner_spec(spec.to_string()), spec) << text;
  }
  for (const char* text : {"udg?n=500&side=6", "gnp?n=300&deg=12", "ba?n=200&m=3",
                           "ws?n=100&ring=6&rewire=0.1", "grid?n=64", "file:graph.txt"}) {
    const api::GraphSpec spec = api::parse_graph_spec(text);
    EXPECT_EQ(api::parse_graph_spec(spec.to_string()), spec) << text;
  }
}

}  // namespace
}  // namespace remspan
