// BFS over the three views (G, H, H_u) and bounded-depth behaviour.
#include <gtest/gtest.h>

#include "geom/synthetic.hpp"
#include "graph/bfs.hpp"
#include "graph/distances.hpp"
#include "graph/edge_set.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(BoundedBfs, PathDistances) {
  const Graph g = path_graph(6);
  BoundedBfs bfs(6);
  bfs.run(GraphView(g), 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(bfs.dist(v), v);
}

TEST(BoundedBfs, DepthBoundRespected) {
  const Graph g = path_graph(10);
  BoundedBfs bfs(10);
  bfs.run(GraphView(g), 0, 3);
  EXPECT_EQ(bfs.dist(3), 3u);
  EXPECT_EQ(bfs.dist(4), kUnreachable);
  EXPECT_FALSE(bfs.reached(9));
  EXPECT_EQ(bfs.order().size(), 4u);
}

TEST(BoundedBfs, ReusableAcrossRuns) {
  const Graph g = cycle_graph(8);
  BoundedBfs bfs(8);
  bfs.run(GraphView(g), 0);
  EXPECT_EQ(bfs.dist(4), 4u);
  bfs.run(GraphView(g), 4, 1);
  EXPECT_EQ(bfs.dist(4), 0u);
  EXPECT_EQ(bfs.dist(3), 1u);
  EXPECT_EQ(bfs.dist(0), kUnreachable);  // stale state must be gone
}

TEST(BoundedBfs, ParentChainsTraceShortestPaths) {
  const Graph g = grid_graph(5, 5);
  BoundedBfs bfs(g.num_nodes());
  bfs.run(GraphView(g), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Walking parents from v must reach the source in exactly dist(v) hops.
    NodeId cur = v;
    Dist steps = 0;
    while (cur != 0) {
      cur = bfs.parent(cur);
      ASSERT_NE(cur, kInvalidNode);
      ++steps;
    }
    EXPECT_EQ(steps, bfs.dist(v));
  }
}

TEST(BoundedBfs, OrderHasNonDecreasingDistance) {
  Rng rng(5);
  const Graph g = gnp(50, 0.1, rng);
  BoundedBfs bfs(50);
  bfs.run(GraphView(g), 0);
  for (std::size_t i = 1; i < bfs.order().size(); ++i) {
    EXPECT_LE(bfs.dist(bfs.order()[i - 1]), bfs.dist(bfs.order()[i]));
  }
}

TEST(BoundedBfs, ShellsPartitionTheBall) {
  Rng rng(41);
  const Graph g = connected_gnp(60, 0.08, rng);
  BoundedBfs bfs(g.num_nodes());
  for (const Dist depth : {Dist{2}, Dist{4}, kUnreachable}) {
    bfs.run(GraphView(g), 7, depth);
    // Every shell is the exact contiguous slice of the order at distance d,
    // and concatenating the shells reproduces the full visit order.
    std::size_t total = 0;
    for (Dist d = 0; d < bfs.num_shells(); ++d) {
      const auto sh = bfs.shell(d);
      for (const NodeId v : sh) EXPECT_EQ(bfs.dist(v), d);
      EXPECT_EQ(sh.data(), bfs.order().data() + total);
      total += sh.size();
    }
    EXPECT_EQ(total, bfs.order().size());
    EXPECT_FALSE(bfs.shell(0).empty());
    EXPECT_TRUE(bfs.shell(bfs.num_shells()).empty());
    EXPECT_TRUE(bfs.shell(kUnreachable).empty());
  }
}

TEST(BoundedBfs, ShellOffsetsResetBetweenRuns) {
  const Graph g = path_graph(10);
  BoundedBfs bfs(10);
  bfs.run(GraphView(g), 0);
  EXPECT_EQ(bfs.num_shells(), 10u);
  bfs.run(GraphView(g), 9, 2);
  EXPECT_EQ(bfs.num_shells(), 3u);
  EXPECT_EQ(bfs.shell(2).size(), 1u);
  EXPECT_EQ(bfs.shell(2)[0], 7u);
  EXPECT_TRUE(bfs.shell(3).empty());
}

TEST(SubgraphView, EmptySubgraphDisconnects) {
  const Graph g = path_graph(4);
  const EdgeSet h(g);  // no edges selected
  EXPECT_EQ(bfs_distance(SubgraphView(h), 0, 3), kUnreachable);
}

TEST(SubgraphView, PartialSubgraphDistances) {
  const Graph g = cycle_graph(6);
  EdgeSet h(g);
  // Keep only the path 0-1-2-3-4-5 (drop the closing edge 5-0).
  for (NodeId v = 1; v < 6; ++v) h.insert(v - 1, v);
  EXPECT_EQ(bfs_distance(SubgraphView(h), 0, 5), 5u);
  EXPECT_EQ(bfs_distance(GraphView(g), 0, 5), 1u);
}

TEST(AugmentedView, CenterGetsAllItsEdges) {
  const Graph g = cycle_graph(6);
  const EdgeSet h(g);  // empty spanner
  // H_0 = star of node 0: nodes 1 and 5 at distance 1, others unreachable.
  const AugmentedView view(h, 0);
  const auto dist = bfs_distances(view, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[5], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(AugmentedView, SymmetricFromNeighborSide) {
  const Graph g = path_graph(3);
  const EdgeSet h(g);  // empty
  // From node 1 (a G-neighbor of center 0), center must be visible.
  const AugmentedView view(h, 0);
  const auto dist = bfs_distances(view, 1);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[2], kUnreachable);  // edge 1-2 is neither in H nor incident to 0
}

TEST(AugmentedView, CombinesSpannerAndStar) {
  // G = path 0-1-2-3; H = {2-3}. In H_0: 0-1 (star), 1-2 missing, so 3 is
  // reachable only if 1-2 in H. Check both ways.
  const Graph g = path_graph(4);
  EdgeSet h(g);
  h.insert(2, 3);
  EXPECT_EQ(bfs_distance(AugmentedView(h, 0), 0, 3), kUnreachable);
  h.insert(1, 2);
  EXPECT_EQ(bfs_distance(AugmentedView(h, 0), 0, 3), 3u);
}

TEST(AugmentedView, NoDuplicateNeighborEnumeration) {
  // Edge (0,1) present in H and incident to center 0: the view must not
  // enumerate node 1 twice from 0, or 0 twice from 1.
  const Graph g = path_graph(3);
  EdgeSet h(g, true);
  const AugmentedView view(h, 0);
  int count = 0;
  view.for_each_neighbor(1, [&](NodeId v) {
    if (v == 0) ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(AllPairsDistances, MatchesPerSourceBfs) {
  Rng rng(9);
  const Graph g = gnp(40, 0.15, rng);
  const DistanceMatrix dm = all_pairs_distances(GraphView(g));
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    const auto row = bfs_distances(GraphView(g), u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(dm(u, v), row[v]);
  }
}

TEST(AllPairsDistances, SymmetricOnUndirectedGraphs) {
  Rng rng(10);
  const Graph g = gnp(35, 0.12, rng);
  const DistanceMatrix dm = all_pairs_distances(GraphView(g));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(dm(u, v), dm(v, u));
  }
}

TEST(Distances, DiameterOfCycle) {
  const Graph g = cycle_graph(10);
  const DistanceMatrix dm = all_pairs_distances(GraphView(g));
  EXPECT_EQ(diameter(dm), 5u);
  EXPECT_EQ(eccentricity(dm.row(0)), 5u);
}

}  // namespace
}  // namespace remspan
