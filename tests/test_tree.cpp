// RootedTree: depth/branch bookkeeping used by the dominating-tree checks.
#include <gtest/gtest.h>

#include "graph/tree.hpp"

namespace remspan {
namespace {

TEST(RootedTree, RootOnly) {
  const RootedTree t(7);
  EXPECT_EQ(t.root(), 7u);
  EXPECT_TRUE(t.contains(7));
  EXPECT_EQ(t.depth(7), 0u);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.num_edges(), 0u);
  EXPECT_EQ(t.branch(7), kInvalidNode);
  EXPECT_EQ(t.parent(7), kInvalidNode);
}

TEST(RootedTree, DepthAndBranchPropagate) {
  RootedTree t(0);
  t.add_child(0, 1);
  t.add_child(0, 2);
  t.add_child(1, 3);
  t.add_child(3, 4);
  EXPECT_EQ(t.depth(1), 1u);
  EXPECT_EQ(t.depth(4), 3u);
  EXPECT_EQ(t.branch(1), 1u);
  EXPECT_EQ(t.branch(3), 1u);
  EXPECT_EQ(t.branch(4), 1u);
  EXPECT_EQ(t.branch(2), 2u);
}

TEST(RootedTree, AbsentNodes) {
  RootedTree t(0);
  EXPECT_FALSE(t.contains(5));
  EXPECT_EQ(t.depth(5), kUnreachable);
  EXPECT_EQ(t.parent(5), kInvalidNode);
  EXPECT_EQ(t.branch(5), kInvalidNode);
}

TEST(RootedTree, ReattachSameParentIsIdempotent) {
  RootedTree t(0);
  t.add_child(0, 1);
  t.add_child(0, 1);
  EXPECT_EQ(t.num_nodes(), 2u);
}

TEST(RootedTree, ConflictingParentTrips) {
  RootedTree t(0);
  t.add_child(0, 1);
  t.add_child(0, 2);
  EXPECT_THROW(t.add_child(2, 1), CheckError);
}

TEST(RootedTree, MissingParentTrips) {
  RootedTree t(0);
  EXPECT_THROW(t.add_child(9, 1), CheckError);
}

TEST(RootedTree, EdgesAreParentLinks) {
  RootedTree t(5);
  t.add_child(5, 2);
  t.add_child(2, 8);
  const auto edges = t.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], make_edge(5, 2));
  EXPECT_EQ(edges[1], make_edge(2, 8));
}

TEST(RootedTree, NodesInInsertionOrder) {
  RootedTree t(3);
  t.add_child(3, 1);
  t.add_child(3, 9);
  t.add_child(1, 0);
  const auto& nodes = t.nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0], 3u);
  EXPECT_EQ(nodes[1], 1u);
  EXPECT_EQ(nodes[2], 9u);
  EXPECT_EQ(nodes[3], 0u);
}

}  // namespace
}  // namespace remspan
