// The determinism contract of src/obs: trace and metric content never feeds
// back into computation. Every pipeline — centralized builds, incremental
// maintenance, the distributed protocol under loss — must produce
// bit-identical outputs with sinks installed and without. These tests are
// what lets every hook in the engine stay un-reviewed for feedback: any
// instrument influencing a result fails here.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/remote_spanner.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "obs/obs.hpp"
#include "support/corpus.hpp"
#include "sim/remspan_protocol.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

/// The shared single-topology corpus (tests/support/corpus.hpp).
Graph test_graph(std::uint64_t seed) { return testsupport::observability_graph(seed); }

TEST(ObsEquivalence, CentralizedBuildsBitIdenticalWithSinksOn) {
  const Graph g = test_graph(11);
  const EdgeSet plain_th2 = build_k_connecting_spanner(g, 2);
  const EdgeSet plain_th1 = build_low_stretch_remote_spanner(g, 0.5);

  obs::Registry reg;
  obs::TraceBuffer buf;
  const obs::ScopedSinks sinks(&reg, &buf);
  EXPECT_EQ(build_k_connecting_spanner(g, 2).edge_list(), plain_th2.edge_list());
  EXPECT_EQ(build_low_stretch_remote_spanner(g, 0.5).edge_list(), plain_th1.edge_list());
  // The run was observed, not just unchanged: the hooks did fire.
  const obs::Snapshot s = reg.snapshot();
  EXPECT_GT(s.counters.at("union.builds"), 0u);
  EXPECT_GT(s.counters.at("domtree.builds"), 0u);
  EXPECT_GT(s.counters.at("bfs.runs"), 0u);
}

TEST(ObsEquivalence, IncrementalBatchesBitIdenticalWithSinksOn) {
  auto run = [](bool observed) {
    const Graph initial = test_graph(23);
    DynamicGraph dg(initial);
    IncrementalSpanner inc(dg, IncrementalConfig::k_connecting(1));
    obs::Registry reg;
    obs::TraceBuffer buf;
    std::optional<obs::ScopedSinks> sinks;
    if (observed) sinks.emplace(&reg, &buf);
    Rng rng(99);
    std::vector<std::vector<Edge>> spanners;
    for (int batch = 0; batch < 6; ++batch) {
      std::vector<GraphEvent> events;
      for (int e = 0; e < 8; ++e) {
        const auto n = static_cast<std::int64_t>(initial.num_nodes());
        const auto u = static_cast<NodeId>(rng.uniform_int(0, n - 1));
        const auto v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
        if (u == v) continue;
        events.push_back(rng.bernoulli(0.5) ? GraphEvent::edge_up(u, v)
                                            : GraphEvent::edge_down(u, v));
      }
      inc.apply_batch(events);
      spanners.push_back(inc.spanner().edge_list());
    }
    return spanners;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ObsEquivalence, DistributedProtocolBitIdenticalWithSinksOn) {
  const Graph g = test_graph(37);
  RemSpanConfig config;
  config.kind = RemSpanConfig::Kind::kKConnGreedy;
  config.k = 1;
  // A lossy channel forces the reliable variant: retransmission, flooding
  // and per-round network hooks all fire.
  FaultConfig faults;
  faults.link.drop = 0.2;
  faults.link.seed = 5;

  const DistributedRunResult plain = run_remspan_distributed(g, config, faults);

  obs::Registry reg;
  obs::TraceBuffer buf;
  const obs::ScopedSinks sinks(&reg, &buf);
  const DistributedRunResult observed = run_remspan_distributed(g, config, faults);

  EXPECT_EQ(observed.spanner.edge_list(), plain.spanner.edge_list());
  EXPECT_EQ(observed.rounds, plain.rounds);
  EXPECT_EQ(observed.stats.transmissions, plain.stats.transmissions);
  EXPECT_EQ(observed.stats.receptions, plain.stats.receptions);
  EXPECT_EQ(observed.stats.drops, plain.stats.drops);

  const obs::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("sim.rounds"), plain.rounds);
  EXPECT_EQ(s.counters.at("sim.msgs_offered"), plain.stats.transmissions);
  EXPECT_EQ(s.counters.at("sim.msgs_delivered"), plain.stats.receptions);
  EXPECT_EQ(s.counters.at("sim.msgs_dropped"), plain.stats.drops);
  EXPECT_GT(s.counters.at("sim.retransmissions"), 0u);
  EXPECT_GT(s.histograms.at("sim.backoff_interval").count, 0u);
  // Simulator trace lanes are wall-clock-free: ts is the round number, so
  // the trace itself is deterministic too.
  bool saw_sim_event = false;
  for (const obs::TraceEvent& e : buf.events()) {
    if (e.pid != obs::kSimPid) continue;
    saw_sim_event = true;
    EXPECT_EQ(e.ts, static_cast<double>(static_cast<std::uint64_t>(e.ts / obs::kRoundMicros)) *
                        obs::kRoundMicros);
  }
  EXPECT_TRUE(saw_sim_event);
}

}  // namespace
}  // namespace remspan
