// util/: rng determinism and distributions, bitset, fitting, options,
// tables, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/bitset.hpp"
#include "util/fit.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace remspan {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(3);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 80);  // within 10% of expectation
  }
}

TEST(Rng, UniformRealInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  for (const double mean : {0.5, 4.0, 60.0, 900.0}) {
    double sum = 0;
    const int reps = 3000;
    for (int i = 0; i < reps; ++i) sum += static_cast<double>(rng.poisson(mean));
    const double observed = sum / reps;
    EXPECT_NEAR(observed, mean, 5.0 * std::sqrt(mean / reps) + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllWhenRequestExceedsPopulation) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(64));
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_EQ(bits.count(), 2u);
}

TEST(DynamicBitset, ForEachSetAscending) {
  DynamicBitset bits(200);
  const std::vector<std::size_t> want{3, 64, 65, 127, 199};
  for (const auto i : want) bits.set(i);
  std::vector<std::size_t> got;
  bits.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(DynamicBitset, UnionAndIntersection) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.set(1);
  a.set(69);
  b.set(2);
  b.set(69);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(69));
}

TEST(DynamicBitset, FromWordsAdoptsAndTrims) {
  // 70 bits -> 2 words; the tail of the last word must be masked off.
  std::vector<std::uint64_t> words{~std::uint64_t{0}, ~std::uint64_t{0}};
  const DynamicBitset bits = DynamicBitset::from_words(70, std::move(words));
  EXPECT_EQ(bits.size(), 70u);
  EXPECT_EQ(bits.count(), 70u);
  EXPECT_TRUE(bits.test(69));
  EXPECT_EQ(bits.num_words(), 2u);
  EXPECT_EQ(bits.words()[1], (std::uint64_t{1} << 6) - 1);
}

TEST(DynamicBitset, FromWordsSizeMismatchTripsCheck) {
  EXPECT_THROW(DynamicBitset::from_words(70, std::vector<std::uint64_t>(3)), CheckError);
}

TEST(AtomicBitset, SetTestSnapshot) {
  AtomicBitset bits(130);
  bits.set(0);
  bits.set(64);
  bits.or_word(2, std::uint64_t{1} << 1);  // bit 129
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(63));
  const DynamicBitset snap = bits.snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_TRUE(snap.test(64));
}

TEST(AtomicBitset, ConcurrentSettersProduceExactUnion) {
  // Many workers set interleaved, overlapping bit ranges; the snapshot must
  // be the exact union. This is the TSan coverage for the set-only phase
  // the shared spanner union relies on.
  constexpr std::size_t kBits = 4096;
  AtomicBitset bits(kBits);
  ThreadPool::global().parallel_for(0, 64, [&](std::size_t task) {
    for (std::size_t i = task % 3; i < kBits; i += 3) bits.set(i);
  });
  const DynamicBitset snap = bits.snapshot();
  EXPECT_EQ(snap.count(), kBits);
}

TEST(DynamicBitset, SetAllRespectsSize) {
  DynamicBitset bits(67);
  bits.set_all();
  EXPECT_EQ(bits.count(), 67u);
}

TEST(DynamicBitset, SizeMismatchedUnionTripsCheck) {
  // The doc comment promises both operands have equal size; a mismatch is a
  // programming error and must fail loudly, not read out of bounds.
  DynamicBitset a(70);
  DynamicBitset b(64);
  EXPECT_THROW(a |= b, CheckError);
  EXPECT_THROW(b |= a, CheckError);
}

TEST(DynamicBitset, SizeMismatchedIntersectionTripsCheck) {
  DynamicBitset a(128);
  DynamicBitset b(127);
  EXPECT_THROW(a &= b, CheckError);
  EXPECT_THROW(b &= a, CheckError);
}

TEST(DynamicBitset, DifferenceClearsOtherBits) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.set(1);
  a.set(64);
  a.set(69);
  b.set(64);
  b.set(2);
  a -= b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(64));
  EXPECT_TRUE(a.test(69));
}

TEST(DynamicBitset, SizeMismatchedDifferenceTripsCheck) {
  DynamicBitset a(128);
  DynamicBitset b(127);
  EXPECT_THROW(a -= b, CheckError);
  EXPECT_THROW(b -= a, CheckError);
}

TEST(AtomicBitset, ClearDropsSingleBits) {
  AtomicBitset bits(130);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  bits.clear(64);
  bits.clear(1);  // clearing an unset bit is a no-op
  const DynamicBitset snap = bits.snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_TRUE(snap.test(0));
  EXPECT_FALSE(snap.test(64));
  EXPECT_TRUE(snap.test(129));
}

TEST(AtomicBitset, ClearBatchMirrorsOrBatch) {
  // clear_batch must retire exactly the bits or_batch published, with the
  // same word-level batching discipline (indices sorted in place, one RMW
  // per touched word).
  constexpr std::size_t kBits = 1000;
  AtomicBitset bits(kBits);
  std::vector<std::uint32_t> published;
  for (std::uint32_t i = 0; i < kBits; i += 7) published.push_back(i);
  std::vector<std::uint32_t> shuffled(published.rbegin(), published.rend());
  bits.or_batch(shuffled);
  std::vector<std::uint32_t> retire;
  for (std::uint32_t i = 0; i < kBits; i += 14) retire.push_back(i);
  bits.clear_batch(retire);
  const DynamicBitset snap = bits.snapshot();
  for (const std::uint32_t i : published) {
    EXPECT_EQ(snap.test(i), i % 14 != 0) << "bit " << i;
  }
}

TEST(AtomicBitset, OrBatchEmptyBatchTouchesNothing) {
  AtomicBitset bits(256);
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(bits.or_batch(batch), 0u);
  EXPECT_EQ(bits.snapshot().count(), 0u);
}

TEST(AtomicBitset, OrBatchReturnsDistinctTouchedWords) {
  // The return value is the RMW count: one per distinct 64-bit word in the
  // batch, with in-word duplicates merged into a single mask. Indices
  // straddling word boundaries (63|64, 127|128) must land in separate words.
  AtomicBitset bits(256);
  std::vector<std::uint32_t> batch{128, 63, 5, 64, 127, 64, 5};
  EXPECT_EQ(bits.or_batch(batch), 3u);  // words 0, 1, 2
  EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));  // sorted in place
  const DynamicBitset snap = bits.snapshot();
  EXPECT_EQ(snap.count(), 5u);
  for (const std::uint32_t i : {5u, 63u, 64u, 127u, 128u}) {
    EXPECT_TRUE(snap.test(i)) << "bit " << i;
  }
  EXPECT_FALSE(snap.test(62));
  EXPECT_FALSE(snap.test(65));
}

TEST(AtomicBitset, OrBatchCountsWordsEvenWhenBitsAlreadySet) {
  // words_ord is a cost metric (RMWs issued), not a novelty metric: re-ORing
  // an already-published batch costs the same word count and must not
  // disturb the stored union.
  AtomicBitset bits(256);
  std::vector<std::uint32_t> batch{0, 70, 200};
  EXPECT_EQ(bits.or_batch(batch), 3u);
  std::vector<std::uint32_t> again{200, 0, 70};
  EXPECT_EQ(bits.or_batch(again), 3u);
  EXPECT_EQ(bits.snapshot().count(), 3u);
}

TEST(AtomicBitset, OrBatchConcurrentCallersConserveWordsAndBits) {
  // Many workers publish overlapping batches concurrently (the shard
  // engine's level-1 merge). Two conservation laws: the union is exact, and
  // each caller's return value equals the distinct-word count of its own
  // batch — a pure function of the batch, independent of interleaving.
  constexpr std::size_t kBits = 4096;
  constexpr std::size_t kTasks = 32;
  AtomicBitset bits(kBits);
  std::vector<std::size_t> words_ord(kTasks, 0);
  ThreadPool::global().parallel_for(0, kTasks, [&](std::size_t task) {
    std::vector<std::uint32_t> batch;
    for (std::size_t i = task % 5; i < kBits; i += 5) {
      batch.push_back(static_cast<std::uint32_t>(i));
    }
    words_ord[task] = bits.or_batch(batch);
  });
  const DynamicBitset snap = bits.snapshot();
  EXPECT_EQ(snap.count(), kBits);  // residues 0..4 mod 5 jointly cover all
  for (std::size_t task = 0; task < kTasks; ++task) {
    // Every stride-5 batch over 4096 bits hits all 64 words.
    EXPECT_EQ(words_ord[task], kBits / 64) << "task " << task;
  }
}

TEST(AtomicBitset, ConcurrentDisjointClearsProduceExactDifference) {
  // Workers concurrently retire disjoint bit ranges from a full bitset;
  // relaxed fetch_and must lose nothing (TSan coverage for the refcounted
  // union's retire phase).
  constexpr std::size_t kBits = 4096;
  AtomicBitset bits(kBits);
  for (std::size_t i = 0; i < kBits; ++i) bits.set(i);
  ThreadPool::global().parallel_for(0, 64, [&](std::size_t task) {
    std::vector<std::uint32_t> mine;
    for (std::size_t i = task; i < kBits; i += 128) mine.push_back(static_cast<std::uint32_t>(i));
    bits.clear_batch(mine);
  });
  const DynamicBitset snap = bits.snapshot();
  // Tasks 0..63 cleared residues 0..63 mod 128; residues 64..127 survive.
  EXPECT_EQ(snap.count(), kBits / 2);
  EXPECT_FALSE(snap.test(0));
  EXPECT_TRUE(snap.test(64));
}

TEST(Fit, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 2x + 1
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, PowerLawExponentRecovered) {
  std::vector<double> xs, ys;
  for (double x = 100; x <= 3000; x *= 1.5) {
    xs.push_back(x);
    ys.push_back(3.7 * std::pow(x, 4.0 / 3.0));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 4.0 / 3.0, 1e-9);
}

TEST(Fit, Statistics) {
  const std::vector<double> xs{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(xs), 22.0);
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4, 100}), 3.0);
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
  const std::vector<double> ss{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(ss), 2.138, 1e-3);
}

TEST(Options, ParsesSpaceAndEqualsForms) {
  Options opts({"--n", "100", "--eps=0.5", "--verbose"});
  EXPECT_EQ(opts.get_int("n", 1), 100);
  EXPECT_DOUBLE_EQ(opts.get_double("eps", 1.0), 0.5);
  EXPECT_TRUE(opts.get_flag("verbose"));
  EXPECT_EQ(opts.get_int("missing", 7), 7);
}

TEST(Options, HelpAndUnknown) {
  Options opts({"--help", "--typo", "1"});
  EXPECT_TRUE(opts.help_requested());
  (void)opts.get_int("n", 5);
  const auto unknown = opts.unknown_options();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Options, RejectUnknownNamesTheOffendingFlag) {
  Options opts({"--constrution", "th1", "--n", "5"});
  (void)opts.get_int("n", 1);
  std::ostringstream err;
  EXPECT_FALSE(opts.reject_unknown(err));
  EXPECT_NE(err.str().find("--constrution"), std::string::npos);
  // A fully-consumed command line passes silently.
  Options clean({"--n", "5"});
  (void)clean.get_int("n", 1);
  std::ostringstream quiet;
  EXPECT_TRUE(clean.reject_unknown(quiet));
  EXPECT_TRUE(quiet.str().empty());
}

TEST(Options, RequireFormsThrowWhenAbsent) {
  Options opts({"--trace", "t.txt", "--k", "3", "--eps", "0.25"});
  EXPECT_EQ(opts.require_string("trace"), "t.txt");
  EXPECT_EQ(opts.require_int("k"), 3);
  EXPECT_DOUBLE_EQ(opts.require_double("eps"), 0.25);
  EXPECT_THROW((void)opts.require_string("churn-trace"), MissingOptionError);
  try {
    (void)opts.require_int("missing");
    FAIL() << "require_int should have thrown";
  } catch (const MissingOptionError& e) {
    EXPECT_NE(std::string(e.what()).find("--missing"), std::string::npos);
  }
  // has() reports presence without consuming.
  EXPECT_TRUE(opts.has("trace"));
  EXPECT_FALSE(opts.has("absent"));
}

TEST(Options, MalformedNumbersThrowBadOptionError) {
  Options opts({"--k", "banana", "--eps", "0.5x", "--n", "12"});
  EXPECT_THROW((void)opts.get_int("k", 1), BadOptionError);
  EXPECT_THROW((void)opts.require_double("eps"), BadOptionError);
  EXPECT_EQ(opts.get_int("n", 1), 12);  // intact values still parse
  try {
    (void)opts.require_int("k");
    FAIL() << "require_int should have thrown";
  } catch (const BadOptionError& e) {
    EXPECT_NE(std::string(e.what()).find("--k"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
  }
  // Both siblings are catchable through the OptionError base (exit-2 path).
  EXPECT_THROW((void)opts.get_double("eps", 1.0), OptionError);
  EXPECT_THROW((void)opts.require_string("missing"), OptionError);
}

TEST(Table, AlignedOutputAndCsv) {
  Table t({"name", "value"});
  t.add("alpha", 1.5);
  t.add("n", std::size_t{42});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.500"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("n,42"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorkerIdsWithinBounds) {
  ThreadPool pool(2);
  std::atomic<bool> ok{true};
  pool.parallel_for_workers(0, 500, [&](std::size_t, std::size_t worker) {
    if (worker > pool.size()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, EmptyRangeNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace remspan
