// Bit-exactness of the optimized hot path: the incremental lazy-heap
// greedy covers, the shell-bucketed MIS, and the shared atomic spanner
// union must reproduce the pre-optimization behavior EXACTLY — same picks
// in the same order, same trees, same edge sets. The reference
// implementations below are verbatim ports of the original quadratic scans
// (recompute-every-candidate-per-pick, whole-ball rescans per shell,
// per-worker partial unions); any divergence in pick order, tie-breaking or
// attachment shows up as a node/edge mismatch here.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "support/corpus.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

/// The pre-optimization dominating-tree builders, kept as the behavioral
/// oracle: every pick rescans all candidates (O(|X|^2 · deg) greedy), mis
/// sorts the whole ball, mis_k does an adjacency search per attach-point
/// candidate. Deliberately naive — do not optimize.
class ReferenceBuilder {
 public:
  explicit ReferenceBuilder(const Graph& g)
      : g_(&g),
        bfs_(g.num_nodes()),
        in_s_(g.num_nodes(), 0),
        in_x_(g.num_nodes(), 0),
        cov_(g.num_nodes(), 0),
        rem_(g.num_nodes(), 0),
        branches_(g.num_nodes()) {}

  RootedTree greedy(NodeId u, Dist r, Dist beta) {
    RootedTree tree(u);
    const Dist depth_needed = std::max(r, r - 1 + beta);
    bfs_.run(GraphView(*g_), u, depth_needed);

    std::vector<NodeId> candidates;
    for (Dist shell = 2; shell <= r; ++shell) {
      std::size_t s_count = 0;
      candidates.clear();
      for (const NodeId v : bfs_.order()) {
        const Dist d = bfs_.dist(v);
        if (d == shell) {
          in_s_[v] = 1;
          ++s_count;
        }
        if (d >= shell - 1 && d <= shell - 1 + beta) {
          in_x_[v] = 1;
          candidates.push_back(v);
        }
      }
      while (s_count > 0) {
        NodeId best = kInvalidNode;
        std::size_t best_cover = 0;
        for (const NodeId x : candidates) {
          if (in_x_[x] != 1) continue;
          std::size_t cover = in_s_[x];
          for (const NodeId y : g_->neighbors(x)) cover += in_s_[y];
          if (cover > best_cover || (cover == best_cover && cover > 0 && x < best)) {
            best_cover = cover;
            best = x;
          }
        }
        REMSPAN_CHECK(best != kInvalidNode && best_cover > 0);
        in_x_[best] = 2;
        add_parent_chain(tree, best);
        if (in_s_[best] != 0) {
          in_s_[best] = 0;
          --s_count;
        }
        for (const NodeId y : g_->neighbors(best)) {
          if (in_s_[y] != 0) {
            in_s_[y] = 0;
            --s_count;
          }
        }
      }
      for (const NodeId x : candidates) in_x_[x] = 0;
    }
    reset_flags();
    return tree;
  }

  RootedTree mis(NodeId u, Dist r) {
    RootedTree tree(u);
    bfs_.run(GraphView(*g_), u, r);

    std::vector<NodeId> shell_nodes;
    for (const NodeId v : bfs_.order()) {
      if (bfs_.dist(v) >= 2) {
        in_s_[v] = 1;
        shell_nodes.push_back(v);
      }
    }
    std::sort(shell_nodes.begin(), shell_nodes.end(), [&](NodeId a, NodeId b) {
      return bfs_.dist(a) != bfs_.dist(b) ? bfs_.dist(a) < bfs_.dist(b) : a < b;
    });

    for (const NodeId x : shell_nodes) {
      if (in_s_[x] == 0) continue;
      add_parent_chain(tree, x);
      in_s_[x] = 0;
      for (const NodeId y : g_->neighbors(x)) in_s_[y] = 0;
    }
    reset_flags();
    return tree;
  }

  RootedTree greedy_k(NodeId u, Dist k) {
    RootedTree tree(u);
    bfs_.run(GraphView(*g_), u, 2);

    std::size_t s_count = 0;
    for (const NodeId v : bfs_.order()) {
      if (bfs_.dist(v) == 2) {
        in_s_[v] = 1;
        ++s_count;
      }
    }
    for (const NodeId x : g_->neighbors(u)) {
      for (const NodeId y : g_->neighbors(x)) {
        if (in_s_[y] != 0) ++rem_[y];
      }
    }

    while (s_count > 0) {
      NodeId best = kInvalidNode;
      std::size_t best_cover = 0;
      for (const NodeId x : g_->neighbors(u)) {
        if (in_x_[x] != 0) continue;
        std::size_t cover = 0;
        for (const NodeId y : g_->neighbors(x)) cover += in_s_[y];
        if (cover > best_cover || (cover == best_cover && cover > 0 && x < best)) {
          best_cover = cover;
          best = x;
        }
      }
      REMSPAN_CHECK(best != kInvalidNode && best_cover > 0);
      in_x_[best] = 1;
      tree.add_child(u, best, bfs_.parent_edge(best));
      for (const NodeId y : g_->neighbors(best)) {
        if (in_s_[y] == 0) continue;
        ++cov_[y];
        --rem_[y];
        if (cov_[y] >= k || rem_[y] == 0) {
          in_s_[y] = 0;
          --s_count;
        }
      }
    }
    reset_flags();
    return tree;
  }

  RootedTree mis_k(NodeId u, Dist k) {
    RootedTree tree(u);
    bfs_.run(GraphView(*g_), u, 2);

    std::vector<NodeId> shell;
    std::size_t s_count = 0;
    for (const NodeId v : bfs_.order()) {
      if (bfs_.dist(v) == 2) {
        in_s_[v] = 1;
        shell.push_back(v);
        ++s_count;
      }
    }
    std::sort(shell.begin(), shell.end());
    for (const NodeId x : g_->neighbors(u)) {
      for (const NodeId y : g_->neighbors(x)) {
        if (in_s_[y] != 0) ++rem_[y];
      }
    }

    auto attach = [&](NodeId parent, NodeId node) {
      const EdgeId pe = bfs_.parent(node) == parent ? bfs_.parent_edge(node)
                                                    : g_->find_edge(parent, node);
      tree.add_child(parent, node, pe);
      const NodeId branch = tree.branch(node);
      const bool depth_one = tree.depth(node) == 1;
      for (const NodeId w : g_->neighbors(node)) {
        if (in_s_[w] == 0) continue;
        if (depth_one) --rem_[w];
        auto& br = branches_[w];
        if (std::find(br.begin(), br.end(), branch) == br.end()) br.push_back(branch);
        if (rem_[w] == 0 || br.size() >= k) {
          in_s_[w] = 0;
          --s_count;
        }
      }
    };

    std::vector<NodeId> ys;
    for (Dist round = 1; round <= k && s_count > 0; ++round) {
      for (const NodeId v : shell) in_x_[v] = in_s_[v];
      for (const NodeId x : shell) {
        if (s_count == 0) break;
        if (in_x_[x] == 0 || in_s_[x] == 0) continue;
        ys.clear();
        for (const NodeId y : g_->neighbors(x)) {
          if (g_->has_edge(u, y) && !tree.contains(y)) ys.push_back(y);
        }
        REMSPAN_CHECK(!ys.empty());
        const std::size_t count = std::min<std::size_t>(k, ys.size());
        attach(u, ys[0]);
        attach(ys[0], x);
        for (std::size_t i = 1; i < count; ++i) attach(u, ys[i]);
        in_x_[x] = 0;
        for (const NodeId y : g_->neighbors(x)) in_x_[y] = 0;
      }
    }
    REMSPAN_CHECK(s_count == 0);
    reset_flags();
    return tree;
  }

 private:
  void add_parent_chain(RootedTree& tree, NodeId x) {
    NodeId chain[64];
    std::size_t len = 0;
    while (!tree.contains(x)) {
      REMSPAN_CHECK(len < 64);
      chain[len++] = x;
      x = bfs_.parent(x);
      REMSPAN_CHECK(x != kInvalidNode);
    }
    while (len > 0) {
      const NodeId child = chain[--len];
      tree.add_child(x, child, bfs_.parent_edge(child));
      x = child;
    }
  }

  void reset_flags() {
    for (const NodeId v : bfs_.order()) {
      in_s_[v] = 0;
      in_x_[v] = 0;
      cov_[v] = 0;
      rem_[v] = 0;
      branches_[v].clear();
    }
  }

  const Graph* g_;
  BoundedBfs bfs_;
  std::vector<std::uint8_t> in_s_;
  std::vector<std::uint8_t> in_x_;
  std::vector<Dist> cov_;
  std::vector<Dist> rem_;
  std::vector<std::vector<NodeId>> branches_;
};

/// Trees must be identical as ordered objects: same members in the same
/// insertion order (i.e. the same picks happened in the same sequence),
/// same parents, depths and recorded parent edge ids.
void expect_identical_trees(const RootedTree& got, const RootedTree& want,
                            const std::string& label) {
  ASSERT_EQ(got.root(), want.root()) << label;
  ASSERT_EQ(got.nodes(), want.nodes()) << label;
  for (const NodeId v : want.nodes()) {
    EXPECT_EQ(got.parent(v), want.parent(v)) << label << " v=" << v;
    EXPECT_EQ(got.depth(v), want.depth(v)) << label << " v=" << v;
    EXPECT_EQ(got.parent_edge(v), want.parent_edge(v)) << label << " v=" << v;
  }
}

/// The shared equivalence corpus (tests/support/corpus.hpp); aliased so
/// the sweep bodies below read the same as before the extraction.
Graph family_graph(int which, std::uint64_t seed) {
  return testsupport::equivalence_family(which, seed);
}

TEST(DomTreeEquivalence, GreedyMatchesReferenceAcrossFamiliesAndParams) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = family_graph(which, 1000 * seed + which);
      DomTreeBuilder fast(g);
      ReferenceBuilder ref(g);
      for (const Dist r : testsupport::kGreedyRadii) {
        for (const Dist beta : testsupport::kGreedyBetas) {
          for (NodeId u = 0; u < g.num_nodes(); u += 3) {
            expect_identical_trees(
                fast.greedy(u, r, beta), ref.greedy(u, r, beta),
                "greedy graph=" + std::to_string(which) + " seed=" + std::to_string(seed) +
                    " r=" + std::to_string(r) + " beta=" + std::to_string(beta) +
                    " u=" + std::to_string(u));
          }
        }
      }
    }
  }
}

TEST(DomTreeEquivalence, MisMatchesReferenceAcrossFamiliesAndRadii) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = family_graph(which, 2000 * seed + which);
      DomTreeBuilder fast(g);
      ReferenceBuilder ref(g);
      for (const Dist r : testsupport::kMisRadii) {
        for (NodeId u = 0; u < g.num_nodes(); u += 3) {
          expect_identical_trees(fast.mis(u, r), ref.mis(u, r),
                                 "mis graph=" + std::to_string(which) +
                                     " seed=" + std::to_string(seed) + " r=" + std::to_string(r) +
                                     " u=" + std::to_string(u));
        }
      }
    }
  }
}

TEST(DomTreeEquivalence, GreedyKMatchesReferenceAcrossFamiliesAndK) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = family_graph(which, 3000 * seed + which);
      DomTreeBuilder fast(g);
      ReferenceBuilder ref(g);
      for (const Dist k : testsupport::kGreedyKs) {
        for (NodeId u = 0; u < g.num_nodes(); u += 3) {
          expect_identical_trees(fast.greedy_k(u, k), ref.greedy_k(u, k),
                                 "greedy_k graph=" + std::to_string(which) +
                                     " seed=" + std::to_string(seed) + " k=" + std::to_string(k) +
                                     " u=" + std::to_string(u));
        }
      }
    }
  }
}

TEST(DomTreeEquivalence, MisKMatchesReferenceAcrossFamiliesAndK) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = family_graph(which, 4000 * seed + which);
      DomTreeBuilder fast(g);
      ReferenceBuilder ref(g);
      for (const Dist k : testsupport::kMisKs) {
        for (NodeId u = 0; u < g.num_nodes(); u += 3) {
          expect_identical_trees(fast.mis_k(u, k), ref.mis_k(u, k),
                                 "mis_k graph=" + std::to_string(which) +
                                     " seed=" + std::to_string(seed) + " k=" + std::to_string(k) +
                                     " u=" + std::to_string(u));
        }
      }
    }
  }
}

/// The concurrent shared-bitset union must produce exactly the edge set of
/// a sequential one-builder union of the same (reference) trees.
TEST(DomTreeEquivalence, SpannerUnionMatchesSequentialReferenceUnion) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    const Graph g = family_graph(which, 500 + which);
    ReferenceBuilder ref(g);

    const auto sequential_union = [&](auto make_tree) {
      EdgeSet acc(g);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const RootedTree tree = make_tree(u);
        for (const NodeId v : tree.nodes()) {
          if (v == tree.root()) continue;
          acc.insert(tree.parent_edge(v));
        }
      }
      return acc;
    };

    for (const Dist r : {2u, 3u}) {
      const EdgeSet want =
          sequential_union([&](NodeId u) { return ref.greedy(u, r, 1); });
      const EdgeSet got = build_remote_spanner(g, r, 1, TreeAlgorithm::kGreedy);
      EXPECT_TRUE(got == want) << "greedy union graph=" << which << " r=" << r;

      const EdgeSet want_mis = sequential_union([&](NodeId u) { return ref.mis(u, r); });
      const EdgeSet got_mis = build_remote_spanner(g, r, 1, TreeAlgorithm::kMis);
      EXPECT_TRUE(got_mis == want_mis) << "mis union graph=" << which << " r=" << r;
    }
    for (const Dist k : {1u, 2u}) {
      const EdgeSet want = sequential_union([&](NodeId u) { return ref.greedy_k(u, k); });
      const EdgeSet got = build_k_connecting_spanner(g, k);
      EXPECT_TRUE(got == want) << "greedy_k union graph=" << which << " k=" << k;

      const EdgeSet want2 = sequential_union([&](NodeId u) { return ref.mis_k(u, k); });
      const EdgeSet got2 = build_2connecting_spanner(g, k);
      EXPECT_TRUE(got2 == want2) << "mis_k union graph=" << which << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace remspan
