// Baseline spanner constructions: greedy (t,0), Baswana-Sen, OLSR MPR,
#include <queue>
// layered fault-tolerant geometric.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stretch_oracle.hpp"
#include "baseline/baswana_sen.hpp"
#include "baseline/greedy_spanner.hpp"
#include "baseline/mpr.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph connected_random(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  return connected_gnp(n, p, rng);
}

TEST(GreedySpanner, StretchGuaranteeHolds) {
  for (const double t : {1.0, 3.0, 5.0}) {
    const Graph g = connected_random(35, 0.15, 701);
    const EdgeSet h = greedy_spanner(g, t);
    const auto report = check_spanner_stretch(g, h, Stretch{t, 0.0});
    EXPECT_TRUE(report.satisfied) << "t=" << t;
  }
}

TEST(GreedySpanner, StretchOneKeepsAllEdges) {
  const Graph g = connected_random(25, 0.2, 703);
  const EdgeSet h = greedy_spanner(g, 1.0);
  EXPECT_EQ(h.size(), g.num_edges());
}

TEST(GreedySpanner, GirthPropertySparsifies) {
  // A (3,0)-greedy spanner of a dense graph has girth > 4, hence
  // O(n^{3/2}) edges; just check substantial sparsification.
  const Graph g = connected_random(60, 0.4, 705);
  const EdgeSet h = greedy_spanner(g, 3.0);
  EXPECT_LT(h.size(), g.num_edges() / 2);
}

TEST(GreedySpanner, SpannerIsRemoteSpannerWithShift) {
  // Section 1.2: an (alpha,beta)-spanner is an (alpha, beta-alpha+1)-
  // remote-spanner.
  const Graph g = connected_random(30, 0.2, 707);
  for (const double t : {3.0, 5.0}) {
    const EdgeSet h = greedy_spanner(g, t);
    const auto report = check_remote_stretch(g, h, Stretch{t, 1.0 - t});
    EXPECT_TRUE(report.satisfied) << "t=" << t;
  }
}

/// Weighted single-source distances over a subset of a geometric graph's
/// edges (test-local reference implementation).
std::vector<double> dijkstra_ref(const GeometricGraph& gg, const EdgeSet& h, NodeId src) {
  const Graph& g = gg.graph;
  std::vector<double> dist(g.num_nodes(), std::numeric_limits<double>::infinity());
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    h.for_each_neighbor(u, [&, u = u, d = d](NodeId v) {
      const double w = gg.edge_length(make_edge(u, v));
      if (d + w < dist[v]) {
        dist[v] = d + w;
        heap.emplace(dist[v], v);
      }
    });
  }
  return dist;
}

TEST(GreedySpannerWeighted, StretchHoldsInMetricLengths) {
  Rng rng(709);
  const auto gg = uniform_unit_ball_graph(60, 4.0, 2, rng);
  const double t = 1.5;
  const EdgeSet h = greedy_spanner_weighted(gg, t);
  const EdgeSet full(gg.graph, true);
  for (NodeId src = 0; src < gg.graph.num_nodes(); src += 5) {
    const auto dh = dijkstra_ref(gg, h, src);
    const auto dg = dijkstra_ref(gg, full, src);
    for (NodeId v = 0; v < gg.graph.num_nodes(); ++v) {
      if (std::isinf(dg[v])) continue;
      EXPECT_LE(dh[v], t * dg[v] + 1e-9) << "src=" << src << " v=" << v;
    }
  }
  EXPECT_LE(h.size(), gg.graph.num_edges());
}

TEST(BaswanaSen, StretchGuaranteeAcrossK) {
  Rng rng(711);
  for (const Dist k : {1u, 2u, 3u}) {
    for (int rep = 0; rep < 3; ++rep) {
      const Graph g = connected_random(40, 0.2, 713 + static_cast<std::uint64_t>(rep));
      const EdgeSet h = baswana_sen_spanner(g, k, rng);
      const auto report =
          check_spanner_stretch(g, h, Stretch{2.0 * k - 1.0, 0.0});
      EXPECT_TRUE(report.satisfied)
          << "k=" << k << " rep=" << rep << " worst=(" << report.worst_u << ","
          << report.worst_v << ")";
    }
  }
}

TEST(BaswanaSen, K1KeepsEverything) {
  Rng rng(715);
  const Graph g = connected_random(20, 0.3, 717);
  EXPECT_EQ(baswana_sen_spanner(g, 1, rng).size(), g.num_edges());
}

TEST(BaswanaSen, SparsifiesDenseGraphs) {
  Rng rng(719);
  const Graph g = connected_random(150, 0.3, 721);  // ~3300 edges
  const EdgeSet h = baswana_sen_spanner(g, 2, rng);
  // O(k n^{3/2}) ~ 2 * 1837 for n=150; allow generous slack but demand
  // real sparsification.
  EXPECT_LT(h.size(), g.num_edges());
  EXPECT_LT(h.size(), 5u * static_cast<std::size_t>(std::pow(150.0, 1.5)));
}

TEST(BaswanaSen, PreservesConnectivity) {
  Rng rng(723);
  const Graph g = connected_random(50, 0.15, 725);
  for (const Dist k : {2u, 3u, 4u}) {
    const EdgeSet h = baswana_sen_spanner(g, k, rng);
    EXPECT_EQ(connected_components(h).count, 1u) << "k=" << k;
  }
}

TEST(OlsrMpr, CoversAllTwoHopNodes) {
  Rng rng(727);
  const Graph g = connected_random(40, 0.12, 729);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    const auto mpr = olsr_mpr_set(g, u);
    // Every strict 2-hop node of u must have a neighbor among the MPRs.
    const auto dist = bfs_distances(GraphView(g), u, 2);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] != 2) continue;
      bool covered = false;
      for (const NodeId m : mpr) {
        if (g.has_edge(m, v)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "u=" << u << " v=" << v;
    }
  }
}

TEST(OlsrMpr, UnionIsOneZeroRemoteSpanner) {
  // The paper's Section 1.2 claim: multipoint relays form a
  // (1,0)-remote-spanner.
  Rng rng(731);
  for (int rep = 0; rep < 3; ++rep) {
    const Graph g = connected_random(35, 0.15, 733 + static_cast<std::uint64_t>(rep));
    const EdgeSet h = olsr_mpr_spanner(g);
    const auto report = check_remote_stretch(g, h, Stretch{1.0, 0.0});
    EXPECT_TRUE(report.satisfied) << "rep=" << rep;
  }
}

TEST(OlsrMpr, ComparableSizeToDomTreeGreedyK1) {
  // Two heuristics for the same object; sizes should be in the same
  // ballpark (within 2x either way on random graphs).
  const Graph g = connected_random(60, 0.15, 735);
  const std::size_t mpr_edges = olsr_mpr_spanner(g).size();
  const std::size_t gdy_edges = build_k_connecting_spanner(g, 1).size();
  EXPECT_LT(mpr_edges, 2 * gdy_edges + 10);
  EXPECT_LT(gdy_edges, 2 * mpr_edges + 10);
}

TEST(LayeredFaultTolerant, MoreLayersMoreEdges) {
  Rng rng(737);
  const auto gg = uniform_unit_ball_graph(70, 3.5, 2, rng);
  std::size_t prev = 0;
  for (const Dist k : {0u, 1u, 2u}) {
    const EdgeSet h = layered_fault_tolerant_spanner(gg, 1.5, k);
    EXPECT_GE(h.size(), prev) << "k=" << k;
    prev = h.size();
  }
}

TEST(LayeredFaultTolerant, LayerZeroEqualsGreedy) {
  Rng rng(739);
  const auto gg = uniform_unit_ball_graph(50, 3.5, 2, rng);
  const EdgeSet a = layered_fault_tolerant_spanner(gg, 1.4, 0);
  const EdgeSet b = greedy_spanner_weighted(gg, 1.4);
  EXPECT_EQ(a, b);
}

TEST(LayeredFaultTolerant, SurvivesSingleNodeFailure) {
  // Remove one random non-cut node: the remaining layered spanner keeps the
  // surviving graph connected (the practical fault-tolerance property).
  Rng rng(741);
  const auto gg = uniform_unit_ball_graph(60, 3.0, 2, rng);
  const auto comps = connected_components(gg.graph);
  if (comps.count != 1) GTEST_SKIP() << "disconnected sample";
  const EdgeSet h = layered_fault_tolerant_spanner(gg, 1.5, 1);
  // Knock out node 0; compare components of h-minus-0 and g-minus-0.
  std::vector<NodeId> keep;
  for (NodeId v = 1; v < gg.graph.num_nodes(); ++v) keep.push_back(v);
  const auto sub_g = induced_subgraph(gg.graph, keep);
  // Build the h-edge subgraph among kept nodes.
  GraphBuilder hb(static_cast<NodeId>(keep.size()));
  for (const Edge& e : h.edge_list()) {
    if (e.u == 0 || e.v == 0) continue;
    hb.add_edge(e.u - 1, e.v - 1);
  }
  const Graph h_sub = hb.build();
  EXPECT_EQ(connected_components(h_sub).count, connected_components(sub_g.graph).count);
}

}  // namespace
}  // namespace remspan
