// Distributed RemSpan protocol: the distributed union must equal the
// centralized construction edge-for-edge, within the paper's round budget.
#include <gtest/gtest.h>

#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "sim/remspan_protocol.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph test_graph(int which, std::uint64_t seed) {
  Rng rng(seed);
  switch (which % 4) {
    case 0:
      return connected_gnp(35, 0.15, rng);
    case 1:
      return grid_graph(6, 6);
    case 2: {
      const auto gg = uniform_unit_ball_graph(60, 4.0, 2, rng);
      const auto comps = connected_components(gg.graph);
      return induced_subgraph(gg.graph, comps.largest()).graph;
    }
    default:
      return cycle_graph(20);
  }
}

TEST(RemSpanProtocol, KConnGreedyMatchesCentralized) {
  for (int which = 0; which < 4; ++which) {
    const Graph g = test_graph(which, 500 + static_cast<std::uint64_t>(which));
    for (const Dist k : {1u, 2u}) {
      RemSpanConfig cfg;
      cfg.kind = RemSpanConfig::Kind::kKConnGreedy;
      cfg.k = k;
      const auto dist = run_remspan_distributed(g, cfg);
      const EdgeSet central = build_k_connecting_spanner(g, k);
      EXPECT_EQ(dist.spanner, central) << "graph=" << which << " k=" << k;
    }
  }
}

TEST(RemSpanProtocol, KConnMisMatchesCentralized) {
  for (int which = 0; which < 4; ++which) {
    const Graph g = test_graph(which, 600 + static_cast<std::uint64_t>(which));
    RemSpanConfig cfg;
    cfg.kind = RemSpanConfig::Kind::kKConnMis;
    cfg.k = 2;
    const auto dist = run_remspan_distributed(g, cfg);
    const EdgeSet central = build_2connecting_spanner(g, 2);
    EXPECT_EQ(dist.spanner, central) << "graph=" << which;
  }
}

TEST(RemSpanProtocol, LowStretchGreedyMatchesCentralized) {
  for (int which = 0; which < 4; ++which) {
    const Graph g = test_graph(which, 700 + static_cast<std::uint64_t>(which));
    for (const Dist r : {2u, 3u}) {
      RemSpanConfig cfg;
      cfg.kind = RemSpanConfig::Kind::kLowStretchGreedy;
      cfg.r = r;
      cfg.beta = 1;
      const auto dist = run_remspan_distributed(g, cfg);
      const EdgeSet central = build_remote_spanner(g, r, 1, TreeAlgorithm::kGreedy);
      EXPECT_EQ(dist.spanner, central) << "graph=" << which << " r=" << r;
    }
  }
}

TEST(RemSpanProtocol, LowStretchMisMatchesCentralized) {
  for (int which = 0; which < 4; ++which) {
    const Graph g = test_graph(which, 800 + static_cast<std::uint64_t>(which));
    RemSpanConfig cfg;
    cfg.kind = RemSpanConfig::Kind::kLowStretchMis;
    cfg.r = 3;
    const auto dist = run_remspan_distributed(g, cfg);
    const EdgeSet central = build_remote_spanner(g, 3, 1, TreeAlgorithm::kMis);
    EXPECT_EQ(dist.spanner, central) << "graph=" << which;
  }
}

TEST(RemSpanProtocol, RoundCountMatchesPaperFormula) {
  // 2r - 1 + 2*beta rounds (Section 2.3), independent of n.
  for (const NodeId n : {20u, 60u}) {
    const Graph g = cycle_graph(n);
    {
      RemSpanConfig cfg;
      cfg.kind = RemSpanConfig::Kind::kKConnGreedy;  // r=2, beta=0 -> 3 rounds
      const auto run = run_remspan_distributed(g, cfg);
      EXPECT_EQ(run.rounds, 3u) << "n=" << n;
      EXPECT_EQ(run.rounds, cfg.expected_rounds());
    }
    {
      RemSpanConfig cfg;
      cfg.kind = RemSpanConfig::Kind::kLowStretchGreedy;  // 2r-1+2b
      cfg.r = 4;
      cfg.beta = 1;
      const auto run = run_remspan_distributed(g, cfg);
      EXPECT_EQ(run.rounds, 2u * 4u - 1u + 2u) << "n=" << n;
      EXPECT_EQ(run.rounds, cfg.expected_rounds());
    }
  }
}

TEST(RemSpanProtocol, TopologyKnowledgeIsLocal) {
  // With scope s, a node must only know neighbor lists of nodes within
  // distance s — the protocol is local, the paper's key selling point.
  const Graph g = path_graph(12);
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kLowStretchGreedy;
  cfg.r = 3;
  cfg.beta = 1;  // scope 3
  Network net(g, [&cfg](NodeId) { return std::make_unique<RemSpanProtocol>(cfg); });
  net.run(cfg.expected_rounds() + 2);
  const auto& p0 = dynamic_cast<const RemSpanProtocol&>(net.node(0));
  for (const auto& [origin, list] : p0.topology_knowledge()) {
    EXPECT_LE(origin, 3u);  // on a path, distance = id difference
  }
  // And it must know all of them (1..3; its own list comes from HELLOs).
  EXPECT_EQ(p0.topology_knowledge().size(), 3u);
}

TEST(RemSpanProtocol, MessageCountScalesWithScopeTimesN) {
  // Each node originates 2 floods of scope s: total transmissions are
  // O(n * ball(s)) on bounded-degree graphs — here we just check the exact
  // budget on a cycle: hello (n) + 2 floods, each forwarded by every node
  // within distance s-1... measured empirically and stable.
  const Graph g = cycle_graph(30);
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kKConnGreedy;  // scope 1: no forwarding
  const auto run = run_remspan_distributed(g, cfg);
  // hello 30 + neighbor lists 30 + trees 30 = 90 transmissions exactly.
  EXPECT_EQ(run.stats.transmissions, 90u);
}

TEST(RemSpanProtocol, StretchOfDistributedResult) {
  const Graph g = test_graph(0, 900);
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kLowStretchMis;
  cfg.r = 3;
  const auto run = run_remspan_distributed(g, cfg);
  const Stretch s = stretch_for_radius(3);
  EXPECT_TRUE(check_remote_stretch(g, run.spanner, s).satisfied);
}

TEST(RemSpanProtocol, RestabilizesAfterTopologyChange) {
  // Run on g1, then rerun fresh protocols on g2 (periodic re-advertisement
  // in OLSR terms): result equals centralized on g2.
  Rng rng(901);
  const Graph g2 = connected_gnp(30, 0.15, rng);
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kKConnGreedy;
  cfg.k = 1;
  const auto run2 = run_remspan_distributed(g2, cfg);
  EXPECT_EQ(run2.spanner, build_k_connecting_spanner(g2, 1));
}

}  // namespace
}  // namespace remspan
