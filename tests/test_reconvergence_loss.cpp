// Convergence under loss — the contract of reconvergence.hpp: for any
// channel whose per-copy delivery probability is bounded away from zero
// (iid drop p < 1, Gilbert–Elliott bursts, bounded delay jitter, finitely
// scripted adversarial schedules), the reliable protocol variant reaches,
// at quiescence, the bit-exact per-node state of the lossless run — the
// global spanner, every node's advertised tree, and every node's scope-ball
// lists and tree views. Loss and delay cost rounds and messages, never
// correctness. All runs are seeded: these are deterministic regression
// tests, not statistical ones.
#include <gtest/gtest.h>

#include <string>

#include "api/registry.hpp"
#include "dynamic/churn_trace.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "sim/reconvergence.hpp"
#include "sim/remspan_protocol.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

RemSpanConfig make_config(RemSpanConfig::Kind kind, Dist r = 2, Dist beta = 1, Dist k = 1) {
  RemSpanConfig cfg;
  cfg.kind = kind;
  cfg.r = r;
  cfg.beta = beta;
  cfg.k = k;
  return cfg;
}

FaultConfig iid_faults(double drop, std::uint32_t delay = 0, std::uint32_t jitter = 0,
                       std::uint64_t seed = 1) {
  FaultConfig f;
  f.link.drop = drop;
  f.link.delay = delay;
  f.link.jitter = jitter;
  f.link.seed = seed;
  return f;
}

/// The lossy run must agree with the lossless reference on everything
/// observable: the global spanner, per-node advertised trees, and per-node
/// scope-ball knowledge (lists and tree views).
void expect_same_converged_state(ReconvergenceSim& lossy, ReconvergenceSim& lossless,
                                 const std::string& context) {
  ASSERT_EQ(lossy.graph().num_nodes(), lossless.graph().num_nodes()) << context;
  ASSERT_EQ(lossy.graph().num_edges(), lossless.graph().num_edges()) << context;
  ASSERT_EQ(lossy.spanner().edge_list(), lossless.spanner().edge_list()) << context;
  for (NodeId v = 0; v < lossy.graph().num_nodes(); ++v) {
    ASSERT_EQ(lossy.node_tree(v), lossless.node_tree(v)) << context << " node " << v;
    ASSERT_EQ(lossy.node_ball_lists(v), lossless.node_ball_lists(v))
        << context << " node " << v;
    ASSERT_EQ(lossy.node_ball_trees(v), lossless.node_ball_trees(v))
        << context << " node " << v;
  }
}

/// Replays `trace` twice — over the faulted channel and over the lossless
/// LOCAL channel — and asserts bit-exact converged state after the cold
/// start and after every batch.
void replay_and_compare_to_lossless(const ChurnTrace& trace, const RemSpanConfig& cfg,
                                    const FaultConfig& faults, const std::string& label,
                                    ReconvergeStrategy strategy = ReconvergeStrategy::kIncremental) {
  const Graph initial = trace.initial_graph();
  ReconvergenceSim lossless(initial, cfg, strategy);
  ReconvergenceSim lossy(initial, cfg, strategy, faults);
  expect_same_converged_state(lossy, lossless, label + " initial");
  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    const auto lossy_stats = lossy.apply_batch(trace.batches[b]);
    const auto lossless_stats = lossless.apply_batch(trace.batches[b]);
    const std::string context = label + " batch " + std::to_string(b);
    ASSERT_EQ(lossy_stats.inserted_edges, lossless_stats.inserted_edges) << context;
    ASSERT_EQ(lossy_stats.removed_edges, lossless_stats.removed_edges) << context;
    expect_same_converged_state(lossy, lossless, context);
  }
}

TEST(ReconvergenceLoss, IidLossSweepConvergesBitExactOnThreeFamilies) {
  Rng rng(31);
  const Graph gnp = connected_gnp(48, 0.12, rng);
  const auto udg = largest_component(uniform_unit_ball_graph(60, 3.8, 2, rng));
  const Graph grid = grid_graph(6, 6);

  struct FamilyCase {
    std::string name;
    ChurnTrace trace;
    RemSpanConfig cfg;
  };
  const FamilyCase families[] = {
      {"gnp", random_edge_churn_trace(gnp, 3, 4, 0.2, 101),
       make_config(RemSpanConfig::Kind::kKConnGreedy)},
      {"udg", mobility_churn_trace(udg, 3, 2, 102),
       make_config(RemSpanConfig::Kind::kKConnMis, 2, 1, 2)},
      {"grid", random_edge_churn_trace(grid, 3, 3, 0.0, 103),
       make_config(RemSpanConfig::Kind::kLowStretchMis, 3)},
  };
  // p = 0 rides the lossless fast path (faulty() == false) and pins that a
  // zero config changes nothing; the positive rates exercise the reliable
  // retransmit/backoff/quiescence machinery.
  for (const double p : {0.0, 0.05, 0.2, 0.5}) {
    for (const FamilyCase& fam : families) {
      replay_and_compare_to_lossless(fam.trace, fam.cfg, iid_faults(p, 0, 0, 7),
                                     fam.name + " p=" + std::to_string(p));
    }
  }
}

TEST(ReconvergenceLoss, DelayJitterConvergesBitExact) {
  // Reordered late copies (a round-i flood arriving after a round-i+2
  // recompute's flood) must be discarded by the monotone version
  // acceptance, never regress state.
  Rng rng(32);
  const Graph g = connected_gnp(44, 0.13, rng);
  const ChurnTrace trace = random_edge_churn_trace(g, 3, 4, 0.2, 104);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);
  for (const std::uint32_t jitter : {0u, 1u, 3u}) {
    for (const double p : {0.05, 0.2, 0.5}) {
      replay_and_compare_to_lossless(
          trace, cfg, iid_faults(p, /*delay=*/jitter == 0 ? 2 : 0, jitter, 8),
          "jitter=" + std::to_string(jitter) + " p=" + std::to_string(p));
    }
  }
}

TEST(ReconvergenceLoss, GilbertElliottBurstLossConvergesBitExact) {
  Rng rng(33);
  const auto udg = largest_component(uniform_unit_ball_graph(55, 3.6, 2, rng));
  const ChurnTrace trace = mobility_churn_trace(udg, 3, 2, 105);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);
  for (const auto& [loss, burst] : {std::pair{0.2, 4.0}, std::pair{0.5, 8.0}}) {
    FaultConfig faults;
    faults.link.burst = GilbertElliott::from_loss_and_burst(loss, burst);
    faults.link.seed = 9;
    replay_and_compare_to_lossless(
        trace, cfg, faults,
        "burst loss=" + std::to_string(loss) + " len=" + std::to_string(burst));
  }
}

TEST(ReconvergenceLoss, AdversarialPartitionWindowConvergesBitExact) {
  // Schedule 1: black out the cut between the first half of the node set
  // and the rest for the first seven rounds of every epoch. Once the window
  // lapses, periodic re-advertisement heals both sides.
  Rng rng(34);
  const Graph g = connected_gnp(40, 0.15, rng);
  const ChurnTrace trace = random_edge_churn_trace(g, 3, 4, 0.2, 106);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);

  FaultConfig faults;
  PartitionWindow window;
  for (NodeId v = 0; v < g.num_nodes() / 2; ++v) window.side.push_back(v);
  window.from_round = 1;
  window.until_round = 8;
  faults.link.partitions.push_back(window);
  replay_and_compare_to_lossless(trace, cfg, faults, "partition [1,8)");

  // Partition plus background iid loss — the schedules compose.
  faults.link.drop = 0.1;
  faults.link.seed = 10;
  replay_and_compare_to_lossless(trace, cfg, faults, "partition [1,8) + p=0.1");
}

TEST(ReconvergenceLoss, AdversarialKillAndAttritionConvergeBitExact) {
  // Schedule 2: assassinate specific initial floods (origin 0's first list
  // flood, origin 1's first tree flood) and drop every 4th delivery attempt
  // globally. Retransmissions carry fresh seqs, so the kills cost rounds,
  // not correctness.
  Rng rng(35);
  const Graph g = connected_gnp(40, 0.15, rng);
  const ChurnTrace trace = random_edge_churn_trace(g, 3, 4, 0.2, 107);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);

  FaultConfig faults;
  faults.link.kills.push_back(FloodKill{0, 0});
  faults.link.kills.push_back(FloodKill{1, 1});
  faults.link.drop_every_nth = 4;
  replay_and_compare_to_lossless(trace, cfg, faults, "kills + every-4th");
}

TEST(ReconvergenceLoss, FullRefloodStrategyAlsoConvergesUnderLoss) {
  // The convergence-under-loss contract is strategy-independent: the
  // cold-start strawman must reach the lossless strawman's state too.
  Rng rng(36);
  const Graph g = connected_gnp(36, 0.15, rng);
  const ChurnTrace trace = random_edge_churn_trace(g, 2, 4, 0.2, 108);
  replay_and_compare_to_lossless(trace, make_config(RemSpanConfig::Kind::kKConnGreedy),
                                 iid_faults(0.2, 0, 1, 11), "reflood p=0.2",
                                 ReconvergeStrategy::kFullReflood);
}

TEST(ReconvergenceLoss, LossyRunsAreDeterministicForFixedSeed) {
  // Same seed + same LinkModel config => bit-identical per-batch stats
  // (including drop/delay accounting and rounds-to-quiescence) and state.
  // This is lint rule R5's determinism bar extended to the fault RNG path.
  Rng rng(37);
  const auto udg = largest_component(uniform_unit_ball_graph(50, 3.6, 2, rng));
  const ChurnTrace trace = mobility_churn_trace(udg, 3, 2, 109);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);
  const FaultConfig faults = iid_faults(0.3, 1, 2, 12);

  ReconvergenceSim a(udg.graph, cfg, ReconvergeStrategy::kIncremental, faults);
  ReconvergenceSim b(udg.graph, cfg, ReconvergeStrategy::kIncremental, faults);
  EXPECT_EQ(a.initial_stats().rounds, b.initial_stats().rounds);
  EXPECT_EQ(a.initial_stats().drops, b.initial_stats().drops);
  EXPECT_EQ(a.initial_stats().delayed, b.initial_stats().delayed);
  EXPECT_EQ(a.initial_stats().transmissions, b.initial_stats().transmissions);
  for (std::size_t i = 0; i < trace.batches.size(); ++i) {
    const auto sa = a.apply_batch(trace.batches[i]);
    const auto sb = b.apply_batch(trace.batches[i]);
    EXPECT_EQ(sa.rounds, sb.rounds) << i;
    EXPECT_EQ(sa.transmissions, sb.transmissions) << i;
    EXPECT_EQ(sa.receptions, sb.receptions) << i;
    EXPECT_EQ(sa.payload_words, sb.payload_words) << i;
    EXPECT_EQ(sa.wire_bytes, sb.wire_bytes) << i;
    EXPECT_EQ(sa.drops, sb.drops) << i;
    EXPECT_EQ(sa.delayed, sb.delayed) << i;
    EXPECT_EQ(sa.advertising_nodes, sb.advertising_nodes) << i;
    EXPECT_EQ(sa.spanner_edges, sb.spanner_edges) << i;
    EXPECT_EQ(a.spanner().edge_list(), b.spanner().edge_list()) << i;
  }
}

TEST(ReconvergenceLoss, LossCostsRoundsNotCorrectness) {
  // The observable price of loss: more rounds and more messages than the
  // exact lossless schedule, with a nonzero drop account — never a
  // different spanner.
  Rng rng(38);
  const Graph g = connected_gnp(40, 0.15, rng);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);

  ReconvergenceSim lossless(g, cfg, ReconvergeStrategy::kIncremental);
  ReconvergenceSim lossy(g, cfg, ReconvergeStrategy::kIncremental, iid_faults(0.3, 0, 0, 13));
  EXPECT_EQ(lossless.initial_stats().rounds, cfg.expected_rounds());
  EXPECT_GT(lossy.initial_stats().rounds, lossless.initial_stats().rounds);
  EXPECT_GT(lossy.initial_stats().transmissions, lossless.initial_stats().transmissions);
  EXPECT_GT(lossy.initial_stats().drops, 0u);
  EXPECT_EQ(lossy.spanner().edge_list(), lossless.spanner().edge_list());
}

TEST(ReconvergenceLoss, DistributedRunUnderLossMatchesLosslessSpanner) {
  // The one-shot driver (run_remspan_distributed) under faults: the
  // reliable RemSpanProtocol variant must union to the identical spanner.
  Rng rng(39);
  const Graph g = connected_gnp(42, 0.14, rng);
  for (const RemSpanConfig& cfg : {make_config(RemSpanConfig::Kind::kKConnGreedy),
                                   make_config(RemSpanConfig::Kind::kLowStretchMis, 3),
                                   make_config(RemSpanConfig::Kind::kOlsrMpr)}) {
    const auto lossless = run_remspan_distributed(g, cfg);
    for (const double p : {0.05, 0.3}) {
      const auto lossy = run_remspan_distributed(g, cfg, iid_faults(p, 0, 1, 14));
      EXPECT_EQ(lossy.spanner.edge_list(), lossless.spanner.edge_list())
          << cfg.kind_name() << " p=" << p;
      EXPECT_GE(lossy.rounds, lossless.rounds) << cfg.kind_name();
      EXPECT_GT(lossy.stats.drops, 0u) << cfg.kind_name();
    }
  }
}

TEST(ReconvergenceLoss, SessionOpenedBySpecCarriesFaultsAndMeetsGuarantee) {
  // The api layer: loss parameters reach ReconvergenceSim sessions opened
  // by spec string, and the converged post-loss spanner still satisfies the
  // registry's stretch guarantee under the sampled exact oracle — quality,
  // not only bit-equality.
  Rng rng(40);
  const auto udg = largest_component(uniform_unit_ball_graph(60, 3.8, 2, rng));
  const ChurnTrace trace = mobility_churn_trace(udg, 3, 2, 110);
  const api::SpannerSpec spec = api::SpannerSpec::th2(1);

  const auto lossless =
      api::open_reconvergence_session(udg.graph, spec, ReconvergeStrategy::kIncremental);
  const auto lossy = api::open_reconvergence_session(
      udg.graph, spec, ReconvergeStrategy::kIncremental, iid_faults(0.2, 0, 2, 15));
  EXPECT_TRUE(lossy->faults().faulty());
  for (const auto& batch : trace.batches) {
    lossy->apply_batch(batch);
    lossless->apply_batch(batch);
  }
  EXPECT_EQ(lossy->spanner().edge_list(), lossless->spanner().edge_list());
  EXPECT_EQ(lossy->spanner().edge_list(),
            api::build_spanner(lossy->graph(), spec).edges.edge_list());

  const api::VerifyFn oracle = api::make_verifier(spec);
  ASSERT_NE(oracle, nullptr);
  api::VerifyOptions opts;
  opts.sample_pairs = 200;
  opts.seed = 5;
  const api::VerifyReport report = oracle(lossy->graph(), lossy->spanner(), opts);
  EXPECT_TRUE(report.satisfied);
  EXPECT_GE(report.max_ratio, 1.0);
}

}  // namespace
}  // namespace remspan
