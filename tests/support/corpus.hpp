// The shared random-graph corpus of the equivalence suites. Every suite
// that pins bit-exactness (domtree hot path, incremental maintenance,
// observability no-feedback, shard invariance) sweeps the same families,
// seeds and parameter grids, so the corpus lives here once instead of
// drifting apart across test files.
//
// Determinism conventions (docs/TESTING.md): every graph is a pure
// function of (family, seed) — generators draw from an explicitly seeded
// Rng and never from ambient randomness — so a failure reproduces from the
// test's printed label alone.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/incremental_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan::testsupport {

/// Families of equivalence_family(): each exercises a different ball
/// geometry (sparse/dense Gnp, grid, unit-ball, hypercube, bipartite).
inline constexpr int kNumEquivalenceFamilies = 6;

/// The static-equivalence corpus (domtree and shard suites): small graphs
/// whose full family x seed x parameter sweep stays tier-1 fast.
inline Graph equivalence_family(int which, std::uint64_t seed) {
  Rng rng(seed);
  switch (which % kNumEquivalenceFamilies) {
    case 0:
      return connected_gnp(48, 0.10, rng);
    case 1:
      return grid_graph(8, 6);
    case 2:
      return connected_gnp(30, 0.25, rng);  // dense: big shells, heavy covers
    case 3: {
      const auto gg = uniform_unit_ball_graph(70, 5.0, 2, rng);
      const auto comps = connected_components(gg.graph);
      return induced_subgraph(gg.graph, comps.largest()).graph;
    }
    case 4:
      return hypercube_graph(5);
    default:
      return complete_bipartite(6, 8);
  }
}

/// Families of churn_family(): larger graphs for the dynamic-maintenance
/// sweeps (>= 3 per the PR-3 acceptance criteria; each a different ball
/// geometry).
inline constexpr int kNumChurnFamilies = 3;

inline Graph churn_family(int family, std::uint64_t seed) {
  Rng rng(seed);
  switch (family % kNumChurnFamilies) {
    case 0:
      return connected_gnp(90, 0.06, rng);
    case 1: {
      const auto gg = largest_component(uniform_unit_ball_graph(110, 5.5, 2, rng));
      return gg.graph;
    }
    default:
      return watts_strogatz(100, 6, 0.1, rng);
  }
}

/// A mid-size UDG largest component: the single-graph corpus of suites
/// that need one realistic topology rather than a family sweep (obs).
inline Graph observability_graph(std::uint64_t seed) {
  Rng rng(seed);
  const auto gg = random_unit_disk_graph(5.0, 160, rng);
  return largest_component(gg.graph);
}

// Parameter grids of the per-algorithm sweeps. The suites iterate these
// instead of inlining literals so every equivalence harness proves the
// same parameter space.
inline constexpr Dist kGreedyRadii[] = {2, 3, 4};
inline constexpr Dist kGreedyBetas[] = {0, 1, 2};
inline constexpr Dist kMisRadii[] = {2, 3, 5};
inline constexpr Dist kGreedyKs[] = {1, 2, 3, 5};
inline constexpr Dist kMisKs[] = {1, 2, 3};

/// The incremental-maintenance construction sweep: one config per
/// construction family the dynamic engine supports.
inline std::vector<IncrementalConfig> incremental_sweep_configs() {
  return {
      IncrementalConfig::k_connecting(1),
      IncrementalConfig::k_connecting(2),
      IncrementalConfig::two_connecting(2),
      IncrementalConfig::r_beta_tree(3, 1, TreeAlgorithm::kGreedy),
      IncrementalConfig::r_beta_tree(2, 0, TreeAlgorithm::kGreedy),
      IncrementalConfig::low_stretch(0.5, TreeAlgorithm::kMis),
  };
}

}  // namespace remspan::testsupport
