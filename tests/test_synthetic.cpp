// Structural invariants of the synthetic generators.
#include <gtest/gtest.h>

#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/distances.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(Synthetic, PathAndCycle) {
  const Graph p = path_graph(5);
  EXPECT_EQ(p.num_edges(), 4u);
  const Graph c = cycle_graph(5);
  EXPECT_EQ(c.num_edges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);
}

TEST(Synthetic, GridStructure) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  // Corner degree 2, middle degree 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(Synthetic, HypercubeStructure) {
  const Graph g = hypercube_graph(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  const DistanceMatrix dm = all_pairs_distances(GraphView(g));
  EXPECT_EQ(dm(0, 15), 4u);  // Hamming distance
}

TEST(Synthetic, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Synthetic, StarGraph) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Synthetic, RandomTreeIsTree) {
  Rng rng(31);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = random_tree(40, rng);
    EXPECT_EQ(g.num_edges(), 39u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Synthetic, GnpEdgeCountConcentrates) {
  Rng rng(33);
  const NodeId n = 200;
  const double p = 0.05;
  double total = 0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) total += static_cast<double>(gnp(n, p, rng).num_edges());
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / reps, expected, 0.08 * expected);
}

TEST(Synthetic, GnpExtremes) {
  Rng rng(35);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Synthetic, GnpProducesValidPairsOnly) {
  Rng rng(37);
  const Graph g = gnp(64, 0.1, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 64u);
  }
}

TEST(Synthetic, ConnectedGnpIsConnected) {
  Rng rng(39);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = connected_gnp(60, 0.06, rng);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Synthetic, ThetaGraphShape) {
  const Graph g = theta_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 2u + 3u * 3u);
  EXPECT_EQ(g.num_edges(), 3u * 4u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 3u);
  const DistanceMatrix dm = all_pairs_distances(GraphView(g));
  EXPECT_EQ(dm(0, 1), 4u);
}

TEST(Components, SplitGraphFound) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();  // node 5 isolated
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
  const auto largest = comps.largest();
  EXPECT_EQ(largest, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Components, InducedSubgraphRemaps) {
  GraphBuilder b(6);
  b.add_edge(0, 2);
  b.add_edge(2, 4);
  b.add_edge(1, 3);
  const Graph g = b.build();
  const auto sub = induced_subgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));  // old 0-2
  EXPECT_TRUE(sub.graph.has_edge(1, 2));  // old 2-4
  EXPECT_EQ(sub.original_id[1], 2u);
}

TEST(Connectivity, VertexConnectivityOnThetaGraph) {
  const Graph g = theta_graph(4, 3);
  EXPECT_EQ(vertex_connectivity(g, 0, 1), 4u);
  EXPECT_EQ(vertex_connectivity(g, 0, 1, 2), 2u);  // capped
}

}  // namespace
}  // namespace remspan
