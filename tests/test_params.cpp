// The eps <-> (r, beta) correspondence of Proposition 1 and the stretch
// arithmetic used throughout.
#include <gtest/gtest.h>

#include "core/params.hpp"

namespace remspan {
namespace {

TEST(Params, RadiusForEps) {
  EXPECT_EQ(domination_radius_for_eps(1.0), 2u);    // ceil(1/1)+1
  EXPECT_EQ(domination_radius_for_eps(0.5), 3u);    // ceil(2)+1
  EXPECT_EQ(domination_radius_for_eps(0.4), 4u);    // ceil(2.5)+1
  EXPECT_EQ(domination_radius_for_eps(1.0 / 3), 4u);
  EXPECT_EQ(domination_radius_for_eps(0.25), 5u);
  EXPECT_EQ(domination_radius_for_eps(0.1), 11u);
}

TEST(Params, RadiusRejectsBadEps) {
  EXPECT_THROW((void)domination_radius_for_eps(0.0), CheckError);
  EXPECT_THROW((void)domination_radius_for_eps(-1.0), CheckError);
  EXPECT_THROW((void)domination_radius_for_eps(1.5), CheckError);
}

TEST(Params, EffectiveEpsIsAtMostRequested) {
  for (const double eps : {1.0, 0.7, 0.5, 0.33, 0.2, 0.125}) {
    const Dist r = domination_radius_for_eps(eps);
    EXPECT_LE(effective_eps(r), eps + 1e-12) << "eps=" << eps;
  }
}

TEST(Params, EffectiveEpsRoundTripOnExactValues) {
  // For eps = 1/q the correspondence is exact.
  for (int q = 1; q <= 8; ++q) {
    const double eps = 1.0 / q;
    const Dist r = domination_radius_for_eps(eps);
    EXPECT_DOUBLE_EQ(effective_eps(r), eps);
  }
}

TEST(Params, StretchForRadius) {
  const Stretch s2 = stretch_for_radius(2);  // eps' = 1 -> (2, -1)
  EXPECT_DOUBLE_EQ(s2.alpha, 2.0);
  EXPECT_DOUBLE_EQ(s2.beta, -1.0);
  const Stretch s3 = stretch_for_radius(3);  // eps' = 1/2 -> (1.5, 0)
  EXPECT_DOUBLE_EQ(s3.alpha, 1.5);
  EXPECT_DOUBLE_EQ(s3.beta, 0.0);
}

TEST(Params, StretchBoundArithmetic) {
  const Stretch s{1.5, 0.5};
  EXPECT_DOUBLE_EQ(s.bound(2), 3.5);
  EXPECT_DOUBLE_EQ(s.bound(0), 0.5);
}

TEST(Params, KConnectingBoundScalesBetaByK) {
  const Stretch s{2.0, -1.0};
  EXPECT_DOUBLE_EQ(k_connecting_bound(s, 10, 2), 18.0);  // 2*10 + 2*(-1)
  EXPECT_DOUBLE_EQ(k_connecting_bound(s, 10, 1), 19.0);
}

TEST(Params, DistAddSaturates) {
  EXPECT_EQ(dist_add(3, 4), 7u);
  EXPECT_EQ(dist_add(kUnreachable, 1), kUnreachable);
  EXPECT_EQ(dist_add(1, kUnreachable), kUnreachable);
  EXPECT_EQ(dist_add(kUnreachable, kUnreachable), kUnreachable);
}

}  // namespace
}  // namespace remspan
