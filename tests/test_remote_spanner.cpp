// Remote-spanner builders (Theorems 1-3 front-ends) validated end-to-end
// with the exact oracles.
#include <gtest/gtest.h>

#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph connected_ubg(std::size_t n, double side, Rng& rng) {
  const auto gg = uniform_unit_ball_graph(n, side, 2, rng);
  const auto comps = connected_components(gg.graph);
  return induced_subgraph(gg.graph, comps.largest()).graph;
}

TEST(RemoteSpanner, Theorem1StretchHoldsOnRandomGraphs) {
  Rng rng(301);
  for (const double eps : {1.0, 0.5, 1.0 / 3.0}) {
    for (int rep = 0; rep < 3; ++rep) {
      const Graph g = connected_gnp(45, 0.12, rng);
      for (const auto algo : {TreeAlgorithm::kGreedy, TreeAlgorithm::kMis}) {
        const EdgeSet h = build_low_stretch_remote_spanner(g, eps, algo);
        const auto report =
            check_remote_stretch(g, h, Stretch{1.0 + eps, 1.0 - 2.0 * eps});
        EXPECT_TRUE(report.satisfied)
            << "eps=" << eps << " rep=" << rep
            << " algo=" << (algo == TreeAlgorithm::kGreedy ? "greedy" : "mis")
            << " worst=(" << report.worst_u << "," << report.worst_v
            << ") dg=" << report.worst_dg << " dhu=" << report.worst_dhu;
      }
    }
  }
}

TEST(RemoteSpanner, Theorem1StretchHoldsOnUbg) {
  Rng rng(303);
  const Graph g = connected_ubg(120, 5.0, rng);
  for (const double eps : {1.0, 0.5}) {
    const EdgeSet h = build_low_stretch_remote_spanner(g, eps);
    const auto report = check_remote_stretch(g, h, Stretch{1.0 + eps, 1.0 - 2.0 * eps});
    EXPECT_TRUE(report.satisfied) << "eps=" << eps;
  }
}

TEST(RemoteSpanner, Theorem1EpsOneIsTwoMinusOneSpanner) {
  // eps = 1: the (2,-1)-remote-spanner of Proposition 1's r = 2 case.
  Rng rng(305);
  const Graph g = connected_gnp(40, 0.15, rng);
  const EdgeSet h = build_low_stretch_remote_spanner(g, 1.0);
  const auto report = check_remote_stretch(g, h, Stretch{2.0, -1.0});
  EXPECT_TRUE(report.satisfied);
}

TEST(RemoteSpanner, Theorem2ExactDistancesForK1) {
  // k = 1: a (1,0)-remote-spanner preserves every remote distance exactly.
  Rng rng(307);
  for (int rep = 0; rep < 4; ++rep) {
    const Graph g = connected_gnp(40, 0.15, rng);
    const EdgeSet h = build_k_connecting_spanner(g, 1);
    const auto report = check_remote_stretch(g, h, Stretch{1.0, 0.0});
    EXPECT_TRUE(report.satisfied)
        << "rep=" << rep << " worst=(" << report.worst_u << "," << report.worst_v
        << ") dg=" << report.worst_dg << " dhu=" << report.worst_dhu;
    EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
  }
}

TEST(RemoteSpanner, Theorem2KConnectingStretch) {
  Rng rng(309);
  for (const Dist k : {1u, 2u, 3u}) {
    const Graph g = connected_gnp(24, 0.25, rng);
    const EdgeSet h = build_k_connecting_spanner(g, k);
    const auto report =
        check_k_connecting_stretch(g, h, k, Stretch{1.0, 0.0}, /*max_pairs=*/120);
    EXPECT_TRUE(report.satisfied)
        << "k=" << k << " losses=" << report.connectivity_losses
        << " worst=(" << report.worst_s << "," << report.worst_t << ") k'="
        << report.worst_kprime;
  }
}

TEST(RemoteSpanner, Theorem2OnThetaGraphsKeepsAllPaths) {
  for (const Dist k : {2u, 3u, 4u}) {
    const Graph g = theta_graph(k, 2);
    const EdgeSet h = build_k_connecting_spanner(g, k);
    const auto report = check_k_connecting_stretch(g, h, k, Stretch{1.0, 0.0});
    EXPECT_TRUE(report.satisfied) << "k=" << k;
    // Every edge of the theta graph is needed: the spanner must be G itself.
    EXPECT_EQ(h.size(), g.num_edges());
  }
}

TEST(RemoteSpanner, Theorem3TwoConnectingStretch) {
  Rng rng(311);
  for (int rep = 0; rep < 3; ++rep) {
    const Graph g = connected_gnp(22, 0.3, rng);
    const EdgeSet h = build_2connecting_spanner(g, 2);
    const auto report =
        check_k_connecting_stretch(g, h, 2, Stretch{2.0, -1.0}, /*max_pairs=*/150);
    EXPECT_TRUE(report.satisfied)
        << "rep=" << rep << " losses=" << report.connectivity_losses << " worst=("
        << report.worst_s << "," << report.worst_t << ")";
  }
}

TEST(RemoteSpanner, Theorem3OnUbg) {
  Rng rng(313);
  const Graph g = connected_ubg(90, 4.0, rng);
  const EdgeSet h = build_2connecting_spanner(g, 2);
  const auto report = check_k_connecting_stretch(g, h, 2, Stretch{2.0, -1.0},
                                                 /*max_pairs=*/200);
  EXPECT_TRUE(report.satisfied);
}

TEST(RemoteSpanner, SparserThanInputOnDenseGraphs) {
  Rng rng(315);
  const Graph g = connected_ubg(250, 4.0, rng);
  const EdgeSet h1 = build_k_connecting_spanner(g, 1);
  EXPECT_LT(h1.size(), g.num_edges() / 2);
  const EdgeSet h_eps = build_low_stretch_remote_spanner(g, 0.5);
  EXPECT_LT(h_eps.size(), g.num_edges() / 2);
}

TEST(RemoteSpanner, MonotoneInK) {
  Rng rng(317);
  const Graph g = connected_gnp(40, 0.2, rng);
  std::size_t prev = 0;
  for (const Dist k : {1u, 2u, 3u, 4u}) {
    const EdgeSet h = build_k_connecting_spanner(g, k);
    EXPECT_GE(h.size(), prev) << "k=" << k;
    prev = h.size();
  }
}

TEST(RemoteSpanner, DenserForSmallerEps) {
  Rng rng(319);
  const Graph g = connected_ubg(200, 5.0, rng);
  const std::size_t loose = build_low_stretch_remote_spanner(g, 1.0).size();
  const std::size_t tight = build_low_stretch_remote_spanner(g, 0.25).size();
  EXPECT_GE(tight, loose);
}

TEST(RemoteSpanner, BuildInfoPopulated) {
  Rng rng(321);
  const Graph g = connected_gnp(30, 0.2, rng);
  SpannerBuildInfo info;
  const EdgeSet h = build_k_connecting_spanner(g, 2, &info);
  EXPECT_GT(info.sum_tree_edges, 0u);
  EXPECT_GT(info.max_tree_edges, 0u);
  EXPECT_GE(info.sum_tree_edges, info.max_tree_edges);
  EXPECT_GE(info.sum_tree_edges, h.size());  // union dedupes shared edges
}

TEST(RemoteSpanner, CompleteGraphNeedsOnlyStars) {
  // In K_n every pair is adjacent: no distance-2 shells, so every
  // dominating tree is trivial and the spanner is empty — and that is
  // correct, H_u = star(u) already preserves all distances.
  const Graph g = complete_graph(8);
  const EdgeSet h = build_k_connecting_spanner(g, 2);
  EXPECT_EQ(h.size(), 0u);
  const auto report = check_remote_stretch(g, h, Stretch{1.0, 0.0});
  EXPECT_TRUE(report.satisfied);
}

TEST(RemoteSpanner, RecordedParentEdgeIdsMatchAdjacencySearch) {
  // union_of_trees consumes the parent edge ids the builders record at
  // attach time instead of calling Graph::find_edge per tree edge; the two
  // must agree on every tree any of the four algorithms produces.
  Rng rng(323);
  const Graph g = connected_ubg(80, 4.0, rng);
  DomTreeBuilder builder(g);
  const auto check_tree = [&](const RootedTree& tree, const char* algo) {
    for (const NodeId v : tree.nodes()) {
      if (v == tree.root()) {
        EXPECT_EQ(tree.parent_edge(v), kInvalidEdge) << algo;
        continue;
      }
      EXPECT_EQ(tree.parent_edge(v), g.find_edge(tree.parent(v), v))
          << algo << " root=" << tree.root() << " v=" << v;
    }
  };
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    check_tree(builder.greedy(u, 3, 1), "greedy");
    check_tree(builder.mis(u, 3), "mis");
    check_tree(builder.greedy_k(u, 2), "greedy_k");
    check_tree(builder.mis_k(u, 2), "mis_k");
  }
}

TEST(RemoteSpanner, ConcurrentUnionIsDeterministic) {
  // The shared atomic-bitset union must give one well-defined edge set no
  // matter how roots are scheduled across workers: repeated parallel builds
  // agree bit-for-bit. Run on a graph large enough that every pool worker
  // actually participates (this is also the TSan workout for the relaxed
  // fetch_or publication path).
  Rng rng(325);
  const Graph g = connected_ubg(400, 6.0, rng);
  const EdgeSet first = build_low_stretch_remote_spanner(g, 0.5);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_TRUE(build_low_stretch_remote_spanner(g, 0.5) == first) << "rep=" << rep;
  }
  const EdgeSet first_k = build_k_connecting_spanner(g, 2);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_TRUE(build_k_connecting_spanner(g, 2) == first_k) << "rep=" << rep;
  }
}

TEST(RemoteSpanner, MisRequiresBetaOne) {
  const Graph g = cycle_graph(5);
  EXPECT_THROW(build_remote_spanner(g, 3, 0, TreeAlgorithm::kMis), CheckError);
}

TEST(RemoteSpanner, WorksOnDisconnectedInput) {
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(6, 7);
  const Graph g = b.build();
  const EdgeSet h = build_low_stretch_remote_spanner(g, 1.0);
  const auto report = check_remote_stretch(g, h, Stretch{2.0, -1.0});
  EXPECT_TRUE(report.satisfied);
}

}  // namespace
}  // namespace remspan
