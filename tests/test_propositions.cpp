// Parameterized property sweeps for the paper's propositions: both
// directions of the characterizations on randomized inputs.
//
//   P1  (Prop. 1): inducing (ceil(1/eps)+1, 1)-dominating trees  <=>
//                  (1+eps, 1-2eps)-remote-spanner.
//   P4  (Prop. 4): inducing 2-connecting (2,1)-dominating trees  =>
//                  2-connecting (2,-1)-remote-spanner.
//   P5  (Prop. 5): inducing k-connecting (2,0)-dominating trees  <=>
//                  k-connecting (1,0)-remote-spanner.
//   R1  (§1.2):    any (alpha,beta)-spanner is an (alpha, beta-alpha+1)-
//                  remote-spanner.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph make_test_graph(int family, std::uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case 0:
      return connected_gnp(30, 0.15, rng);
    case 1:
      return connected_gnp(24, 0.3, rng);
    case 2: {
      const auto gg = uniform_unit_ball_graph(70, 4.0, 2, rng);
      const auto comps = connected_components(gg.graph);
      return induced_subgraph(gg.graph, comps.largest()).graph;
    }
    case 3:
      return grid_graph(5, 6);
    default:
      return hypercube_graph(4);
  }
}

// ---------------------------------------------------------------------------
// Proposition 1, forward direction: union of (r,1)-dominating trees is a
// (1+eps', 1-2eps')-remote-spanner with eps' = 1/(r-1).

using P1Params = std::tuple<int /*family*/, int /*r*/, int /*algo*/>;

class Proposition1Forward : public ::testing::TestWithParam<P1Params> {};

TEST_P(Proposition1Forward, InducedTreesGiveStretch) {
  const auto [family, r, algo_int] = GetParam();
  const Graph g = make_test_graph(family, 1000 + static_cast<std::uint64_t>(family));
  const auto algo = algo_int == 0 ? TreeAlgorithm::kGreedy : TreeAlgorithm::kMis;
  const EdgeSet h = build_remote_spanner(g, static_cast<Dist>(r), 1, algo);
  const Stretch s = stretch_for_radius(static_cast<Dist>(r));
  const auto report = check_remote_stretch(g, h, s);
  EXPECT_TRUE(report.satisfied)
      << "family=" << family << " r=" << r << " worst=(" << report.worst_u << ","
      << report.worst_v << ") dg=" << report.worst_dg << " dhu=" << report.worst_dhu
      << " bound=" << s.bound(report.worst_dg);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, Proposition1Forward,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(2, 3, 4),
                                            ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Proposition 1, converse direction: a sub-graph that fails to induce
// dominating trees must violate the stretch. We approximate the converse by
// removing an essential tree edge from a minimal spanner and checking the
// stretch breaks — on instances engineered so the edge is critical.

TEST(Proposition1Converse, RemovingCriticalTreeEdgeBreaksStretch) {
  // Two hubs joined by a bridge; the bridge edge is in every dominating
  // tree of nodes on the left reaching distance-2 nodes on the right.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();  // path of 6 nodes
  EdgeSet h = build_remote_spanner(g, 2, 1, TreeAlgorithm::kGreedy);
  const Stretch s = stretch_for_radius(2);  // (2, -1)
  ASSERT_TRUE(check_remote_stretch(g, h, s).satisfied);
  // On a path, every inner edge is essential: drop one and the remote
  // stretch for some pair becomes unbounded.
  h.erase(g.find_edge(2, 3));
  EXPECT_FALSE(check_remote_stretch(g, h, s).satisfied);
}

// ---------------------------------------------------------------------------
// Proposition 4: union of 2-connecting (2,1)-dominating trees is a
// 2-connecting (2,-1)-remote-spanner.

class Proposition4 : public ::testing::TestWithParam<int> {};

TEST_P(Proposition4, TwoConnectingStretchHolds) {
  const int family = GetParam();
  const Graph g = make_test_graph(family, 2000 + static_cast<std::uint64_t>(family));
  const EdgeSet h = build_2connecting_spanner(g, 2);
  const auto report = check_k_connecting_stretch(g, h, 2, Stretch{2.0, -1.0},
                                                 /*max_pairs=*/200, /*seed=*/7);
  EXPECT_TRUE(report.satisfied)
      << "family=" << family << " losses=" << report.connectivity_losses << " worst=("
      << report.worst_s << "," << report.worst_t << ") k'=" << report.worst_kprime
      << " excess=" << report.max_excess;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, Proposition4, ::testing::Values(0, 1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Proposition 5 forward: union of k-connecting (2,0)-dominating trees is a
// k-connecting (1,0)-remote-spanner (exact k-connecting distances).

using P5Params = std::tuple<int /*family*/, int /*k*/>;

class Proposition5Forward : public ::testing::TestWithParam<P5Params> {};

TEST_P(Proposition5Forward, ExactKConnectingDistances) {
  const auto [family, k] = GetParam();
  const Graph g = make_test_graph(family, 3000 + static_cast<std::uint64_t>(family));
  const EdgeSet h = build_k_connecting_spanner(g, static_cast<Dist>(k));
  const auto report = check_k_connecting_stretch(g, h, static_cast<Dist>(k),
                                                 Stretch{1.0, 0.0}, /*max_pairs=*/150,
                                                 /*seed=*/11);
  EXPECT_TRUE(report.satisfied)
      << "family=" << family << " k=" << k << " losses=" << report.connectivity_losses
      << " worst=(" << report.worst_s << "," << report.worst_t << ")";
  EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, Proposition5Forward,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Proposition 5 necessity: a (1,0)-remote-spanner must induce multipoint
// relays — dropping the only 2-covering edge breaks exactness.

TEST(Proposition5Necessity, DroppingRelayEdgeBreaksExactness) {
  // u=0 - {1} - v=2 with an extra longer route 0-3-4-2: if H misses the
  // relay edge 1-2, d_{H_0}(0,2) becomes 3 > 2.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = b.build();
  EdgeSet h(g, true);
  h.erase(g.find_edge(1, 2));
  const auto report = check_remote_stretch(g, h, Stretch{1.0, 0.0});
  EXPECT_FALSE(report.satisfied);
}

// ---------------------------------------------------------------------------
// R1: an (alpha, beta)-spanner is an (alpha, beta - alpha + 1)-remote-
// spanner. Exercised with the trivial spanning-tree spanner of a cycle and
// randomized spanning structures.

TEST(RelatedWorkR1, SpannerImpliesRemoteSpannerShift) {
  Rng rng(401);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = connected_gnp(25, 0.2, rng);
    // Take H = a BFS tree: a classical (D,0)-spanner for D = its depth-based
    // stretch; measure its actual classical stretch first, then check the
    // shifted remote bound.
    EdgeSet h(g);
    BoundedBfs bfs(g.num_nodes());
    bfs.run(GraphView(g), 0);
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      if (bfs.parent(v) != kInvalidNode) h.insert(bfs.parent(v), v);
    }
    // Find the smallest integer alpha for which H is an (alpha,0)-spanner.
    double alpha = 1.0;
    while (!check_spanner_stretch(g, h, Stretch{alpha, 0.0}).satisfied && alpha < 50.0) {
      alpha += 1.0;
    }
    ASSERT_LT(alpha, 50.0);
    const auto remote = check_remote_stretch(g, h, Stretch{alpha, 0.0 - alpha + 1.0});
    EXPECT_TRUE(remote.satisfied) << "rep=" << rep << " alpha=" << alpha;
  }
}

}  // namespace
}  // namespace remspan
