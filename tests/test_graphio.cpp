// Edge-list round trips and DOT export.
#include <gtest/gtest.h>

#include <sstream>

#include "geom/synthetic.hpp"
#include "graph/graphio.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(GraphIo, RoundTripRandomGraph) {
  Rng rng(901);
  const Graph g = gnp(40, 0.15, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_EQ(back.edge(id), g.edge(id));
  }
}

TEST(GraphIo, RoundTripEmptyAndIsolated) {
  GraphBuilder b(5);
  b.add_edge(1, 3);
  const Graph g = b.build();  // nodes 0,2,4 isolated
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_nodes(), 5u);
  EXPECT_EQ(back.num_edges(), 1u);
  EXPECT_TRUE(back.has_edge(1, 3));
}

TEST(GraphIo, CommentsAndBlanksIgnored) {
  std::stringstream in("# a comment\n\nn 4\n# another\n0 1\n\n2 3\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, MissingHeaderThrows) {
  std::stringstream in("0 1\n");
  EXPECT_THROW((void)read_edge_list(in), CheckError);
}

TEST(GraphIo, DotContainsAllEdges) {
  const Graph g = cycle_graph(4);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 3"), std::string::npos);  // canonical u < v form
  EXPECT_NE(dot.find("2 -- 3"), std::string::npos);
}

TEST(GraphIo, DotHighlightStylesSpannerEdges) {
  const Graph g = path_graph(3);
  EdgeSet h(g);
  h.insert(0, 1);
  const std::string dot = to_dot(g, &h, "X");
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace remspan
