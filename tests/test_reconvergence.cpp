// Protocol-level reconvergence under churn: the scoped incremental
// re-advertisement must reach, after every batch, the exact converged state
// a full re-flood reaches — per-node ball knowledge, per-node trees and the
// global spanner — which in turn must equal the centralized construction.
#include <gtest/gtest.h>

#include "baseline/mpr.hpp"
#include "core/remote_spanner.hpp"
#include "dynamic/churn_trace.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "sim/reconvergence.hpp"
#include "sim/remspan_protocol.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

RemSpanConfig make_config(RemSpanConfig::Kind kind, Dist r = 2, Dist beta = 1, Dist k = 1) {
  RemSpanConfig cfg;
  cfg.kind = kind;
  cfg.r = r;
  cfg.beta = beta;
  cfg.k = k;
  return cfg;
}

/// Centralized construction matching a protocol config — the ground truth
/// every distributed run must union to.
EdgeSet centralized(const Graph& g, const RemSpanConfig& cfg) {
  switch (cfg.kind) {
    case RemSpanConfig::Kind::kLowStretchGreedy:
      return build_remote_spanner(g, cfg.r, cfg.beta, TreeAlgorithm::kGreedy);
    case RemSpanConfig::Kind::kLowStretchMis:
      return build_remote_spanner(g, cfg.r, 1, TreeAlgorithm::kMis);
    case RemSpanConfig::Kind::kKConnGreedy:
      return build_k_connecting_spanner(g, cfg.k);
    case RemSpanConfig::Kind::kKConnMis:
      return build_2connecting_spanner(g, cfg.k);
    case RemSpanConfig::Kind::kOlsrMpr:
      return olsr_mpr_spanner(g);
  }
  return EdgeSet(g);
}

/// Both strategies must agree on everything observable after each batch.
void expect_same_converged_state(ReconvergenceSim& inc, ReconvergenceSim& ref,
                                 const std::string& context) {
  ASSERT_EQ(inc.graph().num_nodes(), ref.graph().num_nodes()) << context;
  ASSERT_EQ(inc.graph().num_edges(), ref.graph().num_edges()) << context;
  EXPECT_EQ(inc.spanner().edge_list(), ref.spanner().edge_list()) << context;
  for (NodeId v = 0; v < inc.graph().num_nodes(); ++v) {
    EXPECT_EQ(inc.node_tree(v), ref.node_tree(v)) << context << " node " << v;
    EXPECT_EQ(inc.node_ball_lists(v), ref.node_ball_lists(v)) << context << " node " << v;
    EXPECT_EQ(inc.node_ball_trees(v), ref.node_ball_trees(v)) << context << " node " << v;
  }
}

void replay_and_compare(const ChurnTrace& trace, const RemSpanConfig& cfg,
                        const std::string& label) {
  const Graph initial = trace.initial_graph();
  ReconvergenceSim inc(initial, cfg, ReconvergeStrategy::kIncremental);
  ReconvergenceSim ref(initial, cfg, ReconvergeStrategy::kFullReflood);
  expect_same_converged_state(inc, ref, label + " initial");
  EXPECT_EQ(inc.spanner().edge_list(), centralized(initial, cfg).edge_list()) << label;

  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    const auto inc_stats = inc.apply_batch(trace.batches[b]);
    const auto ref_stats = ref.apply_batch(trace.batches[b]);
    const std::string context = label + " batch " + std::to_string(b);
    ASSERT_EQ(inc_stats.inserted_edges, ref_stats.inserted_edges) << context;
    ASSERT_EQ(inc_stats.removed_edges, ref_stats.removed_edges) << context;
    expect_same_converged_state(inc, ref, context);
    EXPECT_EQ(inc.spanner().edge_list(), centralized(inc.graph(), cfg).edge_list()) << context;
    // Scoped re-advertisement can never cost more than the cold start.
    EXPECT_LE(inc_stats.transmissions, ref_stats.transmissions) << context;
    EXPECT_LE(inc_stats.advertising_nodes, ref_stats.advertising_nodes) << context;
  }
}

TEST(Reconvergence, IncrementalMatchesRefloodOnRandomChurn) {
  Rng rng(11);
  const Graph g = connected_gnp(48, 0.12, rng);
  const ChurnTrace trace = random_edge_churn_trace(g, 6, 5, 0.2, 77);
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kKConnGreedy), "gnp/kconn1");
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kKConnMis, 2, 1, 2), "gnp/kconn-mis");
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kOlsrMpr), "gnp/mpr");
}

TEST(Reconvergence, IncrementalMatchesRefloodOnMobility) {
  Rng rng(12);
  const auto gg = largest_component(uniform_unit_ball_graph(70, 4.0, 2, rng));
  const ChurnTrace trace = mobility_churn_trace(gg, 6, 2, 78);
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kKConnGreedy), "udg/kconn1");
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kLowStretchMis, 3), "udg/mis-r3");
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kOlsrMpr), "udg/mpr");
}

TEST(Reconvergence, IncrementalMatchesRefloodOnRegionOutage) {
  Rng rng(13);
  const auto gg = largest_component(uniform_unit_ball_graph(70, 4.0, 2, rng));
  const ChurnTrace trace = region_outage_trace(gg, 3, 1.2, 79);
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kKConnGreedy), "outage/kconn1");
  replay_and_compare(trace, make_config(RemSpanConfig::Kind::kLowStretchGreedy, 3, 1),
                     "outage/greedy-r3");
}

TEST(Reconvergence, EmptyBatchCostsNothing) {
  Rng rng(14);
  const Graph g = connected_gnp(30, 0.15, rng);
  for (const auto strategy :
       {ReconvergeStrategy::kIncremental, ReconvergeStrategy::kFullReflood}) {
    ReconvergenceSim sim(g, make_config(RemSpanConfig::Kind::kKConnGreedy), strategy);
    const std::size_t before = sim.spanner().size();

    // Literally no events.
    auto stats = sim.apply_batch({});
    EXPECT_EQ(stats.rounds, 0u);
    EXPECT_EQ(stats.transmissions, 0u);
    EXPECT_EQ(stats.receptions, 0u);
    EXPECT_EQ(stats.wire_bytes, 0u);
    EXPECT_EQ(stats.advertising_nodes, 0u);

    // All-no-op events (re-adding present edges) must also be free.
    const Edge e = g.edges()[0];
    const GraphEvent noop[] = {GraphEvent::edge_up(e.u, e.v)};
    stats = sim.apply_batch(noop);
    EXPECT_EQ(stats.rounds, 0u);
    EXPECT_EQ(stats.transmissions, 0u);
    EXPECT_EQ(sim.spanner().size(), before);
  }
}

TEST(Reconvergence, RefloodBatchEqualsFreshDistributedRun) {
  // The strawman's per-batch cost and result must be exactly a cold-start
  // run of Algorithm RemSpan on the new snapshot.
  Rng rng(15);
  const Graph g = connected_gnp(40, 0.12, rng);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);
  const ChurnTrace trace = random_edge_churn_trace(g, 4, 4, 0.0, 80);

  ReconvergenceSim sim(g, cfg, ReconvergeStrategy::kFullReflood);
  DynamicGraph shadow(g);
  for (const auto& batch : trace.batches) {
    const auto stats = sim.apply_batch(batch);
    shadow.apply_all(batch);
    const auto snapshot = shadow.snapshot();
    const auto fresh = run_remspan_distributed(*snapshot, cfg);
    EXPECT_EQ(stats.rounds, fresh.rounds);
    EXPECT_EQ(stats.transmissions, fresh.stats.transmissions);
    EXPECT_EQ(stats.receptions, fresh.stats.receptions);
    EXPECT_EQ(stats.payload_words, fresh.stats.payload_words);
    EXPECT_EQ(sim.spanner().edge_list(), fresh.spanner.edge_list());
  }
}

TEST(Reconvergence, DeterministicStatsForFixedSeed) {
  Rng rng(16);
  const auto gg = largest_component(uniform_unit_ball_graph(60, 4.0, 2, rng));
  const ChurnTrace trace = mobility_churn_trace(gg, 5, 2, 81);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);

  for (const auto strategy :
       {ReconvergeStrategy::kIncremental, ReconvergeStrategy::kFullReflood}) {
    ReconvergenceSim a(gg.graph, cfg, strategy);
    ReconvergenceSim b(gg.graph, cfg, strategy);
    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      const auto sa = a.apply_batch(trace.batches[i]);
      const auto sb = b.apply_batch(trace.batches[i]);
      EXPECT_EQ(sa.rounds, sb.rounds) << i;
      EXPECT_EQ(sa.transmissions, sb.transmissions) << i;
      EXPECT_EQ(sa.receptions, sb.receptions) << i;
      EXPECT_EQ(sa.payload_words, sb.payload_words) << i;
      EXPECT_EQ(sa.wire_bytes, sb.wire_bytes) << i;
      EXPECT_EQ(sa.advertising_nodes, sb.advertising_nodes) << i;
      EXPECT_EQ(sa.spanner_edges, sb.spanner_edges) << i;
    }
  }
}

TEST(Reconvergence, LocalizedChurnAdvertisesLocally) {
  // One flipped edge dirties only the ball around its endpoints: the
  // incremental batch must involve far fewer advertisers and messages than
  // the cold start on a graph much larger than the ball.
  Rng rng(17);
  const auto gg = largest_component(uniform_unit_ball_graph(150, 7.0, 2, rng));
  const Graph& g = gg.graph;
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);

  ReconvergenceSim inc(g, cfg, ReconvergeStrategy::kIncremental);
  const Edge e = g.edges()[g.num_edges() / 2];
  const GraphEvent down[] = {GraphEvent::edge_down(e.u, e.v)};
  const auto stats = inc.apply_batch(down);

  EXPECT_GT(stats.advertising_nodes, 0u);
  EXPECT_LT(stats.advertising_nodes, g.num_nodes() / 4);
  EXPECT_LT(stats.transmissions, inc.initial_stats().transmissions / 4);
  EXPECT_EQ(inc.spanner().edge_list(), centralized(inc.graph(), cfg).edge_list());
}

TEST(Reconvergence, MprDistributedMatchesCentralizedUnion) {
  // The OLSR MPR baseline rides the same pipeline: its distributed union
  // must equal olsr_mpr_spanner on every snapshot.
  Rng rng(18);
  const Graph g = connected_gnp(45, 0.15, rng);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kOlsrMpr);
  EXPECT_EQ(cfg.flood_scope(), 1u);
  EXPECT_EQ(cfg.expected_rounds(), 3u);

  const auto fresh = run_remspan_distributed(g, cfg);
  EXPECT_EQ(fresh.spanner, olsr_mpr_spanner(g));
  EXPECT_EQ(fresh.rounds, cfg.expected_rounds());
}

TEST(Reconvergence, LosslessRunsStopAtExactlyThePredictedRound) {
  // The paper's schedule is exact: a lossless run terminates by quiescence
  // at precisely expected_rounds() = 1 + 2*scope = 2r - 1 + 2*beta. The
  // kLosslessRoundSlack in round_budget() is a hang guard, never consumed.
  Rng rng(21);
  const Graph g = connected_gnp(40, 0.15, rng);
  const RemSpanConfig configs[] = {
      make_config(RemSpanConfig::Kind::kKConnGreedy),
      make_config(RemSpanConfig::Kind::kKConnMis, 2, 1, 2),
      make_config(RemSpanConfig::Kind::kLowStretchGreedy, 3, 1),
      make_config(RemSpanConfig::Kind::kLowStretchMis, 3),
      make_config(RemSpanConfig::Kind::kOlsrMpr),
  };
  for (const RemSpanConfig& cfg : configs) {
    ASSERT_GT(cfg.round_budget(), cfg.expected_rounds());  // slack, not schedule
    const auto fresh = run_remspan_distributed(g, cfg);
    EXPECT_EQ(fresh.rounds, cfg.expected_rounds()) << cfg.kind_name();

    // The churn driver's cold start follows the same exact schedule...
    ReconvergenceSim sim(g, cfg, ReconvergeStrategy::kIncremental);
    EXPECT_EQ(sim.initial_stats().rounds, cfg.expected_rounds()) << cfg.kind_name();

    // ...and so does every non-empty lossless batch.
    const Edge e = g.edges()[3];
    const GraphEvent down[] = {GraphEvent::edge_down(e.u, e.v)};
    EXPECT_EQ(sim.apply_batch(down).rounds, cfg.expected_rounds()) << cfg.kind_name();
  }
}

TEST(Reconvergence, NodeOutageAndRecovery) {
  // A node going down removes its links; coming back restores them. The
  // protocol state must track both transitions exactly.
  Rng rng(19);
  const Graph g = connected_gnp(36, 0.15, rng);
  const RemSpanConfig cfg = make_config(RemSpanConfig::Kind::kKConnGreedy);

  ReconvergenceSim inc(g, cfg, ReconvergeStrategy::kIncremental);
  ReconvergenceSim ref(g, cfg, ReconvergeStrategy::kFullReflood);
  const NodeId victim = 7;

  const GraphEvent down[] = {GraphEvent::node_down(victim)};
  inc.apply_batch(down);
  ref.apply_batch(down);
  expect_same_converged_state(inc, ref, "node down");
  EXPECT_EQ(inc.spanner().edge_list(), centralized(inc.graph(), cfg).edge_list());
  EXPECT_TRUE(inc.node_tree(victim).empty());

  const GraphEvent up[] = {GraphEvent::node_up(victim)};
  inc.apply_batch(up);
  ref.apply_batch(up);
  expect_same_converged_state(inc, ref, "node up");
  EXPECT_EQ(inc.spanner().edge_list(), centralized(inc.graph(), cfg).edge_list());
}

}  // namespace
}  // namespace remspan
