// Geometry: metrics, point generators, unit ball graph construction
// (bucketed construction cross-checked against brute force).
#include <gtest/gtest.h>

#include <cmath>

#include "geom/ball_graph.hpp"
#include "geom/points.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(Metric, L2Distance) {
  const std::vector<double> a{0, 0};
  const std::vector<double> b{3, 4};
  EXPECT_DOUBLE_EQ(metric_distance(MetricKind::L2, a, b), 5.0);
}

TEST(Metric, L1Distance) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 0, 3};
  EXPECT_DOUBLE_EQ(metric_distance(MetricKind::L1, a, b), 5.0);
}

TEST(Metric, LInfDistance) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{4, 0};
  EXPECT_DOUBLE_EQ(metric_distance(MetricKind::LInf, a, b), 3.0);
}

TEST(Metric, TriangleInequalityHolds) {
  Rng rng(5);
  const PointSet ps = uniform_points(30, 10.0, 3, rng);
  for (const auto kind : {MetricKind::L2, MetricKind::L1, MetricKind::LInf}) {
    for (std::size_t i = 0; i < 10; ++i) {
      const auto a = ps.point(3 * i);
      const auto b = ps.point(3 * i + 1);
      const auto c = ps.point(3 * i + 2);
      EXPECT_LE(metric_distance(kind, a, c),
                metric_distance(kind, a, b) + metric_distance(kind, b, c) + 1e-12);
    }
  }
}

TEST(PointSet, StoresAndRetrieves) {
  PointSet ps(2);
  ps.add2(1.0, 2.0);
  ps.add2(3.0, 4.0);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps.point(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(ps.point(1)[1], 4.0);
}

TEST(Generators, UniformPointsInBounds) {
  Rng rng(1);
  const PointSet ps = uniform_points(200, 7.5, 2, rng);
  EXPECT_EQ(ps.size(), 200u);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (const double c : ps.point(i)) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 7.5);
    }
  }
}

TEST(Generators, PoissonCountConcentrates) {
  Rng rng(2);
  double total = 0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<double>(poisson_points_in_square(5.0, 300.0, rng).size());
  }
  EXPECT_NEAR(total / reps, 300.0, 20.0);
}

TEST(Generators, ClusteredPointsInBounds) {
  Rng rng(3);
  const PointSet ps = clustered_points(150, 6.0, 2, 5, 0.8, rng);
  EXPECT_EQ(ps.size(), 150u);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (const double c : ps.point(i)) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 6.0);
    }
  }
}

TEST(BallGraph, MatchesBruteForceL2) {
  Rng rng(4);
  PointSet ps = uniform_points(120, 4.0, 2, rng);
  const GeometricGraph gg = unit_ball_graph(ps, MetricKind::L2, 1.0);
  // Brute-force reference.
  std::size_t expected_edges = 0;
  for (NodeId a = 0; a < gg.points.size(); ++a) {
    for (NodeId b = a + 1; b < gg.points.size(); ++b) {
      const bool close =
          metric_distance(MetricKind::L2, gg.points.point(a), gg.points.point(b)) <= 1.0;
      EXPECT_EQ(gg.graph.has_edge(a, b), close) << a << "," << b;
      expected_edges += close;
    }
  }
  EXPECT_EQ(gg.graph.num_edges(), expected_edges);
}

TEST(BallGraph, MatchesBruteForceLInf3D) {
  Rng rng(6);
  PointSet ps = uniform_points(80, 3.0, 3, rng);
  const GeometricGraph gg = unit_ball_graph(ps, MetricKind::LInf, 1.0);
  std::size_t expected_edges = 0;
  for (NodeId a = 0; a < gg.points.size(); ++a) {
    for (NodeId b = a + 1; b < gg.points.size(); ++b) {
      expected_edges +=
          metric_distance(MetricKind::LInf, gg.points.point(a), gg.points.point(b)) <= 1.0;
    }
  }
  EXPECT_EQ(gg.graph.num_edges(), expected_edges);
}

TEST(BallGraph, RadiusScalesNeighborhoods) {
  Rng rng(8);
  PointSet ps = uniform_points(100, 5.0, 2, rng);
  PointSet ps_copy(2);
  for (std::size_t i = 0; i < ps.size(); ++i) ps_copy.add(ps.point(i));
  const GeometricGraph small = unit_ball_graph(std::move(ps), MetricKind::L2, 0.5);
  const GeometricGraph large = unit_ball_graph(std::move(ps_copy), MetricKind::L2, 1.5);
  EXPECT_LT(small.graph.num_edges(), large.graph.num_edges());
}

TEST(BallGraph, EdgeLengthsWithinRadius) {
  Rng rng(9);
  const GeometricGraph gg = uniform_unit_ball_graph(150, 6.0, 2, rng);
  for (const Edge& e : gg.graph.edges()) {
    EXPECT_LE(gg.edge_length(e), gg.radius + 1e-12);
  }
}

TEST(BallGraph, RandomUdgDensityMatchesTheory) {
  // Expected degree of a node away from the border is lambda * pi with
  // lambda = n / side^2 the intensity; check within a loose factor (border
  // effects lower the mean).
  Rng rng(10);
  const double side = 10.0;
  const double mean_nodes = 800.0;
  const GeometricGraph gg = random_unit_disk_graph(side, mean_nodes, rng);
  const double lambda = mean_nodes / (side * side);
  const double expected_degree = lambda * 3.14159265;
  EXPECT_GT(gg.graph.average_degree(), 0.6 * expected_degree);
  EXPECT_LT(gg.graph.average_degree(), 1.1 * expected_degree);
}

TEST(DoublingDimension, MonotoneInDim) {
  EXPECT_LT(doubling_dimension_estimate(MetricKind::L2, 1),
            doubling_dimension_estimate(MetricKind::L2, 3));
  EXPECT_DOUBLE_EQ(doubling_dimension_estimate(MetricKind::LInf, 2), 2.0);
}

}  // namespace
}  // namespace remspan
