// Edge cases and failure injection: degenerate graphs, invalid parameters,
// node failures, mid-protocol topology changes.
#include <gtest/gtest.h>

#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "sim/remspan_protocol.hpp"
#include "sim/routing.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(Degenerate, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  const EdgeSet h = build_k_connecting_spanner(g, 1);
  EXPECT_EQ(h.size(), 0u);
  EXPECT_TRUE(check_remote_stretch(g, h, Stretch{1, 0}).satisfied);
}

TEST(Degenerate, SingletonGraph) {
  GraphBuilder b(1);
  const Graph g = b.build();
  const EdgeSet h = build_low_stretch_remote_spanner(g, 0.5);
  EXPECT_EQ(h.size(), 0u);
  DomTreeBuilder trees(g);
  const RootedTree t = trees.greedy(0, 2, 0);
  EXPECT_EQ(t.num_edges(), 0u);
}

TEST(Degenerate, SingleEdgeGraph) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  for (const Dist k : {1u, 3u}) {
    const EdgeSet h = build_k_connecting_spanner(g, k);
    // No distance-2 shell exists: the spanner is empty, and that is
    // correct (the pair is adjacent, H_u covers it).
    EXPECT_EQ(h.size(), 0u);
    EXPECT_TRUE(check_remote_stretch(g, h, Stretch{1, 0}).satisfied);
  }
}

TEST(Degenerate, StarGraphAllShellsEmpty) {
  const Graph g = star_graph(8);
  const EdgeSet h = build_2connecting_spanner(g, 2);
  // All non-hub pairs are at distance 2 through the unique hub: every tree
  // must attach the hub edge(s).
  const auto report = check_k_connecting_stretch(g, h, 2, Stretch{2, -1});
  EXPECT_TRUE(report.satisfied);
}

TEST(Degenerate, DisconnectedPairsUnconstrained) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const EdgeSet h = build_k_connecting_spanner(g, 1);
  const auto report = check_remote_stretch(g, h, Stretch{1, 0});
  EXPECT_TRUE(report.satisfied);  // cross-component pairs skipped, not failed
}

TEST(InvalidParams, RejectedLoudly) {
  const Graph g = cycle_graph(5);
  DomTreeBuilder trees(g);
  EXPECT_THROW((void)trees.greedy(0, 1, 0), CheckError);   // r < 2
  EXPECT_THROW((void)trees.mis(0, 1), CheckError);          // r < 2
  EXPECT_THROW((void)trees.greedy_k(0, 0), CheckError);     // k < 1
  EXPECT_THROW((void)trees.mis_k(0, 0), CheckError);        // k < 1
  EXPECT_THROW((void)build_k_connecting_spanner(g, 0), CheckError);
  EXPECT_THROW((void)build_low_stretch_remote_spanner(g, 0.0), CheckError);
  EXPECT_THROW((void)build_low_stretch_remote_spanner(g, 2.0), CheckError);
}

TEST(NodeFailure, SpannerRebuildRestoresGuarantee) {
  // Fail a node, rebuild on the survivor graph: guarantee must hold again.
  Rng rng(911);
  const Graph g = connected_gnp(40, 0.15, rng);
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != 7) keep.push_back(v);
  }
  const auto survivor = induced_subgraph(g, keep);
  const auto comps = connected_components(survivor.graph);
  const auto sub = induced_subgraph(survivor.graph, comps.largest());
  const EdgeSet h = build_k_connecting_spanner(sub.graph, 1);
  EXPECT_TRUE(check_remote_stretch(sub.graph, h, Stretch{1, 0}).satisfied);
}

TEST(NodeFailure, TwoConnectingSpannerSurvivesAnySingleRelay) {
  // For every pair with d^2 < inf in H_s, removing ONE internal relay must
  // leave s and t connected within H_s minus the relay.
  Rng rng(913);
  const Graph g = connected_gnp(24, 0.3, rng);
  const EdgeSet h = build_2connecting_spanner(g, 2);
  int pairs_checked = 0;
  for (NodeId s = 0; s < g.num_nodes() && pairs_checked < 8; s += 3) {
    for (NodeId t = 1; t < g.num_nodes() && pairs_checked < 8; t += 5) {
      if (s == t || g.has_edge(s, t)) continue;
      const auto in_h =
          min_disjoint_paths(AugmentedView(h, s), s, t, 2, /*want_paths=*/true);
      if (in_h.connectivity() < 2) continue;
      ++pairs_checked;
      // Fail the first relay of the first path: the second path survives by
      // disjointness.
      ASSERT_GE(in_h.paths[0].size(), 3u);
      const NodeId failed = in_h.paths[0][1];
      bool second_path_avoids = true;
      for (std::size_t i = 1; i + 1 < in_h.paths[1].size(); ++i) {
        if (in_h.paths[1][i] == failed) second_path_avoids = false;
      }
      EXPECT_TRUE(second_path_avoids);
    }
  }
  EXPECT_GT(pairs_checked, 0);
}

TEST(TopologyChange, ProtocolConvergesOnNewGraphAfterSwap) {
  // Start the protocol on g1, swap to g2 mid-flight (dropping in-flight
  // messages), then run fresh protocol instances: the advertised spanner
  // must match the centralized construction for g2 — the paper's
  // "stabilizes after T + 2F" periodic-refresh behaviour.
  const Graph g1 = cycle_graph(16);
  Rng rng(915);
  const Graph g2 = connected_gnp(16, 0.3, rng);
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kKConnGreedy;
  cfg.k = 1;
  Network net(g1, [&cfg](NodeId) { return std::make_unique<RemSpanProtocol>(cfg); });
  net.run(1);  // partial run on the old topology
  net.change_topology(g2);
  // Periodic refresh = fresh protocol round on the new topology.
  const auto rerun = run_remspan_distributed(g2, cfg);
  EXPECT_EQ(rerun.spanner, build_k_connecting_spanner(g2, 1));
}

TEST(Routing, SurvivesPartialSpannerGracefully) {
  // Routing over an arbitrarily truncated spanner either delivers or
  // reports failure — never loops forever.
  Rng rng(917);
  const Graph g = connected_gnp(30, 0.15, rng);
  EdgeSet h = build_k_connecting_spanner(g, 1);
  // Remove half the spanner's edges.
  int counter = 0;
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (h.contains(id) && (counter++ % 2 == 0)) h.erase(id);
  }
  for (NodeId t = 1; t < g.num_nodes(); t += 4) {
    const auto route = greedy_route(h, 0, t);
    EXPECT_LE(route.path.size(), static_cast<std::size_t>(g.num_nodes()) + 2);
  }
}

TEST(Oracle, StretchReportCountsArePlausible) {
  Rng rng(919);
  const Graph g = connected_gnp(20, 0.25, rng);
  const EdgeSet h(g, true);
  const auto report = check_remote_stretch(g, h, Stretch{1, 0});
  // Checked pairs = ordered nonadjacent connected pairs.
  std::size_t expected = 0;
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u != v && dg(u, v) != kUnreachable && dg(u, v) >= 2) ++expected;
    }
  }
  EXPECT_EQ(report.pairs_checked, expected);
}

}  // namespace
}  // namespace remspan
