// Graph/GraphBuilder: CSR construction, edge ids, lookup.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/synthetic.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder builder(0);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, SingleEdge) {
  GraphBuilder builder(2);
  builder.add_edge(1, 0);  // reversed input is canonicalized
  const Graph g = builder.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(GraphBuilder, DuplicatesMerged) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilder, SelfLoopRejected) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.add_edge(1, 1), CheckError);
}

TEST(GraphBuilder, OutOfRangeRejected) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.add_edge(0, 3), CheckError);
}

TEST(Graph, AdjacencySorted) {
  GraphBuilder builder(5);
  builder.add_edge(2, 4);
  builder.add_edge(2, 0);
  builder.add_edge(2, 3);
  builder.add_edge(2, 1);
  const Graph g = builder.build();
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(g.degree(2), 4u);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Graph, IncidentEdgeIdsMatchNeighbors) {
  Rng rng(7);
  const Graph g = gnp(40, 0.2, rng);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ids = g.incident_edges(u);
    ASSERT_EQ(nbrs.size(), ids.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& e = g.edge(ids[i]);
      EXPECT_EQ(make_edge(u, nbrs[i]), e);
    }
  }
}

TEST(Graph, FindEdgeAgreesWithEdgeList) {
  Rng rng(11);
  const Graph g = gnp(30, 0.3, rng);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    EXPECT_EQ(g.find_edge(e.u, e.v), id);
    EXPECT_EQ(g.find_edge(e.v, e.u), id);
  }
  EXPECT_EQ(g.find_edge(0, 0), kInvalidEdge);
}

TEST(Graph, FindEdgeMissing) {
  const Graph g = path_graph(4);
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 3), kInvalidEdge);
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
}

TEST(Graph, DegreeSumIsTwiceEdges) {
  Rng rng(3);
  const Graph g = gnp(60, 0.1, rng);
  std::size_t degree_sum = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) degree_sum += g.degree(u);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
  EXPECT_DOUBLE_EQ(g.average_degree(),
                   static_cast<double>(degree_sum) / static_cast<double>(g.num_nodes()));
}

TEST(Graph, OverflowGuardsRejectSentinelSizedUniverses) {
  // NodeId/EdgeId are 32-bit with all-ones sentinels (kInvalidNode,
  // kInvalidEdge): a universe whose count reaches the sentinel would make
  // real ids collide with "no node"/"no edge". The guard is pure counting
  // math, so the death-test exercises it directly — materializing a 2^32
  // node graph to trip it through from_canonical_edges is neither possible
  // nor necessary.
  detail::check_graph_limits(0, 0);  // empty universe is fine
  detail::check_graph_limits(kInvalidNode - 1, kInvalidEdge - 1);  // largest legal
  EXPECT_THROW(detail::check_graph_limits(kInvalidNode, 0), CheckError);
  EXPECT_THROW(detail::check_graph_limits(std::size_t{kInvalidNode} + 1, 0), CheckError);
  EXPECT_THROW(detail::check_graph_limits(0, kInvalidEdge), CheckError);
  EXPECT_THROW(detail::check_graph_limits(0, std::size_t{kInvalidEdge} + 7), CheckError);
}

TEST(Graph, CompleteGraphEdgeCount) {
  const Graph g = complete_graph(10);
  EXPECT_EQ(g.num_edges(), 45u);
  EXPECT_EQ(g.max_degree(), 9u);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      EXPECT_EQ(g.has_edge(u, v), u != v);
    }
  }
}

}  // namespace
}  // namespace remspan
