// Edge-disjoint path oracle and the edge-connectivity extension.
#include <gtest/gtest.h>

#include "analysis/edge_conn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/synthetic.hpp"
#include "graph/edge_disjoint_paths.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(EdgeDisjointPaths, ThetaGraphMatchesNodeVersion) {
  // On theta graphs the disjoint paths are node-disjoint anyway.
  for (Dist k = 1; k <= 4; ++k) {
    const Graph g = theta_graph(k, 3);
    const auto result = min_edge_disjoint_paths(GraphView(g), 0, 1, k + 1);
    ASSERT_EQ(result.connectivity(), k) << "k=" << k;
    for (Dist kp = 1; kp <= k; ++kp) {
      EXPECT_EQ(result.d(kp), static_cast<std::uint64_t>(kp) * 3);
    }
  }
}

TEST(EdgeDisjointPaths, SharedNodeAllowed) {
  // Bowtie: two triangles sharing node 2; s=0, t=4. Node connectivity is 1
  // (all paths cross 2) but edge connectivity is 2.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(2, 4);
  const Graph g = b.build();
  const auto node = min_disjoint_paths(GraphView(g), 0, 4, 3);
  const auto edge = min_edge_disjoint_paths(GraphView(g), 0, 4, 3);
  EXPECT_EQ(node.connectivity(), 1u);
  EXPECT_EQ(edge.connectivity(), 2u);
  EXPECT_EQ(edge.d(1), 2u);       // 0-2-4
  EXPECT_EQ(edge.d(2), 2u + 4u);  // plus 0-1-2-3-4 (shares node 2, no edges)
}

TEST(EdgeDisjointPaths, NeverExceedsNodeDisjointCount) {
  Rng rng(801);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = connected_gnp(25, 0.2, rng);
    for (NodeId s = 0; s < 5; ++s) {
      const NodeId t = 20 + s;
      const auto node = min_disjoint_paths(GraphView(g), s, t, 6);
      const auto edge = min_edge_disjoint_paths(GraphView(g), s, t, 6);
      // Edge connectivity >= node connectivity; for equal k', the
      // edge-disjoint optimum cannot be longer than the node-disjoint one.
      EXPECT_GE(edge.connectivity(), node.connectivity());
      for (Dist kp = 1; kp <= node.connectivity(); ++kp) {
        EXPECT_LE(edge.d(kp), node.d(kp)) << "s=" << s << " kp=" << kp;
      }
      // k' = 1 must agree with plain shortest paths for both.
      if (node.connectivity() >= 1) {
        EXPECT_EQ(edge.d(1), node.d(1));
      }
    }
  }
}

TEST(EdgeDisjointPaths, CycleHasTwoEdgeDisjointPaths) {
  const Graph g = cycle_graph(9);
  const auto result = min_edge_disjoint_paths(GraphView(g), 0, 4, 3);
  EXPECT_EQ(result.connectivity(), 2u);
  EXPECT_EQ(result.d(2), 9u);  // 4 + 5, the whole cycle
}

TEST(EdgeConnOracle, FullGraphExact) {
  Rng rng(803);
  const Graph g = connected_gnp(20, 0.3, rng);
  const EdgeSet h(g, true);
  const auto report = check_k_edge_connecting_stretch(g, h, 3, Stretch{1.0, 0.0});
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
}

TEST(EdgeConnOracle, DetectsLoss) {
  // Keep one of the two cycle directions only.
  const Graph g = cycle_graph(8);
  EdgeSet h(g);
  for (NodeId v = 1; v <= 4; ++v) h.insert(v - 1, v);
  const auto report = check_k_edge_connecting_stretch(g, h, 2, Stretch{5.0, 5.0});
  EXPECT_FALSE(report.satisfied);
  EXPECT_GT(report.connectivity_losses, 0u);
}

TEST(EdgeConnExtension, BoostedCoveragePreservesEdgeDistancesOnSamples) {
  // Empirical support for the concluding-remark extension: coverage k+1
  // preserved every sampled k-edge-connecting distance in our experiments.
  Rng rng(805);
  for (int rep = 0; rep < 3; ++rep) {
    const Graph g = connected_gnp(30, 0.25, rng);
    const EdgeSet h = build_k_connecting_spanner(g, 3);  // coverage k+1 for k=2
    const auto report =
        check_k_edge_connecting_stretch(g, h, 2, Stretch{1.0, 0.0}, 120, 805 + rep);
    EXPECT_TRUE(report.satisfied) << "rep=" << rep;
  }
}

TEST(NewGenerators, BarabasiAlbertShape) {
  Rng rng(807);
  const Graph g = barabasi_albert(200, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  // m edges per new node + seed clique, minus collapsed duplicates.
  EXPECT_GE(g.num_edges(), 3u * (200u - 4u));
  // Preferential attachment concentrates degree: the max degree should be
  // far above the average.
  EXPECT_GT(g.max_degree(), 3 * static_cast<Dist>(g.average_degree()));
}

TEST(NewGenerators, WattsStrogatzShape) {
  Rng rng(809);
  const Graph g = watts_strogatz(120, 6, 0.1, rng);
  EXPECT_EQ(g.num_nodes(), 120u);
  // Each node initiates k/2 = 3 edges; duplicates may collapse slightly.
  EXPECT_GE(g.num_edges(), 340u);
  EXPECT_LE(g.num_edges(), 360u);
}

TEST(NewGenerators, WattsStrogatzZeroRewireIsLattice) {
  Rng rng(811);
  const Graph g = watts_strogatz(30, 4, 0.0, rng);
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(NewGenerators, RandomRegularDegreesBounded) {
  Rng rng(813);
  const Graph g = random_regular(100, 6, rng);
  std::size_t at_degree = 0;
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_LE(g.degree(v), 6u);
    at_degree += (g.degree(v) == 6u);
  }
  // Most nodes keep full degree (few pairing collisions).
  EXPECT_GT(at_degree, 70u);
}

TEST(NewGenerators, GuaranteesHoldOnNewFamilies) {
  // The universality claim, unit-test sized.
  Rng rng(815);
  const Graph ba = barabasi_albert(60, 2, rng);
  const Graph ws = watts_strogatz(60, 4, 0.2, rng);
  for (const Graph* g : {&ba, &ws}) {
    const EdgeSet h = build_k_connecting_spanner(*g, 1);
    EXPECT_TRUE(check_remote_stretch(*g, h, Stretch{1.0, 0.0}).satisfied);
  }
}

}  // namespace
}  // namespace remspan
