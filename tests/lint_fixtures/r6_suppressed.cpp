// remspan-lint: treat-as src/core/fixture.cpp
// Suppression fixture: the same iteration as r6_unordered_iteration.cpp,
// but carrying a justified allow(R6); remspan_lint must report it clean.
#include <unordered_map>

int fixture_sum() {
  std::unordered_map<int, int> m{{1, 2}, {3, 4}};
  int total = 0;
  // remspan-lint: allow(R6) integer addition is commutative and associative,
  // so the accumulated total is independent of hash-table order.
  for (const auto& [k, v] : m) total += k + v;
  return total;
}
