// remspan-lint: treat-as src/core/fixture.cpp
// Clean fixture: ordinary library code touching none of the contracts.
#include <map>
#include <vector>

int fixture_total(const std::vector<int>& xs) {
  std::map<int, int> counts;
  for (const int x : xs) ++counts[x];
  int total = 0;
  for (const auto& [value, count] : counts) total += value * count;
  return total;
}
