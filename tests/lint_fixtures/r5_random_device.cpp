// R5 fixture: nondeterministic seeding. Banned everywhere, so no treat-as
// directive is needed.
#include <random>

unsigned fixture_entropy() {
  std::random_device rd;
  return rd();
}
