// remspan-lint: treat-as src/util/json_report.cpp
// R2 fixture: raw std::stod instead of util/strnum's strict parsers.
#include <string>

double fixture_parse(const std::string& s) { return std::stod(s); }
