// remspan-lint: treat-as src/graph/fixture.cpp
// R4 fixture: assert() in library code instead of REMSPAN_CHECK.
#include <cassert>

void fixture_check(int x) { assert(x > 0); }
