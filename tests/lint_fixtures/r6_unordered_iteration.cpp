// remspan-lint: treat-as src/core/fixture.cpp
// R6 fixture: range-for over an unordered_map in a bit-exact subsystem
// without an allow(R6) justification.
#include <unordered_map>

int fixture_sum() {
  std::unordered_map<int, int> m{{1, 2}, {3, 4}};
  int total = 0;
  for (const auto& [k, v] : m) total += k + v;
  return total;
}
