// remspan-lint: treat-as src/core/fixture.cpp
// R0 fixture: an allow() with no written justification is itself a
// violation, and it must NOT suppress the underlying R6 finding.
#include <unordered_map>

int fixture_sum() {
  std::unordered_map<int, int> m{{1, 2}, {3, 4}};
  int total = 0;
  // remspan-lint: allow(R6)
  for (const auto& [k, v] : m) total += k + v;
  return total;
}
