// R7 fixture: a raw wall-clock read outside util/timer.hpp and src/obs.
// Banned everywhere else, so no treat-as directive is needed.
#include <chrono>

long fixture_now_ns() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count();
}
