// remspan-lint: treat-as src/core/fixture.cpp
// R3 fixture: std::exit outside the cli_main wrapper.
#include <cstdlib>

void fixture_die() { std::exit(3); }
