// remspan-lint: treat-as src/api/remspan_c.cpp
// R1 fixture: an extern "C" function whose body is not a single top-level
// try/catch(...) exception wall. remspan_lint must flag it.
extern "C" {

int remspan_fixture_bad(int x) { return x + 1; }

}  // extern "C"
