// The public facade: spec grammar round-trips, bad-spec errors, and —
// the load-bearing guarantee — registry builds bit-exact equal to calling
// the underlying constructions directly, for all seven shipped kinds.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/registry.hpp"
#include "api/spec.hpp"
#include "baseline/baswana_sen.hpp"
#include "baseline/greedy_spanner.hpp"
#include "baseline/mpr.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/graphio.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph test_graph(std::uint64_t seed) {
  Rng rng(seed);
  return largest_component(uniform_unit_ball_graph(150, 4.5, 2, rng).graph);
}

TEST(ApiSpec, SpannerSpecCanonicalStringsRoundTrip) {
  // parse(to_string(s)) == s, and to_string(parse(text)) is canonical.
  const api::SpannerSpec specs[] = {
      api::SpannerSpec::th1(0.5),
      api::SpannerSpec::th1(0.25, TreeAlgorithm::kGreedy),
      api::SpannerSpec::th2(1),
      api::SpannerSpec::th2(3),
      api::SpannerSpec::th3(2),
      api::SpannerSpec::mpr(),
      api::SpannerSpec::greedy(3.0),
      api::SpannerSpec::baswana(2),
      api::SpannerSpec::baswana(3, 42),
      api::SpannerSpec::full(),
  };
  for (const auto& spec : specs) {
    EXPECT_EQ(api::parse_spanner_spec(spec.to_string()), spec) << spec.to_string();
  }
  EXPECT_EQ(api::SpannerSpec::th1(0.5).to_string(), "th1?eps=0.5");
  EXPECT_EQ(api::SpannerSpec::th1(0.25, TreeAlgorithm::kGreedy).to_string(),
            "th1?eps=0.25&tree=greedy");
  EXPECT_EQ(api::SpannerSpec::th2(2).to_string(), "th2?k=2");
  EXPECT_EQ(api::SpannerSpec::baswana(3, 42).to_string(), "baswana?k=3&seed=42");
  EXPECT_EQ(api::SpannerSpec::mpr().to_string(), "mpr");
  EXPECT_EQ(api::SpannerSpec::full().to_string(), "full");
  // Bare kinds parse to their defaults; defaults re-print canonically.
  EXPECT_EQ(api::parse_spanner_spec("th2").to_string(), "th2?k=1");
  EXPECT_EQ(api::parse_spanner_spec("th3").to_string(), "th3?k=2");
  EXPECT_EQ(api::parse_spanner_spec("baswana").to_string(), "baswana?k=2");
  EXPECT_EQ(api::parse_spanner_spec("greedy").to_string(), "greedy?t=3");
  // Round-trip holds even when the parameter needs more than %g's 6
  // significant digits.
  const api::SpannerSpec precise = api::SpannerSpec::th1(0.1234567);
  EXPECT_EQ(api::parse_spanner_spec(precise.to_string()), precise) << precise.to_string();
}

TEST(ApiSpec, GraphSpecCanonicalStringsRoundTrip) {
  const api::GraphSpec specs[] = {
      api::GraphSpec::udg(500, 6.0),
      api::GraphSpec::udg(400, 7.5, 9),
      api::GraphSpec::gnp(300, 12.0),
      api::GraphSpec::ba(200, 3),
      api::GraphSpec::ws(200, 6, 0.1, 2),
      api::GraphSpec::grid(256),
      api::GraphSpec::file("graphs/x.txt"),
  };
  for (const auto& spec : specs) {
    EXPECT_EQ(api::parse_graph_spec(spec.to_string()), spec) << spec.to_string();
  }
  EXPECT_EQ(api::GraphSpec::udg(500, 6.0).to_string(), "udg?n=500&side=6");
  EXPECT_EQ(api::GraphSpec::udg(400, 7.5, 9).to_string(), "udg?n=400&side=7.5&seed=9");
  EXPECT_EQ(api::GraphSpec::file("g.txt").to_string(), "file:g.txt");
}

TEST(ApiSpec, BadSpecsThrowWithTheOffendingTokenNamed) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)api::parse_spanner_spec(text);
    } catch (const api::SpecError& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("th1?eps=banana").find("banana"), std::string::npos);
  EXPECT_NE(message_of("th1?radius=3").find("radius"), std::string::npos);
  EXPECT_NE(message_of("th1?eps=0").find("eps"), std::string::npos);
  EXPECT_NE(message_of("th1?eps=1.5").find("eps"), std::string::npos);
  EXPECT_NE(message_of("th2?k=0").find("k"), std::string::npos);
  EXPECT_NE(message_of("th2?k=-1").find("-1"), std::string::npos);
  EXPECT_NE(message_of("greedy?t=0.5").find("t"), std::string::npos);
  // Non-finite tokens are rejected outright: NaN would otherwise slip past
  // the range checks (NaN < 1.0 is false) and poison the stretch oracle.
  EXPECT_NE(message_of("greedy?t=nan").find("nan"), std::string::npos);
  EXPECT_NE(message_of("th1?eps=inf").find("inf"), std::string::npos);
  EXPECT_THROW((void)api::parse_graph_spec("udg?n=100&side=inf"), api::SpecError);
  EXPECT_NE(message_of("mpr?k=2").find("k"), std::string::npos);
  EXPECT_NE(message_of("th2?k").find("k"), std::string::npos);       // missing '='
  EXPECT_NE(message_of("th2?=1").find("=1"), std::string::npos);     // missing key
  EXPECT_NE(message_of("th!x").find("th!x"), std::string::npos);
  EXPECT_THROW((void)api::parse_spanner_spec(""), api::SpecError);
  EXPECT_THROW((void)api::parse_graph_spec("octahedron?n=5"), api::SpecError);
  EXPECT_THROW((void)api::parse_graph_spec("udg?deg=4"), api::SpecError);
  EXPECT_THROW((void)api::parse_graph_spec("file:"), api::SpecError);
  EXPECT_THROW((void)api::parse_graph_spec("udg?n=0"), api::SpecError);
  // Unknown construction names parse as kCustom (the registry decides) but
  // fail registry lookup with the name in the message.
  const api::SpannerSpec custom = api::parse_spanner_spec("th9?x=1");
  EXPECT_EQ(custom.kind, api::SpannerSpec::Kind::kCustom);
  Rng rng(3);
  const Graph g = connected_gnp(30, 0.2, rng);
  try {
    (void)api::build_spanner(g, custom);
    FAIL() << "unregistered construction should throw";
  } catch (const api::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("th9"), std::string::npos);
  }
}

TEST(ApiSpec, BuildGraphMatchesGeneratorsAndReadsFiles) {
  // Generator kinds produce exactly what calling the generator would.
  {
    Rng direct(7);
    const Graph expected =
        largest_component(uniform_unit_ball_graph(200, 5.0, 2, direct).graph);
    const Graph got = api::build_graph(api::GraphSpec::udg(200, 5.0, 7));
    EXPECT_EQ(got.num_nodes(), expected.num_nodes());
    EXPECT_TRUE(std::equal(got.edges().begin(), got.edges().end(), expected.edges().begin(),
                           expected.edges().end()));
  }
  // file: round-trips through the edge-list format.
  const Graph g = test_graph(5);
  const std::string path = "test_api_spec_graph.txt";
  {
    std::ofstream out(path);
    write_edge_list(out, g);
  }
  const Graph loaded = api::build_graph(api::parse_graph_spec("file:" + path));
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_TRUE(std::equal(loaded.edges().begin(), loaded.edges().end(), g.edges().begin(),
                         g.edges().end()));
  std::remove(path.c_str());
  EXPECT_THROW((void)api::build_graph(api::GraphSpec::file("does_not_exist.txt")),
               api::SpecError);
}

TEST(ApiSpec, RegistryBuildsBitExactMatchTheDirectConstructions) {
  const Graph g = test_graph(11);
  // th1, both tree backends.
  EXPECT_EQ(api::build_spanner(g, "th1?eps=0.5").edges,
            build_low_stretch_remote_spanner(g, 0.5, TreeAlgorithm::kMis));
  EXPECT_EQ(api::build_spanner(g, "th1?eps=0.25&tree=greedy").edges,
            build_low_stretch_remote_spanner(g, 0.25, TreeAlgorithm::kGreedy));
  // th2 / th3.
  EXPECT_EQ(api::build_spanner(g, "th2?k=1").edges, build_k_connecting_spanner(g, 1));
  EXPECT_EQ(api::build_spanner(g, "th2?k=2").edges, build_k_connecting_spanner(g, 2));
  EXPECT_EQ(api::build_spanner(g, "th3?k=2").edges, build_2connecting_spanner(g, 2));
  // mpr / greedy / full.
  EXPECT_EQ(api::build_spanner(g, "mpr").edges, olsr_mpr_spanner(g));
  EXPECT_EQ(api::build_spanner(g, "greedy?t=3").edges, greedy_spanner(g, 3.0));
  EXPECT_EQ(api::build_spanner(g, "full").edges, EdgeSet(g, true));
  // baswana: seeded from the spec...
  {
    Rng direct(9);
    EXPECT_EQ(api::build_spanner(g, "baswana?k=2&seed=9").edges,
              baswana_sen_spanner(g, 2, direct));
  }
  // ...or drawing from a caller-threaded RNG (remspan_tool's shared seed).
  {
    Rng direct(4);
    const EdgeSet first = baswana_sen_spanner(g, 2, direct);
    const EdgeSet second = baswana_sen_spanner(g, 3, direct);
    Rng threaded(4);
    api::BuildContext ctx;
    ctx.rng = &threaded;
    EXPECT_EQ(api::build_spanner(g, "baswana?k=2", ctx).edges, first);
    EXPECT_EQ(api::build_spanner(g, "baswana?k=3", ctx).edges, second);
  }
  // SpannerBuildInfo flows through for the tree-union constructions.
  SpannerBuildInfo direct_info;
  (void)build_k_connecting_spanner(g, 1, &direct_info);
  const api::SpannerResult res = api::build_spanner(g, "th2?k=1");
  EXPECT_EQ(res.info.sum_tree_edges, direct_info.sum_tree_edges);
  EXPECT_EQ(res.info.max_tree_edges, direct_info.max_tree_edges);
}

TEST(ApiSpec, GuaranteesLabelsAndVerifiersMatchTheConstructions) {
  const Graph g = test_graph(13);
  const auto th1 = api::build_spanner(g, "th1?eps=0.5");
  EXPECT_DOUBLE_EQ(th1.guarantee.alpha, 1.5);
  EXPECT_DOUBLE_EQ(th1.guarantee.beta, 0.0);
  EXPECT_EQ(th1.guarantee_label, "remote (1.50,0.00)");
  ASSERT_NE(th1.verify, nullptr);
  EXPECT_TRUE(th1.verify(g, th1.edges, {}).satisfied);

  EXPECT_EQ(api::guarantee_label(api::parse_spanner_spec("th2?k=2")),
            "2-connecting remote (1,0)");
  EXPECT_EQ(api::guarantee_label(api::parse_spanner_spec("th3")),
            "2-connecting remote (2,-1)");
  EXPECT_EQ(api::guarantee_label(api::parse_spanner_spec("mpr")), "remote (1,0) via OLSR MPR");
  EXPECT_EQ(api::guarantee_label(api::parse_spanner_spec("baswana?k=3")), "classical (5,0)");
  EXPECT_DOUBLE_EQ(api::guarantee(api::parse_spanner_spec("greedy?t=3")).alpha, 3.0);

  // full has nothing to verify; every other kind has an oracle.
  EXPECT_EQ(api::make_verifier(api::parse_spanner_spec("full")), nullptr);
  EXPECT_NE(api::make_verifier(api::parse_spanner_spec("th2")), nullptr);
  const auto th2 = api::build_spanner(g, "th2?k=1");
  api::VerifyOptions opts;
  opts.sample_pairs = 100;
  EXPECT_TRUE(th2.verify(g, th2.edges, opts).satisfied);
}

TEST(ApiSpec, CapabilityMapsMatchTheDynamicAndProtocolConfigs) {
  EXPECT_TRUE(api::supports_incremental(api::parse_spanner_spec("th1")));
  EXPECT_TRUE(api::supports_incremental(api::parse_spanner_spec("th2")));
  EXPECT_TRUE(api::supports_incremental(api::parse_spanner_spec("th3")));
  EXPECT_FALSE(api::supports_incremental(api::parse_spanner_spec("mpr")));
  EXPECT_FALSE(api::supports_incremental(api::parse_spanner_spec("greedy")));
  EXPECT_FALSE(api::supports_incremental(api::parse_spanner_spec("full")));
  EXPECT_TRUE(api::supports_protocol(api::parse_spanner_spec("mpr")));
  EXPECT_FALSE(api::supports_protocol(api::parse_spanner_spec("baswana")));

  const IncrementalConfig inc = api::incremental_config(api::parse_spanner_spec("th2?k=2"));
  EXPECT_EQ(inc.construction, IncrementalConfig::Construction::kKConnecting);
  EXPECT_EQ(inc.k, 2u);
  const IncrementalConfig th1 = api::incremental_config(api::parse_spanner_spec("th1?eps=0.5"));
  EXPECT_EQ(th1.construction, IncrementalConfig::Construction::kRBetaTree);
  EXPECT_EQ(th1.r, domination_radius_for_eps(0.5));
  EXPECT_EQ(th1.algo, TreeAlgorithm::kMis);

  const RemSpanConfig proto = api::protocol_config(api::parse_spanner_spec("th1?eps=0.25"));
  EXPECT_EQ(proto.kind, RemSpanConfig::Kind::kLowStretchMis);
  EXPECT_EQ(proto.r, 5u);
  EXPECT_EQ(api::protocol_config(api::parse_spanner_spec("mpr")).kind,
            RemSpanConfig::Kind::kOlsrMpr);
  EXPECT_THROW((void)api::incremental_config(api::parse_spanner_spec("mpr")), api::SpecError);
  EXPECT_THROW((void)api::protocol_config(api::parse_spanner_spec("full")), api::SpecError);
}

TEST(ApiSpec, IncrementalSessionTracksTheDirectEngine) {
  const Graph g = test_graph(17);
  const api::SpannerSpec spec = api::parse_spanner_spec("th2?k=1");
  const auto session = api::open_incremental_session(g, spec);
  // (edge_list compare: the session maintains its own snapshot copy of g.)
  EXPECT_EQ(session->spanner().edge_list(), build_k_connecting_spanner(g, 1).edge_list());
  // A mixed batch stays bit-exact vs a from-scratch registry build.
  std::vector<GraphEvent> batch;
  const Edge e0 = g.edge(0);
  batch.push_back(GraphEvent::edge_down(e0.u, e0.v));
  batch.push_back(GraphEvent::edge_up(0, g.num_nodes() - 1));
  const ChurnBatchStats stats = session->apply_batch(batch);
  EXPECT_EQ(stats.spanner_edges, session->spanner().size());
  EXPECT_EQ(session->spanner(), api::build_spanner(session->graph(), spec).edges);
  EXPECT_THROW((void)api::open_incremental_session(g, api::parse_spanner_spec("greedy")),
               api::SpecError);
}

TEST(ApiSpec, RuntimeRegisteredConstructionIsStringAddressable) {
  // The extension point future constructions use: register once, reachable
  // from every driver by spec string, parameters included.
  api::Construction toy;
  toy.name = "everyother";
  toy.summary = "keeps every stride-th edge (test construction)";
  toy.build_edges = [](const Graph& g, const api::SpannerSpec& spec, const api::BuildContext&) {
    std::size_t stride = 2;
    if (const auto v = spec.custom_param("stride")) stride = std::stoul(*v);
    EdgeSet h(g);
    for (EdgeId id = 0; id < g.num_edges(); id += stride) h.insert(id);
    return h;
  };
  toy.guarantee = [](const api::SpannerSpec&) { return Stretch{0.0, 0.0}; };
  toy.guarantee_label = [](const api::SpannerSpec&) { return std::string("toy"); };
  api::ConstructionRegistry::global().register_construction(toy);

  Rng rng(19);
  const Graph g = connected_gnp(40, 0.15, rng);
  const auto res = api::build_spanner(g, "everyother?stride=3");
  std::size_t expected = 0;
  for (EdgeId id = 0; id < g.num_edges(); id += 3) ++expected;
  EXPECT_EQ(res.edges.size(), expected);
  EXPECT_EQ(res.guarantee_label, "toy");
  EXPECT_EQ(res.verify, nullptr);
  // Round-trip of the custom spec string.
  const api::SpannerSpec spec = api::parse_spanner_spec("everyother?stride=3");
  EXPECT_EQ(spec.to_string(), "everyother?stride=3");
  EXPECT_EQ(api::parse_spanner_spec(spec.to_string()), spec);
  // Duplicate registration is rejected.
  EXPECT_THROW(api::ConstructionRegistry::global().register_construction(toy), api::SpecError);
}

}  // namespace
}  // namespace remspan
