// Incremental maintenance must be indistinguishable from rebuilding: after
// every batch the maintained spanner is required to be BIT-EXACT equal to a
// from-scratch build on the same snapshot, across graph families, seeds,
// constructions (r/k/beta), and batch sizes. Also pinned: the dirty-root
// set is a superset of the roots whose trees actually change, and the
// per-edge refcounts always equal the number of owning trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/dominating_tree.hpp"
#include "dynamic/churn_trace.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "support/corpus.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

/// The shared churn corpus and construction sweep (tests/support/corpus.hpp);
/// aliased so the sweep bodies below read the same as before the extraction.
Graph make_family(int family, std::uint64_t seed) {
  return testsupport::churn_family(family, seed);
}

std::vector<IncrementalConfig> sweep_configs() { return testsupport::incremental_sweep_configs(); }

/// One random batch of events: edge toggles over node pairs biased toward
/// existing edges, with a sprinkle of node up/down churn.
std::vector<GraphEvent> random_batch(const DynamicGraph& dg, const Graph& current,
                                     std::size_t size, Rng& rng) {
  std::vector<GraphEvent> batch;
  const NodeId n = dg.num_nodes();
  for (std::size_t i = 0; i < size; ++i) {
    const double roll = rng.uniform_real();
    if (roll < 0.1) {
      const auto v = static_cast<NodeId>(rng.uniform(n));
      batch.push_back(dg.node_up(v) ? GraphEvent::node_down(v) : GraphEvent::node_up(v));
    } else if (roll < 0.55 && current.num_edges() > 0) {
      const Edge e = current.edge(static_cast<EdgeId>(rng.uniform(current.num_edges())));
      batch.push_back(GraphEvent::edge_down(e.u, e.v));
    } else {
      const auto a = static_cast<NodeId>(rng.uniform(n));
      auto b = static_cast<NodeId>(rng.uniform(n));
      if (a == b) b = (b + 1) % n;
      batch.push_back(rng.bernoulli(0.5) ? GraphEvent::edge_up(a, b)
                                         : GraphEvent::edge_down(a, b));
    }
  }
  return batch;
}

/// From-scratch trees of every root (the oracle for dirty-set and refcount
/// assertions).
std::vector<std::vector<Edge>> all_trees(const Graph& g, const IncrementalConfig& cfg) {
  DomTreeBuilder builder(g);
  std::vector<std::vector<Edge>> trees(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const RootedTree tree = cfg.build_tree(builder, u);
    for (const NodeId v : tree.nodes()) {
      if (v != tree.root()) trees[u].push_back(make_edge(v, tree.parent(v)));
    }
    std::sort(trees[u].begin(), trees[u].end(),
              [](const Edge& x, const Edge& y) { return x.u != y.u ? x.u < y.u : x.v < y.v; });
  }
  return trees;
}

TEST(IncrementalSpanner, MatchesFromScratchAcrossFamiliesConfigsAndBatches) {
  // >= 100 update batches in total, every one checked bit-exactly.
  std::size_t total_batches = 0;
  for (int family = 0; family < 3; ++family) {
    for (const IncrementalConfig& cfg : sweep_configs()) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        Rng rng(1000 * seed + family);
        DynamicGraph dg(make_family(family, seed));
        IncrementalSpanner inc(dg, cfg);
        EXPECT_EQ(inc.spanner(), cfg.build_full(inc.graph()));
        // Varying batch sizes, including empty and single-event batches.
        const std::size_t batch_sizes[] = {1, 0, 4, 13, 2};
        for (const std::size_t size : batch_sizes) {
          const auto batch = random_batch(dg, inc.graph(), size, rng);
          const ChurnBatchStats stats = inc.apply_batch(batch);
          ASSERT_EQ(inc.spanner(), cfg.build_full(inc.graph()))
              << "family " << family << " cfg " << cfg.name() << " seed " << seed
              << " batch size " << size;
          EXPECT_EQ(stats.spanner_edges, inc.spanner().size());
          EXPECT_EQ(stats.version, dg.version());
          ++total_batches;
        }
      }
    }
  }
  EXPECT_GE(total_batches, 100u);
}

TEST(IncrementalSpanner, DirtySetIsSupersetOfChangedTrees) {
  for (int family = 0; family < 3; ++family) {
    const IncrementalConfig cfg =
        family == 1 ? IncrementalConfig::two_connecting(2) : IncrementalConfig::k_connecting(2);
    Rng rng(77 + family);
    DynamicGraph dg(make_family(family, 5));
    IncrementalSpanner inc(dg, cfg);
    for (int step = 0; step < 8; ++step) {
      const auto old_graph = dg.snapshot();
      const auto old_trees = all_trees(*old_graph, cfg);
      const auto batch = random_batch(dg, inc.graph(), 6, rng);
      inc.apply_batch(batch);
      const auto new_trees = all_trees(inc.graph(), cfg);
      const auto& dirty = inc.last_dirty_roots();
      for (NodeId u = 0; u < dg.num_nodes(); ++u) {
        if (old_trees[u] != new_trees[u]) {
          EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(), u))
              << "root " << u << " changed but was not marked dirty (family " << family
              << ", step " << step << ")";
        }
      }
      // And the engine's stored trees match the from-scratch oracle.
      for (NodeId u = 0; u < dg.num_nodes(); ++u) {
        auto stored = inc.tree_edges(u);
        std::sort(stored.begin(), stored.end(), [](const Edge& x, const Edge& y) {
          return x.u != y.u ? x.u < y.u : x.v < y.v;
        });
        EXPECT_EQ(stored, new_trees[u]) << "root " << u;
      }
    }
  }
}

TEST(IncrementalSpanner, RefcountsEqualOwningTreeCounts) {
  const IncrementalConfig cfg = IncrementalConfig::k_connecting(1);
  Rng rng(99);
  DynamicGraph dg(make_family(0, 9));
  IncrementalSpanner inc(dg, cfg);
  for (int step = 0; step < 6; ++step) {
    const auto batch = random_batch(dg, inc.graph(), 8, rng);
    inc.apply_batch(batch);
    const Graph& g = inc.graph();
    const auto trees = all_trees(g, cfg);
    std::vector<std::uint32_t> expected(g.num_edges(), 0);
    for (const auto& tree : trees) {
      for (const Edge& e : tree) {
        const EdgeId id = g.find_edge(e.u, e.v);
        ASSERT_NE(id, kInvalidEdge);
        ++expected[id];
      }
    }
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      ASSERT_EQ(inc.edge_refcount(id), expected[id]) << "edge " << id << " step " << step;
      EXPECT_EQ(inc.spanner().contains(id), expected[id] > 0);
    }
  }
}

TEST(IncrementalSpanner, NoOpAndEmptyBatchesLeaveSpannerUntouched) {
  DynamicGraph dg(make_family(0, 3));
  IncrementalSpanner inc(dg, IncrementalConfig::k_connecting(1));
  const EdgeSet before = inc.spanner();
  ChurnBatchStats stats = inc.apply_batch({});
  EXPECT_EQ(stats.dirty_roots, 0u);
  EXPECT_EQ(inc.spanner(), before);
  // Re-adding an existing edge is a stored-state no-op.
  const Edge e = inc.graph().edge(0);
  const std::vector<GraphEvent> noop = {GraphEvent::edge_up(e.u, e.v)};
  stats = inc.apply_batch(noop);
  EXPECT_EQ(stats.applied_events, 0u);
  EXPECT_EQ(stats.dirty_roots, 0u);
  EXPECT_EQ(inc.spanner(), before);
}

TEST(IncrementalSpanner, MaskedEdgeChurnBehindDownNodeIsInvisible) {
  // Storing/removing edges of a DOWN node never touches the live snapshot;
  // the spanner must not change until the node comes back.
  DynamicGraph dg(make_family(2, 4));
  IncrementalSpanner inc(dg, IncrementalConfig::k_connecting(1));
  const NodeId v = 0;
  std::vector<GraphEvent> batch = {GraphEvent::node_down(v)};
  inc.apply_batch(batch);
  EXPECT_EQ(inc.spanner(), inc.config().build_full(inc.graph()));
  const EdgeSet masked = inc.spanner();
  // Edge churn incident to the down node: stored-state changes, live no-ops.
  batch = {GraphEvent::edge_up(v, 5), GraphEvent::edge_up(v, 9), GraphEvent::edge_down(v, 5)};
  const ChurnBatchStats stats = inc.apply_batch(batch);
  EXPECT_GT(stats.applied_events, 0u);
  EXPECT_EQ(stats.dirty_roots, 0u);
  EXPECT_EQ(inc.spanner(), masked);
  // Node back up: the stored edge {v,9} joins the live topology.
  batch = {GraphEvent::node_up(v)};
  inc.apply_batch(batch);
  EXPECT_TRUE(inc.graph().has_edge(v, 9));
  EXPECT_EQ(inc.spanner(), inc.config().build_full(inc.graph()));
}

TEST(IncrementalSpanner, ChurnTraceReplayStaysEquivalent) {
  // End-to-end over the three scenario generators on a geometric graph.
  Rng rng(2024);
  const auto gg = largest_component(uniform_unit_ball_graph(120, 6.0, 2, rng));
  const ChurnTrace traces[] = {
      random_edge_churn_trace(gg.graph, 6, 8, 0.1, 1),
      mobility_churn_trace(gg, 6, 2, 2),
      region_outage_trace(gg, 3, 1.5, 3),
  };
  for (const ChurnTrace& trace : traces) {
    DynamicGraph dg(trace.initial_graph());
    IncrementalSpanner inc(dg, IncrementalConfig::k_connecting(1));
    for (const auto& batch : trace.batches) {
      inc.apply_batch(batch);
      ASSERT_EQ(inc.spanner(), inc.config().build_full(inc.graph()));
    }
  }
}

TEST(IncrementalSpanner, RemovalOnlyBatchExpandsOldSnapshotBallOnly) {
  // Decremental fast path: a batch with no insertions seeds the dirty
  // expansion only in the OLD snapshot (one bounded BFS), and that ball is
  // exactly what the engine marks dirty — still a superset of every
  // changed tree (bit-exactness is asserted on top).
  for (const IncrementalConfig& cfg :
       {IncrementalConfig::k_connecting(1), IncrementalConfig::low_stretch(0.5)}) {
    Rng rng(17);
    DynamicGraph dg(make_family(0, 6));
    IncrementalSpanner inc(dg, cfg);
    const auto old_graph = dg.snapshot();
    std::vector<GraphEvent> batch;
    for (EdgeId id = 0; id < old_graph->num_edges(); id += 7) {
      const Edge e = old_graph->edge(id);
      batch.push_back(GraphEvent::edge_down(e.u, e.v));
    }
    inc.apply_batch(batch);
    ASSERT_EQ(inc.spanner(), cfg.build_full(inc.graph()));

    // Expected dirty set: ball of the removed endpoints at OLD distances.
    std::vector<NodeId> touched;
    for (const auto& e : batch) {
      touched.push_back(e.u);
      touched.push_back(e.v);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    BoundedBfs bfs(old_graph->num_nodes());
    std::vector<std::uint8_t> flag(old_graph->num_nodes(), 0);
    for (const NodeId v : bfs.run_multi(GraphView(*old_graph), touched, cfg.dirty_radius())) {
      flag[v] = 1;
    }
    std::vector<NodeId> expected;
    for (NodeId v = 0; v < flag.size(); ++v) {
      if (flag[v] != 0) expected.push_back(v);
    }
    EXPECT_EQ(inc.last_dirty_roots(), expected) << cfg.name();
  }
}

TEST(IncrementalSpanner, InsertionOnlyBatchExpandsNewSnapshotBallOnly) {
  const IncrementalConfig cfg = IncrementalConfig::low_stretch(0.5);
  DynamicGraph dg(make_family(1, 7));
  IncrementalSpanner inc(dg, cfg);
  const NodeId n = dg.num_nodes();
  std::vector<GraphEvent> batch;
  for (NodeId v = 0; v + 7 < n; v += 13) {
    if (!inc.graph().has_edge(v, v + 7)) batch.push_back(GraphEvent::edge_up(v, v + 7));
  }
  ASSERT_FALSE(batch.empty());
  inc.apply_batch(batch);
  const auto new_graph = dg.snapshot();
  ASSERT_EQ(inc.spanner(), cfg.build_full(*new_graph));

  std::vector<NodeId> touched;
  for (const auto& e : batch) {
    touched.push_back(e.u);
    touched.push_back(e.v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  BoundedBfs bfs(n);
  std::vector<std::uint8_t> flag(n, 0);
  for (const NodeId v : bfs.run_multi(GraphView(*new_graph), touched, cfg.dirty_radius())) {
    flag[v] = 1;
  }
  std::vector<NodeId> expected;
  for (NodeId v = 0; v < flag.size(); ++v) {
    if (flag[v] != 0) expected.push_back(v);
  }
  EXPECT_EQ(inc.last_dirty_roots(), expected);
}

TEST(IncrementalSpanner, AlternatingPureBatchesStayBitExactAndSuperset) {
  // Pure-removal and pure-insertion batches in alternation (each one takes
  // the single-BFS fast path) keep both core invariants: bit-exactness and
  // dirty-superset-of-changed-trees.
  const IncrementalConfig cfg = IncrementalConfig::r_beta_tree(3, 1, TreeAlgorithm::kGreedy);
  Rng rng(23);
  DynamicGraph dg(make_family(2, 11));
  IncrementalSpanner inc(dg, cfg);
  std::vector<Edge> parked;  // removed edges waiting to be re-inserted
  for (int step = 0; step < 6; ++step) {
    const auto old_graph = dg.snapshot();
    const auto old_trees = all_trees(*old_graph, cfg);
    std::vector<GraphEvent> batch;
    if (step % 2 == 0) {
      for (int i = 0; i < 5 && old_graph->num_edges() > 0; ++i) {
        const Edge e =
            old_graph->edge(static_cast<EdgeId>(rng.uniform(old_graph->num_edges())));
        batch.push_back(GraphEvent::edge_down(e.u, e.v));
        parked.push_back(e);
      }
    } else {
      for (const Edge& e : parked) batch.push_back(GraphEvent::edge_up(e.u, e.v));
      parked.clear();
    }
    inc.apply_batch(batch);
    ASSERT_EQ(inc.spanner(), cfg.build_full(inc.graph())) << "step " << step;
    const auto new_trees = all_trees(inc.graph(), cfg);
    const auto& dirty = inc.last_dirty_roots();
    for (NodeId u = 0; u < dg.num_nodes(); ++u) {
      if (old_trees[u] != new_trees[u]) {
        EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(), u))
            << "root " << u << " changed but was not marked dirty (step " << step << ")";
      }
    }
  }
}

TEST(IncrementalSpanner, RefcountZeroRemovalSkipWouldBeUnsound) {
  // The ROADMAP conjectured that removing an edge OUTSIDE every stored tree
  // (union refcount 0) needs no rebuild. That is false: the greedy cover
  // scans read non-tree edges, and removing one can flip a pick. This test
  // pins a counterexample so the conjecture is not "re-implemented" later:
  // it finds a refcount-0 edge whose removal changes some root's tree.
  const IncrementalConfig cfg = IncrementalConfig::k_connecting(1);
  bool counterexample_found = false;
  for (std::uint64_t seed = 1; seed <= 8 && !counterexample_found; ++seed) {
    Rng rng(seed);
    const Graph g = gnp(20, 0.25, rng);
    const auto trees = all_trees(g, cfg);
    std::vector<std::uint32_t> ref(g.num_edges(), 0);
    for (const auto& tree : trees) {
      for (const Edge& e : tree) ++ref[g.find_edge(e.u, e.v)];
    }
    for (EdgeId id = 0; id < g.num_edges() && !counterexample_found; ++id) {
      if (ref[id] != 0) continue;
      std::vector<Edge> edges(g.edges().begin(), g.edges().end());
      edges.erase(edges.begin() + id);
      const Graph without = Graph::from_canonical_edges(g.num_nodes(), std::move(edges));
      counterexample_found = all_trees(without, cfg) != trees;
    }
  }
  EXPECT_TRUE(counterexample_found)
      << "no refcount-0 removal changed any tree across the sampled graphs — if the "
         "builders changed to make the skip sound, IncrementalSpanner can adopt it";
}

TEST(IncrementalSpanner, LargeSingleBatchEqualsRebuild) {
  // A batch that churns a large fraction of the graph still lands bit-exact
  // (most roots go dirty; exercises the remap path under heavy turnover).
  Rng rng(31);
  DynamicGraph dg(make_family(1, 8));
  IncrementalSpanner inc(dg, IncrementalConfig::k_connecting(1));
  std::vector<GraphEvent> batch;
  const Graph& g = inc.graph();
  for (EdgeId id = 0; id < g.num_edges(); id += 2) {
    const Edge e = g.edge(id);
    batch.push_back(GraphEvent::edge_down(e.u, e.v));
  }
  inc.apply_batch(batch);
  EXPECT_EQ(inc.spanner(), inc.config().build_full(inc.graph()));
}

}  // namespace
}  // namespace remspan
