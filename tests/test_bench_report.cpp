// The JSON bench reporter: schema emission, file writing, and exact
// round-trips through parse_report (the trajectory tooling depends on both
// directions agreeing).
#include "util/json_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/prelude.hpp"

namespace remspan {
namespace {

BenchReport sample_report() {
  BenchReport report("udg_scaling");
  report.set_seed(42);
  report.param("side", 7.5);
  report.param("mean_nodes", std::int64_t{4000});
  report.param("algo", std::string("mis"));
  report.value("edges_per_node", 3.25);
  report.value("spanner_edges", std::int64_t{12831});
  report.set_wall_seconds(1.625);
  return report;
}

TEST(BenchReport, EmitsFixedSchema) {
  const std::string json = sample_report().to_json();
  EXPECT_NE(json.find("\"bench\": \"udg_scaling\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"params\": {"), std::string::npos);
  EXPECT_NE(json.find("\"values\": {"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 1.625"), std::string::npos);
  // params keep insertion order.
  EXPECT_LT(json.find("\"side\""), json.find("\"mean_nodes\""));
}

TEST(BenchReport, RoundTripsExactly) {
  const BenchReport original = sample_report();
  const BenchReport parsed = parse_report(original.to_json());
  EXPECT_EQ(parsed, original);
  // And the fixed point holds: serializing again yields identical bytes.
  EXPECT_EQ(parsed.to_json(), original.to_json());
}

TEST(BenchReport, RoundTripsAwkwardDoublesAndStrings) {
  BenchReport report("edge cases");
  report.set_seed(0);
  report.param("label", std::string("quote \" backslash \\ newline \n tab \t"));
  report.value("third", 1.0 / 3.0);
  report.value("big", 1e300);
  report.value("negative", -0.125);
  report.value("whole", 2.0);  // stays a double through the round-trip
  const BenchReport parsed = parse_report(report.to_json());
  EXPECT_EQ(parsed, report);
}

TEST(BenchReport, JsonQuoteEscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("\n\t\r"), "\"\\n\\t\\r\"");
  // Control characters without a short escape take the \u00XX form.
  EXPECT_EQ(json_quote(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(json_quote(std::string("\b\f", 2)), "\"\\u0008\\u000c\"");
  EXPECT_EQ(json_quote(std::string("\x1f", 1)), "\"\\u001f\"");
  // Embedded NUL survives as \u0000, not as a truncation point.
  EXPECT_EQ(json_quote(std::string("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(BenchReport, RoundTripsHostileKeysAndValues) {
  // Keys are strings too: escaping must cover them, not just values. The
  // payload mixes quotes, backslashes, braces (parser confusers) and raw
  // control bytes in both positions.
  BenchReport report("hostile \"bench\" \\ name \x01");
  report.set_seed(7);
  report.param(std::string("key \"q\" \\ {brace} \n"), std::int64_t{1});
  report.param(std::string("ctl\x01\x1f\bkey"), std::string("ctl\x02\x7f\fvalue"));
  report.value(std::string("v\b\f\r\t"), std::string("bell\x07, unit sep \x1f, del \x7f"));
  report.value(std::string("closer}\":,"), -3.5);
  const BenchReport parsed = parse_report(report.to_json());
  EXPECT_EQ(parsed, report);
  // Fixed point: serializing the parse yields identical bytes.
  EXPECT_EQ(parsed.to_json(), report.to_json());
}

TEST(BenchReport, OverwritingAKeyKeepsPosition) {
  BenchReport report("r");
  report.param("n", std::int64_t{10});
  report.param("side", 2.0);
  report.param("n", std::int64_t{20});
  ASSERT_EQ(report.params().size(), 2u);
  EXPECT_EQ(report.params()[0].first, "n");
  EXPECT_EQ(std::get<std::int64_t>(report.params()[0].second), 20);
}

TEST(BenchReport, WritesDefaultFilename) {
  const BenchReport report = sample_report();
  EXPECT_EQ(report.default_filename(), "BENCH_udg_scaling.json");
  const std::string path = "BENCH_roundtrip_test.json";
  report.write_file(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(parse_report(buf.str()), report);
  std::remove(path.c_str());
}

TEST(BenchReport, RoundTripsFullRangeSeeds) {
  BenchReport report("big seed");
  report.set_seed(~std::uint64_t{0});  // > INT64_MAX, valid for Rng
  const BenchReport parsed = parse_report(report.to_json());
  EXPECT_EQ(parsed.seed(), ~std::uint64_t{0});
  EXPECT_EQ(parsed, report);
}

TEST(BenchReport, ParsesReorderedKeys) {
  // A hand-edited report may not keep "bench" first; all members must
  // survive regardless of order.
  const BenchReport parsed = parse_report(
      "{\"seed\": 42, \"values\": {\"v\": 7}, \"wall_seconds\": 0.5,"
      " \"params\": {\"p\": 1.5}, \"bench\": \"reordered\"}");
  EXPECT_EQ(parsed.name(), "reordered");
  EXPECT_EQ(parsed.seed(), 42u);
  EXPECT_EQ(parsed.wall_seconds(), 0.5);
  ASSERT_EQ(parsed.params().size(), 1u);
  EXPECT_EQ(std::get<double>(parsed.params()[0].second), 1.5);
  ASSERT_EQ(parsed.values().size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(parsed.values()[0].second), 7);
}

TEST(BenchReport, RejectsMalformedInput) {
  EXPECT_THROW(parse_report(""), CheckError);
  EXPECT_THROW(parse_report("{\"bench\": \"x\""), CheckError);
  EXPECT_THROW(parse_report("{\"unknown_key\": 1}"), CheckError);
  EXPECT_THROW(parse_report("{} trailing"), CheckError);
}

TEST(BenchReport, RejectsMalformedNumbers) {
  // Number tokens parse through util/strnum's whole-string parsers, so a
  // hand-edited report with a garbage-suffixed or overflowing number fails
  // as a CheckError — never as a silent prefix-parse and never as a raw
  // std::invalid_argument/out_of_range escaping from std::stod.
  const auto with_value = [](const char* token) {
    return std::string("{\"bench\": \"x\", \"seed\": 1, \"params\": {},"
                       " \"values\": {\"v\": ") +
           token + "}, \"wall_seconds\": 0.5}";
  };
  EXPECT_THROW(parse_report(with_value("1.5x")), CheckError);    // trailing garbage
  EXPECT_THROW(parse_report(with_value("1e999")), CheckError);   // double overflow
  EXPECT_THROW(parse_report(with_value("nan")), CheckError);     // non-finite
  EXPECT_THROW(parse_report(with_value("0x10")), CheckError);    // hex is not JSON
  EXPECT_THROW(parse_report(with_value("99999999999999999999")), CheckError);  // int64 overflow
  // The well-formed neighbours of those tokens still parse.
  const BenchReport ok = parse_report(with_value("1.5"));
  EXPECT_EQ(std::get<double>(ok.values()[0].second), 1.5);
}

}  // namespace
}  // namespace remspan
