// The four dominating-tree algorithms (paper Algorithms 1, 2, 4, 5),
// validated against the exhaustive property checkers on structured and
// random graphs.
#include <gtest/gtest.h>

#include "core/dominating_tree.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph sample_graph(int which, Rng& rng) {
  switch (which % 6) {
    case 0:
      return connected_gnp(40, 0.12, rng);
    case 1:
      return grid_graph(7, 7);
    case 2:
      return cycle_graph(25);
    case 3: {
      const auto gg = uniform_unit_ball_graph(60, 5.0, 2, rng);
      const auto comps = connected_components(gg.graph);
      return induced_subgraph(gg.graph, comps.largest()).graph;
    }
    case 4:
      return hypercube_graph(5);
    default:
      return complete_bipartite(5, 9);
  }
}

TEST(DomTreeGreedy, StarCoversDistanceTwoShell) {
  // Node 0 center of a star plus a ring at distance 2.
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(1, 4);
  b.add_edge(2, 5);
  b.add_edge(2, 6);
  const Graph g = b.build();
  DomTreeBuilder builder(g);
  const RootedTree t = builder.greedy(0, 2, 0);
  EXPECT_TRUE(is_dominating_tree(g, t, 2, 0));
  // Both children are required (each covers its own pair of leaves).
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(t.contains(2));
  EXPECT_EQ(t.num_edges(), 2u);
}

TEST(DomTreeGreedy, GreedyPrefersHighCoverage) {
  // Node 1 covers three distance-2 nodes, node 2 covers one of them; the
  // greedy must finish with just node 1.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(1, 4);
  b.add_edge(1, 5);
  b.add_edge(2, 3);
  const Graph g = b.build();
  DomTreeBuilder builder(g);
  const RootedTree t = builder.greedy(0, 2, 0);
  EXPECT_TRUE(is_dominating_tree(g, t, 2, 0));
  EXPECT_EQ(t.num_edges(), 1u);
  EXPECT_TRUE(t.contains(1));
}

TEST(DomTreeGreedy, PropertyHoldsAcrossRadiiAndBeta) {
  Rng rng(101);
  for (int which = 0; which < 6; ++which) {
    const Graph g = sample_graph(which, rng);
    DomTreeBuilder builder(g);
    for (const Dist r : {2u, 3u, 4u}) {
      for (const Dist beta : {0u, 1u}) {
        for (NodeId u = 0; u < g.num_nodes(); u += 5) {
          const RootedTree t = builder.greedy(u, r, beta);
          EXPECT_TRUE(is_dominating_tree(g, t, r, beta))
              << "graph=" << which << " r=" << r << " beta=" << beta << " u=" << u;
          // A (r, 0)-dominating tree is in particular (r, 1)-dominating.
          if (beta == 0) {
            EXPECT_TRUE(is_dominating_tree(g, t, r, 1));
          }
        }
      }
    }
  }
}

TEST(DomTreeGreedy, TreeDepthsEqualGraphDistances) {
  Rng rng(103);
  const Graph g = connected_gnp(35, 0.15, rng);
  DomTreeBuilder builder(g);
  const RootedTree t = builder.greedy(0, 3, 1);
  const auto dist = bfs_distances(GraphView(g), 0);
  for (const NodeId v : t.nodes()) {
    EXPECT_EQ(t.depth(v), dist[v]) << "v=" << v;
  }
}

TEST(DomTreeMis, PropertyHoldsAcrossRadii) {
  Rng rng(105);
  for (int which = 0; which < 6; ++which) {
    const Graph g = sample_graph(which, rng);
    DomTreeBuilder builder(g);
    for (const Dist r : {2u, 3u, 5u}) {
      for (NodeId u = 0; u < g.num_nodes(); u += 4) {
        const RootedTree t = builder.mis(u, r);
        EXPECT_TRUE(is_dominating_tree(g, t, r, 1))
            << "graph=" << which << " r=" << r << " u=" << u;
      }
    }
  }
}

TEST(DomTreeMis, MembersFormIndependentShellSet) {
  // The nodes the MIS algorithm picks (tree members at depth >= 2 that are
  // leaves of their addition) must be pairwise non-adjacent by construction.
  Rng rng(107);
  const Graph g = connected_gnp(50, 0.1, rng);
  DomTreeBuilder builder(g);
  const RootedTree t = builder.mis(3, 4);
  EXPECT_TRUE(is_dominating_tree(g, t, 4, 1));
}

TEST(DomTreeMis, BoundedSizeOnDoublingUbg) {
  // Proposition 3: O(r^{p+1}) edges on a doubling UBG, independent of n.
  Rng rng(109);
  const Dist r = 3;
  std::size_t max_edges_small = 0, max_edges_large = 0;
  for (const std::size_t n : {200u, 800u}) {
    const auto gg = uniform_unit_ball_graph(n, 6.0, 2, rng);
    DomTreeBuilder builder(gg.graph);
    std::size_t max_edges = 0;
    for (NodeId u = 0; u < gg.graph.num_nodes(); u += 9) {
      const RootedTree t = builder.mis(u, r);
      max_edges = std::max(max_edges, t.num_edges());
    }
    (n == 200u ? max_edges_small : max_edges_large) = max_edges;
  }
  // Quadrupling the density must not blow the tree size up: the Prop. 3
  // bound 4^p r^{p+1} with p ~ 2, r = 3 is ~432; we assert far below that
  // and — more tellingly — near-independence of n.
  EXPECT_LE(max_edges_large, 3 * max_edges_small + 16);
}

TEST(DomTreeGreedyK, MatchesDefinitionForAllK) {
  Rng rng(111);
  for (int which = 0; which < 6; ++which) {
    const Graph g = sample_graph(which, rng);
    DomTreeBuilder builder(g);
    for (const Dist k : {1u, 2u, 3u}) {
      for (NodeId u = 0; u < g.num_nodes(); u += 4) {
        const RootedTree t = builder.greedy_k(u, k);
        EXPECT_TRUE(is_k_connecting_dominating_tree(g, t, k, 0))
            << "graph=" << which << " k=" << k << " u=" << u;
        // k-connecting (2,0)-dominating is stronger than plain (2,0).
        EXPECT_TRUE(is_dominating_tree(g, t, 2, 0));
        // All nodes are root-adjacent (depth-1 star).
        for (const NodeId v : t.nodes()) EXPECT_LE(t.depth(v), 1u);
      }
    }
  }
}

TEST(DomTreeGreedyK, TakesAllCommonNeighborsWhenShortOfK) {
  // v at distance 2 with a single common neighbor and k = 3: the tree must
  // contain that neighbor (the "all of N(u) ∩ N(v)" fallback).
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  DomTreeBuilder builder(g);
  const RootedTree t = builder.greedy_k(0, 3);
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(is_k_connecting_dominating_tree(g, t, 3, 0));
}

TEST(DomTreeGreedyK, KCoverageUsesKDistinctRelays) {
  // v (node 4) reachable through three common neighbors 1,2,3; with k = 2
  // exactly two of them must be picked, with k = 3 all three.
  GraphBuilder b(5);
  for (NodeId mid = 1; mid <= 3; ++mid) {
    b.add_edge(0, mid);
    b.add_edge(mid, 4);
  }
  const Graph g = b.build();
  DomTreeBuilder builder(g);
  EXPECT_EQ(builder.greedy_k(0, 1).num_edges(), 1u);
  EXPECT_EQ(builder.greedy_k(0, 2).num_edges(), 2u);
  EXPECT_EQ(builder.greedy_k(0, 3).num_edges(), 3u);
  EXPECT_EQ(builder.greedy_k(0, 4).num_edges(), 3u);  // saturates at availability
}

TEST(DomTreeMisK, MatchesDefinitionForAllK) {
  Rng rng(113);
  for (int which = 0; which < 6; ++which) {
    const Graph g = sample_graph(which, rng);
    DomTreeBuilder builder(g);
    for (const Dist k : {1u, 2u, 3u}) {
      for (NodeId u = 0; u < g.num_nodes(); u += 4) {
        const RootedTree t = builder.mis_k(u, k);
        EXPECT_TRUE(is_k_connecting_dominating_tree(g, t, k, 1))
            << "graph=" << which << " k=" << k << " u=" << u;
        // Depth never exceeds 2 by construction.
        for (const NodeId v : t.nodes()) EXPECT_LE(t.depth(v), 2u);
      }
    }
  }
}

TEST(DomTreeMisK, BoundedSizeOnDoublingUbg) {
  // Proposition 7: O(k^2) edges on a doubling UBG.
  Rng rng(115);
  const auto gg = uniform_unit_ball_graph(700, 6.0, 2, rng);
  DomTreeBuilder builder(gg.graph);
  for (const Dist k : {1u, 2u, 4u}) {
    std::size_t max_edges = 0;
    for (NodeId u = 0; u < gg.graph.num_nodes(); u += 11) {
      max_edges = std::max(max_edges, builder.mis_k(u, k).num_edges());
    }
    // Each of the k MIS rounds adds O(1) picks on a doubling shell, each
    // contributing <= k+1 edges; allow a generous constant.
    EXPECT_LE(max_edges, 40u * k * k + 40u) << "k=" << k;
  }
}

TEST(DomTreeBuilder, ReusableAcrossRootsAndAlgorithms) {
  // One builder, interleaved calls: results must match fresh builders.
  Rng rng(117);
  const Graph g = connected_gnp(30, 0.15, rng);
  DomTreeBuilder shared(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    DomTreeBuilder fresh(g);
    EXPECT_EQ(shared.greedy(u, 3, 1).edges(), fresh.greedy(u, 3, 1).edges());
    EXPECT_EQ(shared.mis(u, 2).edges(), fresh.mis(u, 2).edges());
    EXPECT_EQ(shared.greedy_k(u, 2).edges(), fresh.greedy_k(u, 2).edges());
    EXPECT_EQ(shared.mis_k(u, 2).edges(), fresh.mis_k(u, 2).edges());
  }
}

TEST(DomTreeChecker, RejectsNonDominatingTree) {
  // A bare root does not dominate a path's distance-2 node.
  const Graph g = path_graph(4);
  const RootedTree t(0);
  EXPECT_FALSE(is_dominating_tree(g, t, 2, 0));
}

TEST(DomTreeChecker, RejectsInsufficientBranching) {
  // v=3 has two common neighbors with root 0, but the tree attaches only
  // one: fails the 2-connecting condition, passes the 1-connecting one.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const Graph g = b.build();
  RootedTree t(0);
  t.add_child(0, 1);
  EXPECT_TRUE(is_k_connecting_dominating_tree(g, t, 1, 0));
  EXPECT_FALSE(is_k_connecting_dominating_tree(g, t, 2, 0));
}

}  // namespace
}  // namespace remspan
