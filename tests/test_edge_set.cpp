// EdgeSet: insertion, membership, unions, filtered adjacency.
#include <gtest/gtest.h>

#include <set>

#include "geom/synthetic.hpp"
#include "graph/edge_set.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(EdgeSet, StartsEmpty) {
  const Graph g = complete_graph(5);
  const EdgeSet h(g);
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(0, 1));
}

TEST(EdgeSet, FullConstructor) {
  const Graph g = complete_graph(5);
  const EdgeSet h(g, true);
  EXPECT_EQ(h.size(), g.num_edges());
  EXPECT_TRUE(h.contains(3, 4));
}

TEST(EdgeSet, InsertByEndpointsEitherOrder) {
  const Graph g = path_graph(4);
  EdgeSet h(g);
  h.insert(2, 1);
  EXPECT_TRUE(h.contains(1, 2));
  EXPECT_TRUE(h.contains(2, 1));
  EXPECT_EQ(h.size(), 1u);
}

TEST(EdgeSet, InsertMissingEdgeThrows) {
  const Graph g = path_graph(4);
  EdgeSet h(g);
  EXPECT_THROW(h.insert(0, 2), CheckError);
}

TEST(EdgeSet, UnionAccumulates) {
  const Graph g = cycle_graph(6);
  EdgeSet a(g);
  EdgeSet b(g);
  a.insert(0, 1);
  b.insert(1, 2);
  b.insert(0, 1);
  a |= b;
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(0, 1));
  EXPECT_TRUE(a.contains(1, 2));
}

TEST(EdgeSet, DegreeInCountsSelectedOnly) {
  const Graph g = star_graph(5);
  EdgeSet h(g);
  h.insert(0, 1);
  h.insert(0, 2);
  EXPECT_EQ(h.degree_in(0), 2u);
  EXPECT_EQ(h.degree_in(1), 1u);
  EXPECT_EQ(h.degree_in(4), 0u);
}

TEST(EdgeSet, ForEachNeighborFilters) {
  const Graph g = complete_graph(5);
  EdgeSet h(g);
  h.insert(0, 2);
  h.insert(0, 4);
  std::set<NodeId> seen;
  h.for_each_neighbor(0, [&](NodeId v) { seen.insert(v); });
  EXPECT_EQ(seen, (std::set<NodeId>{2, 4}));
}

TEST(EdgeSet, EdgeListCanonical) {
  Rng rng(21);
  const Graph g = gnp(20, 0.3, rng);
  EdgeSet h(g);
  for (EdgeId id = 0; id < g.num_edges(); id += 3) h.insert(id);
  const auto list = h.edge_list();
  EXPECT_EQ(list.size(), h.size());
  for (const Edge& e : list) {
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(h.contains(e.u, e.v));
  }
}

TEST(EdgeSet, EraseRemoves) {
  const Graph g = path_graph(3);
  EdgeSet h(g, true);
  const EdgeId id = g.find_edge(0, 1);
  h.erase(id);
  EXPECT_FALSE(h.contains(0, 1));
  EXPECT_TRUE(h.contains(1, 2));
  EXPECT_EQ(h.size(), 1u);
}

TEST(EdgeSet, RemoveDropsEdgeById) {
  const Graph g = cycle_graph(6);
  EdgeSet h(g, true);
  h.remove(g.find_edge(2, 3));
  EXPECT_FALSE(h.contains(2, 3));
  EXPECT_EQ(h.size(), g.num_edges() - 1);
  h.remove(g.find_edge(2, 3));  // idempotent
  EXPECT_EQ(h.size(), g.num_edges() - 1);
}

TEST(EdgeSet, RemoveOutOfRangeTripsCheck) {
  const Graph g = path_graph(4);
  EdgeSet h(g, true);
  EXPECT_THROW(h.remove(static_cast<EdgeId>(g.num_edges())), CheckError);
  EXPECT_THROW(h.remove(kInvalidEdge), CheckError);
}

TEST(EdgeSet, RemoveBatchMatchesIndividualRemovals) {
  Rng rng(33);
  const Graph g = gnp(40, 0.2, rng);
  EdgeSet batch_removed(g, true);
  EdgeSet single_removed(g, true);
  std::vector<EdgeId> ids;
  for (EdgeId id = 0; id < g.num_edges(); id += 3) ids.push_back(id);
  batch_removed.remove_batch(ids);
  for (const EdgeId id : ids) single_removed.remove(id);
  EXPECT_EQ(batch_removed, single_removed);
  EXPECT_EQ(batch_removed.size(), g.num_edges() - ids.size());
}

TEST(EdgeSet, RemoveBatchOutOfRangeTripsCheck) {
  const Graph g = path_graph(5);
  EdgeSet h(g, true);
  const std::vector<EdgeId> ids = {0, static_cast<EdgeId>(g.num_edges())};
  EXPECT_THROW(h.remove_batch(ids), CheckError);
}

TEST(EdgeSet, EqualityComparesContent) {
  const Graph g = cycle_graph(4);
  EdgeSet a(g);
  EdgeSet b(g);
  EXPECT_EQ(a, b);
  a.insert(0, 1);
  EXPECT_FALSE(a == b);
  b.insert(0, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace remspan
