// Self-tests for tools/remspan_lint.cpp: every fixture under
// tests/lint_fixtures/ carries exactly one known contract violation (or a
// suppression case), and the tool must report the right rule id with the
// right exit code. The binary is driven as a child process — exactly how
// the lint.tree_clean ctest and the CI lint job drive it — so the exit
// codes and the `path:line: [Rn name] message` output format are part of
// the tested contract.
//
// Paths come in as compile definitions: REMSPAN_LINT_BIN (the built tool),
// REMSPAN_LINT_FIXTURES (tests/lint_fixtures), REMSPAN_LINT_ROOT (the
// source tree).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(REMSPAN_LINT_BIN) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

LintRun run_on_fixture(const std::string& fixture) {
  return run_lint("--root " REMSPAN_LINT_ROOT " " REMSPAN_LINT_FIXTURES "/" + fixture);
}

TEST(LintTool, ListRulesNamesEveryRule) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* id : {"R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7"}) {
    EXPECT_NE(run.output.find(id), std::string::npos) << "missing " << id << " in:\n"
                                                      << run.output;
  }
}

TEST(LintTool, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_lint("--bogus").exit_code, 2);
}

TEST(LintTool, MissingFileIsIoError) {
  EXPECT_EQ(run_on_fixture("does_not_exist.cpp").exit_code, 2);
}

TEST(LintTool, CleanFixturePasses) {
  const LintRun run = run_on_fixture("clean.cpp");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos) << run.output;
}

// Each known-violation fixture must trip exactly its rule. The treat-as
// directive inside the fixture maps it onto the path the rule is scoped
// to, so the diagnostic reports that path.
struct FixtureCase {
  const char* fixture;
  const char* expect;  // substring of the diagnostic: "[<id> <name>]"
};

class LintFixture : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixture, ReportsItsRuleAndExitsNonzero) {
  const FixtureCase& c = GetParam();
  const LintRun run = run_on_fixture(c.fixture);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(c.expect), std::string::npos)
      << c.fixture << " did not report " << c.expect << ":\n"
      << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    KnownViolations, LintFixture,
    ::testing::Values(
        FixtureCase{"r1_missing_wall.cpp", "[R1 c-abi-exception-wall]"},
        FixtureCase{"r2_raw_parse.cpp", "[R2 strict-number-parsing]"},
        FixtureCase{"r3_exit.cpp", "[R3 no-exit]"},
        FixtureCase{"r4_assert.cpp", "[R4 no-assert]"},
        FixtureCase{"r5_random_device.cpp", "[R5 determinism]"},
        FixtureCase{"r6_unordered_iteration.cpp", "[R6 unordered-iteration-annotation]"},
        FixtureCase{"r7_raw_clock.cpp", "[R7 wall-clock-discipline]"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.fixture;
      return name.substr(0, name.find('.'));
    });

TEST(LintTool, JustifiedAllowSuppresses) {
  const LintRun run = run_on_fixture("r6_suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos) << run.output;
}

TEST(LintTool, BareAllowIsR0AndDoesNotSuppress) {
  const LintRun run = run_on_fixture("r0_missing_justification.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The malformed annotation is flagged...
  EXPECT_NE(run.output.find("[R0 annotation-grammar]"), std::string::npos) << run.output;
  // ...and the underlying finding still surfaces.
  EXPECT_NE(run.output.find("[R6 unordered-iteration-annotation]"), std::string::npos)
      << run.output;
}

TEST(LintTool, TreeIsClean) {
  // Redundant with the lint.tree_clean ctest on purpose: a failure here
  // points at the working tree, not at the tool.
  const LintRun run = run_lint("--root " REMSPAN_LINT_ROOT);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
