// Cross-validation sweeps: independent implementations must agree, and
// structural monotonicity/convexity invariants must hold on randomized
// inputs (seeded, parameterized over graph families).
#include <gtest/gtest.h>

#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/edge_disjoint_paths.hpp"
#include "sim/remspan_protocol.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Graph largest_component_of(const Graph& g) {
  const auto comps = connected_components(g);
  if (comps.count <= 1) return g;
  return induced_subgraph(g, comps.largest()).graph;
}

Graph fuzz_graph(std::uint64_t seed) {
  Rng rng(seed);
  switch (seed % 5) {
    case 0:
      return connected_gnp(static_cast<NodeId>(30 + seed % 17), 0.18, rng);
    case 1: {
      const auto gg = uniform_unit_ball_graph(50 + seed % 20, 4.0, 2, rng);
      return largest_component_of(gg.graph);
    }
    case 2:
      return largest_component_of(barabasi_albert(40, 2, rng));
    case 3:
      return largest_component_of(watts_strogatz(40, 4, 0.2, rng));
    default:
      return connected_gnp(25, 0.3, rng);
  }
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, FlowD1EqualsBfsDistance) {
  const Graph g = fuzz_graph(GetParam());
  Rng rng(GetParam() * 7 + 1);
  for (int i = 0; i < 12; ++i) {
    const auto s = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    if (s == t) continue;
    const Dist bfs_d = bfs_distance(GraphView(g), s, t);
    const auto node_flow = min_disjoint_paths(GraphView(g), s, t, 1);
    const auto edge_flow = min_edge_disjoint_paths(GraphView(g), s, t, 1);
    if (bfs_d == kUnreachable) {
      EXPECT_EQ(node_flow.connectivity(), 0u);
      EXPECT_EQ(edge_flow.connectivity(), 0u);
    } else {
      EXPECT_EQ(node_flow.d(1), bfs_d) << "s=" << s << " t=" << t;
      EXPECT_EQ(edge_flow.d(1), bfs_d) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(CrossValidation, UnitPathCostsAreConvex) {
  // Successive shortest paths yield non-decreasing unit costs, so d^k is
  // convex in k: d^{k+1} - d^k >= d^k - d^{k-1}.
  const Graph g = fuzz_graph(GetParam());
  Rng rng(GetParam() * 11 + 3);
  for (int i = 0; i < 6; ++i) {
    const auto s = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    const auto t = static_cast<NodeId>(rng.uniform(g.num_nodes()));
    if (s == t) continue;
    const auto r = min_disjoint_paths(GraphView(g), s, t, 5);
    for (Dist k = 2; k <= r.connectivity(); ++k) {
      const auto inc_prev = r.d(k) - r.d(k - 1);
      const auto inc_prev2 = k >= 3 ? r.d(k - 1) - r.d(k - 2) : 0;
      if (k >= 3) {
        EXPECT_GE(inc_prev, inc_prev2);
      }
      EXPECT_GE(inc_prev, r.d(1));  // every path is at least a shortest path
    }
  }
}

TEST_P(CrossValidation, RemoteDistancesSandwichedByGAndH) {
  const Graph g = fuzz_graph(GetParam());
  const EdgeSet h = build_low_stretch_remote_spanner(g, 0.5);
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  const DistanceMatrix dh = all_pairs_distances(SubgraphView(h));
  const DistanceMatrix dhu = remote_distances(g, h);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      // G <= H_u <= H (more edges can only shorten paths).
      EXPECT_LE(dg(u, v), dhu(u, v));
      EXPECT_LE(dhu(u, v), dh(u, v));
    }
  }
}

TEST_P(CrossValidation, AddingEdgesNeverHurtsRemoteDistances) {
  const Graph g = fuzz_graph(GetParam());
  EdgeSet sparse = build_k_connecting_spanner(g, 1);
  EdgeSet denser = sparse;
  // Add every 3rd missing edge.
  int counter = 0;
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (!sparse.contains(id) && (counter++ % 3 == 0)) denser.insert(id);
  }
  const DistanceMatrix a = remote_distances(g, sparse);
  const DistanceMatrix b = remote_distances(g, denser);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(b(u, v), a(u, v));
    }
  }
}

TEST_P(CrossValidation, SpannerBuildersAreDeterministic) {
  const Graph g = fuzz_graph(GetParam());
  EXPECT_EQ(build_k_connecting_spanner(g, 2), build_k_connecting_spanner(g, 2));
  EXPECT_EQ(build_low_stretch_remote_spanner(g, 0.5),
            build_low_stretch_remote_spanner(g, 0.5));
  EXPECT_EQ(build_2connecting_spanner(g, 2), build_2connecting_spanner(g, 2));
}

TEST_P(CrossValidation, DistributedProtocolIsDeterministic) {
  const Graph g = fuzz_graph(GetParam());
  RemSpanConfig cfg;
  cfg.kind = RemSpanConfig::Kind::kKConnGreedy;
  cfg.k = 2;
  const auto run1 = run_remspan_distributed(g, cfg);
  const auto run2 = run_remspan_distributed(g, cfg);
  EXPECT_EQ(run1.spanner, run2.spanner);
  EXPECT_EQ(run1.rounds, run2.rounds);
  EXPECT_EQ(run1.stats.transmissions, run2.stats.transmissions);
}

TEST_P(CrossValidation, LargerRadiusTreesKeepSmallerRadiusProperty) {
  const Graph g = fuzz_graph(GetParam());
  DomTreeBuilder builder(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 6) {
    const RootedTree t = builder.greedy(u, 4, 1);
    // An (r,beta)-dominating tree dominates every smaller radius too.
    EXPECT_TRUE(is_dominating_tree(g, t, 3, 1));
    EXPECT_TRUE(is_dominating_tree(g, t, 2, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace remspan
