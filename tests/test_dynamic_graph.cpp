// DynamicGraph update semantics, snapshot determinism, diff_graphs id
// mapping, multi-source bounded BFS, and churn-trace generation/round-trip.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "dynamic/churn_trace.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/bfs.hpp"
#include "graph/views.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

std::set<Edge> edge_set_of(const Graph& g) {
  return {g.edges().begin(), g.edges().end()};
}

bool edge_less(const Edge& x, const Edge& y) {
  return x.u != y.u ? x.u < y.u : x.v < y.v;
}

TEST(DynamicGraph, ApplyIsIdempotentPerState) {
  DynamicGraph dg(4);
  EXPECT_TRUE(dg.apply(GraphEvent::edge_up(0, 1)));
  EXPECT_FALSE(dg.apply(GraphEvent::edge_up(1, 0)));  // canonical duplicate
  EXPECT_TRUE(dg.apply(GraphEvent::edge_down(0, 1)));
  EXPECT_FALSE(dg.apply(GraphEvent::edge_down(0, 1)));
  EXPECT_FALSE(dg.apply(GraphEvent::node_up(2)));  // already up
  EXPECT_TRUE(dg.apply(GraphEvent::node_down(2)));
  EXPECT_FALSE(dg.apply(GraphEvent::node_down(2)));
  EXPECT_TRUE(dg.apply(GraphEvent::node_up(2)));
}

TEST(DynamicGraph, VersionBumpsOnlyOnChange) {
  DynamicGraph dg(3);
  const std::uint64_t v0 = dg.version();
  dg.apply(GraphEvent::edge_up(0, 1));
  EXPECT_EQ(dg.version(), v0 + 1);
  dg.apply(GraphEvent::edge_up(0, 1));
  EXPECT_EQ(dg.version(), v0 + 1);
}

TEST(DynamicGraph, OutOfRangeTripsCheck) {
  DynamicGraph dg(3);
  EXPECT_THROW(dg.apply(GraphEvent::edge_up(0, 3)), CheckError);
  EXPECT_THROW(dg.apply(GraphEvent::node_down(3)), CheckError);
  EXPECT_THROW((void)dg.apply(GraphEvent{GraphEventKind::kEdgeUp, 1, 1}), CheckError);
}

TEST(DynamicGraph, NodeDownMasksEdgesAndUpRestores) {
  const Graph g = cycle_graph(5);
  DynamicGraph dg(g);
  EXPECT_EQ(dg.snapshot()->num_edges(), 5u);
  dg.apply(GraphEvent::node_down(0));
  const auto masked = dg.snapshot();
  EXPECT_EQ(masked->num_edges(), 3u);  // {0,1} and {0,4} masked
  EXPECT_EQ(masked->degree(0), 0u);
  dg.apply(GraphEvent::node_up(0));
  EXPECT_EQ(edge_set_of(*dg.snapshot()), edge_set_of(g));
}

TEST(DynamicGraph, SnapshotCachedPerVersion) {
  DynamicGraph dg(4);
  dg.apply(GraphEvent::edge_up(1, 2));
  const auto a = dg.snapshot();
  const auto b = dg.snapshot();
  EXPECT_EQ(a.get(), b.get());
  dg.apply(GraphEvent::edge_up(2, 3));
  EXPECT_NE(dg.snapshot().get(), a.get());
}

TEST(DynamicGraph, SnapshotMatchesReplayedEventsOnRandomSequences) {
  Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const NodeId n = 20;
    DynamicGraph dg(n);
    std::set<Edge> expected;
    std::vector<bool> up(n, true);
    for (int step = 0; step < 200; ++step) {
      const auto a = static_cast<NodeId>(rng.uniform(n));
      auto b = static_cast<NodeId>(rng.uniform(n));
      if (a == b) b = (b + 1) % n;
      const double roll = rng.uniform_real();
      if (roll < 0.45) {
        dg.apply(GraphEvent::edge_up(a, b));
        expected.insert(make_edge(a, b));
      } else if (roll < 0.8) {
        dg.apply(GraphEvent::edge_down(a, b));
        expected.erase(make_edge(a, b));
      } else if (roll < 0.9) {
        dg.apply(GraphEvent::node_down(a));
        up[a] = false;
      } else {
        dg.apply(GraphEvent::node_up(a));
        up[a] = true;
      }
    }
    std::set<Edge> live;
    for (const Edge& e : expected) {
      if (up[e.u] && up[e.v]) live.insert(e);
    }
    EXPECT_EQ(edge_set_of(*dg.snapshot()), live);
  }
}

TEST(DiffGraphs, MapsSurvivorsAndListsChanges) {
  Rng rng(11);
  for (int rep = 0; rep < 20; ++rep) {
    const Graph old_g = gnp(30, 0.15, rng);
    DynamicGraph dg(old_g);
    // Random churn: remove some existing edges, add some new pairs.
    for (int step = 0; step < 25; ++step) {
      const auto a = static_cast<NodeId>(rng.uniform(30));
      auto b = static_cast<NodeId>(rng.uniform(30));
      if (a == b) b = (b + 1) % 30;
      if (rng.bernoulli(0.5)) {
        dg.apply(GraphEvent::edge_down(a, b));
      } else {
        dg.apply(GraphEvent::edge_up(a, b));
      }
    }
    const auto new_g = dg.snapshot();
    const GraphDelta delta = diff_graphs(old_g, *new_g);

    const std::set<Edge> old_set = edge_set_of(old_g);
    const std::set<Edge> new_set = edge_set_of(*new_g);
    // removed = old \ new, inserted = new \ old, both canonically sorted.
    std::set<Edge> removed(delta.removed.begin(), delta.removed.end());
    std::set<Edge> inserted(delta.inserted.begin(), delta.inserted.end());
    for (const Edge& e : old_set) {
      EXPECT_EQ(removed.contains(e), !new_set.contains(e));
    }
    for (const Edge& e : new_set) {
      EXPECT_EQ(inserted.contains(e), !old_set.contains(e));
    }
    EXPECT_TRUE(std::is_sorted(delta.removed.begin(), delta.removed.end(), edge_less));
    EXPECT_TRUE(std::is_sorted(delta.inserted.begin(), delta.inserted.end(), edge_less));

    // The id map sends every survivor to the same endpoints; removed edges
    // map to kInvalidEdge and carry their old id in removed_old_ids.
    ASSERT_EQ(delta.old_to_new.size(), old_g.num_edges());
    for (EdgeId id = 0; id < old_g.num_edges(); ++id) {
      const Edge& e = old_g.edge(id);
      if (new_set.contains(e)) {
        ASSERT_NE(delta.old_to_new[id], kInvalidEdge);
        EXPECT_EQ(new_g->edge(delta.old_to_new[id]), e);
      } else {
        EXPECT_EQ(delta.old_to_new[id], kInvalidEdge);
      }
    }
    ASSERT_EQ(delta.removed_old_ids.size(), delta.removed.size());
    for (std::size_t i = 0; i < delta.removed.size(); ++i) {
      EXPECT_EQ(old_g.edge(delta.removed_old_ids[i]), delta.removed[i]);
    }
    ASSERT_EQ(delta.inserted_new_ids.size(), delta.inserted.size());
    for (std::size_t i = 0; i < delta.inserted.size(); ++i) {
      EXPECT_EQ(new_g->edge(delta.inserted_new_ids[i]), delta.inserted[i]);
    }

    // touched_endpoints: sorted unique endpoints of the symmetric difference.
    std::set<NodeId> expected_touched;
    for (const Edge& e : removed) {
      expected_touched.insert(e.u);
      expected_touched.insert(e.v);
    }
    for (const Edge& e : inserted) {
      expected_touched.insert(e.u);
      expected_touched.insert(e.v);
    }
    const auto touched = touched_endpoints(delta);
    EXPECT_EQ(std::set<NodeId>(touched.begin(), touched.end()), expected_touched);
    EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
  }
}

TEST(MultiSourceBfs, DistanceIsMinOverSources) {
  Rng rng(13);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = gnp(40, 0.08, rng);
    const std::vector<NodeId> sources = {3, 17, 17, 29};  // duplicate on purpose
    BoundedBfs multi(g.num_nodes());
    multi.run_multi(GraphView(g), sources, 3);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      Dist best = kUnreachable;
      for (const NodeId s : sources) {
        BoundedBfs single(g.num_nodes());
        single.run(GraphView(g), s, 3);
        best = std::min(best, single.dist(v));
      }
      EXPECT_EQ(multi.dist(v), best) << "node " << v;
    }
  }
}

TEST(MultiSourceBfs, ShellZeroHoldsUniqueSources) {
  const Graph g = path_graph(6);
  BoundedBfs bfs(g.num_nodes());
  const std::vector<NodeId> sources = {2, 4, 2};
  bfs.run_multi(GraphView(g), sources, 1);
  const auto shell0 = bfs.shell(0);
  EXPECT_EQ(std::set<NodeId>(shell0.begin(), shell0.end()), (std::set<NodeId>{2, 4}));
  EXPECT_EQ(bfs.parent(2), kInvalidNode);
  EXPECT_EQ(bfs.parent(4), kInvalidNode);
}

TEST(ChurnTrace, RoundTripsThroughText) {
  Rng rng(5);
  const auto gg = largest_component(uniform_unit_ball_graph(60, 4.0, 2, rng));
  const ChurnTrace traces[] = {
      random_edge_churn_trace(gg.graph, 4, 6, 0.2, 42),
      mobility_churn_trace(gg, 3, 2, 43),
      region_outage_trace(gg, 2, 1.5, 44),
  };
  for (const ChurnTrace& trace : traces) {
    std::stringstream io;
    write_churn_trace(io, trace);
    EXPECT_EQ(read_churn_trace(io), trace);
  }
}

TEST(ChurnTrace, GeneratorsAreDeterministic) {
  Rng rng(6);
  const auto gg = largest_component(uniform_unit_ball_graph(50, 4.0, 2, rng));
  EXPECT_EQ(random_edge_churn_trace(gg.graph, 5, 8, 0.1, 9),
            random_edge_churn_trace(gg.graph, 5, 8, 0.1, 9));
  EXPECT_EQ(mobility_churn_trace(gg, 5, 3, 9), mobility_churn_trace(gg, 5, 3, 9));
  EXPECT_EQ(region_outage_trace(gg, 3, 1.0, 9), region_outage_trace(gg, 3, 1.0, 9));
}

TEST(ChurnTrace, EventsReplayConsistently) {
  // Every generated event must change state when replayed in order: the
  // generators track the evolving topology, so no event is a no-op.
  Rng rng(8);
  const auto gg = largest_component(uniform_unit_ball_graph(70, 4.5, 2, rng));
  const ChurnTrace traces[] = {
      random_edge_churn_trace(gg.graph, 6, 10, 0.15, 21),
      mobility_churn_trace(gg, 6, 3, 22),
      region_outage_trace(gg, 3, 1.2, 23),
  };
  for (const ChurnTrace& trace : traces) {
    DynamicGraph dg(trace.initial_graph());
    for (const auto& batch : trace.batches) {
      EXPECT_EQ(dg.apply_all(batch), batch.size());
    }
  }
}

TEST(ChurnTrace, SingleMoverBatchesShareTheMover) {
  // With one mover per batch, every churned edge must be incident to that
  // mover: the batch's events all share a common endpoint.
  Rng rng(10);
  const auto gg = largest_component(uniform_unit_ball_graph(50, 4.0, 2, rng));
  const ChurnTrace trace = mobility_churn_trace(gg, 8, 1, 31);
  for (const auto& batch : trace.batches) {
    if (batch.empty()) continue;
    for (const GraphEvent& ev : batch) {
      ASSERT_TRUE(ev.kind == GraphEventKind::kEdgeUp || ev.kind == GraphEventKind::kEdgeDown);
    }
    std::set<NodeId> common = {batch.front().u, batch.front().v};
    for (const GraphEvent& ev : batch) {
      std::set<NodeId> next;
      if (common.contains(ev.u)) next.insert(ev.u);
      if (common.contains(ev.v)) next.insert(ev.v);
      common = std::move(next);
    }
    EXPECT_FALSE(common.empty());
  }
}

TEST(RegionOutage, RecoveryRestoresInitialTopology) {
  Rng rng(12);
  const auto gg = largest_component(uniform_unit_ball_graph(60, 4.0, 2, rng));
  const ChurnTrace trace = region_outage_trace(gg, 4, 1.5, 51);
  DynamicGraph dg(trace.initial_graph());
  const std::set<Edge> initial = edge_set_of(*dg.snapshot());
  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    dg.apply_all(trace.batches[b]);
    if (b % 2 == 1) {
      // After every recovery batch the topology is back to the initial one.
      EXPECT_EQ(edge_set_of(*dg.snapshot()), initial);
    }
  }
}

}  // namespace
}  // namespace remspan
