// Sanity of the verification oracles themselves: known-good and known-bad
// sub-graphs must be classified correctly.
#include <gtest/gtest.h>

#include "analysis/kconn_oracle.hpp"
#include "analysis/spanner_stats.hpp"
#include "analysis/stretch_oracle.hpp"
#include "geom/synthetic.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(StretchOracle, FullGraphIsAlwaysOneZero) {
  Rng rng(201);
  const Graph g = connected_gnp(30, 0.15, rng);
  const EdgeSet h(g, true);
  const auto report = check_remote_stretch(g, h, Stretch{1.0, 0.0});
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
  EXPECT_EQ(report.violations, 0u);
}

TEST(StretchOracle, EmptySubgraphViolates) {
  const Graph g = path_graph(5);
  const EdgeSet h(g);
  const auto report = check_remote_stretch(g, h, Stretch{10.0, 10.0});
  EXPECT_FALSE(report.satisfied);
  EXPECT_GT(report.violations, 0u);
}

TEST(StretchOracle, RemoteDistancesUseTheStar) {
  // G = path 0-1-2. H empty. d_{H_0}(0,1) = 1 (star edge) but
  // d_{H_0}(0,2) = inf (edge 1-2 not in H).
  const Graph g = path_graph(3);
  const EdgeSet h(g);
  const DistanceMatrix dm = remote_distances(g, h);
  EXPECT_EQ(dm(0, 1), 1u);
  EXPECT_EQ(dm(0, 2), kUnreachable);
}

TEST(StretchOracle, RemoteDistancesMatchDefinitionBruteForce) {
  // Cross-check the min-over-neighbors identity against a direct BFS on the
  // materialized augmented view.
  Rng rng(203);
  const Graph g = connected_gnp(25, 0.18, rng);
  EdgeSet h(g);
  // An arbitrary sparse subset: every third edge.
  for (EdgeId id = 0; id < g.num_edges(); id += 3) h.insert(id);
  const DistanceMatrix dm = remote_distances(g, h);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto direct = bfs_distances(AugmentedView(h, u), u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(dm(u, v), direct[v]) << "u=" << u << " v=" << v;
    }
  }
}

TEST(StretchOracle, AsymmetryIsVisible) {
  // The remote distance is asymmetric, as Section 1 notes. H = {1-2} on the
  // path 0-1-2: from u=0 the star reaches 1 and H carries on to 2 (d=2);
  // from u=2 the star reaches 1 but the H-edge 1-0 is missing (unreachable).
  const Graph g = path_graph(3);
  EdgeSet h(g);
  h.insert(1, 2);
  const DistanceMatrix dm = remote_distances(g, h);
  EXPECT_EQ(dm(0, 2), 2u);
  EXPECT_EQ(dm(2, 0), kUnreachable);
}

TEST(StretchOracle, SpannerCheckerDistinguishesSpannerFromRemote) {
  // On a cycle, dropping one edge keeps a (n-1)-stretch spanner; as a
  // remote-spanner the stretch is the same for far pairs but the checker
  // paths differ for pairs adjacent to the dropped edge.
  const Graph g = cycle_graph(8);
  EdgeSet h(g, true);
  h.erase(g.find_edge(0, 7));
  const auto spanner_tight = check_spanner_stretch(g, h, Stretch{7.0, 0.0});
  EXPECT_TRUE(spanner_tight.satisfied);
  const auto spanner_too_tight = check_spanner_stretch(g, h, Stretch{6.9, 0.0});
  EXPECT_FALSE(spanner_too_tight.satisfied);
  // Remote: node 0 keeps its star (edge 0-7 available in H_0), likewise 7;
  // fragile pair is (1,7): d_G=2, d_{H_1} = 1 + d_H(0,7)=1+7? No: star(1)
  // reaches 0 and 2; d_H(0,7)=7... via 0-1-2..-7 = 7, so d=8? But also
  // star(1)->2 then H 2..7 = 5+1=6. Bound alpha*2 >= 6 -> alpha >= 3.
  const auto remote = check_remote_stretch(g, h, Stretch{3.0, 0.0});
  EXPECT_TRUE(remote.satisfied);
}

TEST(StretchOracle, ReportsWorstPair) {
  const Graph g = cycle_graph(8);
  EdgeSet h(g, true);
  h.erase(g.find_edge(0, 7));
  const auto report = check_remote_stretch(g, h, Stretch{1.0, 0.0});
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.worst_u, kInvalidNode);
  EXPECT_GT(report.max_excess, 0.0);
  EXPECT_GT(report.max_ratio, 1.0);
  // The worst recorded pair must actually realize the recorded distances.
  const DistanceMatrix dm = remote_distances(g, h);
  EXPECT_EQ(dm(report.worst_u, report.worst_v), report.worst_dhu);
}

TEST(KConnOracle, FullGraphSatisfiesEverything) {
  Rng rng(205);
  const Graph g = connected_gnp(18, 0.3, rng);
  const EdgeSet h(g, true);
  const auto report = check_k_connecting_stretch(g, h, 3, Stretch{1.0, 0.0});
  EXPECT_TRUE(report.satisfied);
  EXPECT_EQ(report.connectivity_losses, 0u);
  EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
}

TEST(KConnOracle, DetectsConnectivityLoss) {
  // Theta graph with 2 paths; H keeps only one: 2-connectivity lost.
  const Graph g = theta_graph(2, 3);
  EdgeSet h(g);
  // Path via nodes 2,3: edges 0-2, 2-3, 3-1.
  h.insert(0, 2);
  h.insert(2, 3);
  h.insert(3, 1);
  const auto report = check_k_connecting_stretch(g, h, 2, Stretch{10.0, 10.0});
  EXPECT_FALSE(report.satisfied);
  EXPECT_GT(report.connectivity_losses, 0u);
}

TEST(KConnOracle, SamplingChecksSubset) {
  Rng rng(207);
  const Graph g = connected_gnp(20, 0.25, rng);
  const EdgeSet h(g, true);
  const auto report = check_k_connecting_stretch(g, h, 2, Stretch{1.0, 0.0}, 15);
  EXPECT_LE(report.pairs_checked, 15u);
  EXPECT_TRUE(report.satisfied);
}

TEST(SpannerStats, CountsAndFractions) {
  const Graph g = complete_graph(6);  // 15 edges
  EdgeSet h(g);
  h.insert(0, 1);
  h.insert(0, 2);
  h.insert(0, 3);
  const auto stats = compute_spanner_stats(h);
  EXPECT_EQ(stats.input_edges, 15u);
  EXPECT_EQ(stats.spanner_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.edge_fraction, 0.2);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.0);
  EXPECT_DOUBLE_EQ(stats.edges_per_node, 0.5);
  EXPECT_EQ(format_edges_with_fraction(stats), "3 (20.0%)");
}

}  // namespace
}  // namespace remspan
