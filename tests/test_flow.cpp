// MinCostFlow and the k-connecting distance oracle (d^k via node-split
// min-cost flow). Theta graphs give exact expected values.
#include <gtest/gtest.h>

#include "geom/synthetic.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/views.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 3, 5);
  const auto costs = f.solve(0, 1, 10);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(costs[0], 5);
  EXPECT_EQ(costs[1], 5);
  EXPECT_EQ(costs[2], 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // 0 -> 1 (cost 1) and 0 -> 2 -> 1 (cost 4): first unit uses the direct arc.
  MinCostFlow f(3);
  f.add_arc(0, 1, 1, 1);
  f.add_arc(0, 2, 1, 2);
  f.add_arc(2, 1, 1, 2);
  const auto costs = f.solve(0, 1, 5);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_EQ(costs[0], 1);
  EXPECT_EQ(costs[1], 4);
}

TEST(MinCostFlow, ResidualReroutingFindsOptimum) {
  // Classic case where the second augmentation must push flow back: the
  // min-cost 2-flow does not reuse the min-cost 1-flow path unchanged.
  //     0 -> 1 (1), 1 -> 3 (1), 0 -> 2 (2), 2 -> 3 (2), 1 -> 2 (0)
  MinCostFlow f(4);
  f.add_arc(0, 1, 1, 1);
  f.add_arc(1, 3, 1, 1);
  f.add_arc(0, 2, 1, 2);
  f.add_arc(2, 3, 1, 2);
  f.add_arc(1, 2, 1, 0);
  const auto costs = f.solve(0, 3, 2);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_EQ(costs[0] + costs[1], 6);  // optimal 2-flow cost
  EXPECT_LE(costs[0], costs[1]);      // unit costs are non-decreasing
}

TEST(MinCostFlow, UnreachableSinkStops) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 1, 1);
  const auto costs = f.solve(0, 2, 4);
  EXPECT_TRUE(costs.empty());
}

TEST(DisjointPaths, ThetaGraphExactValues) {
  for (Dist k = 1; k <= 4; ++k) {
    for (Dist len = 2; len <= 5; ++len) {
      const Graph g = theta_graph(k, len);
      const auto result = min_disjoint_paths(GraphView(g), 0, 1, k + 2);
      ASSERT_EQ(result.connectivity(), k) << "k=" << k << " len=" << len;
      for (Dist kp = 1; kp <= k; ++kp) {
        EXPECT_EQ(result.d(kp), static_cast<std::uint64_t>(kp) * len)
            << "k=" << k << " len=" << len << " kp=" << kp;
      }
      EXPECT_EQ(result.d(k + 1), DisjointPathsResult::kNoPaths);
    }
  }
}

TEST(DisjointPaths, MixedLengthsPickCheapestFirst) {
  // Two disjoint s-t paths of lengths 2 and 4 built by hand.
  GraphBuilder b(6);
  b.add_edge(0, 2);
  b.add_edge(2, 1);  // length 2 path: 0-2-1
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 1);  // length 4 path: 0-3-4-5-1
  const Graph g = b.build();
  const auto result = min_disjoint_paths(GraphView(g), 0, 1, 3);
  ASSERT_EQ(result.connectivity(), 2u);
  EXPECT_EQ(result.d(1), 2u);
  EXPECT_EQ(result.d(2), 6u);
}

TEST(DisjointPaths, SharedInternalNodeLimitsConnectivity) {
  // Two s-t walks exist but both must pass through node 2: connectivity 1.
  GraphBuilder b(5);
  b.add_edge(0, 2);
  b.add_edge(2, 1);
  b.add_edge(0, 3);
  b.add_edge(3, 2);
  b.add_edge(2, 4);
  b.add_edge(4, 1);
  const Graph g = b.build();
  const auto result = min_disjoint_paths(GraphView(g), 0, 1, 3);
  EXPECT_EQ(result.connectivity(), 1u);
  EXPECT_EQ(result.d(1), 2u);
}

TEST(DisjointPaths, AdjacentPairCountsDirectEdge) {
  const Graph g = cycle_graph(6);
  const auto result = min_disjoint_paths(GraphView(g), 0, 1, 3);
  ASSERT_EQ(result.connectivity(), 2u);
  EXPECT_EQ(result.d(1), 1u);       // direct edge
  EXPECT_EQ(result.d(2), 1u + 5u);  // edge + the long way round
}

TEST(DisjointPaths, PathDecompositionIsValid) {
  const Graph g = theta_graph(3, 4);
  const auto result = min_disjoint_paths(GraphView(g), 0, 1, 3, /*want_paths=*/true);
  ASSERT_EQ(result.paths.size(), 3u);
  std::vector<int> internal_uses(g.num_nodes(), 0);
  std::uint64_t total = 0;
  for (const auto& path : result.paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 1u);
    total += path.size() - 1;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) ++internal_uses[path[i]];
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
    }
  }
  EXPECT_EQ(total, result.total_length.back());
  for (NodeId v = 2; v < g.num_nodes(); ++v) EXPECT_LE(internal_uses[v], 1);
}

TEST(DisjointPaths, WorksOnSubgraphAndAugmentedViews) {
  const Graph g = cycle_graph(8);
  EdgeSet h(g);
  // H keeps only 4 edges of the cycle: 0-1,1-2,2-3,3-4.
  for (NodeId v = 1; v <= 4; ++v) h.insert(v - 1, v);
  EXPECT_EQ(k_connecting_distance(SubgraphView(h), 0, 4, 1), 4u);
  EXPECT_EQ(k_connecting_distance(SubgraphView(h), 0, 4, 2), DisjointPathsResult::kNoPaths);
  // Augmenting with node 0's star restores the second path 0-7...-4? No:
  // only edges incident to 0 are added (0-7), the rest of the cycle is
  // missing, so still one path.
  EXPECT_EQ(k_connecting_distance(AugmentedView(h, 0), 0, 4, 2),
            DisjointPathsResult::kNoPaths);
  // Add the remaining cycle edges to H: now two disjoint paths, 4 + 4.
  for (NodeId v = 5; v <= 7; ++v) h.insert(v - 1, v);
  h.insert(7, 0);
  EXPECT_EQ(k_connecting_distance(SubgraphView(h), 0, 4, 2), 8u);
}

TEST(DisjointPaths, RandomGraphsAgreeWithCutIntuition) {
  // Complete bipartite K_{3,m}: connectivity between two left nodes is 3
  // (through the right side), each path has length 2.
  const Graph g = complete_bipartite(3, 5);
  const auto result = min_disjoint_paths(GraphView(g), 0, 1, 5);
  EXPECT_EQ(result.connectivity(), 5u);  // min(deg) = 5 common neighbors
  EXPECT_EQ(result.d(5), 10u);
}

TEST(DisjointPaths, CompleteGraphAllPathsShort) {
  const Graph g = complete_graph(6);
  // s,t adjacent: 1 direct + 4 length-2 detours.
  const auto result = min_disjoint_paths(GraphView(g), 0, 5, 6);
  EXPECT_EQ(result.connectivity(), 5u);
  EXPECT_EQ(result.d(1), 1u);
  EXPECT_EQ(result.d(5), 1u + 4u * 2u);
}

}  // namespace
}  // namespace remspan
