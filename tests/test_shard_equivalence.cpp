// Shard-count invariance: the sharded engine (src/shard) must be
// indistinguishable from the flat engine at every shard count — the same
// spanner bit-for-bit, the same per-root trees, the same aggregate stats —
// across the shared equivalence corpus and all four tree algorithms. This
// is the contract that makes ShardConfig a pure execution knob: S is
// allowed to change memory traffic and thread count, never a single bit of
// output. Also covered: the ShardPlan partition math, the BallScout /
// BallGather compact-subgraph machinery the engine builds on, and (under
// TSan, see the CI regex) the two-level inter-shard merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "graph/connectivity.hpp"
#include "shard/ball_gather.hpp"
#include "shard/shard_engine.hpp"
#include "shard/shard_plan.hpp"
#include "shard/transport.hpp"
#include "support/corpus.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 8};

ShardConfig sharded(std::size_t s, std::size_t batch = 128) {
  ShardConfig config;
  config.num_shards = s;
  config.batch_roots = batch;
  return config;
}

/// Builds with the flat engine and with every shard count, requiring the
/// exact same edge set and the exact same aggregate stats each time.
void expect_shard_invariant(
    const Graph& g, const std::string& label,
    const std::function<EdgeSet(const ShardConfig&, SpannerBuildInfo*)>& build) {
  SpannerBuildInfo flat_info;
  const EdgeSet flat = build(ShardConfig{}, &flat_info);
  for (const std::size_t s : kShardCounts) {
    // A batch size smaller than the shard's root span forces multiple
    // gather rounds per shard — the interesting path.
    for (const std::size_t batch : {std::size_t{4}, std::size_t{128}}) {
      SpannerBuildInfo info;
      const EdgeSet got = build(sharded(s, batch), &info);
      const std::string at = label + " S=" + std::to_string(s) +
                             " batch=" + std::to_string(batch);
      EXPECT_TRUE(got == flat) << at << ": spanner differs";
      EXPECT_EQ(info.sum_tree_edges, flat_info.sum_tree_edges) << at;
      EXPECT_EQ(info.max_tree_edges, flat_info.max_tree_edges) << at;
    }
  }
}

// --- plan -----------------------------------------------------------------

TEST(ShardPlan, LocalityOrderIsAPermutationInBfsOrder) {
  const Graph g = testsupport::equivalence_family(3, 7);
  const auto order = locality_root_order(g);
  ASSERT_EQ(order.size(), g.num_nodes());
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  for (const NodeId v : order) {
    ASSERT_LT(v, g.num_nodes());
    EXPECT_EQ(seen[v], 0) << "duplicate root " << v;
    seen[v] = 1;
  }
  // BFS property on a connected graph: every node after the first is
  // adjacent to some earlier node of the order.
  for (std::size_t i = 1; i < order.size(); ++i) {
    bool near = false;
    for (const NodeId w : g.neighbors(order[i])) {
      for (std::size_t j = 0; j < i && !near; ++j) near = order[j] == w;
      if (near) break;
    }
    EXPECT_TRUE(near) << "order[" << i << "]=" << order[i] << " not adjacent to a predecessor";
  }
}

TEST(ShardPlan, ClusteredOrderIsAPermutationOfCompactBlobs) {
  // With a cluster bound, every position is either BFS-reachable from an
  // earlier position or a fresh cluster seed — and the seed rule is
  // "smallest unvisited id", i.e. the minimum of the remaining suffix.
  for (const std::size_t cluster : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const Graph g = testsupport::equivalence_family(3, 7);
    const auto order = locality_root_order(g, cluster);
    ASSERT_EQ(order.size(), g.num_nodes());
    std::vector<std::uint8_t> seen(g.num_nodes(), 0);
    for (const NodeId v : order) {
      ASSERT_LT(v, g.num_nodes());
      EXPECT_EQ(seen[v], 0) << "duplicate root " << v;
      seen[v] = 1;
    }
    for (std::size_t i = 1; i < order.size(); ++i) {
      bool near = false;
      for (const NodeId w : g.neighbors(order[i])) {
        for (std::size_t j = 0; j < i && !near; ++j) near = order[j] == w;
        if (near) break;
      }
      if (near) continue;
      const NodeId min_remaining = *std::min_element(order.begin() + i, order.end());
      EXPECT_EQ(order[i], min_remaining)
          << "order[" << i << "] is neither adjacent to a predecessor nor the seed rule's pick";
    }
  }
}

TEST(ShardPlan, SpansPartitionRootsAndWords) {
  const Graph g = testsupport::equivalence_family(0, 3);
  for (const std::size_t s : {1, 2, 3, 8, 17}) {
    const ShardPlan plan = ShardPlan::make(g, sharded(std::max<std::size_t>(s, 1)));
    ASSERT_EQ(plan.num_shards(), s);
    std::size_t roots = 0;
    std::size_t prev_word_end = 0;
    for (std::size_t rank = 0; rank < s; ++rank) {
      roots += plan.roots(rank).size();
      const auto [word_begin, word_end] = plan.word_span(rank);
      EXPECT_EQ(word_begin, prev_word_end) << "gap before rank " << rank;
      EXPECT_LE(word_end - word_begin,
                plan.num_words() / s + 1);  // balanced within one word
      prev_word_end = word_end;
    }
    EXPECT_EQ(roots, g.num_nodes());
    EXPECT_EQ(prev_word_end, plan.num_words());
    EXPECT_EQ(plan.num_words(), (g.num_edges() + 63) / 64);
  }
}

TEST(ShardPlan, RejectsOutOfRangeShardCounts) {
  const Graph g = testsupport::equivalence_family(1, 1);
  EXPECT_THROW(ShardPlan::make(g, sharded(kMaxShards + 1)), CheckError);
  EXPECT_NO_THROW(ShardPlan::make(g, sharded(kMaxShards)));
}

TEST(ShardPlan, OverflowGuardsRejectSentinelSizedUniverses) {
  // Pure-math checks: no graph this size is ever allocated.
  EXPECT_THROW(detail::check_shard_limits(std::size_t{kInvalidNode}, 10, 2), CheckError);
  EXPECT_THROW(detail::check_shard_limits(10, std::size_t{kInvalidEdge}, 2), CheckError);
  EXPECT_THROW(detail::check_shard_limits(10, 10, 0), CheckError);
  EXPECT_NO_THROW(detail::check_shard_limits(kInvalidNode - 1, kInvalidEdge - 1, 1));
}

// --- scout + gather -------------------------------------------------------

TEST(ShardGather, InducedSubgraphMatchesGlobalBallExactly) {
  const Graph g = testsupport::equivalence_family(2, 5);
  BallScout scout(g.num_nodes());
  BallGather gather(g.num_nodes());
  const NodeId sources[] = {0, 7, 13};
  scout.run(g, sources, 2);
  gather.gather(g, scout.touched());

  const Graph& local = gather.local();
  ASSERT_EQ(local.num_nodes(), gather.members().size());
  // Members are sorted by global id, so local ids are order-isomorphic.
  EXPECT_TRUE(std::is_sorted(gather.members().begin(), gather.members().end()));
  for (NodeId lu = 0; lu < local.num_nodes(); ++lu) {
    EXPECT_EQ(gather.local_id(gather.global_id(lu)), lu);
  }
  // Every induced edge exists globally with the mapped id, and every global
  // edge between members exists locally.
  std::size_t expected_edges = 0;
  for (const Edge& e : g.edges()) {
    if (scout.in_ball(e.u) && scout.in_ball(e.v)) ++expected_edges;
  }
  EXPECT_EQ(local.num_edges(), expected_edges);
  for (EdgeId le = 0; le < local.num_edges(); ++le) {
    const Edge local_edge = local.edge(le);
    const EdgeId ge = gather.global_edge(le);
    const Edge global_edge = g.edge(ge);
    EXPECT_EQ(gather.global_id(local_edge.u), global_edge.u);
    EXPECT_EQ(gather.global_id(local_edge.v), global_edge.v);
  }
}

TEST(ShardGather, RepeatedGathersResetCleanly) {
  const Graph g = testsupport::equivalence_family(0, 9);
  BallScout scout(g.num_nodes());
  BallGather gather(g.num_nodes());
  const NodeId first[] = {0};
  scout.run(g, first, 2);
  gather.gather(g, scout.touched());
  const std::vector<NodeId> first_members(gather.members().begin(), gather.members().end());

  const NodeId second[] = {5};
  scout.run(g, second, 1);
  gather.gather(g, scout.touched());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool member =
        std::find(gather.members().begin(), gather.members().end(), v) != gather.members().end();
    EXPECT_EQ(gather.local_id(v) != kInvalidNode, member) << "stale local id for " << v;
    EXPECT_EQ(scout.in_ball(v), member);
  }
  // And going back reproduces the first gather exactly.
  scout.run(g, first, 2);
  gather.gather(g, scout.touched());
  EXPECT_TRUE(std::equal(gather.members().begin(), gather.members().end(),
                         first_members.begin(), first_members.end()));
}

/// The heart of the bit-exactness argument (ball_gather.hpp): a tree built
/// for a root inside the gathered union ball equals the whole-graph tree
/// node-for-node, parent-for-parent, edge-for-edge.
TEST(ShardGather, LocalTreesMatchGlobalTreesAcrossCorpus) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    const Graph g = testsupport::equivalence_family(which, 100 + which);
    DomTreeBuilder global_builder(g);
    BallScout scout(g.num_nodes());
    BallGather gather(g.num_nodes());
    // A small batch of nearby roots, like one engine frontier batch.
    std::vector<NodeId> batch;
    for (NodeId u = 0; u < g.num_nodes() && batch.size() < 6; u += 2) batch.push_back(u);

    const Dist r = 3;
    const Dist beta = 1;
    const Dist ball_depth = std::max<Dist>(r, r - 1 + beta);
    scout.run(g, batch, ball_depth);
    gather.gather(g, scout.touched());
    DomTreeBuilder local_builder(gather.local());

    for (const NodeId u : batch) {
      const RootedTree global_tree = global_builder.greedy(u, r, beta);
      const RootedTree local_tree = local_builder.greedy(gather.local_id(u), r, beta);
      const std::string at = "family=" + std::to_string(which) + " u=" + std::to_string(u);
      ASSERT_EQ(local_tree.num_nodes(), global_tree.num_nodes()) << at;
      const auto& local_nodes = local_tree.nodes();
      const auto& global_nodes = global_tree.nodes();
      for (std::size_t i = 0; i < local_nodes.size(); ++i) {
        const NodeId gv = gather.global_id(local_nodes[i]);
        EXPECT_EQ(gv, global_nodes[i]) << at << " pick order diverged at " << i;
        if (gv == u) continue;
        EXPECT_EQ(gather.global_id(local_tree.parent(local_nodes[i])), global_tree.parent(gv))
            << at << " v=" << gv;
        EXPECT_EQ(gather.global_edge(local_tree.parent_edge(local_nodes[i])),
                  global_tree.parent_edge(gv))
            << at << " v=" << gv;
      }
    }
  }
}

// --- transport ------------------------------------------------------------

TEST(ShardExchange, GatherOrReducesAcrossRanks) {
  AtomicBitset a(200);
  AtomicBitset b(200);
  a.set(0);
  a.set(64);
  b.set(64);
  b.set(199);
  InProcessExchange ex(2);
  ex.publish(0, a);
  ex.publish(1, b);
  std::vector<std::uint64_t> words(4, ~std::uint64_t{0});  // gather must overwrite
  ex.gather_or(0, 4, words);
  EXPECT_EQ(words[0], std::uint64_t{1});
  EXPECT_EQ(words[1], std::uint64_t{1});
  EXPECT_EQ(words[2], 0u);
  EXPECT_EQ(words[3], std::uint64_t{1} << 7);  // bit 199 = word 3, bit 7
  // Partial spans see the same values.
  std::vector<std::uint64_t> tail(2);
  ex.gather_or(2, 4, tail);
  EXPECT_EQ(tail[0], 0u);
  EXPECT_EQ(tail[1], std::uint64_t{1} << 7);
}

TEST(ShardExchange, RejectsDoublePublishAndRankOverflow) {
  AtomicBitset bits(64);
  InProcessExchange ex(1);
  ex.publish(0, bits);
  EXPECT_THROW(ex.publish(0, bits), CheckError);
  EXPECT_THROW(ex.publish(1, bits), CheckError);
}

// --- engine invariance ----------------------------------------------------

TEST(ShardEquivalence, GreedySpannersBitExactAcrossShardCounts) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const Graph g = testsupport::equivalence_family(which, 6000 * seed + which);
      for (const Dist r : testsupport::kGreedyRadii) {
        for (const Dist beta : testsupport::kGreedyBetas) {
          expect_shard_invariant(
              g,
              "greedy family=" + std::to_string(which) + " seed=" + std::to_string(seed) +
                  " r=" + std::to_string(r) + " beta=" + std::to_string(beta),
              [&](const ShardConfig& shards, SpannerBuildInfo* info) {
                return build_remote_spanner(g, r, beta, TreeAlgorithm::kGreedy, info, shards);
              });
        }
      }
    }
  }
}

TEST(ShardEquivalence, MisSpannersBitExactAcrossShardCounts) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const Graph g = testsupport::equivalence_family(which, 7000 * seed + which);
      for (const Dist r : testsupport::kMisRadii) {
        expect_shard_invariant(
            g,
            "mis family=" + std::to_string(which) + " seed=" + std::to_string(seed) +
                " r=" + std::to_string(r),
            [&](const ShardConfig& shards, SpannerBuildInfo* info) {
              return build_remote_spanner(g, r, 1, TreeAlgorithm::kMis, info, shards);
            });
      }
    }
  }
}

TEST(ShardEquivalence, GreedyKSpannersBitExactAcrossShardCounts) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const Graph g = testsupport::equivalence_family(which, 8000 * seed + which);
      for (const Dist k : testsupport::kGreedyKs) {
        expect_shard_invariant(
            g,
            "greedy_k family=" + std::to_string(which) + " seed=" + std::to_string(seed) +
                " k=" + std::to_string(k),
            [&](const ShardConfig& shards, SpannerBuildInfo* info) {
              return build_k_connecting_spanner(g, k, info, shards);
            });
      }
    }
  }
}

TEST(ShardEquivalence, MisKSpannersBitExactAcrossShardCounts) {
  for (int which = 0; which < testsupport::kNumEquivalenceFamilies; ++which) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const Graph g = testsupport::equivalence_family(which, 9000 * seed + which);
      for (const Dist k : testsupport::kMisKs) {
        expect_shard_invariant(
            g,
            "mis_k family=" + std::to_string(which) + " seed=" + std::to_string(seed) +
                " k=" + std::to_string(k),
            [&](const ShardConfig& shards, SpannerBuildInfo* info) {
              return build_2connecting_spanner(g, k, info, shards);
            });
      }
    }
  }
}

/// A larger unit-disk graph (the paper's topology) through the facade's
/// low-stretch front-end: the dispatch path a production caller takes.
TEST(ShardEquivalence, LowStretchUdgBitExactThroughFrontEnd) {
  const Graph g = testsupport::observability_graph(42);
  expect_shard_invariant(g, "th1 udg",
                         [&](const ShardConfig& shards, SpannerBuildInfo* info) {
                           return build_low_stretch_remote_spanner(
                               g, 0.5, TreeAlgorithm::kMis, info, shards);
                         });
}

/// The merge under an externally supplied exchange: same bits as the
/// default in-process exchange (exercises the transport seam directly).
TEST(ShardEquivalence, ExternalExchangeMatchesDefault) {
  const Graph g = testsupport::equivalence_family(3, 21);
  const auto make_tree = [](DomTreeBuilder& b, NodeId u) { return b.greedy_k(u, 2); };
  const EdgeSet flat = build_k_connecting_spanner(g, 2);

  InProcessExchange ex(3);
  const EdgeSet got = sharded_union_of_trees(g, 2, make_tree, sharded(3), nullptr, &ex);
  EXPECT_TRUE(got == flat);
  // A rank-count mismatch between config and exchange is rejected.
  InProcessExchange wrong(2);
  EXPECT_THROW(sharded_union_of_trees(g, 2, make_tree, sharded(3), nullptr, &wrong),
               CheckError);
}

TEST(ShardEquivalence, EngineRequiresShardedConfig) {
  const Graph g = testsupport::equivalence_family(5, 1);
  const auto make_tree = [](DomTreeBuilder& b, NodeId u) { return b.greedy_k(u, 1); };
  EXPECT_THROW(sharded_union_of_trees(g, 2, make_tree, ShardConfig{}), CheckError);
}

}  // namespace
}  // namespace remspan
