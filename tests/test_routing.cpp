// Greedy link-state routing over remote-spanners: the Section 1 guarantee
// route_length <= d_{H_s}(s, t).
#include <gtest/gtest.h>

#include "analysis/stretch_oracle.hpp"
#include "core/remote_spanner.hpp"
#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "sim/routing.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

TEST(GreedyRouting, TrivialCases) {
  const Graph g = path_graph(4);
  const EdgeSet h(g, true);
  const auto self = greedy_route(h, 2, 2);
  EXPECT_TRUE(self.delivered);
  EXPECT_EQ(self.hops(), 0u);
  const auto adj = greedy_route(h, 0, 1);
  EXPECT_TRUE(adj.delivered);
  EXPECT_EQ(adj.hops(), 1u);
}

TEST(GreedyRouting, FullTopologyGivesShortestPaths) {
  Rng rng(601);
  const Graph g = connected_gnp(40, 0.12, rng);
  const EdgeSet h(g, true);
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  for (NodeId s = 0; s < g.num_nodes(); s += 5) {
    for (NodeId t = 1; t < g.num_nodes(); t += 7) {
      if (s == t) continue;
      const auto route = greedy_route(h, s, t);
      ASSERT_TRUE(route.delivered);
      EXPECT_EQ(route.hops(), dg(s, t));
    }
  }
}

TEST(GreedyRouting, RouteWithinRemoteDistanceBound) {
  // The core guarantee: hops <= d_{H_s}(s,t) for every pair, for each
  // remote-spanner flavor.
  Rng rng(603);
  const Graph g = connected_gnp(35, 0.15, rng);
  for (const double eps : {1.0, 0.5}) {
    const EdgeSet h = build_low_stretch_remote_spanner(g, eps);
    const DistanceMatrix dhu = remote_distances(g, h);
    for (NodeId s = 0; s < g.num_nodes(); s += 3) {
      for (NodeId t = 1; t < g.num_nodes(); t += 4) {
        if (s == t) continue;
        const auto route = greedy_route(h, s, t);
        ASSERT_TRUE(route.delivered) << "s=" << s << " t=" << t;
        EXPECT_LE(route.hops(), dhu(s, t)) << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST(GreedyRouting, ExactShortestPathsOnOneZeroRemoteSpanner) {
  // Over a (1,0)-remote-spanner greedy routing is exactly shortest-path
  // routing — the OLSR property.
  Rng rng(605);
  const Graph g = connected_gnp(40, 0.12, rng);
  const EdgeSet h = build_k_connecting_spanner(g, 1);
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  for (NodeId s = 0; s < g.num_nodes(); s += 4) {
    for (NodeId t = 2; t < g.num_nodes(); t += 5) {
      if (s == t) continue;
      const auto route = greedy_route(h, s, t);
      ASSERT_TRUE(route.delivered);
      EXPECT_EQ(route.hops(), dg(s, t)) << "s=" << s << " t=" << t;
    }
  }
}

TEST(GreedyRouting, PathEdgesExistInAugmentedGraphs) {
  Rng rng(607);
  const Graph g = connected_gnp(30, 0.15, rng);
  const EdgeSet h = build_low_stretch_remote_spanner(g, 1.0);
  const auto route = greedy_route(h, 0, g.num_nodes() - 1);
  ASSERT_TRUE(route.delivered);
  for (std::size_t i = 1; i < route.path.size(); ++i) {
    // Every hop is a real G edge (the forwarder's own link).
    EXPECT_TRUE(g.has_edge(route.path[i - 1], route.path[i]));
  }
}

TEST(GreedyRouting, FailsGracefullyOnEmptySpanner) {
  const Graph g = path_graph(5);
  const EdgeSet h(g);  // nothing advertised
  const auto route = greedy_route(h, 0, 4);
  EXPECT_FALSE(route.delivered);
  EXPECT_GE(route.path.size(), 1u);
}

TEST(GreedyRouting, SamplePairsHelper) {
  Rng rng(609);
  const Graph g = connected_gnp(30, 0.15, rng);
  const EdgeSet h = build_k_connecting_spanner(g, 1);
  std::vector<std::pair<NodeId, NodeId>> pairs{{0, 10}, {5, 20}, {3, 29}};
  const auto samples = route_sample_pairs(h, pairs);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) {
    EXPECT_NE(s.route_hops, kUnreachable);
    EXPECT_EQ(s.route_hops, s.shortest);  // (1,0)-remote-spanner: exact
  }
}

TEST(GreedyRouting, UbgScenario) {
  Rng rng(611);
  const auto gg = uniform_unit_ball_graph(80, 4.0, 2, rng);
  const auto comps = connected_components(gg.graph);
  const Graph g = induced_subgraph(gg.graph, comps.largest()).graph;
  const EdgeSet h = build_low_stretch_remote_spanner(g, 0.5);
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  std::size_t routed = 0;
  for (NodeId s = 0; s < g.num_nodes(); s += 7) {
    for (NodeId t = 3; t < g.num_nodes(); t += 11) {
      if (s == t) continue;
      const auto route = greedy_route(h, s, t);
      ASSERT_TRUE(route.delivered);
      // (1.5, 0)-ish bound: route <= 1.5 d + 1.
      EXPECT_LE(static_cast<double>(route.hops()),
                1.5 * static_cast<double>(dg(s, t)) + 1.0 + 1e-9);
      ++routed;
    }
  }
  EXPECT_GT(routed, 10u);
}

}  // namespace
}  // namespace remspan
