// The fault-injection layer: LinkModel decisions (Bernoulli loss, bursts,
// delay/jitter, adversarial schedules) must be deterministic pure functions
// of (seed, link, round, message), and the Network must account every
// dropped or postponed copy. Lint rule R5 bans ambient randomness; these
// tests pin the seeded-PRF path the model uses instead.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "sim/flooding.hpp"
#include "sim/link_model.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace remspan {
namespace {

Message make_msg(NodeId origin, std::uint32_t seq, std::uint32_t type = 2) {
  Message msg;
  msg.origin = origin;
  msg.seq = seq;
  msg.type = type;
  return msg;
}

TEST(LinkModel, DefaultConfigIsNotFaulty) {
  const LinkModelConfig def;
  EXPECT_FALSE(def.faulty());
  EXPECT_EQ(def.max_delay(), 0u);

  LinkModelConfig c;
  c.drop = 0.1;
  EXPECT_TRUE(c.faulty());
  c = LinkModelConfig{};
  c.delay = 1;
  EXPECT_TRUE(c.faulty());
  c = LinkModelConfig{};
  c.jitter = 2;
  EXPECT_TRUE(c.faulty());
  EXPECT_EQ(c.max_delay(), 2u);
  c = LinkModelConfig{};
  c.drop_every_nth = 5;
  EXPECT_TRUE(c.faulty());
  c = LinkModelConfig{};
  c.burst = GilbertElliott::from_loss_and_burst(0.2, 4.0);
  EXPECT_TRUE(c.faulty());
  c = LinkModelConfig{};
  c.kills.push_back(FloodKill{0, 0});
  EXPECT_TRUE(c.faulty());
}

TEST(LinkModel, FromLossAndBurstHitsStationaryRate) {
  for (const double loss : {0.05, 0.2, 0.5}) {
    for (const double burst : {1.0, 4.0, 10.0}) {
      const GilbertElliott ge = GilbertElliott::from_loss_and_burst(loss, burst);
      ASSERT_TRUE(ge.enabled());
      // Mean Bad sojourn is 1/p_bad_to_good.
      EXPECT_NEAR(1.0 / ge.p_bad_to_good, burst, 1e-12);
      // Stationary Bad fraction (= loss rate with drop_bad=1, drop_good=0).
      const double pi_bad = ge.p_good_to_bad / (ge.p_good_to_bad + ge.p_bad_to_good);
      EXPECT_NEAR(pi_bad, loss, 1e-12);
    }
  }
  EXPECT_FALSE(GilbertElliott::from_loss_and_burst(0.0, 4.0).enabled());
}

TEST(LinkModel, DecisionsAreDeterministicPerSeed) {
  LinkModelConfig cfg;
  cfg.drop = 0.3;
  cfg.jitter = 3;
  cfg.seed = 42;
  LinkModel a(cfg, 10);
  LinkModel b(cfg, 10);
  a.begin_epoch(0);
  b.begin_epoch(0);
  bool any_drop = false;
  bool any_deliver = false;
  for (std::uint32_t round = 1; round <= 50; ++round) {
    for (NodeId u = 0; u < 4; ++u) {
      for (NodeId v = 0; v < 4; ++v) {
        if (u == v) continue;
        const Message msg = make_msg(u, round);
        const LinkDecision da = a.decide(round, u, v, msg);
        const LinkDecision db = b.decide(round, u, v, msg);
        EXPECT_EQ(da.deliver, db.deliver);
        EXPECT_EQ(da.delay, db.delay);
        any_drop = any_drop || !da.deliver;
        any_deliver = any_deliver || da.deliver;
        if (da.deliver) EXPECT_LE(da.delay, cfg.max_delay());
      }
    }
  }
  EXPECT_TRUE(any_drop);
  EXPECT_TRUE(any_deliver);
}

TEST(LinkModel, DifferentSeedsGiveDifferentDecisionSequences) {
  LinkModelConfig cfg;
  cfg.drop = 0.5;
  cfg.seed = 1;
  LinkModel a(cfg, 4);
  cfg.seed = 2;
  LinkModel b(cfg, 4);
  a.begin_epoch(0);
  b.begin_epoch(0);
  int disagreements = 0;
  for (std::uint32_t round = 1; round <= 100; ++round) {
    const Message msg = make_msg(0, round);
    if (a.decide(round, 0, 1, msg).deliver != b.decide(round, 0, 1, msg).deliver) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(LinkModel, DropEveryNthDropsExactlyEveryNth) {
  LinkModelConfig cfg;
  cfg.drop_every_nth = 3;
  LinkModel model(cfg, 4);
  model.begin_epoch(0);
  int drops = 0;
  for (int attempt = 1; attempt <= 30; ++attempt) {
    const LinkDecision d = model.decide(1, 0, 1, make_msg(0, 0));
    EXPECT_EQ(d.deliver, attempt % 3 != 0) << "attempt " << attempt;
    if (!d.deliver) ++drops;
  }
  EXPECT_EQ(drops, 10);
  // begin_epoch restarts the attempt counter.
  model.begin_epoch(10);
  EXPECT_TRUE(model.decide(10, 0, 1, make_msg(0, 0)).deliver);
}

TEST(LinkModel, PartitionWindowBlocksExactlyCutCopiesInWindow) {
  LinkModelConfig cfg;
  cfg.partitions.push_back(PartitionWindow{{0, 1}, 1, 4});  // epoch rounds 1..3
  LinkModel model(cfg, 4);
  model.begin_epoch(0);
  for (std::uint32_t round = 1; round <= 6; ++round) {
    const bool in_window = round < 4;
    // Cut-crossing copies (both directions) drop inside the window only.
    EXPECT_EQ(model.decide(round, 1, 2, make_msg(1, round)).deliver, !in_window);
    EXPECT_EQ(model.decide(round, 2, 1, make_msg(2, round)).deliver, !in_window);
    // Same-side copies always pass.
    EXPECT_TRUE(model.decide(round, 0, 1, make_msg(0, round)).deliver);
    EXPECT_TRUE(model.decide(round, 2, 3, make_msg(2, round)).deliver);
  }
  // Windows are epoch-relative: a new epoch rearms the blackout.
  model.begin_epoch(100);
  EXPECT_FALSE(model.decide(101, 1, 2, make_msg(1, 7)).deliver);
}

TEST(LinkModel, FloodKillDropsOnlyTheNamedFlood) {
  LinkModelConfig cfg;
  cfg.kills.push_back(FloodKill{2, 5});
  LinkModel model(cfg, 4);
  model.begin_epoch(0);
  EXPECT_FALSE(model.decide(1, 2, 3, make_msg(2, 5)).deliver);
  EXPECT_FALSE(model.decide(2, 0, 1, make_msg(2, 5)).deliver);  // forwarded copy
  EXPECT_TRUE(model.decide(1, 2, 3, make_msg(2, 6)).deliver);   // fresh seq survives
  EXPECT_TRUE(model.decide(1, 3, 2, make_msg(3, 5)).deliver);   // other origin
}

TEST(LinkModel, JitterStaysInRangeAndVaries) {
  LinkModelConfig cfg;
  cfg.delay = 2;
  cfg.jitter = 3;
  cfg.seed = 7;
  LinkModel model(cfg, 4);
  model.begin_epoch(0);
  std::vector<std::uint32_t> extras;
  for (std::uint32_t round = 1; round <= 60; ++round) {
    const LinkDecision d = model.decide(round, 0, 1, make_msg(0, round));
    ASSERT_TRUE(d.deliver);
    EXPECT_GE(d.delay, cfg.delay);
    EXPECT_LE(d.delay, cfg.max_delay());
    extras.push_back(d.delay);
  }
  std::sort(extras.begin(), extras.end());
  extras.erase(std::unique(extras.begin(), extras.end()), extras.end());
  EXPECT_GE(extras.size(), 2u);  // the jitter draw actually varies
}

TEST(LinkModel, GilbertElliottLossComesInBursts) {
  LinkModelConfig cfg;
  cfg.burst = GilbertElliott::from_loss_and_burst(0.3, 5.0);
  cfg.seed = 3;
  LinkModel model(cfg, 2);
  model.begin_epoch(0);
  int drops = 0;
  int drop_runs = 0;
  bool prev_dropped = false;
  int longest_run = 0;
  int run = 0;
  for (std::uint32_t round = 1; round <= 400; ++round) {
    const bool dropped = !model.decide(round, 0, 1, make_msg(0, round)).deliver;
    if (dropped) {
      ++drops;
      ++run;
      if (!prev_dropped) ++drop_runs;
      longest_run = std::max(longest_run, run);
    } else {
      run = 0;
    }
    prev_dropped = dropped;
  }
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 400);
  // Bursty, not iid: with mean Bad sojourn 5 the drops cluster into far
  // fewer runs than their count, and some burst spans several rounds.
  EXPECT_LT(2 * drop_runs, drops);
  EXPECT_GE(longest_run, 3);
}

/// Broadcasts one HELLO in round 1 and records arrival rounds.
class StampedHello : public Protocol {
 public:
  void on_round(NodeContext& ctx) override {
    if (sent_) return;
    Message msg;
    msg.type = 1;
    msg.origin = ctx.id();
    ctx.broadcast(std::move(msg));
    sent_ = true;
  }
  void on_message(NodeContext& ctx, const Message& msg) override {
    arrivals.emplace_back(msg.origin, ctx.round());
  }
  [[nodiscard]] bool done() const override { return sent_; }

  std::vector<std::pair<NodeId, std::uint32_t>> arrivals;

 private:
  bool sent_ = false;
};

TEST(LinkModel, FixedDelayPostponesDeliveryExactly) {
  const Graph g = path_graph(2);
  LinkModelConfig cfg;
  cfg.delay = 3;
  Network net(g, [](NodeId) { return std::make_unique<StampedHello>(); });
  net.set_link_model(std::make_unique<LinkModel>(cfg, g.num_nodes()));
  const auto rounds = net.run(20);
  // Sent in round 1, delivered in round 1 + 3; the run drains the delayed
  // copies before stopping.
  EXPECT_EQ(rounds, 4u);
  for (NodeId v = 0; v < 2; ++v) {
    const auto& p = dynamic_cast<const StampedHello&>(net.node(v));
    ASSERT_EQ(p.arrivals.size(), 1u) << "v=" << v;
    EXPECT_EQ(p.arrivals[0].second, 4u) << "v=" << v;
  }
  EXPECT_EQ(net.stats().delayed, 2u);
  EXPECT_EQ(net.stats().drops, 0u);
  EXPECT_EQ(net.stats().receptions, 2u);
}

TEST(LinkModel, NetworkAccountsDropsAndDeliversTheRest) {
  Rng rng(5);
  const Graph g = connected_gnp(24, 0.3, rng);
  LinkModelConfig cfg;
  cfg.drop = 0.4;
  cfg.seed = 11;
  Network net(g, [](NodeId) { return std::make_unique<StampedHello>(); });
  net.set_link_model(std::make_unique<LinkModel>(cfg, g.num_nodes()));
  net.run(10);
  const NetworkStats& s = net.stats();
  EXPECT_EQ(s.transmissions, 24u);
  EXPECT_GT(s.drops, 0u);
  EXPECT_GT(s.receptions, 0u);
  // Every per-neighbor copy is either delivered, dropped or (here, no
  // delay) nothing else: attempts = 2m.
  EXPECT_EQ(s.receptions + s.drops, 2 * g.num_edges());
  EXPECT_EQ(s.delayed, 0u);
}

TEST(LinkModel, SameSeedSameNetworkStatsAcrossRuns) {
  Rng rng(6);
  const Graph g = connected_gnp(30, 0.2, rng);
  LinkModelConfig cfg;
  cfg.drop = 0.25;
  cfg.delay = 1;
  cfg.jitter = 2;
  cfg.seed = 99;

  auto run_once = [&] {
    Network net(g, [](NodeId) { return std::make_unique<StampedHello>(); });
    net.set_link_model(std::make_unique<LinkModel>(cfg, g.num_nodes()));
    net.run(30);
    std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> arrivals;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      arrivals.push_back(dynamic_cast<const StampedHello&>(net.node(v)).arrivals);
    }
    return std::make_pair(net.stats(), arrivals);
  };

  const auto [sa, aa] = run_once();
  const auto [sb, ab] = run_once();
  EXPECT_EQ(sa.transmissions, sb.transmissions);
  EXPECT_EQ(sa.receptions, sb.receptions);
  EXPECT_EQ(sa.payload_words, sb.payload_words);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.delayed, sb.delayed);
  EXPECT_EQ(sa.rounds, sb.rounds);
  EXPECT_EQ(aa, ab);  // per-node arrival history bit-identical
}

TEST(LinkModel, LosslessModelMatchesNoModelBitExactly) {
  // An attached-but-all-zero model must not perturb anything: same stats as
  // the plain LOCAL network (the decide() path returns {true, 0} always).
  Rng rng(7);
  const Graph g = connected_gnp(20, 0.25, rng);
  Network plain(g, [](NodeId) { return std::make_unique<StampedHello>(); });
  const auto rounds_plain = plain.run(10);

  Network modeled(g, [](NodeId) { return std::make_unique<StampedHello>(); });
  modeled.set_link_model(std::make_unique<LinkModel>(LinkModelConfig{}, g.num_nodes()));
  const auto rounds_modeled = modeled.run(10);

  EXPECT_EQ(rounds_plain, rounds_modeled);
  EXPECT_EQ(plain.stats().receptions, modeled.stats().receptions);
  EXPECT_EQ(plain.stats().transmissions, modeled.stats().transmissions);
  EXPECT_EQ(modeled.stats().drops, 0u);
  EXPECT_EQ(modeled.stats().delayed, 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(dynamic_cast<const StampedHello&>(plain.node(v)).arrivals,
              dynamic_cast<const StampedHello&>(modeled.node(v)).arrivals);
  }
}

}  // namespace
}  // namespace remspan
