// Partitioning math for the sharded spanner engine (shard_engine.hpp):
// which roots and which edge-bitset words each shard rank owns.
//
// A ShardPlan decorates two resources with an owning rank, following the
// distributed-ranges local-span idiom: (a) the build roots, partitioned as
// contiguous spans of a locality order (a deterministic whole-graph BFS
// order, so consecutive roots have overlapping balls and the per-shard
// frontier batches actually reuse adjacency); and (b) the words of the
// global edge bitset, partitioned as contiguous word ranges for the
// inter-shard merge (each rank owns the final value of its word span).
//
// Root ordering is a pure scheduling choice: every root's dominating tree
// is a function of (graph, root) alone and the spanner union is a
// commutative bitset OR, so ANY root order and ANY shard count produce the
// same spanner bit-for-bit (tests/test_shard_equivalence.cpp pins this).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// Execution knobs of the sharded build engine. The default (one shard) is
/// the flat engine of core/remote_spanner.cpp, byte-identical to every
/// build shipped before sharding existed; num_shards >= 2 routes to the
/// sharded engine, whose output is bit-exact equal by construction.
struct ShardConfig {
  /// Shard (rank) count. 0 and 1 both mean the flat single-address-space
  /// engine; >= 2 spawns one build thread per shard.
  std::size_t num_shards = 1;
  /// Roots per frontier batch inside one shard: each batch does one
  /// multi-root scout sweep + one compact-subgraph gather (ball_gather.hpp)
  /// and then builds every tree of the batch against the gathered subgraph.
  std::size_t batch_roots = 128;

  /// True when the sharded engine (rather than the flat one) runs.
  [[nodiscard]] bool sharded() const noexcept { return num_shards >= 2; }
};

/// Hard ceiling on the rank count: far beyond any sensible thread or
/// process fleet, but low enough that a corrupted config cannot ask for
/// millions of threads.
inline constexpr std::size_t kMaxShards = 4096;

namespace detail {
/// Overflow guards for a sharded build: node and edge counts must fit the
/// 32-bit NodeId/EdgeId index types (kInvalid* are sentinels, hence the
/// strict bound) and the shard count must be in [1, kMaxShards]. Checked
/// before any allocation so a 10^7-node (or larger) build fails loudly
/// instead of silently wrapping an index.
void check_shard_limits(std::size_t nodes, std::size_t edges, std::size_t shards);
}  // namespace detail

/// A deterministic locality order over all nodes: a sequence of bounded
/// BFS clusters. Each cluster seeds at the smallest unvisited id and grows
/// breadth-first to at most `cluster_size` nodes (0 = unbounded, i.e.
/// plain per-component BFS), so every cluster is a compact blob rather
/// than a stretch of a whole-graph BFS frontier ring. Batching one
/// cluster's roots therefore yields heavily overlapping balls — this is
/// what makes the shard batches a ball-reuse win instead of a plain
/// parallel split. Pure function of (graph, cluster_size).
[[nodiscard]] std::vector<NodeId> locality_root_order(const Graph& g,
                                                      std::size_t cluster_size = 0);

/// The rank-decorated partition: contiguous root spans over the locality
/// order and contiguous word spans over the edge bitset.
class ShardPlan {
 public:
  [[nodiscard]] static ShardPlan make(const Graph& g, const ShardConfig& config);

  [[nodiscard]] std::size_t num_shards() const noexcept { return root_offsets_.size() - 1; }

  /// Total words of the global edge bitset ((num_edges + 63) / 64).
  [[nodiscard]] std::size_t num_words() const noexcept { return num_words_; }

  /// The roots rank `shard` builds trees for, in locality order.
  [[nodiscard]] std::span<const NodeId> roots(std::size_t shard) const {
    REMSPAN_CHECK(shard + 1 < root_offsets_.size());
    return {order_.data() + root_offsets_[shard], order_.data() + root_offsets_[shard + 1]};
  }

  /// The half-open word range [first, second) of the global edge bitset
  /// whose final value rank `shard` owns in the inter-shard merge.
  [[nodiscard]] std::pair<std::size_t, std::size_t> word_span(std::size_t shard) const {
    REMSPAN_CHECK(shard + 1 < word_offsets_.size());
    return {word_offsets_[shard], word_offsets_[shard + 1]};
  }

 private:
  std::vector<NodeId> order_;          // locality order of all n roots
  std::vector<std::size_t> root_offsets_;  // shard s owns order_[off[s], off[s+1])
  std::vector<std::size_t> word_offsets_;  // shard s owns words [off[s], off[s+1])
  std::size_t num_words_ = 0;
};

}  // namespace remspan
