// The sharded spanner build engine: partitions the root universe across S
// shard ranks (threads today; the WordExchange seam is where processes
// would plug in), runs frontier-batched dominating-tree builds inside each
// rank, and merges per-rank edge bitsets in two levels —
//
//   level 1 (intra-shard): each tree's edge ids merge into the rank's own
//     full-width AtomicBitset with word-batched relaxed fetch_or
//     (AtomicBitset::or_batch), exactly the flat engine's discipline but
//     contention-free because the bitset is rank-local;
//   level 2 (inter-shard): after the build barrier, each rank OR-reduces
//     the word span it owns (ShardPlan::word_span) across all published
//     rank bitsets through the WordExchange, writing disjoint slices of
//     the final word array.
//
// Inside a rank, roots are processed in locality order (ShardPlan) in
// batches of ShardConfig::batch_roots: one multi-source scout sweep over
// the union ball, one compact induced-subgraph gather (ball_gather.hpp),
// then every tree of the batch builds against that cache-resident local
// CSR. The output is bit-exact equal to the flat engine for every shard
// count (see ball_gather.hpp for the argument; test_shard_equivalence.cpp
// pins it for S in {1, 2, 3, 8}).
#pragma once

#include <functional>

#include "core/remote_spanner.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "shard/shard_plan.hpp"
#include "shard/transport.hpp"

namespace remspan {

/// Sharded counterpart of core/remote_spanner.cpp's union_of_trees.
/// `make_tree` receives a builder bound to the batch's local subgraph and a
/// LOCAL root id — the per-algorithm lambdas work unchanged because the
/// gather preserves every id tie-break (order isomorphism). `ball_depth`
/// must cover the deepest node the tree algorithm can touch (r for mis,
/// max(r, r-1+beta) for greedy, 2 for the k-connecting pair).
///
/// Requires config.sharded(); callers route S <= 1 to the flat engine.
/// `exchange` defaults to an InProcessExchange over config.num_shards
/// ranks; a caller-supplied exchange must have that many ranks.
[[nodiscard]] EdgeSet sharded_union_of_trees(
    const Graph& g, Dist ball_depth,
    const std::function<RootedTree(DomTreeBuilder&, NodeId)>& make_tree,
    const ShardConfig& config, SpannerBuildInfo* info = nullptr,
    WordExchange* exchange = nullptr);

}  // namespace remspan
