// Frontier-batched ball extraction: one multi-source bounded BFS per batch
// of roots (BallScout), then one compact induced subgraph of the union ball
// (BallGather). The sharded engine builds every dominating tree of the
// batch against that small local CSR instead of chasing pointers through
// the full graph once per root — the ball-reuse win that makes sharding
// profitable beyond plain parallelism.
//
// Bit-exactness argument (pinned by tests/test_shard_equivalence.cpp):
// a tree built for root u against the gathered subgraph equals the tree
// built against the whole graph, node-for-node and edge-for-edge, because
//   1. the union ball contains B(u, depth) for every batch root u, and a
//      depth-bounded BFS only ever discovers nodes inside B(u, depth) —
//      every neighbor scanned from a node at distance < depth lies in the
//      ball, so the local BFS visits the same nodes, in the same order,
//      with the same parents (local ids are assigned in ascending global-id
//      order, an order isomorphism, so every id tie-break is preserved);
//   2. the tree algorithms consult nodes outside the current BFS ball only
//      through per-node flags (in_s_, in_x_, nbr_u_, rem_, cov_, branches_)
//      that are zero for out-of-ball nodes in the whole-graph build too, so
//      dropping out-of-ball neighbors never changes a cover count, an MIS
//      membership test, or a pick;
//   3. every has_edge/find_edge query is between two ball nodes, and the
//      induced subgraph keeps all edges between members, with local edge
//      ids mapping back to global EdgeIds through the gather map.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// Lean multi-source bounded BFS that only tracks membership: a distance
/// array and a touched list, no parents (4 bytes per global node, kept and
/// reset-touched between batches like BoundedBfs).
class BallScout {
 public:
  explicit BallScout(std::size_t n) : dist_(n, kUnreachable) {}

  /// Expands the union ball of `sources` to depth `max_depth`; afterwards
  /// touched() holds every member in discovery order.
  void run(const Graph& g, std::span<const NodeId> sources, Dist max_depth);

  [[nodiscard]] bool in_ball(NodeId v) const noexcept { return dist_[v] != kUnreachable; }

  /// The union-ball members of the last run (discovery order).
  [[nodiscard]] std::span<const NodeId> touched() const noexcept { return order_; }

 private:
  std::vector<Dist> dist_;
  std::vector<NodeId> order_;
};

/// Builds the induced compact subgraph of a member set: members sorted by
/// global id become local ids 0..B-1, edges between members survive with
/// their adjacency order intact, and parallel maps translate local node and
/// edge ids back to global ones. The n-sized local-id map is reset through
/// the member list, so repeated gathers cost O(|ball| + |ball edges|).
class BallGather {
 public:
  explicit BallGather(std::size_t n) : local_of_(n, kInvalidNode) {}

  /// Gathers the induced subgraph of `members` (any order, no duplicates).
  void gather(const Graph& g, std::span<const NodeId> members);

  /// The compact induced subgraph of the last gather.
  [[nodiscard]] const Graph& local() const noexcept { return local_; }

  /// Members of the last gather in ascending global-id order; index == local id.
  [[nodiscard]] std::span<const NodeId> members() const noexcept { return members_; }

  /// Local id of a gathered global node (kInvalidNode for non-members).
  [[nodiscard]] NodeId local_id(NodeId global) const noexcept { return local_of_[global]; }

  [[nodiscard]] NodeId global_id(NodeId local) const { return members_[local]; }

  /// Global EdgeId of a local edge id of local().
  [[nodiscard]] EdgeId global_edge(EdgeId local) const { return global_edges_[local]; }

 private:
  std::vector<NodeId> local_of_;
  std::vector<NodeId> members_;
  std::vector<EdgeId> global_edges_;
  Graph local_;
};

}  // namespace remspan
