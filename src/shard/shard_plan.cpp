#include "shard/shard_plan.hpp"

#include <algorithm>

namespace remspan {

namespace detail {

void check_shard_limits(std::size_t nodes, std::size_t edges, std::size_t shards) {
  // kInvalidNode/kInvalidEdge are sentinels, so the largest representable
  // count is one below them.
  REMSPAN_CHECK(nodes < kInvalidNode);
  REMSPAN_CHECK(edges < kInvalidEdge);
  REMSPAN_CHECK(shards >= 1);
  REMSPAN_CHECK(shards <= kMaxShards);
}

}  // namespace detail

std::vector<NodeId> locality_root_order(const Graph& g, std::size_t cluster_size) {
  const NodeId n = g.num_nodes();
  const std::size_t cap = cluster_size == 0 ? std::size_t{n} + 1 : cluster_size;
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<std::uint8_t> visited(n, 0);
  NodeId scan = 0;  // ids below scan are all visited, so seeds scan forward
  while (order.size() < n) {
    while (scan < n && visited[scan] != 0) ++scan;
    // One cluster: BFS from the seed, stopping at `cap` nodes. order doubles
    // as the BFS queue — a cluster is the contiguous segment it appended.
    // Capping the queue (rather than draining a full frontier) keeps every
    // cluster a compact blob: a frontier ring of a whole-graph BFS spreads
    // consecutive entries around its whole circumference, which is exactly
    // what batched ball-gathering must avoid.
    const std::size_t cluster_end = order.size() + cap;
    std::size_t head = order.size();
    visited[scan] = 1;
    order.push_back(scan);
    for (; head < order.size() && order.size() < cluster_end; ++head) {
      for (const NodeId v : g.neighbors(order[head])) {
        if (visited[v] == 0) {
          visited[v] = 1;
          order.push_back(v);
          if (order.size() >= cluster_end) break;
        }
      }
    }
  }
  return order;
}

ShardPlan ShardPlan::make(const Graph& g, const ShardConfig& config) {
  const std::size_t shards = config.num_shards == 0 ? 1 : config.num_shards;
  detail::check_shard_limits(g.num_nodes(), g.num_edges(), shards);

  const std::size_t batch = config.batch_roots == 0 ? 1 : config.batch_roots;
  ShardPlan plan;
  plan.order_ = locality_root_order(g, batch);
  plan.num_words_ = (g.num_edges() + 63) / 64;
  plan.root_offsets_.resize(shards + 1);
  plan.word_offsets_.resize(shards + 1);
  const std::size_t n = plan.order_.size();
  for (std::size_t s = 0; s <= shards; ++s) {
    // Root spans balanced to the nearest cluster multiple, so the engine's
    // frontier batches coincide with the compact clusters of the order
    // (imbalance <= one batch; tiny graphs may leave low ranks empty, which
    // the engine handles). Word spans stay balanced within one word.
    const std::size_t raw = n * s / shards;
    plan.root_offsets_[s] = std::min(n, (raw + batch / 2) / batch * batch);
    plan.word_offsets_[s] = plan.num_words_ * s / shards;
  }
  plan.root_offsets_[0] = 0;
  plan.root_offsets_[shards] = n;
  return plan;
}

}  // namespace remspan
