// The inter-shard merge boundary, shaped like a transport: rank-local word
// arrays go in (publish), OR-reduced word ranges come out (gather_or).
// Today the only implementation is in-process pointer exchange between
// shard threads; a message-passing implementation (one process per rank,
// words on the wire) can slot in behind the same interface without touching
// the engine — the coordinator/word-batch model of the message-passing
// spanner literature (PAPERS.md, Fernández-Baca–Woodruff–Yasuda).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitset.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// Exchange contract: every rank publishes its local edge-bitset words
/// exactly once, then — after all publishes are complete (the engine's
/// fork/join barrier) — ranks pull the OR over all published arrays for
/// the word ranges they own.
class WordExchange {
 public:
  virtual ~WordExchange() = default;

  [[nodiscard]] virtual std::size_t num_ranks() const = 0;

  /// Hands rank's local words to the exchange. Called once per rank, from
  /// the rank's own thread; `words` must stay alive until gathering ends.
  virtual void publish(std::size_t rank, const AtomicBitset& words) = 0;

  /// OR of all published arrays over words [word_begin, word_end), written
  /// into `out` (out.size() == word_end - word_begin). Only valid after
  /// every rank has published.
  virtual void gather_or(std::size_t word_begin, std::size_t word_end,
                         std::span<std::uint64_t> out) const = 0;
};

/// Thread-backed exchange: publish stores a pointer into the rank's slot
/// (distinct slots, so concurrent publishes from shard threads are race
/// free) and gather_or reads the atomic words directly. The fork/join
/// barrier between the build and merge phases orders every publish before
/// every gather.
class InProcessExchange final : public WordExchange {
 public:
  explicit InProcessExchange(std::size_t ranks) : slots_(ranks, nullptr) {}

  [[nodiscard]] std::size_t num_ranks() const override { return slots_.size(); }
  void publish(std::size_t rank, const AtomicBitset& words) override;
  void gather_or(std::size_t word_begin, std::size_t word_end,
                 std::span<std::uint64_t> out) const override;

 private:
  std::vector<const AtomicBitset*> slots_;
};

}  // namespace remspan
