#include "shard/ball_gather.hpp"

#include <algorithm>
#include <utility>

namespace remspan {

void BallScout::run(const Graph& g, std::span<const NodeId> sources, Dist max_depth) {
  for (const NodeId v : order_) dist_[v] = kUnreachable;
  order_.clear();
  for (const NodeId src : sources) {
    REMSPAN_CHECK(src < g.num_nodes());
    if (dist_[src] != kUnreachable) continue;  // duplicate source
    dist_[src] = 0;
    order_.push_back(src);
  }
  // order_ doubles as the queue, appended in non-decreasing distance.
  for (std::size_t head = 0; head < order_.size(); ++head) {
    const NodeId u = order_[head];
    const Dist du = dist_[u];
    if (du >= max_depth) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (dist_[v] == kUnreachable) {
        dist_[v] = du + 1;
        order_.push_back(v);
      }
    }
  }
}

void BallGather::gather(const Graph& g, std::span<const NodeId> members) {
  for (const NodeId v : members_) local_of_[v] = kInvalidNode;
  members_.assign(members.begin(), members.end());
  std::sort(members_.begin(), members_.end());
  for (NodeId local = 0; local < members_.size(); ++local) {
    local_of_[members_[local]] = local;
  }

  // Induced edges in canonical order: outer loop ascends local u, and the
  // global adjacency rows are sorted, so the (lu, lv) pairs come out
  // lex-sorted and deduplicated — exactly what from_canonical_edges needs.
  // The local edge id is the emission index, so pushing the global id at
  // emission time builds the edge translation for free.
  std::vector<Edge> edges;
  // The vector is moved into the local Graph, so its capacity never carries
  // over between gathers; last batch's edge count is a tight estimate that
  // skips the realloc ladder.
  edges.reserve(std::max<std::size_t>(64, global_edges_.size()));
  global_edges_.clear();
  for (NodeId lu = 0; lu < members_.size(); ++lu) {
    const NodeId gu = members_[lu];
    const auto nbrs = g.neighbors(gu);
    const auto eids = g.incident_edges(gu);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId gv = nbrs[i];
      if (gv <= gu) continue;  // canonical direction only
      const NodeId lv = local_of_[gv];
      if (lv == kInvalidNode) continue;
      edges.push_back(Edge{lu, lv});
      global_edges_.push_back(eids[i]);
    }
  }
  local_ = Graph::from_canonical_edges(static_cast<NodeId>(members_.size()), std::move(edges));
}

}  // namespace remspan
