#include "shard/transport.hpp"

#include <algorithm>

namespace remspan {

void InProcessExchange::publish(std::size_t rank, const AtomicBitset& words) {
  REMSPAN_CHECK(rank < slots_.size());
  REMSPAN_CHECK(slots_[rank] == nullptr);
  slots_[rank] = &words;
}

void InProcessExchange::gather_or(std::size_t word_begin, std::size_t word_end,
                                  std::span<std::uint64_t> out) const {
  REMSPAN_CHECK(word_begin <= word_end);
  REMSPAN_CHECK(out.size() == word_end - word_begin);
  std::fill(out.begin(), out.end(), 0);
  for (const AtomicBitset* slot : slots_) {
    REMSPAN_CHECK(slot != nullptr);
    REMSPAN_CHECK(word_end <= slot->num_words());
    for (std::size_t w = word_begin; w < word_end; ++w) {
      out[w - word_begin] |= slot->word(w);
    }
  }
}

}  // namespace remspan
