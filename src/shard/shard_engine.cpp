#include "shard/shard_engine.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "shard/ball_gather.hpp"
#include "util/bitset.hpp"

namespace remspan {

namespace {

/// Per-rank tallies, accumulated single-threaded inside the rank's own
/// thread and reduced after the join barrier.
struct RankStats {
  std::size_t sum_tree_edges = 0;
  std::size_t max_tree_edges = 0;
  std::uint64_t batches = 0;
  std::uint64_t gather_nodes = 0;
  std::uint64_t gather_edges = 0;
  std::uint64_t words_ord = 0;
};

/// Runs `body(rank)` on one thread per rank and rethrows the first captured
/// exception after all threads joined (the join doubles as the phase
/// barrier the memory-ordering argument in transport.hpp relies on).
void run_ranks(std::size_t ranks, const std::function<void(std::size_t)>& body) {
  std::vector<std::exception_ptr> errors(ranks);
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (std::size_t rank = 0; rank < ranks; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        body(rank);
      } catch (...) {
        errors[rank] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

EdgeSet sharded_union_of_trees(
    const Graph& g, Dist ball_depth,
    const std::function<RootedTree(DomTreeBuilder&, NodeId)>& make_tree,
    const ShardConfig& config, SpannerBuildInfo* info, WordExchange* exchange) {
  REMSPAN_CHECK(config.sharded());
  obs::PhaseSpan span("shard.union_of_trees");

  const ShardPlan plan = ShardPlan::make(g, config);
  const std::size_t ranks = plan.num_shards();
  const std::size_t batch_size = std::max<std::size_t>(1, config.batch_roots);

  InProcessExchange default_exchange(ranks);
  WordExchange& ex = exchange != nullptr ? *exchange : default_exchange;
  REMSPAN_CHECK(ex.num_ranks() == ranks);

  // Level-1 accumulators: one full-width bitset per rank. unique_ptr keeps
  // AtomicBitset's non-movable words out of vector reallocation trouble.
  std::vector<std::unique_ptr<AtomicBitset>> rank_bits(ranks);
  for (auto& bits : rank_bits) bits = std::make_unique<AtomicBitset>(g.num_edges());
  std::vector<RankStats> stats(ranks);

  run_ranks(ranks, [&](std::size_t rank) {
    BallScout scout(g.num_nodes());
    BallGather gather(g.num_nodes());
    std::vector<EdgeId> ids;
    RankStats& rs = stats[rank];
    const auto roots = plan.roots(rank);
    for (std::size_t begin = 0; begin < roots.size(); begin += batch_size) {
      const auto batch = roots.subspan(begin, std::min(batch_size, roots.size() - begin));
      scout.run(g, batch, ball_depth);
      gather.gather(g, scout.touched());
      // The builder's scratch is sized by the LOCAL node count, so building
      // it per batch costs O(|union ball|) — the flat engine pays O(n) per
      // worker once, but then walks the full-size graph for every root.
      DomTreeBuilder builder(gather.local());
      ++rs.batches;
      rs.gather_nodes += gather.members().size();
      rs.gather_edges += gather.local().num_edges();
      for (const NodeId root : batch) {
        const RootedTree tree = make_tree(builder, gather.local_id(root));
        ids.clear();
        for (const NodeId v : tree.nodes()) {
          if (v == tree.root()) continue;
          const EdgeId local_edge = tree.parent_edge(v);
          REMSPAN_CHECK(local_edge != kInvalidEdge);
          ids.push_back(gather.global_edge(local_edge));
        }
        rs.sum_tree_edges += ids.size();
        rs.max_tree_edges = std::max(rs.max_tree_edges, ids.size());
        rs.words_ord += rank_bits[rank]->or_batch(ids);
      }
    }
    ex.publish(rank, *rank_bits[rank]);
  });

  // Level 2: every rank OR-reduces its owned word span into a disjoint
  // slice of the final word array. The join above ordered all publishes
  // (and all level-1 stores) before these reads.
  std::vector<std::uint64_t> merged(plan.num_words(), 0);
  run_ranks(ranks, [&](std::size_t rank) {
    const auto [word_begin, word_end] = plan.word_span(rank);
    ex.gather_or(word_begin, word_end,
                 std::span(merged).subspan(word_begin, word_end - word_begin));
  });

  EdgeSet spanner(g, DynamicBitset::from_words(g.num_edges(), std::move(merged)));

  RankStats total;
  for (const RankStats& rs : stats) {
    total.sum_tree_edges += rs.sum_tree_edges;
    total.max_tree_edges = std::max(total.max_tree_edges, rs.max_tree_edges);
    total.batches += rs.batches;
    total.gather_nodes += rs.gather_nodes;
    total.gather_edges += rs.gather_edges;
    total.words_ord += rs.words_ord;
  }
  if (info != nullptr) {
    info->sum_tree_edges = total.sum_tree_edges;
    info->max_tree_edges = total.max_tree_edges;
    info->build_seconds = span.seconds();
  }
  if (obs::Registry* m = obs::metrics()) {
    m->counter("shard.builds").add(1);
    m->counter("shard.ranks").add(ranks);
    m->counter("shard.trees").add(g.num_nodes());
    m->counter("shard.batches").add(total.batches);
    m->counter("shard.gather_nodes").add(total.gather_nodes);
    m->counter("shard.gather_edges").add(total.gather_edges);
    m->counter("shard.words_ord").add(total.words_ord);
    m->counter("shard.words_exchanged").add(plan.num_words() * ranks);
    m->counter("shard.spanner_edges").add(spanner.size());
  }
  return spanner;
}

}  // namespace remspan
