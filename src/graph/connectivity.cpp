#include "graph/connectivity.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "graph/disjoint_paths.hpp"

namespace remspan {

namespace {

template <NeighborView View>
Components components_of(const View& view) {
  const NodeId n = view.num_nodes();
  Components comps;
  comps.component.assign(n, kInvalidNode);
  BoundedBfs bfs(n);
  for (NodeId start = 0; start < n; ++start) {
    if (comps.component[start] != kInvalidNode) continue;
    bfs.run(view, start);
    for (const NodeId v : bfs.order()) comps.component[v] = comps.count;
    ++comps.count;
  }
  return comps;
}

}  // namespace

std::vector<NodeId> Components::largest() const {
  std::vector<std::size_t> sizes(count, 0);
  for (const NodeId c : component) ++sizes[c];
  const auto best =
      static_cast<NodeId>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> out;
  out.reserve(sizes[best]);
  for (NodeId v = 0; v < component.size(); ++v) {
    if (component[v] == best) out.push_back(v);
  }
  return out;
}

Components connected_components(const Graph& g) { return components_of(GraphView(g)); }

Components connected_components(const EdgeSet& h) { return components_of(SubgraphView(h)); }

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || connected_components(g).count == 1;
}

Graph largest_component(const Graph& g) {
  const auto comps = connected_components(g);
  if (comps.count <= 1) return g;
  return induced_subgraph(g, comps.largest()).graph;
}

InducedSubgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& keep) {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(keep.size());
  for (NodeId i = 0; i < keep.size(); ++i) {
    REMSPAN_CHECK(i == 0 || keep[i - 1] < keep[i]);  // sorted & unique
    remap.emplace(keep[i], i);
  }
  GraphBuilder builder(static_cast<NodeId>(keep.size()));
  for (const Edge& e : g.edges()) {
    const auto iu = remap.find(e.u);
    const auto iv = remap.find(e.v);
    if (iu != remap.end() && iv != remap.end()) {
      builder.add_edge(iu->second, iv->second);
    }
  }
  return InducedSubgraph{builder.build(), keep};
}

Dist vertex_connectivity(const Graph& g, NodeId s, NodeId t, Dist cap) {
  REMSPAN_CHECK(s != t);
  const Dist limit = cap == 0 ? g.num_nodes() : cap;
  const auto result = min_disjoint_paths(GraphView(g), s, t, limit);
  return result.connectivity();
}

}  // namespace remspan
