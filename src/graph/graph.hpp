// Immutable undirected simple graph in CSR form.
//
// Remote-spanner algorithms operate on an input graph G and select a subset
// of its edges; the Graph therefore assigns every undirected edge a stable
// EdgeId and exposes, for each adjacency slot, the id of the edge it
// belongs to. EdgeSet (edge_set.hpp) represents spanners as bitsets over
// those ids, giving O(deg) iteration over "neighbors of u within H".
#pragma once

#include <span>
#include <vector>

#include "util/prelude.hpp"

namespace remspan {

/// Canonical undirected edge: u < v always holds. Ordering is
/// lexicographic on (u, v), i.e. the canonical edge-list order.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Normalizes an endpoint pair into canonical form.
[[nodiscard]] constexpr Edge make_edge(NodeId a, NodeId b) noexcept {
  return a < b ? Edge{a, b} : Edge{b, a};
}

class Graph;

namespace detail {
/// Overflow guards for graph construction: node and edge counts must fit
/// the 32-bit NodeId/EdgeId index types, whose max values are reserved as
/// the kInvalidNode/kInvalidEdge sentinels. At the 10^7-node scale the
/// sharded engine targets, a count that silently wrapped would corrupt
/// every downstream id; this throws CheckError up front instead
/// (test_graph.cpp pins the failure mode).
void check_graph_limits(std::size_t nodes, std::size_t edges);
}  // namespace detail

/// Mutable accumulation of edges; build() produces the immutable CSR Graph.
/// Self-loops are rejected; duplicate edges are merged silently (generators
/// may naturally produce duplicates).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes);

  void add_edge(NodeId a, NodeId b);
  void reserve(std::size_t edges);
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  [[nodiscard]] Graph build() const;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

class Graph {
 public:
  Graph() = default;

  /// Builds from a canonical, deduplicated, sorted edge list (GraphBuilder
  /// takes care of that normalization).
  static Graph from_canonical_edges(NodeId num_nodes, std::vector<Edge> edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Sorted neighbor list of u.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  /// Edge ids parallel to neighbors(u): incident_edges(u)[i] is the id of
  /// the edge {u, neighbors(u)[i]}.
  [[nodiscard]] std::span<const EdgeId> incident_edges(NodeId u) const {
    return {adj_edge_ids_.data() + offsets_[u], adj_edge_ids_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] Dist degree(NodeId u) const noexcept {
    return static_cast<Dist>(offsets_[u + 1] - offsets_[u]);
  }

  /// Maximum degree Delta; the paper's approximation factors are stated in
  /// terms of (1 + log Delta).
  [[nodiscard]] Dist max_degree() const noexcept { return max_degree_; }

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const noexcept {
    return find_edge(a, b) != kInvalidEdge;
  }

  /// Id of edge {a,b}, or kInvalidEdge. O(log deg) by binary search.
  [[nodiscard]] EdgeId find_edge(NodeId a, NodeId b) const noexcept;

  [[nodiscard]] const Edge& edge(EdgeId id) const noexcept { return edges_[id]; }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Sum of degrees / n; handy for workload reporting.
  [[nodiscard]] double average_degree() const noexcept {
    return num_nodes() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adj_;
  std::vector<EdgeId> adj_edge_ids_;
  std::vector<Edge> edges_;
  Dist max_degree_ = 0;
};

}  // namespace remspan
