// Plain-text graph serialization: a simple edge-list format for persisting
// generated workloads, and Graphviz DOT export (with spanner-edge
// highlighting) used by the figure1 example.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

/// Format:
///   # comments allowed
///   n <num_nodes>
///   <u> <v>        (one edge per line)
void write_edge_list(std::ostream& out, const Graph& g);
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// DOT rendering. When `highlight` is given, edges inside it are drawn
/// solid/bold, others dashed grey — the paper's Figure 1 convention for
/// spanner vs input edges.
[[nodiscard]] std::string to_dot(const Graph& g, const EdgeSet* highlight = nullptr,
                                 const std::string& name = "G");

}  // namespace remspan
