// The k-connecting distance oracle.
//
// d^k_K(s,t) — the paper's Section 3 distance — is the minimum total length
// of k pairwise internally node-disjoint s-t paths in K (infinity when no k
// disjoint paths exist). We compute it exactly by minimum-cost flow on the
// node-split transform of K: every vertex v becomes v_in -> v_out with
// capacity 1 (0 for s and t, so paths never cross the terminals), every
// undirected edge {a,b} becomes the two unit-capacity, unit-cost arcs
// a_out -> b_in and b_out -> a_in. Successive shortest paths then yield
// d^1, d^2, ..., d^k in a single run thanks to prefix optimality.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/flow.hpp"
#include "graph/views.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// d^1..d^k summary for one (s,t) pair.
struct DisjointPathsResult {
  /// total_length[i] == d^{i+1}(s,t). The vector stops at the largest k' for
  /// which k' disjoint paths exist, so total_length.size() is the (capped)
  /// vertex connectivity between s and t.
  std::vector<std::uint64_t> total_length;

  /// The path decomposition achieving total_length.back(): each entry is a
  /// node sequence s ... t. Empty when s and t are disconnected.
  std::vector<std::vector<NodeId>> paths;

  /// d^k or kNoPaths when fewer than k disjoint paths exist.
  static constexpr std::uint64_t kNoPaths = std::numeric_limits<std::uint64_t>::max();
  [[nodiscard]] std::uint64_t d(std::size_t k) const {
    return k >= 1 && k <= total_length.size() ? total_length[k - 1] : kNoPaths;
  }
  [[nodiscard]] Dist connectivity() const {
    return static_cast<Dist>(total_length.size());
  }
};

namespace detail {

/// Builds the node-split min-cost-flow network from any NeighborView.
/// Vertex numbering: v_in = 2v, v_out = 2v + 1.
template <NeighborView View>
[[nodiscard]] MinCostFlow build_split_network(const View& view, NodeId s, NodeId t,
                                              std::vector<std::size_t>* edge_arc_ids) {
  const std::size_t n = view.num_nodes();
  MinCostFlow flow(2 * n);
  for (NodeId v = 0; v < n; ++v) {
    const std::int32_t cap = (v == s || v == t) ? 0 : 1;
    flow.add_arc(2 * v, 2 * v + 1, cap, 0);
  }
  for (NodeId u = 0; u < n; ++u) {
    view.for_each_neighbor(u, [&](NodeId v) {
      // Each undirected edge is enumerated from both endpoints, producing
      // exactly the two directed arcs the transform needs.
      const std::size_t arc = flow.add_arc(2 * u + 1, 2 * v, 1, 1);
      if (edge_arc_ids != nullptr) edge_arc_ids->push_back(arc);
    });
  }
  return flow;
}

/// Extracts the node-disjoint path decomposition from a solved network.
std::vector<std::vector<NodeId>> decompose_paths(const MinCostFlow& flow, NodeId s, NodeId t,
                                                 NodeId num_nodes);

}  // namespace detail

/// Computes d^1..d^k between s and t over the view (k >= 1). Set
/// want_paths = false to skip the decomposition when only lengths matter
/// (the oracles verify millions of pairs).
template <NeighborView View>
[[nodiscard]] DisjointPathsResult min_disjoint_paths(const View& view, NodeId s, NodeId t,
                                                     Dist k, bool want_paths = false) {
  REMSPAN_CHECK(s != t);
  REMSPAN_CHECK(k >= 1);
  MinCostFlow flow = detail::build_split_network(view, s, t, nullptr);
  const auto unit_costs = flow.solve(2 * s + 1, 2 * t, static_cast<std::int64_t>(k));
  DisjointPathsResult result;
  std::uint64_t cumulative = 0;
  for (const std::int64_t c : unit_costs) {
    cumulative += static_cast<std::uint64_t>(c);
    result.total_length.push_back(cumulative);
  }
  if (want_paths && !unit_costs.empty()) {
    result.paths = detail::decompose_paths(flow, s, t, view.num_nodes());
  }
  return result;
}

/// Convenience: d^k(s,t) or DisjointPathsResult::kNoPaths.
template <NeighborView View>
[[nodiscard]] std::uint64_t k_connecting_distance(const View& view, NodeId s, NodeId t,
                                                  Dist k) {
  return min_disjoint_paths(view, s, t, k).d(k);
}

}  // namespace remspan
