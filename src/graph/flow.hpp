// Minimum-cost flow via successive shortest paths (Dijkstra + Johnson
// potentials). This is the engine behind the k-connecting distance oracle:
// on the node-split transform of a graph, the cost of the i-th augmentation
// sequence equals d^i(s,t), the minimum total length of i internally
// node-disjoint s-t paths (paper Section 3).
#pragma once

#include <cstdint>
#include <vector>

#include "util/prelude.hpp"

namespace remspan {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_vertices);

  /// Adds a directed arc and its zero-capacity reverse. Returns the arc id
  /// of the forward arc. Costs must be non-negative (hop counts are).
  std::size_t add_arc(std::size_t from, std::size_t to, std::int32_t capacity,
                      std::int32_t cost);

  /// Pushes up to max_units units of flow from s to t, one shortest
  /// (cheapest) augmenting path at a time. Returns the cost of each
  /// successive unit: result[i] is the cost of augmentation i+1, so the
  /// cumulative sum of the first i entries is the min cost of an i-unit
  /// flow (prefix optimality of SSP). Stops early when t becomes
  /// unreachable. May be called once per instance.
  [[nodiscard]] std::vector<std::int64_t> solve(std::size_t s, std::size_t t,
                                                std::int64_t max_units);

  /// Flow currently on the forward arc `arc_id` (capacity minus residual).
  [[nodiscard]] std::int32_t flow_on(std::size_t arc_id) const;

  struct Arc {
    std::size_t to;
    std::size_t rev;  // index of the reverse arc in arcs_[to]... flattened: index into arcs_
    std::int32_t capacity;
    std::int32_t cost;
  };

  [[nodiscard]] const Arc& arc(std::size_t arc_id) const { return arcs_[arc_id]; }
  [[nodiscard]] std::size_t num_vertices() const noexcept { return head_.size(); }

  /// Ids of the arcs leaving `vertex` (forward and reverse arcs mixed; use
  /// flow_on + initial capacity to tell them apart during decomposition).
  [[nodiscard]] const std::vector<std::size_t>& outgoing(std::size_t vertex) const {
    return head_[vertex];
  }

  /// The capacity the arc was created with (reverse arcs have 0).
  [[nodiscard]] std::int32_t initial_capacity(std::size_t arc_id) const {
    return initial_capacity_[arc_id];
  }

 private:
  bool dijkstra(std::size_t s, std::size_t t);

  std::vector<std::vector<std::size_t>> head_;  // per-vertex arc ids
  std::vector<Arc> arcs_;
  std::vector<std::int32_t> initial_capacity_;
  std::vector<std::int64_t> potential_;
  std::vector<std::int64_t> dist_;
  std::vector<std::size_t> prev_arc_;
  std::vector<bool> visited_;
};

}  // namespace remspan
