#include "graph/graph.hpp"

#include <algorithm>

namespace remspan {

namespace detail {

void check_graph_limits(std::size_t nodes, std::size_t edges) {
  REMSPAN_CHECK(nodes < kInvalidNode);
  REMSPAN_CHECK(edges < kInvalidEdge);
}

}  // namespace detail

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::reserve(std::size_t edges) { edges_.reserve(edges); }

void GraphBuilder::add_edge(NodeId a, NodeId b) {
  REMSPAN_CHECK(a != b);
  REMSPAN_CHECK(a < num_nodes_ && b < num_nodes_);
  edges_.push_back(make_edge(a, b));
}

Graph GraphBuilder::build() const {
  std::vector<Edge> edges = edges_;
  std::sort(edges.begin(), edges.end());  // Edge orders lexicographically: canonical order
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph::from_canonical_edges(num_nodes_, std::move(edges));
}

Graph Graph::from_canonical_edges(NodeId num_nodes, std::vector<Edge> edges) {
  detail::check_graph_limits(num_nodes, edges.size());
  Graph g;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (std::size_t i = 0; i < g.edges_.size(); ++i) {
    const Edge& e = g.edges_[i];
    REMSPAN_CHECK(e.u < e.v && e.v < num_nodes);
    // The contract requires the list sorted and deduplicated; adjacency-row
    // sortedness below depends on it, so enforce rather than assume.
    REMSPAN_CHECK(i == 0 || g.edges_[i - 1] < e);
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(2 * g.edges_.size());
  g.adj_edge_ids_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // One scan in canonical order leaves every adjacency row sorted by
  // neighbor id, no per-row sort needed: node x first receives its
  // neighbors u < x (from edges (u,x), scanned in ascending u), then its
  // neighbors w > x (from edges (x,w), ascending w) — two ascending runs
  // whose values straddle x. This keeps snapshot construction cheap enough
  // for the dynamic-update path, which rebuilds the CSR every batch.
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adj_[cursor[e.u]] = e.v;
    g.adj_edge_ids_[cursor[e.u]++] = id;
    g.adj_[cursor[e.v]] = e.u;
    g.adj_edge_ids_[cursor[e.v]++] = id;
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    g.max_degree_ = std::max(g.max_degree_, static_cast<Dist>(g.offsets_[u + 1] - g.offsets_[u]));
  }
  return g;
}

EdgeId Graph::find_edge(NodeId a, NodeId b) const noexcept {
  if (a >= num_nodes() || b >= num_nodes() || a == b) return kInvalidEdge;
  // Search the smaller adjacency row.
  if (degree(a) > degree(b)) std::swap(a, b);
  const auto nbrs = neighbors(a);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
  if (it == nbrs.end() || *it != b) return kInvalidEdge;
  const auto slot = static_cast<std::size_t>(it - nbrs.begin());
  return incident_edges(a)[slot];
}

}  // namespace remspan
