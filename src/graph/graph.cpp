#include "graph/graph.hpp"

#include <algorithm>

namespace remspan {

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::reserve(std::size_t edges) { edges_.reserve(edges); }

void GraphBuilder::add_edge(NodeId a, NodeId b) {
  REMSPAN_CHECK(a != b);
  REMSPAN_CHECK(a < num_nodes_ && b < num_nodes_);
  edges_.push_back(make_edge(a, b));
}

Graph GraphBuilder::build() const {
  std::vector<Edge> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph::from_canonical_edges(num_nodes_, std::move(edges));
}

Graph Graph::from_canonical_edges(NodeId num_nodes, std::vector<Edge> edges) {
  Graph g;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : g.edges_) {
    REMSPAN_CHECK(e.u < e.v && e.v < num_nodes);
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(2 * g.edges_.size());
  g.adj_edge_ids_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adj_[cursor[e.u]] = e.v;
    g.adj_edge_ids_[cursor[e.u]++] = id;
    g.adj_[cursor[e.v]] = e.u;
    g.adj_edge_ids_[cursor[e.v]++] = id;
  }
  // Sort each adjacency row by neighbor id, keeping edge ids aligned.
  for (NodeId u = 0; u < num_nodes; ++u) {
    const std::size_t lo = g.offsets_[u];
    const std::size_t hi = g.offsets_[u + 1];
    std::vector<std::pair<NodeId, EdgeId>> row;
    row.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) row.emplace_back(g.adj_[i], g.adj_edge_ids_[i]);
    std::sort(row.begin(), row.end());
    for (std::size_t i = lo; i < hi; ++i) {
      g.adj_[i] = row[i - lo].first;
      g.adj_edge_ids_[i] = row[i - lo].second;
    }
    g.max_degree_ = std::max(g.max_degree_, static_cast<Dist>(hi - lo));
  }
  return g;
}

EdgeId Graph::find_edge(NodeId a, NodeId b) const noexcept {
  if (a >= num_nodes() || b >= num_nodes() || a == b) return kInvalidEdge;
  // Search the smaller adjacency row.
  if (degree(a) > degree(b)) std::swap(a, b);
  const auto nbrs = neighbors(a);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), b);
  if (it == nbrs.end() || *it != b) return kInvalidEdge;
  const auto slot = static_cast<std::size_t>(it - nbrs.begin());
  return incident_edges(a)[slot];
}

}  // namespace remspan
