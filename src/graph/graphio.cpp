#include "graph/graphio.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace remspan {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "n " << g.num_nodes() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  NodeId n = 0;
  bool have_n = false;
  std::vector<std::pair<NodeId, NodeId>> pending;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (!have_n) {
      std::string tag;
      ls >> tag >> n;
      REMSPAN_CHECK(tag == "n");
      have_n = true;
      continue;
    }
    NodeId u = 0, v = 0;
    if (ls >> u >> v) pending.emplace_back(u, v);
  }
  REMSPAN_CHECK(have_n);
  GraphBuilder builder(n);
  builder.reserve(pending.size());
  for (const auto& [u, v] : pending) builder.add_edge(u, v);
  return builder.build();
}

std::string to_dot(const Graph& g, const EdgeSet* highlight, const std::string& name) {
  std::ostringstream out;
  out << "graph " << name << " {\n";
  out << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  " << v << ";\n";
  }
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    out << "  " << e.u << " -- " << e.v;
    if (highlight != nullptr) {
      if (highlight->contains(id)) {
        out << " [penwidth=2]";
      } else {
        out << " [style=dashed, color=gray]";
      }
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace remspan
