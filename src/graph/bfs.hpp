// Breadth-first search over any NeighborView, with optional depth bound.
//
// BoundedBfs keeps its arrays between runs and resets only the nodes it
// touched, so per-root ball explorations (the inner loop of every
// dominating-tree algorithm) cost O(|ball|), not O(n).
//
// The visit order is a reusable flat workspace for the ball B(src, depth):
// nodes are appended in non-decreasing distance, and run() records the
// offset at which each distance shell starts, so shell(d) hands back the
// nodes at exactly distance d as a contiguous span in O(1). The
// dominating-tree builders iterate one shell at a time in O(|shell|)
// instead of rescanning the whole ball per shell.
#pragma once

#include <span>
#include <vector>

#include "graph/views.hpp"
#include "obs/obs.hpp"
#include "util/prelude.hpp"

namespace remspan {

class BoundedBfs {
 public:
  explicit BoundedBfs(std::size_t n)
      : dist_(n, kUnreachable), parent_(n, kInvalidNode), parent_edge_(n, kInvalidEdge) {}

  /// Runs BFS from src, exploring nodes at distance <= max_depth. Returns the
  /// visit order (src first, non-decreasing distance). Results stay valid
  /// until the next run() call.
  template <NeighborView View>
  const std::vector<NodeId>& run(const View& view, NodeId src, Dist max_depth = kUnreachable) {
    REMSPAN_CHECK(src < view.num_nodes());
    return run_multi(view, {&src, 1}, max_depth);
  }

  /// Multi-source variant: every source starts at distance 0 (shell 0 holds
  /// the sources, duplicates collapse). dist(v) is the distance to the
  /// nearest source — this is how the incremental spanner engine expands
  /// the union of balls around the endpoints touched by a batch of graph
  /// updates in one pass.
  template <NeighborView View>
  const std::vector<NodeId>& run_multi(const View& view, std::span<const NodeId> sources,
                                       Dist max_depth = kUnreachable) {
    reset();
    for (const NodeId src : sources) {
      REMSPAN_CHECK(src < view.num_nodes());
      if (dist_[src] != kUnreachable) continue;  // duplicate source
      dist_[src] = 0;
      parent_[src] = kInvalidNode;
      order_.push_back(src);
    }
    shell_offsets_.push_back(0);  // shell 0 starts at order_[0]
    // order_ doubles as the queue: nodes are appended in BFS order.
    for (std::size_t head = 0; head < order_.size(); ++head) {
      const NodeId u = order_[head];
      const Dist du = dist_[u];
      if (du >= max_depth) continue;
      const Dist dv = du + 1;
      auto visit = [&](NodeId v, EdgeId id) {
        if (dist_[v] == kUnreachable) {
          dist_[v] = dv;
          parent_[v] = u;
          parent_edge_[v] = id;
          // First node of a new shell: record where it starts. Shells appear
          // in order because order_ is sorted by distance.
          if (dv == shell_offsets_.size()) shell_offsets_.push_back(order_.size());
          order_.push_back(v);
        }
      };
      if constexpr (EdgeNeighborView<View>) {
        view.for_each_neighbor_edge(u, visit);
      } else {
        view.for_each_neighbor(u, [&](NodeId v) { visit(v, kInvalidEdge); });
      }
    }
    if (obs::Registry* m = obs::metrics()) publish_stats(*m);
    return order_;
  }

  [[nodiscard]] Dist dist(NodeId v) const noexcept { return dist_[v]; }
  [[nodiscard]] bool reached(NodeId v) const noexcept { return dist_[v] != kUnreachable; }

  /// BFS-tree parent of v (kInvalidNode for the source and unreached nodes).
  /// Following parents from x to the source traces a shortest path, which is
  /// exactly how the dominating-tree algorithms add "a shortest path from u
  /// to x in G" while keeping the union a tree (DESIGN.md §4).
  [[nodiscard]] NodeId parent(NodeId v) const noexcept { return parent_[v]; }

  /// Id of the edge {parent(v), v} in the underlying Graph, recorded when the
  /// last run() used an EdgeNeighborView (kInvalidEdge for the source,
  /// unreached nodes, and runs over edge-less views).
  [[nodiscard]] EdgeId parent_edge(NodeId v) const noexcept { return parent_edge_[v]; }

  [[nodiscard]] const std::vector<NodeId>& order() const noexcept { return order_; }

  /// Number of non-empty distance shells of the last run (max distance + 1);
  /// 0 before the first run.
  [[nodiscard]] Dist num_shells() const noexcept {
    return static_cast<Dist>(shell_offsets_.size());
  }

  /// The nodes at exactly distance d from the source, as a contiguous slice
  /// of order() (empty span for d >= num_shells()). Within a shell, nodes
  /// appear in discovery order, not id order.
  [[nodiscard]] std::span<const NodeId> shell(Dist d) const noexcept {
    if (d >= shell_offsets_.size()) return {};
    const std::size_t begin = shell_offsets_[d];
    const std::size_t end =
        d + 1 < shell_offsets_.size() ? shell_offsets_[d + 1] : order_.size();
    return {order_.data() + begin, order_.data() + end};
  }

 private:
  /// Whole-run totals for the installed metrics sink: the ball that was
  /// just expanded, its shell-size distribution and the widest shell
  /// (frontier occupancy). One call per run keeps the disabled path to the
  /// single branch in run_multi.
  void publish_stats(obs::Registry& m) const {
    m.counter("bfs.runs").add(1);
    m.counter("bfs.nodes_expanded").add(order_.size());
    m.histogram("bfs.ball_nodes").record(order_.size());
    std::size_t widest = 0;
    for (std::size_t d = 0; d < shell_offsets_.size(); ++d) {
      const std::size_t end =
          d + 1 < shell_offsets_.size() ? shell_offsets_[d + 1] : order_.size();
      const std::size_t width = end - shell_offsets_[d];
      if (width > widest) widest = width;
      m.histogram("bfs.shell_nodes").record(width);
    }
    m.histogram("bfs.frontier_max").record(widest);
  }

  void reset() {
    for (const NodeId v : order_) {
      dist_[v] = kUnreachable;
      parent_[v] = kInvalidNode;
      parent_edge_[v] = kInvalidEdge;
    }
    order_.clear();
    shell_offsets_.clear();
  }

  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<NodeId> order_;
  std::vector<std::size_t> shell_offsets_;  // shell d starts at order_[shell_offsets_[d]]
};

/// One-shot BFS: distance vector from src over the view (kUnreachable for
/// unreached nodes).
template <NeighborView View>
[[nodiscard]] std::vector<Dist> bfs_distances(const View& view, NodeId src,
                                              Dist max_depth = kUnreachable) {
  BoundedBfs bfs(view.num_nodes());
  bfs.run(view, src, max_depth);
  std::vector<Dist> out(view.num_nodes(), kUnreachable);
  for (const NodeId v : bfs.order()) out[v] = bfs.dist(v);
  return out;
}

/// Distance between two nodes over the view.
template <NeighborView View>
[[nodiscard]] Dist bfs_distance(const View& view, NodeId src, NodeId dst) {
  BoundedBfs bfs(view.num_nodes());
  bfs.run(view, src);
  return bfs.dist(dst);
}

}  // namespace remspan
