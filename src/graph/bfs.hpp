// Breadth-first search over any NeighborView, with optional depth bound.
//
// BoundedBfs keeps its arrays between runs and resets only the nodes it
// touched, so per-root ball explorations (the inner loop of every
// dominating-tree algorithm) cost O(|ball|), not O(n).
#pragma once

#include <vector>

#include "graph/views.hpp"
#include "util/prelude.hpp"

namespace remspan {

class BoundedBfs {
 public:
  explicit BoundedBfs(std::size_t n)
      : dist_(n, kUnreachable), parent_(n, kInvalidNode), parent_edge_(n, kInvalidEdge) {}

  /// Runs BFS from src, exploring nodes at distance <= max_depth. Returns the
  /// visit order (src first, non-decreasing distance). Results stay valid
  /// until the next run() call.
  template <NeighborView View>
  const std::vector<NodeId>& run(const View& view, NodeId src, Dist max_depth = kUnreachable) {
    reset();
    REMSPAN_CHECK(src < view.num_nodes());
    dist_[src] = 0;
    parent_[src] = kInvalidNode;
    order_.push_back(src);
    // order_ doubles as the queue: nodes are appended in BFS order.
    for (std::size_t head = 0; head < order_.size(); ++head) {
      const NodeId u = order_[head];
      const Dist du = dist_[u];
      if (du >= max_depth) continue;
      if constexpr (EdgeNeighborView<View>) {
        view.for_each_neighbor_edge(u, [&](NodeId v, EdgeId id) {
          if (dist_[v] == kUnreachable) {
            dist_[v] = du + 1;
            parent_[v] = u;
            parent_edge_[v] = id;
            order_.push_back(v);
          }
        });
      } else {
        view.for_each_neighbor(u, [&](NodeId v) {
          if (dist_[v] == kUnreachable) {
            dist_[v] = du + 1;
            parent_[v] = u;
            order_.push_back(v);
          }
        });
      }
    }
    return order_;
  }

  [[nodiscard]] Dist dist(NodeId v) const noexcept { return dist_[v]; }
  [[nodiscard]] bool reached(NodeId v) const noexcept { return dist_[v] != kUnreachable; }

  /// BFS-tree parent of v (kInvalidNode for the source and unreached nodes).
  /// Following parents from x to the source traces a shortest path, which is
  /// exactly how the dominating-tree algorithms add "a shortest path from u
  /// to x in G" while keeping the union a tree (DESIGN.md §4).
  [[nodiscard]] NodeId parent(NodeId v) const noexcept { return parent_[v]; }

  /// Id of the edge {parent(v), v} in the underlying Graph, recorded when the
  /// last run() used an EdgeNeighborView (kInvalidEdge for the source,
  /// unreached nodes, and runs over edge-less views).
  [[nodiscard]] EdgeId parent_edge(NodeId v) const noexcept { return parent_edge_[v]; }

  [[nodiscard]] const std::vector<NodeId>& order() const noexcept { return order_; }

 private:
  void reset() {
    for (const NodeId v : order_) {
      dist_[v] = kUnreachable;
      parent_[v] = kInvalidNode;
      parent_edge_[v] = kInvalidEdge;
    }
    order_.clear();
  }

  std::vector<Dist> dist_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<NodeId> order_;
};

/// One-shot BFS: distance vector from src over the view (kUnreachable for
/// unreached nodes).
template <NeighborView View>
[[nodiscard]] std::vector<Dist> bfs_distances(const View& view, NodeId src,
                                              Dist max_depth = kUnreachable) {
  BoundedBfs bfs(view.num_nodes());
  bfs.run(view, src, max_depth);
  std::vector<Dist> out(view.num_nodes(), kUnreachable);
  for (const NodeId v : bfs.order()) out[v] = bfs.dist(v);
  return out;
}

/// Distance between two nodes over the view.
template <NeighborView View>
[[nodiscard]] Dist bfs_distance(const View& view, NodeId src, NodeId dst) {
  BoundedBfs bfs(view.num_nodes());
  bfs.run(view, src);
  return bfs.dist(dst);
}

}  // namespace remspan
