#include "graph/distances.hpp"

#include <algorithm>

namespace remspan {

Dist eccentricity(std::span<const Dist> row) {
  Dist ecc = 0;
  for (const Dist d : row) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

Dist diameter(const DistanceMatrix& dm) {
  Dist diam = 0;
  for (NodeId u = 0; u < dm.num_nodes(); ++u) {
    diam = std::max(diam, eccentricity(dm.row(u)));
  }
  return diam;
}

}  // namespace remspan
