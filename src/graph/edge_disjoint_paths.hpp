// Edge-disjoint variant of the k-connecting distance: the paper's
// concluding remark suggests extending remote-spanners to edge-connectivity
// ("we consider paths that are edge-disjoint rather than internal-node
// disjoint"). This oracle computes ed^k(s,t), the minimum total length of k
// pairwise EDGE-disjoint s-t paths.
//
// Model: no node splitting; each undirected edge becomes two opposing unit-
// capacity, unit-cost arcs. With strictly positive costs a min-cost flow
// never uses both directions of one edge (the two units could cancel and
// strictly reduce cost), so the two-arc encoding is exact for undirected
// edge-disjointness.
#pragma once

#include "graph/disjoint_paths.hpp"
#include "graph/flow.hpp"
#include "graph/views.hpp"

namespace remspan {

/// Computes ed^1..ed^k between s and t over the view (k >= 1). Reuses
/// DisjointPathsResult; the `paths` field is left empty (lengths only).
template <NeighborView View>
[[nodiscard]] DisjointPathsResult min_edge_disjoint_paths(const View& view, NodeId s,
                                                          NodeId t, Dist k) {
  REMSPAN_CHECK(s != t);
  REMSPAN_CHECK(k >= 1);
  const std::size_t n = view.num_nodes();
  MinCostFlow flow(n);
  for (NodeId u = 0; u < n; ++u) {
    view.for_each_neighbor(u, [&](NodeId v) {
      // Each undirected edge is enumerated once per endpoint, creating
      // exactly its two directed arcs.
      flow.add_arc(u, v, 1, 1);
    });
  }
  const auto unit_costs = flow.solve(s, t, static_cast<std::int64_t>(k));
  DisjointPathsResult result;
  std::uint64_t cumulative = 0;
  for (const std::int64_t c : unit_costs) {
    cumulative += static_cast<std::uint64_t>(c);
    result.total_length.push_back(cumulative);
  }
  return result;
}

/// ed^k(s,t) or DisjointPathsResult::kNoPaths.
template <NeighborView View>
[[nodiscard]] std::uint64_t k_edge_connecting_distance(const View& view, NodeId s, NodeId t,
                                                       Dist k) {
  return min_edge_disjoint_paths(view, s, t, k).d(k);
}

}  // namespace remspan
