// Adjacency views: light adapters that present "the graph G", "the spanner
// H ⊆ G" and "the augmented graph H_u = H + star(u)" behind one neighbor
// enumeration concept so BFS and the oracles are written once.
//
// H_u is the central object of the paper: remote-spanner stretch is defined
// through distances in H augmented with ALL edges between u and its
// G-neighbors (Section 1).
#pragma once

#include <concepts>

#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

/// A NeighborView enumerates neighbors: view.for_each_neighbor(u, fn).
template <typename V>
concept NeighborView = requires(const V& view, NodeId u) {
  { view.num_nodes() } -> std::convertible_to<NodeId>;
  view.for_each_neighbor(u, [](NodeId) {});
};

/// A NeighborView whose edges carry the underlying Graph's edge ids:
/// view.for_each_neighbor_edge(u, fn(v, edge_id)). BFS records the parent
/// edge id of every reached node over such views, which is what lets the
/// dominating-tree builders hand whole tree edges (not just endpoints) to
/// the spanner union without any adjacency search.
template <typename V>
concept EdgeNeighborView = NeighborView<V> && requires(const V& view, NodeId u) {
  view.for_each_neighbor_edge(u, [](NodeId, EdgeId) {});
};

/// The full input graph G.
class GraphView {
 public:
  explicit GraphView(const Graph& g) noexcept : g_(&g) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return g_->num_nodes(); }

  template <typename Fn>
  void for_each_neighbor(NodeId u, Fn&& fn) const {
    for (const NodeId v : g_->neighbors(u)) fn(v);
  }

  template <typename Fn>
  void for_each_neighbor_edge(NodeId u, Fn&& fn) const {
    const auto nbrs = g_->neighbors(u);
    const auto ids = g_->incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) fn(nbrs[i], ids[i]);
  }

 private:
  const Graph* g_;
};

/// The sub-graph H given by an EdgeSet.
class SubgraphView {
 public:
  explicit SubgraphView(const EdgeSet& h) noexcept : h_(&h) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return h_->graph().num_nodes(); }

  template <typename Fn>
  void for_each_neighbor(NodeId u, Fn&& fn) const {
    h_->for_each_neighbor(u, fn);
  }

  template <typename Fn>
  void for_each_neighbor_edge(NodeId u, Fn&& fn) const {
    const Graph& g = h_->graph();
    const auto nbrs = g.neighbors(u);
    const auto ids = g.incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (h_->contains(ids[i])) fn(nbrs[i], ids[i]);
    }
  }

 private:
  const EdgeSet* h_;
};

/// H_center: the sub-graph H plus every G-edge incident to `center`.
/// Enumeration stays symmetric: neighbors(center) returns all G-neighbors,
/// and for v in N_G(center), neighbors(v) additionally yields center.
class AugmentedView {
 public:
  AugmentedView(const EdgeSet& h, NodeId center) noexcept
      : h_(&h), g_(&h.graph()), center_(center) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return g_->num_nodes(); }
  [[nodiscard]] NodeId center() const noexcept { return center_; }

  template <typename Fn>
  void for_each_neighbor(NodeId u, Fn&& fn) const {
    if (u == center_) {
      // All of center's G-edges are available, including those not in H.
      for (const NodeId v : g_->neighbors(u)) fn(v);
      return;
    }
    bool center_seen = false;
    h_->for_each_neighbor(u, [&](NodeId v) {
      if (v == center_) center_seen = true;
      fn(v);
    });
    if (!center_seen && g_->has_edge(u, center_)) fn(center_);
  }

 private:
  const EdgeSet* h_;
  const Graph* g_;
  NodeId center_;
};

}  // namespace remspan
