// Connectivity primitives: connected components and pairwise vertex
// connectivity (number of internally node-disjoint paths). Vertex
// connectivity is implemented through the same node-split flow network as
// the k-connecting distance oracle (flow.hpp).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/views.hpp"
#include "util/prelude.hpp"

namespace remspan {

struct Components {
  /// component[v] = component index in [0, count).
  std::vector<NodeId> component;
  NodeId count = 0;

  /// Nodes of the largest component, sorted.
  [[nodiscard]] std::vector<NodeId> largest() const;
};

/// Connected components over the full graph.
[[nodiscard]] Components connected_components(const Graph& g);

/// Connected components restricted to an edge subset.
[[nodiscard]] Components connected_components(const EdgeSet& h);

/// Whether the graph is connected (trivially true for n <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// Restriction of g to the given nodes, with node ids remapped to
/// 0..keep.size()-1 (keep must be sorted, unique). Returns the graph and the
/// old-id of every new node. Used to run experiments on the largest
/// component of random geometric graphs.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> original_id;
};
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& keep);

/// Largest connected component of g with node ids remapped (g itself when
/// already connected). The standard workload normalization: random geometric
/// graphs are usually connected at the densities the paper uses, but
/// stragglers would distort per-node averages. The geometry-preserving
/// overload lives in geom/ball_graph.hpp.
[[nodiscard]] Graph largest_component(const Graph& g);

/// Maximum number of internally node-disjoint s-t paths, capped at `cap`
/// (cap = 0 means uncapped). For adjacent s,t the edge st itself counts as
/// one path, matching the paper's path-counting convention.
[[nodiscard]] Dist vertex_connectivity(const Graph& g, NodeId s, NodeId t, Dist cap = 0);

}  // namespace remspan
