// All-pairs shortest-path distances via parallel per-source BFS. The stretch
// oracles need d_G for every pair and d_H for every pair; at oracle scale
// (n up to a few thousand) a flat n*n matrix of 32-bit hop counts is the
// right trade-off.
#pragma once

#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/views.hpp"
#include "util/prelude.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(NodeId n) : n_(n), data_(static_cast<std::size_t>(n) * n, kUnreachable) {}

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

  [[nodiscard]] Dist operator()(NodeId u, NodeId v) const noexcept {
    return data_[static_cast<std::size_t>(u) * n_ + v];
  }
  Dist& operator()(NodeId u, NodeId v) noexcept {
    return data_[static_cast<std::size_t>(u) * n_ + v];
  }

  [[nodiscard]] std::span<const Dist> row(NodeId u) const noexcept {
    return {data_.data() + static_cast<std::size_t>(u) * n_, n_};
  }

 private:
  NodeId n_ = 0;
  std::vector<Dist> data_;
};

/// Computes all-pairs distances over any view, running the per-source BFS
/// sweeps on the global thread pool (one scratch BFS per worker).
template <NeighborView View>
[[nodiscard]] DistanceMatrix all_pairs_distances(const View& view) {
  const NodeId n = view.num_nodes();
  DistanceMatrix dm(n);
  if (n == 0) return dm;
  auto& pool = ThreadPool::global();
  std::vector<BoundedBfs> scratch;
  scratch.reserve(pool.concurrency());
  for (std::size_t i = 0; i < pool.concurrency(); ++i) scratch.emplace_back(n);
  pool.parallel_for_workers(0, n, [&](std::size_t src, std::size_t worker) {
    BoundedBfs& bfs = scratch[worker];
    bfs.run(view, static_cast<NodeId>(src));
    for (NodeId v = 0; v < n; ++v) dm(static_cast<NodeId>(src), v) = bfs.dist(v);
  });
  return dm;
}

/// Maximum finite distance in a row (0 when the node reaches nothing).
[[nodiscard]] Dist eccentricity(std::span<const Dist> row);

/// Maximum finite eccentricity over all nodes (diameter of the largest
/// component the matrix covers).
[[nodiscard]] Dist diameter(const DistanceMatrix& dm);

}  // namespace remspan
