// RootedTree: the in-memory form of the paper's dominating trees. A tree
// sub-graph of G rooted at u, grown by attaching BFS-parent chains. Tracks
// depth and the depth-1 branch of every member, which is what the
// k-connecting dominating-tree conditions are expressed in (disjoint tree
// paths from the root share only the root iff they live in distinct
// branches).
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

class RootedTree {
 public:
  explicit RootedTree(NodeId root) : root_(root) {
    nodes_.push_back(root);
    info_.emplace(root, Info{kInvalidNode, 0, kInvalidNode, kInvalidEdge});
  }

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] bool contains(NodeId v) const { return info_.contains(v); }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return nodes_.size() - 1; }

  /// Depth of v in the tree (kUnreachable when absent). d_T(root, v) == depth.
  [[nodiscard]] Dist depth(NodeId v) const {
    const auto it = info_.find(v);
    return it == info_.end() ? kUnreachable : it->second.depth;
  }

  [[nodiscard]] NodeId parent(NodeId v) const {
    const auto it = info_.find(v);
    return it == info_.end() ? kInvalidNode : it->second.parent;
  }

  /// Graph edge id of {parent(v), v} as recorded at add_child time
  /// (kInvalidEdge for the root, absent nodes, and graph-less trees). Lets
  /// union_of_trees insert tree edges into an EdgeSet with no adjacency
  /// search.
  [[nodiscard]] EdgeId parent_edge(NodeId v) const {
    const auto it = info_.find(v);
    return it == info_.end() ? kInvalidEdge : it->second.parent_edge;
  }

  /// The child of the root on the path root -> v; kInvalidNode for the root
  /// itself or absent nodes. Two members have internally disjoint root paths
  /// iff their branches differ.
  [[nodiscard]] NodeId branch(NodeId v) const {
    const auto it = info_.find(v);
    return it == info_.end() ? kInvalidNode : it->second.branch;
  }

  /// Attaches v as a child of p (p must already be in the tree). If v is
  /// already present it must have the same parent; conflicting attachments
  /// indicate an algorithmic bug and trip a check. `edge` is the id of
  /// {p, v} in the underlying Graph when the caller knows it (the BFS that
  /// discovered v records it); kInvalidEdge for trees built without a graph.
  void add_child(NodeId p, NodeId v, EdgeId edge = kInvalidEdge) {
    const auto pit = info_.find(p);
    REMSPAN_CHECK(pit != info_.end());
    const auto vit = info_.find(v);
    if (vit != info_.end()) {
      REMSPAN_CHECK(vit->second.parent == p);
      return;
    }
    Info info;
    info.parent = p;
    info.depth = pit->second.depth + 1;
    info.branch = (p == root_) ? v : pit->second.branch;
    info.parent_edge = edge;
    info_.emplace(v, info);
    nodes_.push_back(v);
  }

  /// Members in insertion order (root first).
  [[nodiscard]] const std::vector<NodeId>& nodes() const noexcept { return nodes_; }

  /// Tree edges as canonical graph edges.
  [[nodiscard]] std::vector<Edge> edges() const {
    std::vector<Edge> out;
    out.reserve(num_edges());
    for (const NodeId v : nodes_) {
      if (v == root_) continue;
      out.push_back(make_edge(v, info_.at(v).parent));
    }
    return out;
  }

 private:
  struct Info {
    NodeId parent;
    Dist depth;
    NodeId branch;
    EdgeId parent_edge;
  };

  NodeId root_;
  std::vector<NodeId> nodes_;
  std::unordered_map<NodeId, Info> info_;
};

}  // namespace remspan
