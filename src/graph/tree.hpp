// RootedTree: the in-memory form of the paper's dominating trees. A tree
// sub-graph of G rooted at u, grown by attaching BFS-parent chains. Tracks
// depth and the depth-1 branch of every member, which is what the
// k-connecting dominating-tree conditions are expressed in (disjoint tree
// paths from the root share only the root iff they live in distinct
// branches).
//
// Membership lives in an insert-only open-addressing table rather than
// std::unordered_map: a build constructs one tree per root (10^7 of them at
// scale), and the node-per-allocation map made tree bookkeeping a visible
// slice of every engine's per-root constant. The flat table costs one
// allocation per tree (amortized) and a couple of probes per lookup.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

class RootedTree {
 public:
  explicit RootedTree(NodeId root)
      : root_(root), slots_(kInitialSlots, Slot{kInvalidNode, Info{}}) {
    nodes_.reserve(kInitialSlots / 2);
    nodes_.push_back(root);
    insert(root, Info{kInvalidNode, 0, kInvalidNode, kInvalidEdge});
  }

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] bool contains(NodeId v) const { return find(v) != nullptr; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return nodes_.size() - 1; }

  /// Depth of v in the tree (kUnreachable when absent). d_T(root, v) == depth.
  [[nodiscard]] Dist depth(NodeId v) const {
    const Info* info = find(v);
    return info == nullptr ? kUnreachable : info->depth;
  }

  [[nodiscard]] NodeId parent(NodeId v) const {
    const Info* info = find(v);
    return info == nullptr ? kInvalidNode : info->parent;
  }

  /// Graph edge id of {parent(v), v} as recorded at add_child time
  /// (kInvalidEdge for the root, absent nodes, and graph-less trees). Lets
  /// union_of_trees insert tree edges into an EdgeSet with no adjacency
  /// search.
  [[nodiscard]] EdgeId parent_edge(NodeId v) const {
    const Info* info = find(v);
    return info == nullptr ? kInvalidEdge : info->parent_edge;
  }

  /// The child of the root on the path root -> v; kInvalidNode for the root
  /// itself or absent nodes. Two members have internally disjoint root paths
  /// iff their branches differ.
  [[nodiscard]] NodeId branch(NodeId v) const {
    const Info* info = find(v);
    return info == nullptr ? kInvalidNode : info->branch;
  }

  /// Attaches v as a child of p (p must already be in the tree). If v is
  /// already present it must have the same parent; conflicting attachments
  /// indicate an algorithmic bug and trip a check. `edge` is the id of
  /// {p, v} in the underlying Graph when the caller knows it (the BFS that
  /// discovered v records it); kInvalidEdge for trees built without a graph.
  void add_child(NodeId p, NodeId v, EdgeId edge = kInvalidEdge) {
    const Info* pinfo = find(p);
    REMSPAN_CHECK(pinfo != nullptr);
    const Info* vinfo = find(v);
    if (vinfo != nullptr) {
      REMSPAN_CHECK(vinfo->parent == p);
      return;
    }
    Info info;
    info.parent = p;
    info.depth = pinfo->depth + 1;
    info.branch = (p == root_) ? v : pinfo->branch;
    info.parent_edge = edge;
    insert(v, info);  // copies of pinfo's fields taken above: insert may rehash
    nodes_.push_back(v);
  }

  /// Members in insertion order (root first).
  [[nodiscard]] const std::vector<NodeId>& nodes() const noexcept { return nodes_; }

  /// Tree edges as canonical graph edges.
  [[nodiscard]] std::vector<Edge> edges() const {
    std::vector<Edge> out;
    out.reserve(num_edges());
    for (const NodeId v : nodes_) {
      if (v == root_) continue;
      out.push_back(make_edge(v, find(v)->parent));
    }
    return out;
  }

 private:
  struct Info {
    NodeId parent;
    Dist depth;
    NodeId branch;
    EdgeId parent_edge;
  };
  /// key == kInvalidNode marks an empty slot; graph node ids are strictly
  /// below the sentinel (check_graph_limits), so no member can collide.
  struct Slot {
    NodeId key;
    Info info;
  };

  static constexpr std::size_t kInitialSlots = 16;  // power of two

  [[nodiscard]] static std::size_t hash(NodeId v) noexcept {
    std::uint32_t h = v * UINT32_C(0x9E3779B9);  // Fibonacci mixing
    h ^= h >> 16;
    return h;
  }

  [[nodiscard]] const Info* find(NodeId v) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(v) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == v) return &s.info;
      if (s.key == kInvalidNode) return nullptr;
    }
  }

  /// Inserts a key known to be absent, growing first when the table would
  /// pass half load (keeps probe chains a couple of slots long).
  void insert(NodeId v, const Info& info) {
    if ((entries_ + 1) * 2 > slots_.size()) {
      std::vector<Slot> old(slots_.size() * 2, Slot{kInvalidNode, Info{}});
      old.swap(slots_);
      const std::size_t mask = slots_.size() - 1;
      for (const Slot& s : old) {
        if (s.key == kInvalidNode) continue;
        std::size_t i = hash(s.key) & mask;
        while (slots_[i].key != kInvalidNode) i = (i + 1) & mask;
        slots_[i] = s;
      }
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(v) & mask;
    while (slots_[i].key != kInvalidNode) i = (i + 1) & mask;
    slots_[i] = Slot{v, info};
    ++entries_;
  }

  NodeId root_;
  std::vector<NodeId> nodes_;
  std::vector<Slot> slots_;
  std::size_t entries_ = 0;
};

}  // namespace remspan
