// EdgeSet: a subset of a Graph's edges, the representation of every spanner
// and remote-spanner H computed by this library. Backed by a bitset over
// edge ids so that union-of-dominating-trees and "neighbors of u inside H"
// are both cheap.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"
#include "util/prelude.hpp"

namespace remspan {

class EdgeSet {
 public:
  /// Empty subset (or the full edge set when all == true) of g. The Graph
  /// must outlive the EdgeSet.
  explicit EdgeSet(const Graph& g, bool all = false)
      : graph_(&g), bits_(g.num_edges(), all) {}

  /// Adopts an already-built bitset over g's edge ids (one bit per edge).
  /// This is how the parallel spanner union turns its shared AtomicBitset
  /// snapshot into an EdgeSet without re-inserting every edge.
  EdgeSet(const Graph& g, DynamicBitset bits) : graph_(&g), bits_(std::move(bits)) {
    REMSPAN_CHECK(bits_.size() == g.num_edges());
  }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  void insert(EdgeId id) { bits_.set(id); }

  /// Removes an edge by id; the id must be within the underlying graph's
  /// edge range (same guard discipline as the adopting constructor).
  void remove(EdgeId id) {
    REMSPAN_CHECK(id < bits_.size());
    bits_.reset(id);
  }

  /// Synonym kept for symmetry with insert(EdgeId).
  void erase(EdgeId id) { remove(id); }

  /// Removes a whole batch of edge ids (e.g. one retired dominating tree);
  /// every id is range-checked before any bit is touched.
  void remove_batch(std::span<const EdgeId> ids) {
    for (const EdgeId id : ids) REMSPAN_CHECK(id < bits_.size());
    for (const EdgeId id : ids) bits_.reset(id);
  }

  /// Inserts edge {a,b}; the edge must exist in the underlying graph.
  void insert(NodeId a, NodeId b) {
    const EdgeId id = graph_->find_edge(a, b);
    REMSPAN_CHECK(id != kInvalidEdge);
    bits_.set(id);
  }

  [[nodiscard]] bool contains(EdgeId id) const noexcept { return bits_.test(id); }
  [[nodiscard]] bool contains(NodeId a, NodeId b) const noexcept {
    const EdgeId id = graph_->find_edge(a, b);
    return id != kInvalidEdge && bits_.test(id);
  }

  [[nodiscard]] std::size_t size() const noexcept { return bits_.count(); }

  EdgeSet& operator|=(const EdgeSet& other) {
    REMSPAN_CHECK(graph_ == other.graph_);
    bits_ |= other.bits_;
    return *this;
  }

  [[nodiscard]] bool operator==(const EdgeSet& other) const noexcept {
    return graph_ == other.graph_ && bits_ == other.bits_;
  }

  /// Degree of u counting only selected edges. A count, not a distance:
  /// returned as std::size_t so dense graphs cannot narrow it.
  [[nodiscard]] std::size_t degree_in(NodeId u) const {
    std::size_t d = 0;
    for (const EdgeId id : graph_->incident_edges(u)) {
      if (bits_.test(id)) ++d;
    }
    return d;
  }

  /// Calls fn(v) for every neighbor v of u connected by a selected edge.
  template <typename Fn>
  void for_each_neighbor(NodeId u, Fn&& fn) const {
    const auto nbrs = graph_->neighbors(u);
    const auto ids = graph_->incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (bits_.test(ids[i])) fn(nbrs[i]);
    }
  }

  /// Materializes the selected edges in canonical order.
  [[nodiscard]] std::vector<Edge> edge_list() const {
    std::vector<Edge> out;
    out.reserve(size());
    bits_.for_each_set([&](std::size_t id) { out.push_back(graph_->edge(static_cast<EdgeId>(id))); });
    return out;
  }

  /// The raw bitset (used by tests for exact distributed-vs-central compares).
  [[nodiscard]] const DynamicBitset& bits() const noexcept { return bits_; }

 private:
  const Graph* graph_;
  DynamicBitset bits_;
};

}  // namespace remspan
