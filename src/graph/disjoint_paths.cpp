#include "graph/disjoint_paths.hpp"

#include <unordered_map>
#include <vector>

namespace remspan::detail {

std::vector<std::vector<NodeId>> decompose_paths(const MinCostFlow& flow, NodeId s, NodeId t,
                                                 NodeId num_nodes) {
  std::vector<std::vector<NodeId>> paths;
  // Unconsumed flow per forward arc id (arcs appear in the outgoing list of
  // their tail; forward arcs are the ones created with positive capacity).
  std::unordered_map<std::size_t, std::int32_t> leftover;
  for (std::size_t v = 0; v < flow.num_vertices(); ++v) {
    for (const std::size_t arc_id : flow.outgoing(v)) {
      if (flow.initial_capacity(arc_id) > 0) {
        const std::int32_t f = flow.flow_on(arc_id);
        if (f > 0) leftover[arc_id] = f;
      }
    }
  }

  const std::size_t source = 2 * static_cast<std::size_t>(s) + 1;
  const std::size_t sink = 2 * static_cast<std::size_t>(t);
  while (true) {
    // Find an unconsumed arc out of the source.
    std::size_t current = source;
    std::vector<NodeId> path;
    path.push_back(s);
    bool advanced = false;
    while (current != sink) {
      bool moved = false;
      for (const std::size_t arc_id : flow.outgoing(current)) {
        if (flow.initial_capacity(arc_id) <= 0) continue;
        auto it = leftover.find(arc_id);
        if (it == leftover.end() || it->second <= 0) continue;
        --it->second;
        current = flow.arc(arc_id).to;
        // Record the node when we arrive at a v_in vertex (even index).
        if (current % 2 == 0) {
          const auto node = static_cast<NodeId>(current / 2);
          REMSPAN_CHECK(node < num_nodes);
          path.push_back(node);
        }
        moved = true;
        advanced = true;
        break;
      }
      if (!moved) break;
    }
    if (!advanced) break;
    REMSPAN_CHECK(current == sink);
    REMSPAN_CHECK(path.back() == t);
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace remspan::detail
