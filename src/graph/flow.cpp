#include "graph/flow.hpp"

#include <limits>
#include <queue>

namespace remspan {

namespace {
constexpr std::int64_t kInfCost = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(std::size_t num_vertices)
    : head_(num_vertices),
      potential_(num_vertices, 0),
      dist_(num_vertices, kInfCost),
      prev_arc_(num_vertices, 0),
      visited_(num_vertices, false) {}

std::size_t MinCostFlow::add_arc(std::size_t from, std::size_t to, std::int32_t capacity,
                                 std::int32_t cost) {
  REMSPAN_CHECK(from < head_.size() && to < head_.size());
  REMSPAN_CHECK(capacity >= 0 && cost >= 0);
  const std::size_t fwd = arcs_.size();
  arcs_.push_back(Arc{to, fwd + 1, capacity, cost});
  arcs_.push_back(Arc{from, fwd, 0, -cost});
  head_[from].push_back(fwd);
  head_[to].push_back(fwd + 1);
  initial_capacity_.push_back(capacity);
  initial_capacity_.push_back(0);
  return fwd;
}

bool MinCostFlow::dijkstra(std::size_t s, std::size_t t) {
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  std::fill(visited_.begin(), visited_.end(), false);
  using Item = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist_[s] = 0;
  heap.emplace(0, s);
  // No early exit at t: the potential update below folds dist_ into the
  // vertex potentials, which is only sound for *finalized* distances. An
  // early break would leave inflated tentative values in dist_ and break
  // the non-negative reduced-cost invariant on later augmentations.
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (visited_[u]) continue;
    visited_[u] = true;
    for (const std::size_t arc_id : head_[u]) {
      const Arc& a = arcs_[arc_id];
      if (a.capacity <= 0 || visited_[a.to]) continue;
      // Reduced cost is non-negative by the potential invariant.
      const std::int64_t reduced = a.cost + potential_[u] - potential_[a.to];
      const std::int64_t nd = d + reduced;
      if (nd < dist_[a.to]) {
        dist_[a.to] = nd;
        prev_arc_[a.to] = arc_id;
        heap.emplace(nd, a.to);
      }
    }
  }
  return dist_[t] < kInfCost;
}

std::vector<std::int64_t> MinCostFlow::solve(std::size_t s, std::size_t t,
                                             std::int64_t max_units) {
  REMSPAN_CHECK(s != t);
  std::vector<std::int64_t> unit_costs;
  std::int64_t pushed = 0;
  while (pushed < max_units) {
    if (!dijkstra(s, t)) break;
    // Fold the found distances into the potentials so reduced costs stay
    // non-negative for the next round even over residual (negative) arcs.
    for (std::size_t v = 0; v < head_.size(); ++v) {
      if (dist_[v] < kInfCost) potential_[v] += dist_[v];
    }
    // With potential_[s] pinned at 0, potential_[t] is the true cost of the
    // shortest augmenting path this round.
    const std::int64_t path_cost = potential_[t] - potential_[s];

    // Find the bottleneck (1 for the unit-capacity networks we build, but
    // keep the code general), then push.
    std::int64_t bottleneck = max_units - pushed;
    for (std::size_t v = t; v != s;) {
      const Arc& a = arcs_[prev_arc_[v]];
      bottleneck = std::min<std::int64_t>(bottleneck, a.capacity);
      v = arcs_[a.rev].to;
    }
    for (std::size_t v = t; v != s;) {
      Arc& a = arcs_[prev_arc_[v]];
      a.capacity -= static_cast<std::int32_t>(bottleneck);
      arcs_[a.rev].capacity += static_cast<std::int32_t>(bottleneck);
      v = arcs_[a.rev].to;
    }
    for (std::int64_t unit = 0; unit < bottleneck; ++unit) {
      unit_costs.push_back(path_cost);
    }
    pushed += bottleneck;
  }
  return unit_costs;
}

std::int32_t MinCostFlow::flow_on(std::size_t arc_id) const {
  return initial_capacity_[arc_id] - arcs_[arc_id].capacity;
}

}  // namespace remspan
