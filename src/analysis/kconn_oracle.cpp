#include "analysis/kconn_oracle.hpp"

#include <mutex>

#include "analysis/edge_conn_oracle.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/edge_disjoint_paths.hpp"
#include "graph/views.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

namespace {

enum class PathMode { kNodeDisjoint, kEdgeDisjoint };

template <PathMode Mode>
DisjointPathsResult solve(const Graph& g, NodeId s, NodeId t, Dist k) {
  if constexpr (Mode == PathMode::kNodeDisjoint) {
    return min_disjoint_paths(GraphView(g), s, t, k);
  } else {
    return min_edge_disjoint_paths(GraphView(g), s, t, k);
  }
}

template <PathMode Mode>
DisjointPathsResult solve_augmented(const EdgeSet& h, NodeId s, NodeId t, Dist k) {
  if constexpr (Mode == PathMode::kNodeDisjoint) {
    return min_disjoint_paths(AugmentedView(h, s), s, t, k);
  } else {
    return min_edge_disjoint_paths(AugmentedView(h, s), s, t, k);
  }
}

template <PathMode Mode>
KConnReport check_impl(const Graph& g, const EdgeSet& h, Dist k, const Stretch& stretch,
                       std::size_t max_pairs, std::uint64_t seed) {
  REMSPAN_CHECK(k >= 1);
  const NodeId n = g.num_nodes();

  // Candidate ordered pairs: nonadjacent, distinct (the remote-spanner
  // definitions only constrain nonadjacent pairs).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t || g.has_edge(s, t)) continue;
      pairs.emplace_back(s, t);
    }
  }
  if (max_pairs != 0 && pairs.size() > max_pairs) {
    Rng rng(seed);
    const auto picks = rng.sample_without_replacement(pairs.size(), max_pairs);
    std::vector<std::pair<NodeId, NodeId>> sampled;
    sampled.reserve(picks.size());
    for (const auto idx : picks) sampled.push_back(pairs[idx]);
    pairs = std::move(sampled);
  }

  KConnReport report;
  std::mutex merge_mutex;
  parallel_for(0, pairs.size(), [&](std::size_t i) {
    const auto [s, t] = pairs[i];
    const auto in_g = solve<Mode>(g, s, t, k);
    if (in_g.connectivity() == 0) return;  // disconnected pair: unconstrained
    const auto in_hs = solve_augmented<Mode>(h, s, t, k);

    KConnReport local;
    local.pairs_checked = 1;
    for (Dist kp = 1; kp <= in_g.connectivity(); ++kp) {
      const std::uint64_t dg = in_g.d(kp);
      const std::uint64_t dh = in_hs.d(kp);
      const double bound = stretch.alpha * static_cast<double>(dg) +
                           static_cast<double>(kp) * stretch.beta;
      if (dh == DisjointPathsResult::kNoPaths) {
        ++local.connectivity_losses;
        ++local.violations;
        local.satisfied = false;
        local.max_excess = std::numeric_limits<double>::infinity();
        local.worst_s = s;
        local.worst_t = t;
        local.worst_kprime = kp;
        continue;
      }
      const double excess = static_cast<double>(dh) - bound;
      const double ratio = static_cast<double>(dh) / static_cast<double>(dg);
      if (ratio > local.max_ratio) local.max_ratio = ratio;
      if (excess > local.max_excess) {
        local.max_excess = excess;
        local.worst_s = s;
        local.worst_t = t;
        local.worst_kprime = kp;
      }
      if (excess > 1e-9) {
        ++local.violations;
        local.satisfied = false;
      }
    }

    const std::lock_guard lock(merge_mutex);
    report.pairs_checked += local.pairs_checked;
    report.violations += local.violations;
    report.connectivity_losses += local.connectivity_losses;
    report.satisfied = report.satisfied && local.satisfied;
    if (local.max_ratio > report.max_ratio) report.max_ratio = local.max_ratio;
    if (local.max_excess > report.max_excess) {
      report.max_excess = local.max_excess;
      report.worst_s = local.worst_s;
      report.worst_t = local.worst_t;
      report.worst_kprime = local.worst_kprime;
    }
  });
  return report;
}

}  // namespace

KConnReport check_k_connecting_stretch(const Graph& g, const EdgeSet& h, Dist k,
                                       const Stretch& stretch, std::size_t max_pairs,
                                       std::uint64_t seed) {
  return check_impl<PathMode::kNodeDisjoint>(g, h, k, stretch, max_pairs, seed);
}

KConnReport check_k_edge_connecting_stretch(const Graph& g, const EdgeSet& h, Dist k,
                                            const Stretch& stretch, std::size_t max_pairs,
                                            std::uint64_t seed) {
  return check_impl<PathMode::kEdgeDisjoint>(g, h, k, stretch, max_pairs, seed);
}

}  // namespace remspan
