// Descriptive statistics of a spanner relative to its input graph, shared
// by the bench binaries.
#pragma once

#include <cstddef>
#include <string>

#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

struct SpannerStats {
  std::size_t input_edges = 0;
  std::size_t spanner_edges = 0;
  double edge_fraction = 0.0;    // spanner / input
  double avg_degree = 0.0;         // in the spanner
  std::size_t max_degree = 0;      // in the spanner
  double edges_per_node = 0.0;   // spanner_edges / n, the Theorem 1/3 figure
};

[[nodiscard]] SpannerStats compute_spanner_stats(const EdgeSet& h);

/// "1234 (12.3%)" style rendering used in bench tables.
[[nodiscard]] std::string format_edges_with_fraction(const SpannerStats& stats);

}  // namespace remspan
