// Verification of the EDGE-connectivity extension conjectured in the
// paper's concluding remarks: H is k-EDGE-connecting (alpha,beta) if for
// all nonadjacent s,t and k' <= k,
//     ed^{k'}_{H_s}(s,t) <= alpha * ed^{k'}_G(s,t) + k' * beta,
// with ed^k the minimum total length of k edge-disjoint paths.
#pragma once

#include "analysis/kconn_oracle.hpp"

namespace remspan {

/// Same sampling/report contract as check_k_connecting_stretch, but for
/// edge-disjoint paths.
[[nodiscard]] KConnReport check_k_edge_connecting_stretch(const Graph& g, const EdgeSet& h,
                                                          Dist k, const Stretch& stretch,
                                                          std::size_t max_pairs = 0,
                                                          std::uint64_t seed = 1);

}  // namespace remspan
