#include "analysis/stretch_oracle.hpp"

#include <mutex>

#include "graph/views.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

DistanceMatrix remote_distances(const Graph& g, const EdgeSet& h) {
  const NodeId n = g.num_nodes();
  const DistanceMatrix dh = all_pairs_distances(SubgraphView(h));
  DistanceMatrix dm(n);
  parallel_for(0, n, [&](std::size_t ui) {
    const auto u = static_cast<NodeId>(ui);
    dm(u, u) = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      Dist best = kUnreachable;
      for (const NodeId x : g.neighbors(u)) {
        const Dist via = dist_add(1, dh(x, v));
        if (via < best) best = via;
      }
      dm(u, v) = best;
    }
  });
  return dm;
}

namespace {

template <typename RemoteDist>
StretchReport check_stretch_impl(const Graph& g, const Stretch& stretch,
                                 const DistanceMatrix& dg, const RemoteDist& dist_in_h,
                                 bool skip_adjacent) {
  const NodeId n = g.num_nodes();
  StretchReport report;
  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const Dist d = dg(u, v);
      if (d == kUnreachable) continue;  // property only constrains connected pairs
      // The remote-spanner definition only constrains nonadjacent pairs
      // (adjacent ones are trivially preserved inside H_u); the classical
      // spanner property constrains every pair.
      if (skip_adjacent && d == 1) continue;
      ++report.pairs_checked;
      const Dist dh = dist_in_h(u, v);
      const double bound = stretch.bound(d);
      if (dh == kUnreachable) {
        ++report.violations;
        report.satisfied = false;
        report.max_excess = std::numeric_limits<double>::infinity();
        report.worst_u = u;
        report.worst_v = v;
        report.worst_dg = d;
        report.worst_dhu = kUnreachable;
        continue;
      }
      const double ratio = static_cast<double>(dh) / static_cast<double>(d);
      ratio_sum += ratio;
      ++ratio_count;
      if (ratio > report.max_ratio) report.max_ratio = ratio;
      const double excess = static_cast<double>(dh) - bound;
      if (excess > report.max_excess) {
        report.max_excess = excess;
        report.worst_u = u;
        report.worst_v = v;
        report.worst_dg = d;
        report.worst_dhu = dh;
      }
      if (excess > 1e-9) {
        ++report.violations;
        report.satisfied = false;
      }
    }
  }
  if (ratio_count > 0) report.avg_ratio = ratio_sum / static_cast<double>(ratio_count);
  return report;
}

}  // namespace

StretchReport check_remote_stretch(const Graph& g, const EdgeSet& h, const Stretch& stretch) {
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  const DistanceMatrix dhu = remote_distances(g, h);
  return check_stretch_impl(
      g, stretch, dg, [&dhu](NodeId u, NodeId v) { return dhu(u, v); },
      /*skip_adjacent=*/true);
}

StretchReport check_spanner_stretch(const Graph& g, const EdgeSet& h, const Stretch& stretch) {
  const DistanceMatrix dg = all_pairs_distances(GraphView(g));
  const DistanceMatrix dh = all_pairs_distances(SubgraphView(h));
  return check_stretch_impl(
      g, stretch, dg, [&dh](NodeId u, NodeId v) { return dh(u, v); },
      /*skip_adjacent=*/false);
}

}  // namespace remspan
