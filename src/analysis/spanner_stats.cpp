#include "analysis/spanner_stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace remspan {

SpannerStats compute_spanner_stats(const EdgeSet& h) {
  const Graph& g = h.graph();
  SpannerStats stats;
  stats.input_edges = g.num_edges();
  stats.spanner_edges = h.size();
  if (stats.input_edges > 0) {
    stats.edge_fraction =
        static_cast<double>(stats.spanner_edges) / static_cast<double>(stats.input_edges);
  }
  const NodeId n = g.num_nodes();
  if (n > 0) {
    for (NodeId v = 0; v < n; ++v) {
      stats.max_degree = std::max(stats.max_degree, h.degree_in(v));
    }
    stats.avg_degree = 2.0 * static_cast<double>(stats.spanner_edges) / static_cast<double>(n);
    stats.edges_per_node = static_cast<double>(stats.spanner_edges) / static_cast<double>(n);
  }
  return stats;
}

std::string format_edges_with_fraction(const SpannerStats& stats) {
  std::ostringstream out;
  out << stats.spanner_edges << " (" << format_double(100.0 * stats.edge_fraction, 1) << "%)";
  return out.str();
}

}  // namespace remspan
