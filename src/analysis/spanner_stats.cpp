#include "analysis/spanner_stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace remspan {

SpannerStats compute_spanner_stats(const EdgeSet& h) {
  const Graph& g = h.graph();
  SpannerStats stats;
  stats.input_edges = g.num_edges();
  stats.spanner_edges = h.size();
  if (stats.input_edges > 0) {
    stats.edge_fraction =
        static_cast<double>(stats.spanner_edges) / static_cast<double>(stats.input_edges);
  }
  const NodeId n = g.num_nodes();
  if (n > 0) {
    // Degrees via word-level iteration over the selected edges: O(n + |H|)
    // instead of probing every adjacency slot's bit (O(m) probes).
    std::vector<std::size_t> degree(n, 0);
    h.bits().for_each_set([&](std::size_t id) {
      const Edge& e = g.edge(static_cast<EdgeId>(id));
      ++degree[e.u];
      ++degree[e.v];
    });
    stats.max_degree = *std::max_element(degree.begin(), degree.end());
    stats.avg_degree = 2.0 * static_cast<double>(stats.spanner_edges) / static_cast<double>(n);
    stats.edges_per_node = static_cast<double>(stats.spanner_edges) / static_cast<double>(n);
  }
  return stats;
}

std::string format_edges_with_fraction(const SpannerStats& stats) {
  std::ostringstream out;
  out << stats.spanner_edges << " (" << format_double(100.0 * stats.edge_fraction, 1) << "%)";
  return out.str();
}

}  // namespace remspan
