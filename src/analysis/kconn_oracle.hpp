// Exact verification of the k-connecting remote-spanner property
// (Section 3): for all nonadjacent s,t and every k' <= k,
//     d^{k'}_{H_s}(s,t) <= alpha * d^{k'}_G(s,t) + k' * beta,
// and in particular s,t must stay k'-connected in H_s whenever they are
// k'-connected in G. Each pair costs two min-cost-flow runs (one on G, one
// on H_s), so the oracle checks either every nonadjacent pair or a seeded
// random sample.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan {

struct KConnReport {
  bool satisfied = true;
  std::size_t pairs_checked = 0;
  std::size_t violations = 0;
  /// Connectivity losses: pairs (s,t) and k' where G has k' disjoint paths
  /// but H_s does not.
  std::size_t connectivity_losses = 0;
  /// Worst d^{k'}_{H_s} - (alpha d^{k'}_G + k' beta) over checked tuples.
  double max_excess = 0.0;
  /// Worst multiplicative ratio d^{k'}_{H_s} / d^{k'}_G.
  double max_ratio = 1.0;
  NodeId worst_s = kInvalidNode;
  NodeId worst_t = kInvalidNode;
  Dist worst_kprime = 0;
};

/// Checks the property for every k' <= k on all nonadjacent connected pairs
/// (max_pairs == 0), or on a seeded sample of that many pairs. Pairs are
/// ordered: (s,t) and (t,s) are distinct checks (the definition is
/// asymmetric in s).
[[nodiscard]] KConnReport check_k_connecting_stretch(const Graph& g, const EdgeSet& h, Dist k,
                                                     const Stretch& stretch,
                                                     std::size_t max_pairs = 0,
                                                     std::uint64_t seed = 1);

}  // namespace remspan
