// Exact verification of the remote-spanner property.
//
// For every ordered pair (u, v): d_{H_u}(u,v) <= alpha * d_G(u,v) + beta,
// where H_u is H plus all of u's G-edges. Rather than running one BFS per
// augmented graph, the oracle uses the identity
//     d_{H_u}(u,v) = min_{x in N_G(u)} 1 + d_H(x, v)      (u != v)
// (a shortest H_u-path leaves u exactly once, through some G-neighbor x,
// and continues inside H; H-paths may freely revisit edges of H incident
// to u since those are in H). One parallel APSP over H serves all n
// augmentations.
#pragma once

#include <cstddef>

#include "core/params.hpp"
#include "graph/distances.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

/// d_{H_u}(u, v) for all ordered pairs (rows indexed by u). Diagonal is 0.
[[nodiscard]] DistanceMatrix remote_distances(const Graph& g, const EdgeSet& h);

struct StretchReport {
  bool satisfied = true;
  std::size_t pairs_checked = 0;
  std::size_t violations = 0;
  /// Worst multiplicative ratio d_{H_u}(u,v) / d_G(u,v) over nonadjacent
  /// connected pairs (1.0 when no such pair exists).
  double max_ratio = 1.0;
  double avg_ratio = 1.0;
  /// Worst additive excess d_{H_u}(u,v) - (alpha d_G(u,v) + beta); <= 0
  /// iff satisfied.
  double max_excess = 0.0;
  NodeId worst_u = kInvalidNode;
  NodeId worst_v = kInvalidNode;
  Dist worst_dg = 0;
  Dist worst_dhu = 0;
};

/// Checks the (alpha, beta) remote-spanner property exactly over all pairs.
/// Pairs disconnected in G are skipped; pairs connected in G but not in H_u
/// count as violations (a remote-spanner must preserve reachability).
[[nodiscard]] StretchReport check_remote_stretch(const Graph& g, const EdgeSet& h,
                                                 const Stretch& stretch);

/// Same check for a classical spanner (distances in H itself, no
/// augmentation); used to validate the baselines and the "(alpha,beta)-
/// spanner => (alpha, beta-alpha+1)-remote-spanner" related-work claim.
[[nodiscard]] StretchReport check_spanner_stretch(const Graph& g, const EdgeSet& h,
                                                  const Stretch& stretch);

}  // namespace remspan
