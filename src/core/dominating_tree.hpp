// The paper's four dominating-tree algorithms (Sections 2.2 and 3.3), one
// per-root builder each:
//
//   greedy(u, r, beta)  — Algorithm 1, DomTreeGdy_{r,beta}: for each shell
//       distance r' = 2..r, greedily set-covers the shell with balls of
//       candidates in the [r'-1, r'-1+beta] range. Within
//       (1+beta)(r+beta-1)(1+log Delta) of the optimal tree (Prop. 2).
//   mis(u, r)           — Algorithm 2, DomTreeMIS_{r,1}: grows a maximal
//       independent set of B(u,r)\B(u,1) by increasing distance; O(r^{p+1})
//       edges on doubling unit ball graphs (Prop. 3).
//   greedy_k(u, k)      — Algorithm 4, DomTreeGdy_{2,0,k}: greedy k-cover of
//       the distance-2 shell by neighbors of u; within 1+log Delta of
//       optimal (Prop. 6). Generalizes OLSR multipoint-relay selection.
//   mis_k(u, k)         — Algorithm 5, DomTreeMIS_{2,1,k}: k rounds of MIS
//       over the distance-2 shell, attaching each pick through fresh common
//       neighbors; O(k^2) edges on doubling UBGs (Prop. 7).
//
// All four attach nodes through BFS-parent chains of the same root BFS, so
// each result is a genuine tree with d_T(u,x) = d_G(u,x).
#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// Reusable per-thread builder: all scratch arrays are kept between calls
/// and reset in O(|ball|) so building trees for every root of a graph costs
/// the sum of local work, not n times global resets.
class DomTreeBuilder {
 public:
  explicit DomTreeBuilder(const Graph& g);

  /// Algorithm 1: (r, beta)-dominating tree for u. Requires r >= 2.
  [[nodiscard]] RootedTree greedy(NodeId u, Dist r, Dist beta);

  /// Algorithm 2: (r, 1)-dominating tree for u. Requires r >= 2.
  [[nodiscard]] RootedTree mis(NodeId u, Dist r);

  /// Algorithm 4: k-connecting (2, 0)-dominating tree for u (k >= 1). For
  /// k = 1 this is exactly an OLSR multipoint-relay set with its links.
  [[nodiscard]] RootedTree greedy_k(NodeId u, Dist k);

  /// Algorithm 5: k-connecting (2, 1)-dominating tree for u (k >= 1).
  [[nodiscard]] RootedTree mis_k(NodeId u, Dist k);

 private:
  /// Adds the BFS-parent chain from x up to the first node already in the
  /// tree. Requires x to be reached by the last bfs_ run from tree.root().
  void add_parent_chain(RootedTree& tree, NodeId x);

  /// Clears the per-node flags for every node the last BFS touched.
  void reset_flags();

  const Graph* g_;
  BoundedBfs bfs_;
  // in_s_: node still needs covering; cov_: generic per-node counter;
  // branches_: distinct tree branches adjacent to a shell node (mis_k).
  std::vector<std::uint8_t> in_s_;
  std::vector<std::uint8_t> in_x_;
  std::vector<Dist> cov_;
  std::vector<Dist> rem_;
  std::vector<std::vector<NodeId>> branches_;
};

// --- property checkers (used by tests and the approximation benches) -------

/// Exhaustively checks the (r,beta)-dominating-tree condition: every v with
/// 2 <= d_G(u,v) = r' <= r has a neighbor x in V(T) with
/// d_T(u,x) <= r' - 1 + beta.
[[nodiscard]] bool is_dominating_tree(const Graph& g, const RootedTree& tree, Dist r, Dist beta);

/// Checks the k-connecting (2,beta)-dominating-tree condition: every v at
/// distance 2 from the root either has all common neighbors attached as
/// root edges, or has k neighbors within tree depth 1+beta lying on k
/// distinct branches (pairwise internally disjoint root paths).
[[nodiscard]] bool is_k_connecting_dominating_tree(const Graph& g, const RootedTree& tree,
                                                   Dist k, Dist beta);

/// Every tree edge must be a G edge and depths must be consistent; trips a
/// check on structurally broken trees, returns true otherwise.
[[nodiscard]] bool tree_is_valid_subgraph(const Graph& g, const RootedTree& tree);

}  // namespace remspan
