// The paper's four dominating-tree algorithms (Sections 2.2 and 3.3), one
// per-root builder each:
//
//   greedy(u, r, beta)  — Algorithm 1, DomTreeGdy_{r,beta}: for each shell
//       distance r' = 2..r, greedily set-covers the shell with balls of
//       candidates in the [r'-1, r'-1+beta] range. Within
//       (1+beta)(r+beta-1)(1+log Delta) of the optimal tree (Prop. 2).
//   mis(u, r)           — Algorithm 2, DomTreeMIS_{r,1}: grows a maximal
//       independent set of B(u,r)\B(u,1) by increasing distance; O(r^{p+1})
//       edges on doubling unit ball graphs (Prop. 3).
//   greedy_k(u, k)      — Algorithm 4, DomTreeGdy_{2,0,k}: greedy k-cover of
//       the distance-2 shell by neighbors of u; within 1+log Delta of
//       optimal (Prop. 6). Generalizes OLSR multipoint-relay selection.
//   mis_k(u, k)         — Algorithm 5, DomTreeMIS_{2,1,k}: k rounds of MIS
//       over the distance-2 shell, attaching each pick through fresh common
//       neighbors; O(k^2) edges on doubling UBGs (Prop. 7).
//
// All four attach nodes through BFS-parent chains of the same root BFS, so
// each result is a genuine tree with d_T(u,x) = d_G(u,x).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// Reusable per-thread builder: all scratch arrays are kept between calls
/// and reset in O(|ball|) so building trees for every root of a graph costs
/// the sum of local work, not n times global resets.
///
/// The greedy set-cover picks (greedy / greedy_k) run off a lazy max-heap
/// of cover counts instead of rescanning every candidate per pick: cover
/// counts only decrease within a round, so a heap entry recorded at push
/// time is an upper bound on the live count — stale entries are popped,
/// re-validated against the live count, and the first entry that matches is
/// the true maximum (see pop_best_candidate). Ties break on smallest id
/// (encoded into the heap key), which keeps every pick — and therefore
/// every tree — bit-identical to the quadratic reference scan
/// (test_domtree_equivalence.cpp pins this down).
class DomTreeBuilder {
 public:
  explicit DomTreeBuilder(const Graph& g);

  /// Re-targets the builder at a new graph over the same node universe
  /// (num_nodes must match — all scratch arrays are sized by it). The
  /// incremental engine rebuilds dirty roots against every new snapshot
  /// with the same per-worker builders instead of reallocating the O(n)
  /// scratch each batch.
  void rebind(const Graph& g);

  /// Algorithm 1: (r, beta)-dominating tree for u. Requires r >= 2.
  [[nodiscard]] RootedTree greedy(NodeId u, Dist r, Dist beta);

  /// Algorithm 2: (r, 1)-dominating tree for u. Requires r >= 2.
  [[nodiscard]] RootedTree mis(NodeId u, Dist r);

  /// Algorithm 4: k-connecting (2, 0)-dominating tree for u (k >= 1). For
  /// k = 1 this is exactly an OLSR multipoint-relay set with its links.
  [[nodiscard]] RootedTree greedy_k(NodeId u, Dist k);

  /// Algorithm 5: k-connecting (2, 1)-dominating tree for u (k >= 1).
  [[nodiscard]] RootedTree mis_k(NodeId u, Dist k);

 private:
  /// Adds the BFS-parent chain from x up to the first node already in the
  /// tree. Requires x to be reached by the last bfs_ run from tree.root().
  void add_parent_chain(RootedTree& tree, NodeId x);

  /// Clears the per-node flags for every node the last BFS touched.
  void reset_flags();

  /// Adds the whole-build tallies (heap pops, lazy re-keys, cover-count
  /// recomputations) into the installed metrics sink and zeroes them. The
  /// tallies themselves are plain members bumped unconditionally — the
  /// sink branch happens once per tree build, not per heap operation.
  void publish_stats(const RootedTree& tree);

  /// Heap key for the lazy max-heap: higher cover first, then smaller id
  /// (ids are stored complemented so the default max-heap order does both).
  [[nodiscard]] static constexpr std::uint64_t heap_key(std::uint32_t cover,
                                                        NodeId id) noexcept {
    return (std::uint64_t{cover} << 32) | static_cast<std::uint32_t>(~id);
  }

  /// Pops the unpicked candidate with the maximum live cover count (smallest
  /// id on ties) off heap_. `unpicked` is the in_x_ value marking a
  /// still-pickable candidate; `live_cover(x)` recomputes x's current cover
  /// in O(deg x). Returns kInvalidNode when no candidate with a positive
  /// cover count remains (the greedy-stall condition).
  ///
  /// Lazy validation (Minoux's accelerated greedy): every entry's recorded
  /// count is an upper bound on the live count because covers only decrease
  /// within a round. An entry that surfaces stale is re-pushed at its live
  /// count; the first entry that validates is the true (max cover, min id)
  /// pick. Only candidates that reach the top are ever recomputed, so a
  /// pick costs O(pops · deg) instead of O(|X| · deg) — and an entry whose
  /// epoch shows S unchanged since its count was recorded validates with no
  /// recompute at all (callers bump s_epoch_ on every removal from S).
  template <typename CoverFn>
  [[nodiscard]] NodeId pop_best_candidate(std::uint8_t unpicked, CoverFn&& live_cover) {
    while (!heap_.empty()) {
      ++stat_heap_pops_;
      const HeapEntry entry = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      const auto recorded = static_cast<std::uint32_t>(entry.key >> 32);
      const auto x = static_cast<NodeId>(~entry.key);
      if (in_x_[x] != unpicked) continue;  // picked: every remaining entry is dead
      if (entry.epoch == s_epoch_) return x;  // S untouched since recording: exact
      ++stat_cover_touches_;
      const std::uint32_t live = live_cover(x);
      if (live == 0) continue;  // covers never increase: permanently useless
      if (live != recorded) {
        ++stat_heap_rekeys_;
        push_candidate(live, x);
        continue;
      }
      return x;
    }
    return kInvalidNode;
  }

  void push_candidate(std::uint32_t cover, NodeId x) {
    heap_.push_back(HeapEntry{heap_key(cover, x), s_epoch_});
    std::push_heap(heap_.begin(), heap_.end());
  }

  const Graph* g_;
  BoundedBfs bfs_;
  // in_s_: node still needs covering; cov_: generic per-node counter;
  // branches_: distinct tree branches adjacent to a shell node (mis_k).
  std::vector<std::uint8_t> in_s_;
  std::vector<std::uint8_t> in_x_;
  std::vector<Dist> cov_;
  std::vector<Dist> rem_;
  std::vector<std::vector<NodeId>> branches_;
  /// Lazy-heap entry: key orders by (cover, smallest id); epoch is the
  /// s_epoch_ value at which the cover was recorded (exact iff unchanged).
  struct HeapEntry {
    std::uint64_t key;
    std::uint32_t epoch;
    [[nodiscard]] bool operator<(const HeapEntry& o) const noexcept { return key < o.key; }
  };

  // nbr_u_: marks N(root) so mis_k's attach-point test is an O(1) flag
  // load instead of a per-neighbor adjacency search.
  std::vector<std::uint8_t> nbr_u_;
  // heap_: lazy max-heap over heap_key(cover, id);
  // shell_sorted_: per-shell id-order scratch (mis, mis_k).
  std::vector<HeapEntry> heap_;
  std::vector<NodeId> shell_sorted_;
  // Bumped once per batch of removals from the cover target set S; heap
  // entries recorded at the current epoch need no revalidation.
  std::uint32_t s_epoch_ = 0;
  // Whole-build observability tallies (see publish_stats).
  std::uint64_t stat_heap_pops_ = 0;
  std::uint64_t stat_heap_rekeys_ = 0;
  std::uint64_t stat_cover_touches_ = 0;
};

// --- property checkers (used by tests and the approximation benches) -------

/// Exhaustively checks the (r,beta)-dominating-tree condition: every v with
/// 2 <= d_G(u,v) = r' <= r has a neighbor x in V(T) with
/// d_T(u,x) <= r' - 1 + beta.
[[nodiscard]] bool is_dominating_tree(const Graph& g, const RootedTree& tree, Dist r, Dist beta);

/// Checks the k-connecting (2,beta)-dominating-tree condition: every v at
/// distance 2 from the root either has all common neighbors attached as
/// root edges, or has k neighbors within tree depth 1+beta lying on k
/// distinct branches (pairwise internally disjoint root paths).
[[nodiscard]] bool is_k_connecting_dominating_tree(const Graph& g, const RootedTree& tree,
                                                   Dist k, Dist beta);

/// Every tree edge must be a G edge and depths must be consistent; trips a
/// check on structurally broken trees, returns true otherwise.
[[nodiscard]] bool tree_is_valid_subgraph(const Graph& g, const RootedTree& tree);

}  // namespace remspan
