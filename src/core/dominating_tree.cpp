#include "core/dominating_tree.hpp"

#include <algorithm>
#include <unordered_set>

namespace remspan {

DomTreeBuilder::DomTreeBuilder(const Graph& g)
    : g_(&g),
      bfs_(g.num_nodes()),
      in_s_(g.num_nodes(), 0),
      in_x_(g.num_nodes(), 0),
      cov_(g.num_nodes(), 0),
      rem_(g.num_nodes(), 0),
      branches_(g.num_nodes()) {}

void DomTreeBuilder::add_parent_chain(RootedTree& tree, NodeId x) {
  // Collect the BFS ancestors of x that are not yet in the tree, then attach
  // them top-down. Because every chain comes from the same root BFS, the
  // union stays a tree and d_T(root, x) = d_G(root, x).
  NodeId chain[64];
  std::size_t len = 0;
  while (!tree.contains(x)) {
    REMSPAN_CHECK(len < 64);
    chain[len++] = x;
    x = bfs_.parent(x);
    REMSPAN_CHECK(x != kInvalidNode);
  }
  while (len > 0) {
    const NodeId child = chain[--len];
    tree.add_child(x, child, bfs_.parent_edge(child));
    x = child;
  }
}

void DomTreeBuilder::reset_flags() {
  for (const NodeId v : bfs_.order()) {
    in_s_[v] = 0;
    in_x_[v] = 0;
    cov_[v] = 0;
    rem_[v] = 0;
    branches_[v].clear();
  }
}

RootedTree DomTreeBuilder::greedy(NodeId u, Dist r, Dist beta) {
  REMSPAN_CHECK(r >= 2);
  RootedTree tree(u);
  const Dist depth_needed = std::max(r, r - 1 + beta);
  bfs_.run(GraphView(*g_), u, depth_needed);

  std::vector<NodeId> candidates;
  for (Dist shell = 2; shell <= r; ++shell) {
    // S := nodes at distance exactly `shell`;
    // X := nodes in the distance range [shell-1, shell-1+beta].
    std::size_t s_count = 0;
    candidates.clear();
    for (const NodeId v : bfs_.order()) {
      const Dist d = bfs_.dist(v);
      if (d == shell) {
        in_s_[v] = 1;
        ++s_count;
      }
      if (d >= shell - 1 && d <= shell - 1 + beta) {
        in_x_[v] = 1;
        candidates.push_back(v);
      }
    }
    while (s_count > 0) {
      // Greedy set-cover pick: the candidate outside M covering the most
      // still-uncovered shell nodes; ties go to the smallest id.
      NodeId best = kInvalidNode;
      std::size_t best_cover = 0;
      for (const NodeId x : candidates) {
        if (in_x_[x] != 1) continue;  // already picked into M
        std::size_t cover = in_s_[x];
        for (const NodeId y : g_->neighbors(x)) cover += in_s_[y];
        if (cover > best_cover || (cover == best_cover && cover > 0 && x < best)) {
          best_cover = cover;
          best = x;
        }
      }
      // Uncovered shell nodes always retain an unpicked BFS predecessor in
      // X, so the greedy can never stall (Proposition 2's argument).
      REMSPAN_CHECK(best != kInvalidNode && best_cover > 0);
      in_x_[best] = 2;
      add_parent_chain(tree, best);
      if (in_s_[best] != 0) {
        in_s_[best] = 0;
        --s_count;
      }
      for (const NodeId y : g_->neighbors(best)) {
        if (in_s_[y] != 0) {
          in_s_[y] = 0;
          --s_count;
        }
      }
    }
    for (const NodeId x : candidates) in_x_[x] = 0;
  }
  reset_flags();
  return tree;
}

RootedTree DomTreeBuilder::mis(NodeId u, Dist r) {
  REMSPAN_CHECK(r >= 2);
  RootedTree tree(u);
  bfs_.run(GraphView(*g_), u, r);

  // B := B(u, r) \ B(u, 1), processed by (distance, id): the BFS order is
  // already sorted by distance, so a stable sort by id inside each shell
  // gives the deterministic "pick x at minimal distance" of Algorithm 2.
  std::vector<NodeId> shell_nodes;
  for (const NodeId v : bfs_.order()) {
    if (bfs_.dist(v) >= 2) {
      in_s_[v] = 1;
      shell_nodes.push_back(v);
    }
  }
  std::sort(shell_nodes.begin(), shell_nodes.end(), [&](NodeId a, NodeId b) {
    return bfs_.dist(a) != bfs_.dist(b) ? bfs_.dist(a) < bfs_.dist(b) : a < b;
  });

  for (const NodeId x : shell_nodes) {
    if (in_s_[x] == 0) continue;
    // x is the remaining node of B at minimal distance: add it to the MIS.
    add_parent_chain(tree, x);
    in_s_[x] = 0;
    for (const NodeId y : g_->neighbors(x)) in_s_[y] = 0;
  }
  reset_flags();
  return tree;
}

RootedTree DomTreeBuilder::greedy_k(NodeId u, Dist k) {
  REMSPAN_CHECK(k >= 1);
  RootedTree tree(u);
  bfs_.run(GraphView(*g_), u, 2);

  // S := distance-2 shell. cov_[v] counts |N(v) ∩ M|, rem_[v] counts the
  // common neighbors of v and u not yet picked into M.
  std::size_t s_count = 0;
  for (const NodeId v : bfs_.order()) {
    if (bfs_.dist(v) == 2) {
      in_s_[v] = 1;
      ++s_count;
    }
  }
  for (const NodeId x : g_->neighbors(u)) {
    for (const NodeId y : g_->neighbors(x)) {
      if (in_s_[y] != 0) ++rem_[y];
    }
  }

  while (s_count > 0) {
    NodeId best = kInvalidNode;
    std::size_t best_cover = 0;
    for (const NodeId x : g_->neighbors(u)) {
      if (in_x_[x] != 0) continue;  // already in M
      std::size_t cover = 0;
      for (const NodeId y : g_->neighbors(x)) cover += in_s_[y];
      if (cover > best_cover || (cover == best_cover && cover > 0 && x < best)) {
        best_cover = cover;
        best = x;
      }
    }
    REMSPAN_CHECK(best != kInvalidNode && best_cover > 0);
    in_x_[best] = 1;
    tree.add_child(u, best, bfs_.parent_edge(best));
    for (const NodeId y : g_->neighbors(best)) {
      if (in_s_[y] == 0) continue;
      ++cov_[y];
      --rem_[y];
      // Covered k times, or every common neighbor is now in M: done with y.
      if (cov_[y] >= k || rem_[y] == 0) {
        in_s_[y] = 0;
        --s_count;
      }
    }
  }
  reset_flags();
  return tree;
}

RootedTree DomTreeBuilder::mis_k(NodeId u, Dist k) {
  REMSPAN_CHECK(k >= 1);
  RootedTree tree(u);
  bfs_.run(GraphView(*g_), u, 2);

  // S := distance-2 shell (kept in id order for deterministic picks);
  // rem_[v] = |(N(v) ∩ N(u)) \ V(T)|; branches_[v] = distinct tree branches
  // holding a neighbor of v within depth 2.
  std::vector<NodeId> shell;
  std::size_t s_count = 0;
  for (const NodeId v : bfs_.order()) {
    if (bfs_.dist(v) == 2) {
      in_s_[v] = 1;
      shell.push_back(v);
      ++s_count;
    }
  }
  std::sort(shell.begin(), shell.end());
  for (const NodeId x : g_->neighbors(u)) {
    for (const NodeId y : g_->neighbors(x)) {
      if (in_s_[y] != 0) ++rem_[y];
    }
  }

  // Attaches `node` under `parent` and updates the shell bookkeeping: a
  // node entering V(T) extends the branch sets of its shell neighbors and,
  // when it is a neighbor of u, consumes one "available common neighbor"
  // from each adjacent shell node.
  auto attach = [&](NodeId parent, NodeId node) {
    // The BFS discovered node through some distance-1 predecessor; when it is
    // not the requested parent (mis_k attaches x under its fresh common
    // neighbor ys[0]), fall back to one adjacency lookup.
    const EdgeId pe = bfs_.parent(node) == parent ? bfs_.parent_edge(node)
                                                  : g_->find_edge(parent, node);
    tree.add_child(parent, node, pe);
    const NodeId branch = tree.branch(node);
    const bool depth_one = tree.depth(node) == 1;
    for (const NodeId w : g_->neighbors(node)) {
      if (in_s_[w] == 0) continue;
      if (depth_one) --rem_[w];
      auto& br = branches_[w];
      if (std::find(br.begin(), br.end(), branch) == br.end()) br.push_back(branch);
      if (rem_[w] == 0 || br.size() >= k) {
        in_s_[w] = 0;
        --s_count;
      }
    }
  };

  std::vector<NodeId> ys;
  for (Dist round = 1; round <= k && s_count > 0; ++round) {
    // X := S at round start.
    for (const NodeId v : shell) in_x_[v] = in_s_[v];
    for (const NodeId x : shell) {
      if (s_count == 0) break;
      if (in_x_[x] == 0 || in_s_[x] == 0) continue;
      // Pick x into this round's MIS. Its available common neighbors with u
      // are fresh depth-1 attachment points.
      ys.clear();
      for (const NodeId y : g_->neighbors(x)) {
        if (g_->has_edge(u, y) && !tree.contains(y)) ys.push_back(y);
      }
      // x in S implies rem_[x] > 0, so at least one attachment point exists.
      REMSPAN_CHECK(!ys.empty());
      const std::size_t count = std::min<std::size_t>(k, ys.size());
      attach(u, ys[0]);
      // x may have been removed from S by attaching ys[0]; it still enters
      // the tree (its own branch can dominate other shell nodes).
      attach(ys[0], x);
      for (std::size_t i = 1; i < count; ++i) attach(u, ys[i]);
      // X := X \ B(x, 1).
      in_x_[x] = 0;
      for (const NodeId y : g_->neighbors(x)) in_x_[y] = 0;
    }
  }
  // Proposition 7: k rounds of MIS domination always empty the shell.
  REMSPAN_CHECK(s_count == 0);
  reset_flags();
  return tree;
}

bool is_dominating_tree(const Graph& g, const RootedTree& tree, Dist r, Dist beta) {
  if (!tree_is_valid_subgraph(g, tree)) return false;
  const NodeId u = tree.root();
  const auto dist = bfs_distances(GraphView(g), u, r);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Dist d = dist[v];
    if (d < 2 || d > r || d == kUnreachable) continue;
    bool dominated = false;
    for (const NodeId x : g.neighbors(v)) {
      const Dist depth = tree.depth(x);
      if (depth != kUnreachable && depth <= d - 1 + beta) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_k_connecting_dominating_tree(const Graph& g, const RootedTree& tree, Dist k,
                                     Dist beta) {
  if (!tree_is_valid_subgraph(g, tree)) return false;
  const NodeId u = tree.root();
  const auto dist = bfs_distances(GraphView(g), u, 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != 2) continue;
    // Alternative A: every common neighbor of u and v is attached by a root
    // edge of the tree.
    bool all_attached = true;
    for (const NodeId w : g.neighbors(v)) {
      if (g.has_edge(u, w) && tree.depth(w) != 1) {
        all_attached = false;
        break;
      }
    }
    if (all_attached) continue;
    // Alternative B: k neighbors of v within tree depth 1 + beta on k
    // distinct branches (their root paths share only the root).
    std::unordered_set<NodeId> branches;
    for (const NodeId w : g.neighbors(v)) {
      const Dist depth = tree.depth(w);
      if (depth >= 1 && depth != kUnreachable && depth <= 1 + beta) {
        branches.insert(tree.branch(w));
      }
    }
    if (branches.size() < k) return false;
  }
  return true;
}

bool tree_is_valid_subgraph(const Graph& g, const RootedTree& tree) {
  for (const NodeId v : tree.nodes()) {
    if (v == tree.root()) {
      REMSPAN_CHECK(tree.depth(v) == 0);
      continue;
    }
    const NodeId p = tree.parent(v);
    if (!g.has_edge(p, v)) return false;
    REMSPAN_CHECK(tree.depth(v) == tree.depth(p) + 1);
  }
  return true;
}

}  // namespace remspan
