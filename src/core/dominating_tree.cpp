#include "core/dominating_tree.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/obs.hpp"

namespace remspan {

DomTreeBuilder::DomTreeBuilder(const Graph& g)
    : g_(&g),
      bfs_(g.num_nodes()),
      in_s_(g.num_nodes(), 0),
      in_x_(g.num_nodes(), 0),
      cov_(g.num_nodes(), 0),
      rem_(g.num_nodes(), 0),
      branches_(g.num_nodes()),
      nbr_u_(g.num_nodes(), 0) {}

void DomTreeBuilder::rebind(const Graph& g) {
  REMSPAN_CHECK(g.num_nodes() == static_cast<NodeId>(in_s_.size()));
  g_ = &g;
}

void DomTreeBuilder::add_parent_chain(RootedTree& tree, NodeId x) {
  // Collect the BFS ancestors of x that are not yet in the tree, then attach
  // them top-down. Because every chain comes from the same root BFS, the
  // union stays a tree and d_T(root, x) = d_G(root, x).
  NodeId chain[64];
  std::size_t len = 0;
  while (!tree.contains(x)) {
    REMSPAN_CHECK(len < 64);
    chain[len++] = x;
    x = bfs_.parent(x);
    REMSPAN_CHECK(x != kInvalidNode);
  }
  while (len > 0) {
    const NodeId child = chain[--len];
    tree.add_child(x, child, bfs_.parent_edge(child));
    x = child;
  }
}

void DomTreeBuilder::publish_stats(const RootedTree& tree) {
  // Always drained, so a sink installed mid-process starts from zero
  // instead of inheriting tallies of builds it never saw.
  const std::uint64_t pops = std::exchange(stat_heap_pops_, 0);
  const std::uint64_t rekeys = std::exchange(stat_heap_rekeys_, 0);
  const std::uint64_t touches = std::exchange(stat_cover_touches_, 0);
  if (obs::Registry* m = obs::metrics()) {
    m->counter("domtree.builds").add(1);
    m->counter("domtree.heap_pops").add(pops);
    m->counter("domtree.heap_rekeys").add(rekeys);
    m->counter("domtree.cover_touches").add(touches);
    m->histogram("domtree.tree_edges").record(tree.num_edges());
  }
}

void DomTreeBuilder::reset_flags() {
  for (const NodeId v : bfs_.order()) {
    in_s_[v] = 0;
    in_x_[v] = 0;
    cov_[v] = 0;
    rem_[v] = 0;
    branches_[v].clear();
    nbr_u_[v] = 0;
  }
  heap_.clear();
}

RootedTree DomTreeBuilder::greedy(NodeId u, Dist r, Dist beta) {
  REMSPAN_CHECK(r >= 2);
  RootedTree tree(u);
  const Dist depth_needed = std::max(r, r - 1 + beta);
  bfs_.run(GraphView(*g_), u, depth_needed);

  // cover(x) = |({x} ∪ N(x)) ∩ S|: recomputed only for candidates that
  // surface at the top of the lazy heap (see pop_best_candidate).
  auto live_cover = [&](NodeId x) {
    std::uint32_t cover = in_s_[x];
    for (const NodeId y : g_->neighbors(x)) cover += in_s_[y];
    return cover;
  };

  for (Dist shell = 2; shell <= r; ++shell) {
    // S := nodes at distance exactly `shell` — one contiguous BFS slice;
    // X := nodes in the distance range [shell-1, shell-1+beta].
    const auto s_nodes = bfs_.shell(shell);
    std::size_t s_count = s_nodes.size();
    if (s_count == 0) continue;
    for (const NodeId v : s_nodes) in_s_[v] = 1;

    // Clamp the candidate range to shells that exist: shells past the ball's
    // eccentricity are empty, and a huge beta must not spin over them.
    const Dist x_hi = static_cast<Dist>(std::min<std::uint64_t>(
        std::uint64_t{shell} - 1 + beta, bfs_.num_shells() - 1));

    heap_.clear();
    for (Dist d = shell - 1; d <= x_hi; ++d) {
      for (const NodeId x : bfs_.shell(d)) {
        in_x_[x] = 1;
        const std::uint32_t cover = live_cover(x);
        if (cover > 0) heap_.push_back({heap_key(cover, x), s_epoch_});
      }
    }
    std::make_heap(heap_.begin(), heap_.end());

    while (s_count > 0) {
      // Greedy set-cover pick: the candidate outside M covering the most
      // still-uncovered shell nodes; ties go to the smallest id.
      const NodeId best = pop_best_candidate(/*unpicked=*/1, live_cover);
      // Uncovered shell nodes always retain an unpicked BFS predecessor in
      // X, so the greedy can never stall (Proposition 2's argument).
      REMSPAN_CHECK(best != kInvalidNode);
      in_x_[best] = 2;
      add_parent_chain(tree, best);
      if (in_s_[best] != 0) {
        in_s_[best] = 0;
        --s_count;
      }
      for (const NodeId y : g_->neighbors(best)) {
        if (in_s_[y] != 0) {
          in_s_[y] = 0;
          --s_count;
        }
      }
      ++s_epoch_;  // a positive-cover pick always shrank S
    }
    for (Dist d = shell - 1; d <= x_hi; ++d) {
      for (const NodeId x : bfs_.shell(d)) in_x_[x] = 0;
    }
  }
  reset_flags();
  publish_stats(tree);
  return tree;
}

RootedTree DomTreeBuilder::mis(NodeId u, Dist r) {
  REMSPAN_CHECK(r >= 2);
  RootedTree tree(u);
  bfs_.run(GraphView(*g_), u, r);

  // B := B(u, r) \ B(u, 1), processed by (distance, id): shells are
  // contiguous slices of the BFS order, so sorting each shell by id — far
  // cheaper than one global sort of the ball — yields the deterministic
  // "pick x at minimal distance" order of Algorithm 2.
  const Dist num_shells = bfs_.num_shells();
  for (Dist d = 2; d < num_shells; ++d) {
    for (const NodeId v : bfs_.shell(d)) in_s_[v] = 1;
  }
  for (Dist d = 2; d < num_shells; ++d) {
    const auto sh = bfs_.shell(d);
    shell_sorted_.assign(sh.begin(), sh.end());
    std::sort(shell_sorted_.begin(), shell_sorted_.end());
    for (const NodeId x : shell_sorted_) {
      if (in_s_[x] == 0) continue;
      // x is the remaining node of B at minimal distance: add it to the MIS.
      add_parent_chain(tree, x);
      in_s_[x] = 0;
      for (const NodeId y : g_->neighbors(x)) in_s_[y] = 0;
    }
  }
  reset_flags();
  publish_stats(tree);
  return tree;
}

RootedTree DomTreeBuilder::greedy_k(NodeId u, Dist k) {
  REMSPAN_CHECK(k >= 1);
  RootedTree tree(u);
  bfs_.run(GraphView(*g_), u, 2);

  // S := distance-2 shell. cov_[v] counts |N(v) ∩ M|, rem_[v] counts the
  // common neighbors of v and u not yet picked into M.
  const auto s_nodes = bfs_.shell(2);
  std::size_t s_count = s_nodes.size();
  for (const NodeId v : s_nodes) in_s_[v] = 1;
  for (const NodeId x : g_->neighbors(u)) {
    for (const NodeId y : g_->neighbors(x)) {
      if (in_s_[y] != 0) ++rem_[y];
    }
  }
  // cover(x) = |N(x) ∩ S| per relay candidate x ∈ N(u); lazy-heap picks as
  // in greedy(), revalidated against this on pop.
  auto live_cover = [&](NodeId x) {
    std::uint32_t cover = 0;
    for (const NodeId y : g_->neighbors(x)) cover += in_s_[y];
    return cover;
  };
  heap_.clear();
  for (const NodeId x : g_->neighbors(u)) {
    const std::uint32_t cover = live_cover(x);
    if (cover > 0) heap_.push_back({heap_key(cover, x), s_epoch_});
  }
  std::make_heap(heap_.begin(), heap_.end());

  while (s_count > 0) {
    const NodeId best = pop_best_candidate(/*unpicked=*/0, live_cover);
    REMSPAN_CHECK(best != kInvalidNode);
    in_x_[best] = 1;
    tree.add_child(u, best, bfs_.parent_edge(best));
    bool removed = false;
    for (const NodeId y : g_->neighbors(best)) {
      if (in_s_[y] == 0) continue;
      ++cov_[y];
      --rem_[y];
      // Covered k times, or every common neighbor is now in M: done with y.
      if (cov_[y] >= k || rem_[y] == 0) {
        in_s_[y] = 0;
        --s_count;
        removed = true;
      }
    }
    if (removed) ++s_epoch_;
  }
  reset_flags();
  publish_stats(tree);
  return tree;
}

RootedTree DomTreeBuilder::mis_k(NodeId u, Dist k) {
  REMSPAN_CHECK(k >= 1);
  RootedTree tree(u);
  bfs_.run(GraphView(*g_), u, 2);

  // S := distance-2 shell (kept in id order for deterministic picks);
  // rem_[v] = |(N(v) ∩ N(u)) \ V(T)|; branches_[v] = distinct tree branches
  // holding a neighbor of v within depth 2.
  const auto s_nodes = bfs_.shell(2);
  std::size_t s_count = s_nodes.size();
  for (const NodeId v : s_nodes) in_s_[v] = 1;
  shell_sorted_.assign(s_nodes.begin(), s_nodes.end());
  std::sort(shell_sorted_.begin(), shell_sorted_.end());
  const auto& shell = shell_sorted_;
  for (const NodeId x : g_->neighbors(u)) {
    nbr_u_[x] = 1;
    for (const NodeId y : g_->neighbors(x)) {
      if (in_s_[y] != 0) ++rem_[y];
    }
  }

  // Attaches `node` under `parent` and updates the shell bookkeeping: a
  // node entering V(T) extends the branch sets of its shell neighbors and,
  // when it is a neighbor of u, consumes one "available common neighbor"
  // from each adjacent shell node.
  auto attach = [&](NodeId parent, NodeId node) {
    // The BFS discovered node through some distance-1 predecessor; when it is
    // not the requested parent (mis_k attaches x under its fresh common
    // neighbor ys[0]), fall back to one adjacency lookup.
    const EdgeId pe = bfs_.parent(node) == parent ? bfs_.parent_edge(node)
                                                  : g_->find_edge(parent, node);
    tree.add_child(parent, node, pe);
    const NodeId branch = tree.branch(node);
    const bool depth_one = tree.depth(node) == 1;
    for (const NodeId w : g_->neighbors(node)) {
      if (in_s_[w] == 0) continue;
      if (depth_one) --rem_[w];
      auto& br = branches_[w];
      if (std::find(br.begin(), br.end(), branch) == br.end()) br.push_back(branch);
      if (rem_[w] == 0 || br.size() >= k) {
        in_s_[w] = 0;
        --s_count;
      }
    }
  };

  std::vector<NodeId> ys;
  for (Dist round = 1; round <= k && s_count > 0; ++round) {
    // X := S at round start.
    for (const NodeId v : shell) in_x_[v] = in_s_[v];
    for (const NodeId x : shell) {
      if (s_count == 0) break;
      if (in_x_[x] == 0 || in_s_[x] == 0) continue;
      // Pick x into this round's MIS. Its available common neighbors with u
      // are fresh depth-1 attachment points. N(u) membership is a flag load
      // (nbr_u_ was marked once at tree start), not an O(log deg) adjacency
      // search per neighbor of every pick.
      ys.clear();
      for (const NodeId y : g_->neighbors(x)) {
        if (nbr_u_[y] != 0 && !tree.contains(y)) ys.push_back(y);
      }
      // x in S implies rem_[x] > 0, so at least one attachment point exists.
      REMSPAN_CHECK(!ys.empty());
      const std::size_t count = std::min<std::size_t>(k, ys.size());
      attach(u, ys[0]);
      // x may have been removed from S by attaching ys[0]; it still enters
      // the tree (its own branch can dominate other shell nodes).
      attach(ys[0], x);
      for (std::size_t i = 1; i < count; ++i) attach(u, ys[i]);
      // X := X \ B(x, 1).
      in_x_[x] = 0;
      for (const NodeId y : g_->neighbors(x)) in_x_[y] = 0;
    }
  }
  // Proposition 7: k rounds of MIS domination always empty the shell.
  REMSPAN_CHECK(s_count == 0);
  reset_flags();
  publish_stats(tree);
  return tree;
}

bool is_dominating_tree(const Graph& g, const RootedTree& tree, Dist r, Dist beta) {
  if (!tree_is_valid_subgraph(g, tree)) return false;
  const NodeId u = tree.root();
  const auto dist = bfs_distances(GraphView(g), u, r);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Dist d = dist[v];
    if (d < 2 || d > r || d == kUnreachable) continue;
    bool dominated = false;
    for (const NodeId x : g.neighbors(v)) {
      const Dist depth = tree.depth(x);
      if (depth != kUnreachable && depth <= d - 1 + beta) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_k_connecting_dominating_tree(const Graph& g, const RootedTree& tree, Dist k,
                                     Dist beta) {
  if (!tree_is_valid_subgraph(g, tree)) return false;
  const NodeId u = tree.root();
  const auto dist = bfs_distances(GraphView(g), u, 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != 2) continue;
    // Alternative A: every common neighbor of u and v is attached by a root
    // edge of the tree.
    bool all_attached = true;
    for (const NodeId w : g.neighbors(v)) {
      if (g.has_edge(u, w) && tree.depth(w) != 1) {
        all_attached = false;
        break;
      }
    }
    if (all_attached) continue;
    // Alternative B: k neighbors of v within tree depth 1 + beta on k
    // distinct branches (their root paths share only the root).
    std::unordered_set<NodeId> branches;
    for (const NodeId w : g.neighbors(v)) {
      const Dist depth = tree.depth(w);
      if (depth >= 1 && depth != kUnreachable && depth <= 1 + beta) {
        branches.insert(tree.branch(w));
      }
    }
    if (branches.size() < k) return false;
  }
  return true;
}

bool tree_is_valid_subgraph(const Graph& g, const RootedTree& tree) {
  for (const NodeId v : tree.nodes()) {
    if (v == tree.root()) {
      REMSPAN_CHECK(tree.depth(v) == 0);
      continue;
    }
    const NodeId p = tree.parent(v);
    if (!g.has_edge(p, v)) return false;
    REMSPAN_CHECK(tree.depth(v) == tree.depth(p) + 1);
  }
  return true;
}

}  // namespace remspan
