// Stretch parameters and the epsilon <-> (r, beta) correspondence of
// Proposition 1: a sub-graph is a (1+eps, 1-2eps)-remote-spanner iff it
// induces (ceil(1/eps)+1, 1)-dominating trees.
#pragma once

#include <cmath>

#include "util/prelude.hpp"

namespace remspan {

/// An (alpha, beta) stretch bound: d_{H_u}(u,v) <= alpha * d_G(u,v) + beta.
struct Stretch {
  double alpha = 1.0;
  double beta = 0.0;

  [[nodiscard]] double bound(Dist d) const noexcept {
    return alpha * static_cast<double>(d) + beta;
  }
};

/// Tree-domination radius r = ceil(1/eps) + 1 from Proposition 1.
[[nodiscard]] inline Dist domination_radius_for_eps(double eps) {
  REMSPAN_CHECK(eps > 0.0 && eps <= 1.0);
  return static_cast<Dist>(std::ceil(1.0 / eps)) + 1;
}

/// The effective epsilon' = 1 / (r - 1) realized by radius-r trees; always
/// <= the requested eps, so the guarantee only improves.
[[nodiscard]] inline double effective_eps(Dist r) {
  REMSPAN_CHECK(r >= 2);
  return 1.0 / static_cast<double>(r - 1);
}

/// Stretch guaranteed by a sub-graph inducing (r,1)-dominating trees
/// (Proposition 1): (1 + eps', 1 - 2eps') with eps' = 1/(r-1).
[[nodiscard]] inline Stretch stretch_for_radius(Dist r) {
  const double eps = effective_eps(r);
  return Stretch{1.0 + eps, 1.0 - 2.0 * eps};
}

/// k-connecting stretch bound of Section 3: d^{k'}_{H_s} <= alpha d^{k'}_G
/// + k' beta for k' <= k.
[[nodiscard]] inline double k_connecting_bound(const Stretch& s, std::uint64_t dk, Dist k) {
  return s.alpha * static_cast<double>(dk) + static_cast<double>(k) * s.beta;
}

}  // namespace remspan
