// Remote-spanner construction: the union over every node u of a dominating
// tree rooted at u (the paper's Section 2.3 / 3.3 recipe, i.e. the local
// computation each node performs in Algorithm RemSpan). The per-root tree
// computations are independent, so they run on the thread pool.
//
// Front-ends for the three theorems:
//   Theorem 1: (1+eps, 1-2eps)-remote-spanner   = union of (r,1)-dominating
//              trees with r = ceil(1/eps)+1 (greedy or MIS trees).
//   Theorem 2: k-connecting (1,0)-remote-spanner = union of k-connecting
//              (2,0)-dominating trees (greedy k-cover).
//   Theorem 3: 2-connecting (2,-1)-remote-spanner = union of 2-connecting
//              (2,1)-dominating trees (k rounds of MIS).
#pragma once

#include <cstddef>

#include "core/dominating_tree.hpp"
#include "core/params.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "shard/shard_plan.hpp"

namespace remspan {

/// Which per-root tree algorithm backs the construction.
enum class TreeAlgorithm {
  kGreedy,  // set-cover greedy: log Delta-approximate tree size (Prop. 2/6)
  kMis,     // local MIS: constant-size trees on doubling UBGs (Prop. 3/7)
};

/// Aggregate facts about a build, reported by the benches.
struct SpannerBuildInfo {
  std::size_t sum_tree_edges = 0;  // sum over roots (counts shared edges repeatedly)
  std::size_t max_tree_edges = 0;  // largest single dominating tree
  double build_seconds = 0.0;      // wall time of the parallel union
};

/// Union of (r, beta)-dominating trees for every root. beta must be 1 when
/// algo == kMis (Algorithm 2 is specific to beta = 1).
///
/// `shards` selects the execution engine (see src/shard): the default
/// single-shard config runs the flat pooled union below, byte-identical to
/// builds before sharding existed; num_shards >= 2 runs the sharded
/// frontier-batched engine, which produces the same spanner bit-for-bit
/// (test_shard_equivalence.cpp) at a different memory/locality profile.
/// The same knob rides on every front-end in this header.
[[nodiscard]] EdgeSet build_remote_spanner(const Graph& g, Dist r, Dist beta,
                                           TreeAlgorithm algo,
                                           SpannerBuildInfo* info = nullptr,
                                           const ShardConfig& shards = {});

/// Theorem 1 front-end: a (1+eps, 1-2eps)-remote-spanner, 0 < eps <= 1.
[[nodiscard]] EdgeSet build_low_stretch_remote_spanner(const Graph& g, double eps,
                                                       TreeAlgorithm algo = TreeAlgorithm::kMis,
                                                       SpannerBuildInfo* info = nullptr,
                                                       const ShardConfig& shards = {});

/// Theorem 2 front-end: a k-connecting (1,0)-remote-spanner. For k = 1 this
/// is a (1,0)-remote-spanner, i.e. exact remote distances (the multipoint
/// relay sub-graph of OLSR).
[[nodiscard]] EdgeSet build_k_connecting_spanner(const Graph& g, Dist k,
                                                 SpannerBuildInfo* info = nullptr,
                                                 const ShardConfig& shards = {});

/// Theorem 3 front-end: union of k-connecting (2,1)-dominating trees. For
/// k = 2 this is a 2-connecting (2,-1)-remote-spanner with O(n) edges on
/// doubling unit ball graphs.
[[nodiscard]] EdgeSet build_2connecting_spanner(const Graph& g, Dist k = 2,
                                                SpannerBuildInfo* info = nullptr,
                                                const ShardConfig& shards = {});

}  // namespace remspan
