#include "core/remote_spanner.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "shard/shard_engine.hpp"
#include "util/bitset.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

namespace {

/// Shared driver: runs `make_tree(builder, u)` for every root u in parallel,
/// unioning the tree edges into one shared bitset of atomic words — O(m)
/// bits total, independent of the worker count (the previous per-worker
/// EdgeSet accumulators cost O(workers · m), which is what blew memory
/// first on n >= 10^6 inputs).
///
/// Memory model: each worker merges one tree's edge bits into plain
/// (word, mask) pairs first, then publishes each touched word with a single
/// relaxed fetch_or. Relaxed is sufficient because a set bit carries no
/// payload other threads read through it; the final snapshot() happens
/// after the fork/join barrier of parallel_for_workers, which orders every
/// write before the read.
EdgeSet union_of_trees(const Graph& g,
                       const std::function<RootedTree(DomTreeBuilder&, NodeId)>& make_tree,
                       SpannerBuildInfo* info) {
  obs::PhaseSpan span("core.union_of_trees");
  auto& pool = ThreadPool::global();
  const std::size_t workers = pool.concurrency();

  AtomicBitset shared(g.num_edges());
  std::vector<std::unique_ptr<DomTreeBuilder>> builders(workers);
  for (auto& b : builders) b = std::make_unique<DomTreeBuilder>(g);
  // Per-worker reusable edge-id buffer, sized by the largest tree seen.
  std::vector<std::vector<EdgeId>> edge_ids(workers);

  std::atomic<std::size_t> sum_edges{0};
  std::atomic<std::size_t> max_edges{0};
  // Union-cost observability: atomic words or'd and max-tracking CAS
  // retries, accumulated only when a metrics sink is installed (the
  // counts are telemetry, not part of the build result).
  std::atomic<std::uint64_t> words_ord{0};
  std::atomic<std::uint64_t> cas_retries{0};
  const bool count_union = obs::metrics() != nullptr;

  pool.parallel_for_workers(0, g.num_nodes(), [&](std::size_t root, std::size_t worker) {
    const RootedTree tree = make_tree(*builders[worker], static_cast<NodeId>(root));
    auto& ids = edge_ids[worker];
    ids.clear();
    for (const NodeId v : tree.nodes()) {
      if (v == tree.root()) continue;
      // The builders record each node's parent edge id at attach time, so the
      // union needs no adjacency search per tree edge.
      const EdgeId id = tree.parent_edge(v);
      REMSPAN_CHECK(id != kInvalidEdge);
      ids.push_back(id);
    }
    const std::size_t edges = ids.size();
    // Word-level batching (or_batch): one tree's bits merge into plain
    // masks locally, one atomic RMW per touched word — contention stays
    // off the hot loop.
    const std::size_t touched = shared.or_batch(ids);
    sum_edges.fetch_add(edges, std::memory_order_relaxed);
    std::size_t seen = max_edges.load(std::memory_order_relaxed);
    std::uint64_t retries = 0;
    while (edges > seen &&
           !max_edges.compare_exchange_weak(seen, edges, std::memory_order_relaxed)) {
      ++retries;
    }
    if (count_union) {
      words_ord.fetch_add(touched, std::memory_order_relaxed);
      cas_retries.fetch_add(retries, std::memory_order_relaxed);
    }
  });

  EdgeSet spanner(g, shared.snapshot());

  if (info != nullptr) {
    info->sum_tree_edges = sum_edges.load();
    info->max_tree_edges = max_edges.load();
    info->build_seconds = span.seconds();
  }
  if (obs::Registry* m = obs::metrics()) {
    m->counter("union.builds").add(1);
    m->counter("union.trees").add(g.num_nodes());
    m->counter("union.words_ord").add(words_ord.load());
    m->counter("union.cas_retries").add(cas_retries.load());
    m->counter("union.spanner_edges").add(spanner.size());
  }
  return spanner;
}

}  // namespace

EdgeSet build_remote_spanner(const Graph& g, Dist r, Dist beta, TreeAlgorithm algo,
                             SpannerBuildInfo* info, const ShardConfig& shards) {
  REMSPAN_CHECK(r >= 2);
  if (algo == TreeAlgorithm::kMis) {
    REMSPAN_CHECK(beta == 1);  // Algorithm 2 computes (r,1)-dominating trees
    const auto make_tree = [r](DomTreeBuilder& b, NodeId u) { return b.mis(u, r); };
    if (shards.sharded()) return sharded_union_of_trees(g, r, make_tree, shards, info);
    return union_of_trees(g, make_tree, info);
  }
  // The greedy ball: the BFS explores to max(r, r-1+beta), the deepest
  // shell the candidate ranges reach (dominating_tree.cpp uses the same
  // bound); the sharded gather must cover exactly that.
  const Dist ball_depth = std::max<Dist>(r, r - 1 + beta);
  const auto make_tree = [r, beta](DomTreeBuilder& b, NodeId u) {
    return b.greedy(u, r, beta);
  };
  if (shards.sharded()) return sharded_union_of_trees(g, ball_depth, make_tree, shards, info);
  return union_of_trees(g, make_tree, info);
}

EdgeSet build_low_stretch_remote_spanner(const Graph& g, double eps, TreeAlgorithm algo,
                                         SpannerBuildInfo* info, const ShardConfig& shards) {
  const Dist r = domination_radius_for_eps(eps);
  return build_remote_spanner(g, r, 1, algo, info, shards);
}

EdgeSet build_k_connecting_spanner(const Graph& g, Dist k, SpannerBuildInfo* info,
                                   const ShardConfig& shards) {
  REMSPAN_CHECK(k >= 1);
  const auto make_tree = [k](DomTreeBuilder& b, NodeId u) { return b.greedy_k(u, k); };
  if (shards.sharded()) return sharded_union_of_trees(g, 2, make_tree, shards, info);
  return union_of_trees(g, make_tree, info);
}

EdgeSet build_2connecting_spanner(const Graph& g, Dist k, SpannerBuildInfo* info,
                                  const ShardConfig& shards) {
  REMSPAN_CHECK(k >= 1);
  const auto make_tree = [k](DomTreeBuilder& b, NodeId u) { return b.mis_k(u, k); };
  if (shards.sharded()) return sharded_union_of_trees(g, 2, make_tree, shards, info);
  return union_of_trees(g, make_tree, info);
}

}  // namespace remspan
