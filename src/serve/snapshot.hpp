// SpannerSnapshot: the immutable epoch-tagged unit of publication in the
// multi-tenant service.
//
// A tenant's drainer applies a coalesced batch to its IncrementalSpanner,
// then freezes the result — the versioned CSR snapshot (shared ownership of
// the same immutable Graph the engine advanced to) plus a copy of the
// spanner's edge bitset and the batch's build info — into one object
// published behind an atomic shared_ptr. Readers grab the pointer once and
// answer any number of queries (contains-edge, spanner extraction, stats,
// sampled remote stretch) against a perfectly stable world, with no locks
// and no coordination with the writer rebuilding the next epoch. Old
// epochs stay fully valid for as long as any reader holds them: the
// shared_ptr keeps the CSR alive even after the tenant's DynamicGraph has
// re-materialized many newer snapshots (pinned by the keep-alive
// regression test in tests/test_serve.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/spanner_stats.hpp"
#include "dynamic/incremental_spanner.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan::serve {

/// Provenance of one published epoch.
struct SnapshotInfo {
  std::uint64_t epoch = 0;          ///< 0 for the open-time build, then +1 per batch
  std::uint64_t graph_version = 0;  ///< DynamicGraph::version() at publication
  std::uint64_t batches_applied = 0;   ///< cumulative coalesced batches
  std::uint64_t events_applied = 0;    ///< cumulative coalesced events
  ChurnBatchStats last_batch{};        ///< stats of the producing batch
};

class SpannerSnapshot {
 public:
  /// Freezes `graph` + `spanner_bits` (one bit per graph edge id) at
  /// `info`. The graph is shared, the bits are owned: nothing in the
  /// snapshot aliases tenant state that a later batch could mutate.
  SpannerSnapshot(std::shared_ptr<const Graph> graph, DynamicBitset spanner_bits,
                  SnapshotInfo info);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return info_.epoch; }
  [[nodiscard]] const SnapshotInfo& info() const noexcept { return info_; }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::shared_ptr<const Graph> graph_ptr() const noexcept { return graph_; }
  [[nodiscard]] const EdgeSet& spanner() const noexcept { return spanner_; }

  [[nodiscard]] std::size_t num_spanner_edges() const noexcept { return spanner_edges_; }

  /// Whether {a, b} is a spanner edge of this epoch. Out-of-range ids and
  /// non-edges are simply absent (false), not errors — the service answers
  /// queries about nodes a tenant's topology may not have.
  [[nodiscard]] bool contains(NodeId a, NodeId b) const noexcept;

  /// The spanner edges in canonical order.
  [[nodiscard]] std::vector<Edge> spanner_edges() const { return spanner_.edge_list(); }

  [[nodiscard]] SpannerStats stats() const { return compute_spanner_stats(spanner_); }

  /// Sampled remote-stretch probe: for `pairs` seeded (u, v) draws, the
  /// worst d_{H_u}(u, v) / d_G(u, v) over connected nonadjacent pairs
  /// (1.0 when no draw hits one). Uses the oracle identity
  /// d_{H_u}(u, .) = BFS in H seeded with u at 0 and u's G-neighbors at 1,
  /// so each draw costs two BFS passes — cheap enough to serve online,
  /// deterministic in (pairs, seed) for a given epoch.
  [[nodiscard]] double sampled_stretch(std::size_t pairs, std::uint64_t seed) const;

 private:
  std::shared_ptr<const Graph> graph_;  // declared before spanner_: EdgeSet borrows it
  EdgeSet spanner_;
  std::size_t spanner_edges_ = 0;
  SnapshotInfo info_;
};

}  // namespace remspan::serve
