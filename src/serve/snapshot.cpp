#include "serve/snapshot.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "util/prelude.hpp"
#include "util/rng.hpp"

namespace remspan::serve {

namespace {

constexpr Dist kUnreached = std::numeric_limits<Dist>::max();

/// Plain BFS from `source` over the full graph.
void bfs_graph(const Graph& g, NodeId source, std::vector<Dist>& dist) {
  dist.assign(g.num_nodes(), kUnreached);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = static_cast<Dist>(dist[u] + 1);
        queue.push_back(v);
      }
    }
  }
}

/// BFS computing d_{H_u}(source, .): source at 0, its G-neighbors at 1,
/// then spanner edges only (the stretch-oracle identity — an H_u path
/// leaves the source exactly once, through some G-neighbor).
void bfs_augmented(const Graph& g, const EdgeSet& h, NodeId source, std::vector<Dist>& dist) {
  dist.assign(g.num_nodes(), kUnreached);
  std::deque<NodeId> queue;
  dist[source] = 0;
  for (const NodeId v : g.neighbors(source)) {
    if (dist[v] == kUnreached) {
      dist[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    h.for_each_neighbor(u, [&](NodeId v) {
      if (dist[v] == kUnreached) {
        dist[v] = static_cast<Dist>(dist[u] + 1);
        queue.push_back(v);
      }
    });
  }
}

}  // namespace

SpannerSnapshot::SpannerSnapshot(std::shared_ptr<const Graph> graph, DynamicBitset spanner_bits,
                                 SnapshotInfo info)
    : graph_(std::move(graph)),
      spanner_(*graph_, std::move(spanner_bits)),
      spanner_edges_(spanner_.size()),
      info_(info) {
  REMSPAN_CHECK(graph_ != nullptr);
}

bool SpannerSnapshot::contains(NodeId a, NodeId b) const noexcept {
  const NodeId n = graph_->num_nodes();
  if (a >= n || b >= n || a == b) return false;
  return spanner_.contains(a, b);
}

double SpannerSnapshot::sampled_stretch(std::size_t pairs, std::uint64_t seed) const {
  const NodeId n = graph_->num_nodes();
  if (n < 2 || pairs == 0) return 1.0;
  Rng rng(seed);
  double worst = 1.0;
  std::vector<Dist> dg;
  std::vector<Dist> dhu;
  for (std::size_t i = 0; i < pairs; ++i) {
    const NodeId u = static_cast<NodeId>(rng.uniform(n));
    const NodeId v = static_cast<NodeId>(rng.uniform(n));
    if (u == v) continue;
    bfs_graph(*graph_, u, dg);
    if (dg[v] == kUnreached || dg[v] < 2) continue;  // adjacent/disconnected: ratio 1 by definition
    bfs_augmented(*graph_, spanner_, u, dhu);
    if (dhu[v] == kUnreached) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, static_cast<double>(dhu[v]) / static_cast<double>(dg[v]));
  }
  return worst;
}

}  // namespace remspan::serve
