#include "serve/coalesce.hpp"

#include <utility>

#include "util/prelude.hpp"

namespace remspan::serve {

GraphEvent make_event(const EventKey& key, bool up) {
  if (key.is_edge()) {
    return up ? GraphEvent::edge_up(key.u, key.v) : GraphEvent::edge_down(key.u, key.v);
  }
  return up ? GraphEvent::node_up(key.u) : GraphEvent::node_down(key.u);
}

std::vector<GraphEvent> coalesce_events(std::span<const GraphEvent> events) {
  std::map<EventKey, bool> last;
  for (const GraphEvent& e : events) {
    last[EventKey::of(e)] = event_state(e.kind);
  }
  std::vector<GraphEvent> out;
  out.reserve(last.size());
  for (const auto& [key, up] : last) out.push_back(make_event(key, up));
  return out;
}

CoalescingQueue::CoalescingQueue(std::shared_ptr<const Graph> initial)
    : initial_(std::move(initial)) {
  REMSPAN_CHECK(initial_ != nullptr);
}

bool CoalescingQueue::current_state(const EventKey& key) const {
  if (const auto it = committed_.find(key); it != committed_.end()) return it->second;
  // Untouched cells sit at their open-time state: the snapshot's edges are
  // stored, everything else is absent, and every node starts up (the
  // DynamicGraph(initial) contract).
  if (key.is_edge()) return initial_->has_edge(key.u, key.v);
  return true;
}

CoalescingQueue::SubmitDelta CoalescingQueue::submit(std::span<const GraphEvent> events) {
  const std::size_t before = pending_.size();
  for (const GraphEvent& e : events) {
    const EventKey key = EventKey::of(e);
    const bool desired = event_state(e.kind);
    if (const auto it = pending_.find(key); it != pending_.end()) {
      if (desired == current_state(key)) {
        pending_.erase(it);  // up+down (or down+up) annihilate
      } else {
        it->second = desired;  // already pending at this state: duplicate
      }
    } else if (desired != current_state(key)) {
      pending_.emplace(key, desired);
    }
    // desired == current and nothing pending: a pure no-op, dropped.
  }
  SubmitDelta delta;
  delta.events = events.size();
  delta.net_growth =
      static_cast<std::int64_t>(pending_.size()) - static_cast<std::int64_t>(before);
  delta.coalesced = events.size() - static_cast<std::size_t>(delta.net_growth);
  return delta;
}

std::vector<GraphEvent> CoalescingQueue::take_batch(std::size_t max_events) {
  std::vector<GraphEvent> batch;
  batch.reserve(std::min(max_events, pending_.size()));
  auto it = pending_.begin();
  while (it != pending_.end() && batch.size() < max_events) {
    batch.push_back(make_event(it->first, it->second));
    committed_[it->first] = it->second;
    it = pending_.erase(it);
  }
  return batch;
}

}  // namespace remspan::serve
