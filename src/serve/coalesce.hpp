// Event coalescing for the multi-tenant service's ingestion path.
//
// DynamicGraph state is a set of independent boolean cells: one per stored
// edge and one per node's liveness. Every GraphEvent writes exactly one
// cell (edge up/down -> stored bit, node up/down -> liveness bit), writes
// to distinct cells commute, and a later write to the same cell fully
// overwrites an earlier one. Two exact consequences drive this module:
//
//   * last-write-wins: a stream of events is state-equivalent to one event
//     per touched cell carrying the stream's final kind for that cell
//     (coalesce_events — the stateless reduction, pinned bit-exact against
//     uncoalesced replay by tests/test_serve.cpp);
//   * annihilation: an event whose desired cell state equals the cell's
//     current state is a no-op and can be dropped entirely — in particular
//     an up immediately undone by a down (or vice versa) cancels out of
//     the queue instead of costing an IncrementalSpanner batch
//     (CoalescingQueue — the stateful per-tenant ingestion queue).
//
// CoalescingQueue tracks cell state at the queue level (initial snapshot +
// overrides for every cell it has ever handed out for application), so the
// service's admission/submit path never reads the tenant's DynamicGraph —
// which a worker thread may be mutating concurrently.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "graph/graph.hpp"

namespace remspan::serve {

/// The state cell a GraphEvent writes: an edge {u, v} in canonical order,
/// or a node's liveness (v == kInvalidNode). Ordering is lexicographic, so
/// a node cell sorts directly after the node's edge cells.
struct EventKey {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  [[nodiscard]] static EventKey of(const GraphEvent& e) {
    return e.v == kInvalidNode ? EventKey{e.u, kInvalidNode} : EventKey{e.u, e.v};
  }

  [[nodiscard]] bool is_edge() const noexcept { return v != kInvalidNode; }

  friend bool operator==(const EventKey&, const EventKey&) = default;
  friend auto operator<=>(const EventKey&, const EventKey&) = default;
};

/// The boolean cell state an event writes (up == true).
[[nodiscard]] constexpr bool event_state(GraphEventKind kind) noexcept {
  return kind == GraphEventKind::kEdgeUp || kind == GraphEventKind::kNodeUp;
}

/// The event writing `up` into `key`'s cell.
[[nodiscard]] GraphEvent make_event(const EventKey& key, bool up);

/// Stateless exact reduction: one event per touched cell, carrying the
/// stream's last kind for that cell, in sorted key order. Applying the
/// result to ANY DynamicGraph state produces the same final state as
/// applying the full stream in order (cells are independent; the last
/// write to a cell fully determines it).
[[nodiscard]] std::vector<GraphEvent> coalesce_events(std::span<const GraphEvent> events);

/// Per-tenant coalescing ingestion queue. Pending entries are exactly the
/// cells whose desired state differs from the queue-level current state,
/// so the queue depth is the true amount of outstanding work: duplicates
/// are suppressed on arrival and an up+down pair on the same cell
/// annihilates back to nothing. take_batch() extracts the first
/// `max_events` cells in key order and commits their desired states to the
/// queue-level view — applying every extracted batch in order to the
/// tenant's engine reproduces, bit-exact, the effect of the uncoalesced
/// submit stream.
///
/// Not internally synchronized: the owning tenant serializes access.
class CoalescingQueue {
 public:
  /// Queue over a tenant opened on `initial` (all nodes up, the snapshot's
  /// edges stored). The snapshot is immutable and shared — consulting it
  /// for cell defaults never races with engine mutation.
  explicit CoalescingQueue(std::shared_ptr<const Graph> initial);

  /// Outcome of one submit: how the queue depth changed and how many of
  /// the accepted events coalesced away instead of growing it.
  struct SubmitDelta {
    std::size_t events = 0;       ///< events submitted in this call
    std::size_t coalesced = 0;    ///< events - net queue growth (>= 0)
    std::int64_t net_growth = 0;  ///< pending-after minus pending-before
  };

  /// Folds `events` (applied in order) into the pending set.
  SubmitDelta submit(std::span<const GraphEvent> events);

  /// Pending cells (the queue depth admission control budgets against).
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }

  /// Extracts up to `max_events` pending cells in key order as a batch of
  /// GraphEvents and commits their states to the queue-level view.
  [[nodiscard]] std::vector<GraphEvent> take_batch(std::size_t max_events);

 private:
  /// Queue-level current state of a cell: the committed override if one
  /// exists, else the initial snapshot's state.
  [[nodiscard]] bool current_state(const EventKey& key) const;

  std::shared_ptr<const Graph> initial_;
  /// Cells ever extracted via take_batch, at their committed state.
  std::map<EventKey, bool> committed_;
  /// Cells whose desired state differs from current_state().
  std::map<EventKey, bool> pending_;
};

}  // namespace remspan::serve
