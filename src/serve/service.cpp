#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"

namespace remspan::serve {

const char* admission_name(Admission a) noexcept {
  switch (a) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kRetryAfter:
      return "retry_after";
    case Admission::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

/// All per-tenant state. Lock order service-wide: mu_ may be taken while
/// holding no tenant lock or by a thread that holds no tenant lock; a
/// tenant's mu is never held when taking mu_ (schedule() runs on the
/// atomic `queued` flag outside both).
struct SpannerService::Tenant {
  Tenant(std::string spec_string_in, std::unique_ptr<api::IncrementalSession> session_in)
      : spec_string(std::move(spec_string_in)),
        session(std::move(session_in)),
        queue(session->dynamic_graph().snapshot()) {
    SnapshotInfo info;
    info.epoch = 0;
    info.graph_version = session->dynamic_graph().version();
    snap.store(std::make_shared<const SpannerSnapshot>(session->dynamic_graph().snapshot(),
                                                       session->spanner().bits(), info),
               std::memory_order_release);
    stats.graph_version = info.graph_version;
    stats.spanner_edges = session->spanner().size();
  }

  TenantId id = kInvalidTenant;
  std::string spec_string;
  /// Engine + DynamicGraph. Touched only by the current drainer (the
  /// `draining` flag serializes), never under `mu`.
  std::unique_ptr<api::IncrementalSession> session;

  mutable std::mutex mu;  ///< queue, stats, draining/closing, journal
  CoalescingQueue queue;
  TenantStats stats;
  bool draining = false;
  bool closing = false;
  std::condition_variable drain_cv;  ///< signalled when a drain pass ends
  /// Scheduling flag: true while the tenant sits in (or is headed for) the
  /// ready ring. Outside `mu` so producers can flag without the lock.
  std::atomic<bool> queued{false};
  /// The published epoch. Readers load without any lock; only the current
  /// drainer stores (epoch-monotone by the single-drainer invariant).
  std::atomic<std::shared_ptr<const SpannerSnapshot>> snap;
  std::vector<std::vector<GraphEvent>> journal;
};

SpannerService::SpannerService(ServiceConfig config) : cfg_(config) {
  workers_.reserve(cfg_.worker_threads);
  for (std::size_t i = 0; i < cfg_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SpannerService::~SpannerService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::shared_ptr<SpannerService::Tenant> SpannerService::find(TenantId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    throw ServiceError("unknown tenant id " + std::to_string(id));
  }
  return it->second;
}

TenantId SpannerService::open_tenant(const Graph& initial, const std::string& spanner_spec) {
  // Validate the request before checking capacity: a malformed or
  // unsupported spec is the caller's fault however loaded the service is,
  // and must surface as SpecError, not a capacity ServiceError.
  const api::SpannerSpec spec = api::parse_spanner_spec(spanner_spec);
  if (!api::supports_incremental(spec)) {
    throw api::SpecError("construction '" + std::string(spec.kind_name()) +
                         "' has no incremental maintenance support");
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (tenants_.size() >= cfg_.max_tenants) {
      throw ServiceError("tenant capacity reached (" + std::to_string(cfg_.max_tenants) + ")");
    }
  }
  // The initial build is the expensive part; run it outside mu_ so opens
  // don't serialize against each other or against the data path.
  auto tenant =
      std::make_shared<Tenant>(spec.to_string(), api::open_incremental_session(initial, spec));
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (tenants_.size() >= cfg_.max_tenants) {
      throw ServiceError("tenant capacity reached (" + std::to_string(cfg_.max_tenants) + ")");
    }
    tenant->id = next_id_++;
    tenants_.emplace(tenant->id, tenant);
    ++tenants_opened_;
  }
  obs::count("serve.tenants_opened");
  obs::gauge_add("serve.tenants_live", 1);
  obs::count("serve.epochs_published");  // epoch 0
  return tenant->id;
}

void SpannerService::close_tenant(TenantId id) {
  auto tenant = find(id);
  {
    std::lock_guard<std::mutex> lk(tenant->mu);
    if (tenant->closing) throw ServiceError("tenant " + std::to_string(id) + " already closing");
    tenant->closing = true;  // submits start bouncing; drains keep going
  }
  flush_tenant(*tenant);  // graceful: publish everything already accepted
  {
    std::lock_guard<std::mutex> lk(mu_);
    tenants_.erase(id);
    ++tenants_closed_;
  }
  obs::count("serve.tenants_closed");
  obs::gauge_add("serve.tenants_live", -1);
}

bool SpannerService::has_tenant(TenantId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return tenants_.count(id) != 0;
}

std::vector<TenantId> SpannerService::tenants() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) out.push_back(id);
  return out;
}

std::string SpannerService::tenant_spec(TenantId id) const { return find(id)->spec_string; }

Admission SpannerService::submit(TenantId id, std::span<const GraphEvent> events) {
  auto tenant = find(id);
  Admission verdict = Admission::kAccepted;
  CoalescingQueue::SubmitDelta delta;
  {
    std::lock_guard<std::mutex> lk(tenant->mu);
    if (tenant->closing) {
      throw ServiceError("tenant " + std::to_string(id) + " is closing");
    }
    tenant->stats.events_submitted += events.size();
    const auto global_now = static_cast<std::size_t>(
        std::max<std::int64_t>(0, global_pending_.load(std::memory_order_relaxed)));
    if (tenant->queue.pending() + events.size() > cfg_.tenant_queue_budget) {
      ++tenant->stats.rejected_retry_after;
      verdict = Admission::kRetryAfter;
    } else if (global_now + events.size() > cfg_.global_queue_budget) {
      ++tenant->stats.rejected_overloaded;
      verdict = Admission::kOverloaded;
    } else {
      delta = tenant->queue.submit(events);
      global_pending_.fetch_add(delta.net_growth, std::memory_order_relaxed);
      tenant->stats.events_accepted += delta.events;
      tenant->stats.events_coalesced += delta.coalesced;
    }
  }
  obs::count("serve.events_submitted", events.size());
  if (verdict != Admission::kAccepted) {
    obs::count(verdict == Admission::kRetryAfter ? "serve.rejected_retry_after"
                                                 : "serve.rejected_overloaded");
    return verdict;
  }
  obs::count("serve.events_accepted", delta.events);
  obs::count("serve.events_coalesced", delta.coalesced);
  obs::gauge_set("serve.queue_depth", global_pending_.load(std::memory_order_relaxed));
  if (cfg_.worker_threads > 0) schedule(*tenant);
  return verdict;
}

void SpannerService::schedule(Tenant& t) {
  if (t.queued.exchange(true, std::memory_order_acq_rel)) return;  // already enqueued
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      t.queued.store(false, std::memory_order_release);
      return;
    }
    ready_.push_back(t.id);
  }
  work_cv_.notify_one();
}

void SpannerService::worker_loop() {
  for (;;) {
    std::shared_ptr<Tenant> tenant;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !ready_.empty(); });
      if (stop_) return;
      const TenantId id = ready_.front();
      ready_.pop_front();
      const auto it = tenants_.find(id);
      if (it == tenants_.end()) continue;  // evicted while queued
      tenant = it->second;
    }
    (void)drain_pass(*tenant);  // kBusy/kEmpty are fine: someone else owns it
  }
}

SpannerService::DrainResult SpannerService::drain_pass(Tenant& t) {
  std::vector<GraphEvent> batch;
  {
    std::lock_guard<std::mutex> lk(t.mu);
    // Clear the scheduling flag before extracting: any submit from here on
    // re-flags, so a batch left behind is always rescheduled by someone.
    t.queued.store(false, std::memory_order_release);
    if (t.draining) return DrainResult::kBusy;
    batch = t.queue.take_batch(cfg_.max_batch_events);
    if (batch.empty()) return DrainResult::kEmpty;
    t.draining = true;
  }
  const std::size_t applied = batch.size();
  global_pending_.fetch_sub(static_cast<std::int64_t>(applied), std::memory_order_relaxed);

  // Heavy phase, outside every lock: only this thread touches the engine
  // (single-drainer invariant), and readers keep serving the old epoch.
  std::shared_ptr<const SpannerSnapshot> next;
  {
    obs::PhaseSpan span("serve.publish_epoch", "serve");
    const ChurnBatchStats bs = t.session->apply_batch(batch);
    const auto prev = t.snap.load(std::memory_order_acquire);
    SnapshotInfo info;
    info.epoch = prev->epoch() + 1;
    info.graph_version = t.session->dynamic_graph().version();
    info.batches_applied = prev->info().batches_applied + 1;
    info.events_applied = prev->info().events_applied + applied;
    info.last_batch = bs;
    next = std::make_shared<const SpannerSnapshot>(t.session->dynamic_graph().snapshot(),
                                                   t.session->spanner().bits(), info);
  }

  bool more = false;
  {
    std::lock_guard<std::mutex> lk(t.mu);
    t.snap.store(next, std::memory_order_release);
    t.stats.epoch = next->epoch();
    t.stats.graph_version = next->info().graph_version;
    t.stats.events_applied += applied;
    t.stats.batches_applied += 1;
    t.stats.spanner_edges = next->num_spanner_edges();
    if (cfg_.record_journal) t.journal.push_back(std::move(batch));
    t.draining = false;
    more = !t.queue.empty();
    t.drain_cv.notify_all();
  }
  obs::count("serve.epochs_published");
  obs::count("serve.events_applied", applied);
  obs::record("serve.batch_events", applied);
  obs::gauge_set("serve.queue_depth", global_pending_.load(std::memory_order_relaxed));
  if (more && cfg_.worker_threads > 0) schedule(t);
  return DrainResult::kDrained;
}

void SpannerService::flush_tenant(Tenant& t) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(t.mu);
      t.drain_cv.wait(lk, [&] { return !t.draining; });
      if (t.queue.empty()) return;
    }
    // A worker may beat us to the batch (kBusy/kEmpty); the loop re-checks.
    (void)drain_pass(t);
  }
}

void SpannerService::flush(TenantId id) { flush_tenant(*find(id)); }

void SpannerService::drain() {
  std::vector<std::shared_ptr<Tenant>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    all.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) all.push_back(t);
  }
  for (const auto& t : all) flush_tenant(*t);
}

std::shared_ptr<const SpannerSnapshot> SpannerService::snapshot(TenantId id) const {
  return find(id)->snap.load(std::memory_order_acquire);
}

TenantStats SpannerService::tenant_stats(TenantId id) const {
  auto tenant = find(id);
  std::lock_guard<std::mutex> lk(tenant->mu);
  TenantStats out = tenant->stats;
  out.queue_depth = tenant->queue.pending();
  return out;
}

ServiceStats SpannerService::stats() const {
  ServiceStats s;
  std::vector<std::shared_ptr<Tenant>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.tenants_open = tenants_.size();
    s.tenants_opened = tenants_opened_;
    s.tenants_closed = tenants_closed_;
    all.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) all.push_back(t);
  }
  for (const auto& t : all) {
    std::lock_guard<std::mutex> lk(t->mu);
    s.queue_depth += t->queue.pending();
    s.epochs_published += t->stats.batches_applied + 1;  // + epoch 0
    s.events_submitted += t->stats.events_submitted;
    s.events_accepted += t->stats.events_accepted;
    s.events_coalesced += t->stats.events_coalesced;
    s.events_applied += t->stats.events_applied;
    s.batches_applied += t->stats.batches_applied;
    s.rejected_retry_after += t->stats.rejected_retry_after;
    s.rejected_overloaded += t->stats.rejected_overloaded;
  }
  return s;
}

std::vector<std::vector<GraphEvent>> SpannerService::journal(TenantId id) const {
  auto tenant = find(id);
  std::lock_guard<std::mutex> lk(tenant->mu);
  return tenant->journal;
}

}  // namespace remspan::serve
