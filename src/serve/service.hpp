// SpannerService: the long-lived multi-tenant serving layer over src/api.
//
// Each tenant is an open incremental-maintenance session addressed by a
// TenantId: a spec string, a DynamicGraph and the IncrementalSpanner
// maintaining that spec's remote-spanner over it (api::IncrementalSession),
// fronted by a CoalescingQueue on the write side and an epoch-tagged
// immutable SpannerSnapshot on the read side.
//
//   writers ──submit──▶ CoalescingQueue ──take_batch──▶ IncrementalSpanner
//                (admission control,        (one drainer per tenant,
//                 annihilation)              worker pool or caller thread)
//                                                    │ publish
//   readers ◀──snapshot()── atomic<shared_ptr<const SpannerSnapshot>>
//
// Concurrency contract:
//   * Readers never block on writers: snapshot() is a map lookup plus an
//     atomic shared_ptr load; every query then runs against the immutable
//     snapshot object, which stays valid for as long as the reader holds
//     it — across later epochs and even tenant eviction.
//   * Exactly one drainer works a tenant at a time (worker threads and
//     flush() callers coordinate through the tenant's `draining` flag), so
//     the engine and DynamicGraph are only ever touched single-threaded.
//     Different tenants drain fully in parallel.
//   * Epochs are published in order: epoch e+1's snapshot is stored after
//     batch e+1 is fully applied, so a reader that saw epoch e can only
//     ever move forward (monotonicity, pinned by tests/test_serve.cpp).
//
// Determinism contract: with worker_threads == 0 every drain happens
// synchronously inside submit()/flush()/drain() on the calling thread, so
// admission decisions, rejection counts and all published epochs are a
// pure function of the submit stream — the mode the bench's backpressure
// phase and the C ABI's deterministic tests rely on. With workers, the
// final drained state is still bit-exact (coalescing is order-insensitive
// per cell and batches serialize per tenant); only queue-depth-dependent
// admission outcomes and batch boundaries become timing-dependent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "serve/coalesce.hpp"
#include "serve/snapshot.hpp"

namespace remspan::serve {

using TenantId = std::uint32_t;
inline constexpr TenantId kInvalidTenant = ~TenantId{0};

/// Admission-control verdict of one submit.
enum class Admission : std::uint8_t {
  kAccepted = 0,
  kRetryAfter = 1,  ///< this tenant's queue budget is full — back off, retry
  kOverloaded = 2,  ///< the service-wide budget is full — shed load
};

[[nodiscard]] const char* admission_name(Admission a) noexcept;

struct ServiceConfig {
  /// Background drain threads. 0 = fully synchronous: submits drain their
  /// tenant inline and the service is deterministic (see header comment).
  std::size_t worker_threads = 0;
  std::size_t max_tenants = 256;
  /// Per-tenant pending-cell budget: a submit that would push the tenant's
  /// queue past this is rejected kRetryAfter.
  std::size_t tenant_queue_budget = 4096;
  /// Service-wide pending-cell budget: exceeded => kOverloaded.
  std::size_t global_queue_budget = 1u << 16;
  /// Max coalesced events per IncrementalSpanner batch (one epoch).
  std::size_t max_batch_events = 512;
  /// Record every applied coalesced batch per tenant — the replay journal
  /// the bit-exactness tests feed to a single-threaded IncrementalSession.
  bool record_journal = false;
};

/// Point-in-time per-tenant accounting (all cumulative unless noted).
struct TenantStats {
  std::uint64_t epoch = 0;
  std::uint64_t graph_version = 0;
  std::size_t queue_depth = 0;  ///< current pending cells (not cumulative)
  std::uint64_t events_submitted = 0;
  std::uint64_t events_accepted = 0;
  std::uint64_t events_coalesced = 0;  ///< accepted events absorbed before the engine
  std::uint64_t events_applied = 0;    ///< coalesced events the engine actually ran
  std::uint64_t batches_applied = 0;
  std::uint64_t rejected_retry_after = 0;
  std::uint64_t rejected_overloaded = 0;
  std::size_t spanner_edges = 0;
};

/// Service-wide aggregates (sums of TenantStats over open tenants, plus
/// lifetime totals that survive eviction).
struct ServiceStats {
  std::size_t tenants_open = 0;
  std::uint64_t tenants_opened = 0;  ///< lifetime
  std::uint64_t tenants_closed = 0;  ///< lifetime
  std::size_t queue_depth = 0;       ///< current global pending cells
  std::uint64_t epochs_published = 0;
  std::uint64_t events_submitted = 0;
  std::uint64_t events_accepted = 0;
  std::uint64_t events_coalesced = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t rejected_retry_after = 0;
  std::uint64_t rejected_overloaded = 0;
};

/// Service-layer failures (unknown tenant, capacity, closed handles).
/// Spec problems keep surfacing as api::SpecError.
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SpannerService {
 public:
  explicit SpannerService(ServiceConfig config = {});

  /// Stops the worker pool; queued-but-undrained events are dropped (call
  /// drain() first for a graceful wind-down). Snapshots handed to readers
  /// stay valid after destruction.
  ~SpannerService();

  SpannerService(const SpannerService&) = delete;
  SpannerService& operator=(const SpannerService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// Opens a tenant maintaining `spanner_spec` over `initial` and publishes
  /// its epoch-0 snapshot. Throws ServiceError at max_tenants, SpecError on
  /// bad specs or constructions without incremental support.
  [[nodiscard]] TenantId open_tenant(const Graph& initial, const std::string& spanner_spec);

  /// Graceful eviction: drains the tenant's pending events (publishing
  /// final epochs), then removes it. Readers holding its snapshots are
  /// unaffected. Throws ServiceError on unknown ids.
  void close_tenant(TenantId id);

  [[nodiscard]] bool has_tenant(TenantId id) const;
  [[nodiscard]] std::vector<TenantId> tenants() const;
  [[nodiscard]] std::string tenant_spec(TenantId id) const;

  /// Admission-controlled ingestion: folds `events` into the tenant's
  /// coalescing queue, or rejects the whole batch (all-or-nothing — a
  /// rejected batch changes no state except the rejection counter).
  Admission submit(TenantId id, std::span<const GraphEvent> events);

  /// Drains this tenant's queue to empty on the calling thread,
  /// cooperating with any worker currently on it.
  void flush(TenantId id);

  /// flush() over all tenants.
  void drain();

  /// The tenant's current epoch snapshot. Hold the pointer and query it
  /// freely; it never changes and never blocks the writer.
  [[nodiscard]] std::shared_ptr<const SpannerSnapshot> snapshot(TenantId id) const;

  [[nodiscard]] TenantStats tenant_stats(TenantId id) const;
  [[nodiscard]] ServiceStats stats() const;

  /// The applied coalesced batches, in order (record_journal only):
  /// replaying exactly these through a fresh single-threaded
  /// IncrementalSession reproduces the tenant's final state bit-exact.
  [[nodiscard]] std::vector<std::vector<GraphEvent>> journal(TenantId id) const;

 private:
  struct Tenant;

  [[nodiscard]] std::shared_ptr<Tenant> find(TenantId id) const;
  /// One drain pass outcome (see drain_pass).
  enum class DrainResult : std::uint8_t { kDrained, kEmpty, kBusy };
  DrainResult drain_pass(Tenant& t);
  void flush_tenant(Tenant& t);
  void schedule(Tenant& t);
  void worker_loop();

  ServiceConfig cfg_;
  mutable std::mutex mu_;  ///< tenants_ map, ready ring, lifetime counters
  std::map<TenantId, std::shared_ptr<Tenant>> tenants_;
  TenantId next_id_ = 0;
  std::uint64_t tenants_opened_ = 0;
  std::uint64_t tenants_closed_ = 0;
  std::deque<TenantId> ready_;
  std::condition_variable work_cv_;
  bool stop_ = false;
  /// Pending cells across all tenants (admission's global budget check).
  std::atomic<std::int64_t> global_pending_{0};
  std::vector<std::thread> workers_;
};

}  // namespace remspan::serve
