#include "dynamic/churn_trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>

namespace remspan {

namespace {

[[nodiscard]] std::uint64_t pack(NodeId a, NodeId b) noexcept {
  const Edge e = make_edge(a, b);
  return (std::uint64_t{e.u} << 32) | e.v;
}

/// Per-dimension bounding box of a point cloud — the deployment area the
/// mobility and outage models draw from.
struct BoundingBox {
  std::vector<double> lo;
  std::vector<double> hi;
};

[[nodiscard]] BoundingBox bounding_box(const PointSet& points) {
  REMSPAN_CHECK(points.size() > 0);
  BoundingBox box;
  box.lo.assign(points.dim(), 0.0);
  box.hi.assign(points.dim(), 0.0);
  for (std::size_t d = 0; d < points.dim(); ++d) {
    box.lo[d] = box.hi[d] = points.point(0)[d];
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < points.dim(); ++d) {
      box.lo[d] = std::min(box.lo[d], p[d]);
      box.hi[d] = std::max(box.hi[d], p[d]);
    }
  }
  return box;
}

}  // namespace

Graph ChurnTrace::initial_graph() const {
  GraphBuilder builder(num_nodes);
  builder.reserve(initial_edges.size());
  for (const Edge& e : initial_edges) builder.add_edge(e.u, e.v);
  return builder.build();
}

void write_churn_trace(std::ostream& out, const ChurnTrace& trace) {
  out << "churntrace 1\n";
  out << "nodes " << trace.num_nodes << "\n";
  out << "edges " << trace.initial_edges.size() << "\n";
  for (const Edge& e : trace.initial_edges) out << e.u << " " << e.v << "\n";
  out << "batches " << trace.batches.size() << "\n";
  for (const auto& batch : trace.batches) {
    out << "batch " << batch.size() << "\n";
    for (const GraphEvent& ev : batch) {
      switch (ev.kind) {
        case GraphEventKind::kEdgeUp:
          out << "e+ " << ev.u << " " << ev.v << "\n";
          break;
        case GraphEventKind::kEdgeDown:
          out << "e- " << ev.u << " " << ev.v << "\n";
          break;
        case GraphEventKind::kNodeUp:
          out << "n+ " << ev.u << "\n";
          break;
        case GraphEventKind::kNodeDown:
          out << "n- " << ev.u << "\n";
          break;
      }
    }
  }
}

ChurnTrace read_churn_trace(std::istream& in) {
  ChurnTrace trace;
  std::string tag;
  int trace_version = 0;
  REMSPAN_CHECK(static_cast<bool>(in >> tag >> trace_version));
  REMSPAN_CHECK(tag == "churntrace" && trace_version == 1);
  std::size_t num_edges = 0;
  REMSPAN_CHECK(static_cast<bool>(in >> tag >> trace.num_nodes) && tag == "nodes");
  REMSPAN_CHECK(static_cast<bool>(in >> tag >> num_edges) && tag == "edges");
  trace.initial_edges.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    REMSPAN_CHECK(static_cast<bool>(in >> u >> v));
    REMSPAN_CHECK(u < trace.num_nodes && v < trace.num_nodes && u != v);
    trace.initial_edges.push_back(make_edge(u, v));
  }
  std::size_t num_batches = 0;
  REMSPAN_CHECK(static_cast<bool>(in >> tag >> num_batches) && tag == "batches");
  trace.batches.resize(num_batches);
  for (auto& batch : trace.batches) {
    std::size_t num_events = 0;
    REMSPAN_CHECK(static_cast<bool>(in >> tag >> num_events) && tag == "batch");
    batch.reserve(num_events);
    for (std::size_t i = 0; i < num_events; ++i) {
      std::string op;
      NodeId u = 0;
      REMSPAN_CHECK(static_cast<bool>(in >> op >> u));
      REMSPAN_CHECK(u < trace.num_nodes);
      if (op == "n+") {
        batch.push_back(GraphEvent::node_up(u));
        continue;
      }
      if (op == "n-") {
        batch.push_back(GraphEvent::node_down(u));
        continue;
      }
      NodeId v = 0;
      REMSPAN_CHECK(static_cast<bool>(in >> v));
      REMSPAN_CHECK(v < trace.num_nodes && u != v);
      if (op == "e+") {
        batch.push_back(GraphEvent::edge_up(u, v));
      } else {
        REMSPAN_CHECK(op == "e-");
        batch.push_back(GraphEvent::edge_down(u, v));
      }
    }
  }
  return trace;
}

ChurnTrace random_edge_churn_trace(const Graph& g, std::size_t num_batches,
                                   std::size_t events_per_batch, double node_event_fraction,
                                   std::uint64_t seed) {
  REMSPAN_CHECK(g.num_edges() > 0);
  REMSPAN_CHECK(node_event_fraction >= 0.0 && node_event_fraction <= 1.0);
  Rng rng(seed);
  ChurnTrace trace;
  trace.num_nodes = g.num_nodes();
  trace.initial_edges.assign(g.edges().begin(), g.edges().end());
  trace.batches.resize(num_batches);

  std::unordered_set<std::uint64_t> down_edges;
  std::vector<std::uint8_t> up(g.num_nodes(), 1);
  for (auto& batch : trace.batches) {
    batch.reserve(events_per_batch);
    for (std::size_t i = 0; i < events_per_batch; ++i) {
      if (rng.bernoulli(node_event_fraction)) {
        const auto v = static_cast<NodeId>(rng.uniform(g.num_nodes()));
        batch.push_back(up[v] != 0 ? GraphEvent::node_down(v) : GraphEvent::node_up(v));
        up[v] ^= 1;
        continue;
      }
      const Edge e = g.edge(static_cast<EdgeId>(rng.uniform(g.num_edges())));
      const std::uint64_t key = pack(e.u, e.v);
      if (down_edges.erase(key) > 0) {
        batch.push_back(GraphEvent::edge_up(e.u, e.v));
      } else {
        down_edges.insert(key);
        batch.push_back(GraphEvent::edge_down(e.u, e.v));
      }
    }
  }
  return trace;
}

ChurnTrace mobility_churn_trace(const GeometricGraph& gg, std::size_t num_batches,
                                std::size_t movers_per_batch, std::uint64_t seed) {
  const NodeId n = gg.graph.num_nodes();
  REMSPAN_CHECK(n >= 2 && movers_per_batch >= 1);
  Rng rng(seed);
  ChurnTrace trace;
  trace.num_nodes = n;
  trace.initial_edges.assign(gg.graph.edges().begin(), gg.graph.edges().end());
  trace.batches.resize(num_batches);

  const BoundingBox box = bounding_box(gg.points);
  const std::size_t dim = gg.points.dim();
  std::vector<double> coords(static_cast<std::size_t>(n) * dim);
  for (NodeId v = 0; v < n; ++v) {
    const auto p = gg.points.point(v);
    std::copy(p.begin(), p.end(), coords.begin() + static_cast<std::size_t>(v) * dim);
  }
  const auto point_of = [&](NodeId v) {
    return std::span<const double>{coords.data() + static_cast<std::size_t>(v) * dim, dim};
  };

  std::unordered_set<std::uint64_t> live;
  live.reserve(gg.graph.num_edges() * 2);
  for (const Edge& e : gg.graph.edges()) live.insert(pack(e.u, e.v));

  for (auto& batch : trace.batches) {
    auto movers = rng.sample_without_replacement(n, std::min<std::uint64_t>(movers_per_batch, n));
    std::sort(movers.begin(), movers.end());
    for (const std::uint64_t m : movers) {
      for (std::size_t d = 0; d < dim; ++d) {
        coords[m * dim + d] = rng.uniform_real(box.lo[d], box.hi[d]);
      }
    }
    // Re-derive every mover's unit ball against the post-move positions.
    // Movers are processed in id order and the live set is updated as
    // events are emitted, so shared mover-mover edges appear exactly once.
    for (const std::uint64_t m : movers) {
      const auto v = static_cast<NodeId>(m);
      for (NodeId w = 0; w < n; ++w) {
        if (w == v) continue;
        const bool should =
            metric_distance(gg.metric, point_of(v), point_of(w)) <= gg.radius;
        const std::uint64_t key = pack(v, w);
        if (should && live.insert(key).second) {
          batch.push_back(GraphEvent::edge_up(v, w));
        } else if (!should && live.erase(key) > 0) {
          batch.push_back(GraphEvent::edge_down(v, w));
        }
      }
    }
  }
  return trace;
}

ChurnTrace region_outage_trace(const GeometricGraph& gg, std::size_t num_outages,
                               double region_radius, std::uint64_t seed) {
  const NodeId n = gg.graph.num_nodes();
  REMSPAN_CHECK(n >= 2 && region_radius > 0.0);
  Rng rng(seed);
  ChurnTrace trace;
  trace.num_nodes = n;
  trace.initial_edges.assign(gg.graph.edges().begin(), gg.graph.edges().end());
  trace.batches.reserve(2 * num_outages);

  const BoundingBox box = bounding_box(gg.points);
  const std::size_t dim = gg.points.dim();
  std::vector<double> center(dim, 0.0);
  std::vector<std::uint8_t> in_region(n, 0);
  for (std::size_t o = 0; o < num_outages; ++o) {
    for (std::size_t d = 0; d < dim; ++d) {
      center[d] = rng.uniform_real(box.lo[d], box.hi[d]);
    }
    for (NodeId v = 0; v < n; ++v) {
      in_region[v] =
          metric_distance(gg.metric, {center.data(), dim}, gg.points.point(v)) <= region_radius
              ? 1
              : 0;
    }
    std::vector<GraphEvent> outage;
    std::vector<GraphEvent> recovery;
    for (const Edge& e : gg.graph.edges()) {
      if (in_region[e.u] != 0 && in_region[e.v] != 0) {
        outage.push_back(GraphEvent::edge_down(e.u, e.v));
        recovery.push_back(GraphEvent::edge_up(e.u, e.v));
      }
    }
    trace.batches.push_back(std::move(outage));
    trace.batches.push_back(std::move(recovery));
  }
  return trace;
}

}  // namespace remspan
