// IncrementalSpanner: maintains a remote-spanner across a stream of graph
// updates without rebuilding from scratch.
//
// The locality that makes the per-root dominating trees embarrassingly
// parallel also makes them incrementally maintainable: the tree of root u
// is a deterministic function of the edges with an endpoint at BFS depth
// <= dirty_radius() from u (the shells to depth max(r, r-1+beta) are fixed
// by edges with an endpoint below that depth, and every cover/attachment
// scan only reads edges incident to a candidate or tree node, all at depth
// <= r-1+beta). An edge flip {a,b} can therefore only change trees whose
// root lies within dirty_radius() = max(1, r+beta-1) of a or b (at old
// distances for removals, new ones for insertions). Per batch of updates
// the engine
//
//   1. diffs the old and new snapshots (diff_graphs: exact edge delta plus
//      the old-id -> new-id map),
//   2. expands the dirty-root set with one multi-source bounded BFS of
//      radius dirty_radius() from the touched endpoints in each snapshot,
//   3. retires the dirty roots' old tree edges from a per-edge refcount
//      union (refcount = how many roots' trees currently contain the edge),
//      remaps the surviving refcounts into the new edge-id space,
//   4. re-runs only the dirty roots' tree builds on the thread pool and
//      re-adds their edges, and
//   5. re-derives the spanner bitset as {e : refcount[e] > 0}.
//
// Equivalence guarantee: after every batch the maintained spanner is
// bit-exact equal to a from-scratch build on the same snapshot
// (tests/test_incremental_spanner.cpp pins this across graph families,
// seeds, parameters and batch sizes). Clean roots' trees cannot have
// changed — every changed edge has both endpoints beyond dirty_radius()
// from their root in both snapshots, so everything their deterministic
// tree build reads is identical.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/dominating_tree.hpp"
#include "core/remote_spanner.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/bfs.hpp"
#include "graph/edge_set.hpp"

namespace remspan {

/// Which spanner construction the engine maintains; mirrors the three
/// theorem front-ends of core/remote_spanner.hpp.
struct IncrementalConfig {
  enum class Construction {
    kRBetaTree,     ///< union of (r, beta)-dominating trees (Theorem 1 shape)
    kKConnecting,   ///< k-connecting (1,0), greedy k-cover trees (Theorem 2)
    k2Connecting,   ///< k-connecting (2,1) trees via k MIS rounds (Theorem 3)
  };

  Construction construction = Construction::kKConnecting;
  TreeAlgorithm algo = TreeAlgorithm::kGreedy;  ///< tree backend for kRBetaTree
  Dist r = 2;     ///< domination radius (kRBetaTree)
  Dist beta = 0;  ///< domination slack (kRBetaTree; MIS requires beta = 1)
  Dist k = 1;     ///< connectivity target (kKConnecting / k2Connecting)

  [[nodiscard]] static IncrementalConfig r_beta_tree(Dist r, Dist beta, TreeAlgorithm algo);
  /// Theorem 1 front-end: (1+eps, 1-2eps)-remote-spanner.
  [[nodiscard]] static IncrementalConfig low_stretch(double eps,
                                                     TreeAlgorithm algo = TreeAlgorithm::kMis);
  /// Theorem 2 front-end: k-connecting (1,0)-remote-spanner.
  [[nodiscard]] static IncrementalConfig k_connecting(Dist k);
  /// Theorem 3 front-end: k-connecting (2,-1)-remote-spanner.
  [[nodiscard]] static IncrementalConfig two_connecting(Dist k = 2);

  /// A changed edge can only affect roots within this distance of one of
  /// its endpoints: max(1, r + beta - 1), the exact dependency radius of
  /// the per-root tree builds (r = 2 for the distance-2 shell
  /// constructions — radius 1 for the greedy k-cover, whose relay picks
  /// never read edges between two shell-2 nodes).
  [[nodiscard]] Dist dirty_radius() const noexcept;

  /// Runs the configured per-root tree algorithm.
  [[nodiscard]] RootedTree build_tree(DomTreeBuilder& builder, NodeId root) const;

  /// The matching from-scratch construction (the equivalence oracle).
  [[nodiscard]] EdgeSet build_full(const Graph& g, SpannerBuildInfo* info = nullptr) const;

  [[nodiscard]] const char* name() const noexcept;
};

/// Computes the sorted set of roots within `radius` hops of a touched
/// endpoint in either snapshot (removals dirty roots at old distances,
/// insertions at new ones) with one multi-source bounded BFS per snapshot.
///
/// This is the locality primitive shared by the whole dynamic stack: the
/// IncrementalSpanner rebuilds exactly these roots' trees per batch, and
/// the protocol-level ReconvergenceSim (src/sim/reconvergence.hpp) scopes
/// re-advertisement to the same set — with radius = flood scope, these are
/// precisely the nodes whose B(u, scope) topology knowledge may have
/// changed.
///
/// @param old_graph  Snapshot before the batch (same node universe as new).
/// @param new_graph  Snapshot after the batch.
/// @param touched    Endpoints of the changed edges (touched_endpoints()).
/// @param radius     Ball radius of the expansion, in hops.
/// @param bfs        Scratch BFS sized to the node universe (reused across
///                   batches to avoid reallocation).
/// @param flag       Scratch per-node byte vector; resized/cleared inside.
/// @return           Dirty roots in increasing node-id order.
[[nodiscard]] std::vector<NodeId> collect_dirty_roots(const Graph& old_graph,
                                                      const Graph& new_graph,
                                                      std::span<const NodeId> touched, Dist radius,
                                                      BoundedBfs& bfs,
                                                      std::vector<std::uint8_t>& flag);

/// Per-side variant — the decremental/incremental fast path: expands
/// `removed_touched` only in the OLD snapshot and `inserted_touched` only
/// in the NEW one. Exact by the same dependency argument as above, one
/// direction each:
///   * a root w clean under this seeding reads no removed edge (it would
///     need an endpoint within `radius` at old distances) and no inserted
///     edge (within `radius` at new distances);
///   * therefore every <= radius path from w in either snapshot uses only
///     common edges — a new-snapshot shortcut into w's ball would put an
///     inserted endpoint inside it — so the two balls and everything the
///     deterministic tree build reads coincide, and w's tree is unchanged.
/// A removal-only batch thus costs ONE bounded BFS (the new-graph side has
/// no seeds), an insertion-only batch likewise, and mixed batches get a
/// strictly smaller dirty set than the symmetric expansion.
///
/// NOTE an edge removal outside every stored tree (union refcount 0) does
/// NOT permit skipping its ball: the greedy/MIS builds read non-tree edges
/// through their cover/independence scans, and removing one can flip a
/// pick (tests/test_incremental_spanner.cpp pins a counterexample). The
/// ROADMAP's stronger "refcount-0 removal needs no rebuild" conjecture is
/// refuted — this per-side expansion is the exact sound fast path.
[[nodiscard]] std::vector<NodeId> collect_dirty_roots_split(
    const Graph& old_graph, const Graph& new_graph, std::span<const NodeId> removed_touched,
    std::span<const NodeId> inserted_touched, Dist radius, BoundedBfs& bfs,
    std::vector<std::uint8_t>& flag);

/// Per-batch accounting, reported by bench_churn and the remspan_tool
/// churn-replay mode.
struct ChurnBatchStats {
  std::uint64_t version = 0;        ///< DynamicGraph version after the batch
  std::size_t applied_events = 0;   ///< events that actually changed state
  std::size_t inserted_edges = 0;   ///< live-edge insertions vs previous snapshot
  std::size_t removed_edges = 0;    ///< live-edge removals vs previous snapshot
  std::size_t touched_nodes = 0;    ///< endpoints seeding the dirty expansion
  std::size_t dirty_roots = 0;      ///< roots whose trees were rebuilt
  std::size_t retired_tree_edges = 0;  ///< tree edges dropped from the refcount union
  std::size_t rebuilt_tree_edges = 0;  ///< tree edges re-added by the rebuilds
  std::size_t spanner_edges = 0;    ///< |H| after the batch
  double seconds = 0.0;             ///< wall time of the whole batch
};

class IncrementalSpanner {
 public:
  /// Builds the full spanner on the dynamic graph's current snapshot,
  /// recording every root's tree edges and the per-edge refcounts. The
  /// DynamicGraph must outlive the engine.
  IncrementalSpanner(DynamicGraph& graph, IncrementalConfig config);

  [[nodiscard]] const IncrementalConfig& config() const noexcept { return config_; }

  /// The snapshot the maintained spanner refers to.
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// The maintained remote-spanner over graph().
  [[nodiscard]] const EdgeSet& spanner() const noexcept { return spanner_; }

  /// Applies a batch of updates to the dynamic graph and patches the
  /// spanner. Safe to call with an empty or all-no-op batch.
  ChurnBatchStats apply_batch(std::span<const GraphEvent> events);

  /// Roots rebuilt by the last apply_batch (sorted). A superset of the
  /// roots whose trees actually changed — tests assert both directions.
  [[nodiscard]] const std::vector<NodeId>& last_dirty_roots() const noexcept { return dirty_; }

  /// How many roots' trees currently contain edge `id` (current snapshot's
  /// id space). The spanner contains exactly the edges with refcount > 0.
  [[nodiscard]] std::uint32_t edge_refcount(EdgeId id) const {
    REMSPAN_CHECK(id < ref_.size());
    return ref_[id];
  }

  /// Current dominating-tree edges of `root` as canonical node pairs.
  [[nodiscard]] const std::vector<Edge>& tree_edges(NodeId root) const {
    REMSPAN_CHECK(root < trees_.size());
    return trees_[root];
  }

 private:
  void full_build();
  void rebuild_spanner_bits();

  DynamicGraph* dynamic_;
  IncrementalConfig config_;
  std::shared_ptr<const Graph> graph_;
  std::uint64_t version_ = 0;
  /// Per-root tree edges as node pairs: stable across snapshots, so clean
  /// roots carry zero per-batch cost (edge ids would need remapping).
  std::vector<std::vector<Edge>> trees_;
  /// Per-edge tree refcount in the current snapshot's id space. Updated
  /// concurrently (std::atomic_ref) during the retire/rebuild phases.
  std::vector<std::uint32_t> ref_;
  EdgeSet spanner_;
  std::vector<std::unique_ptr<DomTreeBuilder>> builders_;
  std::vector<NodeId> dirty_;
  std::vector<std::uint8_t> dirty_flag_;
  BoundedBfs dirty_bfs_;
};

}  // namespace remspan
