#include "dynamic/incremental_spanner.hpp"

#include <algorithm>
#include <atomic>

#include "graph/views.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

IncrementalConfig IncrementalConfig::r_beta_tree(Dist r, Dist beta, TreeAlgorithm algo) {
  REMSPAN_CHECK(r >= 2);
  if (algo == TreeAlgorithm::kMis) REMSPAN_CHECK(beta == 1);
  IncrementalConfig cfg;
  cfg.construction = Construction::kRBetaTree;
  cfg.algo = algo;
  cfg.r = r;
  cfg.beta = beta;
  return cfg;
}

IncrementalConfig IncrementalConfig::low_stretch(double eps, TreeAlgorithm algo) {
  return r_beta_tree(domination_radius_for_eps(eps), 1, algo);
}

IncrementalConfig IncrementalConfig::k_connecting(Dist k) {
  REMSPAN_CHECK(k >= 1);
  IncrementalConfig cfg;
  cfg.construction = Construction::kKConnecting;
  cfg.r = 2;
  cfg.beta = 0;
  cfg.k = k;
  return cfg;
}

IncrementalConfig IncrementalConfig::two_connecting(Dist k) {
  REMSPAN_CHECK(k >= 1);
  IncrementalConfig cfg;
  cfg.construction = Construction::k2Connecting;
  cfg.r = 2;
  cfg.beta = 1;
  cfg.k = k;
  return cfg;
}

Dist IncrementalConfig::dirty_radius() const noexcept {
  // Exact dependency radius of the per-root tree builds, max over what the
  // algorithms actually read (see the header comment): the BFS shells to
  // depth D = max(r, r-1+beta) depend on edges with an endpoint at depth
  // <= D-1, and every cover/attachment scan reads edges with an endpoint at
  // depth <= r-1+beta (a candidate or tree node). For the k-connecting
  // greedy (r=2, beta=0) this collapses to 1: only edges touching
  // {u} ∪ N(u) influence relay selection — shell-2-to-shell-2 edges are
  // never read.
  return std::max<Dist>(1, r + beta - 1);
}

RootedTree IncrementalConfig::build_tree(DomTreeBuilder& builder, NodeId root) const {
  switch (construction) {
    case Construction::kRBetaTree:
      return algo == TreeAlgorithm::kMis ? builder.mis(root, r) : builder.greedy(root, r, beta);
    case Construction::kKConnecting:
      return builder.greedy_k(root, k);
    case Construction::k2Connecting:
      return builder.mis_k(root, k);
  }
  detail::check_failed("unknown IncrementalConfig::Construction", std::source_location::current());
}

EdgeSet IncrementalConfig::build_full(const Graph& g, SpannerBuildInfo* info) const {
  switch (construction) {
    case Construction::kRBetaTree:
      return build_remote_spanner(g, r, beta, algo, info);
    case Construction::kKConnecting:
      return build_k_connecting_spanner(g, k, info);
    case Construction::k2Connecting:
      return build_2connecting_spanner(g, k, info);
  }
  detail::check_failed("unknown IncrementalConfig::Construction", std::source_location::current());
}

const char* IncrementalConfig::name() const noexcept {
  switch (construction) {
    case Construction::kRBetaTree:
      return algo == TreeAlgorithm::kMis ? "r-beta (mis)" : "r-beta (greedy)";
    case Construction::kKConnecting:
      return "k-connecting (1,0)";
    case Construction::k2Connecting:
      return "k-connecting (2,1)";
  }
  return "?";
}

std::vector<NodeId> collect_dirty_roots(const Graph& old_graph, const Graph& new_graph,
                                        std::span<const NodeId> touched, Dist radius,
                                        BoundedBfs& bfs, std::vector<std::uint8_t>& flag) {
  return collect_dirty_roots_split(old_graph, new_graph, touched, touched, radius, bfs, flag);
}

std::vector<NodeId> collect_dirty_roots_split(const Graph& old_graph, const Graph& new_graph,
                                              std::span<const NodeId> removed_touched,
                                              std::span<const NodeId> inserted_touched,
                                              Dist radius, BoundedBfs& bfs,
                                              std::vector<std::uint8_t>& flag) {
  REMSPAN_CHECK(old_graph.num_nodes() == new_graph.num_nodes());
  flag.assign(old_graph.num_nodes(), 0);
  // Per-side expansion cost: how many nodes each dependency-ball sweep
  // visits is the telemetry that tells removal-heavy from insertion-heavy
  // batches apart (docs/OBSERVABILITY.md).
  obs::Registry* m = obs::metrics();
  if (!removed_touched.empty()) {
    const std::vector<NodeId>& old_ball =
        bfs.run_multi(GraphView(old_graph), removed_touched, radius);
    if (m != nullptr) m->counter("inc.expand_old_nodes").add(old_ball.size());
    for (const NodeId v : old_ball) flag[v] = 1;
  }
  if (!inserted_touched.empty()) {
    const std::vector<NodeId>& new_ball =
        bfs.run_multi(GraphView(new_graph), inserted_touched, radius);
    if (m != nullptr) m->counter("inc.expand_new_nodes").add(new_ball.size());
    for (const NodeId v : new_ball) flag[v] = 1;
  }
  std::vector<NodeId> dirty;
  for (NodeId v = 0; v < flag.size(); ++v) {
    if (flag[v] != 0) dirty.push_back(v);
  }
  return dirty;
}

namespace {

/// Records one built tree: stores its edges as canonical node pairs into
/// `out` and bumps the shared refcounts through its recorded parent-edge
/// ids (valid in the graph the tree was built on).
std::size_t record_tree(const RootedTree& tree, std::vector<Edge>& out,
                        std::vector<std::uint32_t>& ref) {
  out.clear();
  for (const NodeId v : tree.nodes()) {
    if (v == tree.root()) continue;
    out.push_back(make_edge(v, tree.parent(v)));
    const EdgeId id = tree.parent_edge(v);
    REMSPAN_CHECK(id != kInvalidEdge);
    std::atomic_ref<std::uint32_t>(ref[id]).fetch_add(1, std::memory_order_relaxed);
  }
  return out.size();
}

}  // namespace

IncrementalSpanner::IncrementalSpanner(DynamicGraph& graph, IncrementalConfig config)
    : dynamic_(&graph),
      config_(config),
      graph_(graph.snapshot()),
      version_(graph.version()),
      spanner_(*graph_),
      dirty_flag_(graph.num_nodes(), 0),
      dirty_bfs_(graph.num_nodes()) {
  builders_.resize(ThreadPool::global().concurrency());
  full_build();
}

void IncrementalSpanner::full_build() {
  const Graph& g = *graph_;
  trees_.assign(g.num_nodes(), {});
  ref_.assign(g.num_edges(), 0);
  for (auto& b : builders_) {
    if (b == nullptr) {
      b = std::make_unique<DomTreeBuilder>(g);
    } else {
      b->rebind(g);
    }
  }
  ThreadPool::global().parallel_for_workers(
      0, g.num_nodes(), [&](std::size_t root, std::size_t worker) {
        const RootedTree tree = config_.build_tree(*builders_[worker], static_cast<NodeId>(root));
        record_tree(tree, trees_[root], ref_);
      });
  rebuild_spanner_bits();
}

void IncrementalSpanner::rebuild_spanner_bits() {
  DynamicBitset bits(graph_->num_edges());
  for (EdgeId id = 0; id < ref_.size(); ++id) {
    if (ref_[id] > 0) bits.set(id);
  }
  spanner_ = EdgeSet(*graph_, std::move(bits));
}

ChurnBatchStats IncrementalSpanner::apply_batch(std::span<const GraphEvent> events) {
  obs::PhaseSpan span("inc.apply_batch", "dynamic");
  ChurnBatchStats stats;
  stats.applied_events = dynamic_->apply_all(events);
  stats.version = dynamic_->version();
  dirty_.clear();

  const std::shared_ptr<const Graph> old_graph = graph_;
  const std::shared_ptr<const Graph> new_graph = dynamic_->snapshot();
  const GraphDelta delta = diff_graphs(*old_graph, *new_graph);
  if (delta.empty()) {
    // No live-topology change (all no-ops, or updates masked by down
    // nodes): the spanner — and the old snapshot's id space — stand as-is.
    stats.spanner_edges = spanner_.size();
    stats.seconds = span.seconds();
    version_ = stats.version;
    if (obs::Registry* m = obs::metrics()) m->counter("inc.noop_batches").add(1);
    return stats;
  }
  stats.removed_edges = delta.removed.size();
  stats.inserted_edges = delta.inserted.size();

  // Dirty roots, one bounded BFS per side with a changed edge: removals
  // matter at OLD distances (the stored trees read them there), insertions
  // at NEW ones. A removal-only batch — the decremental fast path — costs
  // a single old-snapshot BFS and an insertion-only batch the mirror; see
  // collect_dirty_roots_split for why the per-side expansion stays exact.
  const std::vector<NodeId> touched = touched_endpoints(delta);
  stats.touched_nodes = touched.size();
  dirty_ = collect_dirty_roots_split(*old_graph, *new_graph, removed_endpoints(delta),
                                     inserted_endpoints(delta), config_.dirty_radius(),
                                     dirty_bfs_, dirty_flag_);
  stats.dirty_roots = dirty_.size();

  auto& pool = ThreadPool::global();

  // Phase 1 — retire: drop the dirty roots' old tree edges from the
  // refcount union (still in the old snapshot's id space; the stored node
  // pairs resolve through the old adjacency).
  std::atomic<std::size_t> retired{0};
  pool.parallel_for(0, dirty_.size(), [&](std::size_t i) {
    const NodeId root = dirty_[i];
    for (const Edge& e : trees_[root]) {
      const EdgeId id = old_graph->find_edge(e.u, e.v);
      REMSPAN_CHECK(id != kInvalidEdge);
      std::atomic_ref<std::uint32_t>(ref_[id]).fetch_sub(1, std::memory_order_relaxed);
    }
    retired.fetch_add(trees_[root].size(), std::memory_order_relaxed);
  });
  stats.retired_tree_edges = retired.load();

  // Every tree is contained in its root's dirty ball, so a removed edge
  // can only have been owned by dirty roots — all retired by now. A
  // nonzero count here would mean the dirty set missed an owner.
  for (const EdgeId old_id : delta.removed_old_ids) {
    REMSPAN_CHECK(ref_[old_id] == 0);
  }

  // Phase 2 — remap the surviving refcounts into the new id space.
  std::vector<std::uint32_t> new_ref(new_graph->num_edges(), 0);
  for (EdgeId old_id = 0; old_id < ref_.size(); ++old_id) {
    const EdgeId new_id = delta.old_to_new[old_id];
    if (new_id != kInvalidEdge) new_ref[new_id] = ref_[old_id];
  }
  ref_ = std::move(new_ref);

  // Phase 3 — rebuild the dirty roots' trees against the new snapshot on
  // the pool, re-adding their edges to the refcount union.
  for (auto& b : builders_) b->rebind(*new_graph);
  std::atomic<std::size_t> rebuilt{0};
  pool.parallel_for_workers(0, dirty_.size(), [&](std::size_t i, std::size_t worker) {
    const NodeId root = dirty_[i];
    const RootedTree tree = config_.build_tree(*builders_[worker], root);
    rebuilt.fetch_add(record_tree(tree, trees_[root], ref_), std::memory_order_relaxed);
  });
  stats.rebuilt_tree_edges = rebuilt.load();

  // Phase 4 — publish: the spanner is exactly the positively-refcounted
  // edge set over the new snapshot.
  graph_ = new_graph;
  version_ = stats.version;
  rebuild_spanner_bits();
  stats.spanner_edges = spanner_.size();
  stats.seconds = span.seconds();
  if (obs::Registry* m = obs::metrics()) {
    m->counter("inc.batches").add(1);
    m->counter("inc.dirty_roots").add(stats.dirty_roots);
    m->counter("inc.retired_tree_edges").add(stats.retired_tree_edges);
    m->counter("inc.rebuilt_tree_edges").add(stats.rebuilt_tree_edges);
    // Refcount churn: every retire is one fetch_sub, every rebuilt tree
    // edge one fetch_add on the shared per-edge refcounts.
    m->counter("inc.refcount_churn").add(stats.retired_tree_edges + stats.rebuilt_tree_edges);
    m->histogram("inc.dirty_roots_per_batch").record(stats.dirty_roots);
  }
  return stats;
}

}  // namespace remspan
