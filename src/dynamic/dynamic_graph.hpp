// DynamicGraph: the mutable update layer under the immutable CSR Graph.
//
// Remote-spanner workloads are never frozen: links fade, nodes move, radios
// die. DynamicGraph keeps the evolving topology as a set of stored edges
// over a fixed node universe plus a per-node liveness mask, and hands out
// versioned immutable snapshots (ordinary Graph objects in canonical CSR
// form) that the rest of the library — builders, oracles, benches — consumes
// unchanged. diff_graphs() computes the exact edge delta between two
// snapshots together with the old-id -> new-id mapping, which is what lets
// IncrementalSpanner carry per-edge state (refcounts, spanner bits) across
// snapshots whose edge ids shifted.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// One topology update. Edge events carry both endpoints; node events only
/// `u` (v stays kInvalidNode).
enum class GraphEventKind : std::uint8_t { kEdgeUp, kEdgeDown, kNodeUp, kNodeDown };

struct GraphEvent {
  GraphEventKind kind = GraphEventKind::kEdgeUp;
  NodeId u = kInvalidNode;  ///< canonical lower endpoint (or the node, for node events)
  NodeId v = kInvalidNode;  ///< canonical upper endpoint (kInvalidNode for node events)

  [[nodiscard]] static GraphEvent edge_up(NodeId a, NodeId b) {
    const Edge e = make_edge(a, b);
    return {GraphEventKind::kEdgeUp, e.u, e.v};
  }
  [[nodiscard]] static GraphEvent edge_down(NodeId a, NodeId b) {
    const Edge e = make_edge(a, b);
    return {GraphEventKind::kEdgeDown, e.u, e.v};
  }
  [[nodiscard]] static GraphEvent node_up(NodeId a) {
    return {GraphEventKind::kNodeUp, a, kInvalidNode};
  }
  [[nodiscard]] static GraphEvent node_down(NodeId a) {
    return {GraphEventKind::kNodeDown, a, kInvalidNode};
  }

  friend bool operator==(const GraphEvent&, const GraphEvent&) = default;
};

class DynamicGraph {
 public:
  /// Empty topology over a fixed node universe [0, num_nodes), all nodes up.
  explicit DynamicGraph(NodeId num_nodes);

  /// Adopts an existing graph as the initial topology (all nodes up).
  explicit DynamicGraph(const Graph& initial);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

  /// Whether v is currently up. Down nodes keep their stored edges; every
  /// incident link is simply masked out of snapshots until the node
  /// returns (the ad-hoc radio model: a rebooting node regains its old
  /// neighborhood if nobody moved).
  [[nodiscard]] bool node_up(NodeId v) const {
    REMSPAN_CHECK(v < n_);
    return up_[v] != 0;
  }

  /// Whether the edge {a,b} is stored (regardless of endpoint liveness).
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  /// Stored edges (live and masked).
  [[nodiscard]] std::size_t num_stored_edges() const noexcept { return stored_edges_; }

  /// Bumped every time apply() changes stored state; snapshots are cached
  /// per version, so repeated snapshot() calls between updates are free.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Applies one event. Returns whether the stored state changed (re-adding
  /// a present edge, dropping an absent one, and re-toggling liveness are
  /// all idempotent no-ops). Endpoints must be in range; edge events must
  /// not be self-loops.
  bool apply(const GraphEvent& event);

  /// Applies a batch in order; returns how many events changed state.
  std::size_t apply_all(std::span<const GraphEvent> events);

  /// Immutable CSR snapshot of the live topology: stored edges whose two
  /// endpoints are both up, in canonical order. The result is cached until
  /// the next state change; the shared_ptr keeps a snapshot valid for as
  /// long as any consumer (e.g. an EdgeSet over it) still holds it.
  ///
  /// Snapshots are maintained incrementally: the previous snapshot's
  /// canonical edge list is merge-patched with the (typically small) set of
  /// edges whose live state may have changed since, so taking a snapshot
  /// after a batch of b updates costs O(m + b log b) with a tiny constant —
  /// not a hash-iteration plus a full O(m log m) re-sort.
  [[nodiscard]] std::shared_ptr<const Graph> snapshot() const;

 private:
  [[nodiscard]] bool edge_live(const Edge& e) const;

  NodeId n_ = 0;
  /// Stored adjacency (sorted rows), liveness-agnostic.
  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::uint8_t> up_;
  std::size_t stored_edges_ = 0;
  std::uint64_t version_ = 0;
  /// Edges / nodes whose events arrived since the last materialized
  /// snapshot — the merge-patch candidates (cleared by snapshot()).
  mutable std::vector<Edge> pending_edges_;
  mutable std::vector<NodeId> pending_nodes_;
  mutable std::uint64_t snapshot_version_ = ~std::uint64_t{0};
  mutable std::shared_ptr<const Graph> snapshot_;
};

/// Exact delta between two canonical snapshots of the same node universe.
struct GraphDelta {
  std::vector<Edge> removed;              ///< in old, not in new
  std::vector<EdgeId> removed_old_ids;    ///< parallel to removed
  std::vector<Edge> inserted;             ///< in new, not in old
  std::vector<EdgeId> inserted_new_ids;   ///< parallel to inserted
  /// old edge id -> new edge id for surviving edges (kInvalidEdge for
  /// removed ones). Carrying per-edge state across snapshots is one gather
  /// through this table.
  std::vector<EdgeId> old_to_new;

  [[nodiscard]] bool empty() const noexcept { return removed.empty() && inserted.empty(); }
};

/// Merge-walks the two canonical edge lists in O(m_old + m_new).
[[nodiscard]] GraphDelta diff_graphs(const Graph& old_graph, const Graph& new_graph);

/// Sorted unique endpoints of every changed edge in the delta — the seed
/// set for the dirty-root ball expansion.
[[nodiscard]] std::vector<NodeId> touched_endpoints(const GraphDelta& delta);

/// Per-side seed sets: removals dirty roots at OLD distances, insertions at
/// NEW ones (the decremental/incremental fast path of IncrementalSpanner
/// expands each side only in the snapshot where its edges exist).
[[nodiscard]] std::vector<NodeId> removed_endpoints(const GraphDelta& delta);
[[nodiscard]] std::vector<NodeId> inserted_endpoints(const GraphDelta& delta);

}  // namespace remspan
