#include "dynamic/dynamic_graph.hpp"

#include <algorithm>

namespace remspan {

namespace {

/// Sorted-row insertion; returns false when already present.
bool row_insert(std::vector<NodeId>& row, NodeId v) {
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it != row.end() && *it == v) return false;
  row.insert(it, v);
  return true;
}

/// Sorted-row erasure; returns false when absent.
bool row_erase(std::vector<NodeId>& row, NodeId v) {
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return false;
  row.erase(it);
  return true;
}

}  // namespace

DynamicGraph::DynamicGraph(NodeId num_nodes)
    : n_(num_nodes), adj_(num_nodes), up_(num_nodes, 1) {}

DynamicGraph::DynamicGraph(const Graph& initial)
    : n_(initial.num_nodes()),
      adj_(initial.num_nodes()),
      up_(initial.num_nodes(), 1),
      stored_edges_(initial.num_edges()) {
  for (NodeId u = 0; u < n_; ++u) {
    const auto nbrs = initial.neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());  // Graph rows are sorted
  }
}

bool DynamicGraph::has_edge(NodeId a, NodeId b) const {
  REMSPAN_CHECK(a < n_ && b < n_ && a != b);
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

bool DynamicGraph::edge_live(const Edge& e) const {
  return up_[e.u] != 0 && up_[e.v] != 0 &&
         std::binary_search(adj_[e.u].begin(), adj_[e.u].end(), e.v);
}

bool DynamicGraph::apply(const GraphEvent& event) {
  bool changed = false;
  switch (event.kind) {
    case GraphEventKind::kEdgeUp:
      REMSPAN_CHECK(event.u < n_ && event.v < n_ && event.u != event.v);
      changed = row_insert(adj_[event.u], event.v);
      if (changed) {
        row_insert(adj_[event.v], event.u);
        ++stored_edges_;
        pending_edges_.push_back(make_edge(event.u, event.v));
      }
      break;
    case GraphEventKind::kEdgeDown:
      REMSPAN_CHECK(event.u < n_ && event.v < n_ && event.u != event.v);
      changed = row_erase(adj_[event.u], event.v);
      if (changed) {
        row_erase(adj_[event.v], event.u);
        --stored_edges_;
        pending_edges_.push_back(make_edge(event.u, event.v));
      }
      break;
    case GraphEventKind::kNodeUp:
      REMSPAN_CHECK(event.u < n_);
      changed = up_[event.u] == 0;
      up_[event.u] = 1;
      if (changed) pending_nodes_.push_back(event.u);
      break;
    case GraphEventKind::kNodeDown:
      REMSPAN_CHECK(event.u < n_);
      changed = up_[event.u] != 0;
      up_[event.u] = 0;
      if (changed) pending_nodes_.push_back(event.u);
      break;
  }
  if (changed) ++version_;
  return changed;
}

std::size_t DynamicGraph::apply_all(std::span<const GraphEvent> events) {
  std::size_t changed = 0;
  for (const GraphEvent& e : events) changed += apply(e) ? 1 : 0;
  return changed;
}

std::shared_ptr<const Graph> DynamicGraph::snapshot() const {
  if (snapshot_ && snapshot_version_ == version_) return snapshot_;
  std::vector<Edge> live;
  if (snapshot_ == nullptr) {
    // First materialization: walk the (sorted) adjacency rows once. Taking
    // each edge at its smaller endpoint yields canonical global order.
    live.reserve(stored_edges_);
    for (NodeId u = 0; u < n_; ++u) {
      if (up_[u] == 0) continue;
      for (const NodeId w : adj_[u]) {
        if (w > u && up_[w] != 0) live.push_back(Edge{u, w});
      }
    }
  } else {
    // Merge-patch: only edges named by an event since the last snapshot
    // (directly, or through a liveness toggle of an endpoint) can have
    // changed live state; everything else carries over in order.
    std::vector<Edge> candidates = std::move(pending_edges_);
    for (const NodeId v : pending_nodes_) {
      for (const NodeId w : adj_[v]) candidates.push_back(make_edge(v, w));
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

    const auto old_edges = snapshot_->edges();
    live.reserve(old_edges.size() + candidates.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < old_edges.size() || j < candidates.size()) {
      if (j == candidates.size() ||
          (i < old_edges.size() && old_edges[i] < candidates[j])) {
        live.push_back(old_edges[i]);
        ++i;
      } else {
        const Edge e = candidates[j];
        if (i < old_edges.size() && old_edges[i] == e) ++i;
        if (edge_live(e)) live.push_back(e);
        ++j;
      }
    }
  }
  pending_edges_.clear();
  pending_nodes_.clear();
  snapshot_ = std::make_shared<const Graph>(Graph::from_canonical_edges(n_, std::move(live)));
  snapshot_version_ = version_;
  return snapshot_;
}

GraphDelta diff_graphs(const Graph& old_graph, const Graph& new_graph) {
  REMSPAN_CHECK(old_graph.num_nodes() == new_graph.num_nodes());
  GraphDelta delta;
  delta.old_to_new.assign(old_graph.num_edges(), kInvalidEdge);
  const auto old_edges = old_graph.edges();
  const auto new_edges = new_graph.edges();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old_edges.size() || j < new_edges.size()) {
    if (j == new_edges.size() || (i < old_edges.size() && old_edges[i] < new_edges[j])) {
      delta.removed.push_back(old_edges[i]);
      delta.removed_old_ids.push_back(static_cast<EdgeId>(i));
      ++i;
    } else if (i == old_edges.size() || new_edges[j] < old_edges[i]) {
      delta.inserted.push_back(new_edges[j]);
      delta.inserted_new_ids.push_back(static_cast<EdgeId>(j));
      ++j;
    } else {
      delta.old_to_new[i] = static_cast<EdgeId>(j);
      ++i;
      ++j;
    }
  }
  return delta;
}

namespace {

std::vector<NodeId> endpoints_of(std::span<const Edge> edges) {
  std::vector<NodeId> out;
  out.reserve(2 * edges.size());
  for (const Edge& e : edges) {
    out.push_back(e.u);
    out.push_back(e.v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<NodeId> touched_endpoints(const GraphDelta& delta) {
  std::vector<NodeId> touched;
  touched.reserve(2 * (delta.removed.size() + delta.inserted.size()));
  for (const Edge& e : delta.removed) {
    touched.push_back(e.u);
    touched.push_back(e.v);
  }
  for (const Edge& e : delta.inserted) {
    touched.push_back(e.u);
    touched.push_back(e.v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

std::vector<NodeId> removed_endpoints(const GraphDelta& delta) {
  return endpoints_of(delta.removed);
}

std::vector<NodeId> inserted_endpoints(const GraphDelta& delta) {
  return endpoints_of(delta.inserted);
}

}  // namespace remspan
