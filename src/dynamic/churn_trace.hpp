// ChurnTrace: reproducible streams of topology updates for the dynamic
// workloads. A trace is an initial graph plus batches of GraphEvents; the
// three generators model the churn an ad-hoc/OLSR-style network actually
// sees:
//
//   random_edge_churn_trace — memoryless link flapping (plus optional node
//       reboots): each event toggles a uniformly random link of the initial
//       topology, so the churn is spatially uncorrelated — the adversarial
//       case for locality-based incremental maintenance.
//   mobility_churn_trace    — geometric mobility: per batch a few nodes
//       re-sample their position inside the deployment area and their unit
//       ball edges are recomputed. Churn is concentrated around the movers.
//   region_outage_trace     — correlated failures: an outage takes down
//       every link inside a random disk (jamming, weather, power domain),
//       the following batch restores it.
//
// All generators are deterministic functions of (inputs, seed). Traces
// round-trip through a plain-text format (write/read) so recorded or
// synthesized event lists can be replayed by remspan_tool --churn-trace.
#pragma once

#include <iosfwd>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "geom/ball_graph.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan {

struct ChurnTrace {
  NodeId num_nodes = 0;             ///< fixed node universe of the trace
  std::vector<Edge> initial_edges;  ///< initial topology, canonical order
  std::vector<std::vector<GraphEvent>> batches;  ///< event batches, applied in order

  /// Materializes the initial topology as an immutable CSR Graph.
  [[nodiscard]] Graph initial_graph() const;

  friend bool operator==(const ChurnTrace&, const ChurnTrace&) = default;
};

/// Plain-text serialization:
///   churntrace 1
///   nodes <n>
///   edges <m>
///   <u> <v>              (m lines)
///   batches <B>
///   batch <num_events>
///   e+ <u> <v> | e- <u> <v> | n+ <v> | n- <v>
void write_churn_trace(std::ostream& out, const ChurnTrace& trace);

/// Parses the write_churn_trace format; throws CheckError on malformed
/// input.
[[nodiscard]] ChurnTrace read_churn_trace(std::istream& in);

/// Uncorrelated link churn over g's edge set: `events_per_batch` events per
/// batch, each toggling a uniformly random initial edge (down if currently
/// up, back up otherwise). A `node_event_fraction` share of events instead
/// toggles the liveness of a uniformly random node.
[[nodiscard]] ChurnTrace random_edge_churn_trace(const Graph& g, std::size_t num_batches,
                                                 std::size_t events_per_batch,
                                                 double node_event_fraction, std::uint64_t seed);

/// Geometric mobility: per batch, `movers_per_batch` distinct nodes
/// re-sample their position uniformly inside the initial cloud's bounding
/// box and their unit-ball edges are recomputed against every other node.
[[nodiscard]] ChurnTrace mobility_churn_trace(const GeometricGraph& gg, std::size_t num_batches,
                                              std::size_t movers_per_batch, std::uint64_t seed);

/// Correlated regional failures: `num_outages` (outage, recovery) batch
/// pairs. Each outage picks a uniform center in the bounding box and takes
/// down every initial edge with both endpoints within `region_radius`; the
/// following batch restores exactly those links.
[[nodiscard]] ChurnTrace region_outage_trace(const GeometricGraph& gg, std::size_t num_outages,
                                             double region_radius, std::uint64_t seed);

}  // namespace remspan
