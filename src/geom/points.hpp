// Point clouds and the metrics over them.
//
// The paper's graph families are unit disk graphs (UDG: points in the
// plane, edge iff Euclidean distance <= 1, Poisson-distributed positions in
// a fixed square) and unit ball graphs of a doubling metric (UBG: edge iff
// metric distance <= 1, the metric has doubling dimension p). Points in R^d
// under any norm form a doubling metric with p = Theta(d), which is how the
// generators realize "UBG of doubling dimension p" for the Theorem 1/3
// experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/prelude.hpp"
#include "util/rng.hpp"

namespace remspan {

/// Flat storage of n points in R^dim.
class PointSet {
 public:
  explicit PointSet(std::size_t dim) : dim_(dim) { REMSPAN_CHECK(dim >= 1); }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return coords_.size() / dim_; }

  void add(std::span<const double> coords) {
    REMSPAN_CHECK(coords.size() == dim_);
    coords_.insert(coords_.end(), coords.begin(), coords.end());
  }
  void add2(double x, double y) {
    REMSPAN_CHECK(dim_ == 2);
    coords_.push_back(x);
    coords_.push_back(y);
  }

  [[nodiscard]] std::span<const double> point(std::size_t i) const {
    return {coords_.data() + i * dim_, dim_};
  }

 private:
  std::size_t dim_;
  std::vector<double> coords_;
};

/// Norm selecting the metric over R^d. All three are doubling; L2 in the
/// plane is the paper's unit disk setting.
enum class MetricKind { L2, L1, LInf };

[[nodiscard]] double metric_distance(MetricKind kind, std::span<const double> a,
                                     std::span<const double> b);

/// Upper estimate of the doubling dimension p of R^dim under the given
/// norm; the edge bounds of Theorems 1/3 are parameterized by this.
[[nodiscard]] double doubling_dimension_estimate(MetricKind kind, std::size_t dim);

// --- point generators -------------------------------------------------------

/// n i.i.d. uniform points in [0, side]^dim.
[[nodiscard]] PointSet uniform_points(std::size_t n, double side, std::size_t dim, Rng& rng);

/// The paper's random-UDG node model (Section 3.2): a Poisson number of
/// points, mean `mean_nodes`, uniform in the fixed square [0, side]^2.
[[nodiscard]] PointSet poisson_points_in_square(double side, double mean_nodes, Rng& rng);

/// Clustered cloud: `clusters` centers uniform in the cube, each point
/// attached to a random center with Gaussian-ish (sum of uniforms) offset of
/// scale `spread`. Produces non-uniform doubling instances.
[[nodiscard]] PointSet clustered_points(std::size_t n, double side, std::size_t dim,
                                        std::size_t clusters, double spread, Rng& rng);

}  // namespace remspan
