// Unit ball graph construction: nodes = points, edge iff metric distance
// <= radius. Grid bucketing keeps construction near-linear in the output
// size even for the dense fixed-square Poisson instances of Section 3.2.
#pragma once

#include "geom/points.hpp"
#include "graph/graph.hpp"

namespace remspan {

/// Geometric graph bundled with its geometry; the weighted baselines
/// (known-distance spanners of Table 1) need the coordinates back.
struct GeometricGraph {
  Graph graph;
  PointSet points;
  MetricKind metric = MetricKind::L2;
  double radius = 1.0;

  /// Metric length of an edge.
  [[nodiscard]] double edge_length(const Edge& e) const {
    return metric_distance(metric, points.point(e.u), points.point(e.v));
  }
};

/// Builds the unit ball graph of the given point cloud.
[[nodiscard]] GeometricGraph unit_ball_graph(PointSet points, MetricKind metric = MetricKind::L2,
                                             double radius = 1.0);

/// Paper model, one call: Poisson(mean_nodes) points in [0, side]^2, unit
/// disk edges.
[[nodiscard]] GeometricGraph random_unit_disk_graph(double side, double mean_nodes, Rng& rng);

/// Exactly n uniform points in [0, side]^dim, unit balls of the metric.
[[nodiscard]] GeometricGraph uniform_unit_ball_graph(std::size_t n, double side, std::size_t dim,
                                                     Rng& rng, MetricKind metric = MetricKind::L2);

/// Geometry-preserving overload of largest_component (graph/connectivity.hpp):
/// restricts graph AND coordinates to the largest connected component so the
/// weighted baselines keep matching point data.
[[nodiscard]] GeometricGraph largest_component(GeometricGraph gg);

}  // namespace remspan
