#include "geom/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"

namespace remspan {

Graph gnp(NodeId n, double p, Rng& rng) {
  GraphBuilder builder(n);
  if (p <= 0 || n < 2) return builder.build();
  if (p >= 1.0) return complete_graph(n);
  // Geometric skipping over the lexicographic pair enumeration.
  const double log_q = std::log(1.0 - p);
  const std::uint64_t total_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t index = 0;
  while (true) {
    const double r = rng.uniform_real();
    const auto skip = static_cast<std::uint64_t>(std::floor(std::log(1.0 - r) / log_q));
    index += skip;
    if (index >= total_pairs) break;
    // Decode pair index -> (u, v) with u < v.
    const auto fi = static_cast<double>(index);
    auto u = static_cast<NodeId>(
        std::floor((2.0 * static_cast<double>(n) - 1.0 -
                    std::sqrt((2.0 * static_cast<double>(n) - 1.0) *
                                  (2.0 * static_cast<double>(n) - 1.0) -
                              8.0 * fi)) /
                   2.0));
    // Guard against floating point drift at row boundaries.
    auto row_start = [&](NodeId r_) {
      return static_cast<std::uint64_t>(r_) * (2 * n - r_ - 1) / 2;
    };
    while (u > 0 && row_start(u) > index) --u;
    while (row_start(u + 1) <= index) ++u;
    const auto v = static_cast<NodeId>(u + 1 + (index - row_start(u)));
    builder.add_edge(u, v);
    ++index;
  }
  return builder.build();
}

Graph random_tree(NodeId n, Rng& rng) {
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.uniform(v));
    builder.add_edge(parent, v);
  }
  return builder.build();
}

Graph connected_gnp(NodeId n, double p, Rng& rng, int max_tries) {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Graph g = gnp(n, p, rng);
    if (is_connected(g)) return g;
  }
  // Fall back to G(n,p) plus a random spanning tree; still a natural random
  // model and guaranteed connected.
  Graph g = gnp(n, p, rng);
  GraphBuilder builder(n);
  for (const Edge& e : g.edges()) builder.add_edge(e.u, e.v);
  for (NodeId v = 1; v < n; ++v) {
    builder.add_edge(static_cast<NodeId>(rng.uniform(v)), v);
  }
  return builder.build();
}

Graph path_graph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(v - 1, v);
  return builder.build();
}

Graph cycle_graph(NodeId n) {
  REMSPAN_CHECK(n >= 3);
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(v - 1, v);
  builder.add_edge(n - 1, 0);
  return builder.build();
}

Graph complete_graph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph star_graph(NodeId n) {
  REMSPAN_CHECK(n >= 1);
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(0, v);
  return builder.build();
}

Graph grid_graph(NodeId rows, NodeId cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

Graph hypercube_graph(unsigned dims) {
  REMSPAN_CHECK(dims < 20);
  const NodeId n = NodeId{1} << dims;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (unsigned b = 0; b < dims; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

Graph complete_bipartite(NodeId a, NodeId b) {
  GraphBuilder builder(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return builder.build();
}

Graph barabasi_albert(NodeId n, NodeId m, Rng& rng) {
  REMSPAN_CHECK(m >= 1 && n > m);
  GraphBuilder builder(n);
  // Attachment urn: every edge endpoint appears once, so sampling from the
  // urn is degree-proportional sampling.
  std::vector<NodeId> urn;
  // Seed clique on the first m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      builder.add_edge(u, v);
      urn.push_back(u);
      urn.push_back(v);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    // Draw m distinct targets (retry duplicates; m is small).
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId t = urn[rng.uniform(urn.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const NodeId t : targets) {
      builder.add_edge(v, t);
      urn.push_back(v);
      urn.push_back(t);
    }
  }
  return builder.build();
}

Graph watts_strogatz(NodeId n, NodeId k_ring, double rewire, Rng& rng) {
  REMSPAN_CHECK(k_ring % 2 == 0 && k_ring >= 2 && n > k_ring);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId hop = 1; hop <= k_ring / 2; ++hop) {
      NodeId v = (u + hop) % n;
      if (rng.bernoulli(rewire)) {
        // Rewire the far endpoint uniformly (avoiding self-loops; parallel
        // edges collapse in the builder).
        do {
          v = static_cast<NodeId>(rng.uniform(n));
        } while (v == u);
      }
      builder.add_edge(u, v);
    }
  }
  return builder.build();
}

Graph random_regular(NodeId n, NodeId d, Rng& rng) {
  REMSPAN_CHECK((static_cast<std::uint64_t>(n) * d) % 2 == 0);
  REMSPAN_CHECK(d < n);
  // Pairing model: d stubs per node, random perfect matching of stubs;
  // loops and parallel pairs are dropped (degrees may dip below d).
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) builder.add_edge(stubs[i], stubs[i + 1]);
  }
  return builder.build();
}

Graph theta_graph(Dist k, Dist len) {
  REMSPAN_CHECK(k >= 1 && len >= 1);
  // s = 0, t = 1; each path contributes len - 1 internal nodes.
  const NodeId internals_per_path = len - 1;
  GraphBuilder builder(2 + k * internals_per_path);
  NodeId next = 2;
  for (Dist path = 0; path < k; ++path) {
    NodeId prev = 0;  // s
    for (NodeId i = 0; i < internals_per_path; ++i) {
      builder.add_edge(prev, next);
      prev = next++;
    }
    builder.add_edge(prev, 1);  // t
  }
  return builder.build();
}

}  // namespace remspan
