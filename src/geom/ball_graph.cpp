#include "geom/ball_graph.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/connectivity.hpp"

namespace remspan {

namespace {

/// Integer cell key for grid bucketing in up to ~8 dimensions.
struct CellKey {
  std::vector<std::int64_t> cell;
  bool operator==(const CellKey&) const = default;
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const noexcept {
    std::uint64_t h = 0x9E3779B97F4A7C15ull;
    for (const std::int64_t c : k.cell) {
      h ^= static_cast<std::uint64_t>(c) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

GeometricGraph unit_ball_graph(PointSet points, MetricKind metric, double radius) {
  REMSPAN_CHECK(radius > 0);
  const std::size_t n = points.size();
  const std::size_t dim = points.dim();
  GraphBuilder builder(static_cast<NodeId>(n));

  // Bucket points into cells of side `radius`; under any of the supported
  // norms two points at distance <= radius differ by <= radius per
  // coordinate, so all candidate neighbors live in the 3^dim adjacent cells.
  std::unordered_map<CellKey, std::vector<NodeId>, CellKeyHash> cells;
  auto cell_of = [&](std::span<const double> p) {
    CellKey key;
    key.cell.resize(dim);
    for (std::size_t k = 0; k < dim; ++k) {
      key.cell[k] = static_cast<std::int64_t>(std::floor(p[k] / radius));
    }
    return key;
  };
  for (NodeId i = 0; i < n; ++i) {
    cells[cell_of(points.point(i))].push_back(i);
  }

  std::vector<std::int64_t> offset(dim, -1);
  for (const auto& [key, members] : cells) {
    // Enumerate the 3^dim neighbor cells (including the cell itself).
    std::fill(offset.begin(), offset.end(), -1);
    while (true) {
      CellKey other = key;
      for (std::size_t k = 0; k < dim; ++k) other.cell[k] += offset[k];
      const auto it = cells.find(other);
      if (it != cells.end()) {
        for (const NodeId a : members) {
          const auto pa = points.point(a);
          for (const NodeId b : it->second) {
            if (b <= a) continue;  // each unordered pair once
            if (metric_distance(metric, pa, points.point(b)) <= radius) {
              builder.add_edge(a, b);
            }
          }
        }
      }
      // Advance the odometer over {-1,0,1}^dim.
      std::size_t k = 0;
      while (k < dim && offset[k] == 1) {
        offset[k] = -1;
        ++k;
      }
      if (k == dim) break;
      ++offset[k];
    }
  }

  GeometricGraph out{builder.build(), std::move(points), metric, radius};
  return out;
}

GeometricGraph random_unit_disk_graph(double side, double mean_nodes, Rng& rng) {
  return unit_ball_graph(poisson_points_in_square(side, mean_nodes, rng), MetricKind::L2, 1.0);
}

GeometricGraph uniform_unit_ball_graph(std::size_t n, double side, std::size_t dim, Rng& rng,
                                       MetricKind metric) {
  return unit_ball_graph(uniform_points(n, side, dim, rng), metric, 1.0);
}

GeometricGraph largest_component(GeometricGraph gg) {
  const auto comps = connected_components(gg.graph);
  if (comps.count <= 1) return gg;
  auto sub = induced_subgraph(gg.graph, comps.largest());
  PointSet pts(gg.points.dim());
  for (const NodeId old : sub.original_id) pts.add(gg.points.point(old));
  gg.graph = std::move(sub.graph);
  gg.points = std::move(pts);
  return gg;
}

}  // namespace remspan
