#include "geom/points.hpp"

#include <algorithm>
#include <cmath>

namespace remspan {

double metric_distance(MetricKind kind, std::span<const double> a, std::span<const double> b) {
  REMSPAN_CHECK(a.size() == b.size());
  switch (kind) {
    case MetricKind::L2: {
      double s = 0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
      }
      return std::sqrt(s);
    }
    case MetricKind::L1: {
      double s = 0;
      for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
      return s;
    }
    case MetricKind::LInf: {
      double s = 0;
      for (std::size_t i = 0; i < a.size(); ++i) s = std::max(s, std::abs(a[i] - b[i]));
      return s;
    }
  }
  return 0;
}

double doubling_dimension_estimate(MetricKind kind, std::size_t dim) {
  // A ball of radius R in (R^d, Lp) is covered by c^d balls of radius R/2
  // with a norm-dependent constant c <= 4; log2 gives the doubling
  // dimension. The estimate below is the standard O(d) bound, adequate for
  // labelling experiment rows.
  switch (kind) {
    case MetricKind::LInf:
      return static_cast<double>(dim);  // exactly 2^d half-cubes cover a cube
    case MetricKind::L2:
    case MetricKind::L1:
      return 1.5 * static_cast<double>(dim);
  }
  return static_cast<double>(dim);
}

PointSet uniform_points(std::size_t n, double side, std::size_t dim, Rng& rng) {
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& c : buf) c = rng.uniform_real(0.0, side);
    ps.add(buf);
  }
  return ps;
}

PointSet poisson_points_in_square(double side, double mean_nodes, Rng& rng) {
  const std::uint64_t n = rng.poisson(mean_nodes);
  return uniform_points(n, side, 2, rng);
}

PointSet clustered_points(std::size_t n, double side, std::size_t dim, std::size_t clusters,
                          double spread, Rng& rng) {
  REMSPAN_CHECK(clusters >= 1);
  PointSet centers = uniform_points(clusters, side, dim, rng);
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = centers.point(rng.uniform(clusters));
    for (std::size_t k = 0; k < dim; ++k) {
      // Sum of three uniforms approximates a Gaussian offset, clamped into
      // the cube so the bucketed graph construction keeps working.
      const double offset =
          spread * (rng.uniform_real(-1, 1) + rng.uniform_real(-1, 1) + rng.uniform_real(-1, 1)) /
          3.0;
      buf[k] = std::clamp(c[k] + offset, 0.0, side);
    }
    ps.add(buf);
  }
  return ps;
}

}  // namespace remspan
