// Non-geometric workload generators: classic random graphs and the
// structured families the tests use to pin down algorithm behaviour
// (cycles, grids, hypercubes, theta gadgets with known k-connectivity).
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan {

/// Erdos-Renyi G(n,p) via geometric edge skipping (O(n + m) expected).
[[nodiscard]] Graph gnp(NodeId n, double p, Rng& rng);

/// Uniform random tree on n nodes (random attachment).
[[nodiscard]] Graph random_tree(NodeId n, Rng& rng);

/// G(n,p) conditioned on connectivity: resamples until connected, then
/// returns. p must make connectivity plausible.
[[nodiscard]] Graph connected_gnp(NodeId n, double p, Rng& rng, int max_tries = 64);

[[nodiscard]] Graph path_graph(NodeId n);
[[nodiscard]] Graph cycle_graph(NodeId n);
[[nodiscard]] Graph complete_graph(NodeId n);
[[nodiscard]] Graph star_graph(NodeId n);  // node 0 is the hub
[[nodiscard]] Graph grid_graph(NodeId rows, NodeId cols);
[[nodiscard]] Graph hypercube_graph(unsigned dims);
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// Theta graph: `k` internally disjoint s-t paths, each of length `len`
/// (s = 0, t = 1). The canonical instance where d^k(s,t) = k * len, used to
/// validate the k-connecting oracle and the multi-connectivity spanners.
[[nodiscard]] Graph theta_graph(Dist k, Dist len);

/// Barabasi-Albert preferential attachment: each new node attaches `m`
/// edges to existing nodes with probability proportional to degree.
/// Produces the heavy-tailed degree distributions the paper's log-Delta
/// factors are sensitive to.
[[nodiscard]] Graph barabasi_albert(NodeId n, NodeId m, Rng& rng);

/// Watts-Strogatz small world: ring lattice of even degree `k_ring`, each
/// edge rewired with probability `rewire`. Low diameter + high clustering:
/// a stress case for the distance-2 shell algorithms.
[[nodiscard]] Graph watts_strogatz(NodeId n, NodeId k_ring, double rewire, Rng& rng);

/// Random d-regular multigraph via the pairing model, simplified (parallel
/// edges/loops dropped, so degrees are <= d). n * d must be even.
[[nodiscard]] Graph random_regular(NodeId n, NodeId d, Rng& rng);

}  // namespace remspan
