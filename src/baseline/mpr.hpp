// OLSR multipoint-relay (MPR) selection, RFC 3626 Section 8.3.1 heuristic.
//
// The paper observes (Section 1.2) that multipoint relays as used by OLSR
// are exactly (2,0)-dominating trees, and that their union forms a
// (1,0)-remote-spanner. This module implements the RFC's selection
// heuristic (cover uniquely-reachable 2-hop nodes first, then greedy by
// reachability with degree tie-break), giving an independently-derived
// baseline to compare against DomTreeGdy_{2,0,1}.
#pragma once

#include <vector>

#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

/// MPR set of node u per the RFC heuristic (subset of N(u) covering every
/// strict 2-hop neighbor).
[[nodiscard]] std::vector<NodeId> olsr_mpr_set(const Graph& g, NodeId u);

/// Union over all nodes of their MPR star edges {u, m}: the OLSR advertised
/// sub-graph, a (1,0)-remote-spanner.
[[nodiscard]] EdgeSet olsr_mpr_spanner(const Graph& g);

}  // namespace remspan
