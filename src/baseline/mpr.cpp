#include "baseline/mpr.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

std::vector<NodeId> olsr_mpr_set(const Graph& g, NodeId u) {
  BoundedBfs bfs(g.num_nodes());
  bfs.run(GraphView(g), u, 2);

  // N2: strict two-hop neighborhood.
  std::vector<NodeId> two_hop;
  for (const NodeId v : bfs.order()) {
    if (bfs.dist(v) == 2) two_hop.push_back(v);
  }

  std::vector<std::uint8_t> covered(g.num_nodes(), 0);
  std::vector<std::uint8_t> in_mpr(g.num_nodes(), 0);
  std::size_t uncovered = two_hop.size();
  std::vector<NodeId> mpr;

  auto add_mpr = [&](NodeId x) {
    in_mpr[x] = 1;
    mpr.push_back(x);
    for (const NodeId w : g.neighbors(x)) {
      if (bfs.dist(w) == 2 && covered[w] == 0) {
        covered[w] = 1;
        --uncovered;
      }
    }
  };

  // Step 1 (RFC): neighbors that are the only route to some 2-hop node.
  for (const NodeId v : two_hop) {
    NodeId sole = kInvalidNode;
    int count = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (bfs.dist(w) == 1) {
        sole = w;
        if (++count > 1) break;
      }
    }
    if (count == 1 && in_mpr[sole] == 0) add_mpr(sole);
  }

  // Step 2 (RFC): greedy by reachability (uncovered 2-hop nodes reached),
  // ties by degree (higher first), then id.
  while (uncovered > 0) {
    NodeId best = kInvalidNode;
    std::size_t best_reach = 0;
    for (const NodeId x : g.neighbors(u)) {
      if (in_mpr[x] != 0) continue;
      std::size_t reach = 0;
      for (const NodeId w : g.neighbors(x)) {
        reach += (bfs.dist(w) == 2 && covered[w] == 0);
      }
      if (reach == 0) continue;
      const bool better =
          reach > best_reach ||
          (reach == best_reach &&
           (g.degree(x) > g.degree(best) || (g.degree(x) == g.degree(best) && x < best)));
      if (best == kInvalidNode || better) {
        best_reach = reach;
        best = x;
      }
    }
    REMSPAN_CHECK(best != kInvalidNode);
    add_mpr(best);
  }

  std::sort(mpr.begin(), mpr.end());
  return mpr;
}

EdgeSet olsr_mpr_spanner(const Graph& g) {
  auto& pool = ThreadPool::global();
  std::vector<EdgeSet> partial(pool.concurrency(), EdgeSet(g));
  pool.parallel_for_workers(0, g.num_nodes(), [&](std::size_t u, std::size_t worker) {
    const auto mpr = olsr_mpr_set(g, static_cast<NodeId>(u));
    for (const NodeId m : mpr) partial[worker].insert(static_cast<NodeId>(u), m);
  });
  EdgeSet spanner(g);
  for (const EdgeSet& part : partial) spanner |= part;
  return spanner;
}

}  // namespace remspan
