#include "baseline/baswana_sen.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace remspan {

EdgeSet baswana_sen_spanner(const Graph& g, Dist k, Rng& rng) {
  REMSPAN_CHECK(k >= 1);
  const NodeId n = g.num_nodes();
  EdgeSet spanner(g);
  if (k == 1 || n == 0) {
    // A (1,0)-spanner must keep every edge.
    return EdgeSet(g, true);
  }

  // cluster[v]: id of the cluster v currently belongs to (the id of its
  // center), or kInvalidNode once v has fallen out of the clustering.
  std::vector<NodeId> cluster(n);
  for (NodeId v = 0; v < n; ++v) cluster[v] = v;
  const double sample_prob = std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k));

  // Phase 1: k-1 rounds of cluster sampling.
  for (Dist round = 0; round + 1 < k; ++round) {
    // Sample the surviving cluster ids.
    std::unordered_set<NodeId> centers;
    for (NodeId v = 0; v < n; ++v) {
      if (cluster[v] != kInvalidNode) centers.insert(cluster[v]);
    }
    std::unordered_set<NodeId> sampled;
    for (const NodeId c : centers) {
      if (rng.bernoulli(sample_prob)) sampled.insert(c);
    }

    std::vector<NodeId> next_cluster(cluster);
    for (NodeId v = 0; v < n; ++v) {
      if (cluster[v] == kInvalidNode) continue;
      if (sampled.contains(cluster[v])) continue;  // survives as is
      // v's cluster died: look for an adjacent sampled cluster.
      NodeId adopt_via = kInvalidNode;
      for (const NodeId w : g.neighbors(v)) {
        const NodeId cw = cluster[w];
        if (cw != kInvalidNode && sampled.contains(cw)) {
          adopt_via = w;
          break;  // neighbors are id-sorted: deterministic pick
        }
      }
      if (adopt_via != kInvalidNode) {
        spanner.insert(v, adopt_via);
        next_cluster[v] = cluster[adopt_via];
      } else {
        // No sampled cluster nearby: connect to every neighboring cluster
        // once and leave the clustering.
        std::unordered_map<NodeId, NodeId> per_cluster;  // cluster -> witness
        for (const NodeId w : g.neighbors(v)) {
          const NodeId cw = cluster[w];
          if (cw == kInvalidNode || cw == cluster[v]) continue;
          per_cluster.try_emplace(cw, w);
        }
        for (const auto& [c, w] : per_cluster) spanner.insert(v, w);
        next_cluster[v] = kInvalidNode;
      }
    }
    cluster.swap(next_cluster);
  }

  // Phase 2: every vertex joins each remaining neighboring cluster once.
  for (NodeId v = 0; v < n; ++v) {
    std::unordered_map<NodeId, NodeId> per_cluster;
    for (const NodeId w : g.neighbors(v)) {
      const NodeId cw = cluster[w];
      if (cw == kInvalidNode || cw == cluster[v]) continue;
      per_cluster.try_emplace(cw, w);
    }
    for (const auto& [c, w] : per_cluster) spanner.insert(v, w);
  }

  // Intra-cluster edges of the final clustering: vertices of one cluster
  // hang off its center through the spanner edges added when adopting, but
  // edges between same-cluster vertices may still be needed for stretch
  // between them... they are not: the cluster is a star of radius <= k-1
  // inside the spanner by construction. Edges with a dead endpoint were
  // handled in the round the endpoint died.
  return spanner;
}

}  // namespace remspan
