#include "baseline/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

namespace remspan {

EdgeSet baswana_sen_spanner(const Graph& g, Dist k, Rng& rng) {
  REMSPAN_CHECK(k >= 1);
  const NodeId n = g.num_nodes();
  EdgeSet spanner(g);
  if (k == 1 || n == 0) {
    // A (1,0)-spanner must keep every edge.
    return EdgeSet(g, true);
  }

  // cluster[v]: id of the cluster v currently belongs to (the id of its
  // center), or kInvalidNode once v has fallen out of the clustering.
  std::vector<NodeId> cluster(n);
  for (NodeId v = 0; v < n; ++v) cluster[v] = v;
  const double sample_prob = std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k));

  // Phase 1: k-1 rounds of cluster sampling.
  std::vector<std::uint8_t> is_center(n);
  std::vector<std::uint8_t> sampled(n);
  for (Dist round = 0; round + 1 < k; ++round) {
    // Sample the surviving cluster ids in increasing id order. Cluster ids
    // live in [0, n), so a mask sweep replaces the former unordered_set
    // walk, whose hash-table order decided which cluster got which
    // Bernoulli draw — the one place iteration order leaked into output.
    std::fill(is_center.begin(), is_center.end(), 0);
    std::fill(sampled.begin(), sampled.end(), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (cluster[v] != kInvalidNode) is_center[cluster[v]] = 1;
    }
    for (NodeId c = 0; c < n; ++c) {
      if (is_center[c] != 0 && rng.bernoulli(sample_prob)) sampled[c] = 1;
    }

    std::vector<NodeId> next_cluster(cluster);
    for (NodeId v = 0; v < n; ++v) {
      if (cluster[v] == kInvalidNode) continue;
      if (sampled[cluster[v]] != 0) continue;  // survives as is
      // v's cluster died: look for an adjacent sampled cluster.
      NodeId adopt_via = kInvalidNode;
      for (const NodeId w : g.neighbors(v)) {
        const NodeId cw = cluster[w];
        if (cw != kInvalidNode && sampled[cw] != 0) {
          adopt_via = w;
          break;  // neighbors are id-sorted: deterministic pick
        }
      }
      if (adopt_via != kInvalidNode) {
        spanner.insert(v, adopt_via);
        next_cluster[v] = cluster[adopt_via];
      } else {
        // No sampled cluster nearby: connect to every neighboring cluster
        // once and leave the clustering.
        std::unordered_map<NodeId, NodeId> per_cluster;  // cluster -> witness
        for (const NodeId w : g.neighbors(v)) {
          const NodeId cw = cluster[w];
          if (cw == kInvalidNode || cw == cluster[v]) continue;
          per_cluster.try_emplace(cw, w);
        }
        // remspan-lint: allow(R6) order-independent: each witness was picked
        // by the id-sorted neighbor scan above (try_emplace keeps the first),
        // and EdgeSet::insert is a commutative bitset write — the resulting
        // edge set is identical under any iteration order.
        for (const auto& [c, w] : per_cluster) spanner.insert(v, w);
        next_cluster[v] = kInvalidNode;
      }
    }
    cluster.swap(next_cluster);
  }

  // Phase 2: every vertex joins each remaining neighboring cluster once.
  for (NodeId v = 0; v < n; ++v) {
    std::unordered_map<NodeId, NodeId> per_cluster;
    for (const NodeId w : g.neighbors(v)) {
      const NodeId cw = cluster[w];
      if (cw == kInvalidNode || cw == cluster[v]) continue;
      per_cluster.try_emplace(cw, w);
    }
    // remspan-lint: allow(R6) order-independent: witnesses are fixed by the
    // id-sorted neighbor scan above and EdgeSet::insert is a commutative
    // bitset write, so any iteration order yields the same edge set.
    for (const auto& [c, w] : per_cluster) spanner.insert(v, w);
  }

  // Intra-cluster edges of the final clustering: vertices of one cluster
  // hang off its center through the spanner edges added when adopting, but
  // edges between same-cluster vertices may still be needed for stretch
  // between them... they are not: the cluster is a star of radius <= k-1
  // inside the spanner by construction. Edges with a dead endpoint were
  // handled in the round the endpoint died.
  return spanner;
}

}  // namespace remspan
