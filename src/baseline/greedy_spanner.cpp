#include "baseline/greedy_spanner.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/bfs.hpp"
#include "graph/views.hpp"

namespace remspan {

EdgeSet greedy_spanner(const Graph& g, double t) {
  REMSPAN_CHECK(t >= 1.0);
  EdgeSet h(g);
  const auto hop_budget = static_cast<Dist>(std::floor(t));
  BoundedBfs bfs(g.num_nodes());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    // Keep the edge iff H currently has no u-v path of <= t hops.
    bfs.run(SubgraphView(h), e.u, hop_budget);
    if (bfs.dist(e.v) == kUnreachable) h.insert(id);
  }
  return h;
}

namespace {

/// Dijkstra over the selected edges with metric lengths, aborted once every
/// frontier label exceeds `limit`. Returns the distance to target (inf when
/// above the limit).
double weighted_distance_within(const GeometricGraph& gg, const EdgeSet& h, NodeId source,
                                NodeId target, double limit) {
  const Graph& g = gg.graph;
  std::vector<double> dist(g.num_nodes(), std::numeric_limits<double>::infinity());
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == target) return d;
    if (d > limit) break;
    h.for_each_neighbor(u, [&, u = u, d = d](NodeId v) {
      const double w = gg.edge_length(make_edge(u, v));
      if (d + w < dist[v]) {
        dist[v] = d + w;
        heap.emplace(dist[v], v);
      }
    });
  }
  return dist[target];
}

std::vector<EdgeId> edges_by_length(const GeometricGraph& gg) {
  std::vector<EdgeId> order(gg.graph.num_edges());
  for (EdgeId id = 0; id < order.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&gg](EdgeId a, EdgeId b) {
    const double la = gg.edge_length(gg.graph.edge(a));
    const double lb = gg.edge_length(gg.graph.edge(b));
    return la != lb ? la < lb : a < b;
  });
  return order;
}

}  // namespace

EdgeSet greedy_spanner_weighted(const GeometricGraph& gg, double t) {
  REMSPAN_CHECK(t >= 1.0);
  EdgeSet h(gg.graph);
  for (const EdgeId id : edges_by_length(gg)) {
    const Edge& e = gg.graph.edge(id);
    const double limit = t * gg.edge_length(e);
    if (weighted_distance_within(gg, h, e.u, e.v, limit) > limit) h.insert(id);
  }
  return h;
}

EdgeSet layered_fault_tolerant_spanner(const GeometricGraph& gg, double t, Dist k) {
  REMSPAN_CHECK(t >= 1.0);
  const Graph& g = gg.graph;
  EdgeSet result(g);
  const auto order = edges_by_length(gg);
  // k+1 edge-disjoint greedy layers: each layer spans the edges the earlier
  // layers left out.
  for (Dist layer = 0; layer <= k; ++layer) {
    EdgeSet current(g);
    for (const EdgeId id : order) {
      if (result.contains(id)) continue;
      const Edge& e = g.edge(id);
      const double limit = t * gg.edge_length(e);
      if (weighted_distance_within(gg, current, e.u, e.v, limit) > limit) current.insert(id);
    }
    result |= current;
  }
  return result;
}

}  // namespace remspan
