// Classical greedy spanners — the comparators for Table 1's spanner rows.
//
// Unweighted: processing edges in canonical order and keeping (u,v) iff the
// current spanner distance exceeds t yields a (t,0)-spanner (t = 2k-1 gives
// the classic O(n^{1+1/k}) size bound). By the paper's Section 1.2, any
// (alpha,beta)-spanner is an (alpha, beta-alpha+1)-remote-spanner, so these
// also serve as remote-spanner baselines.
//
// Weighted (geometric): edges sorted by metric length, kept iff the current
// weighted spanner distance exceeds t * length(e). With t = 1 + eps on the
// unit ball graph of a doubling metric this reproduces the known-distance
// (1+eps, 0)-spanner row of Table 1 (Damian et al. [9] achieve it
// distributedly; the greedy is the standard sequential equivalent).
#pragma once

#include "geom/ball_graph.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

/// Unweighted greedy (t,0)-spanner, t >= 1.
[[nodiscard]] EdgeSet greedy_spanner(const Graph& g, double t);

/// Weighted greedy (t,0)-spanner over the metric lengths of a geometric
/// graph (stretch measured in summed edge lengths).
[[nodiscard]] EdgeSet greedy_spanner_weighted(const GeometricGraph& gg, double t);

/// Layered fault-tolerant geometric spanner: k+1 edge-disjoint greedy
/// t-spanner layers. Removing any k vertices leaves at least one intact
/// detour layer between surviving neighbors in practice; stand-in for the
/// k-fault-tolerant (1+eps,0)-spanners of Czumaj-Zhao (Table 1 row 8).
/// Produces O((k+1) * n) edges on doubling instances.
[[nodiscard]] EdgeSet layered_fault_tolerant_spanner(const GeometricGraph& gg, double t,
                                                     Dist k);

}  // namespace remspan
