// Baswana-Sen randomized (2k-1, 0)-spanner for unweighted graphs
// (Baswana & Sen, "A simple and linear time randomized algorithm for
// computing sparse spanners in weighted graphs", 2007; unweighted
// specialization). Expected size O(k * n^{1+1/k}).
//
// This is the standard comparator for the "(k, k-1)-span. / O(k n^{1+1/k})"
// row of Table 1: the classical size/stretch trade-off that remote-spanners
// are measured against.
#pragma once

#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan {

/// Computes a (2k-1, 0)-spanner, k >= 1. k = 1 returns all edges.
[[nodiscard]] EdgeSet baswana_sen_spanner(const Graph& g, Dist k, Rng& rng);

}  // namespace remspan
