// Shared plumbing of the C ABI translation units (remspan_c.cpp,
// remspan_service_c.cpp): the thread-local error slot behind
// remspan_last_error(), the fail()/trap() status mappers every entry point
// funnels exceptions through, and the (u,v)-pair edge copier.
//
// Internal to the remspan_c shared library — not installed, not part of
// libremspan. Both ABI files keep the R1 discipline (single top-level
// try/catch-all per extern "C" function); these helpers are what the catch
// arms call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "remspan/remspan.h"

/// The graph handle, shared by both ABI translation units (the service
/// section opens tenants from graph handles; the spanner/session/service
/// handles stay private to their defining file).
struct remspan_graph {
  std::shared_ptr<const remspan::Graph> graph;
};

namespace remspan::api::c_detail {

/// Records `message` in the calling thread's error slot and returns
/// `status` (the standard early-return of every validation failure).
remspan_status_t fail(remspan_status_t status, std::string message);

/// Maps the exceptions the C++ layers throw to ABI statuses. `spec_status`
/// is what a SpecError means for this entry point (parse vs I/O);
/// serve::ServiceError maps to REMSPAN_ERR_INVALID_ARGUMENT.
remspan_status_t trap(std::exception_ptr error, remspan_status_t spec_status = REMSPAN_ERR_PARSE);

/// The calling thread's last error message ("" if none); stays valid until
/// the next failing call on this thread.
[[nodiscard]] const char* last_error_cstr() noexcept;

/// Writes up to `max_edges` edges as (u,v) pairs into `endpoints` (length
/// 2*max_edges); returns how many were written.
std::size_t copy_edges(std::span<const Edge> edges, std::uint32_t* endpoints,
                       std::size_t max_edges);

}  // namespace remspan::api::c_detail
