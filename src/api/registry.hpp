// The construction registry and the remspan::api facade: one way in for
// every driver (remspan_tool, the benches, the C ABI, external code).
//
// A SpannerSpec names a construction; the registry maps it to an entry that
// knows how to (a) build the spanner with its paper guarantee and matching
// exact-oracle verifier, (b) open an incremental-maintenance config for it
// (src/dynamic), and (c) open a distributed-protocol config for it
// (src/sim) — each capability optional per construction. The seven shipped
// constructions (th1, th2, th3, mpr, greedy, baswana, full) are registered
// at startup; future constructions (weighted remote-spanners, CONGEST
// comparators) plug in through register_construction and become reachable
// from every driver at once, string-addressable by spec.
//
// Build functions are thin: they call the exact same underlying library
// entry points (core/, baseline/) a direct caller would, so going through
// the registry is bit-identical to calling the construction directly
// (tests/test_api_spec.cpp pins this for all seven).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "core/remote_spanner.hpp"
#include "dynamic/incremental_spanner.hpp"
#include "graph/edge_set.hpp"
#include "sim/reconvergence.hpp"
#include "sim/remspan_protocol.hpp"
#include "util/rng.hpp"

namespace remspan::api {

/// Optional knobs a driver can thread into a registry build.
struct BuildContext {
  /// RNG for seeded constructions (baswana). When null, the build derives a
  /// fresh Rng from spec.seed; passing one lets a driver share generator
  /// state across several builds (remspan_tool threads its CLI seed RNG).
  Rng* rng = nullptr;
  /// Filled with per-root tree aggregates when the construction has them.
  SpannerBuildInfo* info = nullptr;
  /// Execution engine for the union-of-trees constructions (th1, th2, th3):
  /// the default single-shard config is the flat pooled engine; num_shards
  /// >= 2 runs the sharded frontier-batched engine (src/shard) with
  /// bit-identical output. Constructions without per-root trees ignore it.
  ShardConfig shards{};
};

/// Knobs of the verifier hook; defaults match remspan_tool's oracle calls.
struct VerifyOptions {
  std::size_t sample_pairs = 300;  ///< k-connecting oracle sample budget
  std::uint64_t seed = 1;          ///< sampling seed
};

/// Outcome of the construction-matching exact oracle.
struct VerifyReport {
  bool satisfied = true;
  double max_ratio = 1.0;  ///< worst measured stretch ratio
};

/// Construction-matching exact-oracle runner (remote / k-connecting /
/// classical stretch); null when there is nothing to verify ("full").
using VerifyFn = std::function<VerifyReport(const Graph&, const EdgeSet&, const VerifyOptions&)>;

/// What a registry build returns: the spanner plus everything a driver
/// needs to report and check it without knowing which construction ran.
struct SpannerResult {
  EdgeSet edges;
  SpannerBuildInfo info;
  /// The paper guarantee (alpha, beta) the construction promises.
  Stretch guarantee;
  /// Human-readable guarantee, e.g. "2-connecting remote (2,-1)".
  std::string guarantee_label;
  /// See VerifyFn; capture the matching oracle for `edges`.
  VerifyFn verify;
};

/// One registered construction. `build_edges`, `guarantee` and
/// `guarantee_label` are mandatory; `verifier`, `incremental` and
/// `protocol` are null for constructions without the capability.
struct Construction {
  std::string name;     ///< registry key == SpannerSpec kind name
  std::string summary;  ///< one-line description (--help, docs)
  std::function<EdgeSet(const Graph&, const SpannerSpec&, const BuildContext&)> build_edges;
  std::function<Stretch(const SpannerSpec&)> guarantee;
  std::function<std::string(const SpannerSpec&)> guarantee_label;
  std::function<VerifyFn(const SpannerSpec&)> verifier;
  std::function<IncrementalConfig(const SpannerSpec&)> incremental;
  std::function<RemSpanConfig(const SpannerSpec&)> protocol;
};

/// Name -> Construction map behind the facade. Thread-compatible: register
/// at startup, look up from anywhere.
class ConstructionRegistry {
 public:
  /// The process-wide registry, pre-populated with the seven shipped
  /// constructions on first use.
  [[nodiscard]] static ConstructionRegistry& global();

  /// Registers a construction; throws SpecError if the name is taken or
  /// the entry has no build function.
  void register_construction(Construction entry);

  /// Entry by name, or null when unknown.
  [[nodiscard]] const Construction* find(const std::string& name) const;

  /// Entry for a spec; throws SpecError when the kind is not registered.
  [[nodiscard]] const Construction& at(const SpannerSpec& spec) const;

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Construction> entries_;
};

// --- facade ---------------------------------------------------------------

/// Builds the spanner a spec describes via the registry.
[[nodiscard]] SpannerResult build_spanner(const Graph& g, const SpannerSpec& spec,
                                          const BuildContext& ctx = {});

/// String-spec convenience: parse + build. Throws SpecError on bad specs.
[[nodiscard]] SpannerResult build_spanner(const Graph& g, const std::string& spec,
                                          const BuildContext& ctx = {});

/// The spec's paper guarantee / label without building anything.
[[nodiscard]] Stretch guarantee(const SpannerSpec& spec);
[[nodiscard]] std::string guarantee_label(const SpannerSpec& spec);

/// The spec's exact-oracle runner; a null function when the construction
/// has nothing to verify.
[[nodiscard]] VerifyFn make_verifier(const SpannerSpec& spec);

/// Maps a spec to its incremental-maintenance config; throws SpecError when
/// the construction has no incremental support (mpr, greedy, baswana, full).
[[nodiscard]] IncrementalConfig incremental_config(const SpannerSpec& spec);

/// Maps a spec to its distributed-protocol config; throws SpecError when the
/// construction has no protocol (greedy, baswana, full).
[[nodiscard]] RemSpanConfig protocol_config(const SpannerSpec& spec);

/// True when the spec's construction supports the capability.
[[nodiscard]] bool supports_incremental(const SpannerSpec& spec);
[[nodiscard]] bool supports_protocol(const SpannerSpec& spec);

/// An incremental-maintenance session: owns the evolving topology (seeded
/// from `initial`) and the engine maintaining the spec's spanner over it —
/// the pairing every driver of src/dynamic needs (IncrementalSpanner
/// borrows its DynamicGraph). Opened by spec; the C ABI's
/// remspan_session_t wraps exactly this.
class IncrementalSession {
 public:
  /// Builds the initial spanner; throws SpecError for constructions without
  /// incremental support.
  IncrementalSession(const Graph& initial, const SpannerSpec& spec);

  /// Not movable: the engine holds a reference to this object's
  /// DynamicGraph member, so a moved-from session would leave the engine
  /// pointing at dead storage. Hold sessions by unique_ptr (as
  /// open_incremental_session returns them).
  IncrementalSession(const IncrementalSession&) = delete;
  IncrementalSession& operator=(const IncrementalSession&) = delete;
  IncrementalSession(IncrementalSession&&) = delete;
  IncrementalSession& operator=(IncrementalSession&&) = delete;

  [[nodiscard]] const SpannerSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] DynamicGraph& dynamic_graph() noexcept { return dynamic_; }
  [[nodiscard]] IncrementalSpanner& engine() noexcept { return *engine_; }
  [[nodiscard]] const IncrementalSpanner& engine() const noexcept { return *engine_; }

  /// Shorthands for the common queries.
  [[nodiscard]] const Graph& graph() const noexcept { return engine_->graph(); }
  [[nodiscard]] const EdgeSet& spanner() const noexcept { return engine_->spanner(); }
  ChurnBatchStats apply_batch(std::span<const GraphEvent> events) {
    return engine_->apply_batch(events);
  }

 private:
  SpannerSpec spec_;
  DynamicGraph dynamic_;
  std::unique_ptr<IncrementalSpanner> engine_;
};

/// Opens an incremental session for a spec (see IncrementalSession).
[[nodiscard]] std::unique_ptr<IncrementalSession> open_incremental_session(
    const Graph& initial, const SpannerSpec& spec);

/// Opens a protocol-level reconvergence session for a spec; throws
/// SpecError for constructions without a protocol. A faulty `faults.link`
/// runs the session over a lossy/delaying channel with the reliable
/// protocol variant (see reconvergence.hpp for the convergence-under-loss
/// contract); the default keeps the lossless one-shot schedule.
[[nodiscard]] std::unique_ptr<ReconvergenceSim> open_reconvergence_session(
    const Graph& initial, const SpannerSpec& spec, ReconvergeStrategy strategy,
    const FaultConfig& faults = {});

}  // namespace remspan::api
