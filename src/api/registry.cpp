#include "api/registry.hpp"

#include <utility>

#include "analysis/kconn_oracle.hpp"
#include "analysis/stretch_oracle.hpp"
#include "baseline/baswana_sen.hpp"
#include "baseline/greedy_spanner.hpp"
#include "baseline/mpr.hpp"
#include "core/params.hpp"
#include "util/table.hpp"

namespace remspan::api {
namespace {

/// Shared verifier shapes: remote / k-connecting / classical stretch, each
/// capturing the construction's guarantee.
VerifyFn remote_verifier(Stretch stretch) {
  return [stretch](const Graph& g, const EdgeSet& h, const VerifyOptions&) {
    const StretchReport r = check_remote_stretch(g, h, stretch);
    return VerifyReport{r.satisfied, r.max_ratio};
  };
}

VerifyFn kconn_verifier(Dist k, Stretch stretch) {
  return [k, stretch](const Graph& g, const EdgeSet& h, const VerifyOptions& opts) {
    const KConnReport r =
        check_k_connecting_stretch(g, h, k, stretch, opts.sample_pairs, opts.seed);
    return VerifyReport{r.satisfied, r.max_ratio};
  };
}

VerifyFn classic_verifier(Stretch stretch) {
  return [stretch](const Graph& g, const EdgeSet& h, const VerifyOptions&) {
    const StretchReport r = check_spanner_stretch(g, h, stretch);
    return VerifyReport{r.satisfied, r.max_ratio};
  };
}

Construction make_th1() {
  Construction c;
  c.name = "th1";
  c.summary = "Theorem 1: union of (r,1)-dominating trees, (1+eps,1-2eps)-remote-spanner";
  c.build_edges = [](const Graph& g, const SpannerSpec& spec, const BuildContext& ctx) {
    return build_low_stretch_remote_spanner(g, spec.eps, spec.tree, ctx.info, ctx.shards);
  };
  c.guarantee = [](const SpannerSpec& spec) {
    return Stretch{1.0 + spec.eps, 1.0 - 2.0 * spec.eps};
  };
  c.guarantee_label = [](const SpannerSpec& spec) {
    const Stretch s{1.0 + spec.eps, 1.0 - 2.0 * spec.eps};
    return "remote (" + format_double(s.alpha, 2) + "," + format_double(s.beta, 2) + ")";
  };
  c.verifier = [](const SpannerSpec& spec) {
    return remote_verifier(Stretch{1.0 + spec.eps, 1.0 - 2.0 * spec.eps});
  };
  c.incremental = [](const SpannerSpec& spec) {
    return IncrementalConfig::low_stretch(spec.eps, spec.tree);
  };
  c.protocol = [](const SpannerSpec& spec) {
    RemSpanConfig cfg;
    cfg.kind = spec.tree == TreeAlgorithm::kMis ? RemSpanConfig::Kind::kLowStretchMis
                                                : RemSpanConfig::Kind::kLowStretchGreedy;
    cfg.r = domination_radius_for_eps(spec.eps);
    cfg.beta = 1;
    return cfg;
  };
  return c;
}

Construction make_th2() {
  Construction c;
  c.name = "th2";
  c.summary = "Theorem 2: k-connecting greedy trees, k-connecting (1,0)-remote-spanner";
  c.build_edges = [](const Graph& g, const SpannerSpec& spec, const BuildContext& ctx) {
    return build_k_connecting_spanner(g, spec.k, ctx.info, ctx.shards);
  };
  c.guarantee = [](const SpannerSpec&) { return Stretch{1.0, 0.0}; };
  c.guarantee_label = [](const SpannerSpec& spec) {
    return std::to_string(spec.k) + "-connecting remote (1,0)";
  };
  c.verifier = [](const SpannerSpec& spec) {
    return kconn_verifier(spec.k, Stretch{1.0, 0.0});
  };
  c.incremental = [](const SpannerSpec& spec) { return IncrementalConfig::k_connecting(spec.k); };
  c.protocol = [](const SpannerSpec& spec) {
    RemSpanConfig cfg;
    cfg.kind = RemSpanConfig::Kind::kKConnGreedy;
    cfg.k = spec.k;
    return cfg;
  };
  return c;
}

Construction make_th3() {
  Construction c;
  c.name = "th3";
  c.summary = "Theorem 3: k rounds of MIS trees, 2-connecting (2,-1)-remote-spanner";
  c.build_edges = [](const Graph& g, const SpannerSpec& spec, const BuildContext& ctx) {
    return build_2connecting_spanner(g, spec.k, ctx.info, ctx.shards);
  };
  c.guarantee = [](const SpannerSpec&) { return Stretch{2.0, -1.0}; };
  c.guarantee_label = [](const SpannerSpec&) { return std::string("2-connecting remote (2,-1)"); };
  // Theorem 3's guarantee is stated for k' <= 2 regardless of the tree
  // parameter k (remspan_tool has always checked it at 2).
  c.verifier = [](const SpannerSpec&) { return kconn_verifier(2, Stretch{2.0, -1.0}); };
  c.incremental = [](const SpannerSpec& spec) { return IncrementalConfig::two_connecting(spec.k); };
  c.protocol = [](const SpannerSpec& spec) {
    RemSpanConfig cfg;
    cfg.kind = RemSpanConfig::Kind::kKConnMis;
    cfg.k = spec.k;
    return cfg;
  };
  return c;
}

Construction make_mpr() {
  Construction c;
  c.name = "mpr";
  c.summary = "OLSR multipoint-relay union (RFC 3626), (1,0)-remote-spanner";
  c.build_edges = [](const Graph& g, const SpannerSpec&, const BuildContext&) {
    return olsr_mpr_spanner(g);
  };
  c.guarantee = [](const SpannerSpec&) { return Stretch{1.0, 0.0}; };
  c.guarantee_label = [](const SpannerSpec&) { return std::string("remote (1,0) via OLSR MPR"); };
  c.verifier = [](const SpannerSpec&) { return remote_verifier(Stretch{1.0, 0.0}); };
  c.protocol = [](const SpannerSpec&) {
    RemSpanConfig cfg;
    cfg.kind = RemSpanConfig::Kind::kOlsrMpr;
    return cfg;
  };
  return c;
}

Construction make_greedy() {
  Construction c;
  c.name = "greedy";
  c.summary = "classical greedy (t,0)-spanner (comparator)";
  c.build_edges = [](const Graph& g, const SpannerSpec& spec, const BuildContext&) {
    return greedy_spanner(g, spec.t);
  };
  c.guarantee = [](const SpannerSpec& spec) { return Stretch{spec.t, 0.0}; };
  c.guarantee_label = [](const SpannerSpec& spec) {
    return "classical (" + format_double(spec.t, 1) + ",0)";
  };
  c.verifier = [](const SpannerSpec& spec) { return classic_verifier(Stretch{spec.t, 0.0}); };
  return c;
}

Construction make_baswana() {
  Construction c;
  c.name = "baswana";
  c.summary = "Baswana-Sen randomized (2k-1,0)-spanner (comparator)";
  c.build_edges = [](const Graph& g, const SpannerSpec& spec, const BuildContext& ctx) {
    Rng local(spec.seed);
    Rng& rng = ctx.rng != nullptr ? *ctx.rng : local;
    return baswana_sen_spanner(g, spec.k, rng);
  };
  c.guarantee = [](const SpannerSpec& spec) { return Stretch{2.0 * spec.k - 1.0, 0.0}; };
  c.guarantee_label = [](const SpannerSpec& spec) {
    return "classical (" + format_double(2.0 * spec.k - 1.0, 0) + ",0)";
  };
  c.verifier = [](const SpannerSpec& spec) {
    return classic_verifier(Stretch{2.0 * spec.k - 1.0, 0.0});
  };
  return c;
}

Construction make_full() {
  Construction c;
  c.name = "full";
  c.summary = "all input edges (trivial baseline)";
  c.build_edges = [](const Graph& g, const SpannerSpec&, const BuildContext&) {
    return EdgeSet(g, true);
  };
  c.guarantee = [](const SpannerSpec&) { return Stretch{1.0, 0.0}; };
  c.guarantee_label = [](const SpannerSpec&) { return std::string("all edges"); };
  // No verifier: nothing to check on the identity "spanner".
  return c;
}

}  // namespace

ConstructionRegistry& ConstructionRegistry::global() {
  static ConstructionRegistry registry = [] {
    ConstructionRegistry r;
    r.register_construction(make_th1());
    r.register_construction(make_th2());
    r.register_construction(make_th3());
    r.register_construction(make_mpr());
    r.register_construction(make_greedy());
    r.register_construction(make_baswana());
    r.register_construction(make_full());
    return r;
  }();
  return registry;
}

void ConstructionRegistry::register_construction(Construction entry) {
  if (entry.name.empty() || entry.build_edges == nullptr || entry.guarantee == nullptr ||
      entry.guarantee_label == nullptr) {
    throw SpecError(
        "construction registration needs a name, build_edges, guarantee and guarantee_label");
  }
  const auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  if (!inserted) {
    throw SpecError("construction '" + it->first + "' is already registered");
  }
}

const Construction* ConstructionRegistry::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const Construction& ConstructionRegistry::at(const SpannerSpec& spec) const {
  const Construction* entry = find(spec.kind_name());
  if (entry == nullptr) {
    throw SpecError(std::string("construction '") + spec.kind_name() + "' is not registered");
  }
  return *entry;
}

std::vector<std::string> ConstructionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

SpannerResult build_spanner(const Graph& g, const SpannerSpec& spec, const BuildContext& ctx) {
  const Construction& entry = ConstructionRegistry::global().at(spec);
  SpannerResult res{EdgeSet(g), {}, {}, {}, {}};
  BuildContext inner = ctx;
  if (inner.info == nullptr) inner.info = &res.info;
  res.edges = entry.build_edges(g, spec, inner);
  res.info = *inner.info;
  res.guarantee = entry.guarantee(spec);
  res.guarantee_label = entry.guarantee_label(spec);
  if (entry.verifier != nullptr) res.verify = entry.verifier(spec);
  return res;
}

SpannerResult build_spanner(const Graph& g, const std::string& spec, const BuildContext& ctx) {
  return build_spanner(g, parse_spanner_spec(spec), ctx);
}

Stretch guarantee(const SpannerSpec& spec) {
  return ConstructionRegistry::global().at(spec).guarantee(spec);
}

std::string guarantee_label(const SpannerSpec& spec) {
  return ConstructionRegistry::global().at(spec).guarantee_label(spec);
}

VerifyFn make_verifier(const SpannerSpec& spec) {
  const Construction& entry = ConstructionRegistry::global().at(spec);
  return entry.verifier == nullptr ? VerifyFn{} : entry.verifier(spec);
}

IncrementalConfig incremental_config(const SpannerSpec& spec) {
  const Construction& entry = ConstructionRegistry::global().at(spec);
  if (entry.incremental == nullptr) {
    throw SpecError("construction '" + entry.name + "' has no incremental maintenance support");
  }
  return entry.incremental(spec);
}

RemSpanConfig protocol_config(const SpannerSpec& spec) {
  const Construction& entry = ConstructionRegistry::global().at(spec);
  if (entry.protocol == nullptr) {
    throw SpecError("construction '" + entry.name + "' has no distributed protocol");
  }
  return entry.protocol(spec);
}

bool supports_incremental(const SpannerSpec& spec) {
  return ConstructionRegistry::global().at(spec).incremental != nullptr;
}

bool supports_protocol(const SpannerSpec& spec) {
  return ConstructionRegistry::global().at(spec).protocol != nullptr;
}

IncrementalSession::IncrementalSession(const Graph& initial, const SpannerSpec& spec)
    : spec_(spec),
      dynamic_(initial),
      engine_(std::make_unique<IncrementalSpanner>(dynamic_, incremental_config(spec))) {}

std::unique_ptr<IncrementalSession> open_incremental_session(const Graph& initial,
                                                             const SpannerSpec& spec) {
  return std::make_unique<IncrementalSession>(initial, spec);
}

std::unique_ptr<ReconvergenceSim> open_reconvergence_session(const Graph& initial,
                                                             const SpannerSpec& spec,
                                                             ReconvergeStrategy strategy,
                                                             const FaultConfig& faults) {
  return std::make_unique<ReconvergenceSim>(initial, protocol_config(spec), strategy, faults);
}

}  // namespace remspan::api
