// The multi-tenant service section of the C ABI (include/remspan/remspan.h)
// over serve::SpannerService. Compiles into the remspan_c shared library
// next to remspan_c.cpp and follows the same machine-checked conventions
// (remspan_lint rule R1): every entry point's body is exactly one top-level
// try block ending in catch (...), statuses map through c_detail::trap(),
// out-pointers are written only on REMSPAN_OK, and accessors fall back to
// a neutral value instead of throwing.
#include "remspan/remspan.h"

#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "api/c_abi_detail.hpp"
#include "api/spec.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "serve/service.hpp"

namespace {

using remspan::Graph;
using remspan::GraphEvent;
using remspan::NodeId;
using remspan::api::c_detail::copy_edges;
using remspan::api::c_detail::fail;
using remspan::api::c_detail::trap;
namespace serve = remspan::serve;

/// Validates and converts one ABI event batch (the remspan_session_apply
/// rules: known kind, ids < n, no self-loops). Throws ServiceError with the
/// offending index on the first malformed event, before any state changes.
std::vector<GraphEvent> convert_events(const remspan_event_t* events, size_t num_events,
                                       NodeId n) {
  std::vector<GraphEvent> batch;
  batch.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    const remspan_event_t& e = events[i];
    const bool edge_event = e.kind == REMSPAN_EVENT_EDGE_UP || e.kind == REMSPAN_EVENT_EDGE_DOWN;
    const bool node_event = e.kind == REMSPAN_EVENT_NODE_UP || e.kind == REMSPAN_EVENT_NODE_DOWN;
    if ((!edge_event && !node_event) || e.u >= n || (edge_event && (e.v >= n || e.u == e.v))) {
      throw serve::ServiceError("event " + std::to_string(i) + " is malformed (kind " +
                                std::to_string(e.kind) + ", u " + std::to_string(e.u) + ", v " +
                                std::to_string(e.v) + ", n " + std::to_string(n) + ")");
    }
    if (e.kind == REMSPAN_EVENT_EDGE_UP) {
      batch.push_back(GraphEvent::edge_up(e.u, e.v));
    } else if (e.kind == REMSPAN_EVENT_EDGE_DOWN) {
      batch.push_back(GraphEvent::edge_down(e.u, e.v));
    } else if (e.kind == REMSPAN_EVENT_NODE_UP) {
      batch.push_back(GraphEvent::node_up(e.u));
    } else {
      batch.push_back(GraphEvent::node_down(e.u));
    }
  }
  return batch;
}

serve::ServiceConfig convert_config(const remspan_service_config_t* config) {
  serve::ServiceConfig cfg;
  if (config != nullptr) {
    cfg.worker_threads = config->worker_threads;
    cfg.max_tenants = config->max_tenants;
    cfg.tenant_queue_budget = config->tenant_queue_budget;
    cfg.global_queue_budget = config->global_queue_budget;
    cfg.max_batch_events = config->max_batch_events;
  }
  return cfg;
}

}  // namespace

struct remspan_service {
  explicit remspan_service(const serve::ServiceConfig& cfg) : service(cfg) {}
  serve::SpannerService service;
};

extern "C" {

void remspan_service_config_default(remspan_service_config_t* out_config) {
  try {
    if (out_config == nullptr) return;
    const serve::ServiceConfig cfg;
    out_config->worker_threads = static_cast<uint32_t>(cfg.worker_threads);
    out_config->max_tenants = static_cast<uint32_t>(cfg.max_tenants);
    out_config->tenant_queue_budget = cfg.tenant_queue_budget;
    out_config->global_queue_budget = cfg.global_queue_budget;
    out_config->max_batch_events = cfg.max_batch_events;
  } catch (...) {
    // Swallow: a defaults query must not throw across the ABI.
  }
}

remspan_status_t remspan_service_create(const remspan_service_config_t* config,
                                        remspan_service_t** out_service) {
  try {
    if (out_service == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const serve::ServiceConfig cfg = convert_config(config);
    if (cfg.max_tenants == 0 || cfg.max_batch_events == 0) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT,
                  "max_tenants and max_batch_events must be nonzero");
    }
    *out_service = new remspan_service(cfg);
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_open_tenant(remspan_service_t* service,
                                             const remspan_graph_t* graph,
                                             const char* spanner_spec, uint32_t* out_tenant) {
  try {
    if (service == nullptr || graph == nullptr || spanner_spec == nullptr ||
        out_tenant == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const remspan::api::SpannerSpec spec = remspan::api::parse_spanner_spec(spanner_spec);
    if (!remspan::api::supports_incremental(spec)) {
      return fail(REMSPAN_ERR_UNSUPPORTED, "construction '" + std::string(spec.kind_name()) +
                                               "' has no incremental maintenance support");
    }
    *out_tenant = service->service.open_tenant(*graph->graph, spec.to_string());
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_close_tenant(remspan_service_t* service, uint32_t tenant) {
  try {
    if (service == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null service");
    }
    service->service.close_tenant(tenant);
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_submit(remspan_service_t* service, uint32_t tenant,
                                        const remspan_event_t* events, size_t num_events,
                                        uint32_t* out_admission) {
  try {
    if (service == nullptr || (events == nullptr && num_events > 0)) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const NodeId n = service->service.snapshot(tenant)->graph().num_nodes();
    const std::vector<GraphEvent> batch = convert_events(events, num_events, n);
    const serve::Admission verdict = service->service.submit(tenant, batch);
    if (out_admission != nullptr) *out_admission = static_cast<uint32_t>(verdict);
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_flush(remspan_service_t* service, uint32_t tenant) {
  try {
    if (service == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null service");
    }
    service->service.flush(tenant);
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_drain(remspan_service_t* service) {
  try {
    if (service == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null service");
    }
    service->service.drain();
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

uint64_t remspan_service_epoch(const remspan_service_t* service, uint32_t tenant) {
  try {
    if (service == nullptr) return 0;
    return service->service.snapshot(tenant)->epoch();
  } catch (...) {
    return 0;
  }
}

int remspan_service_contains(const remspan_service_t* service, uint32_t tenant, uint32_t u,
                             uint32_t v) {
  try {
    if (service == nullptr) return 0;
    return service->service.snapshot(tenant)->contains(u, v) ? 1 : 0;
  } catch (...) {
    return 0;
  }
}

size_t remspan_service_spanner_num_edges(const remspan_service_t* service, uint32_t tenant) {
  try {
    if (service == nullptr) return 0;
    return service->service.snapshot(tenant)->num_spanner_edges();
  } catch (...) {
    return 0;
  }
}

size_t remspan_service_spanner_edges(const remspan_service_t* service, uint32_t tenant,
                                     uint32_t* endpoints, size_t max_edges) {
  try {
    if (service == nullptr || endpoints == nullptr) return 0;
    return copy_edges(service->service.snapshot(tenant)->spanner_edges(), endpoints, max_edges);
  } catch (...) {
    return 0;
  }
}

remspan_status_t remspan_service_stretch(const remspan_service_t* service, uint32_t tenant,
                                         size_t pairs, uint64_t seed, double* out_max_ratio) {
  try {
    if (service == nullptr || out_max_ratio == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    *out_max_ratio = service->service.snapshot(tenant)->sampled_stretch(pairs, seed);
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_tenant_stats(const remspan_service_t* service, uint32_t tenant,
                                              remspan_tenant_stats_t* out_stats) {
  try {
    if (service == nullptr || out_stats == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const serve::TenantStats s = service->service.tenant_stats(tenant);
    *out_stats = remspan_tenant_stats_t{s.epoch,
                                        s.graph_version,
                                        s.queue_depth,
                                        s.events_submitted,
                                        s.events_accepted,
                                        s.events_coalesced,
                                        s.events_applied,
                                        s.batches_applied,
                                        s.rejected_retry_after,
                                        s.rejected_overloaded,
                                        s.spanner_edges};
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_service_stats(const remspan_service_t* service,
                                       remspan_service_totals_t* out_stats) {
  try {
    if (service == nullptr || out_stats == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const serve::ServiceStats s = service->service.stats();
    *out_stats = remspan_service_totals_t{s.tenants_open,
                                         s.tenants_opened,
                                         s.tenants_closed,
                                         s.queue_depth,
                                         s.epochs_published,
                                         s.events_submitted,
                                         s.events_accepted,
                                         s.events_coalesced,
                                         s.events_applied,
                                         s.batches_applied,
                                         s.rejected_retry_after,
                                         s.rejected_overloaded};
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

void remspan_service_free(remspan_service_t* service) {
  try {
    delete service;
  } catch (...) {
    // Swallow: a throwing destructor must not unwind through extern "C".
  }
}

} /* extern "C" */
