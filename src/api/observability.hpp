// Process-wide observability switchboard of the public facade: owns one
// static metrics registry and one static trace buffer, installs/uninstalls
// them as the engine-wide sinks (obs/obs.hpp), and serializes their content
// for the CLI (--metrics-out / --trace-out), the REMSPAN_TRACE /
// REMSPAN_METRICS environment hooks, and the C ABI
// (remspan_metrics_enable / remspan_metrics_snapshot).
//
// Contract (same as the obs layer it fronts): disabled costs one branch per
// hook, enabling never changes any computed result — telemetry content is
// write-only from the engine's point of view.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace remspan::api {

/// Installs the facade-owned sinks: the static registry when `metrics`,
/// the static trace buffer when `trace`. Either flag false uninstalls that
/// sink; previously collected content is kept (re-enabling resumes the
/// streams). Not thread-safe against concurrently *running* instrumented
/// work — switch before starting it (see obs::install).
void enable_observability(bool metrics, bool trace);

/// Uninstalls both sinks (equivalent to enable_observability(false, false)).
void disable_observability();

/// True while at least one facade sink is installed.
[[nodiscard]] bool observability_enabled() noexcept;

/// The facade-owned sinks themselves — for tests and drivers that want to
/// inspect or reset collected content. Always valid; collecting only while
/// installed.
[[nodiscard]] obs::Registry& observability_registry();
[[nodiscard]] obs::TraceBuffer& observability_trace_buffer();

/// JSON serialization of the registry's current snapshot (valid JSON with
/// empty sections when nothing was ever collected).
[[nodiscard]] std::string metrics_snapshot_json();

/// Write the trace buffer (Chrome trace_event JSON) / metrics snapshot to
/// `path`. Returns false with *error set on I/O failure.
bool write_trace_file(const std::string& path, std::string* error = nullptr);
bool write_metrics_file(const std::string& path, std::string* error = nullptr);

/// Environment hook for unmodified drivers: REMSPAN_TRACE=<path> enables
/// tracing, REMSPAN_METRICS=<path> enables metrics; each registers an
/// atexit writer to its path. No-op when neither variable is set. Call
/// early in main(); repeated calls re-read the environment.
void observability_from_env();

}  // namespace remspan::api
