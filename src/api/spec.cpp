#include "api/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "geom/ball_graph.hpp"
#include "geom/synthetic.hpp"
#include "graph/connectivity.hpp"
#include "graph/graphio.hpp"
#include "util/strnum.hpp"

namespace remspan::api {
namespace {

struct Param {
  std::string key;
  std::string value;
};

/// Splits "kind?k1=v1&k2=v2" into the kind and its key=value list; the
/// grammar is shared by both spec families.
struct SplitSpec {
  std::string kind;
  std::vector<Param> params;
};

SplitSpec split_spec(const std::string& text) {
  SplitSpec out;
  const auto qmark = text.find('?');
  out.kind = text.substr(0, qmark);
  if (out.kind.empty()) throw SpecError("empty spec");
  if (qmark == std::string::npos) return out;
  std::string rest = text.substr(qmark + 1);
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const auto amp = rest.find('&', pos);
    const std::string item =
        rest.substr(pos, amp == std::string::npos ? std::string::npos : amp - pos);
    const auto eq = item.find('=');
    if (item.empty() || eq == 0 || eq == std::string::npos || eq + 1 == item.size()) {
      throw SpecError("malformed parameter '" + item + "' in spec '" + text +
                      "' (expected key=value)");
    }
    out.params.push_back({item.substr(0, eq), item.substr(eq + 1)});
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return out;
}

double parse_double_value(const Param& p) {
  const auto v = parse_full_double(p.value);
  if (!v) {
    throw SpecError("parameter '" + p.key + "': '" + p.value + "' is not a number");
  }
  return *v;
}

std::uint64_t parse_uint_value(const Param& p) {
  const auto v = parse_full_int(p.value);
  if (!v || *v < 0) {
    throw SpecError("parameter '" + p.key + "': '" + p.value +
                    "' is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(*v);
}

[[noreturn]] void unknown_key(const std::string& kind, const Param& p) {
  throw SpecError("unknown parameter '" + p.key + "' for '" + kind + "'");
}

}  // namespace

std::string spec_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  // %g keeps canonical strings short but holds only 6 significant digits;
  // fall back to round-trip-exact precision when that loses information,
  // so parse(to_string(s)) == s holds for every finite normal parameter
  // (subnormals are rejected by parse_full_double's stod underflow, which
  // the string grammar never produces in the first place). The round-trip
  // probe goes through the same strict parser the spec grammar uses.
  if (parse_full_double(buf) != std::optional<double>(v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

// --- SpannerSpec ----------------------------------------------------------

SpannerSpec SpannerSpec::th1(double eps, TreeAlgorithm tree) {
  SpannerSpec s;
  s.kind = Kind::kTh1;
  s.eps = eps;
  s.tree = tree;
  return s;
}

SpannerSpec SpannerSpec::th2(Dist k) {
  SpannerSpec s;
  s.kind = Kind::kTh2;
  s.k = k;
  return s;
}

SpannerSpec SpannerSpec::th3(Dist k) {
  SpannerSpec s;
  s.kind = Kind::kTh3;
  s.k = k;
  return s;
}

SpannerSpec SpannerSpec::mpr() {
  SpannerSpec s;
  s.kind = Kind::kMpr;
  return s;
}

SpannerSpec SpannerSpec::greedy(double t) {
  SpannerSpec s;
  s.kind = Kind::kGreedy;
  s.t = t;
  return s;
}

SpannerSpec SpannerSpec::baswana(Dist k, std::uint64_t seed) {
  SpannerSpec s;
  s.kind = Kind::kBaswana;
  s.k = k;
  s.seed = seed;
  return s;
}

SpannerSpec SpannerSpec::full() {
  SpannerSpec s;
  s.kind = Kind::kFull;
  return s;
}

SpannerSpec SpannerSpec::custom(std::string name,
                                std::vector<std::pair<std::string, std::string>> params) {
  SpannerSpec s;
  s.kind = Kind::kCustom;
  s.custom_name = std::move(name);
  s.custom_params = std::move(params);
  return s;
}

std::optional<std::string> SpannerSpec::custom_param(const std::string& key) const {
  for (const auto& [param_key, param_value] : custom_params) {
    if (param_key == key) return param_value;
  }
  return std::nullopt;
}

const char* SpannerSpec::kind_name() const noexcept {
  switch (kind) {
    case Kind::kTh1: return "th1";
    case Kind::kTh2: return "th2";
    case Kind::kTh3: return "th3";
    case Kind::kMpr: return "mpr";
    case Kind::kGreedy: return "greedy";
    case Kind::kBaswana: return "baswana";
    case Kind::kFull: return "full";
    case Kind::kCustom: return custom_name.c_str();
  }
  return "?";
}

std::string SpannerSpec::to_string() const {
  std::string out = kind_name();
  switch (kind) {
    case Kind::kTh1:
      out += "?eps=" + spec_number(eps);
      if (tree != TreeAlgorithm::kMis) out += "&tree=greedy";
      break;
    case Kind::kTh2:
    case Kind::kTh3:
      out += "?k=" + std::to_string(k);
      break;
    case Kind::kGreedy:
      out += "?t=" + spec_number(t);
      break;
    case Kind::kBaswana:
      out += "?k=" + std::to_string(k);
      if (seed != 1) out += "&seed=" + std::to_string(seed);
      break;
    case Kind::kCustom:
      for (std::size_t i = 0; i < custom_params.size(); ++i) {
        out += (i == 0 ? "?" : "&");
        out += custom_params[i].first + "=" + custom_params[i].second;
      }
      break;
    case Kind::kMpr:
    case Kind::kFull:
      break;
  }
  return out;
}

SpannerSpec parse_spanner_spec(const std::string& text) {
  const SplitSpec split = split_spec(text);
  SpannerSpec spec;
  if (split.kind == "th1") {
    spec = SpannerSpec::th1(0.5);
  } else if (split.kind == "th2") {
    spec = SpannerSpec::th2();
  } else if (split.kind == "th3") {
    spec = SpannerSpec::th3();
  } else if (split.kind == "mpr") {
    spec = SpannerSpec::mpr();
  } else if (split.kind == "greedy") {
    spec = SpannerSpec::greedy();
  } else if (split.kind == "baswana") {
    spec = SpannerSpec::baswana();
  } else if (split.kind == "full") {
    spec = SpannerSpec::full();
  } else {
    // Not a built-in: a runtime-registered construction. Parameters pass
    // through raw for the registry entry to interpret; the name must still
    // look like a registry key so typos fail fast.
    for (const char c : split.kind) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '-';
      if (!ok) {
        throw SpecError("unknown construction '" + split.kind +
                        "' (th1|th2|th3|mpr|greedy|baswana|full or a registered name)");
      }
    }
    std::vector<std::pair<std::string, std::string>> params;
    params.reserve(split.params.size());
    for (const Param& p : split.params) params.emplace_back(p.key, p.value);
    return SpannerSpec::custom(split.kind, std::move(params));
  }
  for (const Param& p : split.params) {
    switch (spec.kind) {
      case SpannerSpec::Kind::kTh1:
        if (p.key == "eps") {
          spec.eps = parse_double_value(p);
        } else if (p.key == "tree") {
          if (p.value == "mis") {
            spec.tree = TreeAlgorithm::kMis;
          } else if (p.value == "greedy") {
            spec.tree = TreeAlgorithm::kGreedy;
          } else {
            throw SpecError("parameter 'tree': '" + p.value + "' is not mis|greedy");
          }
        } else {
          unknown_key(split.kind, p);
        }
        break;
      case SpannerSpec::Kind::kTh2:
      case SpannerSpec::Kind::kTh3:
        if (p.key == "k") {
          spec.k = static_cast<Dist>(parse_uint_value(p));
        } else {
          unknown_key(split.kind, p);
        }
        break;
      case SpannerSpec::Kind::kGreedy:
        if (p.key == "t") {
          spec.t = parse_double_value(p);
        } else {
          unknown_key(split.kind, p);
        }
        break;
      case SpannerSpec::Kind::kBaswana:
        if (p.key == "k") {
          spec.k = static_cast<Dist>(parse_uint_value(p));
        } else if (p.key == "seed") {
          spec.seed = parse_uint_value(p);
        } else {
          unknown_key(split.kind, p);
        }
        break;
      case SpannerSpec::Kind::kMpr:
      case SpannerSpec::Kind::kFull:
      case SpannerSpec::Kind::kCustom:  // unreachable: custom returns above
        unknown_key(split.kind, p);
    }
  }
  if (spec.kind == SpannerSpec::Kind::kTh1 && !(spec.eps > 0.0 && spec.eps <= 1.0)) {
    throw SpecError("parameter 'eps': " + spec_number(spec.eps) + " is outside (0, 1]");
  }
  if ((spec.kind == SpannerSpec::Kind::kTh2 || spec.kind == SpannerSpec::Kind::kTh3 ||
       spec.kind == SpannerSpec::Kind::kBaswana) &&
      spec.k < 1) {
    throw SpecError("parameter 'k': must be >= 1");
  }
  if (spec.kind == SpannerSpec::Kind::kGreedy && !(spec.t >= 1.0)) {
    throw SpecError("parameter 't': " + spec_number(spec.t) + " is not >= 1");
  }
  return spec;
}

// --- GraphSpec ------------------------------------------------------------

GraphSpec GraphSpec::udg(NodeId n, double side, std::uint64_t seed) {
  GraphSpec s;
  s.kind = Kind::kUdg;
  s.n = n;
  s.side = side;
  s.seed = seed;
  return s;
}

GraphSpec GraphSpec::gnp(NodeId n, double deg, std::uint64_t seed) {
  GraphSpec s;
  s.kind = Kind::kGnp;
  s.n = n;
  s.deg = deg;
  s.seed = seed;
  return s;
}

GraphSpec GraphSpec::ba(NodeId n, NodeId m, std::uint64_t seed) {
  GraphSpec s;
  s.kind = Kind::kBa;
  s.n = n;
  s.m = m;
  s.seed = seed;
  return s;
}

GraphSpec GraphSpec::ws(NodeId n, NodeId ring, double rewire, std::uint64_t seed) {
  GraphSpec s;
  s.kind = Kind::kWs;
  s.n = n;
  s.ring = ring;
  s.rewire = rewire;
  s.seed = seed;
  return s;
}

GraphSpec GraphSpec::grid(NodeId n) {
  GraphSpec s;
  s.kind = Kind::kGrid;
  s.n = n;
  return s;
}

GraphSpec GraphSpec::file(std::string path) {
  GraphSpec s;
  s.kind = Kind::kFile;
  s.path = std::move(path);
  return s;
}

const char* GraphSpec::kind_name() const noexcept {
  switch (kind) {
    case Kind::kUdg: return "udg";
    case Kind::kGnp: return "gnp";
    case Kind::kBa: return "ba";
    case Kind::kWs: return "ws";
    case Kind::kGrid: return "grid";
    case Kind::kFile: return "file";
  }
  return "?";
}

std::string GraphSpec::to_string() const {
  if (kind == Kind::kFile) return "file:" + path;
  std::string out = kind_name();
  out += "?n=" + std::to_string(n);
  switch (kind) {
    case Kind::kUdg:
      out += "&side=" + spec_number(side);
      break;
    case Kind::kGnp:
      out += "&deg=" + spec_number(deg);
      break;
    case Kind::kBa:
      out += "&m=" + std::to_string(m);
      break;
    case Kind::kWs:
      out += "&ring=" + std::to_string(ring) + "&rewire=" + spec_number(rewire);
      break;
    case Kind::kGrid:
    case Kind::kFile:
      break;
  }
  if (kind != Kind::kGrid && seed != 1) out += "&seed=" + std::to_string(seed);
  return out;
}

GraphSpec parse_graph_spec(const std::string& text) {
  if (text.rfind("file:", 0) == 0) {
    const std::string path = text.substr(5);
    if (path.empty()) throw SpecError("graph spec 'file:' needs a path");
    return GraphSpec::file(path);
  }
  const SplitSpec split = split_spec(text);
  GraphSpec spec;
  if (split.kind == "udg") {
    spec = GraphSpec::udg(400);
  } else if (split.kind == "gnp") {
    spec = GraphSpec::gnp(400);
  } else if (split.kind == "ba") {
    spec = GraphSpec::ba(400);
  } else if (split.kind == "ws") {
    spec = GraphSpec::ws(400);
  } else if (split.kind == "grid") {
    spec = GraphSpec::grid(400);
  } else {
    throw SpecError("unknown graph family '" + split.kind +
                    "' (udg|gnp|ba|ws|grid|file:<path>)");
  }
  for (const Param& p : split.params) {
    const bool seed_ok = spec.kind != GraphSpec::Kind::kGrid;
    if (p.key == "n") {
      spec.n = static_cast<NodeId>(parse_uint_value(p));
    } else if (seed_ok && p.key == "seed") {
      spec.seed = parse_uint_value(p);
    } else if (spec.kind == GraphSpec::Kind::kUdg && p.key == "side") {
      spec.side = parse_double_value(p);
    } else if (spec.kind == GraphSpec::Kind::kGnp && p.key == "deg") {
      spec.deg = parse_double_value(p);
    } else if (spec.kind == GraphSpec::Kind::kBa && p.key == "m") {
      spec.m = static_cast<NodeId>(parse_uint_value(p));
    } else if (spec.kind == GraphSpec::Kind::kWs && p.key == "ring") {
      spec.ring = static_cast<NodeId>(parse_uint_value(p));
    } else if (spec.kind == GraphSpec::Kind::kWs && p.key == "rewire") {
      spec.rewire = parse_double_value(p);
    } else {
      unknown_key(split.kind, p);
    }
  }
  if (spec.kind != GraphSpec::Kind::kFile && spec.n < 1) {
    throw SpecError("parameter 'n': must be >= 1");
  }
  return spec;
}

Graph build_graph(const GraphSpec& spec, Rng* rng) {
  Rng local(spec.seed);
  Rng& r = rng != nullptr ? *rng : local;
  switch (spec.kind) {
    case GraphSpec::Kind::kUdg: {
      const auto gg = uniform_unit_ball_graph(spec.n, spec.side, 2, r);
      return largest_component(gg.graph);
    }
    case GraphSpec::Kind::kGnp:
      return connected_gnp(spec.n, spec.deg / spec.n, r);
    case GraphSpec::Kind::kBa:
      return barabasi_albert(spec.n, spec.m, r);
    case GraphSpec::Kind::kWs:
      return watts_strogatz(spec.n, spec.ring, spec.rewire, r);
    case GraphSpec::Kind::kGrid:
      return grid_graph(spec.n / 16 + 1, 16);
    case GraphSpec::Kind::kFile: {
      std::ifstream in(spec.path);
      if (!in) throw SpecError("cannot open " + spec.path);
      try {
        return read_edge_list(in);
      } catch (const CheckError& e) {
        throw SpecError("malformed edge list " + spec.path + ": " + e.what());
      }
    }
  }
  throw SpecError("unknown graph spec kind");
}

}  // namespace remspan::api
