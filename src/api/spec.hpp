// Typed, string-addressable descriptions of the library's two kinds of
// inputs: which spanner to build (SpannerSpec) and which graph to build it
// on (GraphSpec). Every spec has a canonical string form
//
//   spanner-spec := kind [ '?' key '=' value ( '&' key '=' value )* ]
//                   kind in { th1, th2, th3, mpr, greedy, baswana, full }
//                   or any runtime-registered construction name (kCustom:
//                   parameters pass through raw; the registry entry
//                   validates them)
//   graph-spec   := 'file:' path
//                 | kind [ '?' key '=' value ( '&' key '=' value )* ]
//                   kind in { udg, gnp, ba, ws, grid }
//
// e.g. "th1?eps=0.5", "th2?k=2", "baswana?k=3&seed=7", "udg?n=500&side=6",
// "file:graph.txt". parse and to_string round-trip: parse(to_string(s)) == s
// for every valid spec, and to_string(parse(str)) is the canonical spelling
// of str (parameters in fixed order, defaults that equal the canonical
// default omitted). Unknown kinds, unknown keys and out-of-range values
// throw SpecError with the offending token named.
//
// These specs are the currency of the whole public surface: the
// construction registry (api/registry.hpp) maps a SpannerSpec to a build
// function, remspan_tool assembles one from its flags, and the C ABI
// (include/remspan/remspan.h) accepts the string forms verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/remote_spanner.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace remspan::api {

/// Thrown on malformed or out-of-range specs; what() names the offending
/// kind/key/value. The C ABI maps it to REMSPAN_ERR_PARSE.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A fully-parameterized spanner construction. The seven kinds mirror the
/// constructions the library ships (three theorems plus the baselines);
/// only the parameters a kind reads are meaningful for it (the rest stay
/// at their defaults, and to_string never prints them).
struct SpannerSpec {
  enum class Kind : std::uint8_t {
    kTh1,      ///< Theorem 1: (1+eps, 1-2eps)-remote-spanner (param eps, tree)
    kTh2,      ///< Theorem 2: k-connecting (1,0)-remote-spanner (param k)
    kTh3,      ///< Theorem 3: k-connecting (2,-1)-remote-spanner (param k)
    kMpr,      ///< OLSR multipoint-relay union (RFC 3626)
    kGreedy,   ///< classical greedy (t,0)-spanner (param t)
    kBaswana,  ///< Baswana-Sen (2k-1,0)-spanner (params k, seed)
    kFull,     ///< all edges (trivial baseline)
    kCustom,   ///< a runtime-registered construction (name + raw params)
  };

  Kind kind = Kind::kTh2;
  double eps = 0.5;                          ///< th1 stretch parameter, 0 < eps <= 1
  TreeAlgorithm tree = TreeAlgorithm::kMis;  ///< th1 per-root backend
  Dist k = 1;                                ///< th2/th3 connectivity, baswana parameter
  double t = 3.0;                            ///< greedy stretch, >= 1
  std::uint64_t seed = 1;                    ///< baswana RNG seed
  /// kCustom only: the registry key plus the raw key=value parameters, in
  /// spec-string order. Built-in kinds leave both empty; the registered
  /// entry interprets the parameters (parse cannot validate them).
  std::string custom_name;
  std::vector<std::pair<std::string, std::string>> custom_params;

  [[nodiscard]] static SpannerSpec th1(double eps, TreeAlgorithm tree = TreeAlgorithm::kMis);
  [[nodiscard]] static SpannerSpec th2(Dist k = 1);
  [[nodiscard]] static SpannerSpec th3(Dist k = 2);
  [[nodiscard]] static SpannerSpec mpr();
  [[nodiscard]] static SpannerSpec greedy(double t = 3.0);
  [[nodiscard]] static SpannerSpec baswana(Dist k = 2, std::uint64_t seed = 1);
  [[nodiscard]] static SpannerSpec full();
  [[nodiscard]] static SpannerSpec custom(
      std::string name, std::vector<std::pair<std::string, std::string>> params = {});

  /// kCustom parameter lookup (nullopt when absent or not kCustom).
  [[nodiscard]] std::optional<std::string> custom_param(const std::string& key) const;

  /// Registry key of the kind: "th1", "th2", ..., or the custom name.
  [[nodiscard]] const char* kind_name() const noexcept;

  /// Canonical string form, e.g. "th1?eps=0.5" ("&tree=greedy" only when
  /// not the MIS default), "th2?k=1", "baswana?k=2" ("&seed=..." only when
  /// not the default 1), "mpr".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SpannerSpec&, const SpannerSpec&) = default;
};

/// Parses the spanner-spec grammar above; throws SpecError on unknown
/// kind/key, malformed numbers, or out-of-range values (eps outside (0,1],
/// k < 1, t < 1).
[[nodiscard]] SpannerSpec parse_spanner_spec(const std::string& text);

/// A graph workload: either a generator family with parameters or an edge
/// list file. Matches the generator semantics of remspan_tool: `udg` keeps
/// the largest component of a uniform unit disk graph, `gnp` conditions on
/// connectivity.
struct GraphSpec {
  enum class Kind : std::uint8_t {
    kUdg,   ///< uniform unit disk graph in [0,side]^2, largest component
    kGnp,   ///< connected G(n, deg/n)
    kBa,    ///< Barabasi-Albert preferential attachment (param m)
    kWs,    ///< Watts-Strogatz ring (params ring, rewire)
    kGrid,  ///< grid with 16 columns, ceil-ish rows (n/16 + 1)
    kFile,  ///< edge-list file (path)
  };

  Kind kind = Kind::kUdg;
  NodeId n = 400;           ///< node count target (generators)
  double side = 6.0;        ///< udg square side
  double deg = 10.0;        ///< gnp expected average degree
  NodeId m = 3;             ///< ba edges per arriving node
  NodeId ring = 6;          ///< ws ring degree
  double rewire = 0.1;      ///< ws rewiring probability
  std::uint64_t seed = 1;   ///< generator RNG seed
  std::string path;         ///< file path (kFile)

  [[nodiscard]] static GraphSpec udg(NodeId n, double side = 6.0, std::uint64_t seed = 1);
  [[nodiscard]] static GraphSpec gnp(NodeId n, double deg = 10.0, std::uint64_t seed = 1);
  [[nodiscard]] static GraphSpec ba(NodeId n, NodeId m = 3, std::uint64_t seed = 1);
  [[nodiscard]] static GraphSpec ws(NodeId n, NodeId ring = 6, double rewire = 0.1,
                                    std::uint64_t seed = 1);
  [[nodiscard]] static GraphSpec grid(NodeId n);
  [[nodiscard]] static GraphSpec file(std::string path);

  [[nodiscard]] const char* kind_name() const noexcept;

  /// Canonical string form, e.g. "udg?n=500&side=6" ("&seed=" only when
  /// not 1), "file:graph.txt".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const GraphSpec&, const GraphSpec&) = default;
};

/// Parses the graph-spec grammar; throws SpecError like parse_spanner_spec.
[[nodiscard]] GraphSpec parse_graph_spec(const std::string& text);

/// Materializes the workload a GraphSpec describes. Generator kinds consume
/// `rng` when one is passed (so a caller can thread one RNG through
/// generation and a seeded construction, the way remspan_tool does) and a
/// fresh Rng(spec.seed) otherwise. kFile reads the edge-list format of
/// graph/graphio.hpp; I/O and parse failures throw SpecError.
[[nodiscard]] Graph build_graph(const GraphSpec& spec, Rng* rng = nullptr);

/// Canonical minimal rendering of a numeric spec value ("0.5", not
/// "0.500000"); shared by the spec printers and the registry labels.
[[nodiscard]] std::string spec_number(double v);

}  // namespace remspan::api
