// Implementation of the versioned C ABI (include/remspan/remspan.h) on top
// of the remspan::api facade. This file compiles into the remspan_c shared
// library (default-hidden symbols; only the REMSPAN_API declarations are
// exported) — it is deliberately not part of libremspan.
//
// Conventions enforced here (machine-checked by remspan_lint rule R1):
//   * no exception crosses the ABI: every entry point's body is exactly one
//     top-level try block ending in catch (...) — even argument validation
//     runs inside it, because fail() allocates its message string and
//     std::bad_alloc must not unwind through extern "C";
//   * status-returning entry points map exceptions via trap(); accessors
//     and free() fall back to a neutral value (0, "", no-op);
//   * out-pointers are written only on REMSPAN_OK;
//   * handles own shared_ptr copies of their graph, so freeing handles in
//     any order is safe.
#include "remspan/remspan.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/c_abi_detail.hpp"
#include "api/observability.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace {

using remspan::Dist;
using remspan::DynamicGraph;
using remspan::EdgeSet;
using remspan::Graph;
using remspan::GraphBuilder;
using remspan::GraphEvent;
using remspan::NodeId;
namespace api = remspan::api;
using api::c_detail::copy_edges;
using api::c_detail::fail;
using api::c_detail::trap;

/// Same topology test for verify: the exact build handle, or any handle
/// holding an identical canonical node/edge set.
bool same_topology(const Graph& a, const Graph& b) {
  if (&a == &b) return true;
  return a.num_nodes() == b.num_nodes() && a.num_edges() == b.num_edges() &&
         std::equal(a.edges().begin(), a.edges().end(), b.edges().begin());
}

}  // namespace

struct remspan_spanner {
  std::shared_ptr<const Graph> graph;  ///< keeps result.edges' backing graph alive
  api::SpannerResult result;
  std::string spec;  ///< canonical spec string
};

struct remspan_session {
  std::unique_ptr<api::IncrementalSession> session;
};

extern "C" {

uint32_t remspan_abi_version(void) {
  try {
    return REMSPAN_ABI_VERSION;
  } catch (...) {
    return 0;
  }
}

const char* remspan_last_error(void) {
  try {
    return api::c_detail::last_error_cstr();
  } catch (...) {
    return "";
  }
}

/* --- graphs ------------------------------------------------------------- */

remspan_status_t remspan_graph_from_edges(uint32_t num_nodes, const uint32_t* endpoints,
                                          size_t num_edges, remspan_graph_t** out_graph) {
  try {
    if (out_graph == nullptr || (endpoints == nullptr && num_edges > 0)) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    for (size_t i = 0; i < num_edges; ++i) {
      const uint32_t u = endpoints[2 * i];
      const uint32_t v = endpoints[2 * i + 1];
      if (u >= num_nodes || v >= num_nodes || u == v) {
        return fail(REMSPAN_ERR_INVALID_ARGUMENT,
                    "edge " + std::to_string(i) + " {" + std::to_string(u) + "," +
                        std::to_string(v) + "} is out of range or a self-loop");
      }
    }
    GraphBuilder builder(num_nodes);
    builder.reserve(num_edges);
    for (size_t i = 0; i < num_edges; ++i) {
      builder.add_edge(endpoints[2 * i], endpoints[2 * i + 1]);
    }
    *out_graph = new remspan_graph{std::make_shared<const Graph>(builder.build())};
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_graph_load(const char* path, remspan_graph_t** out_graph) {
  try {
    if (path == nullptr || out_graph == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    Graph g = api::build_graph(api::GraphSpec::file(path));
    *out_graph = new remspan_graph{std::make_shared<const Graph>(std::move(g))};
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception(), REMSPAN_ERR_IO);
  }
}

remspan_status_t remspan_graph_generate(const char* graph_spec, remspan_graph_t** out_graph) {
  try {
    if (graph_spec == nullptr || out_graph == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    api::GraphSpec spec;
    try {
      spec = api::parse_graph_spec(graph_spec);
    } catch (...) {
      return trap(std::current_exception(), REMSPAN_ERR_PARSE);
    }
    Graph g = api::build_graph(spec);
    *out_graph = new remspan_graph{std::make_shared<const Graph>(std::move(g))};
    return REMSPAN_OK;
  } catch (...) {
    // Build-time SpecErrors are file problems (the generators validate in
    // the nested parse step above).
    return trap(std::current_exception(), REMSPAN_ERR_IO);
  }
}

uint32_t remspan_graph_num_nodes(const remspan_graph_t* graph) {
  try {
    return graph == nullptr ? 0 : graph->graph->num_nodes();
  } catch (...) {
    return 0;
  }
}

size_t remspan_graph_num_edges(const remspan_graph_t* graph) {
  try {
    return graph == nullptr ? 0 : graph->graph->num_edges();
  } catch (...) {
    return 0;
  }
}

size_t remspan_graph_edges(const remspan_graph_t* graph, uint32_t* endpoints,
                           size_t max_edges) {
  try {
    if (graph == nullptr || endpoints == nullptr) return 0;
    return copy_edges(graph->graph->edges(), endpoints, max_edges);
  } catch (...) {
    return 0;
  }
}

void remspan_graph_free(remspan_graph_t* graph) {
  try {
    delete graph;
  } catch (...) {
    // Swallow: a throwing destructor must not unwind through extern "C".
  }
}

/* --- spanners ----------------------------------------------------------- */

remspan_status_t remspan_spanner_build(const remspan_graph_t* graph, const char* spanner_spec,
                                       remspan_spanner_t** out_spanner) {
  try {
    if (graph == nullptr || spanner_spec == nullptr || out_spanner == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const api::SpannerSpec spec = api::parse_spanner_spec(spanner_spec);
    auto handle = std::make_unique<remspan_spanner>(
        remspan_spanner{graph->graph, api::build_spanner(*graph->graph, spec), spec.to_string()});
    *out_spanner = handle.release();
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

const char* remspan_spanner_spec(const remspan_spanner_t* spanner) {
  try {
    return spanner == nullptr ? "" : spanner->spec.c_str();
  } catch (...) {
    return "";
  }
}

size_t remspan_spanner_num_edges(const remspan_spanner_t* spanner) {
  try {
    return spanner == nullptr ? 0 : spanner->result.edges.size();
  } catch (...) {
    return 0;
  }
}

size_t remspan_spanner_edges(const remspan_spanner_t* spanner, uint32_t* endpoints,
                             size_t max_edges) {
  try {
    if (spanner == nullptr || endpoints == nullptr) return 0;
    return copy_edges(spanner->result.edges.edge_list(), endpoints, max_edges);
  } catch (...) {
    return 0;
  }
}

int remspan_spanner_contains(const remspan_spanner_t* spanner, uint32_t u, uint32_t v) {
  try {
    if (spanner == nullptr) return 0;
    const NodeId n = spanner->graph->num_nodes();
    if (u >= n || v >= n || u == v) return 0;
    return spanner->result.edges.contains(u, v) ? 1 : 0;
  } catch (...) {
    return 0;
  }
}

remspan_status_t remspan_spanner_guarantee(const remspan_spanner_t* spanner, double* out_alpha,
                                           double* out_beta) {
  try {
    if (spanner == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null spanner");
    }
    if (out_alpha != nullptr) *out_alpha = spanner->result.guarantee.alpha;
    if (out_beta != nullptr) *out_beta = spanner->result.guarantee.beta;
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_spanner_verify(const remspan_graph_t* graph,
                                        const remspan_spanner_t* spanner, uint64_t seed,
                                        int* out_satisfied, double* out_max_ratio) {
  try {
    if (graph == nullptr || spanner == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    if (!same_topology(*graph->graph, *spanner->graph)) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT,
                  "graph does not match the topology the spanner was built on");
    }
    if (spanner->result.verify == nullptr) {
      return fail(REMSPAN_ERR_UNSUPPORTED,
                  "construction '" + spanner->spec + "' has nothing to verify");
    }
    api::VerifyOptions opts;
    opts.seed = seed;
    const api::VerifyReport report =
        spanner->result.verify(*graph->graph, spanner->result.edges, opts);
    if (out_satisfied != nullptr) *out_satisfied = report.satisfied ? 1 : 0;
    if (out_max_ratio != nullptr) *out_max_ratio = report.max_ratio;
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

void remspan_spanner_free(remspan_spanner_t* spanner) {
  try {
    delete spanner;
  } catch (...) {
    // Swallow: a throwing destructor must not unwind through extern "C".
  }
}

/* --- incremental sessions ----------------------------------------------- */

remspan_status_t remspan_session_open(const remspan_graph_t* graph, const char* spanner_spec,
                                      remspan_session_t** out_session) {
  try {
    if (graph == nullptr || spanner_spec == nullptr || out_session == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    const api::SpannerSpec spec = api::parse_spanner_spec(spanner_spec);
    // For an unregistered custom name the registry lookup below throws
    // SpecError (-> REMSPAN_ERR_PARSE), which must not cross the ABI.
    if (!api::supports_incremental(spec)) {
      return fail(REMSPAN_ERR_UNSUPPORTED, "construction '" + std::string(spec.kind_name()) +
                                               "' has no incremental maintenance support");
    }
    auto session = api::open_incremental_session(*graph->graph, spec);
    *out_session = new remspan_session{std::move(session)};
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

remspan_status_t remspan_session_apply(remspan_session_t* session,
                                       const remspan_event_t* events, size_t num_events,
                                       remspan_batch_stats_t* out_stats) {
  try {
    if (session == nullptr || (events == nullptr && num_events > 0)) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    // Validate the whole batch before touching any state, so a bad event
    // cannot leave the session half-applied.
    const NodeId n = session->session->dynamic_graph().num_nodes();
    std::vector<GraphEvent> batch;
    batch.reserve(num_events);
    for (size_t i = 0; i < num_events; ++i) {
      const remspan_event_t& e = events[i];
      const bool edge_event =
          e.kind == REMSPAN_EVENT_EDGE_UP || e.kind == REMSPAN_EVENT_EDGE_DOWN;
      const bool node_event =
          e.kind == REMSPAN_EVENT_NODE_UP || e.kind == REMSPAN_EVENT_NODE_DOWN;
      if ((!edge_event && !node_event) || e.u >= n ||
          (edge_event && (e.v >= n || e.u == e.v))) {
        return fail(REMSPAN_ERR_INVALID_ARGUMENT,
                    "event " + std::to_string(i) + " is malformed (kind " +
                        std::to_string(e.kind) + ", u " + std::to_string(e.u) + ", v " +
                        std::to_string(e.v) + ", n " + std::to_string(n) + ")");
      }
      if (e.kind == REMSPAN_EVENT_EDGE_UP) {
        batch.push_back(GraphEvent::edge_up(e.u, e.v));
      } else if (e.kind == REMSPAN_EVENT_EDGE_DOWN) {
        batch.push_back(GraphEvent::edge_down(e.u, e.v));
      } else if (e.kind == REMSPAN_EVENT_NODE_UP) {
        batch.push_back(GraphEvent::node_up(e.u));
      } else {
        batch.push_back(GraphEvent::node_down(e.u));
      }
    }
    const remspan::ChurnBatchStats stats = session->session->apply_batch(batch);
    if (out_stats != nullptr) {
      *out_stats = remspan_batch_stats_t{stats.version,        stats.applied_events,
                                         stats.inserted_edges, stats.removed_edges,
                                         stats.dirty_roots,    stats.rebuilt_tree_edges,
                                         stats.spanner_edges,  stats.seconds};
    }
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

size_t remspan_session_spanner_num_edges(const remspan_session_t* session) {
  try {
    return session == nullptr ? 0 : session->session->spanner().size();
  } catch (...) {
    return 0;
  }
}

size_t remspan_session_spanner_edges(const remspan_session_t* session, uint32_t* endpoints,
                                     size_t max_edges) {
  try {
    if (session == nullptr || endpoints == nullptr) return 0;
    return copy_edges(session->session->spanner().edge_list(), endpoints, max_edges);
  } catch (...) {
    return 0;
  }
}

remspan_status_t remspan_session_graph(const remspan_session_t* session,
                                       remspan_graph_t** out_graph) {
  try {
    if (session == nullptr || out_graph == nullptr) {
      return fail(REMSPAN_ERR_INVALID_ARGUMENT, "null pointer argument");
    }
    *out_graph = new remspan_graph{session->session->dynamic_graph().snapshot()};
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

void remspan_session_free(remspan_session_t* session) {
  try {
    delete session;
  } catch (...) {
    // Swallow: a throwing destructor must not unwind through extern "C".
  }
}

/* --- observability ------------------------------------------------------ */

remspan_status_t remspan_metrics_enable(int enable) {
  try {
    // Trace stays driver-side (REMSPAN_TRACE / --trace-out); the ABI only
    // switches the metrics registry.
    api::enable_observability(enable != 0, /*trace=*/false);
    return REMSPAN_OK;
  } catch (...) {
    return trap(std::current_exception());
  }
}

const char* remspan_metrics_snapshot(void) {
  try {
    // Thread-local storage keeps the returned pointer valid until this
    // thread's next snapshot call, mirroring remspan_last_error().
    thread_local std::string t_snapshot;
    t_snapshot = api::metrics_snapshot_json();
    return t_snapshot.c_str();
  } catch (...) {
    return "";
  }
}

} /* extern "C" */
