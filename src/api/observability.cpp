#include "api/observability.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/obs.hpp"

namespace remspan::api {

namespace {

// Function-local statics: constructed on first use, alive until after the
// atexit writer registered by observability_from_env() has run.
obs::Registry& static_registry() {
  static obs::Registry registry;
  return registry;
}

obs::TraceBuffer& static_trace() {
  static obs::TraceBuffer buffer;
  return buffer;
}

bool g_metrics_on = false;
bool g_trace_on = false;

// Destinations of the atexit writer (empty = no write). Plain statics are
// safe here: the handler is registered after their construction, so it runs
// before their destruction.
std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

void write_env_outputs() {
  // Exit path: failures have nowhere to go but stderr-less silence; the CI
  // checker notices the missing file.
  if (!trace_path().empty()) (void)write_trace_file(trace_path(), nullptr);
  if (!metrics_path().empty()) (void)write_metrics_file(metrics_path(), nullptr);
}

}  // namespace

void enable_observability(bool metrics, bool trace) {
  g_metrics_on = metrics;
  g_trace_on = trace;
  obs::install(metrics ? &static_registry() : nullptr, trace ? &static_trace() : nullptr);
}

void disable_observability() { enable_observability(false, false); }

bool observability_enabled() noexcept { return g_metrics_on || g_trace_on; }

obs::Registry& observability_registry() { return static_registry(); }

obs::TraceBuffer& observability_trace_buffer() { return static_trace(); }

std::string metrics_snapshot_json() { return static_registry().snapshot().to_json(); }

bool write_trace_file(const std::string& path, std::string* error) {
  return static_trace().write_file(path, error);
}

bool write_metrics_file(const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << metrics_snapshot_json() << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void observability_from_env() {
  const char* trace_env = std::getenv("REMSPAN_TRACE");
  const char* metrics_env = std::getenv("REMSPAN_METRICS");
  trace_path() = trace_env != nullptr ? trace_env : "";
  metrics_path() = metrics_env != nullptr ? metrics_env : "";
  if (trace_env == nullptr && metrics_env == nullptr) return;
  enable_observability(metrics_env != nullptr, trace_env != nullptr);
  static const bool registered = [] {
    std::atexit(write_env_outputs);
    return true;
  }();
  (void)registered;
}

}  // namespace remspan::api
