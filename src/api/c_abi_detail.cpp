#include "api/c_abi_detail.hpp"

#include <algorithm>
#include <utility>

#include "api/spec.hpp"
#include "serve/service.hpp"
#include "util/prelude.hpp"

namespace remspan::api::c_detail {

namespace {
thread_local std::string t_last_error;
}  // namespace

remspan_status_t fail(remspan_status_t status, std::string message) {
  t_last_error = std::move(message);
  return status;
}

remspan_status_t trap(std::exception_ptr error, remspan_status_t spec_status) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const SpecError& e) {
    return fail(spec_status, e.what());
  } catch (const serve::ServiceError& e) {
    return fail(REMSPAN_ERR_INVALID_ARGUMENT, e.what());
  } catch (const CheckError& e) {
    return fail(REMSPAN_ERR_INTERNAL, e.what());
  } catch (const std::exception& e) {
    return fail(REMSPAN_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(REMSPAN_ERR_INTERNAL, "unknown error");
  }
}

const char* last_error_cstr() noexcept {
  try {
    return t_last_error.c_str();
  } catch (...) {
    return "";
  }
}

std::size_t copy_edges(std::span<const Edge> edges, std::uint32_t* endpoints,
                       std::size_t max_edges) {
  const std::size_t count = std::min(max_edges, edges.size());
  for (std::size_t i = 0; i < count; ++i) {
    endpoints[2 * i] = edges[i].u;
    endpoints[2 * i + 1] = edges[i].v;
  }
  return count;
}

}  // namespace remspan::api::c_detail
