// Algorithm RemSpan (paper Section 2.3) as a node program on the
// synchronous simulator:
//
//   round 1                  : HELLO broadcast (neighbor discovery)
//   rounds 2 .. 1+scope      : flood own neighbor list to B(u, scope)
//   round 2+scope            : compute the dominating tree T_u from the
//                              locally reconstructed topology
//   rounds 2+scope .. 1+2*scope : flood T_u to B(u, scope)
//
// with scope = r - 1 + beta, for a total of 2r - 1 + 2*beta rounds exactly
// as derived in the paper. Each node computes its tree from nothing but the
// neighbor lists it actually received — the tests assert the distributed
// union equals the centralized construction edge-for-edge.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/dominating_tree.hpp"
#include "sim/flooding.hpp"
#include "sim/link_model.hpp"
#include "sim/network.hpp"

namespace remspan {

/// Message types of the advertise/compute/flood pipeline, shared by
/// RemSpanProtocol and the churn-driven ReconvergenceSim protocols.
inline constexpr std::uint32_t kMsgHello = 1;         ///< neighbor discovery, empty payload
inline constexpr std::uint32_t kMsgNeighborList = 2;  ///< origin's sorted neighbor list
inline constexpr std::uint32_t kMsgTree = 3;          ///< origin's tree edges as (u,v) pairs

/// Under a reliable (retransmitting) configuration the kMsgNeighborList and
/// kMsgTree payloads carry a leading content-version word so receivers can
/// discard stale copies regardless of arrival order (delay jitter reorders
/// floods); the lossless one-shot schedule omits it — content is flooded
/// exactly once, so there is nothing to order.
inline constexpr std::size_t kVersionPrefixWords = 1;

/// Safety margin added to the exact 1 + 2*scope schedule when capping a
/// lossless protocol epoch. A lossless run terminates by quiescence at
/// exactly expected_rounds() (pinned by Reconvergence.LosslessRunsStopAt
/// ExactlyThePredictedRound); the slack only bounds the simulator loop if
/// a protocol bug ever kept messages in flight, so that the failure shows
/// up as a wrong round count instead of a hang.
inline constexpr std::uint32_t kLosslessRoundSlack = 4;

struct RemSpanConfig {
  /// Which dominating-tree algorithm each node runs locally.
  enum class Kind {
    kLowStretchGreedy,  ///< Algorithm 1, (r, beta)-dominating trees
    kLowStretchMis,     ///< Algorithm 2, (r, 1)-dominating trees
    kKConnGreedy,       ///< Algorithm 4, k-connecting (2,0)-dominating trees
    kKConnMis,          ///< Algorithm 5, k-connecting (2,1)-dominating trees
    kOlsrMpr,           ///< RFC 3626 multipoint-relay selection (baseline)
  };

  Kind kind = Kind::kKConnGreedy;
  Dist r = 2;     ///< low-stretch radius (>= 2)
  Dist beta = 1;  ///< low-stretch slack (greedy only; MIS is beta = 1)
  Dist k = 1;     ///< connectivity target for the k-connecting kinds

  /// Flooding scope r - 1 + beta; how far neighbor lists and trees travel.
  /// Equal to the dependency radius max(1, r+beta-1) of the per-root
  /// computation for every kind (IncrementalConfig::dirty_radius), which is
  /// what lets the reconvergence driver scope re-advertisement to the dirty
  /// ball without changing the converged result.
  [[nodiscard]] Dist flood_scope() const;

  /// Total round budget 2r - 1 + 2 beta claimed by the paper.
  [[nodiscard]] std::uint32_t expected_rounds() const;

  /// Simulator cap for one lossless epoch: the exact schedule plus
  /// kLosslessRoundSlack so a protocol bug hangs the round counter, not the
  /// process. The single named home of the former "expected_rounds() + 4".
  [[nodiscard]] std::uint32_t round_budget() const {
    return expected_rounds() + kLosslessRoundSlack;
  }

  /// Human-readable kind name (bench/tool labels).
  [[nodiscard]] const char* kind_name() const noexcept;
};

/// The node-local computation of the protocol: reconstructs the topology
/// within the flood scope from `self`'s own (sorted) neighbor list plus the
/// received per-origin neighbor lists, runs the configured per-root
/// algorithm on it, and returns the selected tree edges in global node ids.
///
/// Node ids are compacted monotonically before the tree build so every
/// id-based tie-break matches the centralized computation on the full graph
/// — this is the function that makes "distributed union == centralized
/// spanner" hold edge-for-edge.
///
/// @param config     Protocol kind and parameters.
/// @param self       The computing node (global id).
/// @param neighbors  self's current neighbor list, sorted ascending.
/// @param lists      origin -> its sorted neighbor list, for every origin
///                   within the flood scope of self.
/// @return           The tree (or MPR star) edges rooted at self.
[[nodiscard]] std::vector<Edge> compute_local_tree_edges(
    const RemSpanConfig& config, NodeId self, const std::vector<NodeId>& neighbors,
    const std::map<NodeId, std::vector<NodeId>>& lists);

/// Telemetry hook for the ack-less retransmission machinery, shared by
/// RemSpanProtocol and the reconvergence epoch protocol: bumps the
/// sim.retransmissions counter, records the freshly scheduled backoff
/// interval (backoff state occupancy), and drops an instant trace event on
/// the node's simulator lane (ts = round number — deterministic, no wall
/// clock). Costs one branch per sink when nothing is installed.
void record_retransmit_obs(NodeId self, std::uint32_t round, std::uint32_t interval);

class RemSpanProtocol : public Protocol {
 public:
  /// With reliability disabled (the default) the node runs the paper's
  /// exact one-shot schedule — bit-identical wire accounting to the
  /// pre-fault-layer protocol. With reliability enabled it additionally
  /// re-advertises HELLO + list + tree with capped exponential backoff,
  /// version-prefixes the flood payloads, and recomputes its tree whenever
  /// late input arrives, so it converges over a lossy LinkModel channel.
  explicit RemSpanProtocol(const RemSpanConfig& config, const ReliabilityConfig& rel = {})
      : config_(config), rel_(rel) {}

  void on_round(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;
  /// Reliable nodes never self-declare done: an ack-less sender cannot know
  /// its floods landed, so termination is the quiescence detector's call.
  [[nodiscard]] bool done() const override { return rel_.enabled ? false : tree_flooded_; }
  [[nodiscard]] std::uint64_t state_version() const override { return progress_; }

  /// This node's dominating tree (global edge endpoints); valid once done().
  [[nodiscard]] const std::vector<Edge>& tree_edges() const { return tree_edges_; }

  /// Every tree edge this node has heard about (its own plus received
  /// TREE floods) — the node-local view of the spanner.
  [[nodiscard]] const std::vector<Edge>& heard_tree_edges() const { return heard_edges_; }

  /// Neighbor lists this node accumulated (origin -> list); exposed for the
  /// locality tests.
  [[nodiscard]] const std::map<NodeId, std::vector<NodeId>>& topology_knowledge() const {
    return topology_;
  }

  // Read-only hooks for the driver's completeness oracle (reliable mode;
  // see run_remspan_distributed and reconvergence.hpp proof-sketch step 4).
  /// True once nothing is scheduled locally: the tree is computed and no
  /// re-advertisement or recompute is pending over the inputs so far.
  [[nodiscard]] bool settled() const noexcept {
    return tree_computed_ && !recompute_needed_ && !list_dirty_;
  }
  /// The neighbor set accumulated from HELLOs, sorted ascending (valid
  /// from local round 2 on).
  [[nodiscard]] const std::vector<NodeId>& sensed_neighbors() const noexcept {
    return neighbors_;
  }
  /// Latest accepted tree per origin (reliable mode backing of
  /// heard_tree_edges()).
  [[nodiscard]] const std::map<NodeId, std::vector<Edge>>& heard_trees() const noexcept {
    return heard_trees_;
  }

 private:
  void compute_tree(NodeContext& ctx);
  void flood_payload_and_finish(NodeContext& ctx);
  // Reliable-mode helpers (rel_.enabled only).
  void send_hello(NodeContext& ctx);
  void advertise_list(NodeContext& ctx);
  void flood_tree(NodeContext& ctx);
  void rebuild_heard_edges();

  RemSpanConfig config_;
  ReliabilityConfig rel_;
  FloodManager flood_;
  std::vector<NodeId> neighbors_;                     // from HELLO
  std::map<NodeId, std::vector<NodeId>> topology_;    // origin -> its neighbors
  std::vector<Edge> tree_edges_;
  std::vector<Edge> heard_edges_;
  std::uint32_t local_round_ = 0;
  bool tree_computed_ = false;
  bool tree_flooded_ = false;
  // Reliable mode only: progress counter for the quiescence detector,
  // content versions of the own streams, accepted version per origin and
  // stream (monotone acceptance makes delayed reordered copies harmless),
  // per-origin trees backing heard_edges_, and the retransmission clock.
  std::uint64_t progress_ = 0;
  std::uint32_t list_version_ = 0;
  std::uint32_t tree_version_ = 0;
  bool list_dirty_ = false;       // content changed since last advertisement
  bool recompute_needed_ = false; // tree inputs changed since last compute
  std::map<NodeId, std::uint32_t> list_rx_version_;
  std::map<NodeId, std::uint32_t> tree_rx_version_;
  std::map<NodeId, std::vector<Edge>> heard_trees_;
  std::uint32_t retransmit_interval_ = 0;
  std::uint32_t next_retransmit_ = 0;
  std::uint32_t resend_count_ = 0;  // feeds the per-node emission jitter
};

/// Runs the protocol on g and returns the union of all computed trees as an
/// EdgeSet of g, plus the stats of the run.
struct DistributedRunResult {
  EdgeSet spanner;
  NetworkStats stats;
  std::uint32_t rounds = 0;
};
[[nodiscard]] DistributedRunResult run_remspan_distributed(const Graph& g,
                                                           const RemSpanConfig& config);

/// As above, but over a faulted channel: attaches a LinkModel built from
/// `faults.link` and, whenever the channel is faulty (or reliability was
/// requested explicitly), runs the reliable protocol variant until the
/// quiescence detector fires. For a faultless default FaultConfig this is
/// byte-identical to the two-argument overload. The convergence-under-loss
/// contract (reconvergence.hpp) applies: for any loss rate < 1 the returned
/// spanner equals the lossless run's spanner edge-for-edge.
[[nodiscard]] DistributedRunResult run_remspan_distributed(const Graph& g,
                                                           const RemSpanConfig& config,
                                                           const FaultConfig& faults);

}  // namespace remspan
