// Algorithm RemSpan (paper Section 2.3) as a node program on the
// synchronous simulator:
//
//   round 1                  : HELLO broadcast (neighbor discovery)
//   rounds 2 .. 1+scope      : flood own neighbor list to B(u, scope)
//   round 2+scope            : compute the dominating tree T_u from the
//                              locally reconstructed topology
//   rounds 2+scope .. 1+2*scope : flood T_u to B(u, scope)
//
// with scope = r - 1 + beta, for a total of 2r - 1 + 2*beta rounds exactly
// as derived in the paper. Each node computes its tree from nothing but the
// neighbor lists it actually received — the tests assert the distributed
// union equals the centralized construction edge-for-edge.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/dominating_tree.hpp"
#include "sim/flooding.hpp"
#include "sim/network.hpp"

namespace remspan {

/// Message types of the advertise/compute/flood pipeline, shared by
/// RemSpanProtocol and the churn-driven ReconvergenceSim protocols.
inline constexpr std::uint32_t kMsgHello = 1;         ///< neighbor discovery, empty payload
inline constexpr std::uint32_t kMsgNeighborList = 2;  ///< origin's sorted neighbor list
inline constexpr std::uint32_t kMsgTree = 3;          ///< origin's tree edges as (u,v) pairs

struct RemSpanConfig {
  /// Which dominating-tree algorithm each node runs locally.
  enum class Kind {
    kLowStretchGreedy,  ///< Algorithm 1, (r, beta)-dominating trees
    kLowStretchMis,     ///< Algorithm 2, (r, 1)-dominating trees
    kKConnGreedy,       ///< Algorithm 4, k-connecting (2,0)-dominating trees
    kKConnMis,          ///< Algorithm 5, k-connecting (2,1)-dominating trees
    kOlsrMpr,           ///< RFC 3626 multipoint-relay selection (baseline)
  };

  Kind kind = Kind::kKConnGreedy;
  Dist r = 2;     ///< low-stretch radius (>= 2)
  Dist beta = 1;  ///< low-stretch slack (greedy only; MIS is beta = 1)
  Dist k = 1;     ///< connectivity target for the k-connecting kinds

  /// Flooding scope r - 1 + beta; how far neighbor lists and trees travel.
  /// Equal to the dependency radius max(1, r+beta-1) of the per-root
  /// computation for every kind (IncrementalConfig::dirty_radius), which is
  /// what lets the reconvergence driver scope re-advertisement to the dirty
  /// ball without changing the converged result.
  [[nodiscard]] Dist flood_scope() const;

  /// Total round budget 2r - 1 + 2 beta claimed by the paper.
  [[nodiscard]] std::uint32_t expected_rounds() const;

  /// Human-readable kind name (bench/tool labels).
  [[nodiscard]] const char* kind_name() const noexcept;
};

/// The node-local computation of the protocol: reconstructs the topology
/// within the flood scope from `self`'s own (sorted) neighbor list plus the
/// received per-origin neighbor lists, runs the configured per-root
/// algorithm on it, and returns the selected tree edges in global node ids.
///
/// Node ids are compacted monotonically before the tree build so every
/// id-based tie-break matches the centralized computation on the full graph
/// — this is the function that makes "distributed union == centralized
/// spanner" hold edge-for-edge.
///
/// @param config     Protocol kind and parameters.
/// @param self       The computing node (global id).
/// @param neighbors  self's current neighbor list, sorted ascending.
/// @param lists      origin -> its sorted neighbor list, for every origin
///                   within the flood scope of self.
/// @return           The tree (or MPR star) edges rooted at self.
[[nodiscard]] std::vector<Edge> compute_local_tree_edges(
    const RemSpanConfig& config, NodeId self, const std::vector<NodeId>& neighbors,
    const std::map<NodeId, std::vector<NodeId>>& lists);

class RemSpanProtocol : public Protocol {
 public:
  explicit RemSpanProtocol(const RemSpanConfig& config) : config_(config) {}

  void on_round(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;
  [[nodiscard]] bool done() const override { return tree_flooded_; }

  /// This node's dominating tree (global edge endpoints); valid once done().
  [[nodiscard]] const std::vector<Edge>& tree_edges() const { return tree_edges_; }

  /// Every tree edge this node has heard about (its own plus received
  /// TREE floods) — the node-local view of the spanner.
  [[nodiscard]] const std::vector<Edge>& heard_tree_edges() const { return heard_edges_; }

  /// Neighbor lists this node accumulated (origin -> list); exposed for the
  /// locality tests.
  [[nodiscard]] const std::map<NodeId, std::vector<NodeId>>& topology_knowledge() const {
    return topology_;
  }

 private:
  void compute_tree(NodeContext& ctx);
  void flood_payload_and_finish(NodeContext& ctx);

  RemSpanConfig config_;
  FloodManager flood_;
  std::vector<NodeId> neighbors_;                     // from HELLO
  std::map<NodeId, std::vector<NodeId>> topology_;    // origin -> its neighbors
  std::vector<Edge> tree_edges_;
  std::vector<Edge> heard_edges_;
  std::uint32_t local_round_ = 0;
  bool tree_computed_ = false;
  bool tree_flooded_ = false;
};

/// Runs the protocol on g and returns the union of all computed trees as an
/// EdgeSet of g, plus the stats of the run.
struct DistributedRunResult {
  EdgeSet spanner;
  NetworkStats stats;
  std::uint32_t rounds = 0;
};
[[nodiscard]] DistributedRunResult run_remspan_distributed(const Graph& g,
                                                           const RemSpanConfig& config);

}  // namespace remspan
