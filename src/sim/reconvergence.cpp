#include "sim/reconvergence.hpp"

#include <utility>

#include "dynamic/incremental_spanner.hpp"
#include "sim/flooding.hpp"
#include "util/timer.hpp"

namespace remspan {

const char* strategy_name(ReconvergeStrategy strategy) noexcept {
  return strategy == ReconvergeStrategy::kIncremental ? "incremental" : "full-reflood";
}

namespace {

/// The epoch-based node program behind ReconvergenceSim. Each batch is one
/// epoch: the driver marks the node advertising or passive and restarts its
/// local round counter; an advertising node replays the RemSpan schedule
/// (HELLO, neighbor-list flood, tree recompute + flood) while a passive
/// node only stores and forwards other nodes' floods.
class ReconvergeProtocol final : public Protocol {
 public:
  ReconvergeProtocol(const RemSpanConfig& config, NodeId self)
      : config_(config), self_(self) {}

  /// Link-layer sensing: the driver hands over the node's current neighbor
  /// list (sorted) whenever one of its links changed.
  void sense_neighbors(std::vector<NodeId> sorted) { neighbors_ = std::move(sorted); }

  /// Starts a new epoch. `advertise` nodes rerun the protocol schedule;
  /// `reset_state` additionally discards all accumulated knowledge (the
  /// full-re-flood strawman's cold start).
  void begin_epoch(bool advertise, bool reset_state) {
    if (reset_state) {
      lists_.clear();
      trees_.clear();
      tree_edges_.clear();
    }
    // The previous epoch ran to quiescence, so its duplicate-suppression
    // keys can never match again (seqs only grow); keep memory O(live state).
    flood_.reset_seen();
    advertise_ = advertise;
    round_ = 0;
    finished_ = !advertise;
  }

  void on_round(NodeContext& ctx) override {
    ++round_;
    if (!advertise_) return;
    const Dist scope = config_.flood_scope();
    if (round_ == 1) {
      Message hello;
      hello.type = kMsgHello;
      hello.origin = self_;
      ctx.broadcast(std::move(hello));
      return;
    }
    if (round_ == 2) {
      flood_.originate(ctx, kMsgNeighborList, scope,
                       std::vector<std::uint32_t>(neighbors_.begin(), neighbors_.end()));
      return;
    }
    if (round_ == 2 + scope && !finished_) {
      prune_to_ball();
      tree_edges_ = compute_local_tree_edges(config_, self_, neighbors_, lists_);
      std::vector<std::uint32_t> payload;
      payload.reserve(tree_edges_.size() * 2);
      for (const Edge& e : tree_edges_) {
        payload.push_back(e.u);
        payload.push_back(e.v);
      }
      flood_.originate(ctx, kMsgTree, scope, std::move(payload));
      finished_ = true;
    }
  }

  void on_message(NodeContext& ctx, const Message& msg) override {
    switch (msg.type) {
      case kMsgHello:
        break;  // sensing is driver-side; the delivery is still accounted
      case kMsgNeighborList: {
        if (!flood_.accept(ctx, msg)) break;
        lists_[msg.origin] = std::vector<NodeId>(msg.payload.begin(), msg.payload.end());
        break;
      }
      case kMsgTree: {
        if (!flood_.accept(ctx, msg)) break;
        std::vector<Edge> edges;
        edges.reserve(msg.payload.size() / 2);
        for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
          edges.push_back(make_edge(msg.payload[i], msg.payload[i + 1]));
        }
        trees_[msg.origin] = std::move(edges);
        break;
      }
      default:
        break;
    }
  }

  [[nodiscard]] bool done() const override { return finished_; }

  [[nodiscard]] const std::vector<Edge>& tree_edges() const noexcept { return tree_edges_; }

  /// The scope-ball around this node walked over its stored lists: sorted
  /// origins at distance 1..scope (self excluded). Entries inside the ball
  /// are provably fresh (header comment), so the walk follows real edges
  /// only; a missing in-ball entry would falsify the re-advertisement
  /// invariant and is REMSPAN_CHECKed.
  [[nodiscard]] std::vector<NodeId> ball_origins() const {
    std::map<NodeId, Dist> dist;
    dist.emplace(self_, 0);
    std::vector<NodeId> frontier{self_};
    for (Dist d = 0; d < config_.flood_scope() && !frontier.empty(); ++d) {
      std::vector<NodeId> next;
      for (const NodeId w : frontier) {
        const std::vector<NodeId>* nbrs = &neighbors_;
        if (w != self_) {
          const auto it = lists_.find(w);
          REMSPAN_CHECK(it != lists_.end());
          nbrs = &it->second;
        }
        for (const NodeId x : *nbrs) {
          if (dist.emplace(x, d + 1).second) next.push_back(x);
        }
      }
      frontier = std::move(next);
    }
    std::vector<NodeId> out;
    out.reserve(dist.size() - 1);
    for (const auto& entry : dist) {
      if (entry.first != self_) out.push_back(entry.first);
    }
    return out;  // std::map iteration: already sorted
  }

  [[nodiscard]] std::map<NodeId, std::vector<NodeId>> pruned_lists() const {
    std::map<NodeId, std::vector<NodeId>> out;
    for (const NodeId v : ball_origins()) {
      const auto it = lists_.find(v);
      REMSPAN_CHECK(it != lists_.end());
      out.emplace(v, it->second);
    }
    return out;
  }

  [[nodiscard]] std::map<NodeId, std::vector<Edge>> pruned_trees() const {
    std::map<NodeId, std::vector<Edge>> out;
    out.emplace(self_, tree_edges_);
    for (const NodeId v : ball_origins()) {
      const auto it = trees_.find(v);
      REMSPAN_CHECK(it != trees_.end());
      out.emplace(v, it->second);
    }
    return out;
  }

 private:
  /// Drops every stored list / tree entry whose origin left the scope-ball;
  /// called right before the tree recompute so stale knowledge can never
  /// leak into the local graph. Runs mid-epoch: this epoch's tree floods
  /// are still in flight, so a ball origin may legitimately have no tree
  /// entry yet (unlike in pruned_trees(), which reads converged state).
  void prune_to_ball() {
    const std::vector<NodeId> ball = ball_origins();
    std::map<NodeId, std::vector<NodeId>> lists;
    std::map<NodeId, std::vector<Edge>> trees;
    for (const NodeId v : ball) {
      const auto it = lists_.find(v);
      REMSPAN_CHECK(it != lists_.end());
      lists.emplace(v, std::move(it->second));
      const auto jt = trees_.find(v);
      if (jt != trees_.end()) trees.emplace(v, std::move(jt->second));
    }
    lists_ = std::move(lists);
    trees_ = std::move(trees);
  }

  RemSpanConfig config_;
  NodeId self_;
  FloodManager flood_;
  std::vector<NodeId> neighbors_;              // sensed, sorted
  std::map<NodeId, std::vector<NodeId>> lists_;  // origin -> latest neighbor list
  std::map<NodeId, std::vector<Edge>> trees_;    // origin -> latest tree
  std::vector<Edge> tree_edges_;               // own advertised tree
  std::uint32_t round_ = 0;
  bool advertise_ = false;
  bool finished_ = true;
};

ReconvergeProtocol& proto(Network& net, NodeId v) {
  return dynamic_cast<ReconvergeProtocol&>(net.node(v));
}

std::vector<NodeId> sorted_neighbors(const Graph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);  // CSR rows are sorted
  return {nbrs.begin(), nbrs.end()};
}

}  // namespace

ReconvergenceSim::ReconvergenceSim(const Graph& initial, const RemSpanConfig& config,
                                   ReconvergeStrategy strategy)
    : config_(config),
      strategy_(strategy),
      dynamic_(initial),
      graph_(dynamic_.snapshot()),
      dirty_bfs_(initial.num_nodes()) {
  Timer timer;
  net_ = std::make_unique<Network>(*graph_, [&config](NodeId v) {
    return std::make_unique<ReconvergeProtocol>(config, v);
  });
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    auto& p = proto(*net_, v);
    p.sense_neighbors(sorted_neighbors(*graph_, v));
    p.begin_epoch(/*advertise=*/true, /*reset_state=*/true);
  }
  initial_.rounds = net_->run(config_.expected_rounds() + 4);
  const NetworkStats& s = net_->stats();
  initial_.advertising_nodes = graph_->num_nodes();
  initial_.transmissions = s.transmissions;
  initial_.receptions = s.receptions;
  initial_.payload_words = s.payload_words;
  initial_.wire_bytes = s.wire_bytes();
  initial_.spanner_edges = spanner().size();
  initial_.seconds = timer.seconds();
}

ReconvergenceSim::~ReconvergenceSim() = default;

ReconvergeBatchStats ReconvergenceSim::apply_batch(std::span<const GraphEvent> events) {
  Timer timer;
  ReconvergeBatchStats stats;
  stats.batch = ++epoch_;
  stats.applied_events = dynamic_.apply_all(events);

  const std::shared_ptr<const Graph> old_graph = graph_;
  const std::shared_ptr<const Graph> new_graph = dynamic_.snapshot();
  const GraphDelta delta = diff_graphs(*old_graph, *new_graph);
  graph_ = new_graph;
  net_->change_topology(*graph_);
  if (delta.empty()) {
    // No live-topology change: nobody re-advertises, nothing flows.
    stats.spanner_edges = spanner().size();
    stats.seconds = timer.seconds();
    return stats;
  }
  stats.removed_edges = delta.removed.size();
  stats.inserted_edges = delta.inserted.size();

  const std::vector<NodeId> touched = touched_endpoints(delta);
  stats.touched_nodes = touched.size();

  if (strategy_ == ReconvergeStrategy::kFullReflood) {
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      auto& p = proto(*net_, v);
      p.sense_neighbors(sorted_neighbors(*graph_, v));
      p.begin_epoch(/*advertise=*/true, /*reset_state=*/true);
    }
    stats.advertising_nodes = graph_->num_nodes();
  } else {
    const std::vector<NodeId> dirty = collect_dirty_roots(
        *old_graph, *new_graph, touched, config_.flood_scope(), dirty_bfs_, dirty_flag_);
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      proto(*net_, v).begin_epoch(/*advertise=*/dirty_flag_[v] != 0, /*reset_state=*/false);
    }
    for (const NodeId v : touched) {
      proto(*net_, v).sense_neighbors(sorted_neighbors(*graph_, v));
    }
    stats.advertising_nodes = dirty.size();
  }

  const NetworkStats before = net_->stats();
  stats.rounds = net_->run(config_.expected_rounds() + 4);
  const NetworkStats delta_stats = net_->stats() - before;
  stats.transmissions = delta_stats.transmissions;
  stats.receptions = delta_stats.receptions;
  stats.payload_words = delta_stats.payload_words;
  stats.wire_bytes = delta_stats.wire_bytes();
  stats.spanner_edges = spanner().size();
  stats.seconds = timer.seconds();
  return stats;
}

EdgeSet ReconvergenceSim::spanner() const {
  EdgeSet h(*graph_);
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    for (const Edge& e : proto(*net_, v).tree_edges()) {
      const EdgeId id = graph_->find_edge(e.u, e.v);
      REMSPAN_CHECK(id != kInvalidEdge);
      h.insert(id);
    }
  }
  return h;
}

const std::vector<Edge>& ReconvergenceSim::node_tree(NodeId v) const {
  return proto(*net_, v).tree_edges();
}

std::map<NodeId, std::vector<NodeId>> ReconvergenceSim::node_ball_lists(NodeId v) const {
  return proto(*net_, v).pruned_lists();
}

std::map<NodeId, std::vector<Edge>> ReconvergenceSim::node_ball_trees(NodeId v) const {
  return proto(*net_, v).pruned_trees();
}

}  // namespace remspan
