#include "sim/reconvergence.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "dynamic/incremental_spanner.hpp"
#include "obs/obs.hpp"
#include "sim/flooding.hpp"

namespace remspan {

const char* strategy_name(ReconvergeStrategy strategy) noexcept {
  return strategy == ReconvergeStrategy::kIncremental ? "incremental" : "full-reflood";
}

namespace {

/// The epoch-based node program behind ReconvergenceSim. Each batch is one
/// epoch: the driver marks the node advertising or passive and restarts its
/// local round counter; an advertising node replays the RemSpan schedule
/// (HELLO, neighbor-list flood, tree recompute + flood) while a passive
/// node only stores and forwards other nodes' floods.
class ReconvergeProtocol final : public Protocol {
 public:
  ReconvergeProtocol(const RemSpanConfig& config, NodeId self, const ReliabilityConfig& rel = {})
      : config_(config), rel_(rel), self_(self) {}

  /// Link-layer sensing: the driver hands over the node's current neighbor
  /// list (sorted) whenever one of its links changed.
  void sense_neighbors(std::vector<NodeId> sorted) { neighbors_ = std::move(sorted); }

  /// Starts a new epoch. `advertise` nodes rerun the protocol schedule;
  /// `reset_state` additionally discards all accumulated knowledge (the
  /// full-re-flood strawman's cold start).
  void begin_epoch(bool advertise, bool reset_state) {
    if (reset_state) {
      lists_.clear();
      trees_.clear();
      tree_edges_.clear();
    }
    // The previous epoch ran to quiescence, so its duplicate-suppression
    // keys can never match again (seqs only grow); keep memory O(live state).
    flood_.reset_seen();
    advertise_ = advertise;
    round_ = 0;
    finished_ = !advertise;
    // Reliable per-epoch state: content versions restart (each epoch's list
    // content is fixed, trees may be recomputed as late input arrives) and
    // the receive-side dedup maps empty alongside the suppression keys.
    computed_ = false;
    recompute_needed_ = false;
    my_tree_version_ = 0;
    lists_rx_epoch_.clear();
    tree_rx_version_.clear();
    retransmit_interval_ = 0;
    next_retransmit_ = 0;
    resend_count_ = 0;
  }

  void on_round(NodeContext& ctx) override {
    ++round_;
    if (!advertise_) return;
    const Dist scope = config_.flood_scope();
    if (round_ == 1) {
      Message hello;
      hello.type = kMsgHello;
      hello.origin = self_;
      ctx.broadcast(std::move(hello));
      return;
    }
    if (round_ == 2) {
      advertise_list(ctx);
      if (rel_.enabled) {
        retransmit_interval_ = std::max<std::uint32_t>(1, rel_.retransmit_base);
        next_retransmit_ = round_ + retransmit_interval_ +
                           emission_jitter(self_, ++resend_count_, rel_.retransmit_jitter);
      }
      return;
    }
    if (!rel_.enabled) {
      if (round_ == 2 + scope && !finished_) {
        prune_to_ball();
        tree_edges_ = compute_local_tree_edges(config_, self_, neighbors_, lists_);
        flood_tree(ctx);
        finished_ = true;
      }
      return;
    }
    // Reliable schedule: compute on the paper's round from whatever arrived
    // (without pruning — under loss the reconstructable ball is a *subset*
    // of the real one, and discarding stored state it cannot reach yet
    // would throw away data a retransmission already healed), then
    // recompute whenever accepted input changed, flooding a new tree
    // version only on content change.
    if (round_ == 2 + scope && !computed_) {
      computed_ = true;
      finished_ = true;
      recompute_needed_ = false;
      tree_edges_ = compute_local_tree_edges(config_, self_, neighbors_, tolerant_ball_lists());
      ++progress_;
      flood_tree(ctx);
    } else if (computed_ && recompute_needed_) {
      recompute_needed_ = false;
      std::vector<Edge> fresh =
          compute_local_tree_edges(config_, self_, neighbors_, tolerant_ball_lists());
      if (fresh != tree_edges_) {
        tree_edges_ = std::move(fresh);
        ++my_tree_version_;
        ++progress_;
        flood_tree(ctx);
      }
    }
    // Ack-less periodic re-advertisement with capped exponential backoff
    // plus deterministic emission jitter (see emission_jitter). Fresh seqs
    // make FloodManager forward the copies (healing downstream gaps);
    // unchanged versions keep receivers that already accepted the content
    // untouched, so retransmissions never delay quiescence. HELLOs are not
    // retransmitted: sensing is driver-side (header comment).
    if (next_retransmit_ != 0 && round_ >= next_retransmit_) {
      advertise_list(ctx);
      if (computed_) flood_tree(ctx);
      retransmit_interval_ =
          std::min(retransmit_interval_ * 2, std::max<std::uint32_t>(1, rel_.backoff_cap));
      next_retransmit_ = round_ + retransmit_interval_ +
                         emission_jitter(self_, ++resend_count_, rel_.retransmit_jitter);
      record_retransmit_obs(self_, round_, retransmit_interval_);
    }
  }

  void on_message(NodeContext& ctx, const Message& msg) override {
    switch (msg.type) {
      case kMsgHello:
        break;  // sensing is driver-side; the delivery is still accounted
      case kMsgNeighborList: {
        if (!flood_.accept(ctx, msg)) break;
        if (!rel_.enabled) {
          lists_[msg.origin] = std::vector<NodeId>(msg.payload.begin(), msg.payload.end());
          break;
        }
        // List content is fixed per (origin, epoch): the first copy this
        // epoch is progress, every later one a retransmission duplicate.
        REMSPAN_CHECK(!msg.payload.empty());
        if (!lists_rx_epoch_.insert(msg.origin).second) break;
        lists_[msg.origin] = std::vector<NodeId>(msg.payload.begin() + kVersionPrefixWords,
                                                 msg.payload.end());
        ++progress_;
        if (computed_) recompute_needed_ = true;
        break;
      }
      case kMsgTree: {
        if (!flood_.accept(ctx, msg)) break;
        if (!rel_.enabled) {
          std::vector<Edge> edges;
          edges.reserve(msg.payload.size() / 2);
          for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
            edges.push_back(make_edge(msg.payload[i], msg.payload[i + 1]));
          }
          trees_[msg.origin] = std::move(edges);
          break;
        }
        // Monotone version acceptance: delay jitter can deliver tree v0
        // after the origin already recomputed and flooded v1.
        REMSPAN_CHECK(!msg.payload.empty());
        const std::uint32_t version = msg.payload[0];
        const auto seen = tree_rx_version_.find(msg.origin);
        if (seen != tree_rx_version_.end() && version <= seen->second) break;
        tree_rx_version_[msg.origin] = version;
        std::vector<Edge> edges;
        edges.reserve((msg.payload.size() - kVersionPrefixWords) / 2);
        for (std::size_t i = kVersionPrefixWords; i + 1 < msg.payload.size(); i += 2) {
          edges.push_back(make_edge(msg.payload[i], msg.payload[i + 1]));
        }
        trees_[msg.origin] = std::move(edges);
        ++progress_;
        break;
      }
      default:
        break;
    }
  }

  /// Reliable nodes never self-declare done — an ack-less sender cannot
  /// know its floods landed; the quiescence detector terminates the epoch.
  [[nodiscard]] bool done() const override { return rel_.enabled ? false : finished_; }

  [[nodiscard]] std::uint64_t state_version() const override { return progress_; }

  [[nodiscard]] const std::vector<Edge>& tree_edges() const noexcept { return tree_edges_; }

  // Read-only hooks for the driver's completeness oracle (reliable mode).
  /// True once this node has nothing scheduled: passive, or computed with
  /// no recompute pending over the inputs accepted so far.
  [[nodiscard]] bool settled() const noexcept {
    return !advertise_ || (computed_ && !recompute_needed_);
  }
  [[nodiscard]] const std::vector<NodeId>& sensed_neighbors() const noexcept { return neighbors_; }
  [[nodiscard]] const std::vector<NodeId>* stored_list(NodeId origin) const {
    const auto it = lists_.find(origin);
    return it == lists_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::vector<Edge>* stored_tree(NodeId origin) const {
    const auto it = trees_.find(origin);
    return it == trees_.end() ? nullptr : &it->second;
  }

  /// The scope-ball around this node walked over its stored lists: sorted
  /// origins at distance 1..scope (self excluded). Entries inside the ball
  /// are provably fresh (header comment), so the walk follows real edges
  /// only; a missing in-ball entry would falsify the re-advertisement
  /// invariant and is REMSPAN_CHECKed.
  [[nodiscard]] std::vector<NodeId> ball_origins() const {
    std::map<NodeId, Dist> dist;
    dist.emplace(self_, 0);
    std::vector<NodeId> frontier{self_};
    for (Dist d = 0; d < config_.flood_scope() && !frontier.empty(); ++d) {
      std::vector<NodeId> next;
      for (const NodeId w : frontier) {
        const std::vector<NodeId>* nbrs = &neighbors_;
        if (w != self_) {
          const auto it = lists_.find(w);
          REMSPAN_CHECK(it != lists_.end());
          nbrs = &it->second;
        }
        for (const NodeId x : *nbrs) {
          if (dist.emplace(x, d + 1).second) next.push_back(x);
        }
      }
      frontier = std::move(next);
    }
    std::vector<NodeId> out;
    out.reserve(dist.size() - 1);
    for (const auto& entry : dist) {
      if (entry.first != self_) out.push_back(entry.first);
    }
    return out;  // std::map iteration: already sorted
  }

  [[nodiscard]] std::map<NodeId, std::vector<NodeId>> pruned_lists() const {
    std::map<NodeId, std::vector<NodeId>> out;
    for (const NodeId v : ball_origins()) {
      const auto it = lists_.find(v);
      REMSPAN_CHECK(it != lists_.end());
      out.emplace(v, it->second);
    }
    return out;
  }

  [[nodiscard]] std::map<NodeId, std::vector<Edge>> pruned_trees() const {
    std::map<NodeId, std::vector<Edge>> out;
    out.emplace(self_, tree_edges_);
    for (const NodeId v : ball_origins()) {
      const auto it = trees_.find(v);
      REMSPAN_CHECK(it != trees_.end());
      out.emplace(v, it->second);
    }
    return out;
  }

 private:
  /// Floods this epoch's sensed neighbor list. Reliable mode prefixes the
  /// constant per-epoch version 0 (wire-format uniformity with kMsgTree);
  /// lossless mode keeps the original unprefixed payload so the committed
  /// wire accounting is byte-identical.
  void advertise_list(NodeContext& ctx) {
    std::vector<std::uint32_t> payload;
    payload.reserve(neighbors_.size() + (rel_.enabled ? kVersionPrefixWords : 0));
    if (rel_.enabled) payload.push_back(0);
    payload.insert(payload.end(), neighbors_.begin(), neighbors_.end());
    flood_.originate(ctx, kMsgNeighborList, config_.flood_scope(), std::move(payload));
  }

  /// Floods the currently advertised tree (version-prefixed in reliable mode).
  void flood_tree(NodeContext& ctx) {
    std::vector<std::uint32_t> payload;
    payload.reserve(tree_edges_.size() * 2 + (rel_.enabled ? kVersionPrefixWords : 0));
    if (rel_.enabled) payload.push_back(my_tree_version_);
    for (const Edge& e : tree_edges_) {
      payload.push_back(e.u);
      payload.push_back(e.v);
    }
    flood_.originate(ctx, kMsgTree, config_.flood_scope(), std::move(payload));
  }

  /// The scope-ball walk tolerant of in-flight gaps: expands through stored
  /// lists, silently skipping origins whose list has not arrived yet, and
  /// returns the stored lists of the origins it reached. Mid-epoch under
  /// loss this is a subset of the real ball; once every ball origin's final
  /// list landed it equals the strict pruned view, so the last recompute
  /// reads exactly the lossless inputs (stale out-of-ball leftovers are
  /// unreachable from the fresh sensed neighbors).
  [[nodiscard]] std::map<NodeId, std::vector<NodeId>> tolerant_ball_lists() const {
    std::map<NodeId, Dist> dist;
    dist.emplace(self_, 0);
    std::vector<NodeId> frontier{self_};
    for (Dist d = 0; d < config_.flood_scope() && !frontier.empty(); ++d) {
      std::vector<NodeId> next;
      for (const NodeId w : frontier) {
        const std::vector<NodeId>* nbrs = &neighbors_;
        if (w != self_) {
          const auto it = lists_.find(w);
          if (it == lists_.end()) continue;  // still in flight
          nbrs = &it->second;
        }
        for (const NodeId x : *nbrs) {
          if (dist.emplace(x, d + 1).second) next.push_back(x);
        }
      }
      frontier = std::move(next);
    }
    std::map<NodeId, std::vector<NodeId>> out;
    for (const auto& entry : dist) {
      if (entry.first == self_) continue;
      const auto it = lists_.find(entry.first);
      if (it != lists_.end()) out.emplace(entry.first, it->second);
    }
    return out;
  }

  /// Drops every stored list / tree entry whose origin left the scope-ball;
  /// called right before the tree recompute so stale knowledge can never
  /// leak into the local graph. Runs mid-epoch: this epoch's tree floods
  /// are still in flight, so a ball origin may legitimately have no tree
  /// entry yet (unlike in pruned_trees(), which reads converged state).
  void prune_to_ball() {
    const std::vector<NodeId> ball = ball_origins();
    std::map<NodeId, std::vector<NodeId>> lists;
    std::map<NodeId, std::vector<Edge>> trees;
    for (const NodeId v : ball) {
      const auto it = lists_.find(v);
      REMSPAN_CHECK(it != lists_.end());
      lists.emplace(v, std::move(it->second));
      const auto jt = trees_.find(v);
      if (jt != trees_.end()) trees.emplace(v, std::move(jt->second));
    }
    lists_ = std::move(lists);
    trees_ = std::move(trees);
  }

  RemSpanConfig config_;
  ReliabilityConfig rel_;
  NodeId self_;
  FloodManager flood_;
  std::vector<NodeId> neighbors_;              // sensed, sorted
  std::map<NodeId, std::vector<NodeId>> lists_;  // origin -> latest neighbor list
  std::map<NodeId, std::vector<Edge>> trees_;    // origin -> latest tree
  std::vector<Edge> tree_edges_;               // own advertised tree
  std::uint32_t round_ = 0;
  bool advertise_ = false;
  bool finished_ = true;
  // Reliable mode only: quiescence-progress counter, this epoch's own tree
  // version, compute/recompute bookkeeping, receive-side dedup (first list
  // copy per origin per epoch; monotone tree versions) and the
  // retransmission clock.
  std::uint64_t progress_ = 0;
  std::uint32_t my_tree_version_ = 0;
  bool computed_ = false;
  bool recompute_needed_ = false;
  std::set<NodeId> lists_rx_epoch_;
  std::map<NodeId, std::uint32_t> tree_rx_version_;
  std::uint32_t retransmit_interval_ = 0;
  std::uint32_t next_retransmit_ = 0;
  std::uint32_t resend_count_ = 0;  // feeds the per-node emission jitter
};

ReconvergeProtocol& proto(Network& net, NodeId v) {
  return dynamic_cast<ReconvergeProtocol&>(net.node(v));
}

std::vector<NodeId> sorted_neighbors(const Graph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);  // CSR rows are sorted
  return {nbrs.begin(), nbrs.end()};
}

}  // namespace

ReconvergenceSim::ReconvergenceSim(const Graph& initial, const RemSpanConfig& config,
                                   ReconvergeStrategy strategy, const FaultConfig& faults)
    : config_(config),
      strategy_(strategy),
      faults_(faults),
      rel_(faults.effective_reliability()),
      dynamic_(initial),
      graph_(dynamic_.snapshot()),
      dirty_bfs_(initial.num_nodes()) {
  obs::PhaseSpan span("sim.initial_convergence", "sim");
  const ReliabilityConfig& rel = rel_;
  net_ = std::make_unique<Network>(*graph_, [&config, &rel](NodeId v) {
    return std::make_unique<ReconvergeProtocol>(config, v, rel);
  });
  if (faults_.faulty()) {
    net_->set_link_model(std::make_unique<LinkModel>(faults_.link, graph_->num_nodes()));
  }
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    auto& p = proto(*net_, v);
    p.sense_neighbors(sorted_neighbors(*graph_, v));
    p.begin_epoch(/*advertise=*/true, /*reset_state=*/true);
  }
  initial_.rounds = run_epoch();
  const NetworkStats& s = net_->stats();
  initial_.advertising_nodes = graph_->num_nodes();
  initial_.transmissions = s.transmissions;
  initial_.receptions = s.receptions;
  initial_.payload_words = s.payload_words;
  initial_.wire_bytes = s.wire_bytes();
  initial_.drops = s.drops;
  initial_.delayed = s.delayed;
  initial_.spanner_edges = spanner().size();
  initial_.seconds = span.seconds();
}

std::uint32_t ReconvergenceSim::run_epoch() {
  if (!rel_.enabled) return net_->run(config_.round_budget());
  // The detector window must cover the longest progress-free stretch the
  // legal schedule allows: the capped retransmission period plus delivery
  // delay, but also the quiet rounds between a node's advertisement and its
  // scheduled compute. The window alone is a candidate stop; the
  // completeness oracle below confirms it (header, proof-sketch step 4).
  const std::uint32_t window = std::max(rel_.quiescence_window_for(faults_.link.max_delay()),
                                        config_.expected_rounds() + 2);
  return net_->run_until_quiescent(window, rel_.max_rounds,
                                   [this] { return ball_state_complete(); });
}

bool ReconvergenceSim::ball_state_complete() {
  const Dist scope = config_.flood_scope();
  for (NodeId u = 0; u < graph_->num_nodes(); ++u) {
    const ReconvergeProtocol& pu = proto(*net_, u);
    if (!pu.settled()) return false;
    dirty_bfs_.run(GraphView(*graph_), u, scope);
    for (const NodeId o : dirty_bfs_.order()) {
      if (o == u) continue;
      const ReconvergeProtocol& po = proto(*net_, o);
      const std::vector<NodeId>* list = pu.stored_list(o);
      if (list == nullptr || *list != po.sensed_neighbors()) return false;
      const std::vector<Edge>* tree = pu.stored_tree(o);
      if (tree == nullptr || *tree != po.tree_edges()) return false;
    }
  }
  return true;
}

ReconvergenceSim::~ReconvergenceSim() = default;

ReconvergeBatchStats ReconvergenceSim::apply_batch(std::span<const GraphEvent> events) {
  obs::PhaseSpan span("sim.reconverge_batch", "sim");
  ReconvergeBatchStats stats;
  stats.batch = ++epoch_;
  stats.applied_events = dynamic_.apply_all(events);

  const std::shared_ptr<const Graph> old_graph = graph_;
  const std::shared_ptr<const Graph> new_graph = dynamic_.snapshot();
  const GraphDelta delta = diff_graphs(*old_graph, *new_graph);
  graph_ = new_graph;
  net_->change_topology(*graph_);
  if (delta.empty()) {
    // No live-topology change: nobody re-advertises, nothing flows.
    stats.spanner_edges = spanner().size();
    stats.seconds = span.seconds();
    return stats;
  }
  stats.removed_edges = delta.removed.size();
  stats.inserted_edges = delta.inserted.size();

  const std::vector<NodeId> touched = touched_endpoints(delta);
  stats.touched_nodes = touched.size();

  if (strategy_ == ReconvergeStrategy::kFullReflood) {
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      auto& p = proto(*net_, v);
      p.sense_neighbors(sorted_neighbors(*graph_, v));
      p.begin_epoch(/*advertise=*/true, /*reset_state=*/true);
    }
    stats.advertising_nodes = graph_->num_nodes();
  } else {
    const std::vector<NodeId> dirty = collect_dirty_roots(
        *old_graph, *new_graph, touched, config_.flood_scope(), dirty_bfs_, dirty_flag_);
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      proto(*net_, v).begin_epoch(/*advertise=*/dirty_flag_[v] != 0, /*reset_state=*/false);
    }
    for (const NodeId v : touched) {
      proto(*net_, v).sense_neighbors(sorted_neighbors(*graph_, v));
    }
    stats.advertising_nodes = dirty.size();
  }

  const NetworkStats before = net_->stats();
  stats.rounds = run_epoch();
  const NetworkStats delta_stats = net_->stats() - before;
  stats.transmissions = delta_stats.transmissions;
  stats.receptions = delta_stats.receptions;
  stats.payload_words = delta_stats.payload_words;
  stats.wire_bytes = delta_stats.wire_bytes();
  stats.drops = delta_stats.drops;
  stats.delayed = delta_stats.delayed;
  stats.spanner_edges = spanner().size();
  stats.seconds = span.seconds();
  return stats;
}

EdgeSet ReconvergenceSim::spanner() const {
  EdgeSet h(*graph_);
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    for (const Edge& e : proto(*net_, v).tree_edges()) {
      const EdgeId id = graph_->find_edge(e.u, e.v);
      REMSPAN_CHECK(id != kInvalidEdge);
      h.insert(id);
    }
  }
  return h;
}

const std::vector<Edge>& ReconvergenceSim::node_tree(NodeId v) const {
  return proto(*net_, v).tree_edges();
}

std::map<NodeId, std::vector<NodeId>> ReconvergenceSim::node_ball_lists(NodeId v) const {
  return proto(*net_, v).pruned_lists();
}

std::map<NodeId, std::vector<Edge>> ReconvergenceSim::node_ball_trees(NodeId v) const {
  return proto(*net_, v).pruned_trees();
}

}  // namespace remspan
