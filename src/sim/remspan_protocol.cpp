#include "sim/remspan_protocol.hpp"

#include <algorithm>
#include <unordered_map>

#include "baseline/mpr.hpp"
#include "graph/bfs.hpp"
#include "obs/obs.hpp"

namespace remspan {

void record_retransmit_obs(NodeId self, std::uint32_t round, std::uint32_t interval) {
  if (obs::Registry* m = obs::metrics()) {
    m->counter("sim.retransmissions").add(1);
    m->histogram("sim.backoff_interval").record(interval);
  }
  if (obs::TraceBuffer* t = obs::trace()) {
    obs::TraceEvent e;
    e.name = "sim.retransmit";
    e.cat = "sim";
    e.ph = obs::kPhaseInstant;
    e.ts = static_cast<double>(round) * obs::kRoundMicros;
    e.pid = obs::kSimPid;
    e.tid = self;
    e.args = {{"interval", static_cast<std::int64_t>(interval)}};
    t->emit(std::move(e));
  }
}

Dist RemSpanConfig::flood_scope() const {
  switch (kind) {
    case Kind::kLowStretchGreedy:
      return r - 1 + beta;
    case Kind::kLowStretchMis:
      return r;  // r - 1 + 1
    case Kind::kKConnGreedy:
      return 1;  // r = 2, beta = 0
    case Kind::kKConnMis:
      return 2;  // r = 2, beta = 1
    case Kind::kOlsrMpr:
      return 1;  // MPR selection reads nothing beyond N(u)'s links
  }
  return 1;
}

std::uint32_t RemSpanConfig::expected_rounds() const { return 1 + 2 * flood_scope(); }

const char* RemSpanConfig::kind_name() const noexcept {
  switch (kind) {
    case Kind::kLowStretchGreedy:
      return "low-stretch (greedy)";
    case Kind::kLowStretchMis:
      return "low-stretch (mis)";
    case Kind::kKConnGreedy:
      return "k-connecting (greedy)";
    case Kind::kKConnMis:
      return "k-connecting (mis)";
    case Kind::kOlsrMpr:
      return "olsr-mpr";
  }
  return "?";
}

std::vector<Edge> compute_local_tree_edges(const RemSpanConfig& config, NodeId self,
                                           const std::vector<NodeId>& neighbors,
                                           const std::map<NodeId, std::vector<NodeId>>& lists) {
  // Collect every node id the local view mentions. Ids are compacted
  // monotonically so that every id-based tie-break in DomTreeBuilder and
  // olsr_mpr_set matches the centralized computation on the full graph.
  std::vector<NodeId> known;
  known.push_back(self);
  for (const NodeId v : neighbors) known.push_back(v);
  for (const auto& [origin, list] : lists) {
    known.push_back(origin);
    known.insert(known.end(), list.begin(), list.end());
  }
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());

  std::unordered_map<NodeId, NodeId> local_id;
  local_id.reserve(known.size());
  for (NodeId i = 0; i < known.size(); ++i) local_id.emplace(known[i], i);

  GraphBuilder builder(static_cast<NodeId>(known.size()));
  for (const NodeId v : neighbors) builder.add_edge(local_id.at(self), local_id.at(v));
  for (const auto& [origin, list] : lists) {
    for (const NodeId v : list) builder.add_edge(local_id.at(origin), local_id.at(v));
  }
  const Graph local = builder.build();
  const NodeId root = local_id.at(self);

  std::vector<Edge> out;
  if (config.kind == RemSpanConfig::Kind::kOlsrMpr) {
    for (const NodeId m : olsr_mpr_set(local, root)) {
      out.push_back(make_edge(self, known[m]));
    }
    return out;
  }

  DomTreeBuilder trees(local);
  const RootedTree tree = [&] {
    switch (config.kind) {
      case RemSpanConfig::Kind::kLowStretchGreedy:
        return trees.greedy(root, config.r, config.beta);
      case RemSpanConfig::Kind::kLowStretchMis:
        return trees.mis(root, config.r);
      case RemSpanConfig::Kind::kKConnGreedy:
        return trees.greedy_k(root, config.k);
      case RemSpanConfig::Kind::kKConnMis:
        return trees.mis_k(root, config.k);
      case RemSpanConfig::Kind::kOlsrMpr:
        break;  // handled above
    }
    return RootedTree(root);
  }();
  for (const Edge& e : tree.edges()) {
    out.push_back(make_edge(known[e.u], known[e.v]));
  }
  return out;
}

void RemSpanProtocol::send_hello(NodeContext& ctx) {
  Message hello;
  hello.type = kMsgHello;
  hello.origin = ctx.id();
  ctx.broadcast(std::move(hello));
}

void RemSpanProtocol::advertise_list(NodeContext& ctx) {
  std::vector<std::uint32_t> payload;
  payload.reserve(neighbors_.size() + kVersionPrefixWords);
  payload.push_back(list_version_);
  payload.insert(payload.end(), neighbors_.begin(), neighbors_.end());
  flood_.originate(ctx, kMsgNeighborList, config_.flood_scope(), std::move(payload));
}

void RemSpanProtocol::flood_tree(NodeContext& ctx) {
  std::vector<std::uint32_t> payload;
  payload.reserve(tree_edges_.size() * 2 + kVersionPrefixWords);
  payload.push_back(tree_version_);
  for (const Edge& e : tree_edges_) {
    payload.push_back(e.u);
    payload.push_back(e.v);
  }
  flood_.originate(ctx, kMsgTree, config_.flood_scope(), std::move(payload));
}

void RemSpanProtocol::rebuild_heard_edges() {
  heard_edges_.clear();
  heard_edges_.insert(heard_edges_.end(), tree_edges_.begin(), tree_edges_.end());
  for (const auto& [origin, edges] : heard_trees_) {
    heard_edges_.insert(heard_edges_.end(), edges.begin(), edges.end());
  }
}

void RemSpanProtocol::on_round(NodeContext& ctx) {
  ++local_round_;
  const Dist scope = config_.flood_scope();
  if (local_round_ == 1) {
    // Neighbor discovery.
    send_hello(ctx);
    return;
  }
  if (local_round_ == 2) {
    // HELLOs are in: advertise the neighbor list to B(u, scope). Under loss
    // the list may still be partial — every later HELLO marks it dirty and
    // a higher-versioned re-advertisement supersedes this one.
    std::sort(neighbors_.begin(), neighbors_.end());
    if (!rel_.enabled) {
      flood_.originate(ctx, kMsgNeighborList, scope,
                       std::vector<std::uint32_t>(neighbors_.begin(), neighbors_.end()));
      return;
    }
    list_dirty_ = false;
    advertise_list(ctx);
    retransmit_interval_ = std::max<std::uint32_t>(1, rel_.retransmit_base);
    next_retransmit_ = local_round_ + retransmit_interval_ +
                       emission_jitter(ctx.id(), ++resend_count_, rel_.retransmit_jitter);
    return;
  }
  if (!rel_.enabled) {
    if (local_round_ == 2 + scope && !tree_computed_) {
      // All neighbor-list floods have drained (a ttl = scope flood originated
      // in round 2 delivers its last copies in round 2 + scope... strictly the
      // last on_message fires during round 2 + scope's delivery phase, which
      // happens after this call; but those messages can only originate from
      // nodes at distance exactly scope + 1 and are duplicates for us).
      compute_tree(ctx);
      flood_payload_and_finish(ctx);
    }
    return;
  }
  // Reliable schedule: flush a dirty list as soon as the round after the
  // change, compute on the paper's round as usual, and recompute whenever
  // late input arrived — flooding a new tree version only when the content
  // actually changed, so retransmissions alone can never look like progress
  // to the quiescence detector.
  if (list_dirty_) {
    list_dirty_ = false;
    ++list_version_;
    ++progress_;
    advertise_list(ctx);
  }
  if (local_round_ == 2 + scope && !tree_computed_) {
    compute_tree(ctx);
    flood_tree(ctx);
    tree_flooded_ = true;
    ++progress_;
  } else if (tree_computed_ && recompute_needed_) {
    recompute_needed_ = false;
    std::vector<Edge> fresh = compute_local_tree_edges(config_, ctx.id(), neighbors_, topology_);
    if (fresh != tree_edges_) {
      tree_edges_ = std::move(fresh);
      ++tree_version_;
      ++progress_;
      rebuild_heard_edges();
      flood_tree(ctx);
    }
  }
  // Ack-less periodic re-advertisement with capped exponential backoff plus
  // deterministic emission jitter (see emission_jitter): every stream this
  // node originates goes out again with a fresh seq (so FloodManager
  // forwards it, healing downstream gaps) but unchanged content version (so
  // receivers that already have it stay untouched).
  if (next_retransmit_ != 0 && local_round_ >= next_retransmit_) {
    send_hello(ctx);
    advertise_list(ctx);
    if (tree_computed_) flood_tree(ctx);
    retransmit_interval_ =
        std::min(retransmit_interval_ * 2, std::max<std::uint32_t>(1, rel_.backoff_cap));
    next_retransmit_ = local_round_ + retransmit_interval_ +
                       emission_jitter(ctx.id(), ++resend_count_, rel_.retransmit_jitter);
    record_retransmit_obs(ctx.id(), local_round_, retransmit_interval_);
  }
}

void RemSpanProtocol::flood_payload_and_finish(NodeContext& ctx) {
  std::vector<std::uint32_t> payload;
  payload.reserve(tree_edges_.size() * 2);
  for (const Edge& e : tree_edges_) {
    payload.push_back(e.u);
    payload.push_back(e.v);
  }
  flood_.originate(ctx, kMsgTree, config_.flood_scope(), std::move(payload));
  tree_flooded_ = true;
}

void RemSpanProtocol::on_message(NodeContext& ctx, const Message& msg) {
  switch (msg.type) {
    case kMsgHello: {
      if (!rel_.enabled) {
        neighbors_.push_back(msg.origin);
        break;
      }
      // Retransmitted HELLOs are idempotent; a genuinely new neighbor after
      // the round-2 advertisement means the advertised list (and through it
      // the local topology) was incomplete — re-advertise and recompute.
      const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), msg.origin);
      if (it != neighbors_.end() && *it == msg.origin) break;
      neighbors_.insert(it, msg.origin);
      ++progress_;
      if (local_round_ >= 2) {
        list_dirty_ = true;
        if (tree_computed_) recompute_needed_ = true;
      }
      break;
    }
    case kMsgNeighborList: {
      if (!flood_.accept(ctx, msg)) break;
      if (!rel_.enabled) {
        std::vector<NodeId> list(msg.payload.begin(), msg.payload.end());
        topology_.emplace(msg.origin, std::move(list));
        break;
      }
      REMSPAN_CHECK(!msg.payload.empty());
      const std::uint32_t version = msg.payload[0];
      const auto seen = list_rx_version_.find(msg.origin);
      if (seen != list_rx_version_.end() && version <= seen->second) break;  // stale / retransmit
      list_rx_version_[msg.origin] = version;
      topology_[msg.origin] =
          std::vector<NodeId>(msg.payload.begin() + kVersionPrefixWords, msg.payload.end());
      ++progress_;
      if (tree_computed_) recompute_needed_ = true;
      break;
    }
    case kMsgTree: {
      if (!flood_.accept(ctx, msg)) break;
      if (!rel_.enabled) {
        for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
          heard_edges_.push_back(make_edge(msg.payload[i], msg.payload[i + 1]));
        }
        break;
      }
      REMSPAN_CHECK(!msg.payload.empty());
      const std::uint32_t version = msg.payload[0];
      const auto seen = tree_rx_version_.find(msg.origin);
      if (seen != tree_rx_version_.end() && version <= seen->second) break;  // stale / retransmit
      tree_rx_version_[msg.origin] = version;
      std::vector<Edge> edges;
      edges.reserve((msg.payload.size() - kVersionPrefixWords) / 2);
      for (std::size_t i = kVersionPrefixWords; i + 1 < msg.payload.size(); i += 2) {
        edges.push_back(make_edge(msg.payload[i], msg.payload[i + 1]));
      }
      heard_trees_[msg.origin] = std::move(edges);
      rebuild_heard_edges();
      ++progress_;
      break;
    }
    default:
      break;
  }
}

void RemSpanProtocol::compute_tree(NodeContext& ctx) {
  tree_computed_ = true;
  tree_edges_ = compute_local_tree_edges(config_, ctx.id(), neighbors_, topology_);
  if (rel_.enabled) {
    rebuild_heard_edges();
  } else {
    heard_edges_.insert(heard_edges_.end(), tree_edges_.begin(), tree_edges_.end());
  }
}

DistributedRunResult run_remspan_distributed(const Graph& g, const RemSpanConfig& config) {
  return run_remspan_distributed(g, config, FaultConfig{});
}

namespace {

/// Completeness oracle confirming a quiet point of the reliable one-shot
/// run (reconvergence.hpp, proof-sketch step 4; ground truth here is the
/// graph itself since sensing is in-band): every node knows its full
/// neighbor row and holds, for every origin within flood scope, that
/// origin's current neighbor list and advertised tree, content-equal.
bool remspan_state_complete(Network& net, const Graph& g, const RemSpanConfig& config,
                            BoundedBfs& bfs) {
  const Dist scope = config.flood_scope();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& pu = dynamic_cast<const RemSpanProtocol&>(net.node(u));
    if (!pu.settled()) return false;
    const auto row = g.neighbors(u);
    const std::vector<NodeId>& sensed = pu.sensed_neighbors();
    if (sensed.size() != row.size() || !std::equal(sensed.begin(), sensed.end(), row.begin())) {
      return false;
    }
    bfs.run(GraphView(g), u, scope);
    for (const NodeId o : bfs.order()) {
      if (o == u) continue;
      const auto& po = dynamic_cast<const RemSpanProtocol&>(net.node(o));
      const auto list = pu.topology_knowledge().find(o);
      if (list == pu.topology_knowledge().end() || list->second != po.sensed_neighbors()) {
        return false;
      }
      const auto tree = pu.heard_trees().find(o);
      if (tree == pu.heard_trees().end() || tree->second != po.tree_edges()) return false;
    }
  }
  return true;
}

}  // namespace

DistributedRunResult run_remspan_distributed(const Graph& g, const RemSpanConfig& config,
                                             const FaultConfig& faults) {
  const ReliabilityConfig rel = faults.effective_reliability();
  Network net(g, [&config, &rel](NodeId) { return std::make_unique<RemSpanProtocol>(config, rel); });
  if (faults.faulty()) {
    net.set_link_model(std::make_unique<LinkModel>(faults.link, g.num_nodes()));
  }
  // The window must cover the longest progress-free stretch of the legal
  // schedule: the retransmission/delay bound, but also the quiet rounds
  // between a lone node's advertisement and its scheduled tree compute.
  // A quiet window is only a candidate stop; the completeness oracle
  // confirms it or sends the run back for another window of healing.
  const std::uint32_t window = std::max(rel.quiescence_window_for(faults.link.max_delay()),
                                        config.expected_rounds() + 2);
  BoundedBfs bfs(g.num_nodes());
  const std::uint32_t rounds =
      rel.enabled ? net.run_until_quiescent(
                        window, rel.max_rounds,
                        [&] { return remspan_state_complete(net, g, config, bfs); })
                  : net.run(config.round_budget());

  EdgeSet spanner(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& protocol = dynamic_cast<const RemSpanProtocol&>(net.node(v));
    for (const Edge& e : protocol.tree_edges()) {
      const EdgeId id = g.find_edge(e.u, e.v);
      REMSPAN_CHECK(id != kInvalidEdge);
      spanner.insert(id);
    }
  }
  return DistributedRunResult{std::move(spanner), net.stats(), rounds};
}

}  // namespace remspan
