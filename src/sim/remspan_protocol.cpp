#include "sim/remspan_protocol.hpp"

#include <algorithm>
#include <unordered_map>

#include "baseline/mpr.hpp"

namespace remspan {

Dist RemSpanConfig::flood_scope() const {
  switch (kind) {
    case Kind::kLowStretchGreedy:
      return r - 1 + beta;
    case Kind::kLowStretchMis:
      return r;  // r - 1 + 1
    case Kind::kKConnGreedy:
      return 1;  // r = 2, beta = 0
    case Kind::kKConnMis:
      return 2;  // r = 2, beta = 1
    case Kind::kOlsrMpr:
      return 1;  // MPR selection reads nothing beyond N(u)'s links
  }
  return 1;
}

std::uint32_t RemSpanConfig::expected_rounds() const { return 1 + 2 * flood_scope(); }

const char* RemSpanConfig::kind_name() const noexcept {
  switch (kind) {
    case Kind::kLowStretchGreedy:
      return "low-stretch (greedy)";
    case Kind::kLowStretchMis:
      return "low-stretch (mis)";
    case Kind::kKConnGreedy:
      return "k-connecting (greedy)";
    case Kind::kKConnMis:
      return "k-connecting (mis)";
    case Kind::kOlsrMpr:
      return "olsr-mpr";
  }
  return "?";
}

std::vector<Edge> compute_local_tree_edges(const RemSpanConfig& config, NodeId self,
                                           const std::vector<NodeId>& neighbors,
                                           const std::map<NodeId, std::vector<NodeId>>& lists) {
  // Collect every node id the local view mentions. Ids are compacted
  // monotonically so that every id-based tie-break in DomTreeBuilder and
  // olsr_mpr_set matches the centralized computation on the full graph.
  std::vector<NodeId> known;
  known.push_back(self);
  for (const NodeId v : neighbors) known.push_back(v);
  for (const auto& [origin, list] : lists) {
    known.push_back(origin);
    known.insert(known.end(), list.begin(), list.end());
  }
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());

  std::unordered_map<NodeId, NodeId> local_id;
  local_id.reserve(known.size());
  for (NodeId i = 0; i < known.size(); ++i) local_id.emplace(known[i], i);

  GraphBuilder builder(static_cast<NodeId>(known.size()));
  for (const NodeId v : neighbors) builder.add_edge(local_id.at(self), local_id.at(v));
  for (const auto& [origin, list] : lists) {
    for (const NodeId v : list) builder.add_edge(local_id.at(origin), local_id.at(v));
  }
  const Graph local = builder.build();
  const NodeId root = local_id.at(self);

  std::vector<Edge> out;
  if (config.kind == RemSpanConfig::Kind::kOlsrMpr) {
    for (const NodeId m : olsr_mpr_set(local, root)) {
      out.push_back(make_edge(self, known[m]));
    }
    return out;
  }

  DomTreeBuilder trees(local);
  const RootedTree tree = [&] {
    switch (config.kind) {
      case RemSpanConfig::Kind::kLowStretchGreedy:
        return trees.greedy(root, config.r, config.beta);
      case RemSpanConfig::Kind::kLowStretchMis:
        return trees.mis(root, config.r);
      case RemSpanConfig::Kind::kKConnGreedy:
        return trees.greedy_k(root, config.k);
      case RemSpanConfig::Kind::kKConnMis:
        return trees.mis_k(root, config.k);
      case RemSpanConfig::Kind::kOlsrMpr:
        break;  // handled above
    }
    return RootedTree(root);
  }();
  for (const Edge& e : tree.edges()) {
    out.push_back(make_edge(known[e.u], known[e.v]));
  }
  return out;
}

void RemSpanProtocol::on_round(NodeContext& ctx) {
  ++local_round_;
  const Dist scope = config_.flood_scope();
  if (local_round_ == 1) {
    // Neighbor discovery.
    Message hello;
    hello.type = kMsgHello;
    hello.origin = ctx.id();
    ctx.broadcast(std::move(hello));
    return;
  }
  if (local_round_ == 2) {
    // HELLOs are in: advertise the neighbor list to B(u, scope).
    std::sort(neighbors_.begin(), neighbors_.end());
    flood_.originate(ctx, kMsgNeighborList, scope,
                     std::vector<std::uint32_t>(neighbors_.begin(), neighbors_.end()));
    return;
  }
  if (local_round_ == 2 + scope && !tree_computed_) {
    // All neighbor-list floods have drained (a ttl = scope flood originated
    // in round 2 delivers its last copies in round 2 + scope... strictly the
    // last on_message fires during round 2 + scope's delivery phase, which
    // happens after this call; but those messages can only originate from
    // nodes at distance exactly scope + 1 and are duplicates for us).
    compute_tree(ctx);
    flood_payload_and_finish(ctx);
  }
}

void RemSpanProtocol::flood_payload_and_finish(NodeContext& ctx) {
  std::vector<std::uint32_t> payload;
  payload.reserve(tree_edges_.size() * 2);
  for (const Edge& e : tree_edges_) {
    payload.push_back(e.u);
    payload.push_back(e.v);
  }
  flood_.originate(ctx, kMsgTree, config_.flood_scope(), std::move(payload));
  tree_flooded_ = true;
}

void RemSpanProtocol::on_message(NodeContext& ctx, const Message& msg) {
  switch (msg.type) {
    case kMsgHello:
      neighbors_.push_back(msg.origin);
      break;
    case kMsgNeighborList: {
      if (!flood_.accept(ctx, msg)) break;
      std::vector<NodeId> list(msg.payload.begin(), msg.payload.end());
      topology_.emplace(msg.origin, std::move(list));
      break;
    }
    case kMsgTree: {
      if (!flood_.accept(ctx, msg)) break;
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        heard_edges_.push_back(make_edge(msg.payload[i], msg.payload[i + 1]));
      }
      break;
    }
    default:
      break;
  }
}

void RemSpanProtocol::compute_tree(NodeContext& ctx) {
  tree_computed_ = true;
  tree_edges_ = compute_local_tree_edges(config_, ctx.id(), neighbors_, topology_);
  heard_edges_.insert(heard_edges_.end(), tree_edges_.begin(), tree_edges_.end());
}

DistributedRunResult run_remspan_distributed(const Graph& g, const RemSpanConfig& config) {
  Network net(g, [&config](NodeId) { return std::make_unique<RemSpanProtocol>(config); });
  const std::uint32_t rounds = net.run(config.expected_rounds() + 4);

  EdgeSet spanner(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& protocol = dynamic_cast<const RemSpanProtocol&>(net.node(v));
    for (const Edge& e : protocol.tree_edges()) {
      const EdgeId id = g.find_edge(e.u, e.v);
      REMSPAN_CHECK(id != kInvalidEdge);
      spanner.insert(id);
    }
  }
  return DistributedRunResult{std::move(spanner), net.stats(), rounds};
}

}  // namespace remspan
