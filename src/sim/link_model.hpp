// Fault injection for the round simulator: per-link loss, delay and
// scripted adversarial schedules, plus the reliability knobs the protocols
// use to survive them.
//
// The LOCAL model the paper's round accounting assumes (network.hpp) is the
// friendliest possible channel: a broadcast in round i reaches every
// neighbor in round i, always. Real wireless links drop frames
// independently, drop them in bursts, and jitter delivery. LinkModel prices
// the protocols under exactly those regimes while keeping every run a pure
// function of its seed:
//
//   * Bernoulli loss      — every per-neighbor delivery attempt is dropped
//                           independently with probability `drop`.
//   * Gilbert–Elliott     — a two-state Markov chain per *directed* link
//                           (Good/Bad) advanced once per round; deliveries
//                           drop with `drop_good` / `drop_bad` depending on
//                           the link's state. Models burst loss: once a
//                           link turns Bad it tends to stay Bad for
//                           ~1/p_bad_to_good rounds.
//   * Delivery delay      — every surviving copy is postponed by
//                           `delay` + uniform{0..jitter} rounds; a message
//                           sent in round i arrives in round i + d, so
//                           copies of the same flood can arrive reordered.
//   * Adversarial scripts — deterministic schedules for targeted tests:
//                           partition a node set for an epoch-relative
//                           round window [from, until) (every cut-crossing
//                           copy dropped), kill every copy of one flood
//                           (origin, seq), or drop every Nth delivery
//                           attempt globally.
//
// Determinism: every stochastic decision is derived by hashing
// (seed, directed link, epoch round, message identity) through splitmix64 —
// no ambient randomness (lint rule R5), no dependence on container
// iteration order, and no state that the delivery order could perturb. Two
// runs with the same seed and config produce bit-identical NetworkStats and
// converged protocol state (tests/test_link_model.cpp pins this).
//
// Epochs: adversarial round windows and the Gilbert–Elliott chains are
// relative to the current *convergence epoch* — Network calls begin_epoch()
// at the start of every run()/run_until_quiescent() invocation (one epoch
// per cold start or churn batch), so a schedule like "partition for rounds
// [0, 6)" means the first 6 rounds of each epoch it is configured for.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/network.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// Two-state burst-loss chain parameters (per directed link). Disabled
/// while p_good_to_bad == 0 (the chain never leaves Good and drop_good
/// defaults to 0). The stationary loss rate is
///   pi_bad * drop_bad + (1 - pi_bad) * drop_good,
/// with pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good).
struct GilbertElliott {
  double p_good_to_bad = 0.0;  ///< per-round transition probability Good -> Bad
  double p_bad_to_good = 1.0;  ///< per-round transition probability Bad -> Good
  double drop_good = 0.0;      ///< per-copy loss probability in Good
  double drop_bad = 1.0;       ///< per-copy loss probability in Bad

  [[nodiscard]] bool enabled() const noexcept { return p_good_to_bad > 0.0; }

  /// The chain whose stationary loss rate is `loss` with mean Bad sojourn
  /// `mean_burst_len` rounds (drop_bad = 1, drop_good = 0) — the natural
  /// CLI parametrization (--loss + --burst).
  [[nodiscard]] static GilbertElliott from_loss_and_burst(double loss, double mean_burst_len);
};

/// Drop every copy crossing the cut between `side` and its complement
/// during epoch-relative rounds [from_round, until_round). Epoch rounds are
/// 1-based like NodeContext::round(): the first round of an epoch is 1, so
/// {.from_round = 1, .until_round = 7} blacks out the first six rounds.
struct PartitionWindow {
  std::vector<NodeId> side;
  std::uint32_t from_round = 0;
  std::uint32_t until_round = 0;
};

/// Drop every copy (origination and forwards) of the flood identified by
/// (origin, seq) — "this specific advertisement never happened". A
/// retransmission carries a fresh seq and is unaffected.
struct FloodKill {
  NodeId origin = kInvalidNode;
  std::uint32_t seq = 0;
};

/// Full fault description of a channel. Default-constructed = the lossless
/// synchronous LOCAL model (faulty() == false), in which case Network skips
/// the model entirely and behaves bit-identically to the pre-fault layer.
struct LinkModelConfig {
  double drop = 0.0;           ///< iid per-copy loss probability, in [0, 1)
  std::uint32_t delay = 0;     ///< fixed extra delivery rounds per copy
  std::uint32_t jitter = 0;    ///< + uniform{0..jitter} extra rounds per copy
  GilbertElliott burst;        ///< two-state burst-loss chain (off by default)
  std::uint32_t drop_every_nth = 0;  ///< 0 = off; else attempts N, 2N, ... drop
  std::vector<PartitionWindow> partitions;  ///< scripted cut drops
  std::vector<FloodKill> kills;             ///< scripted single-flood kills
  std::uint64_t seed = 1;      ///< fault seed; independent of workload seeds

  /// True when any loss or delay mechanism is active.
  [[nodiscard]] bool faulty() const noexcept {
    return drop > 0.0 || delay > 0 || jitter > 0 || burst.enabled() ||
           drop_every_nth > 0 || !partitions.empty() || !kills.empty();
  }

  /// Upper bound on the extra rounds a surviving copy can be postponed.
  [[nodiscard]] std::uint32_t max_delay() const noexcept { return delay + jitter; }
};

/// Protocol-side reliability knobs (ack-less retransmission). Enabled
/// automatically by the drivers whenever a faulty LinkModelConfig is
/// attached; with a lossless channel the protocols keep the paper's exact
/// one-shot schedule so the round/message accounting is unchanged.
struct ReliabilityConfig {
  bool enabled = false;
  /// Rounds until the first re-advertisement of a stream; doubles after
  /// every retransmission (capped exponential backoff).
  std::uint32_t retransmit_base = 2;
  /// Cap on the backoff interval: at quiescence every advertiser still
  /// re-floods at least once per backoff_cap + retransmit_jitter rounds.
  std::uint32_t backoff_cap = 8;
  /// Deterministic emission jitter: the k-th re-advertisement is delayed by
  /// a hash of (node, k) in {0 .. retransmit_jitter} extra rounds — the
  /// OLSR trick (RFC 3626 MAXJITTER) that keeps periodic re-advertisements
  /// from synchronizing with each other or locking onto the phase of a
  /// periodic adversary (drop_every_nth kills the same copies forever if
  /// the traffic pattern repeats exactly). 0 disables.
  std::uint32_t retransmit_jitter = 3;
  /// Quiescence window W: the driver stops a convergence epoch after W
  /// consecutive rounds with no protocol-state progress. 0 = derive
  /// quiescence_window_for(max_delay) from the backoff cap.
  std::uint32_t quiescence_window = 0;
  /// Hard cap on the rounds of one lossy convergence epoch (safety net; a
  /// quiescent epoch stops long before this).
  std::uint32_t max_rounds = 20000;

  /// The effective detector window: at least two full backoff-capped,
  /// jitter-stretched retransmission periods plus the worst-case delivery
  /// delay, so every advertiser re-floods at least twice inside any window
  /// the detector lets elapse, and every surviving copy has landed.
  [[nodiscard]] std::uint32_t quiescence_window_for(std::uint32_t max_delay) const noexcept {
    if (quiescence_window != 0) return quiescence_window;
    return 3 * (backoff_cap + retransmit_jitter) + max_delay + 2;
  }
};

/// The deterministic emission jitter of ReliabilityConfig::retransmit_jitter:
/// extra rounds in {0 .. span} for the k-th re-advertisement of `node`, as a
/// pure hash (no ambient randomness — lint rule R5). Returns 0 for span 0.
[[nodiscard]] std::uint32_t emission_jitter(NodeId node, std::uint32_t k,
                                            std::uint32_t span) noexcept;

/// Channel faults + protocol reliability: the single knob drivers
/// (ReconvergenceSim, run_remspan_distributed, the api sessions, the CLI)
/// accept. Default = lossless channel, one-shot schedule.
struct FaultConfig {
  LinkModelConfig link;
  ReliabilityConfig reliability;

  [[nodiscard]] bool faulty() const noexcept { return link.faulty(); }

  /// Reliability the drivers actually apply: whatever was configured, with
  /// `enabled` forced on when the channel is faulty (an unreliable channel
  /// without retransmission cannot guarantee convergence).
  [[nodiscard]] ReliabilityConfig effective_reliability() const noexcept {
    ReliabilityConfig rel = reliability;
    rel.enabled = rel.enabled || faulty();
    return rel;
  }
};

/// What the channel does to one per-neighbor delivery attempt.
struct LinkDecision {
  bool deliver = true;        ///< false = copy dropped
  std::uint32_t delay = 0;    ///< extra rounds before delivery (0 = this round)
};

/// Deterministic fault oracle the Network consults once per per-neighbor
/// copy. Not thread-safe (the simulator is single-threaded by design).
class LinkModel {
 public:
  LinkModel(LinkModelConfig config, NodeId num_nodes);

  [[nodiscard]] const LinkModelConfig& config() const noexcept { return config_; }

  /// Starts a new convergence epoch: resets the epoch-relative round base
  /// for the adversarial schedules, restarts the Gilbert–Elliott chains
  /// (every link Good) and the drop-every-Nth attempt counter.
  void begin_epoch(std::uint32_t absolute_round);

  /// The channel's verdict for delivering `msg` from `from` to `to` during
  /// the receive phase of absolute round `round`. Mutates only the lazily
  /// advanced Gilbert–Elliott states and the attempt counter, both of which
  /// are deterministic functions of the call sequence, which is itself
  /// deterministic (single-threaded simulator, fixed iteration order).
  [[nodiscard]] LinkDecision decide(std::uint32_t round, NodeId from, NodeId to,
                                    const Message& msg);

 private:
  /// Uniform in [0, 1) as a pure function of the seed and the salts.
  [[nodiscard]] double unit(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) const noexcept;
  /// Gilbert–Elliott state of directed link (from, to) at epoch round t,
  /// advanced lazily from the last queried round (transitions are
  /// hash-derived per round, so the state is independent of query order).
  [[nodiscard]] bool link_is_bad(std::uint32_t epoch_round, NodeId from, NodeId to);

  LinkModelConfig config_;
  NodeId num_nodes_;
  std::uint32_t epoch_base_ = 0;
  std::uint64_t attempt_counter_ = 0;
  /// Per-node membership mask per partition rule (index-aligned with
  /// config_.partitions); precomputed so decide() is O(#rules).
  std::vector<std::vector<std::uint8_t>> partition_mask_;
  /// Directed link key -> (last advanced epoch round, state is Bad).
  std::map<std::uint64_t, std::pair<std::uint32_t, bool>> ge_state_;
};

}  // namespace remspan
