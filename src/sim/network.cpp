#include "sim/network.hpp"

namespace remspan {

std::uint32_t NodeContext::round() const noexcept { return net_->round(); }
NodeId NodeContext::num_network_nodes() const noexcept { return net_->graph().num_nodes(); }

void NodeContext::broadcast(Message msg) { net_->enqueue_broadcast(id_, std::move(msg)); }

Network::Network(const Graph& g, const ProtocolFactory& factory)
    : g_(&g), outbox_(g.num_nodes()) {
  protocols_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) protocols_.push_back(factory(v));
}

void Network::enqueue_broadcast(NodeId from, Message msg) {
  msg.from = from;
  stats_.transmissions += 1;
  stats_.payload_words += msg.payload.size();
  outbox_[from].push_back(std::move(msg));
}

std::uint32_t Network::run(std::uint32_t max_rounds) {
  // LOCAL-model semantics, matching the paper's round accounting: within
  // one round every node first acts (on_round, send phase), then receives
  // everything sent this round. Messages queued while *receiving* (flood
  // forwarding) are sent in the next round's send phase.
  const NodeId n = g_->num_nodes();
  std::uint32_t executed = 0;
  for (; executed < max_rounds; ++executed) {
    bool any_pending = false;
    for (const auto& box : outbox_) any_pending |= !box.empty();
    bool all_done = true;
    for (const auto& p : protocols_) all_done &= p->done();
    if (all_done && !any_pending) break;

    ++stats_.rounds;
    // Send phase.
    for (NodeId v = 0; v < n; ++v) {
      NodeContext ctx(*this, v);
      protocols_[v]->on_round(ctx);
    }
    // Receive phase: deliver everything queued so far (pre-round leftovers
    // from forwarding plus this round's sends). A broadcast by u reaches
    // every current neighbor of u.
    std::vector<std::vector<Message>> inflight(n);
    inflight.swap(outbox_);
    for (NodeId u = 0; u < n; ++u) {
      for (const Message& msg : inflight[u]) {
        for (const NodeId v : g_->neighbors(u)) {
          stats_.receptions += 1;
          NodeContext ctx(*this, v);
          protocols_[v]->on_message(ctx, msg);
        }
      }
    }
  }
  return executed;
}

void Network::change_topology(const Graph& g) {
  REMSPAN_CHECK(g.num_nodes() == g_->num_nodes());
  g_ = &g;
  for (auto& box : outbox_) box.clear();
}

}  // namespace remspan
