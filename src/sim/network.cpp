#include "sim/network.hpp"

#include "obs/obs.hpp"
#include "sim/link_model.hpp"

namespace remspan {

std::uint32_t NodeContext::round() const noexcept { return net_->round(); }
NodeId NodeContext::num_network_nodes() const noexcept { return net_->graph().num_nodes(); }

void NodeContext::broadcast(Message msg) { net_->enqueue_broadcast(id_, std::move(msg)); }

Network::Network(const Graph& g, const ProtocolFactory& factory)
    : g_(&g), outbox_(g.num_nodes()) {
  protocols_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) protocols_.push_back(factory(v));
}

Network::~Network() = default;

void Network::set_link_model(std::unique_ptr<LinkModel> model) {
  link_model_ = std::move(model);
  future_.clear();
  cursor_ = 0;
  if (link_model_ != nullptr) {
    future_.resize(link_model_->config().max_delay() + 2);
  }
}

void Network::enqueue_broadcast(NodeId from, Message msg) {
  msg.from = from;
  stats_.transmissions += 1;
  stats_.payload_words += msg.payload.size();
  outbox_[from].push_back(std::move(msg));
}

void Network::deliver(NodeId to, const Message& msg) {
  stats_.receptions += 1;
  NodeContext ctx(*this, to);
  protocols_[to]->on_message(ctx, msg);
}

bool Network::has_pending() const {
  for (const auto& box : outbox_) {
    if (!box.empty()) return true;
  }
  for (const auto& slot : future_) {
    if (!slot.empty()) return true;
  }
  return false;
}

bool Network::all_done() const {
  for (const auto& p : protocols_) {
    if (!p->done()) return false;
  }
  return true;
}

std::uint64_t Network::progress_sum() const {
  std::uint64_t sum = 0;
  for (const auto& p : protocols_) sum += p->state_version();
  return sum;
}

void Network::step_round() {
  // LOCAL-model semantics, matching the paper's round accounting: within
  // one round every node first acts (on_round, send phase), then receives
  // everything due this round. Messages queued while *receiving* (flood
  // forwarding) are sent in the next round's send phase.
  const bool observing = obs::metrics() != nullptr || obs::trace() != nullptr;
  const NetworkStats before = observing ? stats_ : NetworkStats{};
  const NodeId n = g_->num_nodes();
  ++stats_.rounds;
  // Send phase.
  for (NodeId v = 0; v < n; ++v) {
    NodeContext ctx(*this, v);
    protocols_[v]->on_round(ctx);
  }
  // Receive phase: swap the outboxes first so forwards triggered below
  // enqueue for the *next* round, preserving one-hop-per-round timing.
  std::vector<std::vector<Message>> inflight(n);
  inflight.swap(outbox_);
  // Copies the link model postponed to this round arrive first (they are
  // older than anything sent this round).
  if (!future_.empty()) {
    std::vector<Pending> matured;
    matured.swap(future_[cursor_]);
    for (const Pending& p : matured) deliver(p.to, p.msg);
  }
  // This round's sends (plus pre-round leftovers from forwarding). A
  // broadcast by u reaches every current neighbor of u — per copy, the
  // link model may drop or postpone.
  for (NodeId u = 0; u < n; ++u) {
    for (const Message& msg : inflight[u]) {
      for (const NodeId v : g_->neighbors(u)) {
        if (link_model_ != nullptr) {
          const LinkDecision d = link_model_->decide(stats_.rounds, u, v, msg);
          if (!d.deliver) {
            stats_.drops += 1;
            continue;
          }
          if (d.delay > 0) {
            stats_.delayed += 1;
            future_[(cursor_ + d.delay) % future_.size()].push_back(Pending{v, msg});
            continue;
          }
        }
        deliver(v, msg);
      }
    }
  }
  if (!future_.empty()) cursor_ = (cursor_ + 1) % future_.size();
  if (observing) publish_round_obs(before);
}

void Network::publish_round_obs(const NetworkStats& before) const {
  const NetworkStats d = stats_ - before;
  if (obs::Registry* m = obs::metrics()) {
    m->counter("sim.rounds").add(1);
    m->counter("sim.msgs_offered").add(d.transmissions);
    m->counter("sim.msgs_delivered").add(d.receptions);
    m->counter("sim.msgs_dropped").add(d.drops);
    m->counter("sim.msgs_delayed").add(d.delayed);
    m->counter("sim.payload_words").add(d.payload_words);
    m->histogram("sim.round_offered").record(d.transmissions);
  }
  if (obs::TraceBuffer* t = obs::trace()) {
    obs::TraceEvent e;
    e.name = "sim.round";
    e.cat = "sim";
    e.ph = obs::kPhaseCounter;
    e.ts = static_cast<double>(stats_.rounds) * obs::kRoundMicros;
    e.pid = obs::kSimPid;
    e.tid = 0;  // network-wide lane; per-node rows use tid = NodeId
    e.args = {{"offered", static_cast<std::int64_t>(d.transmissions)},
              {"delivered", static_cast<std::int64_t>(d.receptions)},
              {"dropped", static_cast<std::int64_t>(d.drops)},
              {"delayed", static_cast<std::int64_t>(d.delayed)}};
    t->emit(std::move(e));
  }
}

std::uint32_t Network::run(std::uint32_t max_rounds) {
  if (link_model_ != nullptr) link_model_->begin_epoch(stats_.rounds);
  std::uint32_t executed = 0;
  for (; executed < max_rounds; ++executed) {
    if (all_done() && !has_pending()) break;
    step_round();
  }
  return executed;
}

std::uint32_t Network::run_until_quiescent(std::uint32_t window, std::uint32_t max_rounds,
                                           const std::function<bool()>& converged) {
  REMSPAN_CHECK(window > 0);
  if (link_model_ != nullptr) link_model_->begin_epoch(stats_.rounds);
  std::uint32_t executed = 0;
  std::uint32_t idle = 0;
  while (executed < max_rounds) {
    if (idle >= window) {
      // A quiet point. Without an oracle it is the stop; with one, stop
      // only on a confirmed state — otherwise restart the window and let
      // the periodic retransmissions keep healing the remaining gaps.
      if (!converged || converged()) break;
      idle = 0;
    }
    // Fast exit for the drained case (every protocol done, channel empty):
    // nothing can ever change again, no need to sit out the window.
    if (all_done() && !has_pending()) break;
    const std::uint64_t before = progress_sum();
    step_round();
    ++executed;
    idle = progress_sum() == before ? idle + 1 : 0;
  }
  return executed;
}

void Network::change_topology(const Graph& g) {
  REMSPAN_CHECK(g.num_nodes() == g_->num_nodes());
  g_ = &g;
  for (auto& box : outbox_) box.clear();
  for (auto& slot : future_) slot.clear();
}

}  // namespace remspan
