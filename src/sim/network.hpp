// Synchronous message-passing network simulator.
//
// This is the execution model the paper's "constant time" claims refer to:
// computation proceeds in rounds; a message sent (local broadcast to all
// graph neighbors) in round i is delivered in round i+1. The simulator
// accounts transmissions, receptions and payload words so the benches can
// report the communication cost of Algorithm RemSpan next to its round
// count 2r - 1 + 2*beta (Section 2.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// A protocol message. `origin`/`seq` identify flooded payloads for
/// duplicate suppression; `ttl` is the remaining forwarding budget.
struct Message {
  NodeId from = kInvalidNode;    ///< immediate sender (link-layer, not counted in wire_bytes)
  NodeId origin = kInvalidNode;  ///< original source of a flooded payload
  std::uint32_t seq = 0;         ///< origin-local sequence number
  std::uint32_t ttl = 0;         ///< hops the message may still travel
  std::uint32_t type = 0;        ///< protocol-defined tag
  std::vector<std::uint32_t> payload;  ///< protocol-defined content, 32-bit words
};

class Network;

/// Per-node handle protocols use to interact with the network.
class NodeContext {
 public:
  NodeContext(Network& net, NodeId id) : net_(&net), id_(id) {}

  /// This node's id in the simulated network.
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  /// The network's current (1-based) round number.
  [[nodiscard]] std::uint32_t round() const noexcept;
  /// Total node count of the network (known to every real node, e.g. via
  /// configuration — not derived from messages).
  [[nodiscard]] NodeId num_network_nodes() const noexcept;

  /// Local wireless broadcast: the message reaches every graph neighbor at
  /// the start of the next round. Counts as one transmission.
  void broadcast(Message msg);

 private:
  Network* net_;
  NodeId id_;
};

/// A node program. The network calls, each round:
///   on_round(ctx)             once, before message delivery,
///   on_message(ctx, msg)      for every message delivered this round.
/// A protocol signals local termination through done(); the run stops when
/// every node is done and no message is in flight.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual void on_round(NodeContext& ctx) = 0;
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;
  [[nodiscard]] virtual bool done() const = 0;
};

/// Fixed per-message header charged by NetworkStats::wire_bytes(): origin,
/// seq, ttl and type, one 32-bit word each (`from` is link-layer framing and
/// not counted).
inline constexpr std::uint64_t kMessageHeaderWords = 4;

/// Cumulative communication accounting of a Network. Counters only ever
/// grow; per-phase costs (e.g. one reconvergence batch) are deltas between
/// two snapshots of this struct — see operator-.
struct NetworkStats {
  std::uint64_t transmissions = 0;   ///< broadcast() calls (originations + forwards)
  std::uint64_t receptions = 0;      ///< per-neighbor deliveries
  std::uint64_t payload_words = 0;   ///< sum of payload sizes over transmissions
  std::uint32_t rounds = 0;          ///< rounds executed by run()

  /// Total bytes put on the wire: every transmission pays the fixed
  /// kMessageHeaderWords header plus its payload, 4 bytes per word.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return 4 * (kMessageHeaderWords * transmissions + payload_words);
  }

  /// Component-wise delta (per-batch accounting); `before` must be an
  /// earlier snapshot of the same network's stats.
  friend NetworkStats operator-(const NetworkStats& after, const NetworkStats& before) {
    return NetworkStats{after.transmissions - before.transmissions,
                        after.receptions - before.receptions,
                        after.payload_words - before.payload_words,
                        after.rounds - before.rounds};
  }
};

class Network {
 public:
  /// One protocol instance per node, created by the factory.
  using ProtocolFactory = std::function<std::unique_ptr<Protocol>(NodeId)>;

  Network(const Graph& g, const ProtocolFactory& factory);

  /// Executes rounds until every protocol is done and no message is queued,
  /// or max_rounds elapse. Returns the number of rounds run.
  std::uint32_t run(std::uint32_t max_rounds);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t round() const noexcept { return stats_.rounds; }

  [[nodiscard]] Protocol& node(NodeId v) { return *protocols_[v]; }
  [[nodiscard]] const Protocol& node(NodeId v) const { return *protocols_[v]; }

  /// Replaces the topology (same node count) between run() calls; models
  /// the link-state restabilization scenario. In-flight messages are
  /// dropped, protocol state is kept.
  void change_topology(const Graph& g);

 private:
  friend class NodeContext;
  void enqueue_broadcast(NodeId from, Message msg);

  const Graph* g_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  // outbox[v]: messages v broadcast this round, delivered next round.
  std::vector<std::vector<Message>> outbox_;
  NetworkStats stats_;
};

}  // namespace remspan
