// Synchronous message-passing network simulator.
//
// This is the execution model the paper's "constant time" claims refer to:
// computation proceeds in rounds; a message sent (local broadcast to all
// graph neighbors) in round i is delivered in round i+1. The simulator
// accounts transmissions, receptions and payload words so the benches can
// report the communication cost of Algorithm RemSpan next to its round
// count 2r - 1 + 2*beta (Section 2.3).
//
// The lossless LOCAL model is the default. Attaching a LinkModel
// (sim/link_model.hpp) degrades the channel: each per-neighbor copy of a
// broadcast may be dropped (independently, in bursts, or by a scripted
// adversarial schedule) or postponed, so a message sent in round i arrives
// in round i+d or never. Without a model the code path and the accounting
// are bit-identical to the original simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "util/prelude.hpp"

namespace remspan {

/// A protocol message. `origin`/`seq` identify flooded payloads for
/// duplicate suppression; `ttl` is the remaining forwarding budget.
struct Message {
  NodeId from = kInvalidNode;    ///< immediate sender (link-layer, not counted in wire_bytes)
  NodeId origin = kInvalidNode;  ///< original source of a flooded payload
  std::uint32_t seq = 0;         ///< origin-local sequence number
  std::uint32_t ttl = 0;         ///< hops the message may still travel
  std::uint32_t type = 0;        ///< protocol-defined tag
  std::vector<std::uint32_t> payload;  ///< protocol-defined content, 32-bit words
};

class Network;

/// Per-node handle protocols use to interact with the network.
class NodeContext {
 public:
  NodeContext(Network& net, NodeId id) : net_(&net), id_(id) {}

  /// This node's id in the simulated network.
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  /// The network's current (1-based) round number.
  [[nodiscard]] std::uint32_t round() const noexcept;
  /// Total node count of the network (known to every real node, e.g. via
  /// configuration — not derived from messages).
  [[nodiscard]] NodeId num_network_nodes() const noexcept;

  /// Local wireless broadcast: the message reaches every graph neighbor at
  /// the start of the next round. Counts as one transmission.
  void broadcast(Message msg);

 private:
  Network* net_;
  NodeId id_;
};

/// A node program. The network calls, each round:
///   on_round(ctx)             once, before message delivery,
///   on_message(ctx, msg)      for every message delivered this round.
/// A protocol signals local termination through done(); the run stops when
/// every node is done and no message is in flight.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual void on_round(NodeContext& ctx) = 0;
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;
  [[nodiscard]] virtual bool done() const = 0;

  /// Monotone counter of *semantic* state changes (new knowledge stored,
  /// tree recomputed) — NOT bumped by duplicate or stale deliveries. The
  /// quiescence detector (run_until_quiescent) watches the sum across
  /// nodes; protocols that never run under a lossy channel can keep the
  /// default.
  [[nodiscard]] virtual std::uint64_t state_version() const { return 0; }
};

/// Fixed per-message header charged by NetworkStats::wire_bytes(): origin,
/// seq, ttl and type, one 32-bit word each (`from` is link-layer framing and
/// not counted).
inline constexpr std::uint64_t kMessageHeaderWords = 4;

/// Cumulative communication accounting of a Network. Counters only ever
/// grow; per-phase costs (e.g. one reconvergence batch) are deltas between
/// two snapshots of this struct — see operator-.
struct NetworkStats {
  std::uint64_t transmissions = 0;   ///< broadcast() calls (originations + forwards)
  std::uint64_t receptions = 0;      ///< per-neighbor deliveries that arrived
  std::uint64_t payload_words = 0;   ///< sum of payload sizes over transmissions
  std::uint64_t drops = 0;           ///< per-neighbor copies the link model dropped
  std::uint64_t delayed = 0;         ///< per-neighbor copies the link model postponed
  std::uint32_t rounds = 0;          ///< rounds executed by run()

  /// Total bytes put on the wire: every transmission pays the fixed
  /// kMessageHeaderWords header plus its payload, 4 bytes per word. A
  /// broadcast is on the air once regardless of which copies the receivers
  /// lose, so dropped copies still cost their sender's share.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return 4 * (kMessageHeaderWords * transmissions + payload_words);
  }

  /// Component-wise delta (per-batch accounting); `before` must be an
  /// earlier snapshot of the same network's stats.
  friend NetworkStats operator-(const NetworkStats& after, const NetworkStats& before) {
    return NetworkStats{after.transmissions - before.transmissions,
                        after.receptions - before.receptions,
                        after.payload_words - before.payload_words,
                        after.drops - before.drops,
                        after.delayed - before.delayed,
                        after.rounds - before.rounds};
  }
};

class LinkModel;

class Network {
 public:
  /// One protocol instance per node, created by the factory.
  using ProtocolFactory = std::function<std::unique_ptr<Protocol>(NodeId)>;

  Network(const Graph& g, const ProtocolFactory& factory);
  ~Network();

  /// Attaches a fault model; every per-neighbor copy from now on passes
  /// through it (drop / delay / deliver). Detach with nullptr. Each
  /// run()/run_until_quiescent() invocation starts a new fault epoch
  /// (LinkModel::begin_epoch).
  void set_link_model(std::unique_ptr<LinkModel> model);
  [[nodiscard]] const LinkModel* link_model() const noexcept { return link_model_.get(); }

  /// Executes rounds until every protocol is done and no message is queued
  /// or delayed in flight, or max_rounds elapse. Returns the number of
  /// rounds run.
  std::uint32_t run(std::uint32_t max_rounds);

  /// Lossy-mode driver: executes rounds until a *confirmed* quiet point —
  /// `window` consecutive rounds with no protocol-state progress (sum of
  /// Protocol::state_version unchanged) at which the driver's `converged`
  /// oracle, if provided, returns true — or until every protocol is done
  /// with nothing in flight, or max_rounds elapse. With ack-less periodic
  /// re-advertisement the channel never drains, so quiescence-of-state is
  /// the candidate termination criterion; the oracle is the sound half of
  /// the detector (a quiet window makes non-convergence unlikely, never
  /// impossible — at high loss every retransmission inside one window can
  /// die). When the oracle rejects a quiet point the idle counter restarts
  /// and the retransmission machinery gets another window to heal the gap;
  /// see reconvergence.hpp for why this terminates with probability 1.
  std::uint32_t run_until_quiescent(std::uint32_t window, std::uint32_t max_rounds,
                                    const std::function<bool()>& converged = {});

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t round() const noexcept { return stats_.rounds; }

  [[nodiscard]] Protocol& node(NodeId v) { return *protocols_[v]; }
  [[nodiscard]] const Protocol& node(NodeId v) const { return *protocols_[v]; }

  /// Replaces the topology (same node count) between run() calls; models
  /// the link-state restabilization scenario. In-flight messages
  /// (including link-model-delayed copies) are dropped, protocol state is
  /// kept.
  void change_topology(const Graph& g);

 private:
  friend class NodeContext;
  void enqueue_broadcast(NodeId from, Message msg);
  /// One full round: send phase, then receive phase (matured delayed
  /// copies first, then this round's sends through the link model).
  void step_round();
  /// Per-round telemetry: counter deltas into the metrics sink and one
  /// counter-sample trace event on the simulator lane (ts = round number —
  /// deterministic, no wall clock). Called only when a sink is installed.
  void publish_round_obs(const NetworkStats& before) const;
  void deliver(NodeId to, const Message& msg);
  [[nodiscard]] bool has_pending() const;
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::uint64_t progress_sum() const;

  /// A copy postponed by the link model, waiting for its delivery round.
  struct Pending {
    NodeId to;
    Message msg;
  };

  const Graph* g_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  // outbox[v]: messages v broadcast this round, delivered next round.
  std::vector<std::vector<Message>> outbox_;
  std::unique_ptr<LinkModel> link_model_;
  // Ring buffer of delayed copies: future_[(cursor_ + d) % size] holds the
  // copies due d rounds from the current receive phase. Empty while no
  // link model is attached.
  std::vector<std::vector<Pending>> future_;
  std::size_t cursor_ = 0;
  NetworkStats stats_;
};

}  // namespace remspan
