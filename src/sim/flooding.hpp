// TTL-scoped flooding with duplicate suppression — the dissemination
// primitive of link-state protocols. A payload flooded by `origin` with
// ttl = d reaches every node within distance d of the origin exactly once
// (per (origin, seq) key), in at most d rounds.
#pragma once

#include <unordered_set>

#include "obs/obs.hpp"
#include "sim/network.hpp"

namespace remspan {

class FloodManager {
 public:
  /// Starts a flood from this node. seq must be fresh per (origin, type)
  /// stream; the manager hands out sequence numbers via next_seq().
  void originate(NodeContext& ctx, std::uint32_t type, std::uint32_t ttl,
                 std::vector<std::uint32_t> payload) {
    Message msg;
    msg.origin = ctx.id();
    msg.seq = next_seq_++;
    msg.ttl = ttl;
    msg.type = type;
    msg.payload = std::move(payload);
    mark_seen(msg);
    ctx.broadcast(std::move(msg));
  }

  /// Call for every received message belonging to the flood. Returns true
  /// when the payload is new for this node (the caller should process it);
  /// duplicates return false. Forwarding (ttl - 1) happens automatically
  /// for fresh messages with remaining budget.
  bool accept(NodeContext& ctx, const Message& msg) {
    if (!mark_seen(msg)) {
      if (obs::Registry* m = obs::metrics()) m->counter("sim.flood_dups").add(1);
      return false;
    }
    if (obs::Registry* m = obs::metrics()) {
      m->counter("sim.flood_accepts").add(1);
      // Remaining forwarding budget at acceptance; scope minus this value is
      // the hops travelled, so the histogram is the flood-lifetime profile.
      m->histogram("sim.flood_ttl_left").record(msg.ttl);
    }
    if (msg.ttl > 1) {
      Message fwd = msg;
      fwd.ttl = msg.ttl - 1;
      ctx.broadcast(std::move(fwd));
    }
    return true;
  }

  [[nodiscard]] std::uint32_t next_seq() const noexcept { return next_seq_; }

  /// Number of (origin, seq) suppression keys currently held — O(live
  /// floods since the last reset_seen()), pinned by the epoch-memory tests.
  [[nodiscard]] std::size_t seen_size() const noexcept { return seen_.size(); }

  /// Forgets every recorded (origin, seq) key while keeping the sequence
  /// counter. Safe between flooding epochs that each run to quiescence:
  /// later floods carry fresh seqs, so suppression state from drained
  /// epochs can never match again — dropping it keeps long churn replays
  /// at O(live state) memory instead of O(floods ever seen).
  void reset_seen() { seen_.clear(); }

 private:
  bool mark_seen(const Message& msg) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(msg.origin) << 32) | msg.seq;
    return seen_.insert(key).second;
  }

  std::unordered_set<std::uint64_t> seen_;
  std::uint32_t next_seq_ = 0;
};

}  // namespace remspan
