#include "sim/routing.hpp"

#include "graph/bfs.hpp"
#include "graph/views.hpp"
#include "util/thread_pool.hpp"

namespace remspan {

RouteResult greedy_route(const EdgeSet& h, NodeId s, NodeId t, std::size_t max_hops) {
  const Graph& g = h.graph();
  if (max_hops == 0) max_hops = static_cast<std::size_t>(g.num_nodes()) + 1;
  RouteResult result;
  result.path.push_back(s);
  if (s == t) {
    result.delivered = true;
    return result;
  }
  BoundedBfs bfs(g.num_nodes());
  NodeId current = s;
  while (result.path.size() - 1 < max_hops) {
    if (g.has_edge(current, t)) {
      // t is a neighbor: deliver directly (it is trivially closest in H_c).
      result.path.push_back(t);
      result.delivered = true;
      return result;
    }
    // Distances to t inside H_current: BFS from t over the augmented view
    // (the graph is undirected, so d(x, t) = d(t, x)).
    const AugmentedView view(h, current);
    bfs.run(view, t);
    NodeId best = kInvalidNode;
    Dist best_dist = kUnreachable;
    for (const NodeId x : g.neighbors(current)) {
      const Dist d = bfs.dist(x);
      if (d < best_dist || (d == best_dist && d != kUnreachable && x < best)) {
        best_dist = d;
        best = x;
      }
    }
    if (best == kInvalidNode || best_dist == kUnreachable) {
      return result;  // dead end: t unreachable in H_current
    }
    result.path.push_back(best);
    current = best;
    if (current == t) {
      result.delivered = true;
      return result;
    }
  }
  return result;  // hop budget exhausted (cannot happen over a remote-spanner)
}

std::vector<RoutingSample> route_sample_pairs(
    const EdgeSet& h, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  const Graph& g = h.graph();
  std::vector<RoutingSample> out(pairs.size());
  parallel_for(0, pairs.size(), [&](std::size_t i) {
    const auto [s, t] = pairs[i];
    const RouteResult route = greedy_route(h, s, t);
    RoutingSample sample{s, t, kUnreachable, kUnreachable};
    sample.shortest = bfs_distance(GraphView(g), s, t);
    if (route.delivered) sample.route_hops = static_cast<Dist>(route.hops());
    out[i] = sample;
  });
  return out;
}

}  // namespace remspan
