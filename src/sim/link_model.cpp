#include "sim/link_model.hpp"

#include "util/rng.hpp"

namespace remspan {

GilbertElliott GilbertElliott::from_loss_and_burst(double loss, double mean_burst_len) {
  REMSPAN_CHECK(loss >= 0.0 && loss < 1.0);
  REMSPAN_CHECK(mean_burst_len >= 1.0);
  GilbertElliott ge;
  if (loss == 0.0) return ge;  // disabled
  // Stationary Bad fraction pi_bad = loss (drop_bad = 1, drop_good = 0);
  // mean Bad sojourn 1/p_bad_to_good = mean_burst_len. Solving
  // pi_bad = p_gb / (p_gb + p_bg) for p_gb:
  ge.p_bad_to_good = 1.0 / mean_burst_len;
  ge.p_good_to_bad = ge.p_bad_to_good * loss / (1.0 - loss);
  ge.drop_good = 0.0;
  ge.drop_bad = 1.0;
  return ge;
}

std::uint32_t emission_jitter(NodeId node, std::uint32_t k, std::uint32_t span) noexcept {
  if (span == 0) return 0;
  std::uint64_t state = (static_cast<std::uint64_t>(node) << 32) ^ k ^ 0xA24BAED4963EE407ull;
  return static_cast<std::uint32_t>(splitmix64(state) % (span + 1));
}

LinkModel::LinkModel(LinkModelConfig config, NodeId num_nodes)
    : config_(std::move(config)), num_nodes_(num_nodes) {
  REMSPAN_CHECK(config_.drop >= 0.0 && config_.drop < 1.0);
  REMSPAN_CHECK(config_.burst.drop_good >= 0.0 && config_.burst.drop_good < 1.0);
  REMSPAN_CHECK(config_.burst.drop_bad >= 0.0 && config_.burst.drop_bad <= 1.0);
  REMSPAN_CHECK(!config_.burst.enabled() || config_.burst.drop_bad < 1.0 ||
                config_.burst.p_bad_to_good > 0.0);
  partition_mask_.reserve(config_.partitions.size());
  for (const PartitionWindow& rule : config_.partitions) {
    std::vector<std::uint8_t> mask(num_nodes_, 0);
    for (const NodeId v : rule.side) {
      REMSPAN_CHECK(v < num_nodes_);
      mask[v] = 1;
    }
    partition_mask_.push_back(std::move(mask));
  }
}

void LinkModel::begin_epoch(std::uint32_t absolute_round) {
  epoch_base_ = absolute_round;
  attempt_counter_ = 0;
  ge_state_.clear();
}

double LinkModel::unit(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) const noexcept {
  // One splitmix64 pass per mixed-in word: a short, stateless PRF. The
  // output only has to be uncorrelated across (salt, a, b, c) tuples.
  std::uint64_t state = config_.seed ^ (0x9E3779B97F4A7C15ull * (salt + 1));
  (void)splitmix64(state);
  state ^= a;
  (void)splitmix64(state);
  state ^= b;
  (void)splitmix64(state);
  state ^= c;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool LinkModel::link_is_bad(std::uint32_t epoch_round, NodeId from, NodeId to) {
  const std::uint64_t link = (static_cast<std::uint64_t>(from) << 32) | to;
  auto [it, inserted] = ge_state_.try_emplace(link, std::pair<std::uint32_t, bool>{0, false});
  auto& [last_round, bad] = it->second;
  // Every link starts the epoch Good at round 0; advance one hash-derived
  // transition per elapsed round. Rounds are queried monotonically within
  // an epoch, so the loop amortizes to O(1) per round per live link.
  if (inserted) last_round = 0;
  for (; last_round < epoch_round; ++last_round) {
    const double u = unit(/*salt=*/1, link, last_round + 1, 0);
    bad = bad ? u >= config_.burst.p_bad_to_good : u < config_.burst.p_good_to_bad;
  }
  return bad;
}

LinkDecision LinkModel::decide(std::uint32_t round, NodeId from, NodeId to,
                               const Message& msg) {
  REMSPAN_CHECK(round >= epoch_base_);
  const std::uint32_t epoch_round = round - epoch_base_;
  const std::uint64_t link = (static_cast<std::uint64_t>(from) << 32) | to;
  const std::uint64_t flood = (static_cast<std::uint64_t>(msg.origin) << 32) | msg.seq;
  ++attempt_counter_;

  // Scripted kills: this flood instance never propagates anywhere.
  for (const FloodKill& kill : config_.kills) {
    if (kill.origin == msg.origin && kill.seq == msg.seq) return {false, 0};
  }
  // Scripted partitions: cut-crossing copies drop inside the window.
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    const PartitionWindow& rule = config_.partitions[i];
    if (epoch_round < rule.from_round || epoch_round >= rule.until_round) continue;
    if (partition_mask_[i][from] != partition_mask_[i][to]) return {false, 0};
  }
  // Deterministic every-Nth attrition.
  if (config_.drop_every_nth > 0 && attempt_counter_ % config_.drop_every_nth == 0) {
    return {false, 0};
  }
  // Burst loss: per-directed-link two-state chain.
  if (config_.burst.enabled()) {
    const double p = link_is_bad(epoch_round, from, to) ? config_.burst.drop_bad
                                                        : config_.burst.drop_good;
    if (p > 0.0 && unit(/*salt=*/2, link, epoch_round, flood) < p) return {false, 0};
  }
  // Independent Bernoulli loss.
  if (config_.drop > 0.0 && unit(/*salt=*/3, link, epoch_round, flood) < config_.drop) {
    return {false, 0};
  }
  // Survivors: fixed delay plus per-copy jitter.
  std::uint32_t extra = config_.delay;
  if (config_.jitter > 0) {
    const double u = unit(/*salt=*/4, link, epoch_round, flood);
    extra += static_cast<std::uint32_t>(u * (config_.jitter + 1));
  }
  return {true, extra};
}

}  // namespace remspan
