// ReconvergenceSim: protocol-level reconvergence under churn — what a
// remote-spanner buys a *running* link-state protocol when the topology
// keeps changing.
//
// The driver replays a stream of GraphEvent batches (a ChurnTrace) into a
// persistent synchronous Network whose nodes run the advertise/compute/
// flood pipeline of Algorithm RemSpan, and measures, per batch, the cost of
// re-converging the distributed state: rounds, messages, payload words and
// bytes on the wire. Two strategies are compared:
//
//   kFullReflood   — the strawman: every node discards its state and reruns
//                    the full protocol on the new topology (periodic
//                    re-advertisement in OLSR terms). Per-batch cost is the
//                    cost of a cold start, independent of the batch size.
//   kIncremental   — only the nodes whose local knowledge may have changed
//                    re-advertise. These are exactly the *dirty roots* of
//                    the incremental maintenance engine
//                    (collect_dirty_roots, src/dynamic): the nodes within
//                    flood_scope() hops of a touched endpoint in the old or
//                    new snapshot. For every protocol kind the flood scope
//                    equals the dependency radius max(1, r+beta-1) of the
//                    per-root computation, so this set is both sufficient
//                    and locally computable.
//
// Why scoping re-advertisement to the dirty ball reaches the same converged
// state as a full re-flood, bit for bit:
//
//   * A node u's protocol state is a function of the neighbor lists of the
//     origins in B(u, scope). If u is clean (outside every dirty ball),
//     that ball's content is unchanged, so u's stored lists, tree and
//     advertisements are already exactly what a cold start would produce.
//   * Every dirty node re-floods its current list and recomputed tree with
//     ttl = scope over the *new* topology. A node u that needs origin o's
//     data (o in B_new(u, scope)) either already holds it — o clean, in
//     which case o's list is unchanged and was delivered earlier — or o is
//     dirty and the new flood reaches u directly. In particular an origin
//     that *entered* u's ball without itself being touched (a remote
//     insertion shortened the path) lies within scope of the inserted
//     edge's endpoints, is therefore dirty, and re-floods.
//   * Stale entries for origins that *left* the ball are pruned locally:
//     before recomputing, a dirty node walks its stored lists breadth-first
//     from its sensed neighbors to depth scope. Entries inside the
//     reconstructed ball are fresh by the argument above, so the walk never
//     follows a phantom edge, and everything beyond it is discarded.
//
// tests/test_reconvergence.cpp pins this equivalence after every batch
// (spanner, per-node trees, per-node pruned ball views) against both the
// full-re-flood strategy and the centralized constructions.
//
// Link-layer modeling: neighbor change detection (HELLO exchange /
// timeouts) is driver-side — each touched endpoint is handed its new
// sensed neighbor list, the way simulators model layer-2 link sensing.
// Advertising nodes still pay one HELLO broadcast per batch, so the
// round schedule and per-node cost match Algorithm RemSpan's
// 1 + 2*scope budget exactly; a batch whose delta is empty costs zero
// rounds and zero messages.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "graph/bfs.hpp"
#include "graph/edge_set.hpp"
#include "sim/network.hpp"
#include "sim/remspan_protocol.hpp"

namespace remspan {

/// How the protocol reacts to a batch of topology updates.
enum class ReconvergeStrategy {
  kIncremental,  ///< only dirty-ball nodes re-advertise (scoped floods)
  kFullReflood,  ///< every node resets and reruns the full protocol
};

/// @return "incremental" or "full-reflood" (bench/tool labels).
[[nodiscard]] const char* strategy_name(ReconvergeStrategy strategy) noexcept;

/// Per-batch reconvergence cost, measured on the synchronous simulator.
struct ReconvergeBatchStats {
  std::size_t batch = 0;             ///< 1-based batch number (0 = initial build)
  std::size_t applied_events = 0;    ///< events that changed stored state
  std::size_t inserted_edges = 0;    ///< live-edge delta vs previous snapshot
  std::size_t removed_edges = 0;
  std::size_t touched_nodes = 0;     ///< endpoints of changed edges
  std::size_t advertising_nodes = 0; ///< nodes that re-advertised this batch
  std::uint32_t rounds = 0;          ///< rounds until quiescence
  std::uint64_t transmissions = 0;   ///< broadcasts (originations + forwards)
  std::uint64_t receptions = 0;      ///< per-neighbor deliveries
  std::uint64_t payload_words = 0;   ///< payload volume over all transmissions
  std::uint64_t wire_bytes = 0;      ///< headers + payload (NetworkStats::wire_bytes)
  std::size_t spanner_edges = 0;     ///< |union of advertised trees| after the batch
  double seconds = 0.0;              ///< wall time of the simulated batch
};

/// Churn-aware driver over the round simulator. Owns the evolving topology
/// (a DynamicGraph seeded from the initial graph) and one protocol instance
/// per node; apply_batch() feeds one ChurnTrace batch through the network
/// and reports the reconvergence cost.
class ReconvergenceSim {
 public:
  /// Builds the network on `initial` and runs the initial convergence
  /// (every node advertises from a cold start; cost in initial_stats()).
  ReconvergenceSim(const Graph& initial, const RemSpanConfig& config,
                   ReconvergeStrategy strategy);
  ~ReconvergenceSim();

  ReconvergenceSim(const ReconvergenceSim&) = delete;
  ReconvergenceSim& operator=(const ReconvergenceSim&) = delete;

  [[nodiscard]] const RemSpanConfig& config() const noexcept { return config_; }
  [[nodiscard]] ReconvergeStrategy strategy() const noexcept { return strategy_; }

  /// The snapshot the protocol state currently refers to.
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Number of batches applied so far.
  [[nodiscard]] std::uint32_t batches_applied() const noexcept { return epoch_; }

  /// Cost of the initial cold-start convergence (batch index 0).
  [[nodiscard]] const ReconvergeBatchStats& initial_stats() const noexcept { return initial_; }

  /// Applies one batch of updates to the topology and re-converges the
  /// protocol state under the configured strategy. An all-no-op batch
  /// returns with zero rounds and zero messages.
  ReconvergeBatchStats apply_batch(std::span<const GraphEvent> events);

  /// Union of every node's currently advertised tree over graph() — the
  /// network-wide view of the spanner the protocol maintains.
  [[nodiscard]] EdgeSet spanner() const;

  /// Node v's currently advertised tree edges (global node pairs).
  [[nodiscard]] const std::vector<Edge>& node_tree(NodeId v) const;

  /// Node v's topology knowledge pruned to its scope-ball: origin -> sorted
  /// neighbor list, exactly what v's next tree computation would read. The
  /// oracle tests compare this between strategies.
  [[nodiscard]] std::map<NodeId, std::vector<NodeId>> node_ball_lists(NodeId v) const;

  /// Latest tree v knows per ball origin (its own under key v) — the
  /// node-local view of the spanner within its ball.
  [[nodiscard]] std::map<NodeId, std::vector<Edge>> node_ball_trees(NodeId v) const;

 private:
  RemSpanConfig config_;
  ReconvergeStrategy strategy_;
  DynamicGraph dynamic_;
  std::shared_ptr<const Graph> graph_;
  std::unique_ptr<Network> net_;
  BoundedBfs dirty_bfs_;
  std::vector<std::uint8_t> dirty_flag_;
  ReconvergeBatchStats initial_;
  std::uint32_t epoch_ = 0;
};

}  // namespace remspan
