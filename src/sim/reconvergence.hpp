// ReconvergenceSim: protocol-level reconvergence under churn — what a
// remote-spanner buys a *running* link-state protocol when the topology
// keeps changing.
//
// The driver replays a stream of GraphEvent batches (a ChurnTrace) into a
// persistent synchronous Network whose nodes run the advertise/compute/
// flood pipeline of Algorithm RemSpan, and measures, per batch, the cost of
// re-converging the distributed state: rounds, messages, payload words and
// bytes on the wire. Two strategies are compared:
//
//   kFullReflood   — the strawman: every node discards its state and reruns
//                    the full protocol on the new topology (periodic
//                    re-advertisement in OLSR terms). Per-batch cost is the
//                    cost of a cold start, independent of the batch size.
//   kIncremental   — only the nodes whose local knowledge may have changed
//                    re-advertise. These are exactly the *dirty roots* of
//                    the incremental maintenance engine
//                    (collect_dirty_roots, src/dynamic): the nodes within
//                    flood_scope() hops of a touched endpoint in the old or
//                    new snapshot. For every protocol kind the flood scope
//                    equals the dependency radius max(1, r+beta-1) of the
//                    per-root computation, so this set is both sufficient
//                    and locally computable.
//
// Why scoping re-advertisement to the dirty ball reaches the same converged
// state as a full re-flood, bit for bit:
//
//   * A node u's protocol state is a function of the neighbor lists of the
//     origins in B(u, scope). If u is clean (outside every dirty ball),
//     that ball's content is unchanged, so u's stored lists, tree and
//     advertisements are already exactly what a cold start would produce.
//   * Every dirty node re-floods its current list and recomputed tree with
//     ttl = scope over the *new* topology. A node u that needs origin o's
//     data (o in B_new(u, scope)) either already holds it — o clean, in
//     which case o's list is unchanged and was delivered earlier — or o is
//     dirty and the new flood reaches u directly. In particular an origin
//     that *entered* u's ball without itself being touched (a remote
//     insertion shortened the path) lies within scope of the inserted
//     edge's endpoints, is therefore dirty, and re-floods.
//   * Stale entries for origins that *left* the ball are pruned locally:
//     before recomputing, a dirty node walks its stored lists breadth-first
//     from its sensed neighbors to depth scope. Entries inside the
//     reconstructed ball are fresh by the argument above, so the walk never
//     follows a phantom edge, and everything beyond it is discarded.
//
// tests/test_reconvergence.cpp pins this equivalence after every batch
// (spanner, per-node trees, per-node pruned ball views) against both the
// full-re-flood strategy and the centralized constructions.
//
// Link-layer modeling: neighbor change detection (HELLO exchange /
// timeouts) is driver-side — each touched endpoint is handed its new
// sensed neighbor list, the way simulators model layer-2 link sensing.
// Advertising nodes still pay one HELLO broadcast per batch, so the
// round schedule and per-node cost match Algorithm RemSpan's
// 1 + 2*scope budget exactly; a batch whose delta is empty costs zero
// rounds and zero messages.
//
// ---------------------------------------------------------------------------
// Convergence under loss (the contract the fault layer is tested against)
// ---------------------------------------------------------------------------
//
// Claim. Fix a graph, a RemSpanConfig, a strategy and a churn trace, and run
// the driver over any LinkModelConfig whose per-copy delivery probability is
// bounded away from zero on every link at all times (iid drop p < 1,
// Gilbert–Elliott with p_bad_to_good > 0 and drop_bad < 1 or finite bursts,
// finite delay + jitter, partition/kill schedules active on finitely many
// rounds of each epoch, drop-every-Nth attrition — which delivers all but
// every Nth copy, and cannot lock onto the re-advertisement schedule
// because the emission jitter keeps that schedule aperiodic — so every
// constructor-accepted config qualifies) with the reliable protocol
// variant. Then every epoch quiesces with probability
// 1, and at quiescence the per-node converged state — each node's advertised
// tree, its scope-ball neighbor lists and its scope-ball tree views — is
// bit-for-bit the state the lossless one-shot run reaches. Loss and delay
// cost rounds and messages, never correctness.
//
// Proof sketch, by induction over epochs.
//
//   (1) Content determinism. Within one epoch each advertiser's streams
//       have fixed final content: its HELLO names it, its neighbor list is
//       driver-sensed before the epoch starts, and its tree is a
//       deterministic function (compute_local_tree_edges) of its sensed
//       neighbors and its stored ball lists. Retransmissions carry a fresh
//       flood seq — so duplicate suppression never blocks them and each
//       re-flood re-walks the whole ttl = scope ball, healing any gap the
//       channel punched downstream — but unchanged content and version.
//   (2) Eventual delivery. Every advertiser re-floods its streams at least
//       once per backoff_cap + retransmit_jitter rounds until the epoch
//       ends, at emission times jittered by a per-(node, resend) hash so no
//       periodic loss process stays phase-locked to them. Each re-flood
//       reaches each ball member through some shortest path with probability
//       bounded below by a positive constant (finitely many links, each
//       delivering with probability > 0 once the scripted windows lapse), so
//       with probability 1 every node eventually holds every ball origin's
//       final list and final tree. Monotone version acceptance makes
//       reordered late copies (delay jitter) harmless: a node never replaces
//       newer content with older.
//   (3) Final recompute. A reliable node recomputes its tree whenever an
//       accepted message changed its inputs. After the last input change its
//       last recompute reads exactly its sensed neighbors plus the fresh
//       scope-ball lists — the same inputs as the lossless run (stale
//       out-of-ball leftovers are unreachable by the ball walk from fresh
//       lists) — and determinism gives the identical tree. If the content is
//       unchanged, no new version is flooded, so retransmissions alone never
//       register as progress.
//   (4) Termination is *confirmed*, not guessed. A window of W >=
//       3*backoff_cap + max_delay + 2 consecutive progress-free rounds is
//       only a candidate stop: it makes an undelivered stream unlikely
//       (every advertiser retransmitted at least twice inside the window),
//       but at high loss every one of those copies can die, and a scripted
//       schedule (drop-every-Nth attrition aligned with the periodic
//       backoff-capped traffic) can even arrange it deterministically. So
//       at each quiet point the driver consults a completeness oracle —
//       global termination detection, the standard device for synchronous
//       simulators — which checks that every node is settled and holds, for
//       every origin within scope on the current graph, that origin's
//       current list and tree, content-equal. If not, the epoch simply
//       keeps running (the idle window restarts) and (2) delivers the gap
//       with probability 1, so the epoch ends with probability 1 and *only*
//       in the state of (3), which by the dirty-ball argument above equals
//       the lossless converged state. A real deployment has no oracle; it
//       keeps the soft-state periodic refresh running instead and a node
//       that missed part of a stream converges in a later refresh period —
//       same fixpoint, later clock (graceful degradation).
//
// tests/test_reconvergence_loss.cpp pins the claim across loss rates, delay
// jitter, burst loss, partition/flood-kill schedules, graph families and
// both strategies, comparing against the lossless run and the centralized
// construction after every batch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "graph/bfs.hpp"
#include "graph/edge_set.hpp"
#include "sim/link_model.hpp"
#include "sim/network.hpp"
#include "sim/remspan_protocol.hpp"

namespace remspan {

/// How the protocol reacts to a batch of topology updates.
enum class ReconvergeStrategy {
  kIncremental,  ///< only dirty-ball nodes re-advertise (scoped floods)
  kFullReflood,  ///< every node resets and reruns the full protocol
};

/// @return "incremental" or "full-reflood" (bench/tool labels).
[[nodiscard]] const char* strategy_name(ReconvergeStrategy strategy) noexcept;

/// Per-batch reconvergence cost, measured on the synchronous simulator.
struct ReconvergeBatchStats {
  std::size_t batch = 0;             ///< 1-based batch number (0 = initial build)
  std::size_t applied_events = 0;    ///< events that changed stored state
  std::size_t inserted_edges = 0;    ///< live-edge delta vs previous snapshot
  std::size_t removed_edges = 0;
  std::size_t touched_nodes = 0;     ///< endpoints of changed edges
  std::size_t advertising_nodes = 0; ///< nodes that re-advertised this batch
  std::uint32_t rounds = 0;          ///< rounds until quiescence
  std::uint64_t transmissions = 0;   ///< broadcasts (originations + forwards)
  std::uint64_t receptions = 0;      ///< per-neighbor deliveries
  std::uint64_t payload_words = 0;   ///< payload volume over all transmissions
  std::uint64_t wire_bytes = 0;      ///< headers + payload (NetworkStats::wire_bytes)
  std::uint64_t drops = 0;           ///< copies the link model destroyed
  std::uint64_t delayed = 0;         ///< copies the link model postponed
  std::size_t spanner_edges = 0;     ///< |union of advertised trees| after the batch
  double seconds = 0.0;              ///< wall time of the simulated batch
};

/// Churn-aware driver over the round simulator. Owns the evolving topology
/// (a DynamicGraph seeded from the initial graph) and one protocol instance
/// per node; apply_batch() feeds one ChurnTrace batch through the network
/// and reports the reconvergence cost.
class ReconvergenceSim {
 public:
  /// Builds the network on `initial` and runs the initial convergence
  /// (every node advertises from a cold start; cost in initial_stats()).
  /// A faulty `faults.link` attaches a LinkModel to the channel and switches
  /// every node to the reliable protocol variant (retransmission + backoff +
  /// quiescence detection); the default FaultConfig keeps the lossless
  /// one-shot schedule bit-identical to the pre-fault-layer driver.
  ReconvergenceSim(const Graph& initial, const RemSpanConfig& config,
                   ReconvergeStrategy strategy, const FaultConfig& faults = {});
  ~ReconvergenceSim();

  ReconvergenceSim(const ReconvergenceSim&) = delete;
  ReconvergenceSim& operator=(const ReconvergenceSim&) = delete;

  [[nodiscard]] const RemSpanConfig& config() const noexcept { return config_; }
  [[nodiscard]] ReconvergeStrategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] const FaultConfig& faults() const noexcept { return faults_; }

  /// The snapshot the protocol state currently refers to.
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Number of batches applied so far.
  [[nodiscard]] std::uint32_t batches_applied() const noexcept { return epoch_; }

  /// Cost of the initial cold-start convergence (batch index 0).
  [[nodiscard]] const ReconvergeBatchStats& initial_stats() const noexcept { return initial_; }

  /// Applies one batch of updates to the topology and re-converges the
  /// protocol state under the configured strategy. An all-no-op batch
  /// returns with zero rounds and zero messages.
  ReconvergeBatchStats apply_batch(std::span<const GraphEvent> events);

  /// Union of every node's currently advertised tree over graph() — the
  /// network-wide view of the spanner the protocol maintains.
  [[nodiscard]] EdgeSet spanner() const;

  /// Node v's currently advertised tree edges (global node pairs).
  [[nodiscard]] const std::vector<Edge>& node_tree(NodeId v) const;

  /// Node v's topology knowledge pruned to its scope-ball: origin -> sorted
  /// neighbor list, exactly what v's next tree computation would read. The
  /// oracle tests compare this between strategies.
  [[nodiscard]] std::map<NodeId, std::vector<NodeId>> node_ball_lists(NodeId v) const;

  /// Latest tree v knows per ball origin (its own under key v) — the
  /// node-local view of the spanner within its ball.
  [[nodiscard]] std::map<NodeId, std::vector<Edge>> node_ball_trees(NodeId v) const;

 private:
  /// Runs one convergence epoch: to the confirmed quiescence detector under
  /// a reliable configuration, to the fixed round budget otherwise.
  std::uint32_t run_epoch();

  /// The completeness oracle behind confirmed quiescence (proof-sketch step
  /// 4): true iff every node is settled and holds, for every origin within
  /// flood_scope() of it on the current graph, that origin's current sensed
  /// neighbor list and currently advertised tree, content-equal.
  [[nodiscard]] bool ball_state_complete();

  RemSpanConfig config_;
  ReconvergeStrategy strategy_;
  FaultConfig faults_;
  ReliabilityConfig rel_;
  DynamicGraph dynamic_;
  std::shared_ptr<const Graph> graph_;
  std::unique_ptr<Network> net_;
  BoundedBfs dirty_bfs_;
  std::vector<std::uint8_t> dirty_flag_;
  ReconvergeBatchStats initial_;
  std::uint32_t epoch_ = 0;
};

}  // namespace remspan
