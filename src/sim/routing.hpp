// Greedy link-state routing over a remote-spanner (paper Section 1).
//
// A node c holding a packet for t computes distances in H_c (the advertised
// sub-graph H plus its own links) and forwards to the G-neighbor closest to
// t in H_c. Because the tail of the chosen path lies inside H, the next hop
// can only do better: d_{H_{c'}}(c', t) <= d_{H_c}(c, t) - 1, so the route
// delivers in at most d_{H_s}(s, t) hops whenever H is a remote-spanner.
#pragma once

#include <vector>

#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace remspan {

struct RouteResult {
  std::vector<NodeId> path;  ///< visited nodes, s first; ends at t iff delivered
  bool delivered = false;    ///< whether the packet reached t

  /// Number of forwarding hops taken (path length minus one).
  [[nodiscard]] std::size_t hops() const noexcept {
    return path.empty() ? 0 : path.size() - 1;
  }
};

/// Routes one packet from s to t greedily over H (augmented per hop).
/// max_hops bounds the walk (0 means num_nodes + 1, enough for any simple
/// route). Fails (delivered = false) iff some intermediate node sees t as
/// unreachable in its augmented graph or the hop budget is exhausted.
[[nodiscard]] RouteResult greedy_route(const EdgeSet& h, NodeId s, NodeId t,
                                       std::size_t max_hops = 0);

/// Convenience: route length for every pair of a sample; used by the
/// routing bench. Returns hops or kUnreachable per pair.
struct RoutingSample {
  NodeId s;         ///< source
  NodeId t;         ///< destination
  Dist route_hops;  ///< greedy route length (kUnreachable if undelivered)
  Dist shortest;    ///< true shortest-path distance in G
};
[[nodiscard]] std::vector<RoutingSample> route_sample_pairs(
    const EdgeSet& h, const std::vector<std::pair<NodeId, NodeId>>& pairs);

}  // namespace remspan
