#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/prelude.hpp"

namespace remspan {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  REMSPAN_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) { return format_double(v); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 == row.size() ? " |" : " | ");
    }
    out << '\n';
  };
  print_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

}  // namespace remspan
