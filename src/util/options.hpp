// Minimal command-line option parser used by every bench and example binary.
// Syntax: --name value or --name=value; --help prints registered options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace remspan {

class Options {
 public:
  Options(int argc, const char* const* argv);

  /// Constructs from pre-split tokens (used by tests).
  explicit Options(std::vector<std::string> tokens);

  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback);
  [[nodiscard]] bool get_flag(const std::string& name);

  /// True if --help was passed; callers should print usage() and exit.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }

  /// Human-readable list of every option queried so far with its fallback.
  [[nodiscard]] std::string usage() const;

  /// Options present on the command line that were never queried; useful to
  /// catch typos in bench invocations.
  [[nodiscard]] std::vector<std::string> unknown_options() const;

 private:
  void parse(const std::vector<std::string>& tokens);
  [[nodiscard]] std::optional<std::string> lookup(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::pair<std::string, std::string>> described_;
  bool help_ = false;
};

}  // namespace remspan
