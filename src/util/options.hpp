// Minimal command-line option parser used by every bench and example binary.
// Syntax: --name value or --name=value; --help prints registered options.
//
// Typo protection: after querying every option it understands, a binary
// calls reject_unknown(std::cerr) and exits 2 when it returns false — a
// misspelled flag (--constrution) names itself instead of silently running
// the default. Options a mode cannot run without use the require_* forms,
// which throw MissingOptionError; a value that does not parse as a number
// (--k banana) throws BadOptionError. Every Options-driven main delegates
// to cli_main (or its own handler catching the common OptionError base),
// which maps both to the documented exit-2 diagnostic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace remspan {

/// Base for option errors; what() names the offending flag. Callers map it
/// to exit code 2.
class OptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the require_* accessors when the option is absent.
class MissingOptionError : public OptionError {
 public:
  using OptionError::OptionError;
};

/// Thrown by the numeric accessors when the value does not parse as a
/// number of the expected type.
class BadOptionError : public OptionError {
 public:
  using OptionError::OptionError;
};

class Options {
 public:
  Options(int argc, const char* const* argv);

  /// Constructs from pre-split tokens (used by tests).
  explicit Options(std::vector<std::string> tokens);

  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback);
  [[nodiscard]] bool get_flag(const std::string& name);

  /// Like the get_* forms but with no fallback: the option must be present
  /// on the command line or MissingOptionError is thrown.
  [[nodiscard]] std::int64_t require_int(const std::string& name);
  [[nodiscard]] double require_double(const std::string& name);
  [[nodiscard]] std::string require_string(const std::string& name);

  /// Whether the option was passed on the command line. Does not mark it
  /// consumed — callers still query it through a get_*/require_* form.
  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) != 0; }

  /// True if --help was passed; callers should print usage() and exit.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }

  /// Human-readable list of every option queried so far with its fallback.
  [[nodiscard]] std::string usage() const;

  /// Options present on the command line that were never queried; useful to
  /// catch typos in bench invocations.
  [[nodiscard]] std::vector<std::string> unknown_options() const;

  /// Typo gate: prints "unknown option --<name>" to `err` for every flag
  /// that was passed but never queried and returns false if there were any.
  /// Call after the last get_*/require_*; exit 2 on false.
  [[nodiscard]] bool reject_unknown(std::ostream& err) const;

 private:
  void parse(const std::vector<std::string>& tokens);
  [[nodiscard]] std::optional<std::string> lookup(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::pair<std::string, std::string>> described_;
  bool help_ = false;
};

/// Runs a CLI entry point, mapping OptionError (missing required option,
/// malformed numeric value) to the documented exit-2 diagnostic on stderr.
[[nodiscard]] int cli_main(int (*entry)(int, char**), int argc, char** argv);

}  // namespace remspan
