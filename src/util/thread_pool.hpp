// Fixed-size worker pool with a blocking parallel_for. The per-root
// dominating-tree computations in core/ and the APSP sweeps in analysis/ are
// embarrassingly parallel across nodes; this pool is how they scale.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace remspan {

class ThreadPool {
 public:
  /// Spawns `threads` workers (hardware_concurrency() when 0).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Number of distinct worker ids parallel_for_workers can hand out: the
  /// pool threads plus the participating caller thread. Callers sizing
  /// per-worker scratch (builders, batch buffers) should use this instead
  /// of size() + 1 by hand.
  [[nodiscard]] std::size_t concurrency() const noexcept { return workers_.size() + 1; }

  /// Runs body(i) for every i in [begin, end), distributing dynamically in
  /// chunks, and blocks until all iterations finish. body must be safe to
  /// invoke concurrently from multiple threads. Exceptions from body are
  /// captured and the first one is rethrown on the caller thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t chunk = 0);

  /// Variant receiving (index, worker_id); worker_id < size()+1 indexes
  /// per-thread scratch space (the caller thread participates as the last
  /// worker id).
  void parallel_for_workers(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t, std::size_t)>& body,
                            std::size_t chunk = 0);

  /// Process-wide pool, sized from hardware concurrency; most call sites use
  /// this instead of constructing their own.
  [[nodiscard]] static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace remspan
