// Common scalar types, constants and checked-assertion helpers shared by
// every remspan module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>

namespace remspan {

/// Identifier of a graph node. Graphs are limited to 2^32-1 nodes which is
/// far beyond anything the round simulator or the oracles can process.
using NodeId = std::uint32_t;

/// Identifier of an undirected edge inside a Graph's canonical edge list.
using EdgeId = std::uint32_t;

/// Hop distance. kUnreachable plays the role of +infinity.
using Dist = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr Dist kUnreachable = std::numeric_limits<Dist>::max();

/// Error thrown on violated REMSPAN_CHECK conditions. Deriving from
/// logic_error keeps the failures catchable in tests.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const std::source_location& loc) {
  throw CheckError(std::string("REMSPAN_CHECK failed: ") + expr + " at " + loc.file_name() +
                   ":" + std::to_string(loc.line()));
}
}  // namespace detail

/// Always-on invariant check (cheap conditions only). Unlike assert() it is
/// active in release builds: the algorithms in core/ encode paper invariants
/// with it and the test suite relies on them firing.
#define REMSPAN_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::remspan::detail::check_failed(#cond, std::source_location::current()); \
    }                                                                        \
  } while (false)

/// Saturating addition on hop distances: anything involving kUnreachable
/// stays kUnreachable.
[[nodiscard]] constexpr Dist dist_add(Dist a, Dist b) noexcept {
  if (a == kUnreachable || b == kUnreachable) return kUnreachable;
  return a + b;
}

}  // namespace remspan
