#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

namespace remspan {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x2545F4914F6CDD1Dull;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  while (true) {
    const std::uint64_t x = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform_real();
}

bool Rng::bernoulli(double p) noexcept { return uniform_real() < p; }

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0) return 0;
  // For large means, split: Poisson(a+b) = Poisson(a) + Poisson(b). Keeps the
  // per-chunk inversion numerically safe (exp(-mean) underflows past ~700).
  std::uint64_t total = 0;
  while (mean > 32.0) {
    // Atkinson-style: approximate the 32-mean chunk by exact inversion.
    const double chunk = 32.0;
    double l = std::exp(-chunk);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform_real();
    } while (p > l);
    total += k - 1;
    mean -= chunk;
  }
  const double l = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform_real();
  } while (p > l);
  return total + k - 1;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t m) noexcept {
  m = std::min(m, n);
  std::vector<std::uint64_t> out;
  out.reserve(m);
  std::unordered_set<std::uint64_t> chosen;
  // Floyd's algorithm: uniform sample of size m in O(m) expected draws.
  for (std::uint64_t j = n - m; j < n; ++j) {
    const std::uint64_t t = uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::split() noexcept {
  const std::uint64_t child_seed = (*this)();
  return Rng(child_seed);
}

}  // namespace remspan
