// Machine-readable bench reports. Every bench binary emits, next to its
// human-readable table, one BENCH_<name>.json file with a fixed flat schema:
//
//   {
//     "bench": "<name>",          // which binary produced it
//     "seed": <uint>,             // RNG seed of the workload (0 = none)
//     "params": { ... },          // workload parameters (n, side, eps, ...)
//     "values": { ... },          // measured values (edges, stretch, ...)
//     "wall_seconds": <double>    // wall time of the whole bench run
//   }
//
// `params` and `values` are flat objects whose members are integers, doubles
// or strings, kept in insertion order so reports diff cleanly run-to-run.
// parse_report() reads exactly this schema back (used by tests and by
// trajectory tooling that aggregates BENCH_*.json across commits).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace remspan {

/// A scalar JSON value as used by the bench report schema.
using JsonScalar = std::variant<std::int64_t, double, std::string>;

/// Serializes a scalar as a JSON token (strings get quoted and escaped;
/// doubles use max_digits10 so parse_report round-trips them exactly).
[[nodiscard]] std::string json_scalar_to_string(const JsonScalar& v);

/// Quotes `s` as a JSON string token: wraps in '"' and escapes '"', '\\'
/// and all control characters (named escapes for \n \t \r, \u00XX
/// otherwise). The one escaping routine every JSON writer in the repo
/// (bench reports, metric snapshots, trace events) goes through.
[[nodiscard]] std::string json_quote(const std::string& s);

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  void set_wall_seconds(double s) noexcept { wall_seconds_ = s; }
  [[nodiscard]] double wall_seconds() const noexcept { return wall_seconds_; }

  /// Records a workload parameter / measured value. Re-using a key overwrites
  /// the previous value in place (keeps its original position).
  void param(const std::string& key, JsonScalar value);
  void value(const std::string& key, JsonScalar value);

  // Unsigned/smaller integer convenience: everything integral lands as int64.
  template <typename T>
    requires std::is_integral_v<T>
  void param(const std::string& key, T v) {
    param(key, JsonScalar(static_cast<std::int64_t>(v)));
  }
  template <typename T>
    requires std::is_integral_v<T>
  void value(const std::string& key, T v) {
    value(key, JsonScalar(static_cast<std::int64_t>(v)));
  }

  [[nodiscard]] const std::vector<std::pair<std::string, JsonScalar>>& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonScalar>>& values() const noexcept {
    return values_;
  }

  /// The full report as a JSON document (trailing newline included).
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; REMSPAN_CHECKs that the write succeeded.
  void write_file(const std::string& path) const;

  /// The canonical file name, BENCH_<name>.json.
  [[nodiscard]] std::string default_filename() const { return "BENCH_" + name_ + ".json"; }

  [[nodiscard]] bool operator==(const BenchReport& other) const = default;

 private:
  std::string name_;
  std::uint64_t seed_ = 0;
  double wall_seconds_ = 0.0;
  std::vector<std::pair<std::string, JsonScalar>> params_;
  std::vector<std::pair<std::string, JsonScalar>> values_;
};

/// Parses the schema emitted by BenchReport::to_json (throws CheckError on
/// malformed input). Only the bench-report subset of JSON is understood.
[[nodiscard]] BenchReport parse_report(const std::string& json);

}  // namespace remspan
