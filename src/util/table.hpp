// Console table / CSV emission for bench binaries. Every bench prints the
// rows it reproduces from the paper through one of these writers so that
// EXPERIMENTS.md can be regenerated mechanically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace remspan {

/// Column-aligned plain-text table. Usage:
///   Table t({"n", "edges", "stretch"});
///   t.add_row({"100", "423", "1.50"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Appends a row from heterogeneous printable values.
  template <typename... Args>
  void add(const Args&... args) {
    add_row({format_cell(args)...});
  }

  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  static std::string format_cell(const std::string& v) { return v; }
  static std::string format_cell(const char* v) { return v; }
  static std::string format_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace remspan
