// Strict whole-string number parsing shared by the option and spec-string
// parsers: the entire token must be consumed ("12abc" is rejected, unlike
// raw stoll/stod), non-finite doubles ("nan", "inf") are rejected — no
// option or spec parameter legitimately takes one, and NaN silently defeats
// range checks downstream — and both non-numeric and out-of-range inputs
// yield nullopt; callers attach their own error type and wording.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace remspan {

[[nodiscard]] std::optional<std::int64_t> parse_full_int(const std::string& text);
[[nodiscard]] std::optional<double> parse_full_double(const std::string& text);

}  // namespace remspan
