#include "util/bitset.hpp"

#include <bit>

namespace remspan {

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  REMSPAN_CHECK(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  REMSPAN_CHECK(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

}  // namespace remspan
