#include "util/bitset.hpp"

#include <algorithm>
#include <bit>

namespace remspan {

std::size_t AtomicBitset::or_batch(std::vector<std::uint32_t>& bits) {
  std::sort(bits.begin(), bits.end());
  std::size_t words_ord = 0;
  for (std::size_t i = 0; i < bits.size();) {
    const std::size_t w = bits[i] >> 6;
    std::uint64_t mask = 0;
    for (; i < bits.size() && (bits[i] >> 6) == w; ++i) {
      mask |= std::uint64_t{1} << (bits[i] & 63);
    }
    or_word(w, mask);
    ++words_ord;
  }
  return words_ord;
}

void AtomicBitset::clear_batch(std::vector<std::uint32_t>& bits) {
  std::sort(bits.begin(), bits.end());
  for (std::size_t i = 0; i < bits.size();) {
    const std::size_t w = bits[i] >> 6;
    std::uint64_t mask = 0;
    for (; i < bits.size() && (bits[i] >> 6) == w; ++i) {
      mask |= std::uint64_t{1} << (bits[i] & 63);
    }
    words_[w].fetch_and(~mask, std::memory_order_relaxed);
  }
}

DynamicBitset DynamicBitset::from_words(std::size_t bits, std::vector<std::uint64_t> words) {
  REMSPAN_CHECK(words.size() == (bits + 63) / 64);
  DynamicBitset out;
  out.bits_ = bits;
  out.words_ = std::move(words);
  out.trim();
  return out;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  REMSPAN_CHECK(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  REMSPAN_CHECK(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  REMSPAN_CHECK(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

}  // namespace remspan
