// Deterministic random number generation. Every stochastic component of the
// library (graph generators, Baswana-Sen sampling, experiment seeds) draws
// from Rng so that a (seed) pair fully reproduces a run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/prelude.hpp"

namespace remspan {

/// splitmix64 step; used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Small, fast, passes BigCrush; statistically more
/// than adequate for workload generation, and cheap enough to keep one per
/// worker thread.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform_real() noexcept;

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Poisson-distributed count with the given mean (inversion for small
  /// means, PTRS-like normal-rejection handled via repeated splitting for
  /// large means).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Sample m distinct indices from [0, n) (Floyd's algorithm flavor).
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                                      std::uint64_t m) noexcept;

  /// Derive an independent child generator; used to hand one Rng per thread
  /// or per experiment repetition.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace remspan
